// Package polis is a from-scratch reproduction of "Synthesis of
// Software Programs for Embedded Control Applications" (Balarin,
// Chiodo, Giusto, Hsieh, Jurecska, Lavagno, Sangiovanni-Vincentelli,
// Sentovich, Suzuki — DAC 1995 / IEEE TCAD 18(6), 1999): the POLIS
// software-synthesis flow from networks of Codesign Finite State
// Machines (CFSMs) to optimized embedded C and object code, with
// BDD-based s-graph construction, dynamic variable reordering, cost
// and performance estimation, and automatic RTOS generation.
//
// The top-level package offers the one-call flow a downstream user
// wants; the building blocks live in the internal packages and are
// re-exported through small aliases here:
//
//	spec := `module blink: input tick; output led; ...`
//	art, err := polis.SynthesizeSource(spec, polis.Options{})
//	fmt.Println(art.C)          // generated C
//	fmt.Println(art.Estimate)   // size/timing estimate
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced tables and figures.
package polis

import (
	"context"
	"fmt"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/esterel"
	"polis/internal/estimate"
	"polis/internal/pipeline"
	"polis/internal/profile"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

// Options selects the synthesis configuration.
type Options struct {
	// Ordering is the s-graph variable-ordering strategy; the zero
	// value is the paper's default (dynamic sifting with each output
	// constrained after its support).
	Ordering sgraph.Ordering
	// Target selects the cost profile; nil means the HC11-class
	// micro-controller.
	Target *vm.Profile
	// Codegen tunes code generation (copy optimisation, if/switch
	// threshold).
	Codegen codegen.Options
	// UseFalsePaths tightens the worst-case estimate using declared
	// test exclusivities.
	UseFalsePaths bool
	// Reduce runs the fixed-point s-graph reduction engine (DAG
	// sharing, don't-care TEST elimination, ASSIGN straightening)
	// between s-graph construction and code generation.
	Reduce bool
	// ReduceOpt tunes the reduction passes; the zero value runs all
	// passes with default limits.
	ReduceOpt sgraph.ReduceOptions
	// Profile, when non-nil, enables profile-guided specialization:
	// TEST outcome edges of each covered module are reordered so the
	// observed hot path becomes the fall-through path, gated by an
	// exhaustive equivalence check, and the estimate additionally
	// reports profile-weighted expected cycles. Capture profiles with
	// internal/profile's Collector (e.g. cfsmsim -profile-out).
	Profile *profile.Profile
}

func (o *Options) fill() {
	if o.Target == nil {
		o.Target = vm.HC11()
	}
}

// Pipeline converts Options to the internal pipeline's mirror of the
// same structure, with defaults filled in. Sharded drivers (see
// internal/shard and polisc -shards) need it so every worker
// fingerprints modules exactly as the single-process flow does.
func (o Options) Pipeline() pipeline.Options {
	o.fill()
	return o.pipelineOptions()
}

// pipelineOptions converts Options to the internal pipeline's mirror
// of the same structure.
func (o Options) pipelineOptions() pipeline.Options {
	return pipeline.Options{
		Ordering:      o.Ordering,
		Target:        o.Target,
		Codegen:       o.Codegen,
		UseFalsePaths: o.UseFalsePaths,
		Reduce:        o.Reduce,
		ReduceOpt:     o.ReduceOpt,
		Profile:       o.Profile,
	}
}

// Artifacts bundles everything synthesis produces for one CFSM.
type Artifacts struct {
	CFSM     *cfsm.CFSM
	SGraph   *sgraph.SGraph
	C        string      // generated C routine
	Program  *vm.Program // object code for the virtual target
	Listing  string      // assembly listing
	Estimate estimate.Result
	Measured vm.PathCycles // exact min/max cycles from the object code
	CodeSize int           // measured bytes
}

// Synthesize runs the complete per-CFSM flow of Section III: reactive
// function extraction, BDD sifting, s-graph construction (Theorem 1),
// C and object-code generation, and cost/performance estimation. It is
// the single-module, untraced form of SynthesizeNetwork; both share
// the staged implementation in internal/pipeline.
func Synthesize(m *cfsm.CFSM, opt Options) (*Artifacts, error) {
	opt.fill()
	a, err := pipeline.SynthesizeModule(m, opt.pipelineOptions(), nil)
	if err != nil {
		return nil, err
	}
	return &Artifacts{
		CFSM:     m,
		SGraph:   a.SGraph,
		C:        a.C,
		Program:  a.Program,
		Listing:  a.Listing,
		Estimate: a.Estimate,
		Measured: a.Measured,
		CodeSize: a.CodeSize,
	}, nil
}

// SynthesizeNetwork synthesizes every machine of the network through
// the staged, concurrent pipeline of internal/pipeline: modules are
// compiled in parallel on cfg.Jobs workers (each with its own BDD
// manager), consulting cfg.Cache for unchanged modules and reporting
// per-stage timings and cache counters to cfg.Trace. Artifacts are
// returned in the network's machine order regardless of completion
// order, so results are deterministic for any worker count.
func SynthesizeNetwork(n *cfsm.Network, opt Options, cfg pipeline.Config) ([]*pipeline.Artifact, error) {
	opt.fill()
	return pipeline.Run(n, opt.pipelineOptions(), cfg)
}

// SynthesizeNetworkContext is SynthesizeNetwork under a context, for
// service callers (see cmd/polisd): cancellation or deadline expiry
// stops scheduling remaining modules and aborts in-flight ones at
// their next stage boundary, returning the context's error.
func SynthesizeNetworkContext(ctx context.Context, n *cfsm.Network, opt Options, cfg pipeline.Config) ([]*pipeline.Artifact, error) {
	opt.fill()
	return pipeline.RunContext(ctx, n, opt.pipelineOptions(), cfg)
}

// SynthesizeSource parses an Esterel-subset module (see
// internal/esterel) and synthesizes it.
func SynthesizeSource(src string, opt Options) (*Artifacts, error) {
	mod, err := esterel.Parse(src)
	if err != nil {
		return nil, err
	}
	m, _, err := esterel.Compile(mod)
	if err != nil {
		return nil, err
	}
	return Synthesize(m, opt)
}

// GenerateRTOS renders the C source of the RTOS for a network under
// the given configuration, plus its size model on the target.
func GenerateRTOS(n *cfsm.Network, cfg rtos.Config, target *vm.Profile) (string, rtos.SizeReport, error) {
	if err := cfg.Validate(n); err != nil {
		return "", rtos.SizeReport{}, err
	}
	if target == nil {
		target = vm.HC11()
	}
	sigID := make(map[*cfsm.Signal]int, len(n.Signals))
	for i, s := range n.Signals {
		sigID[s] = i
	}
	src := codegen.RTOSHeader() + "\n" + rtos.GenerateC(n, cfg, sigID)
	return src, rtos.SizeEstimate(target, n, cfg), nil
}

// Report renders a one-screen summary of synthesis artifacts. A zero
// measured code size reports the estimation error as n/a rather than
// dividing by zero.
func (a *Artifacts) Report(target *vm.Profile) string {
	if target == nil {
		target = vm.HC11()
	}
	st := a.SGraph.ComputeStats()
	errPct := "n/a"
	if a.CodeSize != 0 {
		errPct = fmt.Sprintf("%.1f%%",
			100*float64(a.Estimate.CodeBytes-int64(a.CodeSize))/float64(a.CodeSize))
	}
	return fmt.Sprintf(
		`CFSM %s: %d tests, %d actions, %d transitions
s-graph: %d vertices (%d TEST, %d ASSIGN), depth %d, %d paths
code: %d bytes measured (%d estimated, %s error)
cycles per transition: measured [%d, %d], estimated [%d, %d]
`,
		a.CFSM.Name, len(a.CFSM.Tests), len(a.CFSM.Actions), len(a.CFSM.Trans),
		st.Vertices, st.Tests, st.Assigns, st.Depth, st.Paths,
		a.CodeSize, a.Estimate.CodeBytes, errPct,
		a.Measured.Min, a.Measured.Max, a.Estimate.MinCycles, a.Estimate.MaxCycles)
}
