// Shock absorber: the paper's Section V-B industrial redesign.
// Synthesizes the six-module semi-active suspension controller,
// generates its RTOS (round-robin scheduler and I/O drivers), prints
// the ROM/RAM comparison against the hand-written reference, and
// verifies the sensor-to-actuator latency budget in co-simulation.
package main

import (
	"fmt"
	"log"

	"polis"
	"polis/internal/designs"
	"polis/internal/experiments"
	"polis/internal/rtos"
	"polis/internal/vm"
)

func main() {
	prof := vm.HC11()

	fmt.Println("== redesign experiment ==")
	rep, err := experiments.ShockAbsorberExperiment(prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatShock(prof, rep))

	fmt.Println("\n== per-module synthesis ==")
	s := designs.NewShockAbsorber()
	for _, m := range s.Modules() {
		art, err := polis.Synthesize(m, polis.Options{Target: prof})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %4d bytes, worst transition %4d cycles (%.1f us)\n",
			m.Name, art.CodeSize, art.Measured.Max,
			float64(art.Measured.Max)*1000/float64(prof.ClockKHz))
	}

	fmt.Println("\n== generated RTOS (excerpt) ==")
	src, size, err := polis.GenerateRTOS(s.Net, rtos.DefaultConfig(), prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RTOS size model: ROM %d bytes, RAM %d bytes\n", size.CodeBytes, size.DataBytes)
	// Print the scheduler loop only.
	start := indexOf(src, "void polis_scheduler")
	if start >= 0 {
		fmt.Print(src[start:])
	}

	fmt.Println("\n== schedulability (rate-monotonic) ==")
	// Periods from the workload: accel every 4000 cycles, ticks and
	// acks every 20000; WCETs from the estimator via Synthesize.
	var specs []rtos.TaskSpec
	periods := map[string]int64{
		"accel_filter":   4000,
		"road_estimator": 4000,
		"mode_logic":     4000,
		"actuator":       4000,
		"watchdog":       20000,
		"diag":           20000,
	}
	for _, m := range s.Modules() {
		art, err := polis.Synthesize(m, polis.Options{Target: prof})
		if err != nil {
			log.Fatal(err)
		}
		specs = append(specs, rtos.TaskSpec{
			Name: m.Name, WCET: art.Estimate.MaxCycles, Period: periods[m.Name],
		})
	}
	sched := rtos.Schedulability(specs, rtos.DefaultConfig().ScheduleOverhead)
	fmt.Printf("utilisation %.3f (Liu-Layland bound %.3f), by-bound=%v, schedulable=%v\n",
		sched.Utilization, sched.LLBound, sched.ByBound, sched.Schedulable)
	for i, r := range sched.ResponseTimes {
		fmt.Printf("  task %d worst-case response: %d cycles\n", i, r)
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
