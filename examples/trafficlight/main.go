// Traffic light: a two-module pedestrian-crossing controller written
// entirely in the Esterel-subset text format. The program is compiled
// into a CFSM network (same-named signals connect the modules),
// co-simulated under the generated RTOS, checked for the safety
// property "walk is never granted while cars have green", and verified
// exhaustively with the explicit-state model checker.
package main

import (
	"fmt"
	"log"

	"polis/internal/cfsm"
	"polis/internal/esterel"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/sim"
	"polis/internal/verify"
	"polis/internal/vm"
)

const system = `
% Divide the fast timebase by four.
module divider:
input tick;
output slow;
var cnt : integer in
loop
  await tick;
  if cnt >= 3 then
    cnt := 0;
    emit slow;
  else
    cnt := cnt + 1;
  end if
end loop
end var
end module

% Phase controller: cars green until a request arrives, then yellow,
% then red with walk granted for three slow periods.
module lights:
input slow;
input request;
output cars : integer;  % 0=red 1=yellow 2=green
output walk : integer;  % 1=walk 0=stop
var phase : integer in
loop
  await slow;
  if phase = 0 then
    if present request then
      phase := 1;
      emit cars(1);
    end if
  else
    if phase = 1 then
      phase := 2;
      emit cars(0);
      emit walk(1);
    else
      if phase >= 4 then
        phase := 0;
        emit walk(0);
        emit cars(2);
      else
        phase := phase + 1;
      end if
    end if
  end if
end loop
end var
end module
`

func main() {
	net, machines, err := esterel.CompileProgram(system)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d modules; internal signals:", len(net.Machines))
	for _, s := range net.InternalSignals() {
		fmt.Printf(" %s", s.Name)
	}
	fmt.Println()

	var tick, request, cars, walk *cfsm.Signal
	for _, s := range net.Signals {
		switch s.Name {
		case "tick":
			tick = s
		case "request":
			request = s
		case "cars":
			cars = s
		case "walk":
			walk = s
		}
	}

	// Co-simulate: ticks every 10k cycles, pedestrian requests now
	// and then.
	until := int64(2_000_000)
	stim := sim.PeriodicStimuli(tick, 1000, 10_000, until, nil)
	for t := int64(150_000); t < until; t += 600_000 {
		stim = append(stim, sim.Stimulus{Time: t, Signal: request})
	}
	res, err := sim.Run(net, stim, until, sim.Options{
		Cfg:      rtos.DefaultConfig(),
		Mode:     sim.VMExact,
		Profile:  vm.HC11(),
		Ordering: sgraph.OrderSiftAfterSupport,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nlight sequence (time in cycles):")
	walkActive := false
	violations := 0
	for _, e := range res.Trace {
		switch e.Signal {
		case cars:
			name := [...]string{"RED", "YELLOW", "GREEN"}[e.Value]
			fmt.Printf("  %9d  cars -> %s\n", e.Time, name)
			if e.Value == 2 && walkActive {
				violations++
			}
		case walk:
			state := "STOP"
			if e.Value == 1 {
				state = "WALK"
			}
			walkActive = e.Value == 1
			fmt.Printf("  %9d  walk -> %s\n", e.Time, state)
		}
	}
	fmt.Printf("\ntrace safety (green while walk): %d violations\n", violations)

	// Exhaustive verification of the lights module: the phase counter
	// stays within [0, 5).
	lights := machines["lights"]
	var phase *cfsm.StateVar
	for _, sv := range lights.States {
		if sv.Name == "phase" {
			phase = sv
		}
	}
	sp, err := verify.DefaultSpace(lights, nil)
	if err != nil {
		log.Fatal(err)
	}
	vres, err := verify.Reachable(lights, sp, verify.Options{
		Invariant: func(st verify.State) bool {
			return st[phase] >= 0 && st[phase] < 5
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if vres.Violation != nil {
		fmt.Println("INVARIANT VIOLATED:")
		fmt.Print(verify.FormatTrace(vres.Violation))
	} else {
		fmt.Printf("verified: phase stays in [0,5) over %d reachable states (%d pairs explored)\n",
			len(vres.States), vres.Explored)
	}
}
