// Dashboard: the paper's Section V-A case study. Synthesizes the nine
// dashboard CFSMs, prints the Table I/II style reports, and
// co-simulates a drive scenario (key on, no belt, accelerating) under
// the generated round-robin RTOS on the HC11-class target.
package main

import (
	"fmt"
	"log"

	"polis/internal/designs"
	"polis/internal/experiments"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/sim"
	"polis/internal/vm"
)

func main() {
	prof := vm.HC11()

	fmt.Println("== Table I: estimation vs measurement ==")
	t1, err := experiments.Table1(prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatTable1(prof, t1))

	fmt.Println("\n== Table II: ordering strategies ==")
	t2, err := experiments.Table2(prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatTable2(prof, t2))

	fmt.Println("\n== co-simulation: a drive scenario ==")
	d := designs.NewDashboard()
	until := int64(3_000_000)
	var stim []sim.Stimulus
	// Key on at t=1000; driver never fastens the belt.
	stim = append(stim, sim.Stimulus{Time: 1000, Signal: d.KeyOn})
	// 100 ms timebase.
	stim = append(stim, sim.PeriodicStimuli(d.Tick, 2000, 10_000, until, nil)...)
	// Wheel speeds up: period falls from 120 ms to 45 ms.
	stim = append(stim, sim.PeriodicStimuli(d.WheelPulse, 5000, 30_000, until,
		func(i int) int64 {
			p := 120 - int64(i)
			if p < 45 {
				p = 45
			}
			return p
		})...)
	// Engine at ~3000 rpm (20 ms crank period).
	stim = append(stim, sim.PeriodicStimuli(d.RPMPulse, 7000, 60_000, until,
		func(int) int64 { return 20 })...)
	// Fuel drains from 40%.
	stim = append(stim, sim.PeriodicStimuli(d.FuelSample, 9000, 150_000, until,
		func(i int) int64 { return 40 - 2*int64(i) })...)

	res, err := sim.Run(d.Net, stim, until, sim.Options{
		Cfg:      rtos.DefaultConfig(),
		Mode:     sim.VMExact,
		Profile:  prof,
		Ordering: sgraph.OrderSiftAfterSupport,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %.0f ms of driving, CPU utilisation %.1f%%\n",
		float64(res.Cycles)/float64(prof.ClockKHz), 100*res.System.Utilization())
	fmt.Printf("alarm_on events:  %d (belt never fastened after key on)\n",
		sim.CountEmissions(res.Trace, d.AlarmOn))
	fmt.Printf("alarm_off events: %d (alarm times out)\n",
		sim.CountEmissions(res.Trace, d.AlarmOff))
	fmt.Printf("speed updates: %d, gauge duty updates: %d\n",
		sim.CountEmissions(res.Trace, d.Speed), sim.CountEmissions(res.Trace, d.SpeedDuty))
	fmt.Printf("low fuel warnings: %d\n", sim.CountEmissions(res.Trace, d.LowFuel))

	var lastSpeed, lastDuty int64 = -1, -1
	for _, e := range res.Trace {
		switch e.Signal {
		case d.Speed:
			lastSpeed = e.Value
		case d.SpeedDuty:
			lastDuty = e.Value
		}
	}
	fmt.Printf("final speed %d km/h -> gauge duty %d/255\n", lastSpeed, lastDuty)
	fmt.Printf("sensor-to-gauge latency: max %d cycles (%.0f us)\n",
		sim.MaxLatency(res.Trace, d.WheelPulse, d.SpeedDuty),
		float64(sim.MaxLatency(res.Trace, d.WheelPulse, d.SpeedDuty))*1000/float64(prof.ClockKHz))
}
