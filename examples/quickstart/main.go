// Quickstart: synthesize the paper's Fig. 1 module through the public
// API, inspect the s-graph, the generated C, the object code and the
// cost estimate, then execute a few reactions on the virtual target.
package main

import (
	"fmt"
	"log"

	"polis"
	"polis/internal/vm"
)

const simple = `
module simple:        % the running example of the paper (Fig. 1)
input c : integer;    % valued input event
output y;             % pure output event
var a : integer in
loop
  await c;            % wait for c to be present
  if a = ?c then      % compare the state with the event value
    a := 0; emit y;
  else
    a := a + 1;
  end if
end loop
end var
end module
`

func main() {
	art, err := polis.SynthesizeSource(simple, polis.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== synthesis report ==")
	fmt.Print(art.Report(nil))

	fmt.Println("\n== s-graph (Fig. 1) ==")
	fmt.Print(art.SGraph.Dot())

	fmt.Println("\n== generated C ==")
	fmt.Print(art.C)

	fmt.Println("\n== object code ==")
	fmt.Print(art.Listing)

	// Execute three reactions on the virtual CPU: c=2 arrives three
	// times; the third match (a counts 0,1,2) emits y.
	fmt.Println("\n== execution on the virtual target ==")
	host := &demoHost{value: 2}
	m := vm.NewMachine(vm.HC11(), art.Program.Words, host)
	for step := 1; step <= 3; step++ {
		host.present = true
		cycles, err := m.Run(art.Program, art.CFSM.Name+"_react")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reaction %d: %d cycles, emitted y: %v\n", step, cycles, host.emittedY)
		host.emittedY = false
	}
}

// demoHost feeds the event c with a fixed value and observes y.
type demoHost struct {
	present  bool
	value    int64
	emittedY bool
}

func (h *demoHost) Present(sig int) bool { return h.present }
func (h *demoHost) Value(sig int) int64  { return h.value }
func (h *demoHost) Emit(sig int)         { h.emittedY = true }
func (h *demoHost) EmitValue(sig int, v int64) {
	h.emittedY = true
}
