package polis

// The benchmark harness regenerates every table and figure of the
// paper's experimental section (see DESIGN.md Section 3 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured records):
//
//	BenchmarkFig1SimpleSGraph  — Fig. 1, the `simple` module's s-graph
//	BenchmarkTable1Estimation  — Table I, estimation vs measurement
//	BenchmarkTable2Orderings   — Table II, ordering strategies
//	BenchmarkTable3VsEsterel   — Table III, Esterel strategy comparison
//	BenchmarkShockAbsorber     — Section V-B redesign
//	BenchmarkAblationCollapse  — TEST-node collapsing (negative result)
//	BenchmarkAblationRTOS      — generated vs commercial RTOS; polling vs IRQ
//	BenchmarkAblationCopies    — write-before-read copy optimisation
//	BenchmarkAblationFalsePaths— event-incompatibility WCET pruning
//	BenchmarkAblationReduce    — fixed-point s-graph reduction engine
//	BenchmarkAblationChaining  — Section IV-A task chaining
//	BenchmarkPartitionSweep    — hardware/software partitioning trade-off
//
// Run with `go test -bench=. -benchmem`; each bench reports its key
// figures as custom metrics and prints the full table once.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/experiments"
	"polis/internal/pipeline"
	"polis/internal/randcfsm"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

var printOnce sync.Once

// BenchmarkFig1SimpleSGraph reproduces Fig. 1: synthesis of the
// paper's `simple` Esterel module into its s-graph and code.
func BenchmarkFig1SimpleSGraph(b *testing.B) {
	var art *Artifacts
	for i := 0; i < b.N; i++ {
		var err error
		art, err = SynthesizeSource(fig1, Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	st := art.SGraph.ComputeStats()
	b.ReportMetric(float64(st.Tests), "TESTs")
	b.ReportMetric(float64(st.Assigns), "ASSIGNs")
	b.ReportMetric(float64(art.CodeSize), "code-bytes")
}

// BenchmarkTable1Estimation regenerates Table I on the HC11-class
// target and reports the worst estimation errors.
func BenchmarkTable1Estimation(b *testing.B) {
	prof := vm.HC11()
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table1(prof)
		if err != nil {
			b.Fatal(err)
		}
	}
	var worstSize, worstCyc float64
	for _, r := range rows {
		if e := abs(r.SizeErrPct); e > worstSize {
			worstSize = e
		}
		if e := abs(r.CycErrPct); e > worstCyc {
			worstCyc = e
		}
	}
	b.ReportMetric(worstSize, "worst-size-err-%")
	b.ReportMetric(worstCyc, "worst-cycle-err-%")
	printOnce.Do(func() { b.Log("\n" + experiments.FormatTable1(prof, rows)) })
}

// BenchmarkTable2Orderings regenerates Table II and reports total
// bytes per strategy.
func BenchmarkTable2Orderings(b *testing.B) {
	prof := vm.HC11()
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2(prof)
		if err != nil {
			b.Fatal(err)
		}
	}
	var tn, ti, ts, tt int64
	for _, r := range rows {
		tn += r.Naive
		ti += r.SiftInputsFirst
		ts += r.SiftAfterSupport
		tt += r.TwoLevelJump
	}
	b.ReportMetric(float64(tn), "naive-bytes")
	b.ReportMetric(float64(ti), "sift-inputs-bytes")
	b.ReportMetric(float64(ts), "sift-support-bytes")
	b.ReportMetric(float64(tt), "two-level-bytes")
	b.Log("\n" + experiments.FormatTable2(prof, rows))
}

// BenchmarkTable3VsEsterel regenerates Table III on the R3K-class
// target.
func BenchmarkTable3VsEsterel(b *testing.B) {
	prof := vm.R3K()
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3(prof)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.CodeBytes), r.Approach+"-bytes")
		b.ReportMetric(float64(r.SimCycles), r.Approach+"-cycles")
	}
	b.Log("\n" + experiments.FormatTable3(prof, rows))
}

// BenchmarkShockAbsorber regenerates the Section V-B redesign.
func BenchmarkShockAbsorber(b *testing.B) {
	prof := vm.HC11()
	var rep *experiments.ShockReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.ShockAbsorberExperiment(prof)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.SynthROM), "synth-ROM-bytes")
	b.ReportMetric(float64(rep.SynthRAM), "synth-RAM-bytes")
	b.ReportMetric(float64(rep.MaxLat), "latency-cycles")
	b.Log("\n" + experiments.FormatShock(prof, rep))
}

// BenchmarkAblationCollapse regenerates the TEST-node collapsing
// ablation.
func BenchmarkAblationCollapse(b *testing.B) {
	prof := vm.HC11()
	var rows []experiments.CollapseRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationCollapse(prof)
		if err != nil {
			b.Fatal(err)
		}
	}
	var pb, cb int64
	for _, r := range rows {
		pb += r.PlainBytes
		cb += r.CollapsedB
	}
	b.ReportMetric(float64(pb), "plain-bytes")
	b.ReportMetric(float64(cb), "collapsed-bytes")
	b.Log("\n" + experiments.FormatCollapse(prof, rows))
}

// BenchmarkAblationRTOS regenerates the RTOS ablation.
func BenchmarkAblationRTOS(b *testing.B) {
	prof := vm.HC11()
	var rep *experiments.RTOSReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.AblationRTOS(prof)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.GeneratedROM), "generated-ROM-bytes")
	b.ReportMetric(float64(rep.CommercialROM), "commercial-ROM-bytes")
	b.ReportMetric(float64(rep.InterruptLat), "irq-latency-cycles")
	b.ReportMetric(float64(rep.PollingLat), "poll-latency-cycles")
	b.Log("\n" + experiments.FormatRTOS(prof, rep))
}

// BenchmarkAblationCopies regenerates the copy-on-entry ablation.
func BenchmarkAblationCopies(b *testing.B) {
	prof := vm.HC11()
	var rows []experiments.CopyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationCopies(prof)
		if err != nil {
			b.Fatal(err)
		}
	}
	var full, opt int64
	for _, r := range rows {
		full += r.FullROM + r.FullRAM
		opt += r.OptROM + r.OptRAM
	}
	b.ReportMetric(float64(full), "copy-all-bytes")
	b.ReportMetric(float64(opt), "optimized-bytes")
	b.Log("\n" + experiments.FormatCopies(prof, rows))
}

// BenchmarkAblationFalsePaths regenerates the WCET pruning ablation.
func BenchmarkAblationFalsePaths(b *testing.B) {
	prof := vm.HC11()
	var rows []experiments.FalsePathRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationFalsePaths(prof)
		if err != nil {
			b.Fatal(err)
		}
	}
	var plain, pruned int64
	for _, r := range rows {
		plain += r.PlainMax
		pruned += r.PrunedMax
	}
	b.ReportMetric(float64(plain), "plain-wcet-cycles")
	b.ReportMetric(float64(pruned), "pruned-wcet-cycles")
	b.Log("\n" + experiments.FormatFalsePaths(prof, rows))
}

// BenchmarkAblationReduce regenerates the s-graph reduction ablation
// and reports the aggregate code-size and WCET deltas of reduce-off
// versus reduce-on synthesis (bench.sh folds these into BENCH_*.json).
func BenchmarkAblationReduce(b *testing.B) {
	prof := vm.HC11()
	var rows []experiments.ReduceRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationReduce(prof)
		if err != nil {
			b.Fatal(err)
		}
	}
	var pb, rb, pc, rc int64
	elim := 0
	for _, r := range rows {
		pb += r.PlainBytes
		rb += r.ReducedBytes
		pc += r.PlainMaxCyc
		rc += r.ReducedCyc
		elim += r.Stats.TestsEliminated
	}
	b.ReportMetric(float64(pb), "plain-code-bytes")
	b.ReportMetric(float64(rb), "reduced-code-bytes")
	b.ReportMetric(float64(pc), "plain-wcet-cycles")
	b.ReportMetric(float64(rc), "reduced-wcet-cycles")
	b.ReportMetric(float64(elim), "tests-eliminated")
	b.Log("\n" + experiments.FormatReduce(prof, rows))
}

// BenchmarkSynthesisThroughput measures the end-to-end synthesis rate
// over the dashboard (the "total elapsed time to generate the software
// implementation" column of Table III, per module).
func BenchmarkSynthesisThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(vm.HC11()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSGraphBuild isolates the BDD-to-s-graph construction.
func BenchmarkSGraphBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := SynthesizeSource(fig1, Options{Ordering: sgraph.OrderNaive}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharFn measures the wide characteristic-function build —
// chi = AND_j (z_j <-> f_j(x)) over a population of random machines —
// the BDD-heaviest step of the synthesis front end and the shape the
// complement-edge representation targets (every output literal is
// paired with its complement). It reports the classical node count
// (chi-size), the physical count after complement-edge sharing
// (chi-shared), and the kernel's peak live nodes and op-cache hit
// rate.
func BenchmarkCharFn(b *testing.B) {
	cfg := randcfsm.Config{
		MaxInputs:      6,
		MaxOutputs:     6,
		MaxControlVars: 3,
		MaxDataVars:    2,
		MaxTransitions: 40,
		ValueRange:     8,
	}
	const machines = 12
	var classical, shared, peak, hitPct float64
	for i := 0; i < b.N; i++ {
		classical, shared, peak, hitPct = 0, 0, 0, 0
		r := rand.New(rand.NewSource(1995))
		for k := 0; k < machines; k++ {
			mach := randcfsm.New(r, cfg)
			react, err := cfsm.BuildReactive(mach.C)
			if err != nil {
				b.Fatal(err)
			}
			m := react.Space.M
			classical += float64(m.Size(react.Chi))
			shared += float64(m.SharedSize(react.Chi))
			peak += float64(m.PeakNodes)
			if tot := m.Hits + m.Misses; tot > 0 {
				hitPct += 100 * float64(m.Hits) / float64(tot)
			}
		}
		hitPct /= machines
	}
	b.ReportMetric(classical, "chi-size")
	b.ReportMetric(shared, "chi-shared")
	b.ReportMetric(peak, "peak-nodes")
	b.ReportMetric(hitPct, "cache-hit-%")
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// BenchmarkPartitionSweep regenerates the hardware/software
// partitioning trade-off sweep (the co-design decision the paper's
// estimates feed).
func BenchmarkPartitionSweep(b *testing.B) {
	prof := vm.HC11()
	var rows []experiments.PartitionRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.PartitionSweep(prof)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.MaxLatency), r.Name+"-latency")
	}
	b.Log("\n" + experiments.FormatPartition(prof, rows))
}

// BenchmarkAblationChaining regenerates the Section IV-A task-chaining
// measurement.
func BenchmarkAblationChaining(b *testing.B) {
	prof := vm.HC11()
	var rows []experiments.ChainRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationChaining(prof)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.MaxLatency), r.Name+"-latency")
	}
	b.Log("\n" + experiments.FormatChaining(prof, rows))
}

// BenchmarkSynthesizeNetwork measures whole-network synthesis through
// internal/pipeline over a 16-CFSM random network: serial-vs-parallel
// worker scaling, then a warm-cache rerun that should cost a small
// fraction of a cold compile.
func BenchmarkSynthesizeNetwork(b *testing.B) {
	cfg := randcfsm.Config{
		MaxInputs:      5,
		MaxOutputs:     4,
		MaxControlVars: 3,
		MaxDataVars:    3,
		MaxTransitions: 24,
		ValueRange:     8,
	}
	net, _, err := randcfsm.NewNetwork(rand.New(rand.NewSource(42)), 16, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SynthesizeNetwork(net, Options{}, pipeline.Config{Jobs: jobs}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(net.Machines)), "modules")
		})
	}
	b.Run("warm-cache", func(b *testing.B) {
		cache, err := pipeline.NewCache("")
		if err != nil {
			b.Fatal(err)
		}
		// Populate outside the timed region: the measured cost is the
		// all-hits rerun.
		if _, err := SynthesizeNetwork(net, Options{}, pipeline.Config{Jobs: 4, Cache: cache}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := SynthesizeNetwork(net, Options{}, pipeline.Config{Jobs: 4, Cache: cache}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
