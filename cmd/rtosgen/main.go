// Command rtosgen emits the C source of the automatically generated
// RTOS (Section IV) for a benchmark design: the scheduler loop for the
// chosen policy, the statically expanded event emission/detection
// services, ISRs or the polling routine, plus the size model on the
// target.
//
// Usage:
//
//	rtosgen [-design dashboard|shock] [-policy rr|prio] [-preemptive]
//	        [-poll sig1,sig2] [-target hc11|r3k]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"polis"
	"polis/internal/cfsm"
	"polis/internal/designs"
	"polis/internal/rtos"
	"polis/internal/vm"
)

func main() {
	design := flag.String("design", "shock", "benchmark design: dashboard or shock")
	policy := flag.String("policy", "rr", "scheduling policy: rr or prio")
	preemptive := flag.Bool("preemptive", false, "preemptive static priorities")
	poll := flag.String("poll", "", "comma-separated signals delivered by polling")
	target := flag.String("target", "hc11", "cost profile: hc11 or r3k")
	flag.Parse()

	var prof *vm.Profile
	switch *target {
	case "hc11":
		prof = vm.HC11()
	case "r3k":
		prof = vm.R3K()
	default:
		fatal(fmt.Errorf("unknown target %q", *target))
	}

	var net *cfsm.Network
	switch *design {
	case "dashboard":
		net = designs.NewDashboard().Net
	case "shock":
		net = designs.NewShockAbsorber().Net
	default:
		fatal(fmt.Errorf("unknown design %q", *design))
	}

	cfg := rtos.DefaultConfig()
	if *policy == "prio" {
		cfg.Policy = rtos.StaticPriority
		for i, m := range net.Machines {
			cfg.Priority[m] = len(net.Machines) - i
		}
	}
	cfg.Preemptive = *preemptive
	if *poll != "" {
		byName := map[string]*cfsm.Signal{}
		for _, s := range net.Signals {
			byName[s.Name] = s
		}
		for _, name := range strings.Split(*poll, ",") {
			s, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatal(fmt.Errorf("unknown signal %q", name))
			}
			cfg.Deliver[s] = rtos.Polling
		}
	}

	src, size, err := polis.GenerateRTOS(net, cfg, prof)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("/* size model on %s: ROM %d bytes, RAM %d bytes */\n\n",
		prof.Name, size.CodeBytes, size.DataBytes)
	fmt.Print(src)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtosgen:", err)
	os.Exit(1)
}
