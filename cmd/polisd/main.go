// Command polisd runs the POLIS synthesis flow as a long-running HTTP
// service (see internal/polisd): clients POST CFSM networks in the
// JSON wire format to /synthesize and receive per-module results as
// an NDJSON stream (or one aggregate JSON object), backed by a
// process-lifetime warm cache with singleflight dedup, so identical
// modules — across requests and across clients — synthesize once and
// an edited network re-synthesizes only its changed machines.
//
// Usage:
//
//	polisd [-addr host:port] [-workers N] [-queue N] [-max-batch N]
//	       [-deadline dur] [-cache dir] [-quiet]
//	polisd loadgen [-url http://...] [-n N] [-c N] [-networks N]
//	       [-modules N] [-edit-rate f] [-seed N] [-deadline-ms N]
//
// The daemon prints "listening on http://host:port" once bound (use
// -addr 127.0.0.1:0 for an ephemeral port) and drains gracefully on
// SIGINT/SIGTERM: /healthz flips to 503, new synthesis requests are
// rejected, in-flight requests finish. The loadgen subcommand drives
// a running daemon with randomly generated networks, mutating them at
// -edit-rate to exercise incremental re-synthesis, and reports
// throughput, latency percentiles and the cache-hit ratio.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"polis/internal/polisd"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole driver; split from main so tests can execute it
// with captured output and a controlled signal.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "loadgen" {
		return runLoadgen(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("polisd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7315", "listen address (use :0 for an ephemeral port)")
	workers := fs.Int("workers", 4, "concurrent synthesis workers")
	queue := fs.Int("queue", 256, "admission queue depth (in-flight modules)")
	maxBatch := fs.Int("max-batch", 256, "max machines per request")
	deadline := fs.Duration("deadline", 30*time.Second, "default per-request deadline")
	cacheDir := fs.String("cache", "", "on-disk artifact cache directory")
	drainWait := fs.Duration("drain", time.Minute, "max wait for in-flight requests on shutdown")
	quiet := fs.Bool("quiet", false, "suppress per-request logging")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Request handlers log concurrently; serialize writes so any
	// io.Writer (a file, a test buffer) is safe.
	var logMu sync.Mutex
	lprintf := func(format string, a ...any) {
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(stderr, "polisd: "+format+"\n", a...)
	}
	logf := lprintf
	if *quiet {
		logf = nil
	}
	srv, err := polisd.New(polisd.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		MaxBatch:        *maxBatch,
		DefaultDeadline: *deadline,
		CacheDir:        *cacheDir,
		Logf:            logf,
	})
	if err != nil {
		return fail(stderr, err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fail(stderr, err)
	case <-ctx.Done():
	}
	stop()
	lprintf("signal received, draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	code := 0
	if err := srv.Shutdown(dctx); err != nil {
		code = fail(stderr, err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		code = fail(stderr, err)
	}
	fmt.Fprintf(stdout, "drained\n")
	return code
}

func runLoadgen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("polisd loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "http://127.0.0.1:7315", "service base URL")
	n := fs.Int("n", 100, "total requests")
	c := fs.Int("c", 8, "concurrent clients")
	networks := fs.Int("networks", 0, "distinct base networks (0: one per client)")
	modules := fs.Int("modules", 4, "machines per network")
	editRate := fs.Float64("edit-rate", 0, "probability a request edits one machine first")
	seed := fs.Int64("seed", 1, "generator seed")
	deadlineMS := fs.Int("deadline-ms", 0, "per-request deadline sent to the server (0: server default)")
	timeout := fs.Duration("timeout", 10*time.Minute, "whole-run timeout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	rep, err := polisd.RunLoad(ctx, polisd.LoadConfig{
		URL:         *url,
		Requests:    *n,
		Concurrency: *c,
		Networks:    *networks,
		Modules:     *modules,
		EditRate:    *editRate,
		Seed:        *seed,
		DeadlineMS:  *deadlineMS,
	})
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprint(stdout, rep)
	if rep.Errors > 0 || rep.Status[http.StatusOK] != rep.Requests {
		fmt.Fprintf(stderr, "polisd loadgen: not every request succeeded\n")
		return 1
	}
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "polisd: %v\n", err)
	return 1
}
