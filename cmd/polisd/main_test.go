package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"polis/internal/polisd"
	"polis/internal/randcfsm"
)

// startDaemon runs the daemon on an ephemeral port and returns its
// base URL plus a channel carrying run's exit code after shutdown.
func startDaemon(t *testing.T, extra ...string) (string, chan int, *bytes.Buffer) {
	t.Helper()
	pr, pw := io.Pipe()
	var stderr bytes.Buffer
	exit := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, extra...)
	go func() {
		exit <- run(args, pw, &stderr)
		pw.Close()
	}()
	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatalf("daemon produced no output; stderr:\n%s", stderr.String())
	}
	line := sc.Text()
	url, ok := strings.CutPrefix(line, "listening on ")
	if !ok {
		t.Fatalf("unexpected first line %q", line)
	}
	go io.Copy(io.Discard, pr) // keep the pipe drained
	return url, exit, &stderr
}

func post(t *testing.T, url string, req polisd.SynthRequest) *polisd.SynthResponse {
	t.Helper()
	req.Aggregate = true
	body, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(url+"/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(hr.Body)
		t.Fatalf("status %d: %s", hr.StatusCode, b)
	}
	var resp polisd.SynthResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return &resp
}

// TestDaemonEndToEnd drives the real binary surface: boot on an
// ephemeral port, synthesize a batch twice (second run all cache
// hits), run the loadgen subcommand against it, read /stats, then
// drain via SIGTERM.
func TestDaemonEndToEnd(t *testing.T) {
	url, exit, stderr := startDaemon(t)

	net, _, err := randcfsm.NewNetwork(rand.New(rand.NewSource(3)), 3, randcfsm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wire := polisd.EncodeNetwork(net)

	if resp := post(t, url, polisd.SynthRequest{Network: wire}); resp.Misses != 3 || resp.Errors != 0 {
		t.Fatalf("cold batch: %+v", resp.SynthSummary)
	}
	if resp := post(t, url, polisd.SynthRequest{Network: wire}); resp.MemHits != 3 || resp.Misses != 0 {
		t.Fatalf("warm batch not fully cached: %+v", resp.SynthSummary)
	}

	var lg bytes.Buffer
	if code := run([]string{"loadgen", "-url", url, "-n", "40", "-c", "8", "-networks", "2", "-modules", "2", "-edit-rate", "0.2", "-seed", "5"}, &lg, &lg); code != 0 {
		t.Fatalf("loadgen exit %d:\n%s", code, lg.String())
	}
	if !strings.Contains(lg.String(), "hit ratio") {
		t.Errorf("loadgen report missing hit ratio:\n%s", lg.String())
	}

	hr, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st polisd.Stats
	err = json.NewDecoder(hr.Body).Decode(&st)
	hr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.OK < 42 || st.Modules["miss"] == 0 || st.Report == "" {
		t.Errorf("implausible stats after load: ok=%d modules=%v", st.OK, st.Modules)
	}

	// SIGTERM drains: the daemon catches it, finishes, and run
	// returns 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exit %d; stderr:\n%s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain within 30s")
	}
	if !strings.Contains(stderr.String(), "draining") {
		t.Errorf("drain not logged:\n%s", stderr.String())
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("daemon still serving after drain")
	}
}

// TestBadFlags: unknown flags exit 2 without crashing.
func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &out); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"loadgen", "-nope"}, &out, &out); code != 2 {
		t.Fatalf("loadgen exit %d, want 2", code)
	}
}
