// Command cfsmsim co-simulates a benchmark design under its generated
// RTOS: software CFSMs execute on the cycle-accurate virtual CPU,
// environment stimuli arrive on a cycle timeline, and the tool prints
// the event trace summary, end-to-end latencies and CPU utilisation.
//
// Usage:
//
//	cfsmsim [-design dashboard|shock] [-target hc11|r3k]
//	        [-until cycles] [-mode vm|behavioral] [-policy rr|prio]
//	        [-parallel] [-workers n] [-trace]
//	        [-profile-out prof.json] [-profile prof.json -specialize]
//
// -profile-out captures an execution profile (per-module TEST outcome
// frequencies) during the run and writes it as JSON; feeding it back
// with -profile -specialize (or to polisc -profile -specialize)
// reorders each module's TEST outcome edges so the observed hot path
// becomes the fall-through path, equivalence-gated per module.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"polis/internal/cfsm"
	"polis/internal/designs"
	"polis/internal/profile"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/sim"
	"polis/internal/vm"
)

func main() {
	design := flag.String("design", "dashboard", "benchmark design: dashboard or shock")
	target := flag.String("target", "hc11", "cost profile: hc11 or r3k")
	until := flag.Int64("until", 2_000_000, "simulation horizon in cycles")
	mode := flag.String("mode", "vm", "software timing: vm (exact) or behavioral (estimated)")
	policy := flag.String("policy", "rr", "scheduling policy: rr or prio")
	parallel := flag.Bool("parallel", false, "simulate clock-independent GALS islands concurrently (one RTOS per island)")
	workers := flag.Int("workers", 0, "island worker pool size with -parallel; 0 uses GOMAXPROCS")
	trace := flag.Bool("trace", false, "dump the full event trace")
	csvPath := flag.String("csv", "", "write the event trace as CSV to this file")
	dot := flag.Bool("dot", false, "print the network topology in Graphviz format and exit")
	profOut := flag.String("profile-out", "", "capture an execution profile and write it as JSON")
	profIn := flag.String("profile", "", "execution profile JSON (from a -profile-out run)")
	specialize := flag.Bool("specialize", false, "reorder TEST outcomes hot-path-first using -profile")
	flag.Parse()

	var prof *vm.Profile
	switch *target {
	case "hc11":
		prof = vm.HC11()
	case "r3k":
		prof = vm.R3K()
	default:
		fatal(fmt.Errorf("unknown target %q", *target))
	}
	opts := sim.Options{
		Cfg:       rtos.DefaultConfig(),
		Profile:   prof,
		Ordering:  sgraph.OrderSiftAfterSupport,
		Partition: *parallel,
		Workers:   *workers,
	}
	if *mode == "vm" {
		opts.Mode = sim.VMExact
	}
	if *policy == "prio" {
		opts.Cfg.Policy = rtos.StaticPriority
	}
	if *specialize != (*profIn != "") {
		fatal(fmt.Errorf("-specialize and -profile must be used together"))
	}
	if *specialize {
		p, err := profile.Load(*profIn)
		if err != nil {
			fatal(err)
		}
		opts.Specialize = p
	}
	var collector *profile.Collector
	if *profOut != "" {
		collector = profile.NewCollector()
		opts.Probe = collector
	}

	var net *cfsm.Network
	var stimuli []sim.Stimulus
	var pairs [][2]*cfsm.Signal
	switch *design {
	case "dashboard":
		d := designs.NewDashboard()
		net = d.Net
		stimuli = append(stimuli, sim.Stimulus{Time: 1000, Signal: d.KeyOn})
		stimuli = append(stimuli, sim.PeriodicStimuli(d.Tick, 2000, 10_000, *until, nil)...)
		stimuli = append(stimuli, sim.PeriodicStimuli(d.WheelPulse, 3000, 40_000, *until,
			func(i int) int64 { return int64(60 + i%20) })...)
		stimuli = append(stimuli, sim.PeriodicStimuli(d.RPMPulse, 4000, 50_000, *until,
			func(i int) int64 { return int64(15 + i%10) })...)
		stimuli = append(stimuli, sim.PeriodicStimuli(d.FuelSample, 5000, 200_000, *until,
			func(i int) int64 { return int64(50 - i) })...)
		pairs = [][2]*cfsm.Signal{
			{d.WheelPulse, d.SpeedDuty},
			{d.RPMPulse, d.RPMDuty},
			{d.FuelSample, d.FuelDuty},
		}
	case "shock":
		s := designs.NewShockAbsorber()
		net = s.Net
		stimuli = append(stimuli, sim.PeriodicStimuli(s.AccelSample, 1000, 4000, *until,
			func(i int) int64 { return int64(40 + (i%9)*9) })...)
		stimuli = append(stimuli, sim.Stimulus{Time: 500, Signal: s.SpeedSample, Value: 95})
		stimuli = append(stimuli, sim.PeriodicStimuli(s.Tick, 3000, 20_000, *until, nil)...)
		stimuli = append(stimuli, sim.PeriodicStimuli(s.ActAck, 3500, 20_000, *until, nil)...)
		pairs = [][2]*cfsm.Signal{{s.AccelSample, s.Solenoid}}
	default:
		fatal(fmt.Errorf("unknown design %q", *design))
	}

	if *dot {
		fmt.Print(net.Dot())
		return
	}

	res, err := sim.Run(net, stimuli, *until, opts)
	if err != nil {
		fatal(err)
	}
	if collector != nil {
		p := collector.Profile()
		if err := p.Save(*profOut); err != nil {
			fatal(err)
		}
		samples := int64(0)
		for _, mp := range p.Modules {
			samples += mp.Reactions
		}
		fmt.Printf("profile: %d module(s), %d reaction sample(s) written to %s\n",
			len(p.Modules), samples, *profOut)
	}
	if opts.Specialize != nil {
		fmt.Println("specialize: TEST outcomes reordered hot-path-first (equivalence-gated)")
	}

	// A partitioned run has one RTOS (and CPU) per island; aggregate the
	// per-island statistics for the summary lines.
	systems := res.Systems
	if systems == nil {
		systems = []*rtos.System{res.System}
	}
	var busy, now, schedCalls, interrupts int64
	for _, sys := range systems {
		busy += sys.BusyCycles
		if sys.Now > now {
			now = sys.Now
		}
		schedCalls += sys.ScheduleCalls
		interrupts += sys.Interrupts
	}
	util := 0.0
	if now > 0 {
		util = float64(busy) / float64(now*int64(len(systems)))
	}
	fmt.Printf("simulated %d cycles (%.2f ms at %d kHz), CPU utilisation %.1f%%\n",
		res.Cycles, float64(res.Cycles)/float64(prof.ClockKHz),
		prof.ClockKHz, 100*util)
	fmt.Printf("software: %d code bytes, %d data bytes; %d scheduler calls, %d interrupts\n",
		res.CodeBytes, res.DataBytes, schedCalls, interrupts)
	if len(systems) > 1 {
		fmt.Printf("partitions: %d clock-independent islands, one CPU each\n", len(systems))
	}

	counts := map[string]int{}
	for _, e := range res.Trace {
		if e.From != "env" && e.From != "poll" {
			counts[e.Signal.Name]++
		}
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("emissions:")
	for _, n := range names {
		fmt.Printf("  %-14s %6d\n", n, counts[n])
	}
	for _, pr := range pairs {
		lat := sim.MaxLatency(res.Trace, pr[0], pr[1])
		fmt.Printf("max latency %s -> %s: %d cycles\n", pr[0].Name, pr[1].Name, lat)
	}
	fmt.Println("task statistics:")
	for _, sys := range systems {
		for _, t := range sys.Tasks {
			fmt.Printf("  %-14s executions %6d  fired %6d  lost events %4d\n",
				t.M.Name, t.Executions, t.Fired, t.Lost)
		}
	}
	if *trace {
		fmt.Println("trace:")
		for _, e := range res.Trace {
			fmt.Printf("  %10d  %-14s value %6d  from %s\n", e.Time, e.Signal.Name, e.Value, e.From)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := sim.WriteTraceCSV(f, res.Trace); err != nil {
			f.Close()
			fatal(err)
		}
		// A failed Close loses buffered rows; it must be as fatal as a
		// failed write.
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("trace written to", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfsmsim:", err)
	os.Exit(1)
}
