// Command sgestimate prints the Table I style cost/performance report:
// the s-graph estimator's code size and min/max cycles for every
// module of a benchmark design, next to exact measurements of the
// compiled object code.
//
// Usage:
//
//	sgestimate [-target hc11|r3k] [-design dashboard|shock]
package main

import (
	"flag"
	"fmt"
	"os"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/designs"
	"polis/internal/estimate"
	"polis/internal/experiments"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

func main() {
	target := flag.String("target", "hc11", "cost profile: hc11 or r3k")
	design := flag.String("design", "dashboard", "benchmark design: dashboard or shock")
	flag.Parse()

	var prof *vm.Profile
	switch *target {
	case "hc11":
		prof = vm.HC11()
	case "r3k":
		prof = vm.R3K()
	default:
		fatal(fmt.Errorf("unknown target %q", *target))
	}

	switch *design {
	case "dashboard":
		rows, err := experiments.Table1(prof)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatTable1(prof, rows))
	case "shock":
		s := designs.NewShockAbsorber()
		params, err := estimate.Calibrate(prof)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Cost/performance estimation, shock absorber, target %s\n", prof.Name)
		fmt.Printf("%-16s %9s %9s %9s %9s\n", "CFSM", "est size", "act size", "est max", "act max")
		for _, m := range s.Modules() {
			r, err := cfsm.BuildReactive(m)
			if err != nil {
				fatal(err)
			}
			g, err := sgraph.Build(r, sgraph.OrderSiftAfterSupport)
			if err != nil {
				fatal(err)
			}
			p, err := codegen.Assemble(g, codegen.NewSignalMap(m), codegen.Options{})
			if err != nil {
				fatal(err)
			}
			est := estimate.EstimateSGraph(g, params, estimate.Options{})
			act, err := vm.AnalyzeCycles(prof, p, codegen.EntryLabel(m))
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-16s %9d %9d %9d %9d\n",
				m.Name, est.CodeBytes, prof.CodeSize(p), est.MaxCycles, act.Max)
		}
	default:
		fatal(fmt.Errorf("unknown design %q", *design))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sgestimate:", err)
	os.Exit(1)
}
