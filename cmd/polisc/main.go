// Command polisc is the synthesis driver: it compiles an
// Esterel-subset module (see internal/esterel) into C and virtual
// object code, printing the cost/performance report the POLIS flow
// uses for partitioning decisions.
//
// Usage:
//
//	polisc [-target hc11|r3k] [-order default|naive|inputs-first]
//	       [-j N] [-cache dir] [-stats] [-reduce]
//	       [-shards N] [-shard-strategy hash|size] [-shard-procs]
//	       [-profile prof.json -specialize]
//	       [-c] [-asm] [-dot] [-optimize-copies] [-o dir] [file.strl]
//	polisc fuzz [-seed N] [-runs N] [-config "k=v,..."]
//	polisc shard-worker   (internal: exec'd by -shard-procs)
//
// -profile loads an execution profile captured by cfsmsim
// -profile-out; with -specialize the synthesis reorders each covered
// module's TEST outcome edges so the observed hot path becomes the
// fall-through path (equivalence-gated), and the report gains the
// profile-weighted expected cycles next to the worst-case bound.
//
// The fuzz subcommand runs the network-scale co-simulation fuzz
// harness (internal/netfuzz): randomized GALS networks simulated in
// both behavioral and cycle-exact mode under differential invariants.
// Without -config each seed draws its own scenario shape; with
// -config the exact scenario replays, which is how a failure printed
// as "polisc fuzz -seed N -config ..." is reproduced.
//
// A source file may contain several modules: same-named signals
// connect them into a network, each module is synthesized separately
// and the generated RTOS is sized for the whole system. Modules are
// compiled concurrently on -j workers (default: all CPUs) through the
// internal/pipeline package; module order in the output is the source
// order regardless of the worker count. -cache names a directory used
// as a content-addressed artifact cache so repeated runs over
// unchanged modules are instant; -stats prints the pipeline's
// per-stage timing, BDD and cache-counter report.
//
// -shards N routes synthesis through the map-reduce driver
// (internal/shard): modules are partitioned into N deterministic
// shards (-shard-strategy hash|size), mapped through the shared
// artifact cache, and reduced back into source order — output is
// byte-identical to an unsharded run for any shard count. With
// -shard-procs each shard runs as a separate `polisc shard-worker`
// process and the -cache directory becomes the shuffle layer the
// workers publish into (a temporary directory is used when -cache is
// not given); the reducer fetches every artifact back from it by
// fingerprint. -stats adds the per-shard wall-time and miss|mem|disk|
// dedup attribution lines to the report. With no file, the
// paper's Fig. 1 module is synthesized as a demo. With -o, the
// generated C sources (one per module, plus polis_rtos.h and the RTOS)
// are written into the given directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"polis"
	"polis/internal/codegen"
	"polis/internal/esterel"
	"polis/internal/estimate"
	"polis/internal/netfuzz"
	"polis/internal/pipeline"
	"polis/internal/profile"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/shard"
	"polis/internal/vm"
)

const demo = `
module simple: % the paper's Fig. 1 example
input c : integer;
output y;
var a : integer in
loop
  await c;
  if a = ?c then a := 0; emit y;
  else a := a + 1;
  end if
end loop
end var
end module
`

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole driver; split from main so tests can execute it
// with captured output and compare runs across flag sets.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "fuzz" {
		return runFuzz(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "shard-worker" {
		return runShardWorker(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("polisc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	target := fs.String("target", "hc11", "cost profile: hc11 or r3k")
	order := fs.String("order", "default", "variable ordering: default, naive, inputs-first")
	emitC := fs.Bool("c", false, "print the generated C")
	emitAsm := fs.Bool("asm", false, "print the object-code listing")
	emitDot := fs.Bool("dot", false, "print the s-graph in Graphviz format")
	optCopies := fs.Bool("optimize-copies", false, "apply the write-before-read copy analysis")
	reduce := fs.Bool("reduce", false, "run the fixed-point s-graph reduction engine before codegen")
	outDir := fs.String("o", "", "write generated C sources into this directory")
	showParams := fs.Bool("params", false, "print the calibrated cost parameters and exit")
	jobs := fs.Int("j", 0, "synthesize up to N modules concurrently (0 = all CPUs)")
	cacheDir := fs.String("cache", "", "artifact cache directory (empty = in-memory only)")
	stats := fs.Bool("stats", false, "print the pipeline statistics report")
	profPath := fs.String("profile", "", "execution profile JSON (from cfsmsim -profile-out)")
	specialize := fs.Bool("specialize", false, "reorder TEST outcomes hot-path-first using -profile")
	shards := fs.Int("shards", 0, "partition modules into N map-reduce shards (0 = off)")
	shardStrat := fs.String("shard-strategy", "hash", "shard partitioner: hash or size")
	shardProcs := fs.Bool("shard-procs", false, "run each shard as a separate shard-worker process")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	src := demo
	if fs.NArg() > 0 {
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return fail(stderr, err)
		}
		src = string(data)
	}

	opt := polis.Options{}
	switch *target {
	case "hc11":
		opt.Target = vm.HC11()
	case "r3k":
		opt.Target = vm.R3K()
	default:
		return fail(stderr, fmt.Errorf("unknown target %q", *target))
	}
	switch *order {
	case "default":
		opt.Ordering = sgraph.OrderSiftAfterSupport
	case "naive":
		opt.Ordering = sgraph.OrderNaive
	case "inputs-first":
		opt.Ordering = sgraph.OrderSiftInputsFirst
	default:
		return fail(stderr, fmt.Errorf("unknown ordering %q", *order))
	}
	opt.Codegen.OptimizeCopies = *optCopies
	opt.Reduce = *reduce
	if *specialize != (*profPath != "") {
		return fail(stderr, fmt.Errorf("-specialize and -profile must be used together"))
	}
	if *specialize {
		p, err := profile.Load(*profPath)
		if err != nil {
			return fail(stderr, err)
		}
		opt.Profile = p
	}

	if *showParams {
		params, err := estimate.Calibrate(opt.Target)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprint(stdout, params.Format())
		return 0
	}

	net, _, err := esterel.CompileProgram(src)
	if err != nil {
		return fail(stderr, err)
	}

	cache, err := pipeline.NewCache(*cacheDir)
	if err != nil {
		return fail(stderr, err)
	}
	col := pipeline.NewCollector()
	var arts []*pipeline.Artifact
	var shardRep *shard.Report
	if *shards != 0 || *shardProcs {
		strat, err := shard.ParseStrategy(*shardStrat)
		if err != nil {
			return fail(stderr, err)
		}
		sopt := shard.Options{
			Shards:   *shards,
			Strategy: strat,
			Pipeline: opt.Pipeline(),
			CacheDir: *cacheDir,
		}
		if *shardProcs {
			// Process mode needs an on-disk shuffle layer; fall back to
			// a run-scoped temporary directory when -cache is not given.
			if sopt.CacheDir == "" {
				tmp, err := os.MkdirTemp("", "polisc-shard-*")
				if err != nil {
					return fail(stderr, err)
				}
				defer os.RemoveAll(tmp)
				sopt.CacheDir = tmp
			}
			exe, err := os.Executable()
			if err != nil {
				return fail(stderr, err)
			}
			shardRep, err = shard.RunProcs(context.Background(), net, sopt, []string{exe, "shard-worker"})
			if err != nil {
				return fail(stderr, err)
			}
		} else {
			sopt.Cache = cache
			shardRep, err = shard.Run(context.Background(), net, sopt)
			if err != nil {
				return fail(stderr, err)
			}
		}
		arts = shardRep.Artifacts
	} else {
		arts, err = polis.SynthesizeNetwork(net, opt, pipeline.Config{
			Jobs:  *jobs,
			Cache: cache,
			Trace: col,
		})
		if err != nil {
			return fail(stderr, err)
		}
	}

	var sources []namedSource
	var totalCode int64
	for _, a := range arts {
		fmt.Fprint(stdout, a.Report(opt.Target))
		totalCode += int64(a.CodeSize)
		sources = append(sources, namedSource{a.Module + ".c", a.C})
		if *emitC {
			fmt.Fprintln(stdout, "\n----- generated C -----")
			fmt.Fprint(stdout, a.C)
		}
		if *emitAsm {
			fmt.Fprintln(stdout, "\n----- object code -----")
			fmt.Fprint(stdout, a.Listing)
		}
		if *emitDot {
			fmt.Fprintln(stdout, "\n----- s-graph -----")
			if a.SGraph != nil {
				fmt.Fprint(stdout, a.SGraph.Dot())
			} else {
				fmt.Fprintln(stdout, "(s-graph not available: artifact restored from the on-disk cache)")
			}
		}
		fmt.Fprintln(stdout)
	}
	rtosSrc, size, err := polis.GenerateRTOS(net, rtos.DefaultConfig(), opt.Target)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "system: %d module(s), %d bytes of task code, RTOS %d bytes ROM / %d bytes RAM\n",
		len(net.Machines), totalCode, size.CodeBytes, size.DataBytes)
	sources = append(sources,
		namedSource{"polis_rtos.h", codegen.RTOSHeader()},
		namedSource{"rtos.c", rtosSrc})
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fail(stderr, err)
		}
		for _, sf := range sources {
			path := filepath.Join(*outDir, sf.name)
			if err := os.WriteFile(path, []byte(sf.text), 0o644); err != nil {
				return fail(stderr, err)
			}
			fmt.Fprintln(stdout, "wrote", path)
		}
	}
	if *stats {
		// Per-shard wall times vary run to run, so the shard summary
		// only prints here: without -stats the output stays
		// byte-identical across shard counts and modes.
		if shardRep != nil {
			fmt.Fprint(stdout, shardRep.Summary())
			fmt.Fprint(stdout, shardRep.Collector.Report())
		} else {
			fmt.Fprint(stdout, col.Report())
		}
	}
	return 0
}

// runShardWorker is the map side of process-mode sharding: it decodes
// one shard job from stdin, synthesizes the job's modules through the
// shared on-disk cache (the shuffle layer), and streams one NDJSON
// result per module on stdout. It is exec'd by
// `polisc -shards N -shard-procs`; see internal/shard for the
// protocol.
func runShardWorker(args []string, stdout, stderr io.Writer) int {
	if len(args) != 0 {
		return fail(stderr, fmt.Errorf("shard-worker takes no arguments (job comes on stdin)"))
	}
	if err := shard.Worker(os.Stdin, stdout); err != nil {
		return fail(stderr, fmt.Errorf("shard-worker: %w", err))
	}
	return 0
}

// runFuzz drives the co-simulation fuzz harness: a seeded campaign of
// randomized scenarios, or an exact replay when -config is given.
func runFuzz(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("polisc fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "first seed of the campaign (or the seed to replay)")
	runs := fs.Int("runs", 100, "number of consecutive seeds to run")
	cfgStr := fs.String("config", "", `fixed scenario "k=v,..." (empty: randomized shape per seed)`)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var cfg netfuzz.Config
	randomize := *cfgStr == ""
	if !randomize {
		var err error
		cfg, err = netfuzz.Parse(*cfgStr)
		if err != nil {
			return fail(stderr, err)
		}
	}
	res := netfuzz.Campaign(*seed, *runs, cfg, randomize, stdout)
	fmt.Fprintf(stdout, "fuzz: %d runs, %d strict comparisons, %d failures\n",
		res.Runs, res.Strict, len(res.Failures))
	if len(res.Failures) > 0 {
		return 1
	}
	return 0
}

type namedSource struct {
	name string
	text string
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "polisc:", err)
	return 1
}
