// Command polisc is the synthesis driver: it compiles an
// Esterel-subset module (see internal/esterel) into C and virtual
// object code, printing the cost/performance report the POLIS flow
// uses for partitioning decisions.
//
// Usage:
//
//	polisc [-target hc11|r3k] [-order default|naive|inputs-first]
//	       [-c] [-asm] [-dot] [-optimize-copies] [-o dir] [file.strl]
//
// A source file may contain several modules: same-named signals
// connect them into a network, each module is synthesized separately
// and the generated RTOS is sized for the whole system. With no file,
// the paper's Fig. 1 module is synthesized as a demo. With -o, the
// generated C sources (one per module, plus polis_rtos.h and the RTOS)
// are written into the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"polis"
	"polis/internal/codegen"
	"polis/internal/esterel"
	"polis/internal/estimate"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

const demo = `
module simple: % the paper's Fig. 1 example
input c : integer;
output y;
var a : integer in
loop
  await c;
  if a = ?c then a := 0; emit y;
  else a := a + 1;
  end if
end loop
end var
end module
`

func main() {
	target := flag.String("target", "hc11", "cost profile: hc11 or r3k")
	order := flag.String("order", "default", "variable ordering: default, naive, inputs-first")
	emitC := flag.Bool("c", false, "print the generated C")
	emitAsm := flag.Bool("asm", false, "print the object-code listing")
	emitDot := flag.Bool("dot", false, "print the s-graph in Graphviz format")
	optCopies := flag.Bool("optimize-copies", false, "apply the write-before-read copy analysis")
	outDir := flag.String("o", "", "write generated C sources into this directory")
	showParams := flag.Bool("params", false, "print the calibrated cost parameters and exit")
	flag.Parse()

	src := demo
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}

	opt := polis.Options{}
	switch *target {
	case "hc11":
		opt.Target = vm.HC11()
	case "r3k":
		opt.Target = vm.R3K()
	default:
		fatal(fmt.Errorf("unknown target %q", *target))
	}
	switch *order {
	case "default":
		opt.Ordering = sgraph.OrderSiftAfterSupport
	case "naive":
		opt.Ordering = sgraph.OrderNaive
	case "inputs-first":
		opt.Ordering = sgraph.OrderSiftInputsFirst
	default:
		fatal(fmt.Errorf("unknown ordering %q", *order))
	}
	opt.Codegen.OptimizeCopies = *optCopies

	if *showParams {
		fmt.Print(estimate.Calibrate(opt.Target).Format())
		return
	}

	net, machines, err := esterel.CompileProgram(src)
	if err != nil {
		fatal(err)
	}
	var sources []namedSource
	var totalCode int64
	for _, m := range net.Machines {
		art, err := polis.Synthesize(machines[m.Name], opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(art.Report(opt.Target))
		totalCode += int64(art.CodeSize)
		sources = append(sources, namedSource{m.Name + ".c", art.C})
		if *emitC {
			fmt.Println("\n----- generated C -----")
			fmt.Print(art.C)
		}
		if *emitAsm {
			fmt.Println("\n----- object code -----")
			fmt.Print(art.Listing)
		}
		if *emitDot {
			fmt.Println("\n----- s-graph -----")
			fmt.Print(art.SGraph.Dot())
		}
		fmt.Println()
	}
	rtosSrc, size, err := polis.GenerateRTOS(net, rtos.DefaultConfig(), opt.Target)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("system: %d module(s), %d bytes of task code, RTOS %d bytes ROM / %d bytes RAM\n",
		len(net.Machines), totalCode, size.CodeBytes, size.DataBytes)
	sources = append(sources,
		namedSource{"polis_rtos.h", codegen.RTOSHeader()},
		namedSource{"rtos.c", rtosSrc})
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		for _, sf := range sources {
			path := filepath.Join(*outDir, sf.name)
			if err := os.WriteFile(path, []byte(sf.text), 0o644); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", path)
		}
	}
}

type namedSource struct {
	name string
	text string
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "polisc:", err)
	os.Exit(1)
}
