package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary stand in for the real polisc when the
// process-mode shard driver re-execs os.Executable() as
// `polisc shard-worker`.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "shard-worker" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// threeModuleProgram is a 3-module network: divider halves the tick
// rate, toggler flips an LED on each half-tick, and monitor counts
// LED changes, alarming every fourth one.
const threeModuleProgram = `
module divider:
input tick;
output half;
var odd : integer in
loop
  await tick;
  if odd = 0 then
    odd := 1;
  else
    odd := 0;
    emit half;
  end if
end loop
end var
end module

module toggler:
input half;
output led : integer;
var on : integer in
loop
  await half;
  if on = 0 then on := 1; else on := 0; end if
  emit led(on);
end loop
end var
end module

module monitor:
input led : integer;
output alarm;
var seen : integer in
loop
  await led;
  if seen = 3 then
    seen := 0;
    emit alarm;
  else
    seen := seen + 1;
  end if
end loop
end var
end module
`

// runPolisc executes the driver with the given extra flags over the
// 3-module source and returns stdout plus the generated files.
func runPolisc(t *testing.T, extra ...string) (string, map[string]string) {
	t.Helper()
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "net.strl")
	if err := os.WriteFile(srcPath, []byte(threeModuleProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "out")
	args := append(append([]string{}, extra...), "-c", "-asm", "-o", outDir, srcPath)
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("polisc %v exited %d: %s", args, code, stderr.String())
	}
	files := make(map[string]string)
	entries, err := os.ReadDir(outDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(outDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = string(data)
	}
	// The output embeds the temp dir in "wrote ..." lines; strip them
	// so runs from different temp dirs compare equal.
	var kept []string
	for _, line := range strings.Split(stdout.String(), "\n") {
		if strings.HasPrefix(line, "wrote ") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n"), files
}

// TestGoldenDeterminism synthesizes the 3-module network serially and
// with 8 workers and requires byte-identical reports and generated C:
// the pipeline must order results by source position, not by
// completion.
func TestGoldenDeterminism(t *testing.T) {
	out1, files1 := runPolisc(t, "-j", "1")
	out8, files8 := runPolisc(t, "-j", "8")

	if out1 != out8 {
		t.Errorf("stdout differs between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", out1, out8)
	}
	if len(files1) != len(files8) {
		t.Fatalf("file sets differ: %d vs %d", len(files1), len(files8))
	}
	for name, text := range files1 {
		if files8[name] != text {
			t.Errorf("generated %s differs between -j 1 and -j 8", name)
		}
	}
	// Sanity: all three modules plus RTOS sources came out.
	for _, want := range []string{"divider.c", "toggler.c", "monitor.c", "rtos.c", "polis_rtos.h"} {
		if _, ok := files1[want]; !ok {
			t.Errorf("missing generated file %s (have %v)", want, keys(files1))
		}
	}
	// Reports appear in source order.
	iDiv := strings.Index(out1, "CFSM divider")
	iTog := strings.Index(out1, "CFSM toggler")
	iMon := strings.Index(out1, "CFSM monitor")
	if iDiv < 0 || iTog < 0 || iMon < 0 || !(iDiv < iTog && iTog < iMon) {
		t.Errorf("module reports out of order or missing: div=%d tog=%d mon=%d", iDiv, iTog, iMon)
	}
}

// TestStatsFlag checks that -stats appends the pipeline report.
func TestStatsFlag(t *testing.T) {
	out, _ := runPolisc(t, "-j", "2", "-stats")
	for _, want := range []string{"pipeline: 3 module(s)", "reactive", "cache: 0 hit(s)", "errors: none"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats report missing %q in:\n%s", want, out)
		}
	}
}

// TestDiskCacheRerun runs twice against one cache directory: the
// second run must hit for all three modules and still print identical
// reports.
func TestDiskCacheRerun(t *testing.T) {
	cacheDir := t.TempDir()
	out1, _ := runPolisc(t, "-cache", cacheDir, "-stats")
	out2, _ := runPolisc(t, "-cache", cacheDir, "-stats")
	if !strings.Contains(out1, "3 miss(es)") {
		t.Errorf("cold run should miss 3 times:\n%s", out1)
	}
	if !strings.Contains(out2, "cache: 3 hit(s) (3 from disk)") {
		t.Errorf("warm run should hit 3 times from disk:\n%s", out2)
	}
	// Reports (everything before the stats block) must agree.
	cut := func(s string) string {
		if i := strings.Index(s, "pipeline:"); i >= 0 {
			return s[:i]
		}
		return s
	}
	if cut(out1) != cut(out2) {
		t.Errorf("cached rerun output differs:\n--- cold ---\n%s\n--- warm ---\n%s", out1, out2)
	}
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestShardDeterminism: the sharded drivers — one shard, eight shards,
// both strategies, and two worker processes — all produce output and
// generated sources byte-identical to the plain pipeline.
func TestShardDeterminism(t *testing.T) {
	base, baseFiles := runPolisc(t, "-j", "2")
	for _, extra := range [][]string{
		{"-shards", "1"},
		{"-shards", "8"},
		{"-shards", "8", "-shard-strategy", "size"},
		{"-shards", "2", "-shard-procs"},
	} {
		out, files := runPolisc(t, extra...)
		if out != base {
			t.Errorf("%v: stdout differs from unsharded run:\n--- base ---\n%s\n--- sharded ---\n%s", extra, base, out)
		}
		for name, text := range baseFiles {
			if files[name] != text {
				t.Errorf("%v: generated %s differs from unsharded run", extra, name)
			}
		}
	}
}

// TestShardStats: -stats on a sharded run prints the shard summary
// with merged attribution, and a second process-mode run over the same
// cache directory is served from disk.
func TestShardStats(t *testing.T) {
	cacheDir := t.TempDir()
	cold, _ := runPolisc(t, "-shards", "2", "-shard-procs", "-cache", cacheDir, "-stats")
	for _, want := range []string{
		"shard: 2 shard(s) (process), 3 module(s)",
		"miss 3 | mem 0 | disk 0 | dedup 0",
	} {
		if !strings.Contains(cold, want) {
			t.Errorf("cold shard stats missing %q in:\n%s", want, cold)
		}
	}
	warm, _ := runPolisc(t, "-shards", "2", "-shard-procs", "-cache", cacheDir, "-stats")
	if !strings.Contains(warm, "miss 0 | mem 0 | disk 3 | dedup 0") {
		t.Errorf("warm shard run should be served from the shared disk cache:\n%s", warm)
	}

	inproc, _ := runPolisc(t, "-shards", "2", "-stats")
	if !strings.Contains(inproc, "shard: 2 shard(s) (in-process), 3 module(s)") {
		t.Errorf("in-process shard stats missing summary in:\n%s", inproc)
	}
}

// TestReduceFlag drives the -reduce path end-to-end: the synthesized
// artifacts must still come out for every module, the per-module
// report must carry the reduce statistics line, and -stats must show
// the reduce stage with its aggregate counters.
func TestReduceFlag(t *testing.T) {
	out, files := runPolisc(t, "-reduce", "-stats")
	for _, want := range []string{
		"CFSM divider", "CFSM toggler", "CFSM monitor",
		"reduce: vertices",
		"reduce: 3 module(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("reduce run missing %q in:\n%s", want, out)
		}
	}
	for _, want := range []string{"divider.c", "toggler.c", "monitor.c"} {
		if _, ok := files[want]; !ok {
			t.Errorf("missing generated file %s with -reduce", want)
		}
	}
	// Reduction must not perturb cache identity: a reduce run and a
	// plain run have different fingerprints, so a shared cache dir
	// serves neither run stale artifacts of the other.
	cacheDir := t.TempDir()
	plain, _ := runPolisc(t, "-cache", cacheDir, "-stats")
	reduced, _ := runPolisc(t, "-reduce", "-cache", cacheDir, "-stats")
	if !strings.Contains(plain, "3 miss(es)") || !strings.Contains(reduced, "3 miss(es)") {
		t.Errorf("reduce and plain runs must not share cache entries:\nplain:\n%s\nreduced:\n%s",
			plain, reduced)
	}
}
