#!/bin/sh
# CI gate: vet, build, the full test suite, the race detector (the
# pipeline runs per-CFSM synthesis on concurrent workers), the bdd
# ownership checks enabled under the bdddebug build tag, a bounded
# co-simulation fuzz smoke (fixed seeds, so failures are replayable
# with the printed `polisc fuzz -seed ... -config ...` line) run both
# with and without the s-graph reduction engine, and a
# single-iteration benchmark smoke so the harness can't bit-rot.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./...
go test -tags bdddebug ./internal/bdd/
NETFUZZ_RUNS=400 go test -race -run TestFuzzCampaignRandom ./internal/netfuzz/
NETFUZZ_REDUCE_RUNS=200 go test -race -run TestFuzzCampaignReduce ./internal/netfuzz/
./bench.sh
