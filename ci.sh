#!/bin/sh
# CI gate: vet, build, the full test suite, the race detector (the
# pipeline runs per-CFSM synthesis on concurrent workers), the bdd
# ownership checks enabled under the bdddebug build tag, a bounded
# co-simulation fuzz smoke (fixed seeds, so failures are replayable
# with the printed `polisc fuzz -seed ... -config ...` line) run both
# with and without the s-graph reduction engine, with same-cycle
# stimulus storms against the batched delivery queue, and with
# profile-guided specialization (every run captures a behavioral
# profile and re-checks the hot-path-reordered object code against the
# reference interpreter), a polisd service
# end-to-end smoke under the race detector (ephemeral port, warm-cache
# second pass, /stats, SIGTERM drain), a multi-process sharded
# synthesis smoke (two shard-worker processes sharing one disk cache
# as the shuffle layer, warm second pass, output byte-identical to the
# unsharded run), and a single-iteration benchmark smoke so the
# harness can't bit-rot.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./...
go test -tags bdddebug ./internal/bdd/
NETFUZZ_RUNS=800 go test -race -run TestFuzzCampaignRandom ./internal/netfuzz/
NETFUZZ_REDUCE_RUNS=200 go test -race -run TestFuzzCampaignReduce ./internal/netfuzz/
NETFUZZ_STORM_RUNS=200 go test -race -run TestFuzzCampaignStorm ./internal/netfuzz/
NETFUZZ_SPEC_RUNS=200 go test -race -run TestFuzzCampaignSpecialize ./internal/netfuzz/

# polisd e2e smoke: race-instrumented daemon on an ephemeral port.
# The same single-client batch driven twice must hit the warm cache on
# the second pass (4 misses + 4 mem hits = 50.0%), a concurrent burst
# with edits must serve every request, /stats and /healthz must
# answer, and SIGTERM must drain cleanly (exit 0, "drained" printed).
tmp=$(mktemp -d)
go build -race -o "$tmp/polisd" ./cmd/polisd
"$tmp/polisd" -addr 127.0.0.1:0 -workers 2 >"$tmp/out" 2>"$tmp/err" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 100); do
    grep -q '^listening on ' "$tmp/out" && break
    sleep 0.1
done
url=$(sed -n 's/^listening on //p' "$tmp/out")
"$tmp/polisd" loadgen -url "$url" -n 2 -c 1 -networks 1 -modules 4 | tee "$tmp/load1"
grep -q 'hit ratio 50.0%' "$tmp/load1"
"$tmp/polisd" loadgen -url "$url" -n 200 -c 50 -networks 4 -modules 2 -edit-rate 0.1 -seed 7
curl -fsS "$url/stats" | grep -q '"requests"'
curl -fsS "$url/healthz" | grep -q ok
kill -TERM "$pid"
wait "$pid"
grep -q '^drained$' "$tmp/out"
trap - EXIT
rm -rf "$tmp"

# Sharded map-reduce smoke: two shard-worker OS processes share one
# on-disk cache directory as the shuffle layer. The cold pass misses
# for all 3 modules, the warm pass is served entirely from the shared
# disk cache, and the non-stats output is byte-identical to the
# unsharded run.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/polisc" ./cmd/polisc
cat >"$tmp/net.strl" <<'EOF'
module divider:
input tick;
output half;
var odd : integer in
loop
  await tick;
  if odd = 0 then odd := 1;
  else odd := 0; emit half;
  end if
end loop
end var
end module

module toggler:
input half;
output led : integer;
var on : integer in
loop
  await half;
  if on = 0 then on := 1; else on := 0; end if
  emit led(on);
end loop
end var
end module

module monitor:
input led : integer;
output alarm;
var seen : integer in
loop
  await led;
  if seen = 3 then seen := 0; emit alarm;
  else seen := seen + 1;
  end if
end loop
end var
end module
EOF
"$tmp/polisc" "$tmp/net.strl" >"$tmp/plain"
"$tmp/polisc" -shards 2 -shard-procs -cache "$tmp/cache" -stats "$tmp/net.strl" | tee "$tmp/cold"
grep -q 'shard: 2 shard(s) (process), 3 module(s), miss 3 | mem 0 | disk 0 | dedup 0' "$tmp/cold"
"$tmp/polisc" -shards 2 -shard-procs -cache "$tmp/cache" -stats "$tmp/net.strl" | tee "$tmp/warm"
grep -q 'shard: 2 shard(s) (process), 3 module(s), miss 0 | mem 0 | disk 3 | dedup 0' "$tmp/warm"
"$tmp/polisc" -shards 2 -shard-procs -cache "$tmp/cache" "$tmp/net.strl" >"$tmp/sharded"
diff "$tmp/plain" "$tmp/sharded"
trap - EXIT
rm -rf "$tmp"

./bench.sh

# Bounded perf-regression smoke: short-benchtime timings for every
# suite (bdd synthesis, sim throughput, sharded synthesis at scale)
# compared to their last recorded -full runs, failing only on
# order-of-magnitude blowups (the generous threshold absorbs
# shared-runner noise; the real measurement lives in bench.sh -full /
# -compare).
if [ -f BENCH_bdd.json ] || [ -f BENCH_sim.json ] || [ -f BENCH_synth.json ]; then
    BENCHTIME=10ms ./bench.sh -compare -fail-over 400
fi
