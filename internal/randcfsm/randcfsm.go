// Package randcfsm generates random deterministic CFSMs for
// cross-implementation differential testing: the reference interpreter,
// the s-graph under every ordering, the boolean-circuit code, the
// two-level jump baseline and the virtual-machine executions of each
// must all agree on every snapshot.
package randcfsm

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"polis/internal/cfsm"
	"polis/internal/expr"
)

// Config bounds the generated machines.
type Config struct {
	MaxInputs      int // >=1; mix of pure and valued
	MaxOutputs     int // >=1
	MaxControlVars int // selector state variables
	MaxDataVars    int // integer state variables
	MaxTransitions int
	ValueRange     int64 // input values and constants in [0, ValueRange)
}

// DefaultConfig returns modest bounds that keep exhaustive checking
// cheap.
func DefaultConfig() Config {
	return Config{
		MaxInputs:      3,
		MaxOutputs:     3,
		MaxControlVars: 2,
		MaxDataVars:    2,
		MaxTransitions: 8,
		ValueRange:     5,
	}
}

// Scaled returns DefaultConfig with every structural bound multiplied
// by factor (clamped to >= 1). It is the per-module cost knob of the
// randcfsm-driven synthesis benchmarks: NewNetwork's n scales module
// count, Scaled grows each module's test/action/transition pools so
// synthesis cost per module rises too.
func Scaled(factor int) Config {
	if factor < 1 {
		factor = 1
	}
	cfg := DefaultConfig()
	cfg.MaxInputs *= factor
	cfg.MaxOutputs *= factor
	cfg.MaxControlVars *= factor
	cfg.MaxDataVars *= factor
	cfg.MaxTransitions *= factor
	cfg.ValueRange *= int64(factor)
	return cfg
}

// nameWidth is the zero-padding width for machine names in an n-module
// network: wide enough for n-1, never narrower than the historical 2,
// so networks of up to 100 modules keep their m00..m99 names (and
// therefore their fingerprints) byte-identical across versions while
// larger benchmarks (m000...) stay uniformly padded.
func nameWidth(n int) int {
	w := len(strconv.Itoa(n - 1))
	if w < 2 {
		w = 2
	}
	return w
}

// Machine bundles a generated CFSM with handles the checker needs.
type Machine struct {
	C       *cfsm.CFSM
	Inputs  []*cfsm.Signal
	Outputs []*cfsm.Signal
	Rng     *rand.Rand
	Range   int64
}

// New generates a random deterministic machine. Determinism is
// guaranteed structurally: transitions are built from a random
// decision tree over the machine's tests, so guards are pairwise
// disjoint by construction.
func New(r *rand.Rand, cfg Config) *Machine {
	c := cfsm.New(fmt.Sprintf("rand%d", r.Intn(1<<30)))
	return generate(r, cfg, c, "", c.AddInput, c.AddOutput, nil, nil)
}

// NewInNetwork generates a random machine with the given name whose
// signals are created at network level and attached to the machine, so
// the machine is registered in net and the network validates. Signal
// and state-variable names are prefixed with the machine name to keep
// them network-unique. The machines of one network are independent
// (no shared signals): the generator's purpose is whole-network
// synthesis benchmarking, where the per-machine flows never interact.
func NewInNetwork(r *rand.Rand, net *cfsm.Network, name string, cfg Config) (*Machine, error) {
	return newInNetwork(r, net, name, cfg, nil, nil)
}

// newInNetwork is NewInNetwork with wired signals: extraIn/extraOut
// are existing network signals attached to the machine before the
// transition relation is generated, so they participate in guards and
// emissions exactly like the machine's own signals.
func newInNetwork(r *rand.Rand, net *cfsm.Network, name string, cfg Config,
	extraIn, extraOut []*cfsm.Signal) (*Machine, error) {
	c := cfsm.New(name)
	addIn := func(n string, pure bool) *cfsm.Signal {
		return c.AttachInput(net.NewSignal(name+"_"+n, pure))
	}
	addOut := func(n string, pure bool) *cfsm.Signal {
		return c.AttachOutput(net.NewSignal(name+"_"+n, pure))
	}
	m := generate(r, cfg, c, name+"_", addIn, addOut, extraIn, extraOut)
	if err := net.Add(c); err != nil {
		return nil, err
	}
	return m, nil
}

// NewNetwork generates a network of n independent random machines
// (named m00, m01, ...) for parallel-synthesis benchmarks.
func NewNetwork(r *rand.Rand, n int, cfg Config) (*cfsm.Network, []*Machine, error) {
	net := cfsm.NewNetwork(fmt.Sprintf("randnet%d", n))
	w := nameWidth(n)
	machines := make([]*Machine, 0, n)
	for i := 0; i < n; i++ {
		m, err := NewInNetwork(r, net, fmt.Sprintf("m%0*d", w, i), cfg)
		if err != nil {
			return nil, nil, err
		}
		machines = append(machines, m)
	}
	if err := net.Validate(); err != nil {
		return nil, nil, err
	}
	return net, machines, nil
}

// generate is the shared machine-construction body; addIn/addOut
// abstract whether signals are machine-local or network-level, and
// prefix keeps state-variable names unique within a network.
// extraIn/extraOut (both usually nil) are pre-existing wired signals;
// they are attached without consuming the rng stream, so unwired
// callers generate byte-identical machines across versions.
func generate(r *rand.Rand, cfg Config, c *cfsm.CFSM, prefix string,
	addIn, addOut func(name string, pure bool) *cfsm.Signal,
	extraIn, extraOut []*cfsm.Signal) *Machine {
	m := &Machine{C: c, Rng: r, Range: cfg.ValueRange}

	nin := 1 + r.Intn(cfg.MaxInputs)
	for i := 0; i < nin; i++ {
		pure := r.Intn(2) == 0
		m.Inputs = append(m.Inputs, addIn(fmt.Sprintf("i%d", i), pure))
	}
	for _, s := range extraIn {
		m.Inputs = append(m.Inputs, c.AttachInput(s))
	}
	nout := 1 + r.Intn(cfg.MaxOutputs)
	for i := 0; i < nout; i++ {
		pure := r.Intn(2) == 0
		m.Outputs = append(m.Outputs, addOut(fmt.Sprintf("o%d", i), pure))
	}
	for _, s := range extraOut {
		m.Outputs = append(m.Outputs, c.AttachOutput(s))
	}
	var ctrl []*cfsm.StateVar
	for i := 0; i < r.Intn(cfg.MaxControlVars+1); i++ {
		ctrl = append(ctrl, c.AddState(fmt.Sprintf("%sq%d", prefix, i), 2+r.Intn(3), int64(r.Intn(2))))
	}
	var data []*cfsm.StateVar
	for i := 0; i < r.Intn(cfg.MaxDataVars+1); i++ {
		data = append(data, c.AddState(fmt.Sprintf("%sd%d", prefix, i), 0, int64(r.Intn(int(cfg.ValueRange)))))
	}

	// The test pool.
	var tests []*cfsm.Test
	for _, in := range m.Inputs {
		tests = append(tests, c.Present(in))
	}
	for _, sv := range ctrl {
		tests = append(tests, c.Sel(sv))
	}
	for _, sv := range data {
		tests = append(tests, c.Pred(expr.Lt(expr.V(sv.Name), expr.C(1+r.Int63n(cfg.ValueRange)))))
	}
	for _, in := range m.Inputs {
		if !in.Pure && r.Intn(2) == 0 {
			tests = append(tests, c.Pred(expr.Ge(expr.V("?"+in.Name), expr.C(r.Int63n(cfg.ValueRange)))))
		}
	}

	m.growTransitions(r, ctrl, data, tests, cfg.MaxTransitions)
	return m
}

// growTransitions builds a random decision tree over distinct tests;
// each leaf either has no transition or a random action list.
// Disjointness of the leaves' guards makes the machine deterministic.
// At least one transition is always produced.
func (m *Machine) growTransitions(r *rand.Rand, ctrl, data []*cfsm.StateVar,
	tests []*cfsm.Test, budget int) {
	c := m.C
	var grow func(avail []*cfsm.Test, guard []cfsm.Cond, depth int)
	grow = func(avail []*cfsm.Test, guard []cfsm.Cond, depth int) {
		if budget <= 0 {
			return
		}
		if len(avail) == 0 || depth >= 3 || r.Intn(3) == 0 {
			// Leaf: 2-in-3 chance of a transition.
			if r.Intn(3) != 0 && len(guard) > 0 {
				acts := m.randActions(r, ctrl, data)
				if len(acts) > 0 {
					c.AddTransition(append([]cfsm.Cond(nil), guard...), acts...)
					budget--
				}
			}
			return
		}
		ti := r.Intn(len(avail))
		t := avail[ti]
		rest := append(append([]*cfsm.Test(nil), avail[:ti]...), avail[ti+1:]...)
		for v := 0; v < t.Arity(); v++ {
			grow(rest, append(guard, cfsm.On(t, v)), depth+1)
		}
	}
	grow(tests, nil, 0)
	if len(c.Trans) == 0 {
		// Guarantee at least one behaviour.
		c.AddTransition([]cfsm.Cond{cfsm.On(tests[0], 1)}, m.randActions(r, ctrl, data)...)
	}
}

// stateSplit partitions the machine's state variables the way generate
// created them: control variables (finite domain) versus data.
func (m *Machine) stateSplit() (ctrl, data []*cfsm.StateVar) {
	for _, sv := range m.C.States {
		if sv.Domain > 0 {
			ctrl = append(ctrl, sv)
		} else {
			data = append(data, sv)
		}
	}
	return ctrl, data
}

// transKey renders the transition relation (and the test pool it draws
// from) in the same structural terms the pipeline's content-addressed
// fingerprint hashes, so "transKey changed" implies "fingerprint
// changed".
func transKey(c *cfsm.CFSM) string {
	var b strings.Builder
	for _, t := range c.Tests {
		fmt.Fprintf(&b, "t %s/%d\n", t.Name(), t.Arity())
	}
	for _, tr := range c.Trans {
		for _, cond := range tr.Guard {
			fmt.Fprintf(&b, " %d=%d", c.TestID(cond.Test), cond.Val)
		}
		b.WriteString(" ->")
		for _, a := range tr.Actions {
			fmt.Fprintf(&b, " %d", c.ActionID(a))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Mutate edits the machine in place the way a designer iterating on a
// specification would: the transition relation is regrown from the
// machine's existing test and state-variable pools, guaranteeing the
// module's reactive function — and therefore its content-addressed
// fingerprint — changes while the network wiring (signals, states,
// interned tests of other machines) is untouched. This is the
// incremental-resynthesis workload driver: mutate one machine of a
// network, resubmit, and only that machine should miss the cache.
//
// The rng is taken explicitly (not m.Rng) so concurrent load
// generators can mutate machines of disjoint networks without sharing
// rng state.
func Mutate(r *rand.Rand, m *Machine) {
	c := m.C
	ctrl, data := m.stateSplit()
	old := transKey(c)
	budget := len(c.Trans)
	if budget < 4 {
		budget = 4
	}
	for try := 0; try < 8; try++ {
		c.Trans = nil
		m.growTransitions(r, ctrl, data, append([]*cfsm.Test(nil), c.Tests...), budget)
		if transKey(c) != old {
			return
		}
	}
	// Degenerate pools can regrow the same relation every time; force a
	// visible edit with a fresh predicate test (new tests always change
	// the fingerprint).
	var operand expr.Expr = expr.C(1)
	if len(data) > 0 {
		operand = expr.V(data[0].Name)
	}
	t := c.Pred(expr.Ge(operand, expr.C(r.Int63n(m.Range+1)+m.Range)))
	acts := m.randActions(r, ctrl, data)
	if len(acts) == 0 && len(m.Outputs) > 0 {
		out := m.Outputs[0]
		if out.Pure {
			acts = append(acts, c.Emit(out))
		} else {
			acts = append(acts, c.EmitV(out, expr.C(0)))
		}
	}
	c.AddTransition([]cfsm.Cond{cfsm.On(t, 1)}, acts...)
}

// Topology selects how the machines of a generated network are wired.
type Topology int

// Topologies.
const (
	// TopoIndependent leaves machines unconnected — the original
	// whole-network synthesis benchmark shape.
	TopoIndependent Topology = iota
	// TopoChain wires machine i's link output to machine i+1's link
	// input: at most one internal event is in flight per environment
	// stimulus, so spaced stimuli give scheduling-independent traces.
	TopoChain
	// TopoDAG wires every machine (after the first) to one or two
	// random earlier machines with fan-out allowed: converging
	// cascades race at shared readers and exercise freeze-window
	// merging and one-place-buffer overwrites.
	TopoDAG
)

func (t Topology) String() string {
	switch t {
	case TopoChain:
		return "chain"
	case TopoDAG:
		return "dag"
	default:
		return "independent"
	}
}

// NewTopologyNetwork generates a network of n random machines wired
// per the topology: link signals are created at network level and take
// part in the readers' guards and the writers' emissions, making the
// network genuinely GALS — internal events cross the one-place-buffer
// channels of Section II.
func NewTopologyNetwork(r *rand.Rand, n int, cfg Config, topo Topology) (*cfsm.Network, []*Machine, error) {
	if topo == TopoIndependent {
		return NewNetwork(r, n, cfg)
	}
	net := cfsm.NewNetwork(fmt.Sprintf("randnet%d%s", n, topo))
	w := nameWidth(n)
	// One link output per machine (the chain's last machine has none);
	// pure or valued at random so both event flavours cross channels.
	links := make([]*cfsm.Signal, n)
	for i := range links {
		if topo == TopoChain && i == n-1 {
			break
		}
		links[i] = net.NewSignal(fmt.Sprintf("m%0*d_lnk", w, i), r.Intn(2) == 0)
	}
	machines := make([]*Machine, 0, n)
	for i := 0; i < n; i++ {
		var extraIn, extraOut []*cfsm.Signal
		switch topo {
		case TopoChain:
			if i > 0 {
				extraIn = append(extraIn, links[i-1])
			}
			if links[i] != nil {
				extraOut = append(extraOut, links[i])
			}
		case TopoDAG:
			if i > 0 {
				picked := map[*cfsm.Signal]bool{}
				for k := 1 + r.Intn(2); k > 0; k-- {
					src := links[r.Intn(i)]
					if !picked[src] {
						picked[src] = true
						extraIn = append(extraIn, src)
					}
				}
			}
			extraOut = append(extraOut, links[i])
		}
		m, err := newInNetwork(r, net, fmt.Sprintf("m%0*d", w, i), cfg, extraIn, extraOut)
		if err != nil {
			return nil, nil, err
		}
		machines = append(machines, m)
	}
	if err := net.Validate(); err != nil {
		return nil, nil, err
	}
	return net, machines, nil
}

// randActions builds a non-conflicting action list.
func (m *Machine) randActions(r *rand.Rand, ctrl, data []*cfsm.StateVar) []*cfsm.Action {
	c := m.C
	var acts []*cfsm.Action
	assigned := map[*cfsm.StateVar]bool{}
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		switch r.Intn(3) {
		case 0: // emit
			out := m.Outputs[r.Intn(len(m.Outputs))]
			if out.Pure {
				acts = append(acts, c.Emit(out))
			} else {
				acts = append(acts, c.EmitV(out, m.randExpr(data, 2)))
			}
		case 1: // control assignment
			if len(ctrl) == 0 {
				continue
			}
			sv := ctrl[r.Intn(len(ctrl))]
			if assigned[sv] {
				continue
			}
			assigned[sv] = true
			acts = append(acts, c.Assign(sv, expr.C(int64(r.Intn(sv.Domain)))))
		default: // data assignment
			if len(data) == 0 {
				continue
			}
			sv := data[r.Intn(len(data))]
			if assigned[sv] {
				continue
			}
			assigned[sv] = true
			acts = append(acts, c.Assign(sv, m.randExpr(data, 2)))
		}
	}
	// Deduplicate interned actions (the same emit may repeat).
	seen := map[*cfsm.Action]bool{}
	var out []*cfsm.Action
	for _, a := range acts {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// randExpr builds a small side-effect-free expression over data vars,
// input values and constants.
func (m *Machine) randExpr(data []*cfsm.StateVar, depth int) expr.Expr {
	r := m.Rng
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return expr.C(r.Int63n(m.Range))
		case 1:
			if len(data) > 0 {
				return expr.V(data[r.Intn(len(data))].Name)
			}
			return expr.C(r.Int63n(m.Range))
		default:
			for _, in := range m.Inputs {
				if !in.Pure && r.Intn(2) == 0 {
					return expr.V("?" + in.Name)
				}
			}
			return expr.C(r.Int63n(m.Range))
		}
	}
	ops := []func(a, b expr.Expr) expr.Expr{expr.Add, expr.Sub, expr.Mul, expr.Min, expr.Max, expr.Div, expr.Mod}
	op := ops[r.Intn(len(ops))]
	return op(m.randExpr(data, depth-1), m.randExpr(data, depth-1))
}

// RandomSnapshot draws a snapshot over the machine's inputs and state.
func (m *Machine) RandomSnapshot() cfsm.Snapshot {
	r := m.Rng
	snap := m.C.NewSnapshot()
	for _, in := range m.Inputs {
		snap.Present[in] = r.Intn(2) == 1
		if !in.Pure {
			snap.Values[in] = r.Int63n(m.Range)
		}
	}
	for _, sv := range m.C.States {
		if sv.Domain > 0 {
			snap.State[sv] = int64(r.Intn(sv.Domain))
		} else {
			snap.State[sv] = r.Int63n(m.Range)
		}
	}
	return snap
}
