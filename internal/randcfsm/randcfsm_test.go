package randcfsm

import (
	"math/rand"
	"testing"

	"polis/internal/pipeline"
)

// TestMutateChangesExactlyOneFingerprint: mutating one machine of a
// network changes that machine's content-addressed fingerprint and no
// other's, keeps the network valid, and the mutant still synthesizes.
func TestMutateChangesExactlyOneFingerprint(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		net, machines, err := NewNetwork(rand.New(rand.NewSource(seed)), 5, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		before := make([]string, len(machines))
		for i, m := range machines {
			before[i] = pipeline.Fingerprint(m.C, pipeline.Options{})
		}
		victim := int(seed) % len(machines)
		Mutate(rand.New(rand.NewSource(seed+1000)), machines[victim])
		for i, m := range machines {
			after := pipeline.Fingerprint(m.C, pipeline.Options{})
			if i == victim && after == before[i] {
				t.Errorf("seed %d: mutating machine %d did not change its fingerprint", seed, i)
			}
			if i != victim && after != before[i] {
				t.Errorf("seed %d: mutation of machine %d leaked into machine %d", seed, victim, i)
			}
		}
		if err := net.Validate(); err != nil {
			t.Errorf("seed %d: network invalid after mutation: %v", seed, err)
		}
		if _, err := pipeline.SynthesizeModule(machines[victim].C, pipeline.Options{}, nil); err != nil {
			t.Errorf("seed %d: mutant does not synthesize: %v", seed, err)
		}
	}
}

// TestMutateDeterministic: the same rng seed produces the same edit.
func TestMutateDeterministic(t *testing.T) {
	fp := func() string {
		_, machines, err := NewNetwork(rand.New(rand.NewSource(7)), 3, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		Mutate(rand.New(rand.NewSource(99)), machines[1])
		return pipeline.Fingerprint(machines[1].C, pipeline.Options{})
	}
	if fp() != fp() {
		t.Error("identical seeds produced different mutations")
	}
}

// TestScaledAndNaming: Scaled multiplies every structural bound, and
// machine-name padding widens with the module count without renaming
// the historical small networks.
func TestScaledAndNaming(t *testing.T) {
	d := DefaultConfig()
	s := Scaled(4)
	if s.MaxInputs != 4*d.MaxInputs || s.MaxTransitions != 4*d.MaxTransitions ||
		s.ValueRange != 4*d.ValueRange {
		t.Errorf("Scaled(4) = %+v, want 4x %+v", s, d)
	}
	if Scaled(0) != d {
		t.Errorf("Scaled(0) must clamp to DefaultConfig, got %+v", Scaled(0))
	}

	small, _, err := NewNetwork(rand.New(rand.NewSource(1)), 3, d)
	if err != nil {
		t.Fatal(err)
	}
	if small.Machines[2].Name != "m02" {
		t.Errorf("3-module network renamed machines: %q", small.Machines[2].Name)
	}
	big, _, err := NewNetwork(rand.New(rand.NewSource(1)), 101, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := big.Machines[100].Name; got != "m100" {
		t.Errorf("101-module network machine 100 named %q, want m100", got)
	}
	if got := big.Machines[7].Name; got != "m007" {
		t.Errorf("101-module network machine 7 named %q, want m007 (uniform padding)", got)
	}

	// A scaled module really is structurally bigger on average: the
	// signal and test pools grow with the bounds (the transition count
	// itself is capped by the decision-tree depth, so it is not the
	// right measure).
	sumTests := func(cfg Config) int {
		_, ms, err := NewNetwork(rand.New(rand.NewSource(5)), 8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, m := range ms {
			n += len(m.C.Tests) + len(m.Inputs) + len(m.Outputs)
		}
		return n
	}
	if base, scaled := sumTests(d), sumTests(Scaled(4)); scaled <= base {
		t.Errorf("Scaled(4) networks are not bigger: %d vs %d tests+signals", scaled, base)
	}
}
