package randcfsm

import (
	"math/rand"
	"testing"

	"polis/internal/pipeline"
)

// TestMutateChangesExactlyOneFingerprint: mutating one machine of a
// network changes that machine's content-addressed fingerprint and no
// other's, keeps the network valid, and the mutant still synthesizes.
func TestMutateChangesExactlyOneFingerprint(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		net, machines, err := NewNetwork(rand.New(rand.NewSource(seed)), 5, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		before := make([]string, len(machines))
		for i, m := range machines {
			before[i] = pipeline.Fingerprint(m.C, pipeline.Options{})
		}
		victim := int(seed) % len(machines)
		Mutate(rand.New(rand.NewSource(seed+1000)), machines[victim])
		for i, m := range machines {
			after := pipeline.Fingerprint(m.C, pipeline.Options{})
			if i == victim && after == before[i] {
				t.Errorf("seed %d: mutating machine %d did not change its fingerprint", seed, i)
			}
			if i != victim && after != before[i] {
				t.Errorf("seed %d: mutation of machine %d leaked into machine %d", seed, victim, i)
			}
		}
		if err := net.Validate(); err != nil {
			t.Errorf("seed %d: network invalid after mutation: %v", seed, err)
		}
		if _, err := pipeline.SynthesizeModule(machines[victim].C, pipeline.Options{}, nil); err != nil {
			t.Errorf("seed %d: mutant does not synthesize: %v", seed, err)
		}
	}
}

// TestMutateDeterministic: the same rng seed produces the same edit.
func TestMutateDeterministic(t *testing.T) {
	fp := func() string {
		_, machines, err := NewNetwork(rand.New(rand.NewSource(7)), 3, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		Mutate(rand.New(rand.NewSource(99)), machines[1])
		return pipeline.Fingerprint(machines[1].C, pipeline.Options{})
	}
	if fp() != fp() {
		t.Error("identical seeds produced different mutations")
	}
}
