package logic

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/expr"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

func simple() *cfsm.CFSM {
	c := cfsm.New("simple")
	in := c.AddInput("c", false)
	y := c.AddOutput("y", true)
	a := c.AddState("a", 0, 0)
	pc := c.Present(in)
	eq := c.Pred(expr.Eq(expr.V("a"), expr.V("?c")))
	c.AddTransition([]cfsm.Cond{cfsm.On(pc, 1), cfsm.On(eq, 1)},
		c.Assign(a, expr.C(0)), c.Emit(y))
	c.AddTransition([]cfsm.Cond{cfsm.On(pc, 1), cfsm.On(eq, 0)},
		c.Assign(a, expr.Add(expr.V("a"), expr.C(1))))
	return c
}

func counter() *cfsm.CFSM {
	c := cfsm.New("counter")
	tick := c.AddInput("tick", true)
	rst := c.AddInput("rst", true)
	out := c.AddOutput("wrap", false)
	st := c.AddState("st", 5, 0)
	p := c.Present(tick)
	pr := c.Present(rst)
	sel := c.Sel(st)
	for k := 0; k < 5; k++ {
		c.AddTransition([]cfsm.Cond{cfsm.On(pr, 1), cfsm.On(sel, k)},
			c.Assign(st, expr.C(0)))
	}
	for k := 0; k < 5; k++ {
		next := (k + 1) % 5
		acts := []*cfsm.Action{c.Assign(st, expr.C(int64(next)))}
		if next == 0 {
			acts = append(acts, c.EmitV(out, expr.Mul(expr.V("st"), expr.C(2))))
		}
		c.AddTransition([]cfsm.Cond{cfsm.On(pr, 0), cfsm.On(p, 1), cfsm.On(sel, k)},
			acts...)
	}
	return c
}

func buildNet(t *testing.T, c *cfsm.CFSM) *Network {
	t.Helper()
	r, err := cfsm.BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(r)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func randomSnap(c *cfsm.CFSM, rng *rand.Rand) cfsm.Snapshot {
	snap := c.NewSnapshot()
	for _, in := range c.Inputs {
		snap.Present[in] = rng.Intn(2) == 1
		if !in.Pure {
			snap.Values[in] = int64(rng.Intn(6))
		}
	}
	for _, sv := range c.States {
		if sv.Domain > 0 {
			snap.State[sv] = int64(rng.Intn(sv.Domain))
		} else {
			snap.State[sv] = int64(rng.Intn(6))
		}
	}
	return snap
}

// sameReaction compares reactions with emissions as multisets (the
// circuit executes actions in declaration order, which may permute
// emissions relative to the transition order).
func sameReaction(c *cfsm.CFSM, a, b cfsm.Reaction) bool {
	if len(a.Emitted) != len(b.Emitted) {
		return false
	}
	key := func(e cfsm.Emission) string { return e.Signal.Name + ":" + string(rune(e.Value)) }
	ka := make([]string, len(a.Emitted))
	kb := make([]string, len(b.Emitted))
	for i := range a.Emitted {
		ka[i] = key(a.Emitted[i])
		kb[i] = key(b.Emitted[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	for _, sv := range c.States {
		if a.NextState[sv] != b.NextState[sv] {
			return false
		}
	}
	return true
}

func TestNetworkEvaluateMatchesReact(t *testing.T) {
	for _, c := range []*cfsm.CFSM{simple(), counter()} {
		n := buildNet(t, c)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 300; i++ {
			snap := randomSnap(c, rng)
			want := c.React(snap)
			got := n.Evaluate(snap)
			if !sameReaction(c, want, got) {
				t.Fatalf("%s iter %d: react %+v vs circuit %+v", c.Name, i, want, got)
			}
		}
	}
}

func TestNetworkSharing(t *testing.T) {
	// Two actions with identical firing functions must share their
	// whole cone.
	c := cfsm.New("share")
	a := c.AddInput("a", true)
	b := c.AddInput("b", true)
	o1 := c.AddOutput("o1", true)
	o2 := c.AddOutput("o2", true)
	pa, pb := c.Present(a), c.Present(b)
	c.AddTransition([]cfsm.Cond{cfsm.On(pa, 1), cfsm.On(pb, 1)}, c.Emit(o1), c.Emit(o2))
	n := buildNet(t, c)
	if n.Outputs[0] != n.Outputs[1] {
		t.Error("identical firing functions must share one gate")
	}
}

func TestAssembleCircuitEquiv(t *testing.T) {
	for _, c := range []*cfsm.CFSM{simple(), counter()} {
		n := buildNet(t, c)
		sigs := codegen.NewSignalMap(c)
		p, err := Assemble(n, sigs, codegen.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		prof := vm.HC11()
		for i := 0; i < 200; i++ {
			snap := randomSnap(c, rng)
			want := n.Evaluate(snap)

			h := newSnapHost(sigs, snap)
			m := vm.NewMachine(prof, p.Words, h)
			for _, sv := range c.States {
				m.Mem[p.Symbols["st_"+sv.Name]] = snap.State[sv]
			}
			if _, err := m.Run(p, codegen.EntryLabel(c)); err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			got := cfsm.Reaction{NextState: map[*cfsm.StateVar]int64{}, Emitted: h.emitted}
			for _, sv := range c.States {
				got.NextState[sv] = m.Mem[p.Symbols["st_"+sv.Name]]
			}
			if !sameReaction(c, want, got) {
				t.Fatalf("%s iter %d: circuit eval vs vm mismatch", c.Name, i)
			}
		}
	}
}

// snapHost mirrors the codegen test host.
type snapHost struct {
	byID    map[int]*cfsm.Signal
	snap    cfsm.Snapshot
	emitted []cfsm.Emission
}

func newSnapHost(sigs codegen.SignalMap, snap cfsm.Snapshot) *snapHost {
	h := &snapHost{byID: make(map[int]*cfsm.Signal), snap: snap}
	for s, id := range sigs {
		h.byID[id] = s
	}
	return h
}

func (h *snapHost) Present(sig int) bool { return h.snap.Present[h.byID[sig]] }
func (h *snapHost) Value(sig int) int64  { return h.snap.Values[h.byID[sig]] }
func (h *snapHost) Emit(sig int) {
	h.emitted = append(h.emitted, cfsm.Emission{Signal: h.byID[sig]})
}
func (h *snapHost) EmitValue(sig int, v int64) {
	h.emitted = append(h.emitted, cfsm.Emission{Signal: h.byID[sig], Value: v})
}

// TestUniformCoreTiming verifies the paper's claim for this code
// style: with no data-dependent arithmetic, every execution of the
// routine whose actions are pure emissions takes a time independent of
// which tests are true (up to the action epilogue).
func TestUniformCoreTiming(t *testing.T) {
	c := cfsm.New("uni")
	a := c.AddInput("a", true)
	b := c.AddInput("b", true)
	o := c.AddOutput("o", true)
	pa, pb := c.Present(a), c.Present(b)
	c.AddTransition([]cfsm.Cond{cfsm.On(pa, 1), cfsm.On(pb, 0)}, c.Emit(o))
	n := buildNet(t, c)
	sigs := codegen.NewSignalMap(c)
	p, err := Assemble(n, sigs, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof := vm.R3K()
	var witho, without int64
	{
		snap := c.NewSnapshot()
		snap.Present[a] = true
		h := newSnapHost(sigs, snap)
		m := vm.NewMachine(prof, p.Words, h)
		witho, _ = m.Run(p, codegen.EntryLabel(c))
	}
	{
		snap := c.NewSnapshot()
		h := newSnapHost(sigs, snap)
		m := vm.NewMachine(prof, p.Words, h)
		without, _ = m.Run(p, codegen.EntryLabel(c))
	}
	// The difference must be only the epilogue's taken-vs-not branch
	// and the one emission, bounded by a small constant.
	diff := witho - without
	if diff < 0 {
		diff = -diff
	}
	maxEpilogue := int64(prof.Cyc[vm.SVC] + prof.Cyc[vm.BRZ] + prof.TakenExtra + 4)
	if diff > maxEpilogue {
		t.Errorf("circuit timing varies too much: %d vs %d cycles", witho, without)
	}
}

// TestCircuitBiggerSlowerThanSGraph reproduces the paper's observation
// that the decision-tree (BDD) code is smaller and faster than the
// boolean-circuit code for control-dominated CFSMs.
func TestCircuitBiggerSlowerThanSGraph(t *testing.T) {
	c := counter()
	n := buildNet(t, c)
	sigs := codegen.NewSignalMap(c)
	circ, err := Assemble(n, sigs, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := cfsm.BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sgraph.Build(r, sgraph.OrderSiftAfterSupport)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := codegen.Assemble(g, sigs, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof := vm.HC11()
	if prof.CodeSize(circ) <= prof.CodeSize(tree) {
		t.Errorf("circuit code (%d B) should exceed decision-tree code (%d B)",
			prof.CodeSize(circ), prof.CodeSize(tree))
	}
	ct, err := vm.AnalyzeCycles(prof, circ, codegen.EntryLabel(c))
	if err != nil {
		t.Fatal(err)
	}
	tt, err := vm.AnalyzeCycles(prof, tree, codegen.EntryLabel(c))
	if err != nil {
		t.Fatal(err)
	}
	if ct.Max <= tt.Max {
		t.Errorf("circuit worst case (%d cyc) should exceed tree worst case (%d cyc)",
			ct.Max, tt.Max)
	}
}

func TestEmitCCircuit(t *testing.T) {
	c := counter()
	n := buildNet(t, c)
	src := EmitC(n, codegen.Options{})
	for _, needle := range []string{
		"void counter_react(void)",
		"PRESENT(tick)",
		"(cur_st >> ", // selector bit extraction
		"& 1;",
		"EMIT_VALUE(wrap",
		"st_st = ",
	} {
		if !strings.Contains(src, needle) {
			t.Errorf("circuit C missing %q:\n%s", needle, src)
		}
	}
	// Balanced braces.
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Error("unbalanced braces in circuit C")
	}
	// One temp per gate.
	if strings.Count(src, "  int n") != len(n.Gates) {
		t.Errorf("gate temp count mismatch: %d vs %d gates",
			strings.Count(src, "  int n"), len(n.Gates))
	}
}
