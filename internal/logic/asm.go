package logic

import (
	"fmt"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/expr"
	"polis/internal/vm"
)

// Assemble generates the branch-free circuit-evaluation routine: phase
// (a) samples every input into a word, phase (b) evaluates each ITE
// gate with bitwise arithmetic (no conditional branches, so every
// execution of the combinational core takes the same time), phase (c)
// tests each output flag once and performs the selected actions. This
// is the ESTEREL_OPT code style of Table III.
func Assemble(n *Network, sigs codegen.SignalMap, opts codegen.Options) (*vm.Program, error) {
	b, err := codegen.NewBuilder(n.C, sigs, opts, nil)
	if err != nil {
		return nil, err
	}
	p := b.Prog()

	gateAddr := make([]int, len(n.Gates))
	for _, g := range n.Gates {
		gateAddr[g.ID] = p.Alloc(fmt.Sprintf("net%d", g.ID))
	}

	// Phase a+b interleaved in topological order: inputs are gates.
	for _, g := range n.Gates {
		switch g.Kind {
		case GateConst:
			v := int64(0)
			if g.Val {
				v = 1
			}
			p.Emit(vm.Instr{Op: vm.LDI, Rd: codegen.RegVal, Imm: v})
			p.Emit(vm.Instr{Op: vm.ST, Addr: gateAddr[g.ID], Rs: codegen.RegVal})
		case GateInput:
			if err := emitInput(b, g); err != nil {
				return nil, err
			}
			p.Emit(vm.Instr{Op: vm.ST, Addr: gateAddr[g.ID], Rs: codegen.RegVal,
				Comment: g.Test.Name()})
		case GateIte:
			// r1 = if; r2 = then & if; r1 = (if ^ 1) & else; or.
			p.Emit(vm.Instr{Op: vm.LD, Rd: 1, Addr: gateAddr[g.If.ID]})
			p.Emit(vm.Instr{Op: vm.LD, Rd: 2, Addr: gateAddr[g.Then.ID]})
			p.Emit(vm.Instr{Op: vm.ALU, AOp: expr.OpBitAnd, Rd: 2, Rs: 1})
			p.Emit(vm.Instr{Op: vm.LDI, Rd: 3, Imm: 1})
			p.Emit(vm.Instr{Op: vm.ALU, AOp: expr.OpBitXor, Rd: 1, Rs: 3})
			p.Emit(vm.Instr{Op: vm.LD, Rd: 3, Addr: gateAddr[g.Else.ID]})
			p.Emit(vm.Instr{Op: vm.ALU, AOp: expr.OpBitAnd, Rd: 1, Rs: 3})
			p.Emit(vm.Instr{Op: vm.ALU, AOp: expr.OpBitOr, Rd: 1, Rs: 2})
			p.Emit(vm.Instr{Op: vm.ST, Addr: gateAddr[g.ID], Rs: 1})
		}
	}

	// Phase c: act on the output flags.
	for j, og := range n.Outputs {
		skip := fmt.Sprintf("skip%d", j)
		p.Emit(vm.Instr{Op: vm.LD, Rd: codegen.RegVal, Addr: gateAddr[og.ID]})
		p.Emit(vm.Instr{Op: vm.BRZ, Rs: codegen.RegVal, Label: skip})
		if err := b.EmitAction(n.C.Actions[j]); err != nil {
			return nil, err
		}
		if err := p.Mark(skip); err != nil {
			return nil, err
		}
	}
	p.Emit(vm.Instr{Op: vm.HALT})
	return b.Finish()
}

// emitInput leaves the input gate's bit value in RegVal.
func emitInput(b *codegen.Builder, g *Gate) error {
	p := b.Prog()
	switch g.Test.Kind {
	case cfsm.TestPresence:
		p.Emit(vm.Instr{Op: vm.SVC, Num: vm.SvcPresent, Imm: int64(b.SignalID(g.Test.Signal))})
		p.Emit(vm.Instr{Op: vm.MOV, Rd: codegen.RegVal, Rs: 0})
		return nil
	case cfsm.TestPredicate:
		if err := b.CompileExpr(g.Test.Pred); err != nil {
			return err
		}
		// Normalise to 0/1.
		p.Emit(vm.Instr{Op: vm.NOT, Rd: codegen.RegVal})
		p.Emit(vm.Instr{Op: vm.NOT, Rd: codegen.RegVal})
		return nil
	default:
		nb := bitsFor(g.Test.Sel.Domain)
		shift := nb - 1 - g.Bit
		e := expr.NewBin(expr.OpBitAnd,
			expr.NewBin(expr.OpShr, expr.V(g.Test.Sel.Name), expr.C(int64(shift))),
			expr.C(1))
		return b.CompileExpr(e)
	}
}
