// Package logic implements the boolean-circuit code generation scheme
// the paper compares against: ordering the outputs of the reactive
// function *before* their support (Section III-B3c) yields an s-graph
// with no TEST vertices — a straight string of ASSIGN vertices whose
// labels are ITE functions, which is exactly how the Esterel v5
// compiler emits software from a logic network. The network here is
// extracted from the BDDs of the per-action firing functions by
// multiplexer decomposition with structural hashing (the sharing that
// Boolean networks offer over decision trees), then evaluated by
// branch-free straight-line code: every execution takes the same time,
// the property the paper notes matters for hard real-time systems.
package logic

import (
	"fmt"

	"polis/internal/bdd"
	"polis/internal/cfsm"
)

// GateKind enumerates network node types.
type GateKind int

// Gate kinds.
const (
	GateConst GateKind = iota // value in Val
	GateInput                 // one bit of a test outcome
	GateIte                   // If ? Then : Else
)

// Gate is one node of the boolean network, in topological order within
// Network.Gates (inputs of a gate precede it).
type Gate struct {
	ID   int
	Kind GateKind

	Val bool // GateConst

	// GateInput: the test outcome bit. For Boolean tests Bit is 0 and
	// the input is the outcome itself; for selector tests Bit k is
	// bit k (0 = most significant) of the state value.
	Test *cfsm.Test
	Bit  int

	// GateIte.
	If, Then, Else *Gate
}

// Network is the combinational implementation of a CFSM's reactive
// function: one output gate per action.
type Network struct {
	C       *cfsm.CFSM
	Gates   []*Gate
	Inputs  []*Gate // the distinct input gates
	Outputs []*Gate // parallel to C.Actions
}

// Build extracts the network from the reactive function's per-action
// BDDs. Structural hashing merges isomorphic subcircuits across all
// outputs, the sharing advantage of this scheme.
func Build(r *cfsm.Reactive) (*Network, error) {
	n := &Network{C: r.C}
	gateCache := make(map[string]*Gate)
	intern := func(key string, mk func() *Gate) *Gate {
		if g, ok := gateCache[key]; ok {
			return g
		}
		g := mk()
		g.ID = len(n.Gates)
		n.Gates = append(n.Gates, g)
		gateCache[key] = g
		return g
	}
	constGate := func(v bool) *Gate {
		return intern(fmt.Sprintf("c%v", v), func() *Gate { return &Gate{Kind: GateConst, Val: v} })
	}
	inputGate := func(t *cfsm.Test, bit int) *Gate {
		return intern(fmt.Sprintf("i%d.%d", r.C.TestID(t), bit), func() *Gate {
			g := &Gate{Kind: GateInput, Test: t, Bit: bit}
			n.Inputs = append(n.Inputs, g)
			return g
		})
	}

	// Map BDD bits back to (test, bit index).
	s := r.Space
	bitOf := make(map[bdd.Var]struct {
		t   *cfsm.Test
		bit int
	})
	for i, v := range r.TestVars {
		for k, b := range v.Bits {
			bitOf[b] = struct {
				t   *cfsm.Test
				bit int
			}{r.C.Tests[i], k}
		}
	}

	memo := make(map[bdd.Node]*Gate)
	var decompose func(f bdd.Node) (*Gate, error)
	decompose = func(f bdd.Node) (*Gate, error) {
		switch f {
		case bdd.False:
			return constGate(false), nil
		case bdd.True:
			return constGate(true), nil
		}
		if g, ok := memo[f]; ok {
			return g, nil
		}
		v := s.M.VarOf(f)
		ib, ok := bitOf[v]
		if !ok {
			return nil, fmt.Errorf("logic: firing function depends on a non-test variable")
		}
		lo, hi := s.M.LowHigh(f)
		gLo, err := decompose(lo)
		if err != nil {
			return nil, err
		}
		gHi, err := decompose(hi)
		if err != nil {
			return nil, err
		}
		in := inputGate(ib.t, ib.bit)
		g := intern(fmt.Sprintf("t%d?%d:%d", in.ID, gHi.ID, gLo.ID), func() *Gate {
			return &Gate{Kind: GateIte, If: in, Then: gHi, Else: gLo}
		})
		memo[f] = g
		return g, nil
	}
	for _, f := range r.ActFuncs {
		g, err := decompose(f)
		if err != nil {
			return nil, err
		}
		n.Outputs = append(n.Outputs, g)
	}
	return n, nil
}

// Stats describes a network.
type Stats struct {
	Gates  int
	Inputs int
	Ites   int
}

// ComputeStats counts the network's gates.
func (n *Network) ComputeStats() Stats {
	st := Stats{Gates: len(n.Gates), Inputs: len(n.Inputs)}
	for _, g := range n.Gates {
		if g.Kind == GateIte {
			st.Ites++
		}
	}
	return st
}

// inputValue evaluates one input gate under a snapshot.
func inputValue(g *Gate, snap cfsm.Snapshot) bool {
	out := snap.EvalTest(g.Test)
	if g.Test.Kind != cfsm.TestSelector {
		return out != 0
	}
	nb := bitsFor(g.Test.Sel.Domain)
	return out&(1<<(nb-1-g.Bit)) != 0
}

func bitsFor(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}

// Evaluate executes the network under a snapshot, mirroring the
// three-phase discipline of Section III-B1: all inputs are sampled,
// all gates evaluate, then the selected actions run in declaration
// order against the pre-reaction state.
func (n *Network) Evaluate(snap cfsm.Snapshot) cfsm.Reaction {
	vals := make([]bool, len(n.Gates))
	for _, g := range n.Gates {
		switch g.Kind {
		case GateConst:
			vals[g.ID] = g.Val
		case GateInput:
			vals[g.ID] = inputValue(g, snap)
		case GateIte:
			if vals[g.If.ID] {
				vals[g.ID] = vals[g.Then.ID]
			} else {
				vals[g.ID] = vals[g.Else.ID]
			}
		}
	}
	next := make(map[*cfsm.StateVar]int64, len(snap.State))
	for v, val := range snap.State {
		next[v] = val
	}
	r := cfsm.Reaction{NextState: next}
	env := snap.Env()
	for j, og := range n.Outputs {
		if !vals[og.ID] {
			continue
		}
		r.Fired = true
		a := n.C.Actions[j]
		switch a.Kind {
		case cfsm.ActEmit:
			em := cfsm.Emission{Signal: a.Signal}
			if a.Value != nil {
				em.Value = a.Value.Eval(env)
			}
			r.Emitted = append(r.Emitted, em)
		case cfsm.ActAssign:
			next[a.Var] = a.Expr.Eval(env)
		}
	}
	return r
}
