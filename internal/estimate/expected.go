package estimate

import (
	"strconv"
	"strings"

	"polis/internal/sgraph"
)

// expectedCycles computes the profile-weighted mean transition time:
// every outcome vector observed by the scenario profile is replayed
// through the s-graph and its exact path cost — vertex bodies, edge
// arms under the current hot orders, gotos where the layout displaces
// a fall-through child — accumulated with the vector's observed
// frequency. Vectors that do not cover every test on their path (the
// profile came from a different synthesis of the module) are dropped
// from the weighting rather than guessed at. The order/fallsThrough
// pair must be the ones the size/bound DP used, so the goto placement
// agrees between the figures.
func expectedCycles(g *sgraph.SGraph, p *Params, opts Options,
	order []*sgraph.Vertex, fallsThrough func(int, *sgraph.Vertex) bool, entryCyc int64) int64 {
	prof := opts.ScenarioProfile
	col := make(map[string]int, len(prof.TestNames))
	for i, n := range prof.TestNames {
		col[n] = i
	}
	// Outcome per graph test for the vector being replayed; -1 when
	// the profile does not cover the test.
	outcome := make([]int, len(g.C.Tests))
	colOf := make([]int, len(g.C.Tests))
	for i, t := range g.C.Tests {
		if c, ok := col[t.Name()]; ok {
			colOf[i] = c
		} else {
			colOf[i] = -1
		}
	}
	idOf := make(map[string]int, len(g.C.Tests))
	for i, t := range g.C.Tests {
		idOf[t.Name()] = i
	}
	idx := make(map[*sgraph.Vertex]int, len(order))
	for i, v := range order {
		idx[v] = i
	}

	var weighted, total int64
	for key, count := range prof.Outcomes {
		if count <= 0 {
			continue
		}
		parts := strings.Split(key, ",")
		if len(parts) != len(prof.TestNames) {
			continue
		}
		ok := true
		for i := range outcome {
			outcome[i] = -1
		}
		for i, c := range colOf {
			if c < 0 {
				continue
			}
			v, err := strconv.Atoi(parts[c])
			if err != nil || v < 0 || v >= g.C.Tests[i].Arity() {
				ok = false
				break
			}
			outcome[i] = v
		}
		if !ok {
			continue
		}
		cycles, covered := pathCycles(g, p, opts, order, idx, fallsThrough, outcome, idOf)
		if !covered {
			continue
		}
		weighted += (entryCyc + cycles) * count
		total += count
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// pathCycles walks one outcome vector from BEGIN to END and sums the
// same cost terms the bound DP charges along that path. covered is
// false when the walk hits a test the vector does not determine.
func pathCycles(g *sgraph.SGraph, p *Params, opts Options,
	order []*sgraph.Vertex, idx map[*sgraph.Vertex]int,
	fallsThrough func(int, *sgraph.Vertex) bool,
	outcome []int, idOf map[string]int) (int64, bool) {
	var cycles int64
	v := g.Begin
	steps := 0
	for {
		if steps++; steps > len(g.Vertices)+1 {
			return 0, false
		}
		vc, _ := vertexCost(p, opts, v)
		cycles += vc
		i := idx[v]
		switch v.Kind {
		case sgraph.End:
			return cycles, true
		case sgraph.Test:
			k := 0
			for _, t := range v.Tests {
				o := outcome[idOf[t.Name()]]
				if o < 0 {
					return 0, false
				}
				k = k*t.Arity() + o
			}
			w := v.Children[k]
			cycles += edgeCost(p, opts, v, k)
			if !fallsThrough(i, w) && k == v.FallIdx() {
				cycles += p.GotoCyc
			}
			v = w
		default: // Begin, Assign
			if !fallsThrough(i, v.Next) {
				cycles += p.GotoCyc
			}
			v = v.Next
		}
	}
}
