package estimate

import (
	"strings"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/expr"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

func simple() *cfsm.CFSM {
	c := cfsm.New("simple")
	in := c.AddInput("c", false)
	y := c.AddOutput("y", true)
	a := c.AddState("a", 0, 0)
	pc := c.Present(in)
	eq := c.Pred(expr.Eq(expr.V("a"), expr.V("?c")))
	c.AddTransition([]cfsm.Cond{cfsm.On(pc, 1), cfsm.On(eq, 1)},
		c.Assign(a, expr.C(0)), c.Emit(y))
	c.AddTransition([]cfsm.Cond{cfsm.On(pc, 1), cfsm.On(eq, 0)},
		c.Assign(a, expr.Add(expr.V("a"), expr.C(1))))
	return c
}

func counter() *cfsm.CFSM {
	c := cfsm.New("counter")
	tick := c.AddInput("tick", true)
	rst := c.AddInput("rst", true)
	out := c.AddOutput("wrap", false)
	st := c.AddState("st", 5, 0)
	p := c.Present(tick)
	pr := c.Present(rst)
	sel := c.Sel(st)
	for k := 0; k < 5; k++ {
		c.AddTransition([]cfsm.Cond{cfsm.On(pr, 1), cfsm.On(sel, k)},
			c.Assign(st, expr.C(0)))
	}
	for k := 0; k < 5; k++ {
		next := (k + 1) % 5
		acts := []*cfsm.Action{c.Assign(st, expr.C(int64(next)))}
		if next == 0 {
			acts = append(acts, c.EmitV(out, expr.Mul(expr.V("st"), expr.C(2))))
		}
		c.AddTransition([]cfsm.Cond{cfsm.On(pr, 0), cfsm.On(p, 1), cfsm.On(sel, k)},
			acts...)
	}
	return c
}

func buildSG(t *testing.T, c *cfsm.CFSM) *sgraph.SGraph {
	t.Helper()
	r, err := cfsm.BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sgraph.Build(r, sgraph.OrderSiftAfterSupport)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// mustCalibrate calibrates a known-good built-in profile; failure is a
// test bug, not a scenario under test.
func mustCalibrate(t *testing.T, prof *vm.Profile) *Params {
	t.Helper()
	p, err := Calibrate(prof)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCalibrateSane(t *testing.T) {
	for _, prof := range []*vm.Profile{vm.HC11(), vm.R3K()} {
		p := mustCalibrate(t, prof)
		checks := map[string]int64{
			"TestPresenceCyc0": p.TestPresenceCyc[0],
			"TestPresenceCyc1": p.TestPresenceCyc[1],
			"AssignEmitCyc":    p.AssignEmitCyc,
			"AssignStoreCyc":   p.AssignStoreCyc,
			"GotoCyc":          p.GotoCyc,
			"LocalCopyCyc":     p.LocalCopyCyc,
			"ValueFetchCyc":    p.ValueFetchCyc,
			"ExprConstCyc":     p.ExprConstCyc,
			"ExprRefCyc":       p.ExprRefCyc,
			"TestPresenceSz":   p.TestPresenceSz,
			"AssignEmitSz":     p.AssignEmitSz,
			"GotoSz":           p.GotoSz,
		}
		for name, v := range checks {
			if v <= 0 {
				t.Errorf("%s: parameter %s = %d, want > 0", prof.Name, name, v)
			}
		}
		// The taken branch must not be cheaper than not-taken.
		if p.TestPresenceCyc[1] < p.TestPresenceCyc[0] {
			t.Errorf("%s: taken branch cheaper than fall-through", prof.Name)
		}
		// Division must be the most expensive library entry.
		if p.ExprOpCyc[expr.OpDiv] <= p.ExprOpCyc[expr.OpAdd] {
			t.Errorf("%s: DIV (%d) must cost more than ADD (%d)",
				prof.Name, p.ExprOpCyc[expr.OpDiv], p.ExprOpCyc[expr.OpAdd])
		}
	}
}

// checkAccuracy compares the s-graph estimate against exact
// object-code measurement; the paper's Table I shows close agreement.
func checkAccuracy(t *testing.T, c *cfsm.CFSM, prof *vm.Profile, tolPct float64) {
	t.Helper()
	g := buildSG(t, c)
	params := mustCalibrate(t, prof)
	opts := Options{}
	est := EstimateSGraph(g, params, opts)

	prog, err := codegen.Assemble(g, codegen.NewSignalMap(c), opts.Codegen)
	if err != nil {
		t.Fatal(err)
	}
	measuredSize := int64(prof.CodeSize(prog))
	pc, err := vm.AnalyzeCycles(prof, prog, codegen.EntryLabel(c))
	if err != nil {
		t.Fatal(err)
	}

	within := func(name string, est, meas int64) {
		if meas == 0 {
			t.Fatalf("%s: measured 0", name)
		}
		err := 100 * float64(est-meas) / float64(meas)
		if err < -tolPct || err > tolPct {
			t.Errorf("%s/%s: estimate %d vs measured %d (%.1f%%, tolerance %.0f%%)",
				prof.Name, name, est, meas, err, tolPct)
		}
	}
	within("size", est.CodeBytes, measuredSize)
	within("maxCycles", est.MaxCycles, pc.Max)
	within("minCycles", est.MinCycles, pc.Min)
	if est.DataBytes < int64(prog.Words*prof.IntBytes) {
		t.Errorf("%s: data estimate %d below actual %d",
			prof.Name, est.DataBytes, prog.Words*prof.IntBytes)
	}
}

func TestAccuracySimpleHC11(t *testing.T)  { checkAccuracy(t, simple(), vm.HC11(), 15) }
func TestAccuracySimpleR3K(t *testing.T)   { checkAccuracy(t, simple(), vm.R3K(), 15) }
func TestAccuracyCounterHC11(t *testing.T) { checkAccuracy(t, counter(), vm.HC11(), 15) }
func TestAccuracyCounterR3K(t *testing.T)  { checkAccuracy(t, counter(), vm.R3K(), 15) }

func TestMinLeMax(t *testing.T) {
	g := buildSG(t, counter())
	p := mustCalibrate(t, vm.HC11())
	est := EstimateSGraph(g, p, Options{})
	if est.MinCycles > est.MaxCycles {
		t.Errorf("min %d > max %d", est.MinCycles, est.MaxCycles)
	}
	if est.MinCycles <= 0 || est.CodeBytes <= 0 {
		t.Errorf("degenerate estimate: %+v", est)
	}
}

func TestFalsePathsTightenMax(t *testing.T) {
	// Two mutually exclusive predicates each guarding an expensive
	// action: the plain longest path takes both, the false-path-aware
	// bound must be lower.
	c := cfsm.New("fp")
	v := c.AddInput("v", false)
	o1 := c.AddOutput("o1", true)
	o2 := c.AddOutput("o2", true)
	x := c.AddState("x", 0, 0)
	p := c.Present(v)
	lo := c.Pred(expr.Lt(expr.V("?v"), expr.C(10)))
	hi := c.Pred(expr.Ge(expr.V("?v"), expr.C(20)))
	c.MarkExclusive(lo, hi)
	heavy1 := c.Assign(x, expr.Mul(expr.V("x"), expr.V("?v")))
	c.AddTransition([]cfsm.Cond{cfsm.On(p, 1), cfsm.On(lo, 1), cfsm.On(hi, 0)}, c.Emit(o1), heavy1)
	c.AddTransition([]cfsm.Cond{cfsm.On(p, 1), cfsm.On(lo, 1), cfsm.On(hi, 1)}, c.Emit(o1), c.Emit(o2), heavy1)
	c.AddTransition([]cfsm.Cond{cfsm.On(p, 1), cfsm.On(lo, 0), cfsm.On(hi, 1)}, c.Emit(o2))

	r, err := cfsm.BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sgraph.Build(r, sgraph.OrderNaive)
	if err != nil {
		t.Fatal(err)
	}
	params := mustCalibrate(t, vm.HC11())
	plain := EstimateSGraph(g, params, Options{})
	pruned := EstimateSGraph(g, params, Options{UseFalsePaths: true})
	if pruned.MaxCycles >= plain.MaxCycles {
		t.Errorf("false-path pruning did not tighten the bound: %d vs %d",
			pruned.MaxCycles, plain.MaxCycles)
	}
	if pruned.MinCycles != plain.MinCycles {
		t.Errorf("pruning must not change the min bound")
	}
}

func TestOptimizeCopiesLowersEstimate(t *testing.T) {
	// The swapper needs copies; the simple module does not, so
	// OptimizeCopies lowers its estimate.
	g := buildSG(t, simple())
	p := mustCalibrate(t, vm.HC11())
	full := EstimateSGraph(g, p, Options{})
	opt := EstimateSGraph(g, p, Options{Codegen: codegen.Options{OptimizeCopies: true}})
	if opt.CodeBytes >= full.CodeBytes {
		t.Errorf("copy optimisation must lower the size estimate: %d vs %d",
			opt.CodeBytes, full.CodeBytes)
	}
	if opt.DataBytes >= full.DataBytes {
		t.Errorf("copy optimisation must lower the RAM estimate: %d vs %d",
			opt.DataBytes, full.DataBytes)
	}
}

func TestExprDepth(t *testing.T) {
	if d := depthOf(expr.C(1)); d != 0 {
		t.Errorf("const depth %d", d)
	}
	e := expr.Add(expr.V("a"), expr.Mul(expr.V("b"), expr.C(2)))
	if d := depthOf(e); d != 2 {
		t.Errorf("nested depth %d, want 2", d)
	}
	left := expr.Add(expr.Mul(expr.V("b"), expr.C(2)), expr.V("a"))
	if d := depthOf(left); d != 1 {
		t.Errorf("left-deep depth %d, want 1", d)
	}
}

func TestMicros(t *testing.T) {
	p := mustCalibrate(t, vm.HC11())
	r := Result{MaxCycles: 2000}
	us := r.Micros(p, r.MaxCycles)
	if us != 1000 { // 2000 cycles at 2 MHz = 1 ms
		t.Errorf("2000 cycles at 2MHz = %f us, want 1000", us)
	}
}

func TestParamsFormat(t *testing.T) {
	p := mustCalibrate(t, vm.HC11())
	out := p.Format()
	for _, needle := range []string{
		"timing (cycles):", "size (bytes):", "system:", "library (cycles):",
		"emit event", "DIV=", "clock 2000 kHz",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("parameter report missing %q", needle)
		}
	}
	// The paper's counts: 17 timing, 15 size, 4 system parameters.
	if n := strings.Count(out, "\n  "); n != 17+15 {
		t.Errorf("parameter rows: %d, want 32", n)
	}
}

func TestReduceLowersEstimate(t *testing.T) {
	// The fixed-point s-graph reduction uses the same MarkExclusive
	// facts as false-path pruning, but rewrites the graph itself: with
	// cnt==49 and cnt==149 declared exclusive, the inner threshold
	// TEST is bypassed, so the structural estimate must drop (ROM) and
	// must not worsen (cycles) — no false-path option needed.
	c := cfsm.New("redest")
	tick := c.AddInput("tick", true)
	end5 := c.AddOutput("end5", true)
	end10 := c.AddOutput("end10", true)
	cnt := c.AddState("cnt", 0, 0)
	p := c.Present(tick)
	at50 := c.Pred(expr.Eq(expr.V("cnt"), expr.C(49)))
	at150 := c.Pred(expr.Eq(expr.V("cnt"), expr.C(149)))
	c.MarkExclusive(at50, at150)
	bump := expr.Add(expr.V("cnt"), expr.C(1))
	c.AddTransition([]cfsm.Cond{cfsm.On(p, 1), cfsm.On(at50, 1)},
		c.Emit(end5), c.Assign(cnt, bump))
	c.AddTransition([]cfsm.Cond{cfsm.On(p, 1), cfsm.On(at150, 1)},
		c.Emit(end10), c.Assign(cnt, expr.C(0)))
	c.AddTransition([]cfsm.Cond{cfsm.On(p, 1), cfsm.On(at50, 0), cfsm.On(at150, 0)},
		c.Assign(cnt, bump))

	g := buildSG(t, c)
	params := mustCalibrate(t, vm.HC11())
	plain := EstimateSGraph(g, params, Options{})

	g2 := buildSG(t, c)
	stats := g2.Reduce(sgraph.ReduceOptions{})
	if stats.TestsEliminated == 0 {
		t.Fatalf("reduction eliminated no TEST: %s", stats.String())
	}
	reduced := EstimateSGraph(g2, params, Options{})
	if reduced.CodeBytes >= plain.CodeBytes {
		t.Errorf("reduction must lower the ROM estimate: %d vs %d",
			reduced.CodeBytes, plain.CodeBytes)
	}
	if reduced.MaxCycles > plain.MaxCycles {
		t.Errorf("reduction must not worsen the cycle bound: %d vs %d",
			reduced.MaxCycles, plain.MaxCycles)
	}
}
