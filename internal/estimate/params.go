// Package estimate implements the software cost and performance
// estimation of Section III-C: cost parameters are determined for a
// target system by measuring sample code patterns, then applied to the
// s-graph to compute code size (a sum over vertices), minimum
// execution cycles (shortest path, Dijkstra) and maximum execution
// cycles (longest path, PERT), without compiling or running the CFSM
// itself.
package estimate

import (
	"fmt"
	"strings"

	"polis/internal/expr"
	"polis/internal/vm"
)

// Params holds the calibrated cost parameters of one target system.
// The paper uses 17 parameters for execution cycles, 15 for code size
// and 4 system characterisation parameters; the fields below carry the
// same information (per-edge TEST costs, RTOS-call costs, assignment
// costs, branch cost, routine call/return cost, local initialisation
// cost, a ~20-entry library table for arithmetic operators, and the
// pointer/integer sizes).
type Params struct {
	Target *vm.Profile

	// --- timing parameters (cycles) ---

	// TestPresenceCyc is the cost of a presence TEST (an RTOS call
	// plus the conditional branch); index 0 is the not-taken edge,
	// index 1 the taken edge.
	TestPresenceCyc [2]int64
	// TestBoolCyc is the branch cost of a Boolean predicate TEST on
	// top of the predicate expression cost.
	TestBoolCyc [2]int64
	// TestSelLoadCyc is the state load of a selector TEST.
	TestSelLoadCyc int64
	// TestMultiBaseCyc and TestMultiPerEdgeCyc give the a + b*i
	// dispatch cost of a multi-way TEST (the paper's two-parameter
	// model for nodes with more than three edges).
	TestMultiBaseCyc    int64
	TestMultiPerEdgeCyc int64
	// TestIdxStepCyc is the per-test accumulation cost when a
	// collapsed TEST combines several outcomes into one index.
	TestIdxStepCyc int64
	// AssignEmitCyc is an event emission (RTOS call).
	AssignEmitCyc int64
	// AssignEmitValuedCyc is a valued emission beyond its expression.
	AssignEmitValuedCyc int64
	// AssignStoreCyc is the store completing a state assignment.
	AssignStoreCyc int64
	// GotoCyc is an unconditional branch.
	GotoCyc int64
	// CallReturnCyc is routine entry plus exit.
	CallReturnCyc int64
	// LocalCopyCyc is one copy-on-entry of a state variable.
	LocalCopyCyc int64
	// ValueFetchCyc is one input-value fetch on entry (RTOS call).
	ValueFetchCyc int64
	// ExprConstCyc and ExprRefCyc are operand costs.
	ExprConstCyc int64
	ExprRefCyc   int64
	// ExprUnaryCyc is a unary operator.
	ExprUnaryCyc int64
	// ExprOpCyc is the library-function table: per-operator cost
	// including partial-result handling.
	ExprOpCyc map[expr.Op]int64

	// --- size parameters (bytes) ---

	TestPresenceSz  int64
	TestBoolSz      int64
	TestSelLoadSz   int64
	TestMultiBaseSz int64
	TestMultiPerSz  int64 // per table entry
	TestIdxStepSz   int64
	AssignEmitSz    int64
	AssignEmitVSz   int64
	AssignStoreSz   int64
	GotoSz          int64
	CallReturnSz    int64
	LocalCopySz     int64
	ValueFetchSz    int64
	ExprConstSz     int64
	ExprRefSz       int64
	ExprOpSz        map[expr.Op]int64

	// --- system parameters ---

	IntBytes int
	PtrBytes int
	WordSize int
	ClockKHz int
}

// ExprCost returns the estimated cycles and bytes of evaluating e.
func (p *Params) ExprCost(e expr.Expr) (cyc, sz int64) {
	switch x := e.(type) {
	case expr.Const:
		return p.ExprConstCyc, p.ExprConstSz
	case expr.Ref:
		return p.ExprRefCyc, p.ExprRefSz
	case *expr.Un:
		c, s := p.ExprCost(x.X)
		return c + p.ExprUnaryCyc, s + 2
	case *expr.Bin:
		cl, sl := p.ExprCost(x.L)
		cr, sr := p.ExprCost(x.R)
		return cl + cr + p.ExprOpCyc[x.Op], sl + sr + p.ExprOpSz[x.Op]
	}
	return 0, 0
}

// Format renders the calibrated parameter set in the style of the
// paper's description: the execution-cycle parameters, the code-size
// parameters, the system characterisation parameters and the software
// library table.
func (p *Params) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Calibrated cost parameters, target %s\n", p.Target.Name)
	fmt.Fprintf(&b, "timing (cycles):\n")
	rows := []struct {
		name string
		v    int64
	}{
		{"test presence, not taken", p.TestPresenceCyc[0]},
		{"test presence, taken", p.TestPresenceCyc[1]},
		{"test boolean, not taken", p.TestBoolCyc[0]},
		{"test boolean, taken", p.TestBoolCyc[1]},
		{"selector state load", p.TestSelLoadCyc},
		{"multiway dispatch base", p.TestMultiBaseCyc},
		{"multiway dispatch per edge", p.TestMultiPerEdgeCyc},
		{"collapsed-test index step", p.TestIdxStepCyc},
		{"emit event (RTOS call)", p.AssignEmitCyc},
		{"emit valued event", p.AssignEmitValuedCyc},
		{"assignment store", p.AssignStoreCyc},
		{"goto", p.GotoCyc},
		{"call/return", p.CallReturnCyc},
		{"copy-on-entry", p.LocalCopyCyc},
		{"input value fetch", p.ValueFetchCyc},
		{"constant operand", p.ExprConstCyc},
		{"variable operand", p.ExprRefCyc},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s %5d\n", r.name, r.v)
	}
	fmt.Fprintf(&b, "size (bytes):\n")
	srows := []struct {
		name string
		v    int64
	}{
		{"test presence", p.TestPresenceSz},
		{"test boolean", p.TestBoolSz},
		{"selector state load", p.TestSelLoadSz},
		{"multiway dispatch base", p.TestMultiBaseSz},
		{"multiway table per entry", p.TestMultiPerSz},
		{"collapsed-test index step", p.TestIdxStepSz},
		{"emit event", p.AssignEmitSz},
		{"emit valued event", p.AssignEmitVSz},
		{"assignment store", p.AssignStoreSz},
		{"goto", p.GotoSz},
		{"call/return", p.CallReturnSz},
		{"copy-on-entry", p.LocalCopySz},
		{"input value fetch", p.ValueFetchSz},
		{"constant operand", p.ExprConstSz},
		{"variable operand", p.ExprRefSz},
	}
	for _, r := range srows {
		fmt.Fprintf(&b, "  %-28s %5d\n", r.name, r.v)
	}
	fmt.Fprintf(&b, "system: int %d B, pointer %d B, word %d B, clock %d kHz\n",
		p.IntBytes, p.PtrBytes, p.WordSize, p.ClockKHz)
	fmt.Fprintf(&b, "library (cycles): ")
	for op := expr.Op(0); op < expr.Op(expr.NumOps()); op++ {
		fmt.Fprintf(&b, "%s=%d ", op.Name(), p.ExprOpCyc[op])
	}
	b.WriteString("\n")
	return b.String()
}
