package estimate

import (
	"fmt"
	"sync"

	"polis/internal/expr"
	"polis/internal/vm"
)

// calibMemo caches Calibrate results per profile instance. Keyed by
// pointer identity: a caller that mutates a profile in place must
// allocate a fresh Profile (as the cache-fingerprint contract already
// requires) or bypass the memo by calling Calibrate directly.
var calibMemo sync.Map // *vm.Profile -> *Params

// CalibrateCached is Calibrate memoized per profile instance. The
// calibration fragments depend only on the profile's cost tables, so
// recalibrating the same profile for every module of a network (the
// pipeline synthesizes modules independently) is pure repeated work —
// on a 16-module batch it was ~25% of the whole run. The returned
// Params are shared and must be treated as read-only.
func CalibrateCached(prof *vm.Profile) (*Params, error) {
	if p, ok := calibMemo.Load(prof); ok {
		return p.(*Params), nil
	}
	p, err := Calibrate(prof)
	if err != nil {
		return nil, err
	}
	got, _ := calibMemo.LoadOrStore(prof, p)
	return got.(*Params), nil
}

// Calibrate determines the cost parameters of a target by assembling
// and measuring sample code fragments in each statement style the code
// generator produces — the counterpart of the paper's ~20 benchmark C
// functions characterised with a cycle calculator. Every parameter is
// obtained by static analysis of a fragment on the target, never read
// out of the profile tables directly, so a divergence between the
// generator's real patterns and the calibration fragments shows up as
// estimation error exactly as it would on real hardware.
//
// A profile whose cost tables cannot assemble or analyze the
// calibration fragments is reported as an error rather than a panic,
// so a corrupt calibration source is a diagnosable failure for
// callers that load profiles from configuration.
func Calibrate(prof *vm.Profile) (*Params, error) {
	p := &Params{
		Target:    prof,
		ExprOpCyc: make(map[expr.Op]int64),
		ExprOpSz:  make(map[expr.Op]int64),
		IntBytes:  prof.IntBytes,
		PtrBytes:  prof.PtrBytes,
		WordSize:  prof.WordBytes,
		ClockKHz:  prof.ClockKHz,
	}

	// Fragment assembly failures are latched and reported once at the
	// end; zero-valued measurements from a failed fragment are never
	// returned to the caller.
	var ferr error
	mk := func(instrs ...vm.Instr) fragResult {
		if ferr != nil {
			return fragResult{}
		}
		fr, err := frag(prof, instrs...)
		if err != nil {
			ferr = err
		}
		return fr
	}
	mkJ := func(n int) fragResult {
		if ferr != nil {
			return fragResult{}
		}
		fr, err := jtabFrag(prof, n)
		if err != nil {
			ferr = err
		}
		return fr
	}

	// The bare routine skeleton: just the HALT return.
	halt := mk()
	p.CallReturnCyc = halt.fallCyc
	p.CallReturnSz = halt.bytes

	// Presence TEST: RTOS presence call plus conditional branch.
	fr := mk(
		vm.Instr{Op: vm.SVC, Num: vm.SvcPresent},
		vm.Instr{Op: vm.BRNZ, Rs: 0, Label: "end"},
	)
	p.TestPresenceCyc[0] = fr.fallCyc - halt.fallCyc
	p.TestPresenceCyc[1] = fr.takenCyc - halt.fallCyc
	p.TestPresenceSz = fr.bytes - halt.bytes

	// Boolean predicate branch (on top of the predicate expression).
	fb := mk(vm.Instr{Op: vm.BRNZ, Rs: 1, Label: "end"})
	p.TestBoolCyc[0] = fb.fallCyc - halt.fallCyc
	p.TestBoolCyc[1] = fb.takenCyc - halt.fallCyc
	p.TestBoolSz = fb.bytes - halt.bytes

	// Selector state load.
	fl := mk(vm.Instr{Op: vm.LD, Rd: 1, Addr: 0})
	p.TestSelLoadCyc = fl.fallCyc - halt.fallCyc
	p.TestSelLoadSz = fl.bytes - halt.bytes

	// Multi-way dispatch: JTAB tables of 2 and 4 entries give the
	// a + b*i timing model and the per-entry table bytes.
	j2 := mkJ(2)
	j4 := mkJ(4)
	p.TestMultiBaseCyc = j2.minCyc - halt.fallCyc
	p.TestMultiPerEdgeCyc = j2.takenCyc - j2.minCyc // cost per index step
	p.TestMultiPerSz = (j4.bytes - j2.bytes) / 2
	p.TestMultiBaseSz = j2.bytes - halt.bytes - 2*p.TestMultiPerSz

	// Index accumulation step for collapsed tests.
	fi := mk(
		vm.Instr{Op: vm.LDI, Rd: 3, Imm: 2},
		vm.Instr{Op: vm.ALU, AOp: expr.OpMul, Rd: 2, Rs: 3},
		vm.Instr{Op: vm.ALU, AOp: expr.OpAdd, Rd: 2, Rs: 1},
	)
	p.TestIdxStepCyc = fi.fallCyc - halt.fallCyc
	p.TestIdxStepSz = fi.bytes - halt.bytes

	// Emissions (RTOS calls).
	fe := mk(vm.Instr{Op: vm.SVC, Num: vm.SvcEmit})
	p.AssignEmitCyc = fe.fallCyc - halt.fallCyc
	p.AssignEmitSz = fe.bytes - halt.bytes
	p.AssignEmitValuedCyc = p.AssignEmitCyc
	p.AssignEmitVSz = p.AssignEmitSz

	// State store.
	fs := mk(vm.Instr{Op: vm.ST, Addr: 0, Rs: 1})
	p.AssignStoreCyc = fs.fallCyc - halt.fallCyc
	p.AssignStoreSz = fs.bytes - halt.bytes

	// Unconditional branch (goto).
	fg := mk(vm.Instr{Op: vm.JMP, Label: "end"})
	p.GotoCyc = fg.fallCyc - halt.fallCyc
	p.GotoSz = fg.bytes - halt.bytes

	// Copy-on-entry of a state variable, and input-value fetch.
	fc := mk(
		vm.Instr{Op: vm.LD, Rd: 1, Addr: 0},
		vm.Instr{Op: vm.ST, Addr: 1, Rs: 1},
	)
	p.LocalCopyCyc = fc.fallCyc - halt.fallCyc
	p.LocalCopySz = fc.bytes - halt.bytes
	fv := mk(
		vm.Instr{Op: vm.SVC, Num: vm.SvcValue},
		vm.Instr{Op: vm.ST, Addr: 0, Rs: 0},
	)
	p.ValueFetchCyc = fv.fallCyc - halt.fallCyc
	p.ValueFetchSz = fv.bytes - halt.bytes

	// Expression operands and operators.
	fk := mk(vm.Instr{Op: vm.LDI, Rd: 1, Imm: 1})
	p.ExprConstCyc = fk.fallCyc - halt.fallCyc
	p.ExprConstSz = fk.bytes - halt.bytes
	fr2 := mk(vm.Instr{Op: vm.LD, Rd: 1, Addr: 0})
	p.ExprRefCyc = fr2.fallCyc - halt.fallCyc
	p.ExprRefSz = fr2.bytes - halt.bytes
	fu := mk(vm.Instr{Op: vm.NEG, Rd: 1})
	p.ExprUnaryCyc = fu.fallCyc - halt.fallCyc

	// Library table: each binary operator lowers to the spill schema
	// ST/LD/ALU/MOV around its operands.
	for op := expr.Op(0); op < expr.Op(expr.NumOps()); op++ {
		fo := mk(
			vm.Instr{Op: vm.ST, Addr: 0, Rs: 1},
			vm.Instr{Op: vm.LD, Rd: 2, Addr: 0},
			vm.Instr{Op: vm.ALU, AOp: op, Rd: 2, Rs: 1},
			vm.Instr{Op: vm.MOV, Rd: 1, Rs: 2},
		)
		p.ExprOpCyc[op] = fo.fallCyc - halt.fallCyc
		p.ExprOpSz[op] = fo.bytes - halt.bytes
	}
	if ferr != nil {
		return nil, ferr
	}
	return p, nil
}

// fragResult carries the measurements of one sample fragment.
type fragResult struct {
	minCyc   int64 // cheapest path
	fallCyc  int64 // path that never takes a conditional branch
	takenCyc int64 // most expensive path (conditional branches taken)
	bytes    int64
}

// frag assembles instrs followed by a HALT at label "end" and measures
// it statically on the profile. For fragments with one conditional
// branch to "end", the fall-through path and the taken path bracket
// the two edge costs.
func frag(prof *vm.Profile, instrs ...vm.Instr) (fragResult, error) {
	p := vm.NewProgram("frag")
	p.Alloc("t0")
	p.Alloc("t1")
	for _, in := range instrs {
		p.Emit(in)
	}
	_ = p.Mark("end")
	p.Emit(vm.Instr{Op: vm.HALT})
	if err := p.Resolve(); err != nil {
		return fragResult{}, fmt.Errorf("estimate: bad calibration fragment: %w", err)
	}
	pc, err := vm.AnalyzeCycles(prof, p, "")
	if err != nil {
		return fragResult{}, fmt.Errorf("estimate: calibration analysis failed: %w", err)
	}
	res := fragResult{
		minCyc:   pc.Min,
		takenCyc: pc.Max,
		bytes:    int64(prof.CodeSize(p)),
	}
	if hasBranch(instrs) {
		// The branch in these fragments jumps over nothing, so the
		// fall-through path is the cheap one.
		res.fallCyc = pc.Min
	} else {
		res.fallCyc = pc.Max
	}
	return res, nil
}

func hasBranch(instrs []vm.Instr) bool {
	for _, in := range instrs {
		switch in.Op {
		case vm.BR, vm.BRZ, vm.BRNZ:
			return true
		}
	}
	return false
}

// jtabFrag measures a JTAB dispatch with n entries. takenCyc reports
// the cost at index 1 so the per-index increment can be derived.
func jtabFrag(prof *vm.Profile, n int) (fragResult, error) {
	p := vm.NewProgram("jt")
	table := make([]string, n)
	for i := range table {
		table[i] = "end"
	}
	p.Emit(vm.Instr{Op: vm.JTAB, Rs: 1, Table: table})
	_ = p.Mark("end")
	p.Emit(vm.Instr{Op: vm.HALT})
	if err := p.Resolve(); err != nil {
		return fragResult{}, fmt.Errorf("estimate: bad jtab fragment: %w", err)
	}
	pc, err := vm.AnalyzeCycles(prof, p, "")
	if err != nil {
		return fragResult{}, fmt.Errorf("estimate: jtab analysis failed: %w", err)
	}
	perStep := int64(0)
	if n > 1 {
		perStep = (pc.Max - pc.Min) / int64(n-1)
	}
	return fragResult{
		minCyc:   pc.Min,
		fallCyc:  pc.Min,
		takenCyc: pc.Min + perStep,
		bytes:    int64(prof.CodeSize(p)),
	}, nil
}
