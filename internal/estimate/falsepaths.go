package estimate

import (
	"polis/internal/cfsm"
	"polis/internal/sgraph"
)

// maxWithFalsePaths recomputes the worst-case path length while
// pruning statically infeasible paths: a path asserting two mutually
// exclusive tests both true can never execute ("false paths ... can be
// determined with a good degree of accuracy from the structure of the
// CFSM network, e.g. by computing event incompatibility relations",
// Section III-C). The search enumerates paths with memoisation on the
// (vertex, asserted-exclusive-tests) pair; the exclusive-test sets of
// practical CFSMs are small.
func maxWithFalsePaths(g *sgraph.SGraph, p *Params, opts Options, entryCyc int64) (int64, bool) {
	if len(g.C.Exclusive) == 0 {
		return 0, false
	}
	// Tests participating in any exclusivity group.
	exIdx := make(map[*cfsm.Test]int)
	for _, grp := range g.C.Exclusive {
		for _, t := range grp {
			if _, ok := exIdx[t]; !ok {
				exIdx[t] = len(exIdx)
			}
		}
	}
	if len(exIdx) > 30 {
		return 0, false // give up; fall back to the plain bound
	}
	groupMasks := make([]uint32, 0, len(g.C.Exclusive))
	for _, grp := range g.C.Exclusive {
		var m uint32
		for _, t := range grp {
			m |= 1 << exIdx[t]
		}
		groupMasks = append(groupMasks, m)
	}
	conflicts := func(asserted uint32) bool {
		for _, m := range groupMasks {
			hit := asserted & m
			if hit != 0 && hit&(hit-1) != 0 {
				return true // two tests of one exclusive group true
			}
		}
		return false
	}

	order := g.Reachable()
	idx := make(map[*sgraph.Vertex]int, len(order))
	for i, v := range order {
		idx[v] = i
	}
	fallsThrough := func(i int, w *sgraph.Vertex) bool {
		return i+1 < len(order) && order[i+1] == w
	}

	type key struct {
		v        *sgraph.Vertex
		asserted uint32
	}
	memo := make(map[key]int64)
	const dead = int64(-1)

	var walk func(v *sgraph.Vertex, asserted uint32) int64
	walk = func(v *sgraph.Vertex, asserted uint32) int64 {
		k := key{v, asserted}
		if r, ok := memo[k]; ok {
			return r
		}
		i := idx[v]
		vc, _ := vertexCost(p, opts, v)
		var r int64
		switch v.Kind {
		case sgraph.End:
			r = vc
		case sgraph.Test:
			r = dead
			for kk, w := range v.Children {
				a2 := asserted
				if len(v.Tests) == 1 {
					if bit, ok := exIdx[v.Tests[0]]; ok && v.Tests[0].Arity() == 2 && kk == 1 {
						a2 |= 1 << bit
						if conflicts(a2) {
							continue // infeasible branch
						}
					}
				}
				e := edgeCost(p, opts, v, kk)
				if !fallsThrough(i, w) && kk == v.FallIdx() {
					e += p.GotoCyc
				}
				sub := walk(w, a2)
				if sub == dead {
					continue
				}
				if c := vc + e + sub; r == dead || c > r {
					r = c
				}
			}
		default:
			e := int64(0)
			if !fallsThrough(i, v.Next) {
				e = p.GotoCyc
			}
			sub := walk(v.Next, asserted)
			if sub == dead {
				r = dead
			} else {
				r = vc + e + sub
			}
		}
		memo[k] = r
		return r
	}
	r := walk(g.Begin, 0)
	if r == dead {
		return 0, false
	}
	return entryCyc + r, true
}
