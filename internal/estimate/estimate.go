package estimate

import (
	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/expr"
	"polis/internal/sgraph"
)

// Result is a complete cost estimate for one CFSM routine.
type Result struct {
	// CodeBytes estimates the ROM footprint of the routine.
	CodeBytes int64
	// DataBytes estimates the RAM footprint (state, copies, temps).
	DataBytes int64
	// MinCycles and MaxCycles bound a single transition's execution
	// time (Dijkstra shortest path / PERT longest path over the
	// s-graph, Section III-C1).
	MinCycles int64
	MaxCycles int64
	// ExpectedCycles is the profile-weighted mean execution time of a
	// transition under Options.ScenarioProfile: each observed outcome
	// vector's path is costed exactly and weighted by its observed
	// frequency. Zero when no profile is supplied (or none of its
	// vectors cover this graph's tests); compare against MaxCycles to
	// see what specialization buys on the scenario actually running.
	ExpectedCycles int64
}

// Micros converts cycles to microseconds under the target clock.
func (r Result) Micros(p *Params, cycles int64) float64 {
	return float64(cycles) * 1000.0 / float64(p.ClockKHz)
}

// Options tunes the estimator.
type Options struct {
	// Codegen mirrors the code-generation options the estimate
	// should assume (copy optimisation, if/switch threshold).
	Codegen codegen.Options
	// UseFalsePaths enables pruning of statically infeasible paths
	// using the CFSM's mutual-exclusion information ("event
	// incompatibility relations"), tightening MaxCycles.
	UseFalsePaths bool
	// ScenarioProfile, when set, adds the profile-weighted
	// ExpectedCycles figure to the result. It is the same evidence the
	// specialization pass consumes, so worst-case and expected-case
	// can be read off one estimate.
	ScenarioProfile *sgraph.SpecializeProfile
}

// vertexCost is the estimated cycles of the vertex body (excluding
// per-edge costs) and its code size.
func vertexCost(p *Params, opts Options, v *sgraph.Vertex) (cyc, sz int64) {
	switch v.Kind {
	case sgraph.Begin, sgraph.End:
		return 0, 0
	case sgraph.Assign:
		a := v.Action
		switch a.Kind {
		case cfsm.ActEmit:
			if a.Value == nil {
				return p.AssignEmitCyc, p.AssignEmitSz
			}
			c, s := p.ExprCost(a.Value)
			return c + p.AssignEmitValuedCyc, s + p.AssignEmitVSz
		default:
			c, s := p.ExprCost(a.Expr)
			return c + p.AssignStoreCyc, s + p.AssignStoreSz
		}
	case sgraph.Test:
		if len(v.Tests) == 1 && v.Tests[0].Arity() == 2 {
			t := v.Tests[0]
			switch t.Kind {
			case cfsm.TestPresence:
				return 0, p.TestPresenceSz // timing handled per edge
			case cfsm.TestPredicate:
				c, s := p.ExprCost(t.Pred)
				return c, s + p.TestBoolSz
			default:
				return p.TestSelLoadCyc, p.TestSelLoadSz + p.TestBoolSz
			}
		}
		// Multi-way: index computation plus dispatch.
		var c, s int64
		for _, t := range v.Tests {
			c += p.TestIdxStepCyc
			s += p.TestIdxStepSz
			switch t.Kind {
			case cfsm.TestPresence:
				c += p.TestPresenceCyc[0] - p.TestBoolCyc[0] // the SVC part
				s += p.TestPresenceSz - p.TestBoolSz
			case cfsm.TestPredicate:
				ec, es := p.ExprCost(t.Pred)
				c += ec + 2*p.ExprUnaryCyc
				s += es + 4
			default:
				c += p.TestSelLoadCyc
				s += p.TestSelLoadSz
			}
		}
		arity := int64(v.Arity())
		threshold := opts.Codegen.IfThreshold
		if threshold == 0 {
			threshold = 2
		}
		if int(arity) <= threshold {
			// Compare-and-branch chain: one LDI+BR per non-zero
			// outcome; approximate per-arm cost with the Boolean
			// branch parameters.
			c += (arity - 1) * (p.ExprConstCyc + p.TestBoolCyc[0])
			s += (arity - 1) * (p.ExprConstSz + p.TestBoolSz)
			return c, s
		}
		c += p.TestMultiBaseCyc
		s += p.TestMultiBaseSz + arity*p.TestMultiPerSz
		return c, s
	}
	return 0, 0
}

// edgeCost is the estimated cycles of taking the k-th (semantic)
// edge out of v. Costs attach to emission positions, not outcome
// indices: position 0 is the fall-through arm, later positions pay
// progressively more comparisons. On an unspecialized vertex position
// and index coincide; a Hot order permutes which outcome sits where,
// which is exactly how specialization makes the hot arm cheap.
func edgeCost(p *Params, opts Options, v *sgraph.Vertex, k int) int64 {
	if v.Kind != sgraph.Test {
		return 0
	}
	pos := v.HotPos(k)
	if len(v.Tests) == 1 && v.Tests[0].Arity() == 2 {
		t := v.Tests[0]
		if t.Kind == cfsm.TestPresence {
			return p.TestPresenceCyc[pos]
		}
		return p.TestBoolCyc[pos]
	}
	threshold := opts.Codegen.IfThreshold
	if threshold == 0 {
		threshold = 2
	}
	if v.Arity() <= threshold {
		// The arm at emission position pos pays pos comparisons
		// before its branch hits.
		return int64(pos) * (p.ExprConstCyc + p.TestBoolCyc[1])
	}
	// Jump-table dispatch is uniform in reality; the per-edge model
	// keeps the historical position-proportional approximation.
	return int64(pos) * p.TestMultiPerEdgeCyc
}

// EstimateSGraph computes the estimate by a single traversal of the
// s-graph, as the paper's estimator does: code size is the sum of the
// per-vertex size parameters, timing bounds come from shortest and
// longest path.
func EstimateSGraph(g *sgraph.SGraph, p *Params, opts Options) Result {
	var res Result
	plan := codegen.AnalyzeCopies(g)

	// --- entry overhead ---
	var entryCyc, entrySz int64
	entryCyc += p.CallReturnCyc
	entrySz += p.CallReturnSz
	copies := 0
	for _, sv := range g.C.States {
		need := plan.Read[sv]
		if opts.Codegen.OptimizeCopies {
			need = plan.NeedCopy[sv]
		}
		if need {
			copies++
			entryCyc += p.LocalCopyCyc
			entrySz += p.LocalCopySz
		}
	}
	valueFetches := 0
	for _, sig := range g.C.Inputs {
		if !sig.Pure && plan.ValueRead[sig] {
			valueFetches++
			entryCyc += p.ValueFetchCyc
			entrySz += p.ValueFetchSz
		}
	}

	// --- per-vertex size, and timing DP over the DAG ---
	order := g.Reachable()
	idx := make(map[*sgraph.Vertex]int, len(order))
	for i, v := range order {
		idx[v] = i
	}
	var sz int64
	// The emitter falls through to the DFS-next vertex; every other
	// edge needs a goto: fold the goto bytes into code size and the
	// goto time into the corresponding edge. Shortest/longest path
	// over the DAG by memoised recursion (DFS pre-order is not a
	// reverse-topological order when children are shared).
	fallsThrough := func(i int, w *sgraph.Vertex) bool {
		return i+1 < len(order) && order[i+1] == w
	}
	type bounds struct{ min, max int64 }
	memo := make(map[*sgraph.Vertex]bounds, len(order))
	var visit func(v *sgraph.Vertex) bounds
	visit = func(v *sgraph.Vertex) bounds {
		if b, ok := memo[v]; ok {
			return b
		}
		i := idx[v]
		vc, vs := vertexCost(p, opts, v)
		sz += vs
		var b bounds
		switch v.Kind {
		case sgraph.End:
			b = bounds{vc, vc}
		case sgraph.Test:
			first := true
			for k, w := range v.Children {
				e := edgeCost(p, opts, v, k)
				if !fallsThrough(i, w) && k == v.FallIdx() {
					// FallIdx is the fall-through arm in the generated
					// code; a displaced child needs a goto.
					e += p.GotoCyc
					sz += p.GotoSz
				}
				cb := visit(w)
				cMin := vc + e + cb.min
				cMax := vc + e + cb.max
				if first {
					b = bounds{cMin, cMax}
					first = false
					continue
				}
				if cMin < b.min {
					b.min = cMin
				}
				if cMax > b.max {
					b.max = cMax
				}
			}
		default: // Begin, Assign
			e := int64(0)
			if !fallsThrough(i, v.Next) {
				e = p.GotoCyc
				sz += p.GotoSz
			}
			cb := visit(v.Next)
			b = bounds{vc + e + cb.min, vc + e + cb.max}
		}
		memo[v] = b
		return b
	}
	root := visit(g.Begin)
	res.CodeBytes = entrySz + sz
	res.MinCycles = entryCyc + root.min
	res.MaxCycles = entryCyc + root.max
	if opts.UseFalsePaths {
		if mx, ok := maxWithFalsePaths(g, p, opts, entryCyc); ok && mx < res.MaxCycles {
			res.MaxCycles = mx
		}
	}
	if opts.ScenarioProfile != nil {
		res.ExpectedCycles = expectedCycles(g, p, opts, order, fallsThrough, entryCyc)
	}

	// --- RAM: persistent state + copies + value copies + spill temps ---
	words := len(g.C.States) + copies + valueFetches + exprDepth(g)
	res.DataBytes = int64(words * p.IntBytes)
	return res
}

// exprDepth returns the maximum binary-operator nesting over all
// expressions in the graph: the number of spill temporaries codegen
// allocates.
func exprDepth(g *sgraph.SGraph) int {
	max := 0
	note := func(d int) {
		if d > max {
			max = d
		}
	}
	for _, v := range g.Reachable() {
		switch v.Kind {
		case sgraph.Test:
			for _, t := range v.Tests {
				if t.Kind == cfsm.TestPredicate {
					note(depthOf(t.Pred))
				}
			}
		case sgraph.Assign:
			a := v.Action
			if a.Kind == cfsm.ActEmit && a.Value != nil {
				note(depthOf(a.Value))
			}
			if a.Kind == cfsm.ActAssign {
				note(depthOf(a.Expr))
			}
		}
	}
	return max
}

// depthOf returns the number of spill temporaries expression e needs
// under the code generator's schema: a binary node holds one temporary
// while its right operand evaluates.
func depthOf(e expr.Expr) int {
	switch x := e.(type) {
	case *expr.Bin:
		l := depthOf(x.L)
		r := 1 + depthOf(x.R)
		if l > r {
			return l
		}
		return r
	case *expr.Un:
		return depthOf(x.X)
	default:
		return 0
	}
}
