package sim_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"polis/internal/cfsm"
	"polis/internal/expr"
	"polis/internal/profile"
	"polis/internal/randcfsm"
	"polis/internal/rtos"
	"polis/internal/sim"
	"polis/internal/sim/internal/refsim"
)

// benchCase is a reusable throughput scenario: a large randomized
// network and a dense stimulus train over its primary inputs.
type benchCase struct {
	net     *cfsm.Network
	stimuli []sim.Stimulus
	horizon int64
}

// makeBenchCase builds a deterministic n-machine network with a
// stimulus train of the given round count and spacing. Independent
// topologies exercise the scheduler and the partition runner; chain
// topologies cascade every stimulus through several machines, so
// reaction execution dominates.
func makeBenchCase(n int, topo randcfsm.Topology, rounds int, gap int64) *benchCase {
	r := rand.New(rand.NewSource(42))
	net, _, err := randcfsm.NewTopologyNetwork(r, n, randcfsm.DefaultConfig(), topo)
	if err != nil {
		panic(err)
	}
	prim := net.PrimaryInputs()
	var stim []sim.Stimulus
	tnow := int64(100)
	for round := 0; round < rounds; round++ {
		for _, s := range prim {
			var v int64
			if !s.Pure {
				v = r.Int63n(randcfsm.DefaultConfig().ValueRange)
			}
			stim = append(stim, sim.Stimulus{Time: tnow, Signal: s, Value: v})
			tnow += gap
		}
		tnow += 5000
	}
	return &benchCase{net: net, stimuli: stim, horizon: tnow + 50_000}
}

// reactions sums task executions over all systems of a result.
func reactions(res *sim.Result) int64 {
	var total int64
	systems := res.Systems
	if systems == nil {
		systems = []*rtos.System{res.System}
	}
	for _, sys := range systems {
		for _, t := range sys.Tasks {
			total += t.Executions
		}
	}
	return total
}

// BenchmarkSimThroughput measures end-to-end co-simulation throughput
// (reactions per second, reported as a custom metric) on 10²- and
// 10³-module networks: the dense engine serial, the dense engine with
// GALS partition parallelism, and the frozen pre-change reference
// engine as the baseline. Whole runs are timed — task build included —
// so the numbers reflect what a caller of sim.Run observes; the
// build-excluded speedup gate is TestSimThroughputSpeedup.
func BenchmarkSimThroughput(b *testing.B) {
	for _, n := range []int{100, 1000} {
		bc := makeBenchCase(n, randcfsm.TopoIndependent, 2000/n+4, 40)
		run := func(b *testing.B, f func() int64) {
			b.ReportAllocs()
			var total int64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				total += f()
			}
			secs := time.Since(start).Seconds()
			if secs > 0 {
				b.ReportMetric(float64(total)/secs, "reactions/s")
			}
		}
		b.Run(fmt.Sprintf("n%d/engine", n), func(b *testing.B) {
			run(b, func() int64 {
				res, err := sim.Run(bc.net, append([]sim.Stimulus(nil), bc.stimuli...), bc.horizon,
					sim.Options{Cfg: rtos.DefaultConfig()})
				if err != nil {
					b.Fatal(err)
				}
				return reactions(res)
			})
		})
		b.Run(fmt.Sprintf("n%d/engine-parallel", n), func(b *testing.B) {
			run(b, func() int64 {
				res, err := sim.Run(bc.net, append([]sim.Stimulus(nil), bc.stimuli...), bc.horizon,
					sim.Options{Cfg: rtos.DefaultConfig(), Partition: true})
				if err != nil {
					b.Fatal(err)
				}
				return reactions(res)
			})
		})
		b.Run(fmt.Sprintf("n%d/refsim", n), func(b *testing.B) {
			run(b, func() int64 {
				res, err := refsim.Run(bc.net, append([]sim.Stimulus(nil), bc.stimuli...), bc.horizon,
					sim.Options{Cfg: rtos.DefaultConfig()})
				if err != nil {
					b.Fatal(err)
				}
				var total int64
				for _, t := range res.System.Tasks {
					total += t.Executions
				}
				return total
			})
		})
	}
}

// specBenchCase builds `pairs` independent scaler->limiter chains with
// a hot-biased stimulus train (seven of eight samples double past the
// limiter's clamp), and captures the matching execution profile with a
// probed behavioral run.
func specBenchCase(pairs, rounds int) (*benchCase, *profile.Profile) {
	n := cfsm.NewNetwork("specbench")
	var samples []*cfsm.Signal
	for k := 0; k < pairs; k++ {
		prefix := fmt.Sprintf("s%02d", k)
		sample := n.NewSignal(prefix+"_sample", false)
		mid := n.NewSignal(prefix+"_mid", false)
		out := n.NewSignal(prefix+"_out", false)
		sc := cfsm.New(prefix + "_scaler")
		sc.AttachInput(sample)
		sc.AttachOutput(mid)
		sc.AddTransition([]cfsm.Cond{cfsm.On(sc.Present(sample), 1)},
			sc.EmitV(mid, expr.Mul(expr.V("?"+sample.Name), expr.C(2))))
		lim := cfsm.New(prefix + "_limiter")
		lim.AttachInput(mid)
		lim.AttachOutput(out)
		pm := lim.Present(mid)
		hi := lim.Pred(expr.Gt(expr.V("?"+mid.Name), expr.C(10)))
		lim.AddTransition([]cfsm.Cond{cfsm.On(pm, 1), cfsm.On(hi, 1)},
			lim.EmitV(out, expr.C(10)))
		lim.AddTransition([]cfsm.Cond{cfsm.On(pm, 1), cfsm.On(hi, 0)},
			lim.EmitV(out, expr.V("?"+mid.Name)))
		if err := n.Add(sc); err != nil {
			panic(err)
		}
		if err := n.Add(lim); err != nil {
			panic(err)
		}
		samples = append(samples, sample)
	}
	var stim []sim.Stimulus
	tnow := int64(100)
	for round := 0; round < rounds; round++ {
		for _, s := range samples {
			v := int64(20 + round%5) // hot: doubles past the clamp
			if round%8 == 0 {
				v = 2 // cold: below the clamp
			}
			stim = append(stim, sim.Stimulus{Time: tnow, Signal: s, Value: v})
			tnow += 40
		}
		tnow += 5000
	}
	bc := &benchCase{net: n, stimuli: stim, horizon: tnow + 50_000}
	col := profile.NewCollector()
	if _, err := sim.Run(n, append([]sim.Stimulus(nil), stim...), bc.horizon,
		sim.Options{Cfg: rtos.DefaultConfig(), Probe: col}); err != nil {
		panic(err)
	}
	return bc, col.Profile()
}

// BenchmarkSimSpecialization measures the payoff of profile-guided
// hot-path specialization on a hot-biased cycle-exact workload: the
// identical scenario VMExact with specialization off and on. Besides
// wall-clock reactions/s it reports the deterministic busy
// cycles-per-reaction of the simulated target, the number the
// reordering is supposed to shrink.
func BenchmarkSimSpecialization(b *testing.B) {
	bc, prof := specBenchCase(16, 250)
	run := func(b *testing.B, spec *profile.Profile) {
		b.ReportAllocs()
		var totalReact, totalBusy int64
		start := time.Now()
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(bc.net, append([]sim.Stimulus(nil), bc.stimuli...), bc.horizon,
				sim.Options{Cfg: rtos.DefaultConfig(), Mode: sim.VMExact, Specialize: spec})
			if err != nil {
				b.Fatal(err)
			}
			totalReact += reactions(res)
			systems := res.Systems
			if systems == nil {
				systems = []*rtos.System{res.System}
			}
			for _, sys := range systems {
				totalBusy += sys.BusyCycles
			}
		}
		secs := time.Since(start).Seconds()
		if secs > 0 {
			b.ReportMetric(float64(totalReact)/secs, "reactions/s")
		}
		if totalReact > 0 {
			b.ReportMetric(float64(totalBusy)/float64(totalReact), "cyc/reaction")
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, prof) })
}

// TestSimThroughputSpeedup is the acceptance gate of the engine
// rewrite: on a 100-module network whose stimuli cascade through
// machine chains (~66k reactions per run), the dense engine's
// simulation loop must be at least 3x faster than the frozen
// pre-change reference. Task construction — identical work in both
// engines, dominated by BDD synthesis — is measured via an empty run
// and subtracted, so the gate isolates exactly what the rewrite
// changed. Both engines must agree on the reaction count first, so the
// gate cannot pass by doing less work.
func TestSimThroughputSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector: instrumentation skews relative costs")
	}
	bc := makeBenchCase(100, randcfsm.TopoChain, 400, 200)
	opt := sim.Options{Cfg: rtos.DefaultConfig()}
	engine := func(st []sim.Stimulus) int64 {
		res, err := sim.Run(bc.net, st, bc.horizon, opt)
		if err != nil {
			t.Fatal(err)
		}
		return reactions(res)
	}
	reference := func(st []sim.Stimulus) int64 {
		res, err := refsim.Run(bc.net, st, bc.horizon, opt)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, task := range res.System.Tasks {
			total += task.Executions
		}
		return total
	}
	loopTime := func(f func(st []sim.Stimulus) int64) (time.Duration, int64) {
		start := time.Now()
		f(nil)
		build := time.Since(start)
		start = time.Now()
		n := f(append([]sim.Stimulus(nil), bc.stimuli...))
		full := time.Since(start)
		loop := full - build
		if loop < time.Microsecond {
			loop = time.Microsecond
		}
		return loop, n
	}
	// Warm both paths once.
	engine(append([]sim.Stimulus(nil), bc.stimuli...))
	reference(append([]sim.Stimulus(nil), bc.stimuli...))
	// Scheduler noise on a shared runner only ever inflates a timing,
	// so the minimum over trials is the closest observation of each
	// engine's true loop cost; the gate compares best against best.
	best := func(f func(st []sim.Stimulus) int64) (time.Duration, int64) {
		var min time.Duration
		var n int64
		for trial := 0; trial < 5; trial++ {
			d, nn := loopTime(f)
			if trial == 0 || d < min {
				min = d
			}
			n = nn
		}
		return min, n
	}
	de, ne := best(engine)
	dr, nr := best(reference)
	if ne != nr {
		t.Fatalf("engines disagree on work: %d vs %d reactions", ne, nr)
	}
	if ne == 0 {
		t.Fatal("benchmark scenario produced no reactions")
	}
	speedup := float64(dr) / float64(de)
	t.Logf("loop speedup over reference: %.2fx (engine %v, reference %v, %d reactions)",
		speedup, de, dr, ne)
	if speedup < 3.0 {
		t.Fatalf("engine loop is %.2fx the reference, want >= 3x", speedup)
	}
}
