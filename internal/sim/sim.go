// Package sim drives co-simulation of a CFSM network under a
// generated RTOS (the counterpart of the paper's simulation
// environment [30]): environment stimuli are injected on a cycle
// timeline, software CFSMs execute either behaviourally with estimated
// costs or exactly on the virtual CPU, and the resulting event trace
// supports latency and throughput measurements with realistic inputs
// — including seldom-executed paths and the scheduling policy, as
// Section III-C1 describes for dynamic performance calculation.
//
// The execution core is throughput-oriented: reactions run over dense
// slot-indexed buffers resolved once at task-build time and allocate
// nothing in steady state. The previous map-based, event-at-a-time
// engine is frozen verbatim in internal/refsim, and differential tests
// pin this engine to it trace-for-trace.
package sim

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/estimate"
	"polis/internal/profile"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

// Mode selects how software reactions are timed.
type Mode int

// Simulation modes.
const (
	// Behavioral runs reactions with the reference interpreter and
	// charges the estimator's worst-case cycles per reaction.
	Behavioral Mode = iota
	// VMExact assembles each CFSM and executes every reaction on the
	// virtual CPU, charging the exact cycle count.
	VMExact
)

// Stimulus is one environment event.
type Stimulus struct {
	Time   int64
	Signal *cfsm.Signal
	Value  int64
}

// CheckOptions selects the differential runtime checks the simulator
// performs on every reaction; the netfuzz harness turns them all on.
// A violated check surfaces as an error out of Run with the failing
// CFSM's name attached — never a panic.
type CheckOptions struct {
	// VMAgainstReference cross-checks every VMExact reaction against
	// the reference interpreter on the same frozen snapshot: emission
	// multiset, next state and the fired bit must agree.
	VMAgainstReference bool
	// CycleBounds verifies per VMExact reaction that the exact cycle
	// count lies within the object-code analyzer's [Min, Max] path
	// bounds (a sound bracket, since generated routines are acyclic)
	// and does not exceed the estimator's worst case by more than
	// EstimateSlack.
	CycleBounds bool
	// EstimateSlack is the tolerated fractional overshoot of the
	// estimator's MaxCycles; the calibration contract is ±20%, so the
	// default (used when 0) is 0.25.
	EstimateSlack float64
}

// Options configures a simulation run.
type Options struct {
	Cfg      rtos.Config
	Mode     Mode
	Profile  *vm.Profile
	Ordering sgraph.Ordering
	Codegen  codegen.Options
	// Reduce runs the fixed-point s-graph reduction engine on every
	// synthesized task graph before code generation; the differential
	// checks then exercise reduced object code against the reference
	// interpreter.
	Reduce bool
	// Specialize, when non-nil, applies profile-guided hot-path
	// specialization to every task graph (after reduction, before
	// code generation): each module with evidence in the profile gets
	// its TEST outcome edges reordered hottest-first through
	// sgraph.SpecializeChecked, so the equivalence gate runs on every
	// specialized graph. Behavioral runs also report the
	// profile-weighted expected cycles through the estimator.
	Specialize *profile.Profile
	// Probe, when non-nil, observes every delivery and execution in
	// the underlying RTOS model (see rtos.Probe). With Partition it
	// observes all islands and forces them to run serially, since a
	// probe implementation need not be safe for concurrent use.
	Probe rtos.Probe
	// Check enables per-reaction differential checks.
	Check CheckOptions
	// Partition splits the network into clock-independent GALS
	// islands (connected components over shared signals and task
	// chains) and simulates each on its own RTOS instance — i.e. its
	// own CPU, so with more than one island the timing model differs
	// from a single shared processor. Islands run concurrently on up
	// to Workers goroutines; the merged trace is deterministic and
	// identical to a serial island-by-island run.
	Partition bool
	// Workers bounds island concurrency under Partition; 0 means
	// GOMAXPROCS. With one worker the runner degrades to a strictly
	// serial loop with no goroutines.
	Workers int
}

// Result carries the outcome of a run.
type Result struct {
	Trace  []rtos.TraceEvent
	Cycles int64
	// System is the RTOS instance of a single-system run. Partitioned
	// runs with more than one island leave it nil and fill Systems.
	System *rtos.System
	// Systems holds the per-island RTOS instances of a partitioned
	// run, in island order; single-system runs leave it nil.
	Systems []*rtos.System
	// CodeBytes and DataBytes total the software partition (tasks
	// only; add the RTOS size model for full ROM/RAM).
	CodeBytes int64
	DataBytes int64
}

// vmTask wraps one assembled CFSM for exact co-simulation. All
// per-reaction traffic runs over dense slot indices resolved once at
// build time; the Host callbacks and react itself allocate nothing.
type vmTask struct {
	g       *sgraph.SGraph
	prog    *vm.Program
	machine *vm.Machine
	sigs    codegen.SignalMap
	lay     *cfsm.Layout
	entry   string

	// sigOf maps a codegen signal id back to its signal (for
	// emissions); inSlot maps it to the machine's input slot, -1 for
	// pure outputs. stateAddr maps each state slot to the memory
	// address of its "st_" symbol; a missing symbol resolves to
	// address 0, preserving the reference engine's behaviour of
	// reading/writing Mem[0] for untracked variables.
	sigOf     []*cfsm.Signal
	inSlot    []int
	stateAddr []int

	// differential-check state (populated when checks are enabled)
	check  CheckOptions
	bounds vm.PathCycles
	estMax int64

	// per-reaction capture: the frozen snapshot and the reaction
	// buffer currently bound by react, read by the Host callbacks.
	snap   *cfsm.DenseSnapshot
	out    *cfsm.DenseReaction
	cycles int64
}

func (t *vmTask) Present(sig int) bool {
	slot := t.inSlot[sig]
	return slot >= 0 && t.snap.Present[slot]
}

// Value reads a signal's buffered value; absent signals read as zero
// (the dense snapshot zeroes absent slots, and non-input ids map to
// slot -1).
func (t *vmTask) Value(sig int) int64 {
	slot := t.inSlot[sig]
	if slot < 0 {
		return 0
	}
	return t.snap.Values[slot]
}

func (t *vmTask) Emit(sig int) {
	t.out.Emitted = append(t.out.Emitted, cfsm.Emission{Signal: t.sigOf[sig]})
}

func (t *vmTask) EmitValue(sig int, v int64) {
	t.out.Emitted = append(t.out.Emitted, cfsm.Emission{Signal: t.sigOf[sig], Value: v})
}

// react executes one reaction on the VM and records its exact cost. A
// machine fault (bad address, runaway program, unknown service) is
// returned as an error — the RTOS aborts the run with the task name
// attached — rather than panicking the whole process, so adversarial
// networks are a diagnosable failure.
func (t *vmTask) react(snap *cfsm.DenseSnapshot, out *cfsm.DenseReaction) error {
	t.snap, t.out = snap, out
	out.Fired = false
	out.Emitted = out.Emitted[:0]
	for i, addr := range t.stateAddr {
		t.machine.Mem[addr] = snap.State[i]
	}
	cycles, err := t.machine.Run(t.prog, t.entry)
	if err != nil {
		return fmt.Errorf("vm reaction failed: %w", err)
	}
	t.cycles = cycles
	out.NextState = out.NextState[:0]
	for _, addr := range t.stateAddr {
		out.NextState = append(out.NextState, t.machine.Mem[addr])
	}
	// Whether any ASSIGN vertex executed decides event consumption
	// (Section IV-D); the s-graph interpreter is the authority, since
	// the object code has no out-of-band "fired" channel.
	out.Fired = t.g.EvaluateFired(snap)
	if t.check.VMAgainstReference {
		if err := checkReference(t.g.C, snap.Snapshot(), out.Reaction(t.lay)); err != nil {
			return err
		}
	}
	if t.check.CycleBounds {
		if err := t.checkCycles(cycles); err != nil {
			return err
		}
	}
	return nil
}

// checkReference compares a VM reaction against the reference
// interpreter on the same snapshot. Emissions are compared as a sorted
// multiset (like internal/crosstest): object code may reorder
// independent emissions within one reaction.
func checkReference(m *cfsm.CFSM, snap cfsm.Snapshot, got cfsm.Reaction) error {
	want := m.React(snap)
	if got.Fired != want.Fired {
		return fmt.Errorf("vm/reference divergence: fired=%v, reference says %v", got.Fired, want.Fired)
	}
	if a, b := emissionKey(got.Emitted), emissionKey(want.Emitted); a != b {
		return fmt.Errorf("vm/reference divergence: emitted %s, reference %s", a, b)
	}
	for _, sv := range m.States {
		if got.NextState[sv] != want.NextState[sv] {
			return fmt.Errorf("vm/reference divergence: state %s=%d, reference %d",
				sv.Name, got.NextState[sv], want.NextState[sv])
		}
	}
	return nil
}

// emissionKey canonicalises an emission list as a sorted multiset.
func emissionKey(ems []cfsm.Emission) string {
	keys := make([]string, len(ems))
	for i, e := range ems {
		keys[i] = e.Signal.Name + ":" + strconv.FormatInt(e.Value, 10)
	}
	sort.Strings(keys)
	return "[" + strings.Join(keys, " ") + "]"
}

// checkCycles verifies the exact reaction cost against the analyzer's
// path bounds and the estimator's worst case.
func (t *vmTask) checkCycles(cycles int64) error {
	if cycles < t.bounds.Min || cycles > t.bounds.Max {
		return fmt.Errorf("cycle bound violation: exact %d outside analyzer bounds [%d, %d]",
			cycles, t.bounds.Min, t.bounds.Max)
	}
	slack := t.check.EstimateSlack
	if slack == 0 {
		slack = 0.25
	}
	if limit := int64(float64(t.estMax) * (1 + slack)); cycles > limit {
		return fmt.Errorf("cycle bound violation: exact %d exceeds estimator worst case %d by more than %.0f%%",
			cycles, t.estMax, slack*100)
	}
	return nil
}

// BuildVMTask assembles a machine and returns its RTOS task plus its
// memory footprint on the profile.
func BuildVMTask(m *cfsm.CFSM, opt Options) (*rtos.Task, int64, int64, error) {
	r, err := cfsm.BuildReactive(m)
	if err != nil {
		return nil, 0, 0, err
	}
	g, err := sgraph.Build(r, opt.Ordering)
	if err != nil {
		return nil, 0, 0, err
	}
	if opt.Reduce {
		g.Reduce(sgraph.ReduceOptions{})
	}
	if opt.Specialize != nil {
		if sp := opt.Specialize.Module(m.Name).Spec(); sp != nil {
			if _, err := g.SpecializeChecked(sp); err != nil {
				return nil, 0, 0, err
			}
		}
	}
	sigs := codegen.NewSignalMap(m)
	prog, err := codegen.Assemble(g, sigs, opt.Codegen)
	if err != nil {
		return nil, 0, 0, err
	}
	lay := cfsm.NewLayout(m)
	vt := &vmTask{
		g: g, prog: prog, sigs: sigs, lay: lay,
		entry: codegen.EntryLabel(m),
		check: opt.Check,
	}
	maxID := -1
	for _, id := range sigs {
		if id > maxID {
			maxID = id
		}
	}
	vt.sigOf = make([]*cfsm.Signal, maxID+1)
	vt.inSlot = make([]int, maxID+1)
	for i := range vt.inSlot {
		vt.inSlot[i] = -1
	}
	for s, id := range sigs {
		vt.sigOf[id] = s
		vt.inSlot[id] = lay.InSlot(s)
	}
	vt.stateAddr = make([]int, len(lay.States))
	for i, sv := range lay.States {
		vt.stateAddr[i] = prog.Symbols["st_"+sv.Name]
	}
	if opt.Check.CycleBounds {
		vt.bounds, err = vm.AnalyzeCycles(opt.Profile, prog, codegen.EntryLabel(m))
		if err != nil {
			return nil, 0, 0, err
		}
		params, err := estimate.Calibrate(opt.Profile)
		if err != nil {
			return nil, 0, 0, err
		}
		vt.estMax = estimate.EstimateSGraph(g, params, estimate.Options{Codegen: opt.Codegen}).MaxCycles
	}
	vt.machine = vm.NewMachine(opt.Profile, prog.Words, vt)
	codegen.InitStateMemory(g, prog, vt.machine)
	task := rtos.NewDenseTask(m, lay, vt.react, func() int64 { return vt.cycles })
	code := int64(opt.Profile.CodeSize(prog))
	data := int64(opt.Profile.DataSize(prog))
	return task, code, data, nil
}

// Run simulates the network until the given cycle, injecting the
// stimuli at their times.
func Run(n *cfsm.Network, stimuli []Stimulus, until int64, opt Options) (*Result, error) {
	return RunContext(context.Background(), n, stimuli, until, opt)
}

// RunContext is Run with cancellation: the context is checked between
// stimuli and periodically inside the RTOS event loop, so a runaway or
// long simulation stops promptly with the context's error.
func RunContext(ctx context.Context, n *cfsm.Network, stimuli []Stimulus, until int64, opt Options) (*Result, error) {
	if opt.Profile == nil {
		opt.Profile = vm.HC11()
	}
	if opt.Partition {
		return runPartitioned(ctx, n, stimuli, until, opt)
	}
	return runSingle(ctx, n, stimuli, until, opt)
}

// runSingle simulates a network on one RTOS instance.
func runSingle(ctx context.Context, n *cfsm.Network, stimuli []Stimulus, until int64, opt Options) (*Result, error) {
	res := &Result{}
	params, err := estimate.Calibrate(opt.Profile)
	if err != nil {
		return nil, err
	}
	mk := func(m *cfsm.CFSM) (*rtos.Task, error) {
		switch opt.Mode {
		case VMExact:
			t, code, data, err := BuildVMTask(m, opt)
			if err != nil {
				return nil, err
			}
			res.CodeBytes += code
			res.DataBytes += data
			return t, nil
		default:
			r, err := cfsm.BuildReactive(m)
			if err != nil {
				return nil, err
			}
			g, err := sgraph.Build(r, opt.Ordering)
			if err != nil {
				return nil, err
			}
			if opt.Reduce {
				g.Reduce(sgraph.ReduceOptions{})
			}
			estOpts := estimate.Options{Codegen: opt.Codegen}
			if opt.Specialize != nil {
				if sp := opt.Specialize.Module(m.Name).Spec(); sp != nil {
					if _, err := g.SpecializeChecked(sp); err != nil {
						return nil, err
					}
					estOpts.ScenarioProfile = sp
				}
			}
			est := estimate.EstimateSGraph(g, params, estOpts)
			res.CodeBytes += est.CodeBytes
			res.DataBytes += est.DataBytes
			return rtos.NewBehavioralTask(m, func() int64 { return est.MaxCycles }), nil
		}
	}
	sys, err := rtos.NewSystem(n, opt.Cfg, mk)
	if err != nil {
		return nil, err
	}
	sys.Probe = opt.Probe
	sys.Ctx = ctx
	sort.SliceStable(stimuli, func(i, j int) bool { return stimuli[i].Time < stimuli[j].Time })
	for _, st := range stimuli {
		if st.Time > until {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := sys.Advance(st.Time); err != nil {
			return nil, err
		}
		if err := sys.EmitEnv(st.Signal, st.Value); err != nil {
			return nil, err
		}
	}
	if err := sys.Advance(until); err != nil {
		return nil, err
	}
	res.Trace = sys.Trace
	res.Cycles = sys.Now
	res.System = sys
	return res, nil
}

// Latencies returns, for every environment emission of in, the delay
// until the first subsequent non-environment emission of out.
func Latencies(trace []rtos.TraceEvent, in, out *cfsm.Signal) []int64 {
	var lats []int64
	for i, e := range trace {
		if e.Signal != in || e.From != "env" {
			continue
		}
		for _, f := range trace[i:] {
			if f.Signal == out && f.From != "env" && f.From != "poll" && f.Time >= e.Time {
				lats = append(lats, f.Time-e.Time)
				break
			}
		}
	}
	return lats
}

// MaxLatency returns the worst observed latency, or -1 when no pair
// matched.
func MaxLatency(trace []rtos.TraceEvent, in, out *cfsm.Signal) int64 {
	lats := Latencies(trace, in, out)
	if len(lats) == 0 {
		return -1
	}
	max := lats[0]
	for _, l := range lats[1:] {
		if l > max {
			max = l
		}
	}
	return max
}

// CountEmissions tallies non-environment emissions per signal.
func CountEmissions(trace []rtos.TraceEvent, sig *cfsm.Signal) int {
	n := 0
	for _, e := range trace {
		if e.Signal == sig && e.From != "env" && e.From != "poll" {
			n++
		}
	}
	return n
}

// PeriodicStimuli builds a pulse train for a signal.
func PeriodicStimuli(sig *cfsm.Signal, start, period, until int64, value func(i int) int64) []Stimulus {
	var out []Stimulus
	i := 0
	for t := start; t <= until; t += period {
		v := int64(0)
		if value != nil {
			v = value(i)
		}
		out = append(out, Stimulus{Time: t, Signal: sig, Value: v})
		i++
	}
	return out
}

// WriteTraceCSV renders a trace as CSV (time,signal,value,from) for
// offline analysis, mirroring the logging of the paper's simulation
// environment.
func WriteTraceCSV(w io.Writer, trace []rtos.TraceEvent) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "signal", "value", "from"}); err != nil {
		return err
	}
	for _, e := range trace {
		rec := []string{
			strconv.FormatInt(e.Time, 10),
			e.Signal.Name,
			strconv.FormatInt(e.Value, 10),
			e.From,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
