// Package sim drives co-simulation of a CFSM network under a
// generated RTOS (the counterpart of the paper's simulation
// environment [30]): environment stimuli are injected on a cycle
// timeline, software CFSMs execute either behaviourally with estimated
// costs or exactly on the virtual CPU, and the resulting event trace
// supports latency and throughput measurements with realistic inputs
// — including seldom-executed paths and the scheduling policy, as
// Section III-C1 describes for dynamic performance calculation.
package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/estimate"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

// Mode selects how software reactions are timed.
type Mode int

// Simulation modes.
const (
	// Behavioral runs reactions with the reference interpreter and
	// charges the estimator's worst-case cycles per reaction.
	Behavioral Mode = iota
	// VMExact assembles each CFSM and executes every reaction on the
	// virtual CPU, charging the exact cycle count.
	VMExact
)

// Stimulus is one environment event.
type Stimulus struct {
	Time   int64
	Signal *cfsm.Signal
	Value  int64
}

// Options configures a simulation run.
type Options struct {
	Cfg      rtos.Config
	Mode     Mode
	Profile  *vm.Profile
	Ordering sgraph.Ordering
	Codegen  codegen.Options
}

// Result carries the outcome of a run.
type Result struct {
	Trace  []rtos.TraceEvent
	Cycles int64
	System *rtos.System
	// CodeBytes and DataBytes total the software partition (tasks
	// only; add the RTOS size model for full ROM/RAM).
	CodeBytes int64
	DataBytes int64
}

// vmTask wraps one assembled CFSM for exact co-simulation.
type vmTask struct {
	g       *sgraph.SGraph
	prog    *vm.Program
	machine *vm.Machine
	sigs    codegen.SignalMap
	byID    map[int]*cfsm.Signal

	// per-reaction capture
	snap    cfsm.Snapshot
	emitted []cfsm.Emission
	cycles  int64
}

func (t *vmTask) Present(sig int) bool { return t.snap.Present[t.byID[sig]] }
func (t *vmTask) Value(sig int) int64  { return t.snap.Values[t.byID[sig]] }
func (t *vmTask) Emit(sig int) {
	t.emitted = append(t.emitted, cfsm.Emission{Signal: t.byID[sig]})
}
func (t *vmTask) EmitValue(sig int, v int64) {
	t.emitted = append(t.emitted, cfsm.Emission{Signal: t.byID[sig], Value: v})
}

// react executes one reaction on the VM and records its exact cost.
func (t *vmTask) react(snap cfsm.Snapshot) cfsm.Reaction {
	t.snap = snap
	t.emitted = nil
	for _, sv := range t.g.C.States {
		t.machine.Mem[t.prog.Symbols["st_"+sv.Name]] = snap.State[sv]
	}
	cycles, err := t.machine.Run(t.prog, codegen.EntryLabel(t.g.C))
	if err != nil {
		panic(fmt.Sprintf("sim: vm task %s: %v", t.g.C.Name, err))
	}
	t.cycles = cycles
	next := make(map[*cfsm.StateVar]int64, len(snap.State))
	for _, sv := range t.g.C.States {
		next[sv] = t.machine.Mem[t.prog.Symbols["st_"+sv.Name]]
	}
	// Whether any ASSIGN vertex executed decides event consumption
	// (Section IV-D); the s-graph interpreter is the authority, since
	// the object code has no out-of-band "fired" channel.
	fired := t.g.Evaluate(snap).Fired
	return cfsm.Reaction{
		Fired:     fired,
		Emitted:   t.emitted,
		NextState: next,
	}
}

// BuildVMTask assembles a machine and returns its RTOS task plus its
// memory footprint on the profile.
func BuildVMTask(m *cfsm.CFSM, opt Options) (*rtos.Task, int64, int64, error) {
	r, err := cfsm.BuildReactive(m)
	if err != nil {
		return nil, 0, 0, err
	}
	g, err := sgraph.Build(r, opt.Ordering)
	if err != nil {
		return nil, 0, 0, err
	}
	sigs := codegen.NewSignalMap(m)
	prog, err := codegen.Assemble(g, sigs, opt.Codegen)
	if err != nil {
		return nil, 0, 0, err
	}
	vt := &vmTask{
		g: g, prog: prog, sigs: sigs,
		byID: make(map[int]*cfsm.Signal),
	}
	for s, id := range sigs {
		vt.byID[id] = s
	}
	vt.machine = vm.NewMachine(opt.Profile, prog.Words, vt)
	codegen.InitStateMemory(g, prog, vt.machine)
	task := rtos.NewTask(m, vt.react, func(cfsm.Snapshot) int64 { return vt.cycles })
	code := int64(opt.Profile.CodeSize(prog))
	data := int64(opt.Profile.DataSize(prog))
	return task, code, data, nil
}

// Run simulates the network until the given cycle, injecting the
// stimuli at their times.
func Run(n *cfsm.Network, stimuli []Stimulus, until int64, opt Options) (*Result, error) {
	if opt.Profile == nil {
		opt.Profile = vm.HC11()
	}
	res := &Result{}
	params := estimate.Calibrate(opt.Profile)
	mk := func(m *cfsm.CFSM) (*rtos.Task, error) {
		switch opt.Mode {
		case VMExact:
			t, code, data, err := BuildVMTask(m, opt)
			if err != nil {
				return nil, err
			}
			res.CodeBytes += code
			res.DataBytes += data
			return t, nil
		default:
			r, err := cfsm.BuildReactive(m)
			if err != nil {
				return nil, err
			}
			g, err := sgraph.Build(r, opt.Ordering)
			if err != nil {
				return nil, err
			}
			est := estimate.EstimateSGraph(g, params, estimate.Options{Codegen: opt.Codegen})
			res.CodeBytes += est.CodeBytes
			res.DataBytes += est.DataBytes
			mm := m
			return rtos.NewTask(mm, mm.React,
				func(cfsm.Snapshot) int64 { return est.MaxCycles }), nil
		}
	}
	sys, err := rtos.NewSystem(n, opt.Cfg, mk)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(stimuli, func(i, j int) bool { return stimuli[i].Time < stimuli[j].Time })
	for _, st := range stimuli {
		if st.Time > until {
			break
		}
		if err := sys.Advance(st.Time); err != nil {
			return nil, err
		}
		sys.EmitEnv(st.Signal, st.Value)
	}
	if err := sys.Advance(until); err != nil {
		return nil, err
	}
	res.Trace = sys.Trace
	res.Cycles = sys.Now
	res.System = sys
	return res, nil
}

// Latencies returns, for every environment emission of in, the delay
// until the first subsequent non-environment emission of out.
func Latencies(trace []rtos.TraceEvent, in, out *cfsm.Signal) []int64 {
	var lats []int64
	for i, e := range trace {
		if e.Signal != in || e.From != "env" {
			continue
		}
		for _, f := range trace[i:] {
			if f.Signal == out && f.From != "env" && f.From != "poll" && f.Time >= e.Time {
				lats = append(lats, f.Time-e.Time)
				break
			}
		}
	}
	return lats
}

// MaxLatency returns the worst observed latency, or -1 when no pair
// matched.
func MaxLatency(trace []rtos.TraceEvent, in, out *cfsm.Signal) int64 {
	lats := Latencies(trace, in, out)
	if len(lats) == 0 {
		return -1
	}
	max := lats[0]
	for _, l := range lats[1:] {
		if l > max {
			max = l
		}
	}
	return max
}

// CountEmissions tallies non-environment emissions per signal.
func CountEmissions(trace []rtos.TraceEvent, sig *cfsm.Signal) int {
	n := 0
	for _, e := range trace {
		if e.Signal == sig && e.From != "env" && e.From != "poll" {
			n++
		}
	}
	return n
}

// PeriodicStimuli builds a pulse train for a signal.
func PeriodicStimuli(sig *cfsm.Signal, start, period, until int64, value func(i int) int64) []Stimulus {
	var out []Stimulus
	i := 0
	for t := start; t <= until; t += period {
		v := int64(0)
		if value != nil {
			v = value(i)
		}
		out = append(out, Stimulus{Time: t, Signal: sig, Value: v})
		i++
	}
	return out
}

// WriteTraceCSV renders a trace as CSV (time,signal,value,from) for
// offline analysis, mirroring the logging of the paper's simulation
// environment.
func WriteTraceCSV(w io.Writer, trace []rtos.TraceEvent) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "signal", "value", "from"}); err != nil {
		return err
	}
	for _, e := range trace {
		rec := []string{
			strconv.FormatInt(e.Time, 10),
			e.Signal.Name,
			strconv.FormatInt(e.Value, 10),
			e.From,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
