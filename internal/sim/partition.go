package sim

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"polis/internal/cfsm"
	"polis/internal/rtos"
)

// This file implements parallel GALS partition execution: a network's
// clock-independent islands — connected components over shared signals
// and task chains — exchange no events, so each can be simulated on its
// own RTOS instance, concurrently, and the per-island traces merged
// afterwards into one deterministic timeline. Each island models its
// own CPU, so for networks with more than one island the timing differs
// from a single shared processor; within an island the semantics are
// exactly those of runSingle.

// Partitions returns the clock-independent islands of a network:
// machines connected through any shared signal (as reader or writer)
// or through membership in one of cfg's task chains are grouped
// together. Islands and their machines preserve network order, so the
// decomposition is deterministic.
func Partitions(n *cfsm.Network, cfg rtos.Config) [][]*cfsm.CFSM {
	idx := make(map[*cfsm.CFSM]int, len(n.Machines))
	for i, m := range n.Machines {
		idx[m] = i
	}
	parent := make([]int, len(n.Machines))
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	touches := func(m *cfsm.CFSM, s *cfsm.Signal) bool {
		for _, in := range m.Inputs {
			if in == s {
				return true
			}
		}
		for _, out := range m.Outputs {
			if out == s {
				return true
			}
		}
		return false
	}
	for _, s := range n.Signals {
		first := -1
		for i, m := range n.Machines {
			if !touches(m, s) {
				continue
			}
			if first < 0 {
				first = i
			} else {
				union(first, i)
			}
		}
	}
	for _, chain := range cfg.Chains {
		first := -1
		for _, m := range chain {
			i, ok := idx[m]
			if !ok {
				continue
			}
			if first < 0 {
				first = i
			} else {
				union(first, i)
			}
		}
	}
	var roots []int
	groups := make(map[int][]*cfsm.CFSM)
	for i, m := range n.Machines {
		r := find(i)
		if _, seen := groups[r]; !seen {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], m)
	}
	out := make([][]*cfsm.CFSM, 0, len(roots))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// runPartitioned simulates each island on its own RTOS instance, up to
// opt.Workers islands concurrently, and merges the traces by time with
// island order breaking ties — the same result a serial loop over the
// islands produces.
func runPartitioned(ctx context.Context, n *cfsm.Network, stimuli []Stimulus, until int64, opt Options) (*Result, error) {
	parts := Partitions(n, opt.Cfg)
	if len(parts) <= 1 {
		res, err := runSingle(ctx, n, stimuli, until, opt)
		if err != nil {
			return nil, err
		}
		res.Systems = []*rtos.System{res.System}
		return res, nil
	}

	subs := make([]*cfsm.Network, len(parts))
	islandOf := make(map[*cfsm.Signal]int, len(n.Signals))
	for i, ms := range parts {
		subs[i] = n.Subnet(fmt.Sprintf("%s.p%d", n.Name, i), ms)
		for _, s := range subs[i].Signals {
			islandOf[s] = i
		}
	}

	// Route each stimulus to the island its signal is attached to;
	// signals no machine touches go to island 0, which records the
	// environment event in its trace (and drops it, like runSingle).
	// The single sort here replaces the per-island sort runSingle
	// would do; routing preserves relative order, so the outcome is
	// identical.
	sorted := append([]Stimulus(nil), stimuli...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	perIsland := make([][]Stimulus, len(parts))
	for _, st := range sorted {
		i, ok := islandOf[st.Signal]
		if !ok {
			i = 0
		}
		perIsland[i] = append(perIsland[i], st)
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opt.Probe != nil {
		// A probe sees every island; probe implementations are not
		// required to be safe for concurrent use.
		workers = 1
	}
	if workers > len(parts) {
		workers = len(parts)
	}

	results := make([]*Result, len(parts))
	errs := make([]error, len(parts))
	runIsland := func(i int) {
		iopt := opt
		iopt.Partition = false
		results[i], errs[i] = runSingle(ctx, subs[i], perIsland[i], until, iopt)
	}
	if workers == 1 {
		for i := range parts {
			runIsland(i)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range parts {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runIsland(i)
			}(i)
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("partition %d (%s): %w", i, subs[i].Name, err)
		}
	}

	out := &Result{Systems: make([]*rtos.System, len(parts))}
	traces := make([][]rtos.TraceEvent, len(parts))
	for i, r := range results {
		out.Systems[i] = r.System
		out.CodeBytes += r.CodeBytes
		out.DataBytes += r.DataBytes
		if r.Cycles > out.Cycles {
			out.Cycles = r.Cycles
		}
		traces[i] = r.Trace
	}
	out.Trace = mergeTraces(traces)
	return out, nil
}

// mergeTraces interleaves per-island traces into one timeline with a
// k-way heap merge: O(events × log islands) instead of the per-event
// linear scan over all islands it replaces. Each input is sorted by
// time already; ties across islands resolve in island order (the heap
// key is (time, island index)), so the merge is deterministic
// regardless of how many workers produced the inputs and byte-for-byte
// identical to the old scan's first-island-wins tie-break.
func mergeTraces(traces [][]rtos.TraceEvent) []rtos.TraceEvent {
	total := 0
	for _, t := range traces {
		total += len(t)
	}
	out := make([]rtos.TraceEvent, 0, total)
	pos := make([]int, len(traces))
	// heap holds one island index per non-exhausted trace, ordered by
	// the island's next event time, island index breaking ties.
	heap := make([]int, 0, len(traces))
	less := func(a, b int) bool {
		ta, tb := traces[a][pos[a]].Time, traces[b][pos[b]].Time
		if ta != tb {
			return ta < tb
		}
		return a < b
	}
	up := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && less(heap[l], heap[small]) {
				small = l
			}
			if r < len(heap) && less(heap[r], heap[small]) {
				small = r
			}
			if small == i {
				return
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	for i, t := range traces {
		if len(t) > 0 {
			heap = append(heap, i)
			up(len(heap) - 1)
		}
	}
	for len(heap) > 0 {
		i := heap[0]
		out = append(out, traces[i][pos[i]])
		pos[i]++
		if pos[i] < len(traces[i]) {
			down(0)
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
			if len(heap) > 0 {
				down(0)
			}
		}
	}
	return out
}
