package refsim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/estimate"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/sim"
	"polis/internal/vm"
)

// Result carries the outcome of a reference run. It mirrors sim.Result
// but exposes the reference System type.
type Result struct {
	Trace  []rtos.TraceEvent
	Cycles int64
	System *System
	// CodeBytes and DataBytes total the software partition.
	CodeBytes int64
	DataBytes int64
}

// vmTask wraps one assembled CFSM for exact co-simulation, exactly as
// the pre-change sim package did: fresh map snapshots per reaction.
type vmTask struct {
	g       *sgraph.SGraph
	prog    *vm.Program
	machine *vm.Machine
	sigs    codegen.SignalMap
	byID    map[int]*cfsm.Signal

	check  sim.CheckOptions
	bounds vm.PathCycles
	estMax int64

	snap    cfsm.Snapshot
	emitted []cfsm.Emission
	cycles  int64
}

func (t *vmTask) Present(sig int) bool { return t.snap.Present[t.byID[sig]] }
func (t *vmTask) Value(sig int) int64  { return t.snap.Values[t.byID[sig]] }
func (t *vmTask) Emit(sig int) {
	t.emitted = append(t.emitted, cfsm.Emission{Signal: t.byID[sig]})
}
func (t *vmTask) EmitValue(sig int, v int64) {
	t.emitted = append(t.emitted, cfsm.Emission{Signal: t.byID[sig], Value: v})
}

func (t *vmTask) react(snap cfsm.Snapshot) (cfsm.Reaction, error) {
	t.snap = snap
	t.emitted = nil
	for _, sv := range t.g.C.States {
		t.machine.Mem[t.prog.Symbols["st_"+sv.Name]] = snap.State[sv]
	}
	cycles, err := t.machine.Run(t.prog, codegen.EntryLabel(t.g.C))
	if err != nil {
		return cfsm.Reaction{}, fmt.Errorf("vm reaction failed: %w", err)
	}
	t.cycles = cycles
	next := make(map[*cfsm.StateVar]int64, len(snap.State))
	for _, sv := range t.g.C.States {
		next[sv] = t.machine.Mem[t.prog.Symbols["st_"+sv.Name]]
	}
	fired := t.g.Evaluate(snap).Fired
	r := cfsm.Reaction{
		Fired:     fired,
		Emitted:   t.emitted,
		NextState: next,
	}
	if t.check.VMAgainstReference {
		if err := checkReference(t.g.C, snap, r); err != nil {
			return cfsm.Reaction{}, err
		}
	}
	if t.check.CycleBounds {
		if err := t.checkCycles(cycles); err != nil {
			return cfsm.Reaction{}, err
		}
	}
	return r, nil
}

func checkReference(m *cfsm.CFSM, snap cfsm.Snapshot, got cfsm.Reaction) error {
	want := m.React(snap)
	if got.Fired != want.Fired {
		return fmt.Errorf("vm/reference divergence: fired=%v, reference says %v", got.Fired, want.Fired)
	}
	if a, b := emissionKey(got.Emitted), emissionKey(want.Emitted); a != b {
		return fmt.Errorf("vm/reference divergence: emitted %s, reference %s", a, b)
	}
	for _, sv := range m.States {
		if got.NextState[sv] != want.NextState[sv] {
			return fmt.Errorf("vm/reference divergence: state %s=%d, reference %d",
				sv.Name, got.NextState[sv], want.NextState[sv])
		}
	}
	return nil
}

func emissionKey(ems []cfsm.Emission) string {
	keys := make([]string, len(ems))
	for i, e := range ems {
		keys[i] = e.Signal.Name + ":" + strconv.FormatInt(e.Value, 10)
	}
	sort.Strings(keys)
	return "[" + strings.Join(keys, " ") + "]"
}

func (t *vmTask) checkCycles(cycles int64) error {
	if cycles < t.bounds.Min || cycles > t.bounds.Max {
		return fmt.Errorf("cycle bound violation: exact %d outside analyzer bounds [%d, %d]",
			cycles, t.bounds.Min, t.bounds.Max)
	}
	slack := t.check.EstimateSlack
	if slack == 0 {
		slack = 0.25
	}
	if limit := int64(float64(t.estMax) * (1 + slack)); cycles > limit {
		return fmt.Errorf("cycle bound violation: exact %d exceeds estimator worst case %d by more than %.0f%%",
			cycles, t.estMax, slack*100)
	}
	return nil
}

// buildVMTask assembles a machine exactly as the pre-change
// sim.BuildVMTask did.
func buildVMTask(m *cfsm.CFSM, opt sim.Options) (*Task, int64, int64, error) {
	r, err := cfsm.BuildReactive(m)
	if err != nil {
		return nil, 0, 0, err
	}
	g, err := sgraph.Build(r, opt.Ordering)
	if err != nil {
		return nil, 0, 0, err
	}
	if opt.Reduce {
		g.Reduce(sgraph.ReduceOptions{})
	}
	sigs := codegen.NewSignalMap(m)
	prog, err := codegen.Assemble(g, sigs, opt.Codegen)
	if err != nil {
		return nil, 0, 0, err
	}
	vt := &vmTask{
		g: g, prog: prog, sigs: sigs,
		byID:  make(map[int]*cfsm.Signal),
		check: opt.Check,
	}
	for s, id := range sigs {
		vt.byID[id] = s
	}
	if opt.Check.CycleBounds {
		vt.bounds, err = vm.AnalyzeCycles(opt.Profile, prog, codegen.EntryLabel(m))
		if err != nil {
			return nil, 0, 0, err
		}
		params, err := estimate.Calibrate(opt.Profile)
		if err != nil {
			return nil, 0, 0, err
		}
		vt.estMax = estimate.EstimateSGraph(g, params, estimate.Options{Codegen: opt.Codegen}).MaxCycles
	}
	vt.machine = vm.NewMachine(opt.Profile, prog.Words, vt)
	codegen.InitStateMemory(g, prog, vt.machine)
	task := NewTask(m, vt.react, func(cfsm.Snapshot) int64 { return vt.cycles })
	code := int64(opt.Profile.CodeSize(prog))
	data := int64(opt.Profile.DataSize(prog))
	return task, code, data, nil
}

// Run simulates the network until the given cycle with the pre-change
// engine, injecting the stimuli at their times. opt.Probe is ignored
// (the reference engine carries no probe hooks); everything else is
// honoured exactly as the pre-change sim.Run did.
func Run(n *cfsm.Network, stimuli []sim.Stimulus, until int64, opt sim.Options) (*Result, error) {
	if opt.Profile == nil {
		opt.Profile = vm.HC11()
	}
	res := &Result{}
	params, err := estimate.Calibrate(opt.Profile)
	if err != nil {
		return nil, err
	}
	mk := func(m *cfsm.CFSM) (*Task, error) {
		switch opt.Mode {
		case sim.VMExact:
			t, code, data, err := buildVMTask(m, opt)
			if err != nil {
				return nil, err
			}
			res.CodeBytes += code
			res.DataBytes += data
			return t, nil
		default:
			r, err := cfsm.BuildReactive(m)
			if err != nil {
				return nil, err
			}
			g, err := sgraph.Build(r, opt.Ordering)
			if err != nil {
				return nil, err
			}
			if opt.Reduce {
				g.Reduce(sgraph.ReduceOptions{})
			}
			est := estimate.EstimateSGraph(g, params, estimate.Options{Codegen: opt.Codegen})
			res.CodeBytes += est.CodeBytes
			res.DataBytes += est.DataBytes
			mm := m
			return NewTask(mm, Infallible(mm.React),
				func(cfsm.Snapshot) int64 { return est.MaxCycles }), nil
		}
	}
	sys, err := NewSystem(n, opt.Cfg, mk)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(stimuli, func(i, j int) bool { return stimuli[i].Time < stimuli[j].Time })
	for _, st := range stimuli {
		if st.Time > until {
			break
		}
		if err := sys.Advance(st.Time); err != nil {
			return nil, err
		}
		if err := sys.EmitEnv(st.Signal, st.Value); err != nil {
			return nil, err
		}
	}
	if err := sys.Advance(until); err != nil {
		return nil, err
	}
	res.Trace = sys.Trace
	res.Cycles = sys.Now
	res.System = sys
	return res, nil
}
