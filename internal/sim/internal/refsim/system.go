// Package refsim is the verbatim pre-change reference simulator: the
// map-based, event-at-a-time co-simulation engine (rtos.Task,
// rtos.System and sim.Run as they stood before the throughput rewrite)
// frozen for lock-step differential testing. The rewritten engine in
// internal/sim and internal/rtos must reproduce this implementation's
// traces, final states, Lost/PollDropped accounting and cycle counts
// exactly; any divergence is a bug in the rewrite, never in this copy.
// Do not optimize or "fix" this package — its value is that it does
// not change. (The only deliberate deviation: the Probe hooks are
// stripped, since probes observe rather than alter semantics.)
package refsim

import (
	"fmt"
	"sort"

	"polis/internal/cfsm"
	"polis/internal/rtos"
)

// running is one in-flight software execution.
type running struct {
	task     *Task
	reaction cfsm.Reaction
	end      int64
	cost     int64 // reaction cycles charged (without scheduler overhead)
	inISR    bool
}

// hwRun is one in-flight hardware reaction.
type hwRun struct {
	task     *Task
	reaction cfsm.Reaction
	end      int64
}

// Task is the pre-change runtime record of one software CFSM: private
// input flags and value buffers held in maps, the frozen snapshot
// while it executes, and the events remembered for the next execution.
type Task struct {
	M        *cfsm.CFSM
	Priority int

	flags  map[*cfsm.Signal]bool
	values map[*cfsm.Signal]int64

	pendFlags  map[*cfsm.Signal]bool
	pendValues map[*cfsm.Signal]int64

	running   bool
	enabled   bool
	remaining int64

	react func(snap cfsm.Snapshot) (cfsm.Reaction, error)
	cost  func(snap cfsm.Snapshot) int64

	mutant rtos.Mutant

	state  map[*cfsm.StateVar]int64
	frozen cfsm.Snapshot

	// Stats
	Executions int64
	Fired      int64
	Lost       int64
}

// Enabled reports whether the task must be scheduled.
func (t *Task) Enabled() bool {
	return t.enabled && !t.running
}

// post delivers an event to the task's buffers, honouring the freeze
// window and counting one-place buffer overwrites.
func (t *Task) post(s *cfsm.Signal, v int64) {
	if t.running {
		if t.pendFlags[s] && t.mutant != rtos.MutantLostUndercount {
			t.Lost++
		}
		if t.pendFlags[s] && t.mutant == rtos.MutantStaleOverwrite {
			return // flag already set; stale value kept
		}
		t.pendFlags[s] = true
		t.pendValues[s] = v
		return
	}
	if t.flags[s] {
		if t.mutant != rtos.MutantLostUndercount {
			t.Lost++
		}
		if t.mutant == rtos.MutantStaleOverwrite {
			t.enabled = true
			return // flag already set; stale value kept
		}
	}
	t.flags[s] = true
	t.values[s] = v
	t.enabled = true
}

// begin freezes the input snapshot and marks the task running.
func (t *Task) begin() cfsm.Snapshot {
	snap := cfsm.Snapshot{
		Present: make(map[*cfsm.Signal]bool, len(t.flags)),
		Values:  make(map[*cfsm.Signal]int64, len(t.values)),
		State:   t.state,
	}
	for s, p := range t.flags {
		if p {
			snap.Present[s] = true
			snap.Values[s] = t.values[s]
		}
	}
	t.running = true
	t.enabled = false
	t.frozen = snap
	return snap
}

// finish completes an execution: consumed flags are cleared only when
// a transition fired, pending events become visible, and the next
// state is committed.
func (t *Task) finish(r cfsm.Reaction) {
	t.Executions++
	if r.Fired {
		t.Fired++
		for s := range t.frozen.Present {
			t.flags[s] = false
		}
		t.state = r.NextState
	} else if t.mutant == rtos.MutantConsumeUnfired {
		for s := range t.frozen.Present {
			t.flags[s] = false
		}
	}
	for s, p := range t.pendFlags {
		if p {
			if t.flags[s] && t.mutant != rtos.MutantLostUndercount {
				t.Lost++
			}
			if t.flags[s] && t.mutant == rtos.MutantStaleOverwrite {
				t.enabled = true
			} else {
				t.flags[s] = true
				t.values[s] = t.pendValues[s]
				t.enabled = true
			}
		}
		delete(t.pendFlags, s)
		delete(t.pendValues, s)
	}
	t.running = false
}

// Infallible adapts a pure reaction function to the error-returning
// callback NewTask expects.
func Infallible(f func(cfsm.Snapshot) cfsm.Reaction) func(cfsm.Snapshot) (cfsm.Reaction, error) {
	return func(snap cfsm.Snapshot) (cfsm.Reaction, error) { return f(snap), nil }
}

// NewTask builds the runtime record for a software CFSM.
func NewTask(m *cfsm.CFSM, react func(cfsm.Snapshot) (cfsm.Reaction, error),
	cost func(cfsm.Snapshot) int64) *Task {
	st := make(map[*cfsm.StateVar]int64, len(m.States))
	for _, sv := range m.States {
		st[sv] = sv.Init
	}
	return &Task{
		M:          m,
		flags:      make(map[*cfsm.Signal]bool),
		values:     make(map[*cfsm.Signal]int64),
		pendFlags:  make(map[*cfsm.Signal]bool),
		pendValues: make(map[*cfsm.Signal]int64),
		react:      react,
		cost:       cost,
		state:      st,
	}
}

// State exposes the task's committed state.
func (t *Task) State(sv *cfsm.StateVar) int64 { return t.state[sv] }

// System is the pre-change executable cycle-level model of one
// generated RTOS instance plus the CFSM network it serves.
type System struct {
	N   *cfsm.Network
	Cfg rtos.Config

	Tasks   []*Task
	taskOf  map[*cfsm.CFSM]*Task
	hwOf    map[*cfsm.CFSM]*Task
	hwTasks []*Task
	// chainNext maps a task to its chain successor.
	chainNext map[*Task]*Task

	Now   int64
	Trace []rtos.TraceEvent

	current *running
	stack   []*running
	hwRuns  []*hwRun
	freeAt  int64

	pollPort   map[*cfsm.Signal]bool
	pollValue  map[*cfsm.Signal]int64
	nextPoll   int64
	hasPolling bool

	rr int

	// Stats
	ScheduleCalls int64
	Interrupts    int64
	Polls         int64
	BusyCycles    int64
	PollDropped   int64
	idleSince     int64
}

// NewSystem builds the runtime.
func NewSystem(n *cfsm.Network, cfg rtos.Config,
	makeTask func(m *cfsm.CFSM) (*Task, error)) (*System, error) {
	if err := cfg.Validate(n); err != nil {
		return nil, err
	}
	s := &System{
		N:         n,
		Cfg:       cfg,
		taskOf:    make(map[*cfsm.CFSM]*Task),
		hwOf:      make(map[*cfsm.CFSM]*Task),
		pollPort:  make(map[*cfsm.Signal]bool),
		pollValue: make(map[*cfsm.Signal]int64),
	}
	for _, m := range n.Machines {
		if cfg.HW[m] {
			mm := m
			t := NewTask(m, Infallible(mm.React), func(cfsm.Snapshot) int64 { return cfg.HWDelay })
			t.mutant = cfg.Mutant
			s.hwOf[m] = t
			s.hwTasks = append(s.hwTasks, t)
			continue
		}
		t, err := makeTask(m)
		if err != nil {
			return nil, err
		}
		t.Priority = cfg.Priority[m]
		t.mutant = cfg.Mutant
		s.taskOf[m] = t
		s.Tasks = append(s.Tasks, t)
	}
	for sig, d := range cfg.Deliver {
		if d == rtos.Polling {
			_ = sig
			s.hasPolling = true
		}
	}
	s.chainNext = make(map[*Task]*Task)
	for _, chain := range cfg.Chains {
		for i := 0; i+1 < len(chain); i++ {
			a := s.taskOf[chain[i]]
			b := s.taskOf[chain[i+1]]
			if a != nil && b != nil {
				s.chainNext[a] = b
			}
		}
	}
	s.nextPoll = cfg.PollPeriod
	return s, nil
}

// TaskFor returns the runtime task of a software machine.
func (s *System) TaskFor(m *cfsm.CFSM) *Task { return s.taskOf[m] }

func (s *System) delivery(sig *cfsm.Signal) rtos.Delivery {
	if d, ok := s.Cfg.Deliver[sig]; ok {
		return d
	}
	return rtos.Interrupt
}

// EmitEnv injects an environment event at the current time.
func (s *System) EmitEnv(sig *cfsm.Signal, val int64) error {
	s.Trace = append(s.Trace, rtos.TraceEvent{Time: s.Now, Signal: sig, Value: val, From: "env"})
	return s.routeFromHardware(sig, val, true)
}

func (s *System) routeFromHardware(sig *cfsm.Signal, val int64, env bool) error {
	interrupted := false
	for _, m := range s.N.Readers(sig) {
		if hw, ok := s.hwOf[m]; ok {
			hw.post(sig, val)
			if err := s.startHW(); err != nil {
				return err
			}
			continue
		}
		switch s.delivery(sig) {
		case rtos.Polling:
			if s.pollPort[sig] {
				// One-place port: the undelivered event is lost.
				s.PollDropped++
			}
			s.pollPort[sig] = true
			s.pollValue[sig] = val
		case rtos.Interrupt:
			if !interrupted {
				interrupted = true
				s.Interrupts++
				s.stealCPU(s.Cfg.ISROverhead)
			}
			if err := s.postToTask(s.taskOf[m], sig, val, s.Cfg.InISR[sig], env); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *System) emitFromSW(from *Task, sig *cfsm.Signal, val int64) error {
	s.Trace = append(s.Trace, rtos.TraceEvent{Time: s.Now, Signal: sig, Value: val, From: from.M.Name})
	readers := s.N.Readers(sig)
	extra := len(readers) - 1
	if extra > 0 {
		s.stealCPU(int64(extra) * s.Cfg.EmitOverhead)
	}
	for _, m := range readers {
		if hw, ok := s.hwOf[m]; ok {
			hw.post(sig, val)
			if err := s.startHW(); err != nil {
				return err
			}
			continue
		}
		if err := s.postToTask(s.taskOf[m], sig, val, false, false); err != nil {
			return err
		}
	}
	return nil
}

func (s *System) emitFromHW(from *Task, sig *cfsm.Signal, val int64) error {
	s.Trace = append(s.Trace, rtos.TraceEvent{Time: s.Now, Signal: sig, Value: val, From: from.M.Name})
	return s.routeFromHardware(sig, val, false)
}

func taskError(t *Task, err error) error {
	return fmt.Errorf("rtos: task %s: %w", t.M.Name, err)
}

func (s *System) beginTask(t *Task) (cfsm.Reaction, int64, error) {
	snap := t.begin()
	r, err := t.react(snap)
	if err != nil {
		return cfsm.Reaction{}, 0, taskError(t, err)
	}
	return r, t.cost(snap), nil
}

func (s *System) finishTask(t *Task, r cfsm.Reaction, cycles int64) {
	t.finish(r)
}

func (s *System) postToTask(t *Task, sig *cfsm.Signal, val int64, inISR, env bool) error {
	if t == nil {
		return nil
	}
	t.post(sig, val)
	if inISR && !t.running {
		r, d, err := s.beginTask(t)
		if err != nil {
			return err
		}
		s.preemptCurrent()
		s.current = &running{task: t, reaction: r, end: s.Now + d, cost: d, inISR: true}
		return nil
	}
	if s.Cfg.Preemptive && s.current != nil && !s.current.inISR &&
		t.Priority > s.current.task.Priority && t.Enabled() {
		s.preemptCurrent()
	}
	return nil
}

func (s *System) preemptCurrent() {
	if s.current == nil {
		return
	}
	cur := s.current
	cur.end -= s.Now
	s.stack = append(s.stack, cur)
	s.current = nil
}

func (s *System) stealCPU(cycles int64) {
	if cycles <= 0 {
		return
	}
	s.BusyCycles += cycles
	if s.current != nil {
		s.current.end += cycles
		return
	}
	if s.freeAt < s.Now {
		s.freeAt = s.Now
	}
	s.freeAt += cycles
}

func (s *System) startHW() error {
	for _, hw := range s.hwTasks {
		if !hw.running && hw.Enabled() {
			r, _, err := s.beginTask(hw)
			if err != nil {
				return err
			}
			s.hwRuns = append(s.hwRuns, &hwRun{task: hw, reaction: r, end: s.Now + s.Cfg.HWDelay})
		}
	}
	return nil
}

func (s *System) pickTask() *Task {
	n := len(s.Tasks)
	if n == 0 {
		return nil
	}
	switch s.Cfg.Policy {
	case rtos.RoundRobin:
		for i := 0; i < n; i++ {
			t := s.Tasks[(s.rr+i)%n]
			if t.Enabled() {
				s.rr = (s.rr + i + 1) % n
				return t
			}
		}
	case rtos.StaticPriority:
		var best *Task
		for _, t := range s.Tasks {
			if !t.Enabled() {
				continue
			}
			if best == nil || t.Priority > best.Priority {
				best = t
			}
		}
		return best
	}
	return nil
}

func (s *System) resume() {
	if len(s.stack) == 0 {
		return
	}
	cur := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	cur.end += s.Now
	s.current = cur
}

// Advance runs the system until the given absolute time (in cycles).
func (s *System) Advance(to int64) error {
	if to < s.Now {
		return fmt.Errorf("rtos: time going backwards (%d < %d)", to, s.Now)
	}
	for {
		if s.current == nil && s.Now >= s.freeAt {
			cand := s.pickTask()
			if len(s.stack) > 0 {
				top := s.stack[len(s.stack)-1]
				if cand == nil || !s.Cfg.Preemptive || cand.Priority <= top.task.Priority {
					s.resume()
					cand = nil
				}
			}
			if cand != nil {
				s.ScheduleCalls++
				r, d, err := s.beginTask(cand)
				if err != nil {
					return err
				}
				s.BusyCycles += s.Cfg.ScheduleOverhead + d
				s.current = &running{task: cand, reaction: r, end: s.Now + s.Cfg.ScheduleOverhead + d, cost: d}
			}
		}

		next := to
		kind := 0 // 0 none, 1 task done, 2 hw done, 3 poll, 4 cpu free
		if s.current != nil && s.current.end <= next {
			next = s.current.end
			kind = 1
		}
		if s.current == nil && s.freeAt > s.Now && s.workPending() && s.freeAt <= next {
			next = s.freeAt
			kind = 4
		}
		for _, h := range s.hwRuns {
			if h.end <= next {
				next = h.end
				kind = 2
			}
		}
		if s.hasPolling && s.nextPoll <= next {
			next = s.nextPoll
			kind = 3
		}
		if kind == 0 {
			s.Now = to
			return nil
		}
		s.Now = next
		switch kind {
		case 4:
			// CPU released by ISR/poll bookkeeping; loop to dispatch.
		case 1:
			cur := s.current
			s.current = nil
			s.finishTask(cur.task, cur.reaction, cur.cost)
			for _, em := range cur.reaction.Emitted {
				if err := s.emitFromSW(cur.task, em.Signal, em.Value); err != nil {
					return err
				}
			}
			if next := s.chainNext[cur.task]; next != nil && next.Enabled() && s.current == nil {
				r, d, err := s.beginTask(next)
				if err != nil {
					return err
				}
				s.BusyCycles += d
				s.current = &running{task: next, reaction: r, end: s.Now + d, cost: d}
			}
		case 2:
			var done []*hwRun
			var rest []*hwRun
			for _, h := range s.hwRuns {
				if h.end <= s.Now {
					done = append(done, h)
				} else {
					rest = append(rest, h)
				}
			}
			s.hwRuns = rest
			sort.SliceStable(done, func(i, j int) bool { return done[i].end < done[j].end })
			for _, h := range done {
				s.finishTask(h.task, h.reaction, s.Cfg.HWDelay)
				for _, em := range h.reaction.Emitted {
					if err := s.emitFromHW(h.task, em.Signal, em.Value); err != nil {
						return err
					}
				}
			}
			if err := s.startHW(); err != nil {
				return err
			}
		case 3:
			s.Polls++
			s.nextPoll += s.Cfg.PollPeriod
			s.stealCPU(s.Cfg.PollOverhead)
			for _, sig := range s.N.Signals {
				if !s.pollPort[sig] {
					continue
				}
				val := s.pollValue[sig]
				s.pollPort[sig] = false
				for _, m := range s.N.Readers(sig) {
					if t, ok := s.taskOf[m]; ok && s.delivery(sig) == rtos.Polling {
						s.Trace = append(s.Trace, rtos.TraceEvent{Time: s.Now, Signal: sig, Value: val, From: "poll"})
						if err := s.postToTask(t, sig, val, false, false); err != nil {
							return err
						}
					}
				}
			}
		}
	}
}

func (s *System) workPending() bool {
	if len(s.stack) > 0 {
		return true
	}
	for _, t := range s.Tasks {
		if t.Enabled() {
			return true
		}
	}
	return false
}

// Utilization returns the fraction of elapsed cycles the CPU was busy.
func (s *System) Utilization() float64 {
	if s.Now == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.Now)
}
