package sim_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"polis/internal/cfsm"
	"polis/internal/rtos"
	"polis/internal/sim"
	"polis/internal/vm"
)

// relayPair adds an env->A->B->out relay chain to a network with the
// given name prefix and returns the input and output signals.
func relayPair(n *cfsm.Network, prefix string) (*cfsm.Signal, *cfsm.Signal) {
	in := n.NewSignal(prefix+"_in", true)
	mid := n.NewSignal(prefix+"_mid", true)
	out := n.NewSignal(prefix+"_out", true)
	a := cfsm.New(prefix + "A")
	a.AttachInput(in)
	a.AttachOutput(mid)
	a.AddTransition([]cfsm.Cond{cfsm.On(a.Present(in), 1)}, a.Emit(mid))
	b := cfsm.New(prefix + "B")
	b.AttachInput(mid)
	b.AttachOutput(out)
	b.AddTransition([]cfsm.Cond{cfsm.On(b.Present(mid), 1)}, b.Emit(out))
	if err := n.Add(a); err != nil {
		panic(err)
	}
	if err := n.Add(b); err != nil {
		panic(err)
	}
	return in, out
}

// steadyStateAllocs drives a warmed-up system through repeated
// stimulus/advance rounds and returns the allocations per round.
func steadyStateAllocs(t *testing.T, sys *rtos.System, in *cfsm.Signal) float64 {
	t.Helper()
	var tnow int64
	round := func() {
		if err := sys.EmitEnv(in, 1); err != nil {
			t.Fatal(err)
		}
		tnow += 5000
		if err := sys.Advance(tnow); err != nil {
			t.Fatal(err)
		}
		sys.ResetTrace()
	}
	for i := 0; i < 50; i++ { // warm trace, stack and queue capacity
		round()
	}
	return testing.AllocsPerRun(200, round)
}

// TestReactionZeroAllocBehavioral pins the hot loop: once buffers are
// warm, a full stimulus->ISR->schedule->react->emit->react round must
// not allocate at all in behavioral mode.
func TestReactionZeroAllocBehavioral(t *testing.T) {
	n := cfsm.NewNetwork("zeroalloc")
	in, _ := relayPair(n, "z")
	sys, err := rtos.NewSystem(n, rtos.DefaultConfig(), func(m *cfsm.CFSM) (*rtos.Task, error) {
		return rtos.NewBehavioralTask(m, func() int64 { return 100 }), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs := steadyStateAllocs(t, sys, in); allocs != 0 {
		t.Fatalf("behavioral steady-state round allocates %.1f times, want 0", allocs)
	}
}

// TestReactionZeroAllocVM pins the same property with every reaction
// executed on the virtual CPU.
func TestReactionZeroAllocVM(t *testing.T) {
	n := cfsm.NewNetwork("zeroallocvm")
	in, _ := relayPair(n, "z")
	opt := sim.Options{Profile: vm.HC11()}
	sys, err := rtos.NewSystem(n, rtos.DefaultConfig(), func(m *cfsm.CFSM) (*rtos.Task, error) {
		task, _, _, err := sim.BuildVMTask(m, opt)
		return task, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs := steadyStateAllocs(t, sys, in); allocs != 0 {
		t.Fatalf("VM steady-state round allocates %.1f times, want 0", allocs)
	}
}

// TestRunContextPreCancelled verifies an already-cancelled context
// stops the run before any work.
func TestRunContextPreCancelled(t *testing.T) {
	n := cfsm.NewNetwork("cancelled")
	in, _ := relayPair(n, "c")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stim := []sim.Stimulus{{Time: 10, Signal: in}}
	_, err := sim.RunContext(ctx, n, stim, 100000, sim.Options{Cfg: rtos.DefaultConfig()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextMidRunCancellation cancels while the RTOS event loop is
// grinding through an astronomically long polled timeline; without the
// in-loop context check the run would take hours.
func TestRunContextMidRunCancellation(t *testing.T) {
	n := cfsm.NewNetwork("midcancel")
	in, _ := relayPair(n, "c")
	cfg := rtos.DefaultConfig()
	cfg.Deliver[in] = rtos.Polling
	cfg.PollPeriod = 5
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := sim.RunContext(ctx, n, nil, 1<<40, sim.Options{Cfg: cfg})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// twoIslandNet builds a network of two disconnected relay chains.
func twoIslandNet() (*cfsm.Network, *cfsm.Signal, *cfsm.Signal, *cfsm.Signal, *cfsm.Signal) {
	n := cfsm.NewNetwork("islands")
	in1, out1 := relayPair(n, "p")
	in2, out2 := relayPair(n, "q")
	return n, in1, out1, in2, out2
}

func sameResult(t *testing.T, label string, a, b *sim.Result) {
	t.Helper()
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("%s: %d trace events vs %d", label, len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		x, y := a.Trace[i], b.Trace[i]
		if x.Time != y.Time || x.Signal != y.Signal || x.Value != y.Value || x.From != y.From {
			t.Fatalf("%s: trace[%d] = {%d %s %d %s} vs {%d %s %d %s}",
				label, i, x.Time, x.Signal.Name, x.Value, x.From,
				y.Time, y.Signal.Name, y.Value, y.From)
		}
	}
	if a.Cycles != b.Cycles || a.CodeBytes != b.CodeBytes || a.DataBytes != b.DataBytes {
		t.Fatalf("%s: cycles/code/data %d/%d/%d vs %d/%d/%d",
			label, a.Cycles, a.CodeBytes, a.DataBytes, b.Cycles, b.CodeBytes, b.DataBytes)
	}
}

// TestPartitionsDecomposition checks island discovery on a network with
// two disconnected components, and that chains glue islands together.
func TestPartitionsDecomposition(t *testing.T) {
	n, _, _, _, _ := twoIslandNet()
	cfg := rtos.DefaultConfig()
	parts := sim.Partitions(n, cfg)
	if len(parts) != 2 {
		t.Fatalf("got %d islands, want 2", len(parts))
	}
	if len(parts[0]) != 2 || len(parts[1]) != 2 {
		t.Fatalf("island sizes %d/%d, want 2/2", len(parts[0]), len(parts[1]))
	}
	// A chain across the components must merge them into one island.
	cfg.Chains = [][]*cfsm.CFSM{{parts[0][0], parts[1][0]}}
	if merged := sim.Partitions(n, cfg); len(merged) != 1 {
		t.Fatalf("chained network has %d islands, want 1", len(merged))
	}
}

// TestPartitionParallelMatchesSerial runs the partitioned simulator
// with one worker and with many and requires identical merged results —
// the determinism contract of the parallel runner.
func TestPartitionParallelMatchesSerial(t *testing.T) {
	n, in1, _, in2, _ := twoIslandNet()
	var stim []sim.Stimulus
	for i := int64(0); i < 40; i++ {
		stim = append(stim, sim.Stimulus{Time: 100 + i*977, Signal: in1})
		stim = append(stim, sim.Stimulus{Time: 100 + i*977, Signal: in2, Value: i})
	}
	for _, mode := range []sim.Mode{sim.Behavioral, sim.VMExact} {
		opt := sim.Options{Cfg: rtos.DefaultConfig(), Mode: mode, Partition: true, Workers: 1}
		serial, err := sim.Run(n, append([]sim.Stimulus(nil), stim...), 100_000, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Workers = 8
		par, err := sim.Run(n, append([]sim.Stimulus(nil), stim...), 100_000, opt)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("mode %d", mode)
		sameResult(t, label, serial, par)
		if serial.System != nil || par.System != nil {
			t.Fatalf("%s: partitioned result has a single System", label)
		}
		if len(serial.Systems) != 2 || len(par.Systems) != 2 {
			t.Fatalf("%s: Systems = %d/%d islands, want 2/2",
				label, len(serial.Systems), len(par.Systems))
		}
	}
}

// TestPartitionMatchesPerIslandRuns checks the merged partitioned
// result against independent single-system runs of each island.
func TestPartitionMatchesPerIslandRuns(t *testing.T) {
	n, in1, out1, in2, out2 := twoIslandNet()
	stim := []sim.Stimulus{
		{Time: 100, Signal: in1},
		{Time: 100, Signal: in2, Value: 7},
		{Time: 5000, Signal: in2, Value: 9},
	}
	opt := sim.Options{Cfg: rtos.DefaultConfig(), Partition: true, Workers: 4}
	res, err := sim.Run(n, append([]sim.Stimulus(nil), stim...), 50_000, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.CountEmissions(res.Trace, out1); got != 1 {
		t.Fatalf("out1 emitted %d times, want 1", got)
	}
	if got := sim.CountEmissions(res.Trace, out2); got != 2 {
		t.Fatalf("out2 emitted %d times, want 2", got)
	}
	// Each island alone must reproduce its slice of the merged run.
	parts := sim.Partitions(n, opt.Cfg)
	for i, ms := range parts {
		sub := n.Subnet(fmt.Sprintf("island%d", i), ms)
		var mine []sim.Stimulus
		for _, st := range stim {
			for _, s := range sub.Signals {
				if s == st.Signal {
					mine = append(mine, st)
					break
				}
			}
		}
		alone, err := sim.Run(sub, mine, 50_000, sim.Options{Cfg: opt.Cfg})
		if err != nil {
			t.Fatal(err)
		}
		sys := res.Systems[i]
		if alone.System.BusyCycles != sys.BusyCycles ||
			alone.System.ScheduleCalls != sys.ScheduleCalls ||
			alone.System.Interrupts != sys.Interrupts {
			t.Fatalf("island %d: busy/sched/irq %d/%d/%d standalone, %d/%d/%d partitioned",
				i, alone.System.BusyCycles, alone.System.ScheduleCalls, alone.System.Interrupts,
				sys.BusyCycles, sys.ScheduleCalls, sys.Interrupts)
		}
	}
}

// TestPartitionRandomizedIdentity drives the partition runner over the
// randomized differential scenarios: serial and parallel execution must
// agree event-for-event, whatever the island structure.
func TestPartitionRandomizedIdentity(t *testing.T) {
	for seed := int64(300); seed < 330; seed++ {
		sc, err := genScenario(seed)
		if err != nil {
			t.Fatal(err)
		}
		opt := sim.Options{Cfg: sc.cfg, Partition: true, Workers: 1}
		serial, serr := sim.Run(sc.net, append([]sim.Stimulus(nil), sc.stimuli...), sc.horizon, opt)
		opt.Workers = 8
		par, perr := sim.Run(sc.net, append([]sim.Stimulus(nil), sc.stimuli...), sc.horizon, opt)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("seed %d: serial err %v, parallel err %v", seed, serr, perr)
		}
		if serr != nil {
			continue
		}
		sameResult(t, fmt.Sprintf("seed %d", seed), serial, par)
		for i := range serial.Systems {
			a, b := serial.Systems[i], par.Systems[i]
			if a.BusyCycles != b.BusyCycles || a.PollDropped != b.PollDropped ||
				a.ScheduleCalls != b.ScheduleCalls {
				t.Fatalf("seed %d island %d: stats diverge", seed, i)
			}
		}
	}
}

// countingProbe tallies probe callbacks; it also remembers the last
// snapshot and reaction it saw so their materialisation is exercised.
type countingProbe struct {
	posted, began, finished int
	firedSeen               int64
}

func (p *countingProbe) TaskPosted(t *rtos.Task, sig *cfsm.Signal, val int64, now int64, env bool) {
	p.posted++
}
func (p *countingProbe) TaskBegan(t *rtos.Task, snap cfsm.Snapshot, now int64) { p.began++ }
func (p *countingProbe) TaskFinished(t *rtos.Task, r cfsm.Reaction, cycles int64, now int64) {
	p.finished++
	if r.Fired {
		p.firedSeen++
	}
}

// TestProbeAccountingMatchesStats checks the probe view of the batched
// engine against the task counters, and that observing a run does not
// change its outcome.
func TestProbeAccountingMatchesStats(t *testing.T) {
	sc, err := genScenario(7)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := sim.Run(sc.net, append([]sim.Stimulus(nil), sc.stimuli...), sc.horizon, sim.Options{Cfg: sc.cfg})
	if err != nil {
		t.Fatal(err)
	}
	probe := &countingProbe{}
	probed, err := sim.Run(sc.net, append([]sim.Stimulus(nil), sc.stimuli...), sc.horizon,
		sim.Options{Cfg: sc.cfg, Probe: probe})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "probe-vs-bare", bare, probed)
	var execs, fired int64
	for _, task := range probed.System.Tasks {
		execs += task.Executions
		fired += task.Fired
	}
	if int64(probe.began) != execs || int64(probe.finished) != execs {
		t.Fatalf("probe began/finished %d/%d, task executions %d", probe.began, probe.finished, execs)
	}
	if probe.firedSeen != fired {
		t.Fatalf("probe saw %d fired reactions, tasks counted %d", probe.firedSeen, fired)
	}
	if probe.posted == 0 {
		t.Fatal("probe saw no deliveries")
	}
}
