package sim

import (
	"bytes"
	"strings"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/expr"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

// scalerNet: env sample -> scaler (doubles) -> limiter (clamps to 10)
// -> out.
func scalerNet() (*cfsm.Network, *cfsm.Signal, *cfsm.Signal) {
	n := cfsm.NewNetwork("scaler")
	sample := n.NewSignal("sample", false)
	mid := n.NewSignal("mid", false)
	out := n.NewSignal("out", false)

	sc := cfsm.New("scaler")
	sc.AttachInput(sample)
	sc.AttachOutput(mid)
	ps := sc.Present(sample)
	sc.AddTransition([]cfsm.Cond{cfsm.On(ps, 1)},
		sc.EmitV(mid, expr.Mul(expr.V("?sample"), expr.C(2))))

	lim := cfsm.New("limiter")
	lim.AttachInput(mid)
	lim.AttachOutput(out)
	pm := lim.Present(mid)
	hi := lim.Pred(expr.Gt(expr.V("?mid"), expr.C(10)))
	lim.AddTransition([]cfsm.Cond{cfsm.On(pm, 1), cfsm.On(hi, 1)},
		lim.EmitV(out, expr.C(10)))
	lim.AddTransition([]cfsm.Cond{cfsm.On(pm, 1), cfsm.On(hi, 0)},
		lim.EmitV(out, expr.V("?mid")))

	if err := n.Add(sc); err != nil {
		panic(err)
	}
	if err := n.Add(lim); err != nil {
		panic(err)
	}
	return n, sample, out
}

func defaultOpts(mode Mode) Options {
	return Options{
		Cfg:      rtos.DefaultConfig(),
		Mode:     mode,
		Profile:  vm.HC11(),
		Ordering: sgraph.OrderSiftAfterSupport,
	}
}

func outValues(res *Result, out *cfsm.Signal) []int64 {
	var vals []int64
	for _, e := range res.Trace {
		if e.Signal == out && e.From != "env" {
			vals = append(vals, e.Value)
		}
	}
	return vals
}

func TestRunBehavioralAndVMAgree(t *testing.T) {
	n, sample, out := scalerNet()
	stim := PeriodicStimuli(sample, 1000, 5000, 60000, func(i int) int64 {
		return int64(i % 9)
	})
	rb, err := Run(n, stim, 200000, defaultOpts(Behavioral))
	if err != nil {
		t.Fatal(err)
	}
	rv, err := Run(n, stim, 200000, defaultOpts(VMExact))
	if err != nil {
		t.Fatal(err)
	}
	vb := outValues(rb, out)
	vv := outValues(rv, out)
	if len(vb) == 0 {
		t.Fatal("no outputs in behavioral run")
	}
	if len(vb) != len(vv) {
		t.Fatalf("output counts differ: %d vs %d", len(vb), len(vv))
	}
	for i := range vb {
		if vb[i] != vv[i] {
			t.Fatalf("output %d differs: %d vs %d", i, vb[i], vv[i])
		}
		want := int64((i % 9) * 2)
		if want > 10 {
			want = 10
		}
		if vb[i] != want {
			t.Fatalf("output %d = %d, want %d", i, vb[i], want)
		}
	}
}

func TestLatencies(t *testing.T) {
	n, sample, out := scalerNet()
	stim := PeriodicStimuli(sample, 1000, 10000, 50000, nil)
	res, err := Run(n, stim, 200000, defaultOpts(VMExact))
	if err != nil {
		t.Fatal(err)
	}
	lats := Latencies(res.Trace, sample, out)
	if len(lats) != len(stim) {
		t.Fatalf("latency samples %d, want %d", len(lats), len(stim))
	}
	max := MaxLatency(res.Trace, sample, out)
	for _, l := range lats {
		if l <= 0 || l > max {
			t.Errorf("latency %d out of range (max %d)", l, max)
		}
	}
	if max > 4000 {
		t.Errorf("end-to-end latency %d implausibly high for an idle system", max)
	}
}

func TestOverloadLosesEvents(t *testing.T) {
	n, sample, out := scalerNet()
	// Events far faster than the processing chain can absorb.
	stim := PeriodicStimuli(sample, 10, 20, 20000, nil)
	res, err := Run(n, stim, 100000, defaultOpts(VMExact))
	if err != nil {
		t.Fatal(err)
	}
	outs := CountEmissions(res.Trace, out)
	if outs >= len(stim) {
		t.Errorf("overload should drop events: %d outputs for %d inputs", outs, len(stim))
	}
	var lost int64
	for _, task := range res.System.Tasks {
		lost += task.Lost
	}
	if lost == 0 {
		t.Error("one-place buffers must record losses under overload")
	}
}

func TestVMModeReportsFootprint(t *testing.T) {
	n, sample, _ := scalerNet()
	stim := PeriodicStimuli(sample, 1000, 10000, 20000, nil)
	res, err := Run(n, stim, 50000, defaultOpts(VMExact))
	if err != nil {
		t.Fatal(err)
	}
	if res.CodeBytes <= 0 || res.DataBytes <= 0 {
		t.Errorf("footprint not reported: %+v", res)
	}
}

func TestUtilizationGrowsWithLoad(t *testing.T) {
	n, sample, _ := scalerNet()
	slow, err := Run(n, PeriodicStimuli(sample, 1000, 50000, 400000, nil), 500000, defaultOpts(VMExact))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(n, PeriodicStimuli(sample, 1000, 5000, 400000, nil), 500000, defaultOpts(VMExact))
	if err != nil {
		t.Fatal(err)
	}
	if fast.System.Utilization() <= slow.System.Utilization() {
		t.Errorf("utilization must grow with input rate: %.4f vs %.4f",
			fast.System.Utilization(), slow.System.Utilization())
	}
}

func TestPeriodicStimuli(t *testing.T) {
	n, sample, _ := scalerNet()
	_ = n
	st := PeriodicStimuli(sample, 0, 100, 1000, func(i int) int64 { return int64(i) })
	if len(st) != 11 {
		t.Fatalf("stimulus count %d, want 11", len(st))
	}
	if st[3].Time != 300 || st[3].Value != 3 {
		t.Errorf("stimulus 3 wrong: %+v", st[3])
	}
}

func TestWriteTraceCSV(t *testing.T) {
	n, sample, _ := scalerNet()
	res, err := Run(n, PeriodicStimuli(sample, 1000, 20000, 60000, nil), 100000, defaultOpts(Behavioral))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, res.Trace); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time,signal,value,from\n") {
		t.Errorf("csv header wrong: %q", out[:40])
	}
	if !strings.Contains(out, "sample") || !strings.Contains(out, "out") {
		t.Error("csv missing signals")
	}
	lines := strings.Count(out, "\n")
	if lines < len(res.Trace) {
		t.Errorf("csv rows %d < trace events %d", lines, len(res.Trace))
	}
}
