package sim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/randcfsm"
	"polis/internal/rtos"
	"polis/internal/sim"
	"polis/internal/sim/internal/refsim"
)

// These tests pin the throughput-oriented engine (dense buffers,
// batched emission queue) to the frozen pre-change engine in
// internal/refsim: for randomized networks, RTOS configurations and
// stimulus timelines — including same-cycle bursts that stress the
// batch queue — the two must produce identical traces, cycle counts,
// accounting and final states, event for event.

// scenario is one randomized differential case.
type scenario struct {
	net     *cfsm.Network
	cfg     rtos.Config
	stimuli []sim.Stimulus
	horizon int64
}

// genScenario derives a deterministic scenario from a seed, covering
// the same knob space as the netfuzz harness: topologies, scheduling
// policies, preemption, a hardware partition, task chains, polling,
// InISR delivery and buffer-semantics mutants (a mutant must be wrong
// identically in both engines).
func genScenario(seed int64) (*scenario, error) {
	r := rand.New(rand.NewSource(seed))
	topos := []randcfsm.Topology{
		randcfsm.TopoIndependent, randcfsm.TopoChain,
		randcfsm.TopoChain, randcfsm.TopoDAG,
	}
	net, _, err := randcfsm.NewTopologyNetwork(r, 2+r.Intn(4), randcfsm.DefaultConfig(), topos[r.Intn(len(topos))])
	if err != nil {
		return nil, err
	}
	rc := rtos.DefaultConfig()
	if r.Intn(2) == 0 {
		rc.Policy = rtos.StaticPriority
		for _, m := range net.Machines {
			rc.Priority[m] = r.Intn(len(net.Machines))
		}
		if r.Intn(3) == 0 {
			rc.Preemptive = true
		}
	}
	hwIdx := -1
	if r.Intn(3) == 0 && len(net.Machines) > 1 {
		hwIdx = r.Intn(len(net.Machines))
		rc.HW[net.Machines[hwIdx]] = true
	}
	if r.Intn(3) == 0 {
		var sw []*cfsm.CFSM
		for i, m := range net.Machines {
			if i != hwIdx {
				sw = append(sw, m)
			}
		}
		if len(sw) >= 2 {
			rc.Chains = [][]*cfsm.CFSM{{sw[0], sw[1]}}
		}
	}
	if r.Intn(2) == 0 {
		for _, s := range net.Signals {
			if len(net.Readers(s)) == 0 {
				continue
			}
			fromEnv := len(net.Writers(s)) == 0
			fromHW := false
			if hwIdx >= 0 {
				for _, w := range net.Writers(s) {
					if w == net.Machines[hwIdx] {
						fromHW = true
					}
				}
			}
			if (fromEnv || fromHW) && r.Intn(2) == 0 {
				rc.Deliver[s] = rtos.Polling
			}
		}
	}
	for _, s := range net.PrimaryInputs() {
		if rc.Deliver[s] == rtos.Polling {
			continue
		}
		if r.Intn(4) == 0 {
			rc.InISR[s] = true
		}
	}
	mutants := []rtos.Mutant{
		rtos.MutantNone, rtos.MutantNone, rtos.MutantNone,
		rtos.MutantLostUndercount, rtos.MutantStaleOverwrite, rtos.MutantConsumeUnfired,
	}
	rc.Mutant = mutants[r.Intn(len(mutants))]

	prim := net.PrimaryInputs()
	vr := randcfsm.DefaultConfig().ValueRange
	count := 4 + r.Intn(16)
	// Alternate dense and sparse spacing so some stimuli land on a busy
	// system (contention, freeze-window posts) and some on a quiescent
	// one.
	gap := int64(40 + r.Intn(400))
	if r.Intn(2) == 0 {
		gap = int64(20_000 + r.Intn(60_000))
	}
	var st []sim.Stimulus
	tnow := gap
	for i := 0; i < count; i++ {
		s := prim[r.Intn(len(prim))]
		var v int64
		if !s.Pure {
			v = r.Int63n(vr)
		}
		st = append(st, sim.Stimulus{Time: tnow, Signal: s, Value: v})
		// Same-cycle and next-cycle duplicates stress the batched
		// delivery path with back-to-back one-place-buffer overwrites.
		if r.Intn(3) == 0 {
			st = append(st, sim.Stimulus{Time: tnow, Signal: s, Value: v + 1})
		}
		if r.Intn(4) == 0 {
			st = append(st, sim.Stimulus{Time: tnow + 1, Signal: s, Value: v + 2})
		}
		tnow += gap
	}
	return &scenario{net: net, cfg: rc, stimuli: st, horizon: tnow + 30_000}, nil
}

// compareRuns requires bit-identical observable outcomes from the two
// engines.
func compareRuns(t *testing.T, label string, got *sim.Result, want *refsim.Result) {
	t.Helper()
	if got.Cycles != want.Cycles {
		t.Errorf("%s: cycles %d, reference %d", label, got.Cycles, want.Cycles)
	}
	if got.CodeBytes != want.CodeBytes || got.DataBytes != want.DataBytes {
		t.Errorf("%s: footprint %d/%d, reference %d/%d",
			label, got.CodeBytes, got.DataBytes, want.CodeBytes, want.DataBytes)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Errorf("%s: %d trace events, reference %d", label, len(got.Trace), len(want.Trace))
	} else {
		for i := range got.Trace {
			a, b := got.Trace[i], want.Trace[i]
			if a.Time != b.Time || a.Signal != b.Signal || a.Value != b.Value || a.From != b.From {
				t.Errorf("%s: trace[%d] = {%d %s %d %s}, reference {%d %s %d %s}",
					label, i, a.Time, a.Signal.Name, a.Value, a.From,
					b.Time, b.Signal.Name, b.Value, b.From)
				break
			}
		}
	}
	gs, ws := got.System, want.System
	if gs.ScheduleCalls != ws.ScheduleCalls || gs.Interrupts != ws.Interrupts ||
		gs.Polls != ws.Polls || gs.BusyCycles != ws.BusyCycles || gs.PollDropped != ws.PollDropped {
		t.Errorf("%s: stats sched/irq/polls/busy/dropped %d/%d/%d/%d/%d, reference %d/%d/%d/%d/%d",
			label, gs.ScheduleCalls, gs.Interrupts, gs.Polls, gs.BusyCycles, gs.PollDropped,
			ws.ScheduleCalls, ws.Interrupts, ws.Polls, ws.BusyCycles, ws.PollDropped)
	}
	if len(gs.Tasks) != len(ws.Tasks) {
		t.Fatalf("%s: %d tasks, reference %d", label, len(gs.Tasks), len(ws.Tasks))
	}
	for i := range gs.Tasks {
		ta, tb := gs.Tasks[i], ws.Tasks[i]
		if ta.M != tb.M {
			t.Fatalf("%s: task %d is %s, reference %s", label, i, ta.M.Name, tb.M.Name)
		}
		if ta.Executions != tb.Executions || ta.Fired != tb.Fired || ta.Lost != tb.Lost {
			t.Errorf("%s: task %s exec/fired/lost %d/%d/%d, reference %d/%d/%d",
				label, ta.M.Name, ta.Executions, ta.Fired, ta.Lost,
				tb.Executions, tb.Fired, tb.Lost)
		}
		for _, sv := range ta.M.States {
			if ta.State(sv) != tb.State(sv) {
				t.Errorf("%s: task %s state %s=%d, reference %d",
					label, ta.M.Name, sv.Name, ta.State(sv), tb.State(sv))
			}
		}
	}
}

func runDiff(t *testing.T, seed int64, mode sim.Mode, check bool) {
	t.Helper()
	sc, err := genScenario(seed)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	opt := sim.Options{Cfg: sc.cfg, Mode: mode}
	if check {
		opt.Check = sim.CheckOptions{VMAgainstReference: true, CycleBounds: true}
	}
	label := fmt.Sprintf("seed %d mode %d", seed, mode)
	// Both engines sort the stimulus slice in place; give each a copy.
	got, gerr := sim.Run(sc.net, append([]sim.Stimulus(nil), sc.stimuli...), sc.horizon, opt)
	want, werr := refsim.Run(sc.net, append([]sim.Stimulus(nil), sc.stimuli...), sc.horizon, opt)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: engine error %v, reference error %v", label, gerr, werr)
	}
	if gerr != nil {
		if gerr.Error() != werr.Error() {
			t.Fatalf("%s: engine error %q, reference error %q", label, gerr, werr)
		}
		return
	}
	compareRuns(t, label, got, want)
}

func TestEngineMatchesReferenceBehavioral(t *testing.T) {
	for seed := int64(1); seed <= 120; seed++ {
		runDiff(t, seed, sim.Behavioral, false)
	}
}

func TestEngineMatchesReferenceVM(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		runDiff(t, seed, sim.VMExact, false)
	}
}

// TestEngineMatchesReferenceVMChecked runs the VM differential with the
// per-reaction cross-checks enabled, so the dense engine's snapshot
// materialisation path is exercised too.
func TestEngineMatchesReferenceVMChecked(t *testing.T) {
	for seed := int64(200); seed <= 215; seed++ {
		runDiff(t, seed, sim.VMExact, true)
	}
}
