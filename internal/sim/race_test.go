//go:build race

package sim_test

// raceEnabled reports that the race detector is instrumenting this
// build; its memory-access interception skews relative timings, so the
// throughput gate skips itself.
const raceEnabled = true
