package sim_test

import (
	"fmt"
	"strconv"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/expr"
	"polis/internal/profile"
	"polis/internal/rtos"
	"polis/internal/sim"
)

// TestMergeTracesManyIslands pins the k-way trace merge on a wide
// network: 66 disconnected islands whose stimuli all collide on the
// same cycles. The merged trace must be identical for any worker
// count, and same-time events must keep the island-index tie-break
// (island i's events before island j's for i < j).
func TestMergeTracesManyIslands(t *testing.T) {
	const islands = 66
	n := cfsm.NewNetwork("many")
	ins := make([]*cfsm.Signal, 0, islands)
	for k := 0; k < islands; k++ {
		in, _ := relayPair(n, fmt.Sprintf("i%03d", k))
		ins = append(ins, in)
	}
	var stim []sim.Stimulus
	for j := int64(0); j < 8; j++ {
		for k, in := range ins {
			stim = append(stim, sim.Stimulus{Time: 1000 + j*9000, Signal: in, Value: int64(k)})
		}
	}
	opt := sim.Options{Cfg: rtos.DefaultConfig(), Partition: true, Workers: 1}
	serial, err := sim.Run(n, append([]sim.Stimulus(nil), stim...), 90_000, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 16
	par, err := sim.Run(n, append([]sim.Stimulus(nil), stim...), 90_000, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Systems) != islands || len(par.Systems) != islands {
		t.Fatalf("islands = %d/%d, want %d", len(serial.Systems), len(par.Systems), islands)
	}
	sameResult(t, "66-island", serial, par)
	// Tie-break: all signal names are "iNNN_*", so the island index is
	// recoverable per event. At equal timestamps it must never step
	// backwards.
	islandOf := func(e rtos.TraceEvent) int {
		idx, err := strconv.Atoi(e.Signal.Name[1:4])
		if err != nil {
			t.Fatalf("unexpected signal name %q", e.Signal.Name)
		}
		return idx
	}
	for i := 1; i < len(serial.Trace); i++ {
		prev, cur := serial.Trace[i-1], serial.Trace[i]
		if cur.Time < prev.Time {
			t.Fatalf("trace[%d] time %d before trace[%d] time %d", i, cur.Time, i-1, prev.Time)
		}
		if cur.Time == prev.Time && islandOf(cur) < islandOf(prev) {
			t.Fatalf("trace[%d]: island %d precedes island %d at time %d",
				i, islandOf(prev), islandOf(cur), cur.Time)
		}
	}
}

// TestPartitionEnvOnlyStimulus: stimuli on a signal no machine reads
// or writes must behave identically partitioned and unpartitioned —
// the partition runner routes them to island 0, which records the
// environment event and drops it exactly like the single-system run.
func TestPartitionEnvOnlyStimulus(t *testing.T) {
	n := cfsm.NewNetwork("envonly")
	in1, out1 := relayPair(n, "p")
	in2, out2 := relayPair(n, "q")
	orphan := n.NewSignal("orphan", false)
	stim := []sim.Stimulus{
		{Time: 100, Signal: in1},
		{Time: 250, Signal: orphan, Value: 5},
		{Time: 400, Signal: in2},
		{Time: 777, Signal: orphan, Value: 9},
	}
	serial, err := sim.Run(n, append([]sim.Stimulus(nil), stim...), 50_000,
		sim.Options{Cfg: rtos.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	part, err := sim.Run(n, append([]sim.Stimulus(nil), stim...), 50_000,
		sim.Options{Cfg: rtos.DefaultConfig(), Partition: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Trace) != len(part.Trace) {
		t.Fatalf("trace length %d unpartitioned vs %d partitioned",
			len(serial.Trace), len(part.Trace))
	}
	for i := range serial.Trace {
		a, b := serial.Trace[i], part.Trace[i]
		if a.Time != b.Time || a.Signal != b.Signal || a.Value != b.Value || a.From != b.From {
			t.Fatalf("trace[%d] = {%d %s %d %s} unpartitioned vs {%d %s %d %s} partitioned",
				i, a.Time, a.Signal.Name, a.Value, a.From, b.Time, b.Signal.Name, b.Value, b.From)
		}
	}
	orphanSeen := 0
	for _, e := range part.Trace {
		if e.Signal == orphan {
			if e.From != "env" {
				t.Fatalf("orphan event from %q, want env", e.From)
			}
			orphanSeen++
		}
	}
	if orphanSeen != 2 {
		t.Fatalf("orphan env events in trace = %d, want 2", orphanSeen)
	}
	if sim.CountEmissions(part.Trace, out1) != 1 || sim.CountEmissions(part.Trace, out2) != 1 {
		t.Fatal("relay outputs missing from the partitioned run")
	}
}

// hotColdNet builds env sample -> scaler (doubles) -> limiter (clamps
// to 10) with a predicate whose outcome the stimulus values bias.
func hotColdNet() (*cfsm.Network, *cfsm.Signal, *cfsm.Signal) {
	n := cfsm.NewNetwork("hotcold")
	sample := n.NewSignal("sample", false)
	mid := n.NewSignal("mid", false)
	out := n.NewSignal("out", false)

	sc := cfsm.New("scaler")
	sc.AttachInput(sample)
	sc.AttachOutput(mid)
	ps := sc.Present(sample)
	sc.AddTransition([]cfsm.Cond{cfsm.On(ps, 1)},
		sc.EmitV(mid, expr.Mul(expr.V("?sample"), expr.C(2))))

	lim := cfsm.New("limiter")
	lim.AttachInput(mid)
	lim.AttachOutput(out)
	pm := lim.Present(mid)
	hi := lim.Pred(expr.Gt(expr.V("?mid"), expr.C(10)))
	lim.AddTransition([]cfsm.Cond{cfsm.On(pm, 1), cfsm.On(hi, 1)},
		lim.EmitV(out, expr.C(10)))
	lim.AddTransition([]cfsm.Cond{cfsm.On(pm, 1), cfsm.On(hi, 0)},
		lim.EmitV(out, expr.V("?mid")))

	if err := n.Add(sc); err != nil {
		panic(err)
	}
	if err := n.Add(lim); err != nil {
		panic(err)
	}
	return n, sample, out
}

// TestSpecializeCaptureDifferential drives the full capture -> apply
// loop: a probed behavioral run collects the profile, then a VMExact
// run with specialization (and every per-reaction differential check
// on) must produce the same per-signal output values as the
// unspecialized run — specialization changes layout and cycle counts,
// never observable behavior.
func TestSpecializeCaptureDifferential(t *testing.T) {
	n, sample, out := hotColdNet()
	// Hot-biased workload: most samples double past the clamp.
	stim := sim.PeriodicStimuli(sample, 1000, 5000, 300_000, func(i int) int64 {
		if i%7 == 0 {
			return 2 // cold path: below the clamp
		}
		return int64(20 + i%5)
	})

	col := profile.NewCollector()
	_, err := sim.Run(n, append([]sim.Stimulus(nil), stim...), 300_000,
		sim.Options{Cfg: rtos.DefaultConfig(), Probe: col})
	if err != nil {
		t.Fatal(err)
	}
	prof := col.Profile()
	if mp := prof.Module("limiter"); mp == nil || mp.Reactions == 0 {
		t.Fatalf("profile captured no limiter evidence: %+v", mp)
	}

	values := func(res *sim.Result) []int64 {
		var vals []int64
		for _, e := range res.Trace {
			if e.Signal == out && e.From != "env" {
				vals = append(vals, e.Value)
			}
		}
		return vals
	}
	plain, err := sim.Run(n, append([]sim.Stimulus(nil), stim...), 300_000,
		sim.Options{Cfg: rtos.DefaultConfig(), Mode: sim.VMExact})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sim.Run(n, append([]sim.Stimulus(nil), stim...), 300_000,
		sim.Options{
			Cfg: rtos.DefaultConfig(), Mode: sim.VMExact, Specialize: prof,
			Check: sim.CheckOptions{VMAgainstReference: true, CycleBounds: true},
		})
	if err != nil {
		t.Fatal(err)
	}
	pv, sv := values(plain), values(spec)
	if len(pv) != len(sv) {
		t.Fatalf("output count %d unspecialized vs %d specialized", len(pv), len(sv))
	}
	for i := range pv {
		if pv[i] != sv[i] {
			t.Fatalf("output %d: unspecialized %d, specialized %d", i, pv[i], sv[i])
		}
	}
}
