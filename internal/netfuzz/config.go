// Package netfuzz is a network-scale co-simulation fuzz harness with
// fault injection. It generates random GALS networks (internal/randcfsm
// topologies), drives them with randomized stimulus timelines through
// sim.Run in both Behavioral and VMExact modes, and checks invariants
// after every run:
//
//   - the object code agrees with the reference interpreter on every
//     frozen snapshot (sim.CheckOptions.VMAgainstReference),
//   - exact VM cycles stay inside the analyzer's path bounds and under
//     the estimator's worst case (sim.CheckOptions.CycleBounds),
//   - the RTOS one-place-buffer bookkeeping matches an independent
//     redundant model replayed from the raw probe stream (Model), so
//     overwrites are accounted as legal event loss, never silently,
//   - when a run is observed to be serialized (every environment
//     stimulus hit a quiescent system) and free of contention, loss
//     and poll drops, the two modes' per-signal output traces and
//     final states must agree exactly.
//
// Every run is reproducible from (seed, Config): generation uses only
// seeded rand streams and slice-ordered iteration. Failures shrink to
// a minimal configuration and print a replay line for `polisc fuzz`.
package netfuzz

import (
	"fmt"
	"strconv"
	"strings"

	"polis/internal/randcfsm"
	"polis/internal/rtos"
)

// Fault is a bitmask of enabled fault injectors. Faults mutate the
// stimulus timeline (and horizon) before the run; both modes see the
// identical mutated timeline, so faults probe the semantics, not the
// generator.
type Fault uint

// Fault injectors.
const (
	// FaultDrop removes random stimuli from the timeline.
	FaultDrop Fault = 1 << iota
	// FaultJitter perturbs stimulus arrival times, pushing them into
	// the freeze windows of running cascades.
	FaultJitter
	// FaultBurst duplicates stimuli back-to-back with fresh values,
	// forcing one-place-buffer overwrites.
	FaultBurst
	// FaultTruncate cuts the horizon short, ending the run with work
	// in flight.
	FaultTruncate

	faultAll = FaultDrop | FaultJitter | FaultBurst | FaultTruncate
)

var faultNames = []struct {
	bit  Fault
	name string
}{
	{FaultDrop, "drop"},
	{FaultJitter, "jitter"},
	{FaultBurst, "burst"},
	{FaultTruncate, "truncate"},
}

func (f Fault) String() string {
	if f == 0 {
		return "none"
	}
	var parts []string
	for _, fn := range faultNames {
		if f&fn.bit != 0 {
			parts = append(parts, fn.name)
		}
	}
	return strings.Join(parts, "|")
}

func parseFaults(s string) (Fault, error) {
	if s == "none" || s == "" {
		return 0, nil
	}
	var f Fault
	for _, p := range strings.Split(s, "|") {
		found := false
		for _, fn := range faultNames {
			if p == fn.name {
				f |= fn.bit
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("netfuzz: unknown fault %q", p)
		}
	}
	return f, nil
}

// Config describes one fuzz scenario. Together with a seed it fully
// determines the generated network, RTOS configuration and stimulus
// timeline.
type Config struct {
	Machines int               // network size
	Topology randcfsm.Topology // how machines are wired
	Stimuli  int               // environment events before faults
	Gap      int64             // nominal inter-stimulus spacing, cycles
	Horizon  int64             // simulation horizon; 0 derives Gap*(Stimuli+2)
	Policy   rtos.Policy       // scheduling discipline
	Preempt  bool              // preemptive scheduling (forces StaticPriority)
	Polling  bool              // some env signals delivered by polling
	HW       bool              // one machine moves to the hardware partition
	Chains   bool              // two software machines chained
	Reduce   bool              // synthesize with s-graph reduction
	Storm    bool              // same-cycle duplicate stimulus storms (batched delivery)
	// Specialize runs a behavioral profiling pre-run and synthesizes
	// both checked modes with profile-guided hot-path specialization,
	// so the differential invariants exercise reordered TEST layouts.
	Specialize bool
	Faults     Fault       // enabled fault injectors
	Mutant     rtos.Mutant // injected bad semantics (self-check only)
}

// DefaultConfig is the strict regime: a chain topology with spaced
// interrupt-delivered stimuli, where traces are expected to be
// mode-independent and the strict trace comparison usually applies.
func DefaultConfig() Config {
	return Config{
		Machines: 3,
		Topology: randcfsm.TopoChain,
		Stimuli:  12,
		Gap:      60_000,
	}
}

func mutantName(m rtos.Mutant) string {
	switch m {
	case rtos.MutantLostUndercount:
		return "lost"
	case rtos.MutantStaleOverwrite:
		return "stale"
	case rtos.MutantConsumeUnfired:
		return "consume"
	default:
		return "none"
	}
}

func parseMutant(s string) (rtos.Mutant, error) {
	switch s {
	case "none", "":
		return rtos.MutantNone, nil
	case "lost":
		return rtos.MutantLostUndercount, nil
	case "stale":
		return rtos.MutantStaleOverwrite, nil
	case "consume":
		return rtos.MutantConsumeUnfired, nil
	}
	return rtos.MutantNone, fmt.Errorf("netfuzz: unknown mutant %q", s)
}

func topoName(t randcfsm.Topology) string { return t.String() }

func parseTopo(s string) (randcfsm.Topology, error) {
	switch s {
	case "independent":
		return randcfsm.TopoIndependent, nil
	case "chain":
		return randcfsm.TopoChain, nil
	case "dag":
		return randcfsm.TopoDAG, nil
	}
	return 0, fmt.Errorf("netfuzz: unknown topology %q", s)
}

func boolName(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// String encodes the config as a compact "k=v,..." line, the format
// Parse accepts and failure reports print for replay.
func (c Config) String() string {
	policy := "rr"
	if c.Policy == rtos.StaticPriority {
		policy = "prio"
	}
	return fmt.Sprintf("n=%d,topo=%s,stim=%d,gap=%d,hz=%d,policy=%s,preempt=%s,poll=%s,hw=%s,chain=%s,reduce=%s,storm=%s,spec=%s,faults=%s,mutant=%s",
		c.Machines, topoName(c.Topology), c.Stimuli, c.Gap, c.Horizon, policy,
		boolName(c.Preempt), boolName(c.Polling), boolName(c.HW), boolName(c.Chains),
		boolName(c.Reduce), boolName(c.Storm), boolName(c.Specialize),
		c.Faults, mutantName(c.Mutant))
}

// Parse decodes a Config from the String encoding. Unknown keys are
// errors; omitted keys keep the zero value.
func Parse(s string) (Config, error) {
	var c Config
	if strings.TrimSpace(s) == "" {
		return c, fmt.Errorf("netfuzz: empty config")
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return c, fmt.Errorf("netfuzz: bad config entry %q", kv)
		}
		var err error
		switch k {
		case "n":
			c.Machines, err = strconv.Atoi(v)
		case "topo":
			c.Topology, err = parseTopo(v)
		case "stim":
			c.Stimuli, err = strconv.Atoi(v)
		case "gap":
			c.Gap, err = strconv.ParseInt(v, 10, 64)
		case "hz":
			c.Horizon, err = strconv.ParseInt(v, 10, 64)
		case "policy":
			switch v {
			case "rr":
				c.Policy = rtos.RoundRobin
			case "prio":
				c.Policy = rtos.StaticPriority
			default:
				err = fmt.Errorf("netfuzz: unknown policy %q", v)
			}
		case "preempt":
			c.Preempt = v == "1"
		case "poll":
			c.Polling = v == "1"
		case "hw":
			c.HW = v == "1"
		case "chain":
			c.Chains = v == "1"
		case "reduce":
			c.Reduce = v == "1"
		case "storm":
			c.Storm = v == "1"
		case "spec":
			c.Specialize = v == "1"
		case "faults":
			c.Faults, err = parseFaults(v)
		case "mutant":
			c.Mutant, err = parseMutant(v)
		default:
			err = fmt.Errorf("netfuzz: unknown config key %q", k)
		}
		if err != nil {
			return c, err
		}
	}
	return c.normalize()
}

// normalize enforces cross-field constraints instead of failing runs
// on invalid combinations the fuzzer itself composed.
func (c Config) normalize() (Config, error) {
	if c.Machines < 1 {
		return c, fmt.Errorf("netfuzz: need at least one machine")
	}
	if c.Stimuli < 1 {
		return c, fmt.Errorf("netfuzz: need at least one stimulus")
	}
	if c.Gap < 1 {
		return c, fmt.Errorf("netfuzz: gap must be positive")
	}
	if c.Preempt {
		c.Policy = rtos.StaticPriority // rtos.Validate requires it
	}
	return c, nil
}

// horizon resolves the effective horizon before fault injection.
func (c Config) horizon() int64 {
	if c.Horizon > 0 {
		return c.Horizon
	}
	return c.Gap * int64(c.Stimuli+2)
}
