package netfuzz

import (
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"polis/internal/rtos"
)

func TestConfigRoundTrip(t *testing.T) {
	cases := []Config{
		DefaultConfig(),
		{Machines: 5, Topology: 2, Stimuli: 9, Gap: 12345, Horizon: 900_000,
			Policy: rtos.StaticPriority, Preempt: true, Polling: true, HW: true,
			Chains: true, Faults: FaultDrop | FaultBurst, Mutant: rtos.MutantStaleOverwrite},
		{Machines: 1, Topology: 0, Stimuli: 1, Gap: 1, Faults: faultAll,
			Mutant: rtos.MutantConsumeUnfired},
		{Machines: 4, Topology: 1, Stimuli: 6, Gap: 500, Storm: true,
			Faults: FaultBurst},
		{Machines: 3, Topology: 1, Stimuli: 8, Gap: 2000, Specialize: true,
			Storm: true, Faults: FaultJitter},
	}
	for _, c := range cases {
		want, err := c.normalize()
		if err != nil {
			t.Fatalf("normalize %s: %v", c, err)
		}
		got, err := Parse(want.String())
		if err != nil {
			t.Fatalf("parse %q: %v", want.String(), err)
		}
		if got != want {
			t.Errorf("round trip changed config: %s -> %s", want, got)
		}
	}
	for _, bad := range []string{"", "n=0", "stim=5", "n=2,stim=3,gap=0", "n=2,stim=3,gap=9,mutant=bogus", "wat"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted an invalid config", bad)
		}
	}
}

// TestSeededTraceEquivalence is the seeded regression of the PR: over
// fixed strict-regime configs, Behavioral and VMExact must produce
// identical per-signal traces, loss accounting and final states, and
// every run must satisfy the timing-independent invariants. Before the
// Fired-semantics fix in cfsm.React (action-less matched transitions
// counted as fired in the reference but cannot in the object code),
// roughly one in ten of these seeds diverged.
func TestSeededTraceEquivalence(t *testing.T) {
	strict := 0
	for seed := int64(1); seed <= 20; seed++ {
		rep := RunOne(seed, DefaultConfig())
		if rep.Failed() {
			t.Fatalf("seed %d: %v\nreplay: %s", seed, rep.Violations, rep.Repro())
		}
		if rep.Strict {
			strict++
		}
	}
	// Every default-config seed currently serializes; if generator or
	// scheduler changes legitimately break a few, this still must not
	// drop to a vacuous comparison.
	if strict < 15 {
		t.Errorf("only %d/20 default-config seeds qualified for strict comparison", strict)
	}

	variants := []string{
		"n=4,topo=chain,stim=10,gap=80000,policy=prio,hw=1",
		"n=3,topo=chain,stim=10,gap=80000,policy=rr,chain=1",
		"n=2,topo=independent,stim=8,gap=60000,policy=prio,preempt=1",
		"n=3,topo=chain,stim=12,gap=60000,faults=drop|truncate",
	}
	for _, v := range variants {
		cfg, err := Parse(v)
		if err != nil {
			t.Fatal(err)
		}
		vs := 0
		for seed := int64(1); seed <= 10; seed++ {
			rep := RunOne(seed, cfg)
			if rep.Failed() {
				t.Fatalf("variant %q seed %d: %v\nreplay: %s", v, seed, rep.Violations, rep.Repro())
			}
			if rep.Strict {
				vs++
			}
		}
		if vs == 0 {
			t.Errorf("variant %q: no seed qualified for strict comparison", v)
		}
	}
}

// TestRunOneDeterministic: a report must replay bit-identically from
// (seed, config) — the whole basis of seed reproduction.
func TestRunOneDeterministic(t *testing.T) {
	cfg := RandomConfig(rand.New(rand.NewSource(configSeed(7))), rtos.MutantNone)
	a, b := RunOne(7, cfg), RunOne(7, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed+config produced different reports:\n%+v\nvs\n%+v", a, b)
	}
}

// TestFuzzCampaignRandom is the bounded fuzz smoke: randomized
// scenario shapes over a seed range, every invariant checked, zero
// tolerance for violations. NETFUZZ_RUNS bumps the budget (ci.sh).
func TestFuzzCampaignRandom(t *testing.T) {
	runs := 150
	if s := os.Getenv("NETFUZZ_RUNS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad NETFUZZ_RUNS %q: %v", s, err)
		}
		runs = n
	}
	var sb strings.Builder
	res := Campaign(1, runs, Config{}, true, &sb)
	if len(res.Failures) != 0 {
		t.Fatalf("campaign found %d violations:\n%s", len(res.Failures), sb.String())
	}
	if res.Strict == 0 {
		t.Errorf("no run of %d qualified for strict comparison; the invariant is vacuous", res.Runs)
	}
}

// TestFuzzCampaignReduce pins reduce-on coverage: every synthesized
// task graph is reduced before code generation and the per-reaction
// VM-against-reference check then gates the reduced object code. The
// randomized campaign also draws reduce scenarios, but this fixed
// config cannot rotate away. NETFUZZ_REDUCE_RUNS bumps the budget
// (ci.sh).
func TestFuzzCampaignReduce(t *testing.T) {
	runs := 40
	if s := os.Getenv("NETFUZZ_REDUCE_RUNS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad NETFUZZ_REDUCE_RUNS %q: %v", s, err)
		}
		runs = n
	}
	cfg := DefaultConfig()
	cfg.Reduce = true
	var sb strings.Builder
	res := Campaign(1, runs, cfg, false, &sb)
	if len(res.Failures) != 0 {
		t.Fatalf("reduce campaign found %d violations:\n%s", len(res.Failures), sb.String())
	}
}

// TestFuzzCampaignStorm pins storm coverage: same-cycle duplicate
// stimulus storms on a dense timeline push several environment events
// into a single time-advance, the worst case for the batched delivery
// queue's ordering and one-place-buffer overwrite accounting. The
// randomized campaign also draws storm scenarios, but this fixed config
// cannot rotate away. NETFUZZ_STORM_RUNS bumps the budget (ci.sh).
func TestFuzzCampaignStorm(t *testing.T) {
	runs := 40
	if s := os.Getenv("NETFUZZ_STORM_RUNS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad NETFUZZ_STORM_RUNS %q: %v", s, err)
		}
		runs = n
	}
	cfg := DefaultConfig()
	cfg.Storm = true
	cfg.Gap = 400 // dense spacing: storms land on a busy system
	var sb strings.Builder
	res := Campaign(1, runs, cfg, false, &sb)
	if len(res.Failures) != 0 {
		t.Fatalf("storm campaign found %d violations:\n%s", len(res.Failures), sb.String())
	}
}

// TestFuzzCampaignSpecialize pins specialization coverage: every run
// captures a behavioral profile first, then both checked modes execute
// hot-path-reordered task graphs, so the differential invariants (VM
// vs reference interpreter, cycle bounds, trace equality) gate every
// specialized layout. The randomized campaign also draws specialize
// scenarios, but this fixed config cannot rotate away.
// NETFUZZ_SPEC_RUNS bumps the budget (ci.sh).
func TestFuzzCampaignSpecialize(t *testing.T) {
	runs := 40
	if s := os.Getenv("NETFUZZ_SPEC_RUNS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad NETFUZZ_SPEC_RUNS %q: %v", s, err)
		}
		runs = n
	}
	cfg := DefaultConfig()
	cfg.Specialize = true
	var sb strings.Builder
	res := Campaign(1, runs, cfg, false, &sb)
	if len(res.Failures) != 0 {
		t.Fatalf("specialize campaign found %d violations:\n%s", len(res.Failures), sb.String())
	}
}

// TestConfigRoundTripReduce: the replay line must carry the reduce
// knob through String/Parse unchanged.
func TestConfigRoundTripReduce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reduce = true
	got, err := Parse(cfg.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Reduce {
		t.Fatalf("reduce flag lost in round trip: %s -> %+v", cfg.String(), got)
	}
}

// TestMutantSelfCheck proves the harness detects known-bad semantics:
// for every rtos mutant, some seed in a small budget must trip the
// expected invariant, the failure must replay deterministically from
// its printed seed+config, and shrinking must preserve it.
func TestMutantSelfCheck(t *testing.T) {
	expected := map[rtos.Mutant]map[string]bool{
		rtos.MutantLostUndercount: {"loss-accounting": true},
		rtos.MutantStaleOverwrite: {"buffer-model": true},
		rtos.MutantConsumeUnfired: {"buffer-model": true, "loss-accounting": true},
	}
	for mutant, wantInv := range expected {
		name := mutantName(mutant)
		var found *Report
		for seed := int64(1); seed <= 40 && found == nil; seed++ {
			cfg := RandomConfig(rand.New(rand.NewSource(configSeed(seed))), mutant)
			if rep := RunOne(seed, cfg); rep.Failed() {
				found = rep
			}
		}
		if found == nil {
			t.Errorf("mutant %s: not detected within 40 seeds", name)
			continue
		}
		hit := false
		for _, v := range found.Violations {
			if wantInv[v.Invariant] {
				hit = true
			}
		}
		if !hit {
			t.Errorf("mutant %s: detected but via unexpected invariants %v", name, found.Violations)
		}

		// Deterministic replay from the printed seed+config pair.
		cfgStr := found.Config.String()
		parsed, err := Parse(cfgStr)
		if err != nil {
			t.Fatalf("mutant %s: repro config %q does not parse: %v", name, cfgStr, err)
		}
		replay := RunOne(found.Seed, parsed)
		if !reflect.DeepEqual(replay.Violations, found.Violations) {
			t.Errorf("mutant %s: replay of seed %d diverged:\n%v\nvs\n%v",
				name, found.Seed, replay.Violations, found.Violations)
		}

		// Shrinking keeps a failing, no-larger scenario.
		shrunk, _ := Shrink(found.Seed, found.Config, 64)
		if !shrunk.Failed() {
			t.Errorf("mutant %s: shrink lost the failure", name)
		}
		if shrunk.Config.Machines > found.Config.Machines || shrunk.Config.Stimuli > found.Config.Stimuli {
			t.Errorf("mutant %s: shrink grew the scenario: %s -> %s", name, found.Config, shrunk.Config)
		}
	}
}

// TestCleanRunsAreMutantFree pins that the detector is not trigger-
// happy: the exact seeds used by the self-check, run without a mutant,
// must stay quiet.
func TestCleanRunsAreMutantFree(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		cfg := RandomConfig(rand.New(rand.NewSource(configSeed(seed))), rtos.MutantNone)
		if rep := RunOne(seed, cfg); rep.Failed() {
			t.Fatalf("seed %d failed without a mutant: %v\nreplay: %s", seed, rep.Violations, rep.Repro())
		}
	}
}
