package netfuzz

import (
	"fmt"
	"sort"

	"polis/internal/cfsm"
	"polis/internal/rtos"
)

// Violation is one invariant failure observed during a run.
type Violation struct {
	// Invariant names the broken property: "generate", "run-error",
	// "panic", "buffer-model", "loss-accounting", "trace-divergence",
	// "state-divergence".
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// maxModelViolations caps the per-model report so a systematically
// wrong semantics (a mutant) does not flood the output; the count of
// suppressed violations is still reported.
const maxModelViolations = 8

// taskState is the redundant model's copy of one task's one-place
// buffers. It is rebuilt purely from the probe's raw delivery stream,
// so bugs in the Task bookkeeping itself cannot distort the evidence
// that convicts them.
type taskState struct {
	name    string
	visible map[*cfsm.Signal]int64 // present events (key = presence)
	pend    map[*cfsm.Signal]int64 // arrived during the freeze window
	frozen  map[*cfsm.Signal]int64 // snapshot of the in-flight run
	running bool
	enabled bool
	lost    int64
	execs   int64
	fired   int64
}

// Model is an independent implementation of the Section II one-place
// buffer semantics, driven by the rtos.Probe observation stream. At
// every execution start it compares the implementation's frozen
// snapshot against its own buffers, and at the end of the run it
// compares the loss/execution accounting. It also observes whether the
// run was serialized (every environment stimulus arrived while no
// event was in flight) and contention-free, which is what licenses the
// strict cross-mode trace comparison.
type Model struct {
	tasks map[*rtos.Task]*taskState
	order []*rtos.Task // first-seen order, for deterministic reports

	active     int  // tasks with running||enabled: in-flight events
	serial     bool // every env post so far hit a quiescent system
	contended  int64
	violations []Violation
	suppressed int
}

// NewModel returns an empty model; attach it via sim.Options.Probe.
func NewModel() *Model {
	return &Model{tasks: make(map[*rtos.Task]*taskState), serial: true}
}

func (m *Model) state(t *rtos.Task) *taskState {
	ts := m.tasks[t]
	if ts == nil {
		ts = &taskState{
			name:    t.M.Name,
			visible: make(map[*cfsm.Signal]int64),
			pend:    make(map[*cfsm.Signal]int64),
		}
		m.tasks[t] = ts
		m.order = append(m.order, t)
	}
	return ts
}

func (ts *taskState) activeNow() bool { return ts.running || ts.enabled }

// refresh re-derives the in-flight event count after a state change.
func (m *Model) refresh(ts *taskState, was bool) {
	now := ts.activeNow()
	if was == now {
		return
	}
	if now {
		m.active++
	} else {
		m.active--
	}
}

func (m *Model) violate(inv, format string, args ...any) {
	if len(m.violations) >= maxModelViolations {
		m.suppressed++
		return
	}
	m.violations = append(m.violations, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}

// TaskPosted mirrors one delivery into the model's buffers.
func (m *Model) TaskPosted(t *rtos.Task, sig *cfsm.Signal, val int64, now int64, env bool) {
	ts := m.state(t)
	if env && m.active != 0 {
		// An environment stimulus landed while a cascade was still in
		// flight: arrival order at shared readers may now depend on
		// execution timing, so the strict trace comparison is off.
		m.serial = false
	}
	if ts.running || ts.enabled {
		m.contended++
	}
	was := ts.activeNow()
	if ts.running {
		if _, dup := ts.pend[sig]; dup {
			ts.lost++
		}
		ts.pend[sig] = val
	} else {
		if _, dup := ts.visible[sig]; dup {
			ts.lost++
		}
		ts.visible[sig] = val
		ts.enabled = true
	}
	m.refresh(ts, was)
}

// TaskBegan checks the implementation's frozen snapshot against the
// model's visible buffers and starts the freeze window.
func (m *Model) TaskBegan(t *rtos.Task, snap cfsm.Snapshot, now int64) {
	ts := m.state(t)
	if ts.running {
		m.violate("buffer-model", "task %s began while already running (t=%d)", ts.name, now)
	}
	for s := range snap.Present {
		v, ok := ts.visible[s]
		if !ok {
			m.violate("buffer-model",
				"task %s t=%d: snapshot presents %s but the model's buffer is empty (flags consumed or invented wrongly)",
				ts.name, now, s.Name)
			continue
		}
		if got := snap.Values[s]; got != v {
			m.violate("buffer-model",
				"task %s t=%d: snapshot value of %s is %d, model says %d (stale one-place buffer)",
				ts.name, now, s.Name, got, v)
		}
	}
	for s := range ts.visible {
		if !snap.Present[s] {
			m.violate("buffer-model",
				"task %s t=%d: model expects %s present but the snapshot misses it (event preservation violated)",
				ts.name, now, s.Name)
		}
	}
	was := ts.activeNow()
	ts.frozen = make(map[*cfsm.Signal]int64, len(ts.visible))
	for s, v := range ts.visible {
		ts.frozen[s] = v
	}
	ts.running = true
	ts.enabled = false
	m.refresh(ts, was)
}

// TaskFinished closes the freeze window: consumed flags clear only on
// a fired transition, pending events become visible and overwrites
// count as loss.
func (m *Model) TaskFinished(t *rtos.Task, r cfsm.Reaction, cycles int64, now int64) {
	ts := m.state(t)
	if !ts.running {
		m.violate("buffer-model", "task %s finished without a matching begin (t=%d)", ts.name, now)
		return
	}
	was := ts.activeNow()
	ts.execs++
	if r.Fired {
		ts.fired++
		for s := range ts.frozen {
			delete(ts.visible, s)
		}
	}
	// Per-signal pend merges are independent, so map order is fine.
	for s, v := range ts.pend {
		if _, dup := ts.visible[s]; dup {
			ts.lost++
		}
		ts.visible[s] = v
		ts.enabled = true
		delete(ts.pend, s)
	}
	ts.frozen = nil
	ts.running = false
	m.refresh(ts, was)
}

// Finish compares the end-of-run accounting: the implementation's
// Lost/Executions/Fired counters must equal the model's. Call after
// sim.Run returns.
func (m *Model) Finish() {
	for _, t := range m.order {
		ts := m.tasks[t]
		if ts.lost != t.Lost {
			m.violate("loss-accounting",
				"task %s: implementation counted %d lost events, model counted %d (overwrites must be accounted, never silent)",
				ts.name, t.Lost, ts.lost)
		}
		if ts.execs != t.Executions || ts.fired != t.Fired {
			m.violate("loss-accounting",
				"task %s: implementation ran %d/%d (exec/fired), model saw %d/%d",
				ts.name, t.Executions, t.Fired, ts.execs, ts.fired)
		}
	}
	if m.suppressed > 0 {
		m.violations = append(m.violations, Violation{
			Invariant: "buffer-model",
			Detail:    fmt.Sprintf("%d further model violations suppressed", m.suppressed),
		})
	}
}

// Serial reports whether every environment stimulus arrived while no
// event was in flight. Only then is the cross-mode event arrival order
// timing-independent.
func (m *Model) Serial() bool { return m.serial }

// Contended counts deliveries to a task that was running or already
// enabled — the situations where freeze-window merging or ordering
// races can legally change behavior between modes.
func (m *Model) Contended() int64 { return m.contended }

// TotalLost sums the model's own overwrite count across tasks.
func (m *Model) TotalLost() int64 {
	var n int64
	for _, t := range m.order {
		n += m.tasks[t].lost
	}
	return n
}

// Violations returns the model's findings, sorted for determinism.
func (m *Model) Violations() []Violation {
	out := append([]Violation(nil), m.violations...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Invariant != out[j].Invariant {
			return out[i].Invariant < out[j].Invariant
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}
