package netfuzz

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"polis/internal/cfsm"
	"polis/internal/profile"
	"polis/internal/randcfsm"
	"polis/internal/rtos"
	"polis/internal/sim"
)

// ModeStats summarizes one mode's run for the report.
type ModeStats struct {
	Err         string
	Panicked    bool
	Serial      bool
	Contended   int64
	Lost        int64 // model's overwrite count
	PollDropped int64
	Emissions   int // non-env, non-poll trace events
}

// Report is the outcome of one fuzz run: the violations found (empty
// on success) and enough context to understand and replay them.
type Report struct {
	Seed       int64
	Config     Config
	Violations []Violation
	// Strict records whether the run qualified for the strict
	// cross-mode trace comparison (serialized, contention- and
	// loss-free); when false only the timing-independent invariants
	// were checked.
	Strict     bool
	Behavioral ModeStats
	VMExact    ModeStats
}

// Failed reports whether any invariant was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Repro returns the one-line replay command for this run.
func (r *Report) Repro() string {
	return fmt.Sprintf("polisc fuzz -seed %d -config %q", r.Seed, r.Config.String())
}

// Format writes a human-readable failure report.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "seed %d config %s strict=%v\n", r.Seed, r.Config, r.Strict)
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  VIOLATION %s\n", v)
	}
	if r.Failed() {
		fmt.Fprintf(w, "  replay: %s\n", r.Repro())
	}
}

func (r *Report) violate(inv, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}

// buildRTOS derives a deterministic RTOS configuration from the
// scenario knobs and the seeded stream. All iteration is over network
// slices, never maps, so a seed replays exactly.
func buildRTOS(r *rand.Rand, net *cfsm.Network, cfg Config) rtos.Config {
	rc := rtos.DefaultConfig()
	rc.Mutant = cfg.Mutant
	rc.Policy = cfg.Policy
	rc.Preemptive = cfg.Preempt
	if rc.Policy == rtos.StaticPriority {
		for _, m := range net.Machines {
			rc.Priority[m] = r.Intn(len(net.Machines))
		}
	}
	hwIdx := -1
	if cfg.HW && len(net.Machines) > 1 {
		hwIdx = r.Intn(len(net.Machines))
		rc.HW[net.Machines[hwIdx]] = true
	}
	if cfg.Chains {
		var sw []*cfsm.CFSM
		for i, m := range net.Machines {
			if i != hwIdx {
				sw = append(sw, m)
			}
		}
		if len(sw) >= 2 {
			rc.Chains = [][]*cfsm.CFSM{{sw[0], sw[1]}}
		}
	}
	if cfg.Polling {
		// Candidates are the signals that cross the hardware/software
		// boundary: environment inputs and hardware-machine emissions.
		for _, s := range net.Signals {
			if len(net.Readers(s)) == 0 {
				continue
			}
			fromEnv := len(net.Writers(s)) == 0
			fromHW := false
			if hwIdx >= 0 {
				for _, w := range net.Writers(s) {
					if w == net.Machines[hwIdx] {
						fromHW = true
					}
				}
			}
			if (fromEnv || fromHW) && r.Intn(2) == 0 {
				rc.Deliver[s] = rtos.Polling
			}
		}
	}
	for _, s := range net.PrimaryInputs() {
		if rc.Deliver[s] == rtos.Polling {
			continue // Validate rejects InISR on polled signals
		}
		if r.Intn(5) == 0 {
			rc.InISR[s] = true
		}
	}
	return rc
}

// buildStimuli lays out the nominal spaced timeline and then applies
// the enabled fault injectors. Both modes replay the identical mutated
// timeline, so faults stress the semantics rather than the generator.
func buildStimuli(r *rand.Rand, net *cfsm.Network, cfg Config) ([]sim.Stimulus, int64) {
	prim := net.PrimaryInputs()
	vr := randcfsm.DefaultConfig().ValueRange
	st := make([]sim.Stimulus, 0, cfg.Stimuli)
	tnow := cfg.Gap
	for i := 0; i < cfg.Stimuli; i++ {
		s := prim[r.Intn(len(prim))]
		var v int64
		if !s.Pure {
			v = r.Int63n(vr)
		}
		st = append(st, sim.Stimulus{Time: tnow, Signal: s, Value: v})
		tnow += cfg.Gap
	}
	horizon := cfg.horizon()
	if cfg.Faults&FaultJitter != 0 {
		for i := range st {
			st[i].Time += r.Int63n(cfg.Gap) - cfg.Gap/2
			if st[i].Time < 1 {
				st[i].Time = 1
			}
		}
	}
	if cfg.Faults&FaultDrop != 0 {
		kept := st[:0]
		for _, s := range st {
			if r.Intn(8) != 0 {
				kept = append(kept, s)
			}
		}
		st = kept
	}
	if cfg.Faults&FaultBurst != 0 {
		var extra []sim.Stimulus
		for _, s0 := range st {
			if r.Intn(5) == 0 {
				var v int64
				if !s0.Signal.Pure {
					v = r.Int63n(vr)
				}
				extra = append(extra, sim.Stimulus{
					Time: s0.Time + 1 + r.Int63n(25), Signal: s0.Signal, Value: v})
			}
		}
		st = append(st, extra...)
	}
	if cfg.Faults&FaultTruncate != 0 {
		horizon = horizon/2 + 1
	}
	// Storm piles 1-3 duplicates onto the *same cycle* as an existing
	// stimulus (fresh values), so several environment events hit one
	// Advance step at once — the shape that exercises the batched
	// delivery queue and its one-place-buffer overwrite accounting.
	// Applied after the fault injectors so their draws are untouched.
	if cfg.Storm {
		var extra []sim.Stimulus
		for _, s0 := range st {
			if r.Intn(3) != 0 {
				continue
			}
			for k := 1 + r.Intn(3); k > 0; k-- {
				var v int64
				if !s0.Signal.Pure {
					v = r.Int63n(vr)
				}
				extra = append(extra, sim.Stimulus{Time: s0.Time, Signal: s0.Signal, Value: v})
			}
		}
		st = append(st, extra...)
	}
	return st, horizon
}

// runGuarded executes one simulation with a panic barrier: any panic
// escaping the runtime path is itself an invariant violation (the
// acceptance bar is errors, never panics), and it must not kill the
// campaign.
func runGuarded(net *cfsm.Network, stimuli []sim.Stimulus, horizon int64,
	opt sim.Options) (res *sim.Result, err error, panicMsg string) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, nil
			panicMsg = fmt.Sprint(p)
		}
	}()
	// sim.Run sorts the slice in place; keep the caller's copy pristine
	// so the second mode replays the identical timeline.
	res, err = sim.Run(net, append([]sim.Stimulus(nil), stimuli...), horizon, opt)
	return res, err, ""
}

// traceSeqs extracts the per-signal sequences of machine emissions
// (environment and poll-delivery echoes excluded).
func traceSeqs(trace []rtos.TraceEvent) map[string][]int64 {
	out := map[string][]int64{}
	for _, e := range trace {
		if e.From != "env" && e.From != "poll" {
			out[e.Signal.Name] = append(out[e.Signal.Name], e.Value)
		}
	}
	return out
}

// RunOne generates the scenario for (seed, cfg), runs it in both modes
// and evaluates every invariant. It is fully deterministic: the same
// pair always returns the same report.
func RunOne(seed int64, cfg Config) *Report {
	rep := &Report{Seed: seed, Config: cfg}
	ncfg, err := cfg.normalize()
	if err != nil {
		rep.violate("generate", "%v", err)
		return rep
	}
	cfg, rep.Config = ncfg, ncfg

	r := rand.New(rand.NewSource(seed))
	net, _, err := randcfsm.NewTopologyNetwork(r, cfg.Machines, randcfsm.DefaultConfig(), cfg.Topology)
	if err != nil {
		rep.violate("generate", "%v", err)
		return rep
	}
	rc := buildRTOS(r, net, cfg)
	stimuli, horizon := buildStimuli(r, net, cfg)

	// Specialization needs evidence: a behavioral profiling pre-run
	// over the identical timeline captures per-module TEST outcome
	// frequencies. A failing pre-run leaves prof nil — the checked
	// runs then execute unspecialized and report the underlying
	// failure themselves.
	var prof *profile.Profile
	if cfg.Specialize {
		col := profile.NewCollector()
		preOpt := sim.Options{Cfg: rc, Mode: sim.Behavioral, Probe: col, Reduce: cfg.Reduce}
		if _, err, pmsg := runGuarded(net, stimuli, horizon, preOpt); err == nil && pmsg == "" {
			prof = col.Profile()
		}
	}

	type modeRun struct {
		res   *sim.Result
		model *Model
		ok    bool
	}
	run := func(mode sim.Mode, label string, ms *ModeStats) modeRun {
		model := NewModel()
		opt := sim.Options{
			Cfg: rc, Mode: mode, Probe: model, Reduce: cfg.Reduce,
			Specialize: prof,
			Check:      sim.CheckOptions{VMAgainstReference: true, CycleBounds: true},
		}
		res, err, pmsg := runGuarded(net, stimuli, horizon, opt)
		if pmsg != "" {
			ms.Panicked = true
			rep.violate("panic", "%s mode panicked: %s", label, pmsg)
			return modeRun{model: model}
		}
		if err != nil {
			ms.Err = err.Error()
			rep.violate("run-error", "%s mode: %v", label, err)
		}
		model.Finish()
		for _, v := range model.Violations() {
			rep.Violations = append(rep.Violations,
				Violation{Invariant: v.Invariant, Detail: label + " mode: " + v.Detail})
		}
		ms.Serial = model.Serial()
		ms.Contended = model.Contended()
		ms.Lost = model.TotalLost()
		if res != nil {
			ms.PollDropped = res.System.PollDropped
			for _, e := range res.Trace {
				if e.From != "env" && e.From != "poll" {
					ms.Emissions++
				}
			}
		}
		return modeRun{res: res, model: model, ok: err == nil && res != nil}
	}

	beh := run(sim.Behavioral, "behavioral", &rep.Behavioral)
	vme := run(sim.VMExact, "vm", &rep.VMExact)

	// Strict cross-mode comparison: per-signal output traces, loss
	// accounting and final states must match exactly — but only when
	// both runs are observed to be serialized (every stimulus hit a
	// quiescent system) and contention-free, so any remaining
	// difference is a genuine semantics divergence rather than legal
	// GALS nondeterminism. Overwrites of flags held by a disabled task
	// are deterministic under serialization (they are a function of the
	// task's input history), so observed loss does NOT disqualify a
	// run; only ordering races do. DAG fan-in and polling ports keep
	// races and latched events invisible to the model, so those regimes
	// never qualify.
	rep.Strict = cfg.Topology != randcfsm.TopoDAG && !cfg.Polling &&
		cfg.Mutant == rtos.MutantNone && beh.ok && vme.ok &&
		beh.model.Serial() && vme.model.Serial() &&
		beh.model.Contended() == 0 && vme.model.Contended() == 0 &&
		beh.res.System.PollDropped == 0 && vme.res.System.PollDropped == 0
	if rep.Strict {
		compareStrict(rep, beh.res, vme.res)
	}
	return rep
}

// compareStrict checks that a serialized run produced identical
// per-signal emission sequences, task accounting and final states in
// both modes.
func compareStrict(rep *Report, a, b *sim.Result) {
	sa, sb := traceSeqs(a.Trace), traceSeqs(b.Trace)
	names := map[string]bool{}
	for n := range sa {
		names[n] = true
	}
	for n := range sb {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		va, vb := sa[n], sb[n]
		if len(va) != len(vb) {
			rep.violate("trace-divergence",
				"signal %s emitted %d times behavioral vs %d times vm in a serialized loss-free run",
				n, len(va), len(vb))
			continue
		}
		for i := range va {
			if va[i] != vb[i] {
				rep.violate("trace-divergence",
					"signal %s emission %d: behavioral value %d, vm value %d",
					n, i, va[i], vb[i])
				break
			}
		}
	}
	for i := range a.System.Tasks {
		ta, tb := a.System.Tasks[i], b.System.Tasks[i]
		if ta.Executions != tb.Executions || ta.Fired != tb.Fired || ta.Lost != tb.Lost {
			rep.violate("state-divergence",
				"task %s accounting differs: behavioral exec/fired/lost %d/%d/%d, vm %d/%d/%d",
				ta.M.Name, ta.Executions, ta.Fired, ta.Lost, tb.Executions, tb.Fired, tb.Lost)
		}
		for _, sv := range ta.M.States {
			if ta.State(sv) != tb.State(sv) {
				rep.violate("state-divergence",
					"task %s final state %s: behavioral %d, vm %d",
					ta.M.Name, sv.Name, ta.State(sv), tb.State(sv))
			}
		}
	}
}

// RandomConfig draws a scenario shape from the seeded stream; the
// campaign uses it to diversify coverage while staying replayable.
func RandomConfig(r *rand.Rand, mutant rtos.Mutant) Config {
	topos := []randcfsm.Topology{
		randcfsm.TopoIndependent, randcfsm.TopoChain,
		randcfsm.TopoChain, randcfsm.TopoDAG,
	}
	c := Config{
		Machines: 2 + r.Intn(4),
		Topology: topos[r.Intn(len(topos))],
		Stimuli:  4 + r.Intn(16),
		Gap:      int64(20_000 + r.Intn(80_000)),
		Policy:   rtos.RoundRobin,
		Faults:   Fault(r.Intn(int(faultAll) + 1)),
		Mutant:   mutant,
	}
	if r.Intn(2) == 0 {
		c.Policy = rtos.StaticPriority
		if r.Intn(3) == 0 {
			c.Preempt = true
		}
	}
	if r.Intn(3) == 0 {
		c.Polling = true
	}
	if r.Intn(3) == 0 {
		c.HW = true
	}
	if r.Intn(3) == 0 {
		c.Chains = true
	}
	// Drawn after every pre-existing knob so adding reduction did not
	// reshuffle the scenario shapes of historical seeds.
	if r.Intn(2) == 0 {
		c.Reduce = true
	}
	// Same precedent as Reduce: drawn last so historical seeds keep
	// their shapes, they just gain an occasional storm on top.
	if r.Intn(3) == 0 {
		c.Storm = true
	}
	// Specialize rides the same rule: appended after every historical
	// knob, so earlier seeds keep their shapes and just sometimes gain
	// a profiling pre-run plus hot-path-reordered task graphs.
	if r.Intn(3) == 0 {
		c.Specialize = true
	}
	return c
}

// configSeed derives the config-shaping stream from the run seed; the
// two streams must differ or the scenario shape and content correlate.
func configSeed(seed int64) int64 { return seed*2654435761 + 0x9e3779b9 }

// CampaignResult summarizes a fuzz campaign.
type CampaignResult struct {
	Runs     int
	Strict   int // runs that qualified for strict comparison
	Failures []*Report
}

// Campaign runs `runs` seeds starting at startSeed. With randomize,
// each seed draws its own scenario shape via RandomConfig (keeping
// cfg.Mutant); otherwise every seed replays cfg. Failures are shrunk
// before reporting. Progress goes to w when non-nil.
func Campaign(startSeed int64, runs int, cfg Config, randomize bool, w io.Writer) *CampaignResult {
	out := &CampaignResult{}
	for i := 0; i < runs; i++ {
		seed := startSeed + int64(i)
		c := cfg
		if randomize {
			c = RandomConfig(rand.New(rand.NewSource(configSeed(seed))), cfg.Mutant)
		}
		rep := RunOne(seed, c)
		out.Runs++
		if rep.Strict {
			out.Strict++
		}
		if rep.Failed() {
			if w != nil {
				rep.Format(w)
			}
			if min, _ := Shrink(seed, rep.Config, 64); min.Failed() && min.Config != rep.Config {
				if w != nil {
					fmt.Fprintf(w, "  shrunk: %s\n", min.Repro())
				}
				rep = min
			}
			out.Failures = append(out.Failures, rep)
		}
	}
	return out
}

// shrinkCandidates proposes strictly simpler configs.
func shrinkCandidates(c Config) []Config {
	var out []Config
	add := func(mut func(*Config)) {
		d := c
		mut(&d)
		out = append(out, d)
	}
	if c.Machines > 1 {
		add(func(d *Config) { d.Machines-- })
	}
	if c.Stimuli > 1 {
		add(func(d *Config) { d.Stimuli /= 2 })
		add(func(d *Config) { d.Stimuli-- })
	}
	for _, fn := range faultNames {
		if c.Faults&fn.bit != 0 {
			bit := fn.bit
			add(func(d *Config) { d.Faults &^= bit })
		}
	}
	if c.Preempt {
		add(func(d *Config) { d.Preempt = false })
	}
	if c.Polling {
		add(func(d *Config) { d.Polling = false })
	}
	if c.HW {
		add(func(d *Config) { d.HW = false })
	}
	if c.Chains {
		add(func(d *Config) { d.Chains = false })
	}
	if c.Reduce {
		add(func(d *Config) { d.Reduce = false })
	}
	if c.Storm {
		add(func(d *Config) { d.Storm = false })
	}
	if c.Specialize {
		add(func(d *Config) { d.Specialize = false })
	}
	if c.Policy == rtos.StaticPriority && !c.Preempt {
		add(func(d *Config) { d.Policy = rtos.RoundRobin })
	}
	return out
}

// Shrink greedily minimizes a failing configuration: each step adopts
// the first simpler config that still fails under the same seed, until
// a fixpoint or the run budget is exhausted. Returns the minimal
// failing report and the number of runs spent. Determinism of RunOne
// makes the result stable.
func Shrink(seed int64, cfg Config, budget int) (*Report, int) {
	best := RunOne(seed, cfg)
	spent := 1
	if !best.Failed() {
		return best, spent
	}
	for spent < budget {
		improved := false
		for _, cand := range shrinkCandidates(best.Config) {
			rep := RunOne(seed, cand)
			spent++
			if rep.Failed() {
				best = rep
				improved = true
				break
			}
			if spent >= budget {
				break
			}
		}
		if !improved {
			break
		}
	}
	return best, spent
}
