// Package mvar layers multi-valued variables on top of the binary
// internal/bdd engine. A multi-valued variable with n possible values
// is encoded onto ceil(log2 n) Boolean variables that are bound into
// one reordering group, so dynamic sifting moves the whole variable as
// a unit and the encoding bits never interleave with other variables.
//
// The POLIS flow uses multi-valued variables for CFSM state variables
// and for the multi-way decision points of the reactive function; the
// corresponding s-graph TEST vertices then have one child per value
// (the paper's "more than two children" extension).
package mvar

import (
	"fmt"

	"polis/internal/bdd"
)

// Kind distinguishes input variables (tested by the reactive function)
// from output variables (assigned by it). The distinction drives the
// ordering constraint "an output may not sift above an input in its
// support".
type Kind int

const (
	Input Kind = iota
	Output
)

// MV is one multi-valued variable.
type MV struct {
	Name  string
	Size  int // number of values, >= 2
	Kind  Kind
	Bits  []bdd.Var // encoding bits, most significant first
	Index int       // position within the Space
	group int32
}

// NumBits returns the number of encoding bits of v.
func (v *MV) NumBits() int { return len(v.Bits) }

// Space owns a set of multi-valued variables sharing one BDD manager.
type Space struct {
	M     *bdd.Manager
	Vars  []*MV
	byBit map[bdd.Var]*MV
}

// NewSpace creates an empty variable space over a fresh manager.
func NewSpace() *Space {
	return &Space{M: bdd.New(), byBit: make(map[bdd.Var]*MV)}
}

// bitsFor returns the number of bits needed to encode n values.
func bitsFor(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}

// NewMV creates a multi-valued variable with the given domain size at
// the bottom of the current order. Size 2 yields a plain Boolean
// variable (one bit).
func (s *Space) NewMV(name string, size int, kind Kind) *MV {
	if size < 2 {
		panic(fmt.Sprintf("mvar: domain of %q must have >= 2 values, got %d", name, size))
	}
	v := &MV{Name: name, Size: size, Kind: kind, Index: len(s.Vars)}
	nb := bitsFor(size)
	for i := 0; i < nb; i++ {
		b := s.M.NewVar(fmt.Sprintf("%s.%d", name, nb-1-i))
		v.Bits = append(v.Bits, b)
		s.byBit[b] = v
	}
	if err := s.M.Group(v.Bits...); err != nil {
		panic("mvar: fresh bits must be contiguous: " + err.Error())
	}
	v.group = s.M.GroupOf(v.Bits[0])
	s.Vars = append(s.Vars, v)
	return v
}

// Owner returns the multi-valued variable owning the given BDD bit.
func (s *Space) Owner(b bdd.Var) *MV { return s.byBit[b] }

// Group returns the reordering-group id of v.
func (s *Space) Group(v *MV) int32 { return v.group }

// Eq returns the BDD cube asserting v == val.
func (s *Space) Eq(v *MV, val int) bdd.Node {
	if val < 0 || val >= v.Size {
		panic(fmt.Sprintf("mvar: value %d out of range for %s (size %d)", val, v.Name, v.Size))
	}
	vals := make([]bool, len(v.Bits))
	for i, b := 0, len(v.Bits); i < b; i++ {
		vals[i] = val&(1<<(b-1-i)) != 0
	}
	return s.M.Cube(v.Bits, vals)
}

// CofactorValue restricts f by the assignment v == val.
func (s *Space) CofactorValue(f bdd.Node, v *MV, val int) bdd.Node {
	for i, b := 0, len(v.Bits); i < b; i++ {
		f = s.M.Cofactor(f, v.Bits[i], val&(1<<(b-1-i)) != 0)
	}
	return f
}

// Exists smooths all bits of the given variables out of f.
func (s *Space) Exists(f bdd.Node, vars ...*MV) bdd.Node {
	var bits []bdd.Var
	for _, v := range vars {
		bits = append(bits, v.Bits...)
	}
	return s.M.Exists(f, bits...)
}

// DependsOn reports whether f depends on any bit of v.
func (s *Space) DependsOn(f bdd.Node, v *MV) bool {
	for _, b := range v.Bits {
		if s.M.DependsOn(f, b) {
			return true
		}
	}
	return false
}

// Support returns the multi-valued variables f depends on, in Space
// order.
func (s *Space) Support(f bdd.Node) []*MV {
	seen := make(map[*MV]bool)
	var out []*MV
	for _, b := range s.M.Support(f) {
		v := s.byBit[b]
		if v != nil && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	// Order by Index for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Index < out[j-1].Index; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Top returns the multi-valued variable owning the topmost bit of f,
// or nil for terminals.
func (s *Space) Top(f bdd.Node) *MV {
	if f.IsConst() {
		return nil
	}
	return s.byBit[s.M.VarOf(f)]
}

// ValidEncoding returns the constraint that v's bits encode a value
// within [0, Size): needed when Size is not a power of two.
func (s *Space) ValidEncoding(v *MV) bdd.Node {
	f := bdd.False
	for val := 0; val < v.Size; val++ {
		f = s.M.Or(f, s.Eq(v, val))
	}
	return f
}

// EvalAssign evaluates f under the multi-valued assignment given by
// vals (indexed like s.Vars). Bits of variables missing from the map
// default to value 0.
func (s *Space) EvalAssign(f bdd.Node, vals map[*MV]int) bool {
	return s.M.Eval(f, func(b bdd.Var) bool {
		v := s.byBit[b]
		if v == nil {
			return false
		}
		val := vals[v]
		for i, bit := range v.Bits {
			if bit == b {
				return val&(1<<(len(v.Bits)-1-i)) != 0
			}
		}
		return false
	})
}

// SiftOutputsAfterSupport runs dynamic sifting under the paper's
// default constraint: every Output variable must stay below (after)
// every Input variable in the support of the characteristic function.
// supports maps each output variable to the set of input variables it
// depends on. costRoots, if non-empty, restricts the size measure to
// those functions (typically the characteristic function alone).
func (s *Space) SiftOutputsAfterSupport(supports map[*MV][]*MV, costRoots ...bdd.Node) {
	// Build the precedence relation on group ids.
	prec := make(map[[2]int32]bool)
	for out, ins := range supports {
		for _, in := range ins {
			prec[[2]int32{in.group, out.group}] = true
		}
	}
	s.M.Sift(bdd.SiftOptions{
		Roots: costRoots,
		Precede: func(a, b int32) bool {
			return prec[[2]int32{a, b}]
		},
	})
}

// SiftOutputsAfterAllInputs runs sifting with the stronger Table II
// variant: all outputs below all inputs.
func (s *Space) SiftOutputsAfterAllInputs(costRoots ...bdd.Node) {
	kindOf := make(map[int32]Kind)
	for _, v := range s.Vars {
		kindOf[v.group] = v.Kind
	}
	s.M.Sift(bdd.SiftOptions{
		Roots: costRoots,
		Precede: func(a, b int32) bool {
			return kindOf[a] == Input && kindOf[b] == Output
		},
	})
}
