package mvar

import (
	"testing"
	"testing/quick"

	"polis/internal/bdd"
)

func TestBitsFor(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5}
	for n, want := range cases {
		if got := bitsFor(n); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestEqDisjointAndComplete(t *testing.T) {
	s := NewSpace()
	v := s.NewMV("state", 5, Input)
	union := bdd.False
	for a := 0; a < v.Size; a++ {
		for b := a + 1; b < v.Size; b++ {
			if s.M.And(s.Eq(v, a), s.Eq(v, b)) != bdd.False {
				t.Errorf("Eq(%d) and Eq(%d) overlap", a, b)
			}
		}
		union = s.M.Or(union, s.Eq(v, a))
	}
	if union != s.ValidEncoding(v) {
		t.Error("union of Eq values must equal ValidEncoding")
	}
}

func TestCofactorValue(t *testing.T) {
	s := NewSpace()
	v := s.NewMV("x", 4, Input)
	w := s.NewMV("y", 2, Input)
	f := s.M.Or(
		s.M.And(s.Eq(v, 2), s.Eq(w, 1)),
		s.M.And(s.Eq(v, 3), s.Eq(w, 0)),
	)
	if got := s.CofactorValue(f, v, 2); got != s.Eq(w, 1) {
		t.Errorf("f|x=2 wrong: %s", s.M.String(got))
	}
	if got := s.CofactorValue(f, v, 0); got != bdd.False {
		t.Errorf("f|x=0 should be false: %s", s.M.String(got))
	}
}

func TestSupportAndTop(t *testing.T) {
	s := NewSpace()
	a := s.NewMV("a", 3, Input)
	b := s.NewMV("b", 2, Input)
	c := s.NewMV("c", 4, Output)
	f := s.M.And(s.Eq(a, 1), s.Eq(c, 2))
	sup := s.Support(f)
	if len(sup) != 2 || sup[0] != a || sup[1] != c {
		t.Errorf("support wrong: %v", names(sup))
	}
	if s.DependsOn(f, b) {
		t.Error("f must not depend on b")
	}
	if top := s.Top(f); top != a {
		t.Errorf("top of f should be a, got %v", top.Name)
	}
	if s.Top(bdd.True) != nil {
		t.Error("top of a constant must be nil")
	}
}

func names(vs []*MV) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out
}

func TestEvalAssign(t *testing.T) {
	s := NewSpace()
	v := s.NewMV("v", 6, Input)
	for val := 0; val < 6; val++ {
		f := s.Eq(v, val)
		for probe := 0; probe < 6; probe++ {
			got := s.EvalAssign(f, map[*MV]int{v: probe})
			if got != (probe == val) {
				t.Errorf("Eq(%d) under v=%d: got %v", val, probe, got)
			}
		}
	}
}

func TestQuickEqRoundTrip(t *testing.T) {
	s := NewSpace()
	v := s.NewMV("v", 11, Input)
	w := s.NewMV("w", 7, Input)
	prop := func(a, b uint8) bool {
		av := int(a) % v.Size
		bv := int(b) % w.Size
		f := s.M.And(s.Eq(v, av), s.Eq(w, bv))
		// Exactly the assignment (av,bv) satisfies f.
		for x := 0; x < v.Size; x++ {
			for y := 0; y < w.Size; y++ {
				sat := s.EvalAssign(f, map[*MV]int{v: x, w: y})
				if sat != (x == av && y == bv) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSiftOutputsAfterAllInputs(t *testing.T) {
	s := NewSpace()
	// Interleave creation: out, in, out, in.
	o1 := s.NewMV("o1", 2, Output)
	i1 := s.NewMV("i1", 4, Input)
	o2 := s.NewMV("o2", 2, Output)
	i2 := s.NewMV("i2", 4, Input)
	f := s.M.And(
		s.M.Xnor(s.Eq(o1, 1), s.Eq(i1, 2)),
		s.M.Xnor(s.Eq(o2, 1), s.Eq(i2, 3)),
	)
	s.M.Protect(f)
	s.SiftOutputsAfterAllInputs()
	maxIn := 0
	for _, v := range []*MV{i1, i2} {
		for _, b := range v.Bits {
			if l := s.M.Level(b); l > maxIn {
				maxIn = l
			}
		}
	}
	for _, v := range []*MV{o1, o2} {
		for _, b := range v.Bits {
			if s.M.Level(b) <= maxIn {
				t.Errorf("output bit of %s at level %d, above an input (max input level %d)",
					v.Name, s.M.Level(b), maxIn)
			}
		}
	}
	if err := s.M.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSiftOutputsAfterSupport(t *testing.T) {
	s := NewSpace()
	i1 := s.NewMV("i1", 4, Input)
	o1 := s.NewMV("o1", 2, Output)
	i2 := s.NewMV("i2", 4, Input)
	o2 := s.NewMV("o2", 2, Output)
	// o1 depends on i1 only, o2 on i2 only.
	f := s.M.And(
		s.M.Xnor(s.Eq(o1, 1), s.Eq(i1, 2)),
		s.M.Xnor(s.Eq(o2, 1), s.Eq(i2, 3)),
	)
	s.M.Protect(f)
	before := s.M.Size(f)
	s.SiftOutputsAfterSupport(map[*MV][]*MV{o1: {i1}, o2: {i2}})
	after := s.M.Size(f)
	if after > before {
		t.Errorf("constrained sift grew the BDD: %d -> %d", before, after)
	}
	// o1 must still be below i1's bits, o2 below i2's.
	if s.M.Level(o1.Bits[0]) < s.M.Level(i1.Bits[len(i1.Bits)-1]) {
		t.Error("o1 sifted above i1")
	}
	if s.M.Level(o2.Bits[0]) < s.M.Level(i2.Bits[len(i2.Bits)-1]) {
		t.Error("o2 sifted above i2")
	}
	if err := s.M.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupBitsStayAdjacent(t *testing.T) {
	s := NewSpace()
	a := s.NewMV("a", 8, Input) // 3 bits
	b := s.NewMV("b", 8, Input) // 3 bits
	f := bdd.False
	for x := 0; x < 8; x++ {
		f = s.M.Or(f, s.M.And(s.Eq(a, x), s.Eq(b, 7-x)))
	}
	s.M.Protect(f)
	s.M.Sift(bdd.SiftOptions{})
	for _, v := range []*MV{a, b} {
		for i := 1; i < len(v.Bits); i++ {
			if s.M.Level(v.Bits[i]) != s.M.Level(v.Bits[i-1])+1 {
				t.Errorf("bits of %s no longer adjacent after sift", v.Name)
			}
		}
	}
}

func TestOwnerAndGroup(t *testing.T) {
	s := NewSpace()
	a := s.NewMV("a", 5, Input)
	b := s.NewMV("b", 2, Output)
	for _, bit := range a.Bits {
		if s.Owner(bit) != a {
			t.Errorf("owner of %v should be a", bit)
		}
	}
	if s.Owner(b.Bits[0]) != b {
		t.Error("owner of b's bit wrong")
	}
	if s.Group(a) == s.Group(b) {
		t.Error("distinct variables must have distinct groups")
	}
	if a.NumBits() != 3 || b.NumBits() != 1 {
		t.Errorf("bit widths: %d %d", a.NumBits(), b.NumBits())
	}
}
