package profile_test

import (
	"bytes"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/expr"
	"polis/internal/profile"
	"polis/internal/rtos"
)

// module builds a small two-test CFSM for driving the collector.
func module(name string) *cfsm.CFSM {
	c := cfsm.New(name)
	in := c.AddInput("c", false)
	y := c.AddOutput("y", true)
	a := c.AddState("a", 0, 0)
	pc := c.Present(in)
	eq := c.Pred(expr.Eq(expr.V("a"), expr.V("?c")))
	c.AddTransition([]cfsm.Cond{cfsm.On(pc, 1), cfsm.On(eq, 1)},
		c.Assign(a, expr.C(0)), c.Emit(y))
	c.AddTransition([]cfsm.Cond{cfsm.On(pc, 1), cfsm.On(eq, 0)},
		c.Assign(a, expr.Add(expr.V("a"), expr.C(1))))
	return c
}

// snap builds a snapshot with the input present/valued as given.
func snap(c *cfsm.CFSM, present bool, val, state int64) cfsm.Snapshot {
	s := c.NewSnapshot()
	in := c.Inputs[0]
	s.Present[in] = present
	s.Values[in] = val
	s.State[c.States[0]] = state
	return s
}

func TestCollectorAggregates(t *testing.T) {
	c := module("m")
	task := &rtos.Task{M: c}
	col := profile.NewCollector()

	// 3x (present, pred true), 1x (present, pred false), 2x absent.
	for i := 0; i < 3; i++ {
		col.TaskBegan(task, snap(c, true, 4, 4), 0)
		col.TaskFinished(task, cfsm.Reaction{Fired: true}, 10, 0)
	}
	col.TaskBegan(task, snap(c, true, 4, 1), 0)
	col.TaskFinished(task, cfsm.Reaction{Fired: true}, 12, 0)
	for i := 0; i < 2; i++ {
		col.TaskBegan(task, snap(c, false, 0, 0), 0)
		col.TaskFinished(task, cfsm.Reaction{}, 3, 0)
	}

	p := col.Profile()
	mp := p.Module("m")
	if mp == nil {
		t.Fatal("module aggregate missing")
	}
	if mp.Reactions != 6 || mp.Fired != 4 || mp.Cycles != 48 {
		t.Fatalf("reactions=%d fired=%d cycles=%d", mp.Reactions, mp.Fired, mp.Cycles)
	}
	if len(mp.TestNames) != len(c.Tests) {
		t.Fatalf("test columns %d, want %d", len(mp.TestNames), len(c.Tests))
	}
	var total int64
	for _, n := range mp.Outcomes {
		total += n
	}
	if total != 6 {
		t.Fatalf("outcome observations %d, want 6", total)
	}
	if len(mp.Outcomes) != 3 {
		t.Fatalf("distinct outcome vectors %d, want 3: %v", len(mp.Outcomes), mp.Outcomes)
	}
	if sp := mp.Spec(); sp == nil || len(sp.Outcomes) != 3 {
		t.Fatal("Spec conversion lost outcomes")
	}
	if p.Module("other") != nil || (*profile.Profile)(nil).Module("m") != nil {
		t.Fatal("Module must be nil-safe")
	}
}

func TestProfileMergeAndJSON(t *testing.T) {
	c := module("m")
	task := &rtos.Task{M: c}
	mk := func(present bool, n int) *profile.Profile {
		col := profile.NewCollector()
		for i := 0; i < n; i++ {
			col.TaskBegan(task, snap(c, present, 1, 1), 0)
			col.TaskFinished(task, cfsm.Reaction{Fired: present}, 5, 0)
		}
		return col.Profile()
	}
	a, b := mk(true, 3), mk(false, 2)
	var merged profile.Profile
	merged.Merge(a)
	merged.Merge(b)
	mp := merged.Module("m")
	if mp == nil || mp.Reactions != 5 || mp.Fired != 3 {
		t.Fatalf("merge: %+v", mp)
	}

	var buf bytes.Buffer
	if err := merged.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := profile.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bp := back.Module("m")
	if bp == nil || bp.Reactions != 5 || len(bp.Outcomes) != len(mp.Outcomes) {
		t.Fatalf("roundtrip: %+v", bp)
	}
	if bp.Fingerprint() != mp.Fingerprint() {
		t.Fatal("fingerprint must survive the JSON roundtrip")
	}
	// Evidence change must change the fingerprint.
	more := mk(true, 1)
	merged.Merge(more)
	if merged.Module("m").Fingerprint() == bp.Fingerprint() {
		t.Fatal("fingerprint must track outcome counts")
	}
}
