// Package profile collects and aggregates execution profiles from
// co-simulation campaigns. A Collector attaches to the RTOS probe
// stream (rtos.Probe) and records, per module, how often each full
// test-outcome vector occurred and how the module's reactions fired —
// the behavioural evidence the profile-guided specialization pass
// (sgraph.Specialize) uses to put hot outcomes on fall-through arcs.
// Profiles serialise to JSON so a long capture run and the synthesis
// run that consumes it can be separate processes (polisc -profile).
package profile

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"polis/internal/cfsm"
	"polis/internal/rtos"
	"polis/internal/sgraph"
)

// ModuleProfile is the aggregate for one module (CFSM), keyed by the
// outcome-vector encoding of sgraph.OutcomeKey over TestNames order.
type ModuleProfile struct {
	Module    string           `json:"module"`
	TestNames []string         `json:"tests"`
	Outcomes  map[string]int64 `json:"outcomes"`
	Reactions int64            `json:"reactions"`
	Fired     int64            `json:"fired"`
	Cycles    int64            `json:"cycles"`
}

// Spec converts the aggregate into the decoupled shape the sgraph
// specialization pass consumes. Returns nil when there is nothing to
// specialize on.
func (m *ModuleProfile) Spec() *sgraph.SpecializeProfile {
	if m == nil || len(m.Outcomes) == 0 {
		return nil
	}
	return &sgraph.SpecializeProfile{TestNames: m.TestNames, Outcomes: m.Outcomes}
}

// Fingerprint returns a stable content hash of the profile evidence,
// used to key synthesis caches: two captures that would drive the
// specialization pass identically hash identically, regardless of map
// iteration order.
func (m *ModuleProfile) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "module %s\n", m.Module)
	for _, t := range m.TestNames {
		fmt.Fprintf(h, "test %s\n", t)
	}
	keys := make([]string, 0, len(m.Outcomes))
	for k := range m.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "outcome %s=%d\n", k, m.Outcomes[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// merge folds other into m (same module).
func (m *ModuleProfile) merge(other *ModuleProfile) {
	if m.Outcomes == nil {
		m.Outcomes = make(map[string]int64)
	}
	// Outcome keys only merge meaningfully when the column order
	// agrees; a drifted test list (re-synthesised module) resets the
	// aggregate rather than mixing incompatible encodings.
	if len(m.TestNames) != len(other.TestNames) || !equalStrings(m.TestNames, other.TestNames) {
		if m.Reactions == 0 {
			m.TestNames = append([]string(nil), other.TestNames...)
		} else {
			return
		}
	}
	for k, c := range other.Outcomes {
		m.Outcomes[k] += c
	}
	m.Reactions += other.Reactions
	m.Fired += other.Fired
	m.Cycles += other.Cycles
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Profile is a campaign-wide execution profile, one aggregate per
// module name.
type Profile struct {
	Modules map[string]*ModuleProfile `json:"modules"`
}

// Module returns the aggregate for a module name, nil-safe.
func (p *Profile) Module(name string) *ModuleProfile {
	if p == nil {
		return nil
	}
	return p.Modules[name]
}

// Merge folds other into p, module by module.
func (p *Profile) Merge(other *Profile) {
	if other == nil {
		return
	}
	if p.Modules == nil {
		p.Modules = make(map[string]*ModuleProfile)
	}
	for name, om := range other.Modules {
		m := p.Modules[name]
		if m == nil {
			m = &ModuleProfile{Module: name}
			p.Modules[name] = m
		}
		m.merge(om)
	}
}

// WriteJSON serialises the profile.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadJSON deserialises a profile written by WriteJSON.
func ReadJSON(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	return &p, nil
}

// Load reads a profile from a JSON file.
func Load(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}

// Save writes the profile to a JSON file.
func (p *Profile) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Collector implements rtos.Probe and aggregates the stream into a
// Profile. Attaching a probe makes the runtime materialise map-based
// snapshots, so collection costs allocations by design — profiles are
// captured on dedicated runs, not in the zero-alloc hot path. The
// collector is safe for concurrent probes (one RTOS per partition
// island would otherwise race on the shared aggregates).
type Collector struct {
	mu      sync.Mutex
	modules map[string]*ModuleProfile
	vec     []int // scratch outcome vector
}

var _ rtos.Probe = (*Collector)(nil)

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{modules: make(map[string]*ModuleProfile)}
}

// TaskPosted is part of rtos.Probe; deliveries carry no outcome
// information, so it is a no-op.
func (c *Collector) TaskPosted(t *rtos.Task, sig *cfsm.Signal, val int64, now int64, env bool) {}

// TaskBegan records the full test-outcome vector of the frozen
// snapshot the execution will react under.
func (c *Collector) TaskBegan(t *rtos.Task, snap cfsm.Snapshot, now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.moduleLocked(t.M)
	if cap(c.vec) < len(t.M.Tests) {
		c.vec = make([]int, len(t.M.Tests))
	}
	vec := c.vec[:len(t.M.Tests)]
	for i, test := range t.M.Tests {
		vec[i] = snap.EvalTest(test)
	}
	m.Outcomes[sgraph.OutcomeKey(vec)]++
}

// TaskFinished accumulates reaction counts and execution cycles.
func (c *Collector) TaskFinished(t *rtos.Task, r cfsm.Reaction, cycles int64, now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.moduleLocked(t.M)
	m.Reactions++
	if r.Fired {
		m.Fired++
	}
	m.Cycles += cycles
}

func (c *Collector) moduleLocked(cf *cfsm.CFSM) *ModuleProfile {
	m := c.modules[cf.Name]
	if m == nil {
		names := make([]string, len(cf.Tests))
		for i, t := range cf.Tests {
			names[i] = t.Name()
		}
		m = &ModuleProfile{
			Module:    cf.Name,
			TestNames: names,
			Outcomes:  make(map[string]int64),
		}
		c.modules[cf.Name] = m
	}
	return m
}

// Profile returns a deep copy of the aggregates collected so far, so
// the caller can keep simulating while consuming a stable snapshot.
func (c *Collector) Profile() *Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := &Profile{Modules: make(map[string]*ModuleProfile, len(c.modules))}
	for name, m := range c.modules {
		cp := &ModuleProfile{
			Module:    m.Module,
			TestNames: append([]string(nil), m.TestNames...),
			Outcomes:  make(map[string]int64, len(m.Outcomes)),
			Reactions: m.Reactions,
			Fired:     m.Fired,
			Cycles:    m.Cycles,
		}
		for k, v := range m.Outcomes {
			cp.Outcomes[k] = v
		}
		p.Modules[name] = cp
	}
	return p
}
