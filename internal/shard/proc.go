// Process-mode sharding: each shard becomes one `polisc shard-worker`
// OS process. The driver hands a Job (sub-network in the polisd wire
// format plus the shared cache directory) to each worker's stdin; the
// worker synthesizes its modules through the shared on-disk cache and
// emits one NDJSON Result line per module. Artifacts themselves never
// cross the pipe: the disk cache is the shuffle layer, so the reducer
// re-reads every artifact by fingerprint — which also makes a warm
// second run an all-disk-hit run for free.

package shard

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"time"

	"polis/internal/cfsm"
	"polis/internal/pipeline"
	"polis/internal/polisd"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

// Job is the unit of work handed to one shard-worker process on its
// standard input.
type Job struct {
	Shard    int                 `json:"shard"`
	CacheDir string              `json:"cache_dir"`
	Network  *polisd.WireNetwork `json:"network"`
	Options  polisd.WireOptions  `json:"options"`
}

// Result is one NDJSON line a shard worker emits per module, in the
// shard's module order. The artifact stays in the shared cache; the
// fingerprint is the reducer's key to fetch it back.
type Result struct {
	Shard       int     `json:"shard"`
	Module      string  `json:"module"`
	Fingerprint string  `json:"fingerprint"`
	Cache       string  `json:"cache"` // "miss" | "mem" | "disk" | "dedup"
	Ms          float64 `json:"ms"`
	Error       string  `json:"error,omitempty"`
}

// wireOptions maps pipeline options back onto the wire form, erroring
// on options the wire cannot carry (a silent drop would change the
// workers' fingerprints and break the shuffle-layer lookup).
func wireOptions(opt pipeline.Options) (polisd.WireOptions, error) {
	var w polisd.WireOptions
	switch opt.Target {
	case nil:
	default:
		switch opt.Target.Name {
		case vm.HC11().Name:
			w.Target = "hc11"
		case vm.R3K().Name:
			w.Target = "r3k"
		default:
			return w, fmt.Errorf("shard: target %q not supported in process mode", opt.Target.Name)
		}
	}
	switch opt.Ordering {
	case sgraph.OrderSiftAfterSupport:
		w.Ordering = "default"
	case sgraph.OrderNaive:
		w.Ordering = "naive"
	case sgraph.OrderSiftInputsFirst:
		w.Ordering = "inputs-first"
	default:
		return w, fmt.Errorf("shard: ordering %v not supported in process mode", opt.Ordering)
	}
	w.OptimizeCopies = opt.Codegen.OptimizeCopies
	w.IfThreshold = opt.Codegen.IfThreshold
	w.UseFalsePaths = opt.UseFalsePaths
	w.Reduce = opt.Reduce
	if opt.Reduce && opt.ReduceOpt != (sgraph.ReduceOptions{}) {
		return w, errors.New("shard: tuned reduce options not supported in process mode")
	}
	if opt.Profile != nil {
		return w, errors.New("shard: profile-guided specialization not supported in process mode")
	}
	return w, nil
}

// Worker is the body of the `polisc shard-worker` subcommand: decode
// one Job from r, synthesize its modules in order through the shared
// on-disk cache, and write one Result line per module to w. Module
// failures are reported in-band (Result.Error) and do not stop the
// remaining modules — shards are independent, so the driver aggregates
// errors across all of them.
func Worker(r io.Reader, w io.Writer) error {
	var job Job
	if err := json.NewDecoder(r).Decode(&job); err != nil {
		return fmt.Errorf("shard worker: decode job: %w", err)
	}
	if job.CacheDir == "" {
		return errors.New("shard worker: job has no cache_dir (the shared disk cache is the shuffle layer)")
	}
	net, err := polisd.DecodeNetwork(job.Network)
	if err != nil {
		return fmt.Errorf("shard worker: %w", err)
	}
	opt, err := job.Options.Options()
	if err != nil {
		return fmt.Errorf("shard worker: %w", err)
	}
	cache, err := pipeline.NewCache(job.CacheDir)
	if err != nil {
		return fmt.Errorf("shard worker: %w", err)
	}
	enc := json.NewEncoder(w)
	for _, m := range net.Machines {
		res := Result{
			Shard:       job.Shard,
			Module:      m.Name,
			Fingerprint: pipeline.Fingerprint(m, opt),
		}
		t0 := time.Now()
		_, out, err := cache.SynthesizeCached(context.Background(), m, opt, nil)
		res.Ms = float64(time.Since(t0).Microseconds()) / 1000
		res.Cache = out.String()
		if err != nil {
			res.Error = err.Error()
		}
		if err := enc.Encode(res); err != nil {
			return fmt.Errorf("shard worker: emit result: %w", err)
		}
	}
	return nil
}

// RunProcs is Run with each shard in its own OS process: workerCmd is
// the argv prefix of the worker (e.g. ["polisc", "shard-worker"]),
// spawned once per non-empty shard with the shard's Job on stdin. The
// shared opt.CacheDir is the shuffle layer: workers publish artifacts
// there (the cross-process-safe CreateTemp+rename publish keeps
// concurrent same-fingerprint writers from tearing files) and the
// reduce phase fetches every artifact back by fingerprint, in network
// order, so the output is byte-identical to an in-process run.
func RunProcs(ctx context.Context, net *cfsm.Network, opt Options, workerCmd []string) (*Report, error) {
	if opt.CacheDir == "" {
		return nil, errors.New("shard: process mode needs a cache directory (-cache)")
	}
	if len(workerCmd) == 0 {
		return nil, errors.New("shard: process mode needs a worker command")
	}
	wopt, err := wireOptions(opt.Pipeline)
	if err != nil {
		return nil, err
	}
	machines := net.Machines
	shards := opt.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(machines) {
		shards = len(machines)
	}
	if shards < 1 {
		shards = 1
	}
	parts := Partition(machines, shards, opt.Strategy)

	master := pipeline.NewCollector()
	master.Event(pipeline.Event{Kind: pipeline.EvRunStart, Modules: len(machines), Workers: shards})
	start := time.Now()

	stats := make([]ShardStat, shards)
	resultsByModule := make(map[string]Result, len(machines))
	procErrs := make([]error, shards)
	var mu sync.Mutex // guards resultsByModule
	var wg sync.WaitGroup
	for si := range parts {
		stats[si].Shard = si
		stats[si].Modules = len(parts[si])
		if len(parts[si]) == 0 {
			continue
		}
		members := make([]*cfsm.CFSM, len(parts[si]))
		for i, mi := range parts[si] {
			members[i] = machines[mi]
		}
		sub := net.Subnet(fmt.Sprintf("%s-shard%d", net.Name, si), members)
		job, err := json.Marshal(Job{
			Shard:    si,
			CacheDir: opt.CacheDir,
			Network:  polisd.EncodeNetwork(sub),
			Options:  wopt,
		})
		if err != nil {
			return nil, fmt.Errorf("shard %d: encode job: %w", si, err)
		}
		wg.Add(1)
		go func(si int, job []byte) {
			defer wg.Done()
			t0 := time.Now()
			defer func() { stats[si].Wall = time.Since(t0) }()
			cmd := exec.CommandContext(ctx, workerCmd[0], workerCmd[1:]...)
			cmd.Stdin = bytes.NewReader(job)
			var stderr bytes.Buffer
			cmd.Stderr = &stderr
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				procErrs[si] = fmt.Errorf("shard %d: %w", si, err)
				return
			}
			if err := cmd.Start(); err != nil {
				procErrs[si] = fmt.Errorf("shard %d: start worker: %w", si, err)
				return
			}
			sc := bufio.NewScanner(stdout)
			sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
			for sc.Scan() {
				var res Result
				if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
					procErrs[si] = fmt.Errorf("shard %d: bad result line: %w", si, err)
					break
				}
				mu.Lock()
				resultsByModule[res.Module] = res
				mu.Unlock()
				stats[si].count(outcomeFromString(res.Cache))
			}
			if err := cmd.Wait(); err != nil && procErrs[si] == nil {
				msg := strings.TrimSpace(stderr.String())
				if msg != "" {
					procErrs[si] = fmt.Errorf("shard %d: worker failed: %v: %s", si, err, msg)
				} else {
					procErrs[si] = fmt.Errorf("shard %d: worker failed: %w", si, err)
				}
			}
		}(si, job)
	}
	wg.Wait()
	for _, err := range procErrs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("shard: run cancelled: %w", err)
	}

	// Reduce: fetch every artifact from the shuffle layer by
	// fingerprint, in network order. A fresh cache instance keeps the
	// reducer honest — it can only see what the workers published.
	popt := opt.Pipeline
	rcache, err := pipeline.NewCache(opt.CacheDir)
	if err != nil {
		return nil, err
	}
	arts := make([]*pipeline.Artifact, len(machines))
	var moduleErrs []error
	for i, m := range machines {
		res, ok := resultsByModule[m.Name]
		if !ok {
			moduleErrs = append(moduleErrs, fmt.Errorf("module %s: no result from its shard worker", m.Name))
			continue
		}
		if res.Error != "" {
			moduleErrs = append(moduleErrs, fmt.Errorf("module %s: %s", m.Name, res.Error))
			master.Event(pipeline.Event{Kind: pipeline.EvModuleError, Module: m.Name, Err: errors.New(res.Error)})
			continue
		}
		// Mirror the worker's outcome into the merged collector so the
		// stats report attributes lookups the same way an in-process
		// run would (per-stage timings stay in the worker processes).
		switch outcomeFromString(res.Cache) {
		case pipeline.OutcomeMiss:
			master.Event(pipeline.Event{Kind: pipeline.EvCacheMiss, Module: m.Name})
		case pipeline.OutcomeDedup:
			master.Event(pipeline.Event{Kind: pipeline.EvDedup, Module: m.Name})
		case pipeline.OutcomeDiskHit:
			master.Event(pipeline.Event{Kind: pipeline.EvCacheHit, Module: m.Name, FromDisk: true})
		case pipeline.OutcomeMemHit:
			master.Event(pipeline.Event{Kind: pipeline.EvCacheHit, Module: m.Name})
		}
		key := pipeline.Fingerprint(m, popt)
		if res.Fingerprint != key {
			moduleErrs = append(moduleErrs, fmt.Errorf("module %s: worker fingerprint %.12s != driver %.12s (options drifted?)",
				m.Name, res.Fingerprint, key))
			continue
		}
		a, _, ok := rcache.Get(key)
		if !ok {
			moduleErrs = append(moduleErrs, fmt.Errorf("module %s: artifact %.12s missing from the shuffle cache", m.Name, key))
			continue
		}
		arts[i] = a
	}

	cst := rcache.Stats()
	master.Event(pipeline.Event{Kind: pipeline.EvRunEnd, Duration: time.Since(start), Cache: &cst})
	rep := &Report{
		Artifacts: arts,
		Shards:    stats,
		Wall:      time.Since(start),
		Collector: master,
		Procs:     true,
	}
	for _, st := range stats {
		rep.Total.Miss += st.Miss
		rep.Total.Mem += st.Mem
		rep.Total.Disk += st.Disk
		rep.Total.Dedup += st.Dedup
		rep.Total.Modules += st.Modules
	}
	if len(moduleErrs) > 0 {
		return nil, fmt.Errorf("shard: %d of %d module(s) failed: %w",
			len(moduleErrs), len(machines), errors.Join(moduleErrs...))
	}
	return rep, nil
}

// outcomeFromString reverses pipeline.Outcome.String for the wire.
func outcomeFromString(s string) pipeline.Outcome {
	switch s {
	case "mem":
		return pipeline.OutcomeMemHit
	case "disk":
		return pipeline.OutcomeDiskHit
	case "dedup":
		return pipeline.OutcomeDedup
	default:
		return pipeline.OutcomeMiss
	}
}
