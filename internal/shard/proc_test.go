package shard_test

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"

	"polis/internal/pipeline"
	"polis/internal/shard"
)

// TestMain doubles as the shard worker: RunProcs re-executes this test
// binary with the "shard-worker-proc" argument, which speaks the
// Job/Result protocol on stdin/stdout — the same re-exec idiom the
// real `polisc shard-worker` subcommand uses.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "shard-worker-proc" {
		if err := shard.Worker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func workerCmd(t *testing.T) []string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return []string{exe, "shard-worker-proc"}
}

// TestRunProcsMatchesInProcess: two worker processes sharing one cache
// directory produce the same artifacts, in the same order, as the
// in-process driver — the disk cache really is the shuffle layer. A
// second process-mode run over the same directory is served entirely
// from disk.
func TestRunProcsMatchesInProcess(t *testing.T) {
	net := testNetwork(t, 11, 8)
	cache, err := pipeline.NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	inproc, err := shard.Run(context.Background(), net, shard.Options{Shards: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opt := shard.Options{Shards: 2, CacheDir: dir}
	procs, err := shard.RunProcs(context.Background(), net, opt, workerCmd(t))
	if err != nil {
		t.Fatal(err)
	}
	if !procs.Procs {
		t.Error("report does not mark the run as process-mode")
	}
	if len(procs.Artifacts) != len(inproc.Artifacts) {
		t.Fatalf("%d artifacts, want %d", len(procs.Artifacts), len(inproc.Artifacts))
	}
	for i, a := range procs.Artifacts {
		b := inproc.Artifacts[i]
		if a.Module != b.Module {
			t.Fatalf("artifact %d is %s, want %s (order broken)", i, a.Module, b.Module)
		}
		if a.C != b.C || a.Listing != b.Listing || a.CodeSize != b.CodeSize ||
			a.Estimate != b.Estimate || a.Measured != b.Measured || a.Stats != b.Stats {
			t.Errorf("module %s: process-mode artifact differs from in-process", a.Module)
		}
	}
	if procs.Total.Miss != len(net.Machines) {
		t.Errorf("cold process run attribution %s, want %d misses", procs.Total.Attribution(), len(net.Machines))
	}
	if !strings.Contains(procs.Summary(), "(process)") {
		t.Errorf("summary does not name the mode: %q", procs.Summary())
	}

	// Same directory again: every worker lookup is a disk hit published
	// by the first run's processes.
	warm, err := shard.RunProcs(context.Background(), net, opt, workerCmd(t))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Total.Disk != len(net.Machines) || warm.Total.Miss != 0 {
		t.Errorf("warm process run attribution %s, want %d disk hits", warm.Total.Attribution(), len(net.Machines))
	}
	for i := range warm.Artifacts {
		if warm.Artifacts[i].C != procs.Artifacts[i].C {
			t.Errorf("module %s: warm artifact differs", warm.Artifacts[i].Module)
		}
	}
}

// TestRunProcsModuleError: a module that fails in the worker comes back
// as an in-band Result error and the driver aggregates it by name.
func TestRunProcsModuleError(t *testing.T) {
	net := badNetwork(t)
	_, err := shard.RunProcs(context.Background(), net, shard.Options{Shards: 2, CacheDir: t.TempDir()}, workerCmd(t))
	if err == nil {
		t.Fatal("want an aggregate error")
	}
	if !strings.Contains(err.Error(), "module bad") {
		t.Errorf("error does not name the failing module: %v", err)
	}
}

// TestRunProcsRequiresCacheDir: without a shared directory there is no
// shuffle layer, so process mode must refuse to start.
func TestRunProcsRequiresCacheDir(t *testing.T) {
	net := testNetwork(t, 5, 2)
	_, err := shard.RunProcs(context.Background(), net, shard.Options{Shards: 2}, workerCmd(t))
	if err == nil || !strings.Contains(err.Error(), "cache") {
		t.Fatalf("want a cache-dir error, got %v", err)
	}
}

// TestRunProcsRejectsUnwirableOptions: options that do not survive the
// wire codec must be rejected up front, not silently dropped (they are
// part of the fingerprint, so dropping them would poison the cache).
func TestRunProcsRejectsUnwirableOptions(t *testing.T) {
	net := testNetwork(t, 5, 2)
	opt := shard.Options{Shards: 1, CacheDir: t.TempDir()}
	opt.Pipeline.Reduce = true
	opt.Pipeline.ReduceOpt.MaxIter = 7
	_, err := shard.RunProcs(context.Background(), net, opt, workerCmd(t))
	if err == nil || !strings.Contains(err.Error(), "not supported in process mode") {
		t.Fatalf("want an unsupported-options error, got %v", err)
	}
}
