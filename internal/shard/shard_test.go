package shard_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/expr"
	"polis/internal/pipeline"
	"polis/internal/randcfsm"
	"polis/internal/shard"
)

func testNetwork(t *testing.T, seed int64, n int) *cfsm.Network {
	t.Helper()
	net, _, err := randcfsm.NewNetwork(rand.New(rand.NewSource(seed)), n, randcfsm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// badNetwork returns a two-module network whose second module passes
// validation but fails deterministically in codegen: its assign
// references a variable no symbol table defines.
func badNetwork(t *testing.T) *cfsm.Network {
	t.Helper()
	net := cfsm.NewNetwork("badnet")
	a := net.NewSignal("a", true)
	b := net.NewSignal("b", true)
	c := net.NewSignal("c", true)

	good := cfsm.New("good")
	good.AttachInput(a)
	good.AttachOutput(b)
	tg := good.Present(a)
	good.AddTransition([]cfsm.Cond{cfsm.On(tg, 1)}, good.Emit(b))

	bad := cfsm.New("bad")
	bad.AttachInput(c)
	v := bad.AddState("s0", 0, 0)
	tb := bad.Present(c)
	bad.AddTransition([]cfsm.Cond{cfsm.On(tb, 1)}, bad.Assign(v, expr.Ref("no_such_var")))

	for _, m := range []*cfsm.CFSM{good, bad} {
		if err := net.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	return net
}

// TestPartition: both strategies cover every module exactly once,
// deterministically, and BySize keeps the weight spread within one
// module of balanced.
func TestPartition(t *testing.T) {
	net := testNetwork(t, 3, 17)
	for _, strat := range []shard.Strategy{shard.ByHash, shard.BySize} {
		for _, shards := range []int{1, 2, 5, 17, 40} {
			parts := shard.Partition(net.Machines, shards, strat)
			if len(parts) != max(shards, 1) {
				t.Fatalf("%v/%d: %d groups", strat, shards, len(parts))
			}
			seen := make(map[int]int)
			for _, part := range parts {
				for _, mi := range part {
					seen[mi]++
				}
			}
			if len(seen) != len(net.Machines) {
				t.Errorf("%v/%d: %d of %d modules assigned", strat, shards, len(seen), len(net.Machines))
			}
			for mi, nt := range seen {
				if nt != 1 {
					t.Errorf("%v/%d: module %d assigned %d times", strat, shards, mi, nt)
				}
			}
			again := shard.Partition(net.Machines, shards, strat)
			for s := range parts {
				if len(parts[s]) != len(again[s]) {
					t.Fatalf("%v/%d: partition not deterministic", strat, shards)
				}
				for i := range parts[s] {
					if parts[s][i] != again[s][i] {
						t.Fatalf("%v/%d: partition not deterministic", strat, shards)
					}
				}
			}
		}
	}
}

// TestRunDeterministicAcrossShardCounts: the same network through the
// plain pipeline, one shard, and eight shards produces byte-identical
// artifacts in the same order, with identical merged attribution.
func TestRunDeterministicAcrossShardCounts(t *testing.T) {
	net := testNetwork(t, 7, 12)
	base, err := pipeline.Run(net, pipeline.Options{}, pipeline.Config{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}

	var totals []shard.ShardStat
	for _, shards := range []int{1, 8} {
		for _, strat := range []shard.Strategy{shard.ByHash, shard.BySize} {
			cache, err := pipeline.NewCache("")
			if err != nil {
				t.Fatal(err)
			}
			rep, err := shard.Run(context.Background(), net, shard.Options{
				Shards: shards, Strategy: strat, Cache: cache,
			})
			if err != nil {
				t.Fatalf("shards=%d strat=%v: %v", shards, strat, err)
			}
			if len(rep.Artifacts) != len(base) {
				t.Fatalf("shards=%d: %d artifacts, want %d", shards, len(rep.Artifacts), len(base))
			}
			for i, a := range rep.Artifacts {
				b := base[i]
				if a.Module != b.Module {
					t.Fatalf("shards=%d: artifact %d is %s, want %s (order broken)", shards, i, a.Module, b.Module)
				}
				if a.C != b.C || a.Listing != b.Listing || a.CodeSize != b.CodeSize ||
					a.Estimate != b.Estimate || a.Measured != b.Measured || a.Stats != b.Stats {
					t.Errorf("shards=%d strat=%v: module %s artifact differs from unsharded run", shards, strat, a.Module)
				}
			}
			if rep.Total.Miss != len(base) || rep.Total.Mem != 0 || rep.Total.Disk != 0 || rep.Total.Dedup != 0 {
				t.Errorf("shards=%d strat=%v: cold attribution %s, want all misses", shards, strat, rep.Total.Attribution())
			}
			if got := rep.Collector.Modules(); got != len(base) {
				t.Errorf("shards=%d: merged collector saw %d modules, want %d", shards, got, len(base))
			}
			if _, _, misses := rep.Collector.CacheCounters(); misses != len(base) {
				t.Errorf("shards=%d: merged collector counted %d misses, want %d", shards, misses, len(base))
			}
			if rep.Collector.StageTotal(pipeline.StageReactive) <= 0 {
				t.Errorf("shards=%d: merged collector lost stage timings", shards)
			}
			totals = append(totals, rep.Total)
		}
	}
	for _, tot := range totals[1:] {
		if tot != totals[0] {
			t.Errorf("attribution totals differ across shard counts: %+v vs %+v", tot, totals[0])
		}
	}
}

// TestRunSharedCacheWarm: a second sharded run over the same shared
// cache is served entirely from memory, and the attribution says so.
func TestRunSharedCacheWarm(t *testing.T) {
	net := testNetwork(t, 9, 10)
	cache, err := pipeline.NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	opt := shard.Options{Shards: 4, Cache: cache}
	cold, err := shard.Run(context.Background(), net, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Total.Miss != 10 {
		t.Fatalf("cold attribution %s, want 10 misses", cold.Total.Attribution())
	}
	warm, err := shard.Run(context.Background(), net, opt)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Total.Mem != 10 || warm.Total.Miss != 0 {
		t.Fatalf("warm attribution %s, want 10 mem hits", warm.Total.Attribution())
	}
	for i := range cold.Artifacts {
		if warm.Artifacts[i].C != cold.Artifacts[i].C {
			t.Errorf("module %s: warm artifact differs", cold.Artifacts[i].Module)
		}
	}
	if !strings.Contains(warm.Summary(), "mem 10") {
		t.Errorf("summary misses the attribution: %q", warm.Summary())
	}
}

// TestRunError: a failing module surfaces in the aggregate error with
// its module attribution; healthy modules are unaffected.
func TestRunError(t *testing.T) {
	net := badNetwork(t)
	_, err := shard.Run(context.Background(), net, shard.Options{Shards: 2})
	if err == nil {
		t.Fatal("want an aggregate error")
	}
	if !strings.Contains(err.Error(), "module bad") {
		t.Errorf("error does not name the failing module: %v", err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
