package shard_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"polis/internal/pipeline"
	"polis/internal/randcfsm"
	"polis/internal/shard"
)

// BenchmarkShardSynthesize is the randcfsm-driven scale benchmark: a
// full cold sharded synthesis of 100- and 1000-module networks. On the
// 1-CPU CI container the shard counts above 1 measure scheduling
// overhead, not speedup; the modules_per_s metric is the comparable
// figure across machines.
func BenchmarkShardSynthesize(b *testing.B) {
	for _, size := range []int{100, 1000} {
		net, _, err := randcfsm.NewNetwork(rand.New(rand.NewSource(42)), size, randcfsm.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, shards := range []int{1, 8} {
			b.Run(fmt.Sprintf("n=%d/shards=%d", size, shards), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					// A fresh cache per iteration keeps every run cold:
					// the benchmark measures synthesis, not cache hits.
					cache, err := pipeline.NewCache("")
					if err != nil {
						b.Fatal(err)
					}
					rep, err := shard.Run(context.Background(), net, shard.Options{Shards: shards, Cache: cache})
					if err != nil {
						b.Fatal(err)
					}
					if len(rep.Artifacts) != size {
						b.Fatalf("%d artifacts, want %d", len(rep.Artifacts), size)
					}
				}
				b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "modules_per_s")
			})
		}
	}
}
