// Package shard is the map-reduce synthesis driver: it partitions a
// CFSM network into deterministic module shards, maps each shard
// through the content-addressed artifact cache on its own worker, and
// reduces the per-shard artifacts and statistics into one
// deterministic report.
//
// The shape follows the map-reduce parallelisation of control-software
// synthesis: mappers are shard workers publishing artifacts into the
// content-addressed store, the shuffle layer is the shared cache keyed
// by module fingerprint, and the reducer collects artifacts by key in
// network order. Shards run as in-process goroutines (Run) or as
// separate OS processes sharing one on-disk cache directory (RunProcs
// plus the `polisc shard-worker` subcommand); both produce
// byte-identical artifacts and identical merged cache attribution for
// any shard count, because every module's artifact is addressed by the
// same fingerprint regardless of which shard synthesized it.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"polis/internal/cfsm"
	"polis/internal/pipeline"
)

// Strategy selects how modules are partitioned into shards. Both
// strategies are deterministic: the same network and shard count
// always yield the same partition.
type Strategy int

const (
	// ByHash assigns each module by an FNV-1a hash of its name modulo
	// the shard count: stable under module insertion elsewhere in the
	// network, at the cost of unbalanced shards on skewed names.
	ByHash Strategy = iota
	// BySize balances shards by a structural weight (transitions plus
	// tests plus actions, a proxy for synthesis cost): modules are
	// placed heaviest-first onto the lightest shard, ties resolved by
	// lowest shard index, so the partition is deterministic.
	BySize
)

func (s Strategy) String() string {
	switch s {
	case ByHash:
		return "hash"
	case BySize:
		return "size"
	default:
		return fmt.Sprintf("strategy%d", int(s))
	}
}

// ParseStrategy resolves a strategy name ("hash" or "size").
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "hash":
		return ByHash, nil
	case "size":
		return BySize, nil
	default:
		return 0, fmt.Errorf("shard: unknown strategy %q (want hash or size)", name)
	}
}

// weight is the structural proxy for a module's synthesis cost.
func weight(m *cfsm.CFSM) int {
	return len(m.Trans) + len(m.Tests) + len(m.Actions)
}

// Partition splits the machine list into deterministic module-index
// groups, one per shard. Every index in [0, len(machines)) appears in
// exactly one group; groups may be empty under ByHash.
func Partition(machines []*cfsm.CFSM, shards int, strat Strategy) [][]int {
	if shards < 1 {
		shards = 1
	}
	out := make([][]int, shards)
	switch strat {
	case BySize:
		idx := make([]int, len(machines))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			wa, wb := weight(machines[idx[a]]), weight(machines[idx[b]])
			if wa != wb {
				return wa > wb
			}
			return idx[a] < idx[b]
		})
		load := make([]int, shards)
		for _, mi := range idx {
			best := 0
			for s := 1; s < shards; s++ {
				if load[s] < load[best] {
					best = s
				}
			}
			out[best] = append(out[best], mi)
			load[best] += weight(machines[mi])
		}
		// Keep each shard's internal order the network order so a
		// worker's progression is predictable.
		for s := range out {
			sort.Ints(out[s])
		}
	default: // ByHash
		for i, m := range machines {
			h := fnv.New32a()
			h.Write([]byte(m.Name))
			s := int(h.Sum32() % uint32(shards))
			out[s] = append(out[s], i)
		}
	}
	return out
}

// Options configures one sharded synthesis run.
type Options struct {
	// Shards is the number of shards; <= 0 means GOMAXPROCS. The
	// effective count never exceeds the module count.
	Shards int
	// Strategy selects the partitioner; the zero value is ByHash.
	Strategy Strategy
	// Pipeline is the per-module synthesis configuration shared by all
	// shards (it is part of every module's cache fingerprint).
	Pipeline pipeline.Options
	// Cache is the shared shuffle layer. nil means a fresh cache over
	// CacheDir (in-memory only when CacheDir is empty). RunProcs
	// ignores Cache and always goes through CacheDir.
	Cache *pipeline.Cache
	// CacheDir is the on-disk cache directory. Required by RunProcs:
	// worker processes publish artifacts there and the reducer fetches
	// them back by fingerprint.
	CacheDir string
}

// ShardStat is the per-shard slice of the report: which modules the
// shard owned, how long its map phase ran, and how its cache lookups
// were served.
type ShardStat struct {
	Shard   int
	Modules int
	Wall    time.Duration

	Miss, Mem, Disk, Dedup int
}

// Attribution renders the merged miss|mem|disk|dedup counters.
func (s ShardStat) Attribution() string {
	return fmt.Sprintf("miss %d | mem %d | disk %d | dedup %d", s.Miss, s.Mem, s.Disk, s.Dedup)
}

// Report is the reduced result of a sharded run. Artifacts are in
// network machine order regardless of shard count or completion
// order, so output is deterministic and byte-identical to an
// unsharded run.
type Report struct {
	// Artifacts, one per module, in network order.
	Artifacts []*pipeline.Artifact
	// Shards holds the per-shard statistics, indexed by shard.
	Shards []ShardStat
	// Total is the merged cache attribution across shards.
	Total ShardStat
	// Wall is the whole run's wall time (map plus reduce).
	Wall time.Duration
	// Collector is the merged per-shard statistics collector; its
	// Report() is the same shape an unsharded run prints. Process-mode
	// runs only carry run-level and cache counters (per-stage timing
	// stays in the worker processes).
	Collector *pipeline.Collector
	// Procs reports whether shards ran as separate OS processes.
	Procs bool
}

// Summary renders the deterministic one-line shard summary followed
// by one line per shard (per-shard wall times vary run to run, so
// callers wanting byte-stable output print only with stats enabled).
func (r *Report) Summary() string {
	var b strings.Builder
	mode := "in-process"
	if r.Procs {
		mode = "process"
	}
	fmt.Fprintf(&b, "shard: %d shard(s) (%s), %d module(s), %s\n",
		len(r.Shards), mode, len(r.Artifacts), r.Total.Attribution())
	for _, st := range r.Shards {
		fmt.Fprintf(&b, "  shard %d: %d module(s) in %s, %s\n",
			st.Shard, st.Modules, st.Wall.Round(10*time.Microsecond), st.Attribution())
	}
	return b.String()
}

func (st *ShardStat) count(out pipeline.Outcome) {
	switch out {
	case pipeline.OutcomeMiss:
		st.Miss++
	case pipeline.OutcomeMemHit:
		st.Mem++
	case pipeline.OutcomeDiskHit:
		st.Disk++
	case pipeline.OutcomeDedup:
		st.Dedup++
	}
}

// Run synthesizes the network's modules in deterministic shards, one
// goroutine per shard, all sharing one cache as the shuffle layer.
// Artifacts come back in network order; per-shard Collectors are
// merged into Report.Collector. The first module failure stops every
// shard from starting new modules (fail-fast) and the aggregate error
// names each failed module.
func Run(ctx context.Context, net *cfsm.Network, opt Options) (*Report, error) {
	machines := net.Machines
	shards := opt.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(machines) {
		shards = len(machines)
	}
	if shards < 1 {
		shards = 1
	}
	cache := opt.Cache
	if cache == nil {
		var err error
		if cache, err = pipeline.NewCache(opt.CacheDir); err != nil {
			return nil, err
		}
	}
	parts := Partition(machines, shards, opt.Strategy)

	master := pipeline.NewCollector()
	master.Event(pipeline.Event{Kind: pipeline.EvRunStart, Modules: len(machines), Workers: shards})
	start := time.Now()

	arts := make([]*pipeline.Artifact, len(machines))
	moduleErrs := make([]error, len(machines))
	stats := make([]ShardStat, shards)
	cols := make([]*pipeline.Collector, shards)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for si := range parts {
		wg.Add(1)
		go func(si int, part []int) {
			defer wg.Done()
			col := pipeline.NewCollector()
			cols[si] = col
			st := &stats[si]
			st.Shard = si
			st.Modules = len(part)
			t0 := time.Now()
			defer func() { st.Wall = time.Since(t0) }()
			for _, mi := range part {
				if failed.Load() || ctx.Err() != nil {
					return // fail-fast/cancelled: stop mapping this shard
				}
				a, out, err := cache.SynthesizeCached(ctx, machines[mi], opt.Pipeline, col)
				if err != nil {
					if ctx.Err() == nil {
						moduleErrs[mi] = fmt.Errorf("module %s: %w", machines[mi].Name, err)
						col.Event(pipeline.Event{Kind: pipeline.EvModuleError, Module: machines[mi].Name, Err: err})
					}
					failed.Store(true)
					return
				}
				arts[mi] = a
				st.count(out)
			}
		}(si, parts[si])
	}
	wg.Wait()

	// Reduce: merge shard collectors in shard order, then total the
	// attribution counters.
	for _, col := range cols {
		master.Merge(col)
	}
	cst := cache.Stats()
	master.Event(pipeline.Event{Kind: pipeline.EvRunEnd, Duration: time.Since(start), Cache: &cst})

	rep := &Report{
		Artifacts: arts,
		Shards:    stats,
		Wall:      time.Since(start),
		Collector: master,
	}
	for _, st := range stats {
		rep.Total.Miss += st.Miss
		rep.Total.Mem += st.Mem
		rep.Total.Disk += st.Disk
		rep.Total.Dedup += st.Dedup
		rep.Total.Modules += st.Modules
	}
	if err := ctx.Err(); err != nil {
		done := 0
		for _, a := range arts {
			if a != nil {
				done++
			}
		}
		return nil, fmt.Errorf("shard: run cancelled after %d of %d module(s): %w",
			done, len(machines), err)
	}
	if failed.Load() {
		var agg []error
		for _, e := range moduleErrs {
			if e != nil {
				agg = append(agg, e)
			}
		}
		return nil, fmt.Errorf("shard: %d of %d module(s) failed: %w",
			len(agg), len(machines), errors.Join(agg...))
	}
	return rep, nil
}
