package esterel

import "polis/internal/expr"

// Module is a parsed reactive module.
type Module struct {
	Name    string
	Inputs  []SigDecl
	Outputs []SigDecl
	Vars    []VarDecl
	Body    []Stmt
}

// SigDecl declares a signal; Valued signals carry an integer.
type SigDecl struct {
	Name   string
	Valued bool
}

// VarDecl declares a local state variable with an initial value.
type VarDecl struct {
	Name string
	Init int64
}

// Stmt is a statement of the subset.
type Stmt interface{ stmt() }

// AwaitStmt waits for the next occurrence of a signal.
type AwaitStmt struct{ Signal string }

// EmitStmt emits a signal, optionally with a value.
type EmitStmt struct {
	Signal string
	Value  expr.Expr // nil for pure emission
}

// AssignStmt assigns an expression to a variable.
type AssignStmt struct {
	Var  string
	Expr expr.Expr
}

// IfStmt branches on a data expression or a presence test.
type IfStmt struct {
	Cond    expr.Expr // nil when Present is set
	Present string    // signal name for `if present S`
	Then    []Stmt
	Else    []Stmt
}

// LoopStmt repeats its body forever.
type LoopStmt struct{ Body []Stmt }

// RepeatStmt repeats its body a static number of times (unrolled at
// compile time).
type RepeatStmt struct {
	Count int64
	Body  []Stmt
}

// NothingStmt does nothing.
type NothingStmt struct{}

func (AwaitStmt) stmt()   {}
func (EmitStmt) stmt()    {}
func (AssignStmt) stmt()  {}
func (IfStmt) stmt()      {}
func (LoopStmt) stmt()    {}
func (RepeatStmt) stmt()  {}
func (NothingStmt) stmt() {}
