package esterel

import (
	"fmt"

	"polis/internal/cfsm"
	"polis/internal/expr"
)

// cfg node kinds.
type nodeKind int

const (
	nAwait nodeKind = iota
	nCond
	nAction
	nHalt
	nGoto // pass-through used for loop back edges
)

type cfgNode struct {
	kind nodeKind

	awaitSig string // nAwait
	stateID  int

	condExpr    expr.Expr // nCond: data predicate...
	condPresent string    // ...or presence test
	elseNext    *cfgNode

	action Stmt // nAction: EmitStmt or AssignStmt

	next *cfgNode
}

// Compile translates a parsed module into a CFSM: one control state
// per await site (the classical reactive-program-to-FSM translation
// for a single-threaded module). Straight-line code between awaits
// becomes transition actions; if-statements become predicate or
// presence guards. A data-free path from one await back to itself
// without crossing another await (an instantaneous loop) is rejected.
func Compile(m *Module) (*cfsm.CFSM, map[string]*cfsm.Signal, error) {
	sigs := make(map[string]*cfsm.Signal)
	for _, d := range m.Inputs {
		if _, dup := sigs[d.Name]; dup {
			return nil, nil, fmt.Errorf("esterel: duplicate signal %s", d.Name)
		}
		sigs[d.Name] = &cfsm.Signal{Name: d.Name, Pure: !d.Valued}
	}
	for _, d := range m.Outputs {
		if _, dup := sigs[d.Name]; dup {
			return nil, nil, fmt.Errorf("esterel: duplicate signal %s", d.Name)
		}
		sigs[d.Name] = &cfsm.Signal{Name: d.Name, Pure: !d.Valued}
	}
	return compileResolved(m, sigs)
}

// compileResolved compiles a module against pre-resolved signal
// objects (shared across a program's modules by CompileProgram).
func compileResolved(m *Module, sigs map[string]*cfsm.Signal) (*cfsm.CFSM, map[string]*cfsm.Signal, error) {
	c := cfsm.New(m.Name)
	seenIn := map[string]bool{}
	for _, d := range m.Inputs {
		if seenIn[d.Name] {
			return nil, nil, fmt.Errorf("esterel: duplicate signal %s", d.Name)
		}
		seenIn[d.Name] = true
		c.AttachInput(sigs[d.Name])
	}
	for _, d := range m.Outputs {
		if seenIn[d.Name] {
			return nil, nil, fmt.Errorf("esterel: duplicate signal %s", d.Name)
		}
		seenIn[d.Name] = true
		c.AttachOutput(sigs[d.Name])
	}
	vars := make(map[string]*VarDecl, len(m.Vars))
	for i := range m.Vars {
		if _, dup := vars[m.Vars[i].Name]; dup {
			return nil, nil, fmt.Errorf("esterel: duplicate variable %s", m.Vars[i].Name)
		}
		vars[m.Vars[i].Name] = &m.Vars[i]
	}

	// Build the control-flow graph.
	halt := &cfgNode{kind: nHalt}
	var awaits []*cfgNode
	var build func(stmts []Stmt, cont *cfgNode) (*cfgNode, error)
	build = func(stmts []Stmt, cont *cfgNode) (*cfgNode, error) {
		cur := cont
		for i := len(stmts) - 1; i >= 0; i-- {
			switch s := stmts[i].(type) {
			case AwaitStmt:
				if _, ok := sigs[s.Signal]; !ok {
					return nil, fmt.Errorf("esterel: await of undeclared signal %s", s.Signal)
				}
				n := &cfgNode{kind: nAwait, awaitSig: s.Signal, next: cur}
				awaits = append(awaits, n)
				cur = n
			case EmitStmt:
				if _, ok := sigs[s.Signal]; !ok {
					return nil, fmt.Errorf("esterel: emit of undeclared signal %s", s.Signal)
				}
				cur = &cfgNode{kind: nAction, action: s, next: cur}
			case AssignStmt:
				if _, ok := vars[s.Var]; !ok {
					return nil, fmt.Errorf("esterel: assignment to undeclared variable %s", s.Var)
				}
				cur = &cfgNode{kind: nAction, action: s, next: cur}
			case NothingStmt:
				// no node
			case IfStmt:
				thenN, err := build(s.Then, cur)
				if err != nil {
					return nil, err
				}
				elseN, err := build(s.Else, cur)
				if err != nil {
					return nil, err
				}
				if s.Present != "" {
					if _, ok := sigs[s.Present]; !ok {
						return nil, fmt.Errorf("esterel: presence test of undeclared signal %s", s.Present)
					}
				}
				cur = &cfgNode{kind: nCond, condExpr: s.Cond, condPresent: s.Present,
					next: thenN, elseNext: elseN}
			case RepeatStmt:
				// Static unroll: the body repeats Count times.
				for k := int64(0); k < s.Count; k++ {
					body, err := build(s.Body, cur)
					if err != nil {
						return nil, err
					}
					cur = body
				}
			case LoopStmt:
				// The loop's body continues into a back edge that
				// re-enters it.
				back := &cfgNode{kind: nGoto}
				body, err := build(s.Body, back)
				if err != nil {
					return nil, err
				}
				if body == back {
					return nil, fmt.Errorf("esterel: empty loop in %s", m.Name)
				}
				back.next = body
				cur = body
			default:
				return nil, fmt.Errorf("esterel: unsupported statement %T", s)
			}
		}
		return cur, nil
	}
	entry, err := build(m.Body, halt)
	if err != nil {
		return nil, nil, err
	}

	// Fold the initial straight-line prefix (constant assignments
	// only) into state-variable initial values, stopping at the
	// first await.
	inits := make(map[string]int64)
	for _, v := range m.Vars {
		inits[v.Name] = v.Init
	}
	for entry.kind == nGoto {
		entry = entry.next
	}
	for entry.kind == nAction {
		as, ok := entry.action.(AssignStmt)
		if !ok {
			return nil, nil, fmt.Errorf("esterel: %s: emissions before the first await are not supported", m.Name)
		}
		kv, ok := as.Expr.(expr.Const)
		if !ok {
			return nil, nil, fmt.Errorf("esterel: %s: only constant assignments allowed before the first await", m.Name)
		}
		inits[as.Var] = int64(kv)
		entry = entry.next
	}
	if entry.kind != nAwait && entry.kind != nHalt {
		return nil, nil, fmt.Errorf("esterel: %s: module body must reach an await without branching", m.Name)
	}

	// Number the reachable await states (entry first) plus a halt
	// state when reachable.
	var states []*cfgNode
	seen := make(map[*cfgNode]bool)
	haltReachable := false
	var mark func(n *cfgNode)
	mark = func(n *cfgNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		switch n.kind {
		case nHalt:
			haltReachable = true
		case nAwait:
			n.stateID = len(states)
			states = append(states, n)
			mark(n.next)
		case nCond:
			mark(n.next)
			mark(n.elseNext)
		case nAction, nGoto:
			mark(n.next)
		}
	}
	mark(entry)
	numStates := len(states)
	haltID := numStates
	if haltReachable {
		numStates++
	}

	var pc *cfsm.StateVar
	if numStates > 1 {
		initID := 0
		if entry.kind == nHalt {
			initID = haltID
		} else {
			initID = entry.stateID
		}
		pc = c.AddState("pc_"+m.Name, numStates, int64(initID))
	} else if entry.kind == nHalt {
		// Degenerate: module does nothing.
	}
	svs := make(map[string]*cfsm.StateVar, len(m.Vars))
	for _, v := range m.Vars {
		svs[v.Name] = c.AddState(v.Name, 0, inits[v.Name])
	}

	// Path enumeration from each await. Esterel statements execute in
	// sequence, while CFSM actions all read the pre-reaction state, so
	// assignments are forwarded symbolically along each path: later
	// reads of an assigned variable substitute its folded expression,
	// and each variable ends up assigned exactly once per transition.
	type pathState struct {
		conds       []cfsm.Cond
		emits       []*cfsm.Action
		assignOrder []string
		sub         map[string]expr.Expr
	}
	clonePS := func(ps pathState) pathState {
		sub := make(map[string]expr.Expr, len(ps.sub))
		for k, v := range ps.sub {
			sub[k] = v
		}
		return pathState{
			conds:       append([]cfsm.Cond(nil), ps.conds...),
			emits:       append([]*cfsm.Action(nil), ps.emits...),
			assignOrder: append([]string(nil), ps.assignOrder...),
			sub:         sub,
		}
	}
	var emitTransition func(from *cfgNode, ps pathState, target int)
	emitTransition = func(from *cfgNode, ps pathState, target int) {
		guard := make([]cfsm.Cond, 0, len(ps.conds)+2)
		if pc != nil {
			guard = append(guard, cfsm.On(c.Sel(pc), from.stateID))
		}
		guard = append(guard, cfsm.On(c.Present(sigs[from.awaitSig]), 1))
		guard = append(guard, ps.conds...)
		actions := append([]*cfsm.Action(nil), ps.emits...)
		for _, name := range ps.assignOrder {
			actions = append(actions, c.Assign(svs[name], ps.sub[name]))
		}
		if pc != nil {
			actions = append(actions, c.Assign(pc, expr.C(int64(target))))
		}
		c.AddTransition(guard, actions...)
	}

	var walkErr error
	var walk func(from *cfgNode, n *cfgNode, ps pathState, onPath map[*cfgNode]bool)
	walk = func(from *cfgNode, n *cfgNode, ps pathState, onPath map[*cfgNode]bool) {
		if walkErr != nil {
			return
		}
		switch n.kind {
		case nAwait:
			emitTransition(from, ps, n.stateID)
		case nHalt:
			emitTransition(from, ps, haltID)
		case nGoto:
			if onPath[n] {
				walkErr = fmt.Errorf("esterel: %s: instantaneous loop (no await on a cycle)", m.Name)
				return
			}
			onPath[n] = true
			walk(from, n.next, ps, onPath)
			delete(onPath, n)
		case nAction:
			if onPath[n] {
				walkErr = fmt.Errorf("esterel: %s: instantaneous loop (no await on a cycle)", m.Name)
				return
			}
			onPath[n] = true
			ps2 := clonePS(ps)
			switch a := n.action.(type) {
			case EmitStmt:
				if a.Value != nil {
					ps2.emits = append(ps2.emits, c.EmitV(sigs[a.Signal], expr.Subst(a.Value, ps2.sub)))
				} else {
					ps2.emits = append(ps2.emits, c.Emit(sigs[a.Signal]))
				}
			case AssignStmt:
				folded := expr.Subst(a.Expr, ps2.sub)
				if _, seen := ps2.sub[a.Var]; !seen {
					ps2.assignOrder = append(ps2.assignOrder, a.Var)
				}
				ps2.sub[a.Var] = folded
			}
			walk(from, n.next, ps2, onPath)
			delete(onPath, n)
		case nCond:
			if onPath[n] {
				walkErr = fmt.Errorf("esterel: %s: instantaneous loop (no await on a cycle)", m.Name)
				return
			}
			onPath[n] = true
			var test *cfsm.Test
			if n.condPresent != "" {
				test = c.Present(sigs[n.condPresent])
			} else {
				test = c.Pred(expr.Subst(n.condExpr, ps.sub))
			}
			for _, val := range []int{1, 0} {
				conds, clash := addCond(ps.conds, cfsm.On(test, val))
				if clash {
					continue
				}
				tgt := n.next
				if val == 0 {
					tgt = n.elseNext
				}
				ps2 := clonePS(ps)
				ps2.conds = conds
				walk(from, tgt, ps2, onPath)
			}
			delete(onPath, n)
		}
	}
	for _, a := range states {
		walk(a, a.next, pathState{sub: map[string]expr.Expr{}}, map[*cfgNode]bool{})
		if walkErr != nil {
			return nil, nil, walkErr
		}
	}
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	return c, sigs, nil
}

// addCond appends a guard condition, reporting conflicts.
func addCond(conds []cfsm.Cond, nc cfsm.Cond) ([]cfsm.Cond, bool) {
	for _, old := range conds {
		if old.Test == nc.Test {
			if old.Val != nc.Val {
				return conds, true
			}
			return conds, false
		}
	}
	out := make([]cfsm.Cond, 0, len(conds)+1)
	out = append(out, conds...)
	return append(out, nc), false
}

// MustCompile parses and compiles src, panicking on error; intended
// for tests and example construction.
func MustCompile(src string) (*cfsm.CFSM, map[string]*cfsm.Signal) {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	c, sigs, err := Compile(m)
	if err != nil {
		panic(err)
	}
	return c, sigs
}
