package esterel

import (
	"strconv"

	"polis/internal/expr"
)

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) accept(kind tokKind, text string) bool {
	t := p.peek()
	if t.kind == kind && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.next()
	if t.kind != kind || t.text != text {
		return t, parseError(t, "expected %q, got %q", text, t.text)
	}
	return t, nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", parseError(t, "expected identifier, got %q", t.text)
	}
	return t.text, nil
}

// Parse parses one module.
func Parse(src string) (*Module, error) {
	return parseModule(&parser{toks: lex(src)})
}

// parseModule parses one module from the parser's token stream.
func parseModule(p *parser) (*Module, error) {
	m := &Module{}
	if _, err := p.expect(tokKeyword, "module"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m.Name = name
	if _, err := p.expect(tokSymbol, ":"); err != nil {
		return nil, err
	}
	// Declarations.
	for {
		switch {
		case p.accept(tokKeyword, "input"):
			d, err := p.sigDecl()
			if err != nil {
				return nil, err
			}
			m.Inputs = append(m.Inputs, d...)
		case p.accept(tokKeyword, "output"):
			d, err := p.sigDecl()
			if err != nil {
				return nil, err
			}
			m.Outputs = append(m.Outputs, d...)
		default:
			goto body
		}
	}
body:
	// Optional var blocks wrap the body.
	varDepth := 0
	for p.accept(tokKeyword, "var") {
		for {
			vn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			vd := VarDecl{Name: vn}
			if p.accept(tokSymbol, ":=") {
				t := p.next()
				if t.kind != tokNumber {
					return nil, parseError(t, "expected initial value")
				}
				v, _ := strconv.ParseInt(t.text, 10, 64)
				vd.Init = v
			}
			if _, err := p.expect(tokSymbol, ":"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "integer"); err != nil {
				return nil, err
			}
			m.Vars = append(m.Vars, vd)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokKeyword, "in"); err != nil {
			return nil, err
		}
		varDepth++
	}
	stmts, err := p.stmts()
	if err != nil {
		return nil, err
	}
	m.Body = stmts
	for i := 0; i < varDepth; i++ {
		if _, err := p.expect(tokKeyword, "end"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "var"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "end"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "module"); err != nil {
		return nil, err
	}
	return m, nil
}

// sigDecl parses `a, b : integer ;` or `a, b ;`.
func (p *parser) sigDecl() ([]SigDecl, error) {
	var names []string
	for {
		n, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		names = append(names, n)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	valued := false
	if p.accept(tokSymbol, ":") {
		if _, err := p.expect(tokKeyword, "integer"); err != nil {
			return nil, err
		}
		valued = true
	}
	if _, err := p.expect(tokSymbol, ";"); err != nil {
		return nil, err
	}
	out := make([]SigDecl, len(names))
	for i, n := range names {
		out[i] = SigDecl{Name: n, Valued: valued}
	}
	return out, nil
}

// stmts parses a sequence until a closing keyword (end/else).
func (p *parser) stmts() ([]Stmt, error) {
	var out []Stmt
	for {
		t := p.peek()
		if t.kind == tokKeyword && (t.text == "end" || t.text == "else") || t.kind == tokEOF {
			return out, nil
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	switch {
	case p.accept(tokKeyword, "await"):
		sig, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ";"); err != nil {
			return nil, err
		}
		return AwaitStmt{Signal: sig}, nil
	case p.accept(tokKeyword, "emit"):
		sig, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		var val expr.Expr
		if p.accept(tokSymbol, "(") {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			val = v
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokSymbol, ";"); err != nil {
			return nil, err
		}
		return EmitStmt{Signal: sig, Value: val}, nil
	case p.accept(tokKeyword, "loop"):
		body, err := p.stmts()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "end"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "loop"); err != nil {
			return nil, err
		}
		return LoopStmt{Body: body}, nil
	case p.accept(tokKeyword, "repeat"):
		tk := p.next()
		if tk.kind != tokNumber {
			return nil, parseError(tk, "expected repetition count")
		}
		cnt, err := strconv.ParseInt(tk.text, 10, 64)
		if err != nil || cnt < 1 || cnt > 1024 {
			return nil, parseError(tk, "repetition count out of range")
		}
		if _, err := p.expect(tokKeyword, "times"); err != nil {
			return nil, err
		}
		body, err := p.stmts()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "end"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "repeat"); err != nil {
			return nil, err
		}
		return RepeatStmt{Count: cnt, Body: body}, nil
	case p.accept(tokKeyword, "nothing"):
		if _, err := p.expect(tokSymbol, ";"); err != nil {
			return nil, err
		}
		return NothingStmt{}, nil
	case p.accept(tokKeyword, "if"):
		st := IfStmt{}
		if p.accept(tokKeyword, "present") {
			sig, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Present = sig
		} else {
			c, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Cond = c
		}
		if _, err := p.expect(tokKeyword, "then"); err != nil {
			return nil, err
		}
		then, err := p.stmts()
		if err != nil {
			return nil, err
		}
		st.Then = then
		if p.accept(tokKeyword, "else") {
			els, err := p.stmts()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		if _, err := p.expect(tokKeyword, "end"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "if"); err != nil {
			return nil, err
		}
		return st, nil
	case t.kind == tokIdent:
		name := p.next().text
		if _, err := p.expect(tokSymbol, ":="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ";"); err != nil {
			return nil, err
		}
		return AssignStmt{Var: name, Expr: e}, nil
	}
	return nil, parseError(t, "unexpected %q", t.text)
}

// Expression grammar: or -> and -> not -> cmp -> add -> mul -> unary
// -> primary.
func (p *parser) expr() (expr.Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (expr.Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = expr.Or(l, r)
	}
	return l, nil
}

func (p *parser) andExpr() (expr.Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = expr.And(l, r)
	}
	return l, nil
}

func (p *parser) notExpr() (expr.Expr, error) {
	if p.accept(tokKeyword, "not") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return expr.NewNot(x), nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (expr.Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		var op func(a, b expr.Expr) expr.Expr
		switch t.text {
		case "=":
			op = expr.Eq
		case "<>":
			op = expr.Ne
		case "<":
			op = expr.Lt
		case "<=":
			op = expr.Le
		case ">":
			op = expr.Gt
		case ">=":
			op = expr.Ge
		}
		if op != nil {
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return op(l, r), nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (expr.Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = expr.Add(l, r)
		case p.accept(tokSymbol, "-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = expr.Sub(l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (expr.Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "*"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = expr.Mul(l, r)
		case p.accept(tokSymbol, "/"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = expr.Div(l, r)
		case p.accept(tokKeyword, "mod"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = expr.Mod(l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) unary() (expr.Expr, error) {
	if p.accept(tokSymbol, "-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return expr.NewNeg(x), nil
	}
	return p.primary()
}

func (p *parser) primary() (expr.Expr, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, parseError(t, "bad number %q", t.text)
		}
		return expr.C(v), nil
	case t.kind == tokIdent:
		return expr.V(t.text), nil
	case t.kind == tokSymbol && t.text == "?":
		n, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return expr.V("?" + n), nil
	case t.kind == tokSymbol && t.text == "(":
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, parseError(t, "unexpected %q in expression", t.text)
}
