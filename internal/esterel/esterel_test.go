package esterel

import (
	"math/rand"
	"strings"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/expr"
	"polis/internal/sgraph"
)

// fig1 is the paper's Fig. 1 module, verbatim modulo ASCII operators.
const fig1 = `
module simple: % CFSM name
input c : integer; % integer input signal
output y; % pure output signal
var a : integer in % local state variable
loop % loop forever
  await c; % wait for c to be present
  if a = ?c then % if a is equal to the value of c
    a := 0; emit y;
  else
    a := a + 1;
  end if
end loop
end var
end module
`

func TestParseFig1(t *testing.T) {
	m, err := Parse(fig1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "simple" {
		t.Errorf("name %q", m.Name)
	}
	if len(m.Inputs) != 1 || m.Inputs[0].Name != "c" || !m.Inputs[0].Valued {
		t.Errorf("inputs: %+v", m.Inputs)
	}
	if len(m.Outputs) != 1 || m.Outputs[0].Name != "y" || m.Outputs[0].Valued {
		t.Errorf("outputs: %+v", m.Outputs)
	}
	if len(m.Vars) != 1 || m.Vars[0].Name != "a" {
		t.Errorf("vars: %+v", m.Vars)
	}
	if len(m.Body) != 1 {
		t.Fatalf("body: %+v", m.Body)
	}
	if _, ok := m.Body[0].(LoopStmt); !ok {
		t.Errorf("body[0] is %T, want LoopStmt", m.Body[0])
	}
}

func TestCompileFig1Behaviour(t *testing.T) {
	c, sigs := MustCompile(fig1)
	if err := c.CheckDeterministic(); err != nil {
		t.Fatal(err)
	}
	in := sigs["c"]
	y := sigs["y"]
	var a *cfsm.StateVar
	for _, sv := range c.States {
		if sv.Name == "a" {
			a = sv
		}
	}
	if a == nil {
		t.Fatal("state a missing")
	}

	snap := c.NewSnapshot()
	// No event: nothing happens.
	if r := c.React(snap); r.Fired {
		t.Error("fired without event")
	}
	// Count up to the input value, then emit.
	snap.Present[in] = true
	snap.Values[in] = 2
	emitted := 0
	for i := 0; i < 6; i++ {
		r := c.React(snap)
		if !r.Fired {
			t.Fatal("must fire")
		}
		for _, em := range r.Emitted {
			if em.Signal == y {
				emitted++
			}
		}
		snap.State = r.NextState
	}
	// a: 0->1->2->match(emit, reset)->1->2->match: two emissions.
	if emitted != 2 {
		t.Errorf("emitted %d, want 2", emitted)
	}
	if snap.State[a] != 0 {
		t.Errorf("a = %d after second match, want 0", snap.State[a])
	}
}

func TestCompileFig1ThroughSGraph(t *testing.T) {
	c, sigs := MustCompile(fig1)
	r, err := cfsm.BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sgraph.Build(r, sgraph.OrderSiftAfterSupport)
	if err != nil {
		t.Fatal(err)
	}
	in := sigs["c"]
	rng := rand.New(rand.NewSource(3))
	snapG := c.NewSnapshot()
	snapR := c.NewSnapshot()
	for i := 0; i < 300; i++ {
		p := rng.Intn(2) == 1
		v := int64(rng.Intn(4))
		snapG.Present[in] = p
		snapG.Values[in] = v
		snapR.Present[in] = p
		snapR.Values[in] = v
		rg := g.Evaluate(snapG)
		rr := c.React(snapR)
		if len(rg.Emitted) != len(rr.Emitted) {
			t.Fatalf("iter %d: emission mismatch", i)
		}
		snapG.State = rg.NextState
		snapR.State = rr.NextState
		for _, sv := range c.States {
			if snapG.State[sv] != snapR.State[sv] {
				t.Fatalf("iter %d: state %s diverged", i, sv.Name)
			}
		}
	}
}

func TestMultiAwaitStates(t *testing.T) {
	src := `
module handshake:
input req; input ack;
output grant; output done;
loop
  await req;
  emit grant;
  await ack;
  emit done;
end loop
end module
`
	c, sigs := MustCompile(src)
	// Two awaits -> pc with domain 2.
	var pc *cfsm.StateVar
	for _, sv := range c.States {
		if sv.Domain == 2 {
			pc = sv
		}
	}
	if pc == nil {
		t.Fatal("pc state variable missing")
	}
	snap := c.NewSnapshot()
	req, ack := sigs["req"], sigs["ack"]
	grant, done := sigs["grant"], sigs["done"]

	// ack while waiting for req: no reaction.
	snap.Present[ack] = true
	if r := c.React(snap); r.Fired {
		t.Error("ack in req-wait state must not fire")
	}
	// req: grant, advance.
	snap.Present = map[*cfsm.Signal]bool{req: true}
	r := c.React(snap)
	if !r.Fired || len(r.Emitted) != 1 || r.Emitted[0].Signal != grant {
		t.Fatalf("req reaction wrong: %+v", r)
	}
	snap.State = r.NextState
	// req again: ignored in ack-wait state.
	r = c.React(snap)
	if r.Fired {
		t.Error("req in ack-wait state must not fire")
	}
	// ack: done, back to start.
	snap.Present = map[*cfsm.Signal]bool{ack: true}
	r = c.React(snap)
	if !r.Fired || len(r.Emitted) != 1 || r.Emitted[0].Signal != done {
		t.Fatalf("ack reaction wrong: %+v", r)
	}
}

func TestNonLoopingModuleHalts(t *testing.T) {
	src := `
module oneshot:
input go;
output fired;
loop
  await go;
  emit fired;
end loop
end module
`
	c, sigs := MustCompile(src)
	// Single await inside a loop: no halt state, single control
	// state, hence no pc variable at all.
	if len(c.States) != 0 {
		t.Errorf("one-state machine should have no pc: %v", len(c.States))
	}
	snap := c.NewSnapshot()
	snap.Present[sigs["go"]] = true
	r := c.React(snap)
	if !r.Fired || len(r.Emitted) != 1 {
		t.Fatalf("reaction: %+v", r)
	}

	src2 := `
module once:
input go;
output fired;
await go;
emit fired;
await go;
end module
`
	c2, sigs2 := MustCompile(src2)
	// Two awaits + reachable halt: domain 3.
	var pc *cfsm.StateVar
	for _, sv := range c2.States {
		if sv.Domain == 3 {
			pc = sv
		}
	}
	if pc == nil {
		t.Fatalf("expected a 3-state pc, states: %+v", c2.States)
	}
	snap2 := c2.NewSnapshot()
	snap2.Present[sigs2["go"]] = true
	r1 := c2.React(snap2)
	if !r1.Fired || len(r1.Emitted) != 1 {
		t.Fatal("first go must emit")
	}
	snap2.State = r1.NextState
	r2 := c2.React(snap2)
	if !r2.Fired || len(r2.Emitted) != 0 {
		t.Fatal("second go must only advance to halt")
	}
	snap2.State = r2.NextState
	r3 := c2.React(snap2)
	if r3.Fired {
		t.Error("halted module must not react")
	}
}

func TestPresenceConditional(t *testing.T) {
	src := `
module sel:
input tick; input mode;
output fast; output slow;
loop
  await tick;
  if present mode then
    emit fast;
  else
    emit slow;
  end if
end loop
end module
`
	c, sigs := MustCompile(src)
	snap := c.NewSnapshot()
	snap.Present[sigs["tick"]] = true
	r := c.React(snap)
	if len(r.Emitted) != 1 || r.Emitted[0].Signal != sigs["slow"] {
		t.Fatalf("without mode: %+v", r.Emitted)
	}
	snap.Present[sigs["mode"]] = true
	r = c.React(snap)
	if len(r.Emitted) != 1 || r.Emitted[0].Signal != sigs["fast"] {
		t.Fatalf("with mode: %+v", r.Emitted)
	}
}

func TestInstantaneousLoopRejected(t *testing.T) {
	src := `
module bad:
input x;
var a : integer in
await x;
loop
  a := a + 1;
end loop
end var
end module
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Compile(m); err == nil {
		t.Error("instantaneous loop must be rejected")
	} else if !strings.Contains(err.Error(), "instantaneous") {
		t.Errorf("wrong error: %v", err)
	}
}

func TestInitialAssignmentsFold(t *testing.T) {
	src := `
module init:
input t;
output o : integer;
var a : integer in
a := 7;
loop
  await t;
  emit o(a);
end loop
end var
end module
`
	c, sigs := MustCompile(src)
	snap := c.NewSnapshot()
	snap.Present[sigs["t"]] = true
	r := c.React(snap)
	if len(r.Emitted) != 1 || r.Emitted[0].Value != 7 {
		t.Fatalf("initial fold failed: %+v", r.Emitted)
	}
	// Declaration-site initialisation also works.
	src2 := strings.Replace(src, "var a : integer in\na := 7;", "var a := 9 : integer in", 1)
	c2, sigs2 := MustCompile(src2)
	snap2 := c2.NewSnapshot()
	snap2.Present[sigs2["t"]] = true
	r2 := c2.React(snap2)
	if len(r2.Emitted) != 1 || r2.Emitted[0].Value != 9 {
		t.Fatalf("decl-site init failed: %+v", r2.Emitted)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"module x",                      // missing colon
		"module x: inputy;",             // garbage declaration
		"module x: await y; end module", // await of undeclared signal is a compile error, not parse
		"module x: input a; loop await a; end module",
		"module x: input a; if a then end module",
	}
	for i, src := range cases {
		m, err := Parse(src)
		if err != nil {
			continue // parse error, fine
		}
		if _, _, err := Compile(m); err == nil {
			t.Errorf("case %d: expected an error", i)
		}
	}
}

func TestExpressionParsing(t *testing.T) {
	src := `
module ex:
input v : integer;
output o : integer;
var a : integer in
loop
  await v;
  if (a + 1) * 2 <= ?v and not (a = 3) then
    a := a + 1;
    emit o(a * 10 - 1);
  end if
end loop
end var
end module
`
	c, sigs := MustCompile(src)
	snap := c.NewSnapshot()
	snap.Present[sigs["v"]] = true
	snap.Values[sigs["v"]] = 100
	r := c.React(snap)
	if len(r.Emitted) != 1 || r.Emitted[0].Value != 9 {
		t.Fatalf("expression evaluation wrong: %+v", r.Emitted)
	}
}

func TestDeterministicCompilation(t *testing.T) {
	c1, _ := MustCompile(fig1)
	c2, _ := MustCompile(fig1)
	if len(c1.Trans) != len(c2.Trans) || len(c1.Tests) != len(c2.Tests) {
		t.Error("compilation must be deterministic")
	}
	_ = expr.C(0)
}

const twoModuleProgram = `
% A two-module system: a pulse divider feeding a toggler.
module divider:
input tick;
output half;
var odd : integer in
loop
  await tick;
  if odd = 0 then
    odd := 1;
  else
    odd := 0;
    emit half;
  end if
end loop
end var
end module

module toggler:
input half;
output led : integer;
var on : integer in
loop
  await half;
  if on = 0 then on := 1; else on := 0; end if
  emit led(on);
end loop
end var
end module
`

func TestParseProgram(t *testing.T) {
	mods, err := ParseProgram(twoModuleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 2 || mods[0].Name != "divider" || mods[1].Name != "toggler" {
		t.Fatalf("modules: %+v", mods)
	}
}

func TestCompileProgramNetwork(t *testing.T) {
	n, machines, err := CompileProgram(twoModuleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Machines) != 2 {
		t.Fatalf("machines: %d", len(n.Machines))
	}
	// "half" connects the modules.
	if got := n.InternalSignals(); len(got) != 1 || got[0].Name != "half" {
		t.Errorf("internal signals: %v", got)
	}
	if got := n.PrimaryInputs(); len(got) != 1 || got[0].Name != "tick" {
		t.Errorf("primary inputs: %v", got)
	}
	if _, err := n.TopoOrder(); err != nil {
		t.Fatal(err)
	}

	// Semantics: four ticks flip the led once on, once... The divider
	// emits half every 2 ticks; the toggler alternates led 1,0,...
	div := machines["divider"]
	tog := machines["toggler"]
	var tick, half *cfsm.Signal
	for _, s := range n.Signals {
		switch s.Name {
		case "tick":
			tick = s
		case "half":
			half = s
		}
	}
	snapD := div.NewSnapshot()
	snapT := tog.NewSnapshot()
	var ledVals []int64
	for i := 0; i < 8; i++ {
		snapD.Present = map[*cfsm.Signal]bool{tick: true}
		rd := div.React(snapD)
		snapD.State = rd.NextState
		for _, em := range rd.Emitted {
			if em.Signal == half {
				snapT.Present = map[*cfsm.Signal]bool{half: true}
				rt := tog.React(snapT)
				snapT.State = rt.NextState
				for _, emt := range rt.Emitted {
					ledVals = append(ledVals, emt.Value)
				}
			}
		}
	}
	want := []int64{1, 0, 1, 0}
	if len(ledVals) != len(want) {
		t.Fatalf("led emissions: %v", ledVals)
	}
	for i := range want {
		if ledVals[i] != want[i] {
			t.Fatalf("led sequence %v, want %v", ledVals, want)
		}
	}
}

func TestCompileProgramTypeClash(t *testing.T) {
	src := `
module a:
output s;
loop await s; end loop
end module
module b:
input s : integer;
loop await s; end loop
end module
`
	// Module a awaits its own output, which is also invalid — craft a
	// minimal clash instead: s pure in a, valued in b.
	src = `
module a:
input t;
output s;
loop await t; emit s; end loop
end module
module b:
input s : integer;
output u;
loop await s; emit u; end loop
end module
`
	if _, _, err := CompileProgram(src); err == nil {
		t.Error("pure/valued signal clash must be rejected")
	}
}

func TestCompileProgramSingleModule(t *testing.T) {
	n, machines, err := CompileProgram(fig1)
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != 1 || len(n.Machines) != 1 {
		t.Fatal("single module program")
	}
	if n.Name != "simple" {
		t.Errorf("network name %q", n.Name)
	}
}

func TestRepeatUnrolls(t *testing.T) {
	src := `
module blink3:
input go; input tick;
output on; output done;
loop
  await go;
  repeat 3 times
    await tick;
    emit on;
  end repeat
  emit done;
end loop
end module
`
	c, sigs := MustCompile(src)
	// States: await go + 3 unrolled await ticks = 4.
	var pc *cfsm.StateVar
	for _, sv := range c.States {
		pc = sv
	}
	if pc == nil || pc.Domain != 4 {
		t.Fatalf("expected a 4-state pc, got %+v", c.States)
	}
	snap := c.NewSnapshot()
	snap.Present[sigs["go"]] = true
	r := c.React(snap)
	if !r.Fired {
		t.Fatal("go must fire")
	}
	snap.State = r.NextState
	snap.Present = map[*cfsm.Signal]bool{sigs["tick"]: true}
	ons, dones := 0, 0
	for i := 0; i < 3; i++ {
		r = c.React(snap)
		snap.State = r.NextState
		for _, em := range r.Emitted {
			switch em.Signal {
			case sigs["on"]:
				ons++
			case sigs["done"]:
				dones++
			}
		}
	}
	if ons != 3 || dones != 1 {
		t.Errorf("on=%d done=%d, want 3/1", ons, dones)
	}
}

func TestRepeatCountValidation(t *testing.T) {
	src := `
module bad:
input t;
repeat 0 times await t; end repeat
end module
`
	if _, err := Parse(src); err == nil {
		t.Error("repeat 0 must be rejected")
	}
}
