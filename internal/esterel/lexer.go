// Package esterel implements a frontend for the Esterel-like reactive
// subset the paper's examples use (Fig. 1): modules with signal
// declarations, await/emit/assignment/if/loop statements, compiled to
// CFSMs with one control state per await site. It stands in for the
// Esterel-to-SHIFT path ([36]) through which POLIS accepted Esterel
// specifications while keeping the designer-chosen CFSM granularity.
package esterel

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokSymbol  // punctuation and operators
	tokKeyword // reserved words
)

var keywords = map[string]bool{
	"module": true, "input": true, "output": true, "var": true, "in": true,
	"loop": true, "repeat": true, "times": true, "end": true, "await": true, "emit": true, "if": true,
	"then": true, "else": true, "present": true, "integer": true,
	"and": true, "or": true, "not": true, "nothing": true, "mod": true,
}

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex splits the source into tokens; it is total (errors surface as
// unexpected symbols at parse time).
func lex(src string) []token {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '%': // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
				l.pos++
			}
			word := l.src[start:l.pos]
			kind := tokIdent
			if keywords[strings.ToLower(word)] {
				kind = tokKeyword
				word = strings.ToLower(word)
			}
			l.toks = append(l.toks, token{kind, word, l.line})
		case unicode.IsDigit(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], l.line})
		default:
			// Multi-character operators first.
			rest := l.src[l.pos:]
			for _, op := range []string{":=", "<=", ">=", "<>"} {
				if strings.HasPrefix(rest, op) {
					l.toks = append(l.toks, token{tokSymbol, op, l.line})
					l.pos += len(op)
					goto next
				}
			}
			l.toks = append(l.toks, token{tokSymbol, string(c), l.line})
			l.pos++
		next:
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.line})
	return l.toks
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// parseError formats a located syntax error.
func parseError(t token, format string, args ...interface{}) error {
	return fmt.Errorf("esterel: line %d: %s", t.line, fmt.Sprintf(format, args...))
}
