package esterel

import (
	"fmt"

	"polis/internal/cfsm"
)

// ParseProgram parses a source file containing one or more modules.
func ParseProgram(src string) ([]*Module, error) {
	p := &parser{toks: lex(src)}
	var mods []*Module
	for !p.atEOF() {
		// Re-parse module by module: find each module's token span by
		// delegating to Parse on the remaining tokens.
		m, rest, err := parseOne(p)
		if err != nil {
			return nil, err
		}
		mods = append(mods, m)
		p = rest
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("esterel: no modules in source")
	}
	return mods, nil
}

// parseOne consumes exactly one module from the parser and returns the
// remainder.
func parseOne(p *parser) (*Module, *parser, error) {
	start := p.pos
	depth := 0
	for i := start; i < len(p.toks); i++ {
		t := p.toks[i]
		if t.kind == tokKeyword {
			switch t.text {
			case "module":
				depth++
			}
			if t.text == "end" && i+1 < len(p.toks) &&
				p.toks[i+1].kind == tokKeyword && p.toks[i+1].text == "module" {
				depth--
				if depth == 0 {
					span := append([]token{}, p.toks[start:i+2]...)
					span = append(span, token{kind: tokEOF, line: p.toks[i+1].line})
					sub := &parser{toks: span}
					m, err := parseModule(sub)
					if err != nil {
						return nil, nil, err
					}
					return m, &parser{toks: p.toks, pos: i + 2}, nil
				}
			}
		}
	}
	return nil, nil, parseError(p.toks[start], "unterminated module")
}

// CompileProgram compiles all modules of a source file into a network:
// signals with the same name connect modules (an output of one module
// feeding the equally named input of another becomes an internal
// one-place-buffered channel). Signal types (pure/valued) must agree
// across modules.
func CompileProgram(src string) (*cfsm.Network, map[string]*cfsm.CFSM, error) {
	mods, err := ParseProgram(src)
	if err != nil {
		return nil, nil, err
	}
	name := mods[0].Name
	if len(mods) > 1 {
		name = name + "_system"
	}
	n := cfsm.NewNetwork(name)
	sigByName := make(map[string]*cfsm.Signal)
	pureOf := make(map[string]bool)
	getSignal := func(d SigDecl) (*cfsm.Signal, error) {
		if s, ok := sigByName[d.Name]; ok {
			if pureOf[d.Name] != !d.Valued {
				return nil, fmt.Errorf("esterel: signal %s declared both pure and valued", d.Name)
			}
			return s, nil
		}
		s := n.NewSignal(d.Name, !d.Valued)
		sigByName[d.Name] = s
		pureOf[d.Name] = !d.Valued
		return s, nil
	}

	machines := make(map[string]*cfsm.CFSM, len(mods))
	for _, mod := range mods {
		if _, dup := machines[mod.Name]; dup {
			return nil, nil, fmt.Errorf("esterel: duplicate module %s", mod.Name)
		}
		// Compile the module in isolation, then rebuild it against
		// the shared network signals. Compiling twice is wasteful but
		// keeps Compile's single-module contract simple; module sizes
		// make it immaterial.
		c, _, err := compileWithSignals(mod, getSignal)
		if err != nil {
			return nil, nil, err
		}
		// Prefix state variables with the module name would break
		// expressions; instead require network-unique names, which
		// Network.Validate enforces below (pc variables are already
		// module-qualified).
		machines[mod.Name] = c
		if err := n.Add(c); err != nil {
			return nil, nil, err
		}
	}
	if err := n.Validate(); err != nil {
		return nil, nil, err
	}
	return n, machines, nil
}

// compileWithSignals compiles one module using a shared signal
// resolver instead of fresh per-module signals.
func compileWithSignals(m *Module, getSignal func(SigDecl) (*cfsm.Signal, error)) (*cfsm.CFSM, map[string]*cfsm.Signal, error) {
	// Rebuild the module with pre-resolved signals by temporarily
	// compiling against a shadow CFSM: Compile allocates its own
	// signals, so instead we inline its logic via a signal-injection
	// shim — the cleanest hook is to compile normally and then remap,
	// but Signal identity is baked into tests/actions. So: resolve
	// first, then run a Compile variant that accepts the signals.
	sigs := make(map[string]*cfsm.Signal)
	for _, d := range m.Inputs {
		s, err := getSignal(d)
		if err != nil {
			return nil, nil, err
		}
		sigs[d.Name] = s
	}
	for _, d := range m.Outputs {
		s, err := getSignal(d)
		if err != nil {
			return nil, nil, err
		}
		sigs[d.Name] = s
	}
	return compileResolved(m, sigs)
}
