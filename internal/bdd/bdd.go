// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs) in the style of Bryant, with the operations the POLIS
// software-synthesis flow needs: ITE, cofactoring, existential
// quantification (smoothing), support computation, and dynamic
// variable reordering by sifting (Rudell) with precedence constraints
// and variable groups.
//
// Nodes are identified by small integer handles into an arena owned by
// a Manager. Handle 0 is the constant false, handle 1 the constant
// true. The diagrams are strongly canonical: two handles are equal if
// and only if the functions they denote are equal (under the current
// variable order). In-place adjacent-level swaps preserve the function
// denoted by every handle, so handles remain valid across reordering.
//
// # Concurrency
//
// A Manager is NOT safe for concurrent use, and deliberately so: the
// unique tables, operation cache and in-place sifting all mutate
// shared arena state, and guarding them with locks would put a mutex
// on the hottest path of the whole synthesis flow. A Manager is owned
// by a single goroutine — by convention the one that created it — and
// every operation must be invoked from that goroutine. Concurrent
// synthesis (see internal/pipeline) gives each worker its own Manager
// instead of sharing one. Build with `-tags bdddebug` to enforce the
// invariant at run time: every mutating entry point then panics when
// called from a goroutine other than the owner (see owner_debug.go);
// a deliberate handoff can re-bind ownership with TransferOwnership.
package bdd

import (
	"fmt"
	"sort"
	"strings"
)

// Node is a handle to a BDD node within a Manager.
type Node int32

// Var identifies a BDD variable. Variables are created in sequence by
// NewVar; their position in the order is a separate notion (a level)
// that reordering may change.
type Var int32

// Terminal nodes.
const (
	False Node = 0
	True  Node = 1
)

// IsConst reports whether n is one of the two terminal nodes.
func (n Node) IsConst() bool { return n == False || n == True }

type node struct {
	v    Var // variable label; -1 for terminals
	lo   Node
	hi   Node
	mark bool // GC mark bit
	dead bool // on the free list
}

// Manager owns a collection of BDD nodes sharing one variable order.
type Manager struct {
	nodes  []node
	unique []map[uint64]Node // per-variable unique tables, indexed by Var
	free   []Node            // recycled arena slots

	perm    []int // Var -> level
	invperm []Var // level -> Var
	names   []string

	group []int32 // Var -> group id (contiguous block of levels)

	ite   map[iteKey]Node
	roots map[Node]int // protected external references

	owner int64 // owning goroutine id; only set under the bdddebug tag

	// Stats
	GCs    int
	Swaps  int
	Hits   int
	Misses int
	// PeakNodes is the high-water mark of live arena nodes, the
	// paper's "peak BDD size" figure of merit for an ordering.
	PeakNodes int
	// SiftPasses counts completed sifting passes.
	SiftPasses int
}

type iteKey struct{ f, g, h Node }

// New creates an empty manager with no variables.
func New() *Manager {
	m := &Manager{
		ite:   make(map[iteKey]Node),
		roots: make(map[Node]int),
	}
	if ownerChecks {
		m.owner = goid()
	}
	// Terminals occupy slots 0 and 1.
	m.nodes = append(m.nodes, node{v: -1}, node{v: -1})
	return m
}

// checkOwner panics when the calling goroutine is not the Manager's
// owner. It compiles to nothing unless the bdddebug build tag is set.
func (m *Manager) checkOwner() {
	if ownerChecks {
		if g := goid(); g != m.owner {
			panic(fmt.Sprintf("bdd: Manager owned by goroutine %d used from goroutine %d; a Manager is single-goroutine (see package doc)", m.owner, g))
		}
	}
}

// TransferOwnership re-binds the Manager to the calling goroutine.
// Use it for a deliberate handoff (create on one goroutine, hand the
// whole manager to another); it is a no-op unless built with the
// bdddebug tag.
func (m *Manager) TransferOwnership() {
	if ownerChecks {
		m.owner = goid()
	}
}

// NumVars returns the number of variables created so far.
func (m *Manager) NumVars() int { return len(m.perm) }

// NumNodes returns the number of live nodes in the arena, including
// the two terminals.
func (m *Manager) NumNodes() int { return len(m.nodes) - len(m.free) }

// NewVar creates a fresh variable placed at the bottom of the current
// order. The name is only used for diagnostics.
func (m *Manager) NewVar(name string) Var {
	m.checkOwner()
	v := Var(len(m.perm))
	m.perm = append(m.perm, len(m.perm))
	m.invperm = append(m.invperm, v)
	m.unique = append(m.unique, make(map[uint64]Node))
	m.names = append(m.names, name)
	m.group = append(m.group, int32(v)) // singleton group
	return v
}

// VarName returns the diagnostic name given to v at creation.
func (m *Manager) VarName(v Var) string { return m.names[v] }

// Level returns the current position of v in the variable order
// (0 is the top).
func (m *Manager) Level(v Var) int { return m.perm[v] }

// VarAt returns the variable currently at the given level.
func (m *Manager) VarAt(level int) Var { return m.invperm[level] }

// levelOf returns the order level of the labelling variable of n, or a
// value larger than any level for terminals.
func (m *Manager) levelOf(n Node) int {
	v := m.nodes[n].v
	if v < 0 {
		return int(^uint(0) >> 1) // max int
	}
	return m.perm[v]
}

// VarOf returns the labelling variable of a non-terminal node.
func (m *Manager) VarOf(n Node) Var {
	if n.IsConst() {
		panic("bdd: VarOf on terminal")
	}
	return m.nodes[n].v
}

// LowHigh returns the two cofactor children of a non-terminal node.
func (m *Manager) LowHigh(n Node) (lo, hi Node) {
	if n.IsConst() {
		panic("bdd: LowHigh on terminal")
	}
	nd := &m.nodes[n]
	return nd.lo, nd.hi
}

func pairKey(lo, hi Node) uint64 { return uint64(uint32(lo))<<32 | uint64(uint32(hi)) }

// mk returns the canonical node (v, lo, hi), creating it if necessary.
// The children must be labelled by variables strictly below v in the
// current order.
func (m *Manager) mk(v Var, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	tbl := m.unique[v]
	k := pairKey(lo, hi)
	if n, ok := tbl[k]; ok {
		return n
	}
	var n Node
	if len(m.free) > 0 {
		n = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
		m.nodes[n] = node{v: v, lo: lo, hi: hi}
	} else {
		n = Node(len(m.nodes))
		m.nodes = append(m.nodes, node{v: v, lo: lo, hi: hi})
	}
	if live := len(m.nodes) - len(m.free); live > m.PeakNodes {
		m.PeakNodes = live
	}
	tbl[k] = n
	return n
}

// VarNode returns the function that is true exactly when v is true.
func (m *Manager) VarNode(v Var) Node { return m.mk(v, False, True) }

// NVarNode returns the function that is true exactly when v is false.
func (m *Manager) NVarNode(v Var) Node { return m.mk(v, True, False) }

// Protect registers n as an external root so garbage collection and
// reordering keep it (and everything it reaches) alive. Calls nest.
func (m *Manager) Protect(n Node) Node {
	m.roots[n]++
	return n
}

// Unprotect removes one protection registration added by Protect.
func (m *Manager) Unprotect(n Node) {
	if c := m.roots[n]; c > 1 {
		m.roots[n] = c - 1
	} else {
		delete(m.roots, n)
	}
}

// GC reclaims nodes not reachable from protected roots. The operation
// cache is flushed. Handles of collected nodes become invalid.
func (m *Manager) GC() {
	m.checkOwner()
	m.GCs++
	for r := range m.roots {
		m.markRec(r)
	}
	m.ite = make(map[iteKey]Node)
	m.free = m.free[:0]
	for i := 2; i < len(m.nodes); i++ {
		nd := &m.nodes[i]
		if nd.dead {
			m.free = append(m.free, Node(i))
			continue
		}
		if nd.mark {
			nd.mark = false
			continue
		}
		delete(m.unique[nd.v], pairKey(nd.lo, nd.hi))
		nd.dead = true
		m.free = append(m.free, Node(i))
	}
}

func (m *Manager) markRec(n Node) {
	if n.IsConst() {
		return
	}
	nd := &m.nodes[n]
	if nd.mark {
		return
	}
	nd.mark = true
	m.markRec(nd.lo)
	m.markRec(nd.hi)
}

// Size returns the number of non-terminal nodes reachable from the
// given roots (shared nodes counted once).
func (m *Manager) Size(roots ...Node) int {
	seen := make(map[Node]bool)
	var count func(n Node)
	count = func(n Node) {
		if n.IsConst() || seen[n] {
			return
		}
		seen[n] = true
		nd := &m.nodes[n]
		count(nd.lo)
		count(nd.hi)
	}
	for _, r := range roots {
		count(r)
	}
	return len(seen)
}

// Eval evaluates the function denoted by n under the given assignment.
func (m *Manager) Eval(n Node, assign func(Var) bool) bool {
	for !n.IsConst() {
		nd := &m.nodes[n]
		if assign(nd.v) {
			n = nd.hi
		} else {
			n = nd.lo
		}
	}
	return n == True
}

// Support returns the variables the function denoted by n essentially
// depends on, in increasing Var order.
func (m *Manager) Support(n Node) []Var {
	seen := make(map[Node]bool)
	vars := make(map[Var]bool)
	var walk func(n Node)
	walk = func(n Node) {
		if n.IsConst() || seen[n] {
			return
		}
		seen[n] = true
		nd := &m.nodes[n]
		vars[nd.v] = true
		walk(nd.lo)
		walk(nd.hi)
	}
	walk(n)
	out := make([]Var, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders a small diagram as nested ITE expressions, for
// debugging and tests.
func (m *Manager) String(n Node) string {
	var b strings.Builder
	var rec func(n Node)
	rec = func(n Node) {
		switch n {
		case False:
			b.WriteString("0")
		case True:
			b.WriteString("1")
		default:
			nd := &m.nodes[n]
			fmt.Fprintf(&b, "ite(%s,", m.names[nd.v])
			rec(nd.hi)
			b.WriteString(",")
			rec(nd.lo)
			b.WriteString(")")
		}
	}
	rec(n)
	return b.String()
}

// CheckInvariants verifies structural invariants of the manager:
// reducedness (no node with lo==hi), ordering (children strictly below
// parents), and unique-table consistency. It is used by tests and
// returns a descriptive error on the first violation found.
func (m *Manager) CheckInvariants() error {
	for i := 2; i < len(m.nodes); i++ {
		nd := &m.nodes[i]
		if nd.dead {
			continue
		}
		if nd.lo == nd.hi {
			return fmt.Errorf("node %d: lo == hi (%d)", i, nd.lo)
		}
		if m.levelOf(nd.lo) <= m.perm[nd.v] || m.levelOf(nd.hi) <= m.perm[nd.v] {
			return fmt.Errorf("node %d (var %s level %d): child above or at own level", i, m.names[nd.v], m.perm[nd.v])
		}
		got, ok := m.unique[nd.v][pairKey(nd.lo, nd.hi)]
		if !ok || got != Node(i) {
			return fmt.Errorf("node %d: unique table entry missing or wrong (%d)", i, got)
		}
	}
	for v, tbl := range m.unique {
		for k, n := range tbl {
			nd := &m.nodes[n]
			if nd.dead {
				return fmt.Errorf("unique[%d] holds dead node %d", v, n)
			}
			if nd.v != Var(v) || pairKey(nd.lo, nd.hi) != k {
				return fmt.Errorf("unique[%d] entry inconsistent for node %d", v, n)
			}
		}
	}
	// Order permutation consistency.
	for v, lvl := range m.perm {
		if m.invperm[lvl] != Var(v) {
			return fmt.Errorf("perm/invperm inconsistent at var %d", v)
		}
	}
	return nil
}

// Dot renders the diagrams rooted at the given nodes in Graphviz
// format, one rank per variable level, for inspection and debugging.
func (m *Manager) Dot(roots ...Node) string {
	var b strings.Builder
	b.WriteString("digraph bdd {\n  rankdir=TB;\n")
	b.WriteString("  n0 [label=\"0\", shape=box];\n  n1 [label=\"1\", shape=box];\n")
	seen := map[Node]bool{False: true, True: true}
	var walk func(n Node)
	walk = func(n Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		nd := &m.nodes[n]
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n, m.names[nd.v])
		fmt.Fprintf(&b, "  n%d -> n%d [style=dashed];\n", n, nd.lo)
		fmt.Fprintf(&b, "  n%d -> n%d;\n", n, nd.hi)
		walk(nd.lo)
		walk(nd.hi)
	}
	for i, r := range roots {
		fmt.Fprintf(&b, "  root%d [label=\"f%d\", shape=plaintext];\n  root%d -> n%d;\n", i, i, i, r)
		walk(r)
	}
	b.WriteString("}\n")
	return b.String()
}
