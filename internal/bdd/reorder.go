package bdd

import (
	"fmt"
	"sort"
)

// swapLevels exchanges the variables at levels x and x+1 in place.
// Every node handle continues to denote the same function afterwards
// (the classical adjacent-variable swap). The operation cache is
// invalidated by a generation bump — sifting performs thousands of
// swaps per pass, so this path must not allocate.
func (m *Manager) swapLevels(x int) {
	m.Swaps++
	u := m.invperm[x]
	v := m.invperm[x+1]

	// Nodes labelled u that reference a v-labelled child must be
	// re-expressed with v on top. Collect them first (into a reused
	// scratch buffer); the unique table is mutated below.
	tu := &m.unique[u]
	affected := m.swapScratch[:0]
	for _, n := range tu.slots {
		if n == emptySlot || n == tombSlot {
			continue
		}
		nd := &m.nodes[n]
		if m.nodes[nd.lo].v == v || m.nodes[nd.hi].v == v {
			affected = append(affected, n)
		}
	}
	for _, n := range affected {
		nd := &m.nodes[n]
		tu.delete(m.nodes, nd.lo, nd.hi)
	}
	for _, n := range affected {
		f0, f1 := m.nodes[n].lo, m.nodes[n].hi
		var f00, f01, f10, f11 Node
		if m.nodes[f0].v == v {
			f00, f01 = m.nodes[f0].lo, m.nodes[f0].hi
		} else {
			f00, f01 = f0, f0
		}
		if m.nodes[f1].v == v {
			f10, f11 = m.nodes[f1].lo, m.nodes[f1].hi
		} else {
			f10, f11 = f1, f1
		}
		// mk may grow the arena, so take no pointers across it.
		n0 := m.mk(u, f00, f10)
		n1 := m.mk(u, f01, f11)
		// Relabel n in place as a v-node. A collision with an
		// existing v-node is impossible for reduced diagrams.
		if old := m.unique[v].lookup(m.nodes, n0, n1); old != 0 && old != n {
			panic(fmt.Sprintf("bdd: swap collision at level %d (node %d vs %d)", x, old, n))
		}
		m.nodes[n].v = v
		m.nodes[n].lo = n0
		m.nodes[n].hi = n1
		m.unique[v].insert(m.nodes, n0, n1, n)
	}
	m.swapScratch = affected[:0]
	m.perm[u], m.perm[v] = x+1, x
	m.invperm[x], m.invperm[x+1] = v, u
	m.bumpCacheGen()
}

// costRoots returns the roots the sift cost function measures.
func (m *Manager) costRoots(opts SiftOptions) []Node {
	if opts.Roots != nil {
		return opts.Roots
	}
	roots := make([]Node, 0, len(m.roots))
	for r := range m.roots {
		roots = append(roots, r)
	}
	return roots
}

// Group binds the given variables into one reordering block. The
// variables must currently occupy contiguous levels; sifting then
// moves the block as a unit, preserving the internal order. Grouping
// is how multi-valued variables keep their encoding bits adjacent.
func (m *Manager) Group(vars ...Var) error {
	if len(vars) == 0 {
		return nil
	}
	levels := make([]int, len(vars))
	for i, v := range vars {
		levels[i] = m.perm[v]
	}
	sort.Ints(levels)
	for i := 1; i < len(levels); i++ {
		if levels[i] != levels[i-1]+1 {
			return fmt.Errorf("bdd: Group requires contiguous levels, got %v", levels)
		}
	}
	gid := m.group[vars[0]]
	for _, v := range vars {
		m.group[v] = gid
	}
	return nil
}

// GroupOf returns the reordering-group id of v. Variables start in
// singleton groups named by their own Var value.
func (m *Manager) GroupOf(v Var) int32 { return m.group[v] }

// block is a maximal run of levels whose variables share a group id.
type block struct {
	gid   int32
	start int // first level
	size  int // number of levels
}

func (m *Manager) blocks() []block {
	var out []block
	n := len(m.invperm)
	for lvl := 0; lvl < n; {
		g := m.group[m.invperm[lvl]]
		sz := 1
		for lvl+sz < n && m.group[m.invperm[lvl+sz]] == g {
			sz++
		}
		out = append(out, block{gid: g, start: lvl, size: sz})
		lvl += sz
	}
	return out
}

// moveVarUp moves the variable at the given level up by one level.
func (m *Manager) moveVarUp(level int) { m.swapLevels(level - 1) }

// swapBlockDown exchanges blocks[i] with blocks[i+1] by bubbling each
// variable of the lower block up through the upper block. The slice is
// updated to reflect the new layout.
func (m *Manager) swapBlockDown(bs []block, i int) {
	up, down := bs[i], bs[i+1]
	for k := 0; k < down.size; k++ {
		// The k-th variable of the lower block sits at level
		// down.start+k and must rise up.size levels; the variables
		// of the lower block already moved sit above it.
		for lvl := down.start + k; lvl > up.start+k; lvl-- {
			m.moveVarUp(lvl)
		}
	}
	bs[i] = block{gid: down.gid, start: up.start, size: down.size}
	bs[i+1] = block{gid: up.gid, start: up.start + down.size, size: up.size}
}

// SiftOptions controls dynamic reordering.
type SiftOptions struct {
	// MaxGrowth aborts movement in one direction once the diagram
	// grows beyond this factor of its size at the start of the
	// variable's sift. Zero means 2.0.
	MaxGrowth float64
	// Precede, if non-nil, is a partial order on group ids: when
	// Precede(a, b) is true, every variable of group a must stay
	// above (before) every variable of group b. If the initial
	// order violates the relation, Sift first bubbles blocks into a
	// satisfying order. This implements the paper's constraint that
	// an output variable may not sift above the inputs in its
	// support.
	Precede func(a, b int32) bool
	// Passes is the number of sifting passes (default 1; the paper
	// uses single-pass dynamic reordering).
	Passes int
	// Roots, if non-nil, is the set of functions whose shared size
	// sifting minimises. All protected roots stay alive and valid
	// either way; Roots additionally survive the collections Sift
	// runs (they are marked as extra GC roots), so they need not be
	// protected themselves. POLIS uses this to optimise the
	// characteristic function alone.
	Roots []Node
}

// Sift performs Rudell-style sifting of the reordering blocks: each
// block in turn (largest node contribution first) is moved through all
// positions permitted by the precedence constraint and fixed at the
// position minimising the number of live nodes. Unreferenced nodes are
// garbage collected first so that dead nodes do not bias the costs.
func (m *Manager) Sift(opts SiftOptions) {
	m.checkOwner()
	if opts.MaxGrowth == 0 {
		opts.MaxGrowth = 2.0
	}
	passes := opts.Passes
	if passes <= 0 {
		passes = 1
	}
	m.gc(opts.Roots)
	if opts.Precede != nil {
		m.enforcePrecedence(opts.Precede)
	}
	for p := 0; p < passes; p++ {
		m.siftPass(opts)
	}
	m.gc(opts.Roots)
}

// enforcePrecedence bubbles blocks into an order satisfying the given
// partial order. Since the relation is acyclic, repeated adjacent
// exchanges terminate.
func (m *Manager) enforcePrecedence(precede func(a, b int32) bool) {
	bs := m.blocks()
	for changed := true; changed; {
		changed = false
		for i := 0; i+1 < len(bs); i++ {
			if precede(bs[i+1].gid, bs[i].gid) {
				m.swapBlockDown(bs, i)
				changed = true
			}
		}
	}
}

func (m *Manager) siftPass(opts SiftOptions) {
	m.SiftPasses++
	// Order blocks by descending live-node contribution.
	contrib := make(map[int32]int)
	roots := m.costRoots(opts)
	seen := make(map[Node]bool)
	var count func(n Node)
	count = func(n Node) {
		if n.IsConst() || seen[n] {
			return
		}
		seen[n] = true
		nd := &m.nodes[n]
		contrib[m.group[nd.v]]++
		count(nd.lo)
		count(nd.hi)
	}
	for _, r := range roots {
		count(r)
	}
	order := make([]int32, 0, len(contrib))
	for g := range contrib {
		order = append(order, g)
	}
	sort.Slice(order, func(i, j int) bool {
		if contrib[order[i]] != contrib[order[j]] {
			return contrib[order[i]] > contrib[order[j]]
		}
		return order[i] < order[j]
	})
	for _, gid := range order {
		m.siftBlock(gid, opts)
		// Automatic collection: adjacent swaps orphan re-expressed
		// nodes, and dead nodes both waste memory and slow the swap
		// scans. Collect when the dead ratio is high — the arena has
		// doubled since the last GC — marking the cost roots as extra
		// roots so unprotected cost functions survive.
		if live := m.NumNodes(); live > m.autoGCMin && live > 2*m.liveAfterGC {
			m.gc(opts.Roots)
		}
	}
}

// siftBlock moves the block with the given group id through its
// permitted window and leaves it at the best position found.
func (m *Manager) siftBlock(gid int32, opts SiftOptions) {
	bs := m.blocks()
	pos := -1
	for i, b := range bs {
		if b.gid == gid {
			pos = i
			break
		}
	}
	if pos < 0 {
		return // block's variables label no live nodes and never existed? defensive
	}
	lo, hi := 0, len(bs)-1
	if opts.Precede != nil {
		for j := 0; j < pos; j++ {
			if opts.Precede(bs[j].gid, gid) {
				if j+1 > lo {
					lo = j + 1
				}
			}
		}
		for j := pos + 1; j < len(bs); j++ {
			if opts.Precede(gid, bs[j].gid) {
				if j-1 < hi {
					hi = j - 1
				}
			}
		}
	}
	// Resolve the cost roots once: cost() runs after every adjacent
	// swap, and rebuilding the root list each time allocates in the
	// hottest loop of the synthesis flow.
	roots := m.costRoots(opts)
	cost := func() int { return m.Size(roots...) }
	startSize := cost()
	limit := int(float64(startSize) * opts.MaxGrowth)
	bestSize := startSize
	bestPos := pos
	cur := pos

	down := func(stop int) {
		for cur < stop {
			m.swapBlockDown(bs, cur)
			cur++
			s := cost()
			if s < bestSize {
				bestSize, bestPos = s, cur
			}
			if s > limit {
				return
			}
		}
	}
	up := func(stop int) {
		for cur > stop {
			m.swapBlockDown(bs, cur-1)
			cur--
			s := cost()
			if s < bestSize {
				bestSize, bestPos = s, cur
			}
			if s > limit {
				return
			}
		}
	}
	// Visit the nearer boundary first (Rudell's heuristic).
	if pos-lo < hi-pos {
		up(lo)
		down(hi)
	} else {
		down(hi)
		up(lo)
	}
	// Return to the best position seen.
	for cur < bestPos {
		m.swapBlockDown(bs, cur)
		cur++
	}
	for cur > bestPos {
		m.swapBlockDown(bs, cur-1)
		cur--
	}
}

// Order returns the current variable order, top to bottom.
func (m *Manager) Order() []Var {
	out := make([]Var, len(m.invperm))
	copy(out, m.invperm)
	return out
}
