package bdd

// Differential gate for the complement-edge rewrite: the live kernel
// is driven in lock-step with internal/refbdd — a verbatim snapshot of
// the pre-change kernel (two physical terminals, materialised NOT) —
// through identical randomized operation scripts, machine-style
// characteristic-function builds, and sifting. The two kernels must
// agree on every function's truth table, on the classical node count
// Size reports, on String renderings, and on every final sift order.

import (
	"math/rand"
	"testing"

	refbdd "polis/internal/bdd/internal/refbdd"
)

// diffPair drives the live and reference kernels in lock-step: index i
// of live and ref always denotes the same Boolean function.
type diffPair struct {
	m    *Manager
	rm   *refbdd.Manager
	vs   []Var
	rvs  []refbdd.Var
	live []Node
	ref  []refbdd.Node
}

func newDiffPair(nvars int) *diffPair {
	p := &diffPair{m: New(), rm: refbdd.New()}
	for i := 0; i < nvars; i++ {
		name := string(rune('a' + i))
		p.vs = append(p.vs, p.m.NewVar(name))
		p.rvs = append(p.rvs, p.rm.NewVar(name))
	}
	p.push(False, refbdd.False)
	p.push(True, refbdd.True)
	for i := range p.vs {
		p.push(p.m.VarNode(p.vs[i]), p.rm.VarNode(p.rvs[i]))
	}
	return p
}

// push registers a matched pair, protecting both sides so GC and
// sifting inside either kernel never invalidate a tracked handle.
func (p *diffPair) push(f Node, rf refbdd.Node) int {
	p.m.Protect(f)
	p.rm.Protect(rf)
	p.live = append(p.live, f)
	p.ref = append(p.ref, rf)
	return len(p.live) - 1
}

// check compares pair i across the kernels: identical truth table over
// every assignment, identical classical Size, identical rendering.
func (p *diffPair) check(t *testing.T, i int, where string) {
	t.Helper()
	f, rf := p.live[i], p.ref[i]
	for a := 0; a < 1<<len(p.vs); a++ {
		got := p.m.Eval(f, func(v Var) bool { return a&(1<<int(v)) != 0 })
		want := p.rm.Eval(rf, func(v refbdd.Var) bool { return a&(1<<int(v)) != 0 })
		if got != want {
			t.Fatalf("%s: pair %d disagrees at assignment %b: live %v, reference %v",
				where, i, a, got, want)
		}
	}
	if got, want := p.m.Size(f), p.rm.Size(rf); got != want {
		t.Fatalf("%s: pair %d classical size: live %d, reference %d", where, i, got, want)
	}
	if got, want := p.m.String(f), p.rm.String(rf); got != want {
		t.Fatalf("%s: pair %d rendering:\nlive      %s\nreference %s", where, i, got, want)
	}
}

// orders returns both kernels' variable orders as plain ints.
func (p *diffPair) orders() (a, b []int) {
	for _, v := range p.m.Order() {
		a = append(a, int(v))
	}
	for _, v := range p.rm.Order() {
		b = append(b, int(v))
	}
	return
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialVsReference runs randomized operation scripts —
// every public connective, quantification, cofactoring, GC, and
// sifting — against the pre-change kernel snapshot.
func TestDifferentialVsReference(t *testing.T) {
	trials, steps := 40, 70
	if testing.Short() {
		trials, steps = 8, 40
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(9200 + trial)
		r := rand.New(rand.NewSource(seed))
		p := newDiffPair(6 + r.Intn(4))
		pick := func() int { return r.Intn(len(p.live)) }
		for step := 0; step < steps; step++ {
			i, j, k := pick(), pick(), pick()
			var idx int
			switch op := r.Intn(10); op {
			case 0:
				idx = p.push(p.m.Not(p.live[i]), p.rm.Not(p.ref[i]))
			case 1:
				idx = p.push(p.m.And(p.live[i], p.live[j]), p.rm.And(p.ref[i], p.ref[j]))
			case 2:
				idx = p.push(p.m.Or(p.live[i], p.live[j]), p.rm.Or(p.ref[i], p.ref[j]))
			case 3:
				idx = p.push(p.m.Xor(p.live[i], p.live[j]), p.rm.Xor(p.ref[i], p.ref[j]))
			case 4:
				idx = p.push(p.m.Xnor(p.live[i], p.live[j]), p.rm.Xnor(p.ref[i], p.ref[j]))
			case 5:
				idx = p.push(p.m.Ite(p.live[i], p.live[j], p.live[k]),
					p.rm.Ite(p.ref[i], p.ref[j], p.ref[k]))
			case 6:
				idx = p.push(p.m.Implies(p.live[i], p.live[j]), p.rm.Implies(p.ref[i], p.ref[j]))
			case 7:
				v := r.Intn(len(p.vs))
				val := r.Intn(2) == 1
				idx = p.push(p.m.Cofactor(p.live[i], p.vs[v], val),
					p.rm.Cofactor(p.ref[i], p.rvs[v], val))
			case 8:
				n := 1 + r.Intn(3)
				vs := make([]Var, n)
				rvs := make([]refbdd.Var, n)
				for q := 0; q < n; q++ {
					w := r.Intn(len(p.vs))
					vs[q], rvs[q] = p.vs[w], p.rvs[w]
				}
				idx = p.push(p.m.Exists(p.live[i], vs...), p.rm.Exists(p.ref[i], rvs...))
			default:
				if got, want := p.m.Intersects(p.live[i], p.live[j]),
					p.rm.Intersects(p.ref[i], p.ref[j]); got != want {
					t.Fatalf("seed %d step %d: Intersects(%d,%d): live %v, reference %v",
						seed, step, i, j, got, want)
				}
				continue
			}
			p.check(t, idx, "op result")
			if step%17 == 11 {
				p.m.GC()
				p.rm.GC()
			}
		}
		if err := p.m.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: live kernel invariants: %v", seed, err)
		}
		if err := p.rm.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: reference kernel invariants: %v", seed, err)
		}
		// Sift both and require identical final orders; all tracked
		// pairs must still denote the same functions afterwards.
		p.m.Sift(SiftOptions{Passes: 1 + r.Intn(2)})
		p.rm.Sift(refbdd.SiftOptions{Passes: p.m.SiftPasses})
		if a, b := p.orders(); !sameInts(a, b) {
			t.Fatalf("seed %d: sift orders diverge: live %v, reference %v", seed, a, b)
		}
		for i := range p.live {
			p.check(t, i, "post-sift")
		}
	}
}

// TestDifferentialCharFn builds machine-style characteristic functions
// — chi = AND_i xnor(o_i, f_i(state, inputs)), the shape the synthesis
// flow feeds the kernel — in both kernels, then sifts with chi as the
// cost root, mirroring how POLIS optimises the characteristic function
// alone. Orders, classical sizes, and truth tables must agree.
func TestDifferentialCharFn(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(4400 + trial)
		r := rand.New(rand.NewSource(seed))
		nin := 4 + r.Intn(3)  // state+input bits
		nout := 2 + r.Intn(3) // output bits
		p := newDiffPair(nin + nout)
		inIdx := make([]int, nin) // pair indices of the input literals
		for i := 0; i < nin; i++ {
			inIdx[i] = 2 + i // after False, True
		}
		chi, rchi := True, refbdd.True
		for o := 0; o < nout; o++ {
			// Random function over the input literals, built the same
			// way on both sides.
			w := inIdx[r.Intn(nin)]
			f, rf := p.live[w], p.ref[w]
			for d := 0; d < 3+r.Intn(4); d++ {
				w = inIdx[r.Intn(nin)]
				g, rg := p.live[w], p.ref[w]
				switch r.Intn(3) {
				case 0:
					f, rf = p.m.And(f, g), p.rm.And(rf, rg)
				case 1:
					f, rf = p.m.Or(f, g), p.rm.Or(rf, rg)
				default:
					f, rf = p.m.Xor(f, g), p.rm.Xor(rf, rg)
				}
				if r.Intn(3) == 0 {
					f, rf = p.m.Not(f), p.rm.Not(rf)
				}
			}
			ov, rov := p.vs[nin+o], p.rvs[nin+o]
			chi = p.m.And(chi, p.m.Xnor(p.m.VarNode(ov), f))
			rchi = p.rm.And(rchi, p.rm.Xnor(p.rm.VarNode(rov), rf))
		}
		idx := p.push(chi, rchi)
		p.check(t, idx, "characteristic function")
		// The characteristic function pairs every output literal with
		// its complement — exactly where complement-edge sharing pays.
		// SharedSize must never exceed the classical count.
		if ss, cs := p.m.SharedSize(chi), p.m.Size(chi); ss > cs {
			t.Fatalf("seed %d: SharedSize %d exceeds classical Size %d", seed, ss, cs)
		}
		p.m.Sift(SiftOptions{Roots: []Node{chi}})
		p.rm.Sift(refbdd.SiftOptions{Roots: []refbdd.Node{rchi}})
		if a, b := p.orders(); !sameInts(a, b) {
			t.Fatalf("seed %d: char-fn sift orders diverge: live %v, reference %v", seed, a, b)
		}
		if got, want := p.m.Size(chi), p.rm.Size(rchi); got != want {
			t.Fatalf("seed %d: post-sift classical size: live %d, reference %d", seed, got, want)
		}
		p.check(t, idx, "post-sift characteristic function")
	}
}
