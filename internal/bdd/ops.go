package bdd

// Ite computes if-then-else: f ? g : h. It is the universal binary
// operation from which all two-argument Boolean connectives derive.
func (m *Manager) Ite(f, g, h Node) Node {
	m.checkOwner()
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	k := iteKey{f, g, h}
	if r, ok := m.ite[k]; ok {
		m.Hits++
		return r
	}
	m.Misses++
	// Split on the top variable among f, g, h.
	lvl := m.levelOf(f)
	if l := m.levelOf(g); l < lvl {
		lvl = l
	}
	if l := m.levelOf(h); l < lvl {
		lvl = l
	}
	v := m.invperm[lvl]
	f0, f1 := m.cofactorsAt(f, v)
	g0, g1 := m.cofactorsAt(g, v)
	h0, h1 := m.cofactorsAt(h, v)
	lo := m.Ite(f0, g0, h0)
	hi := m.Ite(f1, g1, h1)
	r := m.mk(v, lo, hi)
	m.ite[k] = r
	return r
}

// cofactorsAt returns the two cofactors of n with respect to v when v
// is at or above n's top level; if n does not test v the cofactors are
// n itself.
func (m *Manager) cofactorsAt(n Node, v Var) (lo, hi Node) {
	if n.IsConst() {
		return n, n
	}
	nd := &m.nodes[n]
	if nd.v == v {
		return nd.lo, nd.hi
	}
	return n, n
}

// Not returns the complement of f.
func (m *Manager) Not(f Node) Node { return m.Ite(f, False, True) }

// And returns the conjunction of its arguments (True for none).
func (m *Manager) And(fs ...Node) Node {
	r := True
	for _, f := range fs {
		r = m.Ite(r, f, False)
	}
	return r
}

// Or returns the disjunction of its arguments (False for none).
func (m *Manager) Or(fs ...Node) Node {
	r := False
	for _, f := range fs {
		r = m.Ite(r, True, f)
	}
	return r
}

// Xor returns the exclusive or of f and g.
func (m *Manager) Xor(f, g Node) Node { return m.Ite(f, m.Not(g), g) }

// Xnor returns the equivalence (biconditional) of f and g.
func (m *Manager) Xnor(f, g Node) Node { return m.Ite(f, g, m.Not(g)) }

// Implies returns f -> g.
func (m *Manager) Implies(f, g Node) Node { return m.Ite(f, g, True) }

// Cofactor returns the restriction of f with v replaced by the given
// constant value (Shannon cofactor).
func (m *Manager) Cofactor(f Node, v Var, val bool) Node {
	m.checkOwner()
	cache := make(map[Node]Node)
	lvl := m.perm[v]
	var rec func(n Node) Node
	rec = func(n Node) Node {
		if n.IsConst() || m.levelOf(n) > lvl {
			return n
		}
		if r, ok := cache[n]; ok {
			return r
		}
		nd := &m.nodes[n]
		var r Node
		if nd.v == v {
			if val {
				r = nd.hi
			} else {
				r = nd.lo
			}
		} else {
			r = m.mk(nd.v, rec(nd.lo), rec(nd.hi))
		}
		cache[n] = r
		return r
	}
	return rec(f)
}

// Restrict applies a partial assignment given as parallel slices of
// variables and values, cofactoring f by each in turn.
func (m *Manager) Restrict(f Node, vars []Var, vals []bool) Node {
	for i, v := range vars {
		f = m.Cofactor(f, v, vals[i])
	}
	return f
}

// Exists existentially quantifies (smooths) the given variables out of
// f: the result is true wherever some assignment to vars makes f true.
func (m *Manager) Exists(f Node, vars ...Var) Node {
	m.checkOwner()
	if len(vars) == 0 {
		return f
	}
	quant := make(map[Var]bool, len(vars))
	maxLvl := -1
	for _, v := range vars {
		quant[v] = true
		if m.perm[v] > maxLvl {
			maxLvl = m.perm[v]
		}
	}
	cache := make(map[Node]Node)
	var rec func(n Node) Node
	rec = func(n Node) Node {
		if n.IsConst() || m.levelOf(n) > maxLvl {
			return n
		}
		if r, ok := cache[n]; ok {
			return r
		}
		nd := &m.nodes[n]
		lo := rec(nd.lo)
		hi := rec(nd.hi)
		var r Node
		if quant[nd.v] {
			r = m.Ite(lo, True, hi) // lo OR hi
		} else {
			r = m.mk(nd.v, lo, hi)
		}
		cache[n] = r
		return r
	}
	return rec(f)
}

// Forall universally quantifies the given variables out of f.
func (m *Manager) Forall(f Node, vars ...Var) Node {
	return m.Not(m.Exists(m.Not(f), vars...))
}

// Compose substitutes the function g for variable v inside f.
func (m *Manager) Compose(f Node, v Var, g Node) Node {
	f0 := m.Cofactor(f, v, false)
	f1 := m.Cofactor(f, v, true)
	return m.Ite(g, f1, f0)
}

// DependsOn reports whether f essentially depends on v.
func (m *Manager) DependsOn(f Node, v Var) bool {
	seen := make(map[Node]bool)
	lvl := m.perm[v]
	var rec func(n Node) bool
	rec = func(n Node) bool {
		if n.IsConst() || m.levelOf(n) > lvl || seen[n] {
			return false
		}
		seen[n] = true
		nd := &m.nodes[n]
		if nd.v == v {
			return true
		}
		return rec(nd.lo) || rec(nd.hi)
	}
	return rec(f)
}

// SatCount returns the number of satisfying assignments of f over the
// given number of variables (all variables of the manager typically).
// It uses float64 accumulation, which is exact up to 2^53.
func (m *Manager) SatCount(f Node, nvars int) float64 {
	cache := make(map[Node]float64)
	var rec func(n Node) float64 // fraction of the full space
	rec = func(n Node) float64 {
		switch n {
		case False:
			return 0
		case True:
			return 1
		}
		if r, ok := cache[n]; ok {
			return r
		}
		nd := &m.nodes[n]
		r := (rec(nd.lo) + rec(nd.hi)) / 2
		cache[n] = r
		return r
	}
	total := rec(f)
	for i := 0; i < nvars; i++ {
		total *= 2
	}
	return total
}

// SatisfyOne returns one satisfying assignment of f as a map from
// variable to value, or nil if f is unsatisfiable. Variables f does
// not constrain are omitted from the map.
func (m *Manager) SatisfyOne(f Node) map[Var]bool {
	if f == False {
		return nil
	}
	out := make(map[Var]bool)
	for !f.IsConst() {
		nd := &m.nodes[f]
		if nd.lo != False {
			out[nd.v] = false
			f = nd.lo
		} else {
			out[nd.v] = true
			f = nd.hi
		}
	}
	return out
}

// ForEachCube calls fn once per cube (path to True) of f. The cube is
// presented as parallel slices of variables and values, valid only for
// the duration of the call. fn returning false stops the enumeration.
func (m *Manager) ForEachCube(f Node, fn func(vars []Var, vals []bool) bool) {
	var vars []Var
	var vals []bool
	var rec func(n Node) bool
	rec = func(n Node) bool {
		if n == False {
			return true
		}
		if n == True {
			return fn(vars, vals)
		}
		nd := &m.nodes[n]
		vars = append(vars, nd.v)
		vals = append(vals, false)
		if !rec(nd.lo) {
			return false
		}
		vals[len(vals)-1] = true
		if !rec(nd.hi) {
			return false
		}
		vars = vars[:len(vars)-1]
		vals = vals[:len(vals)-1]
		return true
	}
	rec(f)
}

// Cube builds the conjunction of literals given by parallel slices of
// variables and phase values.
func (m *Manager) Cube(vars []Var, vals []bool) Node {
	m.checkOwner()
	r := True
	// Build bottom-up in order of decreasing level for linear cost.
	idx := make([]int, len(vars))
	for i := range idx {
		idx[i] = i
	}
	// Simple insertion by level; cubes are short.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && m.perm[vars[idx[j]]] > m.perm[vars[idx[j-1]]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	for _, i := range idx {
		if vals[i] {
			r = m.mk(vars[i], False, r)
		} else {
			r = m.mk(vars[i], r, False)
		}
	}
	return r
}
