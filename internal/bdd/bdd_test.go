package bdd

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// evalAll exhaustively evaluates f over all assignments of nvars
// variables and returns the truth table as a bit-per-assignment slice.
func evalAll(m *Manager, f Node, vars []Var) []bool {
	n := len(vars)
	out := make([]bool, 1<<n)
	for a := 0; a < 1<<n; a++ {
		out[a] = m.Eval(f, func(v Var) bool {
			for i, w := range vars {
				if w == v {
					return a&(1<<i) != 0
				}
			}
			return false
		})
	}
	return out
}

func newVars(m *Manager, n int) []Var {
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = m.NewVar(string(rune('a' + i)))
	}
	return vs
}

func TestTerminals(t *testing.T) {
	m := New()
	if !False.IsConst() || !True.IsConst() {
		t.Fatal("terminals must be const")
	}
	if m.Eval(True, nil) != true || m.Eval(False, nil) != false {
		t.Fatal("terminal eval wrong")
	}
	if m.Not(True) != False || m.Not(False) != True {
		t.Fatal("Not on terminals wrong")
	}
}

func TestVarNode(t *testing.T) {
	m := New()
	v := m.NewVar("x")
	x := m.VarNode(v)
	if m.Eval(x, func(Var) bool { return true }) != true {
		t.Error("x under x=1 should be true")
	}
	if m.Eval(x, func(Var) bool { return false }) != false {
		t.Error("x under x=0 should be false")
	}
	if m.VarNode(v) != x {
		t.Error("VarNode must be canonical")
	}
	nx := m.NVarNode(v)
	if nx != m.Not(x) {
		t.Error("NVarNode must equal Not(VarNode)")
	}
}

func TestBasicConnectives(t *testing.T) {
	m := New()
	vs := newVars(m, 2)
	a, b := m.VarNode(vs[0]), m.VarNode(vs[1])
	cases := []struct {
		name string
		f    Node
		tt   [4]bool // assignments 00,10,01,11 (bit0=a, bit1=b)
	}{
		{"and", m.And(a, b), [4]bool{false, false, false, true}},
		{"or", m.Or(a, b), [4]bool{false, true, true, true}},
		{"xor", m.Xor(a, b), [4]bool{false, true, true, false}},
		{"xnor", m.Xnor(a, b), [4]bool{true, false, false, true}},
		{"implies", m.Implies(a, b), [4]bool{true, false, true, true}},
	}
	for _, c := range cases {
		got := evalAll(m, c.f, vs)
		for i := range got {
			if got[i] != c.tt[i] {
				t.Errorf("%s: assignment %02b: got %v want %v", c.name, i, got[i], c.tt[i])
			}
		}
	}
}

func TestIteCanonicity(t *testing.T) {
	m := New()
	vs := newVars(m, 3)
	a, b, c := m.VarNode(vs[0]), m.VarNode(vs[1]), m.VarNode(vs[2])
	// (a AND b) OR c built two different ways must be one node.
	f1 := m.Or(m.And(a, b), c)
	f2 := m.Ite(a, m.Or(b, c), c)
	if f1 != f2 {
		t.Errorf("canonicity violated: %s vs %s", m.String(f1), m.String(f2))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeMorgan(t *testing.T) {
	m := New()
	vs := newVars(m, 4)
	f := func(i, j int) Node { return m.And(m.VarNode(vs[i]), m.VarNode(vs[j])) }
	lhs := m.Not(m.Or(f(0, 1), f(2, 3)))
	rhs := m.And(m.Not(f(0, 1)), m.Not(f(2, 3)))
	if lhs != rhs {
		t.Error("De Morgan equality must hold node-identically")
	}
}

func TestCofactor(t *testing.T) {
	m := New()
	vs := newVars(m, 3)
	a, b, c := m.VarNode(vs[0]), m.VarNode(vs[1]), m.VarNode(vs[2])
	f := m.Or(m.And(a, b), m.And(m.Not(a), c))
	if got := m.Cofactor(f, vs[0], true); got != b {
		t.Errorf("f|a=1 should be b, got %s", m.String(got))
	}
	if got := m.Cofactor(f, vs[0], false); got != c {
		t.Errorf("f|a=0 should be c, got %s", m.String(got))
	}
	// Cofactor by a variable not in the support is the identity.
	g := m.And(b, c)
	if m.Cofactor(g, vs[0], true) != g {
		t.Error("cofactor by non-support var must be identity")
	}
}

func TestRestrictAndShannon(t *testing.T) {
	m := New()
	vs := newVars(m, 4)
	f := randomFunc(m, vs, rand.New(rand.NewSource(7)))
	for _, v := range vs {
		f0 := m.Cofactor(f, v, false)
		f1 := m.Cofactor(f, v, true)
		back := m.Ite(m.VarNode(v), f1, f0)
		if back != f {
			t.Fatalf("Shannon expansion must reconstruct f for var %v", v)
		}
	}
}

func TestExists(t *testing.T) {
	m := New()
	vs := newVars(m, 3)
	a, b, c := m.VarNode(vs[0]), m.VarNode(vs[1]), m.VarNode(vs[2])
	f := m.And(a, m.Or(b, c))
	// Exists a. f = (b OR c)
	if got := m.Exists(f, vs[0]); got != m.Or(b, c) {
		t.Errorf("exists a: got %s", m.String(got))
	}
	// Exists b,c . f = a
	if got := m.Exists(f, vs[1], vs[2]); got != a {
		t.Errorf("exists b,c: got %s", m.String(got))
	}
	// Forall b. (b OR c) = c
	if got := m.Forall(m.Or(b, c), vs[1]); got != c {
		t.Errorf("forall b: got %s", m.String(got))
	}
}

func TestCompose(t *testing.T) {
	m := New()
	vs := newVars(m, 3)
	a, b, c := m.VarNode(vs[0]), m.VarNode(vs[1]), m.VarNode(vs[2])
	f := m.Xor(a, b)
	// Substitute b := (a AND c): f becomes a XOR (a AND c).
	got := m.Compose(f, vs[1], m.And(a, c))
	want := m.Xor(a, m.And(a, c))
	if got != want {
		t.Errorf("compose: got %s want %s", m.String(got), m.String(want))
	}
}

func TestSupport(t *testing.T) {
	m := New()
	vs := newVars(m, 4)
	f := m.Or(m.And(m.VarNode(vs[0]), m.VarNode(vs[2])), m.VarNode(vs[2]))
	// f reduces to vs[2] only.
	sup := m.Support(f)
	if len(sup) != 1 || sup[0] != vs[2] {
		t.Errorf("support: got %v", sup)
	}
	if m.DependsOn(f, vs[0]) {
		t.Error("f must not depend on vs[0]")
	}
	if !m.DependsOn(f, vs[2]) {
		t.Error("f must depend on vs[2]")
	}
}

func TestSatCount(t *testing.T) {
	m := New()
	vs := newVars(m, 4)
	a, b := m.VarNode(vs[0]), m.VarNode(vs[1])
	if got := m.SatCount(m.And(a, b), 4); got != 4 {
		t.Errorf("satcount(a&b, 4 vars) = %v, want 4", got)
	}
	if got := m.SatCount(True, 4); got != 16 {
		t.Errorf("satcount(true) = %v", got)
	}
	if got := m.SatCount(False, 4); got != 0 {
		t.Errorf("satcount(false) = %v", got)
	}
}

func TestSatisfyOne(t *testing.T) {
	m := New()
	vs := newVars(m, 3)
	f := m.And(m.VarNode(vs[0]), m.Not(m.VarNode(vs[2])))
	asg := m.SatisfyOne(f)
	if asg == nil {
		t.Fatal("satisfiable function returned nil")
	}
	if !m.Eval(f, func(v Var) bool { return asg[v] }) {
		t.Error("SatisfyOne returned a non-satisfying assignment")
	}
	if m.SatisfyOne(False) != nil {
		t.Error("False must have no satisfying assignment")
	}
}

func TestForEachCube(t *testing.T) {
	m := New()
	vs := newVars(m, 3)
	a, b, c := m.VarNode(vs[0]), m.VarNode(vs[1]), m.VarNode(vs[2])
	f := m.Or(m.And(a, b), m.And(m.Not(a), c))
	count := 0
	m.ForEachCube(f, func(vars []Var, vals []bool) bool {
		count++
		cube := m.Cube(vars, vals)
		if m.And(cube, f) != cube {
			t.Error("cube not contained in f")
		}
		return true
	})
	if count == 0 {
		t.Error("no cubes enumerated")
	}
}

func TestCube(t *testing.T) {
	m := New()
	vs := newVars(m, 3)
	cube := m.Cube([]Var{vs[2], vs[0]}, []bool{true, false})
	want := m.And(m.Not(m.VarNode(vs[0])), m.VarNode(vs[2]))
	if cube != want {
		t.Errorf("cube: got %s want %s", m.String(cube), m.String(want))
	}
}

func TestGC(t *testing.T) {
	m := New()
	vs := newVars(m, 6)
	f := randomFunc(m, vs, rand.New(rand.NewSource(3)))
	m.Protect(f)
	// Build garbage.
	for i := 0; i < 50; i++ {
		randomFunc(m, vs, rand.New(rand.NewSource(int64(i))))
	}
	before := evalAll(m, f, vs)
	m.GC()
	after := evalAll(m, f, vs)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("GC changed a protected function")
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Freed slots must be reusable.
	g := randomFunc(m, vs, rand.New(rand.NewSource(99)))
	_ = g
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// randomFunc builds a random function over vars using a mix of
// connectives.
func randomFunc(m *Manager, vars []Var, r *rand.Rand) Node {
	terms := make([]Node, 0, 4)
	for i := 0; i < 3+r.Intn(4); i++ {
		cube := True
		for _, v := range vars {
			switch r.Intn(3) {
			case 0:
				cube = m.And(cube, m.VarNode(v))
			case 1:
				cube = m.And(cube, m.Not(m.VarNode(v)))
			}
		}
		terms = append(terms, cube)
	}
	return m.Or(terms...)
}

func TestSwapPreservesFunctions(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		m := New()
		vs := newVars(m, 5)
		f := randomFunc(m, vs, r)
		g := randomFunc(m, vs, r)
		m.Protect(f)
		m.Protect(g)
		fTT := evalAll(m, f, vs)
		gTT := evalAll(m, g, vs)
		for i := 0; i < 20; i++ {
			m.swapLevels(r.Intn(len(vs) - 1))
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("trial %d swap %d: %v", trial, i, err)
			}
		}
		fTT2 := evalAll(m, f, vs)
		gTT2 := evalAll(m, g, vs)
		for i := range fTT {
			if fTT[i] != fTT2[i] || gTT[i] != gTT2[i] {
				t.Fatalf("trial %d: swap changed function at minterm %d", trial, i)
			}
		}
	}
}

func TestSiftPreservesFunctionAndHelps(t *testing.T) {
	// The classic order-sensitive function: x1 x2 + x3 x4 + x5 x6 has
	// linear size in the good order and exponential in the
	// interleaved bad order x1 x3 x5 x2 x4 x6.
	m := New()
	vs := newVars(m, 6)
	// Create in bad order by construction: vars were created in
	// order a..f at levels 0..5; build pairs (a,d),(b,e),(c,f).
	f := m.Or(
		m.And(m.VarNode(vs[0]), m.VarNode(vs[3])),
		m.And(m.VarNode(vs[1]), m.VarNode(vs[4])),
		m.And(m.VarNode(vs[2]), m.VarNode(vs[5])),
	)
	m.Protect(f)
	before := m.Size(f)
	tt := evalAll(m, f, vs)
	m.Sift(SiftOptions{})
	after := m.Size(f)
	if after >= before {
		t.Errorf("sifting did not reduce the size: before=%d after=%d", before, after)
	}
	// Optimal size for this function is 8 nodes (pairs adjacent).
	if after > 8 {
		t.Errorf("sifting result %d nodes, expected <= 8", after)
	}
	tt2 := evalAll(m, f, vs)
	for i := range tt {
		if tt[i] != tt2[i] {
			t.Fatalf("sifting changed the function at minterm %d", i)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSiftWithPrecedence(t *testing.T) {
	m := New()
	vs := newVars(m, 6)
	f := m.Or(
		m.And(m.VarNode(vs[0]), m.VarNode(vs[3])),
		m.And(m.VarNode(vs[1]), m.VarNode(vs[4])),
		m.And(m.VarNode(vs[2]), m.VarNode(vs[5])),
	)
	m.Protect(f)
	// Constrain: group of vs[5] must stay below everything else
	// (like an output after its support).
	last := m.GroupOf(vs[5])
	m.Sift(SiftOptions{Precede: func(a, b int32) bool {
		return b == last && a != last
	}})
	if m.Level(vs[5]) != 5 {
		t.Errorf("vs[5] must remain at the bottom, is at level %d", m.Level(vs[5]))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupedSiftKeepsBlockContiguous(t *testing.T) {
	m := New()
	vs := newVars(m, 8)
	if err := m.Group(vs[2], vs[3]); err != nil {
		t.Fatal(err)
	}
	if err := m.Group(vs[5], vs[6]); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	f := randomFunc(m, vs, r)
	m.Protect(f)
	tt := evalAll(m, f, vs)
	m.Sift(SiftOptions{})
	tt2 := evalAll(m, f, vs)
	for i := range tt {
		if tt[i] != tt2[i] {
			t.Fatal("grouped sifting changed the function")
		}
	}
	// Blocks must be contiguous.
	if d := m.Level(vs[2]) - m.Level(vs[3]); d != -1 {
		t.Errorf("group {2,3} split: levels %d %d", m.Level(vs[2]), m.Level(vs[3]))
	}
	if d := m.Level(vs[5]) - m.Level(vs[6]); d != -1 {
		t.Errorf("group {5,6} split: levels %d %d", m.Level(vs[5]), m.Level(vs[6]))
	}
}

func TestGroupRequiresContiguous(t *testing.T) {
	m := New()
	vs := newVars(m, 4)
	if err := m.Group(vs[0], vs[2]); err == nil {
		t.Error("grouping non-adjacent variables must fail")
	}
}

// Property: ITE agrees with its truth-table definition on random
// 4-variable functions encoded as 16-bit truth tables.
func TestQuickIteMatchesTruthTable(t *testing.T) {
	m := New()
	vs := newVars(m, 4)
	fromTT := func(tt uint16) Node {
		f := False
		for a := 0; a < 16; a++ {
			if tt&(1<<a) != 0 {
				vals := make([]bool, 4)
				for i := range vals {
					vals[i] = a&(1<<i) != 0
				}
				f = m.Or(f, m.Cube(vs, vals))
			}
		}
		return f
	}
	prop := func(ft, gt, ht uint16) bool {
		f, g, h := fromTT(ft), fromTT(gt), fromTT(ht)
		r := m.Ite(f, g, h)
		want := (ft & gt) | (^ft & ht)
		got := uint16(0)
		for a := 0; a < 16; a++ {
			if m.Eval(r, func(v Var) bool {
				for i, w := range vs {
					if w == v {
						return a&(1<<i) != 0
					}
				}
				return false
			}) {
				got |= 1 << a
			}
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: building the same truth table twice yields the same node
// (strong canonicity).
func TestQuickCanonicity(t *testing.T) {
	m := New()
	vs := newVars(m, 4)
	build := func(tt uint16, order []int) Node {
		f := False
		for _, a := range order {
			if tt&(1<<a) != 0 {
				vals := make([]bool, 4)
				for i := range vals {
					vals[i] = a&(1<<i) != 0
				}
				f = m.Or(f, m.Cube(vs, vals))
			}
		}
		return f
	}
	fwd := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	rev := []int{15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	prop := func(tt uint16) bool {
		return build(tt, fwd) == build(tt, rev)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSizeCounting(t *testing.T) {
	m := New()
	vs := newVars(m, 3)
	a, b, c := m.VarNode(vs[0]), m.VarNode(vs[1]), m.VarNode(vs[2])
	f := m.And(a, m.And(b, c)) // chain of 3 nodes
	if got := m.Size(f); got != 3 {
		t.Errorf("Size(a&b&c) = %d, want 3", got)
	}
	if got := m.Size(f, f); got != 3 {
		t.Errorf("shared roots double-counted: %d", got)
	}
	if got := m.Size(True); got != 0 {
		t.Errorf("Size(True) = %d, want 0", got)
	}
}

func TestProtectUnprotect(t *testing.T) {
	m := New()
	vs := newVars(m, 4)
	f := randomFunc(m, vs, rand.New(rand.NewSource(5)))
	m.Protect(f)
	m.Protect(f)
	m.Unprotect(f)
	m.GC()
	// Still protected once: must survive.
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.nodes[f>>1].dead && !f.IsConst() {
		t.Fatal("node collected while still protected")
	}
	m.Unprotect(f)
	m.GC()
	if !f.IsConst() && !m.nodes[f>>1].dead {
		t.Fatal("unprotected node not collected")
	}
}

func BenchmarkIteDeep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := New()
		vs := newVars(m, 16)
		f := False
		for j := 0; j+1 < len(vs); j += 2 {
			f = m.Or(f, m.And(m.VarNode(vs[j]), m.VarNode(vs[j+1])))
		}
	}
}

func BenchmarkSift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := New()
		vs := newVars(m, 12)
		f := False
		// Bad interleaving of 6 pairs.
		for j := 0; j < 6; j++ {
			f = m.Or(f, m.And(m.VarNode(vs[j]), m.VarNode(vs[j+6])))
		}
		m.Protect(f)
		m.Sift(SiftOptions{})
	}
}

func TestDot(t *testing.T) {
	m := New()
	vs := newVars(m, 3)
	f := m.Or(m.And(m.VarNode(vs[0]), m.VarNode(vs[1])), m.VarNode(vs[2]))
	dot := m.Dot(f)
	for _, needle := range []string{"digraph bdd", "style=dashed", "shape=box", "root0"} {
		if !strings.Contains(dot, needle) {
			t.Errorf("dot missing %q", needle)
		}
	}
}

// TestDotComplementArcs checks the negated-edge rendering: XOR has a
// complemented internal else arc, and its complement handle gives a
// complemented root edge — both must carry the odot arrow tail, and
// then arcs never do (canonical form keeps them regular).
func TestDotComplementArcs(t *testing.T) {
	m := New()
	vs := newVars(m, 2)
	x := m.Xor(m.VarNode(vs[0]), m.VarNode(vs[1]))
	dot := m.Dot(x, m.Not(x))
	if !strings.Contains(dot, "style=dashed, dir=both, arrowtail=odot") {
		t.Errorf("complemented else arc not rendered with odot tail:\n%s", dot)
	}
	if !strings.Contains(dot, "root1 -> ") || !strings.Contains(dot, "[dir=both, arrowtail=odot]") {
		t.Errorf("complemented root handle not rendered with odot tail:\n%s", dot)
	}
	for _, line := range strings.Split(dot, "\n") {
		if strings.Contains(line, "odot") && !strings.Contains(line, "dashed") &&
			!strings.Contains(line, "root") {
			t.Errorf("then arc rendered complemented: %s", line)
		}
	}
	// Both polarities share every physical node: the two roots must
	// point at the same node id.
	if m.SharedSize(x, m.Not(x)) != m.SharedSize(x) {
		t.Errorf("complement pair does not share nodes")
	}
}

// TestCheckInvariantsDetectsComplementedHi corrupts a live node's hi
// arc with a complement bit — the exact violation of the canonical
// form a bug in mk or swapLevels would produce — and requires
// CheckInvariants to detect it, then restores the node and requires a
// clean report.
func TestCheckInvariantsDetectsComplementedHi(t *testing.T) {
	m := New()
	vs := newVars(m, 4)
	f := randomFunc(m, vs, rand.New(rand.NewSource(77)))
	m.Protect(f)
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("clean manager reported dirty: %v", err)
	}
	// Find a live node whose hi arc is an internal node (so the
	// complement bit actually flips a followable arc).
	corrupt := -1
	for i := 1; i < len(m.nodes); i++ {
		if nd := &m.nodes[i]; !nd.dead && nd.hi > 1 {
			corrupt = i
			break
		}
	}
	if corrupt < 0 {
		t.Skip("no internal hi arc in this diagram")
	}
	m.nodes[corrupt].hi ^= 1
	err := m.CheckInvariants()
	if err == nil {
		t.Fatal("CheckInvariants missed a complemented hi arc")
	}
	if !strings.Contains(err.Error(), "complemented hi arc") {
		t.Fatalf("wrong diagnosis for complemented hi arc: %v", err)
	}
	m.nodes[corrupt].hi ^= 1
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("restored manager still dirty: %v", err)
	}
}

// TestNotAllocatesNoNodes pins the headline complement-edge property:
// Not is a handle bit flip. It must create no nodes, must round-trip
// exactly, and — outside the bdddebug build, whose owner check itself
// allocates — must not allocate at all.
func TestNotAllocatesNoNodes(t *testing.T) {
	m := New()
	vs := newVars(m, 8)
	f := randomFunc(m, vs, rand.New(rand.NewSource(11)))
	m.Protect(f)
	before := m.NumNodes()
	g := m.Not(f)
	if m.NumNodes() != before {
		t.Fatalf("Not created nodes: %d -> %d", before, m.NumNodes())
	}
	if g == f {
		t.Fatal("Not returned its argument")
	}
	if m.Not(g) != f {
		t.Fatal("double complement did not restore the handle")
	}
	if got := m.Size(g); got != m.Size(f) {
		t.Fatalf("complement classical size %d != original %d", got, m.Size(f))
	}
	if ownerChecks {
		return // goid() in the debug owner check allocates
	}
	if avg := testing.AllocsPerRun(100, func() { g = m.Not(g) }); avg != 0 {
		t.Fatalf("Not allocates %.1f times per call, want 0", avg)
	}
}

// BenchmarkNot measures the complemented-handle flip; allocs/op must
// report 0 (asserted by TestNotAllocatesNoNodes, visible in -benchmem).
func BenchmarkNot(b *testing.B) {
	m := New()
	vs := newVars(m, 12)
	f := randomFunc(m, vs, rand.New(rand.NewSource(3)))
	m.Protect(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = m.Not(f)
	}
	if f == False && b.N == 0 {
		b.Fatal("unreachable; keeps f live")
	}
}
