package bdd

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestSwapDeltaMatchesSize drives swapLevels directly with the cost
// state active and checks, after every adjacent swap at every level,
// that the returned delta keeps the incremental cost equal to a full
// Size(roots...) recount. This is the default-build version of the
// bdddebug per-swap assertion.
func TestSwapDeltaMatchesSize(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		r := rand.New(rand.NewSource(int64(9300 + trial)))
		m := New()
		vs := newVars(m, 10)
		var roots []Node
		for i := 0; i < 3; i++ {
			f := randomFunc(m, vs, r)
			m.Protect(f)
			roots = append(roots, f)
		}
		// Cost roots are a strict subset: the swap bookkeeping must
		// ignore nodes reachable only from the other protected
		// functions.
		m.sift.roots = roots[:1]
		m.gc(m.sift.roots)
		m.rebuildSiftCost()
		m.sift.on = true
		if got, want := m.sift.size, m.Size(roots[0]); got != want {
			t.Fatalf("trial %d: rebuilt cost %d, Size %d", trial, got, want)
		}
		size := m.sift.size
		for sweep := 0; sweep < 3; sweep++ {
			for x := 0; x+1 < m.NumVars(); x++ {
				size += m.swapLevels(x)
				if want := m.Size(roots[0]); size != want {
					t.Fatalf("trial %d sweep %d level %d: incremental cost %d, Size %d",
						trial, sweep, x, size, want)
				}
			}
		}
		m.sift.on = false
		m.sift.roots = nil
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The other protected functions must have survived the swaps
		// untouched as functions.
		for _, f := range roots {
			if f == False || f == True {
				continue
			}
			if m.Size(f) == 0 {
				t.Fatalf("trial %d: protected root lost", trial)
			}
		}
	}
}

// TestSiftFastPathDisjointSupports sifts a manager holding two
// functions over disjoint variable sets: swaps between the two
// support halves must take the interaction-matrix relabel path (no
// table scan, no cache bump), and the result must stay canonical and
// semantically intact.
func TestSiftFastPathDisjointSupports(t *testing.T) {
	m := New()
	vs := newVars(m, 12)
	f := False // badly interleaved pairs over the even variables
	g := False // and over the odd variables
	for j := 0; j+6 < 12; j += 2 {
		f = m.Or(f, m.And(m.VarNode(vs[j]), m.VarNode(vs[j+6])))
		g = m.Or(g, m.And(m.VarNode(vs[j+1]), m.VarNode(vs[j+7])))
	}
	m.Protect(f)
	m.Protect(g)
	truth := func(n Node) []bool {
		var tt []bool
		for a := 0; a < 1<<12; a++ {
			tt = append(tt, m.Eval(n, func(v Var) bool { return a&(1<<uint(v)) != 0 }))
		}
		return tt
	}
	wantF, wantG := truth(f), truth(g)

	m.Sift(SiftOptions{})
	if m.SwapsSkipped == 0 {
		t.Error("no swap took the non-interacting fast path on disjoint supports")
	}
	if m.Swaps == 0 {
		t.Error("sift performed no full swaps; the scenario is degenerate")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(truth(f), wantF) || !reflect.DeepEqual(truth(g), wantG) {
		t.Error("sifting changed a function's semantics")
	}
	if len(m.sift.interact) != 0 {
		t.Error("interaction matrix not cleared after Sift")
	}
}

// TestSiftLowerBoundPrunes checks that lower-bound pruning fires on a
// diagram with a strongly preferred order and that pruning changes
// neither the final order nor the cost-root size versus the
// reference sifter.
func TestSiftLowerBoundPrunes(t *testing.T) {
	build := func() *Manager {
		m := New()
		vs := newVars(m, 14)
		f := False
		for j := 0; j < 7; j++ {
			f = m.Or(f, m.And(m.VarNode(vs[j]), m.VarNode(vs[j+7])))
		}
		m.Protect(f)
		return m
	}
	m1 := build()
	m1.Sift(SiftOptions{Passes: 2})
	if m1.LBPrunes == 0 {
		t.Error("lower-bound pruning never fired across two passes")
	}
	m2 := build()
	referenceSift(m2, SiftOptions{Passes: 2})
	if !reflect.DeepEqual(m1.Order(), m2.Order()) {
		t.Errorf("pruned sifter order %v, reference order %v", m1.Order(), m2.Order())
	}
	if m1.CostEvals == 0 {
		t.Error("CostEvals never advanced")
	}
	if err := m1.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
