//go:build bdddebug

package bdd

import (
	"runtime"
	"strconv"
	"strings"
)

// ownerChecks enables the single-goroutine ownership assertion: every
// mutating Manager entry point panics when invoked from a goroutine
// other than the owner. The check is deliberately coarse (entry points
// only, not the hot mk path) so `go test -tags bdddebug` stays usable.
const ownerChecks = true

// siftCostChecks enables the incremental-sift-cost invariant: after
// every adjacent swap the maintained cost must equal Size(roots...)
// recomputed from scratch (see Manager.verifySiftCost). O(live) per
// swap, so debug builds sift at the old complexity — the point is to
// catch any divergence between the counters and the ground truth.
const siftCostChecks = true

// goid returns the current goroutine's id by parsing the first line of
// its stack trace ("goroutine N [running]: ..."). There is no cheaper
// portable way to obtain it; that is fine for a debug-only assertion.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := strings.TrimPrefix(string(buf[:n]), "goroutine ")
	if i := strings.IndexByte(s, ' '); i > 0 {
		if id, err := strconv.ParseInt(s[:i], 10, 64); err == nil {
			return id
		}
	}
	return -1
}
