package bdd

import (
	"math/rand"
	"testing"
)

// TestSiftZeroCacheResets is the regression test for the
// generation-stamped operation cache: a full sift pass (thousands of
// adjacent swaps plus the surrounding GCs) must invalidate the cache
// by bumping the generation only, never by reallocating it.
func TestSiftZeroCacheResets(t *testing.T) {
	m := New()
	vs := newVars(m, 12)
	f := False
	// Bad interleaving of 6 pairs, so sifting has real work to do.
	for j := 0; j < 6; j++ {
		f = m.Or(f, m.And(m.VarNode(vs[j]), m.VarNode(vs[j+6])))
	}
	m.Protect(f)

	resets := m.CacheResets
	gen := m.cacheGen
	m.Sift(SiftOptions{Passes: 2})
	if m.Swaps == 0 {
		t.Fatal("sift performed no swaps; the regression test exercises nothing")
	}
	if m.CacheResets != resets {
		t.Errorf("sifting reallocated the operation cache %d time(s); want generation bumps only",
			m.CacheResets-resets)
	}
	if m.cacheGen == gen {
		t.Error("sifting did not advance the cache generation")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCacheGrowthCountsResets pins the other side of the contract:
// cache growth (from public operation entry points) is a real
// reallocation and must be visible in CacheResets.
func TestCacheGrowthCountsResets(t *testing.T) {
	m := New()
	vs := newVars(m, 18)
	resets := m.CacheResets
	// Build something large enough that the arena outgrows the
	// initial cache several times.
	f := False
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		f = m.Or(f, randomFunc(m, vs, r))
	}
	if len(m.nodes) <= cacheMinSize*2 {
		t.Skipf("arena stayed at %d nodes; growth not exercised", len(m.nodes))
	}
	if m.CacheResets == resets {
		t.Error("arena outgrew the cache but CacheResets never advanced")
	}
	if len(m.cache) <= cacheMinSize {
		t.Errorf("cache never grew (still %d entries for %d arena nodes)", len(m.cache), len(m.nodes))
	}
}

// TestApplyOpsCrossIteAndEval is a randomized crosstest in the spirit
// of internal/crosstest: the specialized And/Or/Xor/Xnor/Not operators
// must agree (a) node-identically with the equivalent expressed
// through the general three-operand Ite recursion, and (b) pointwise
// with truth tables computed via Eval over every assignment. It runs
// under both the default and the bdddebug builds.
func TestApplyOpsCrossIteAndEval(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 8
	}
	const nv = 6
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(4000 + trial)))
		m := New()
		vs := newVars(m, nv)
		f := randomFunc(m, vs, r)
		g := randomFunc(m, vs, r)
		ft := evalAll(m, f, vs)
		gt := evalAll(m, g, vs)

		// fromTT rebuilds a function from its truth table as an OR of
		// minterm cubes — a construction that exercises only mk and
		// the unique tables, independent of the apply recursions under
		// test. Strong canonicity then makes handle equality a full
		// functional-equivalence check.
		fromTT := func(tt []bool) Node {
			out := False
			vals := make([]bool, nv)
			for a, on := range tt {
				if !on {
					continue
				}
				for i := range vals {
					vals[i] = a&(1<<uint(i)) != 0
				}
				out = m.Or(out, m.Cube(vs, vals))
			}
			return out
		}

		check := func(name string, got Node, want func(a, b bool) bool) {
			t.Helper()
			wt := make([]bool, len(ft))
			for i := range wt {
				wt[i] = want(ft[i], gt[i])
			}
			if ref := fromTT(wt); got != ref {
				t.Fatalf("trial %d %s: specialized op %s != cube-built reference %s",
					trial, name, m.String(got), m.String(ref))
			}
			tt := evalAll(m, got, vs)
			for i := range tt {
				if tt[i] != wt[i] {
					t.Fatalf("trial %d %s: wrong value at minterm %d", trial, name, i)
				}
			}
		}

		check("and", m.And(f, g), func(a, b bool) bool { return a && b })
		check("or", m.Or(f, g), func(a, b bool) bool { return a || b })
		check("xor", m.Xor(f, g), func(a, b bool) bool { return a != b })
		check("xnor", m.Xnor(f, g), func(a, b bool) bool { return a == b })
		check("not", m.Not(f), func(a, b bool) bool { return !a })

		// Ite-derived identities through the general three-operand
		// recursion (g and h are distinct internal nodes here, so none
		// of the terminal forwarding rules apply).
		notG := m.Not(g)
		if m.Xor(f, g) != m.Ite(f, notG, g) {
			t.Fatalf("trial %d: Xor != Ite(f, !g, g)", trial)
		}
		if m.Xnor(f, g) != m.Ite(f, g, notG) {
			t.Fatalf("trial %d: Xnor != Ite(f, g, !g)", trial)
		}

		// Quantification and cofactoring against Eval ground truth.
		v := vs[r.Intn(nv)]
		bit := 1 << uint(indexOf(vs, v))
		ex := m.Exists(f, v)
		ext := evalAll(m, ex, vs)
		co1 := evalAll(m, m.Cofactor(f, v, true), vs)
		co0 := evalAll(m, m.Cofactor(f, v, false), vs)
		for a := range ext {
			f0, f1 := ft[a&^bit], ft[a|bit]
			if ext[a] != (f0 || f1) {
				t.Fatalf("trial %d exists: wrong value at minterm %d", trial, a)
			}
			if co1[a] != f1 || co0[a] != f0 {
				t.Fatalf("trial %d cofactor: wrong value at minterm %d", trial, a)
			}
		}

		// The new unique tables must hold together after the workload.
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func indexOf(vs []Var, v Var) int {
	for i, w := range vs {
		if w == v {
			return i
		}
	}
	return -1
}

// TestUniqueTableChurn drives the open-addressing tables through heavy
// delete/reinsert traffic (repeated GC cycles over changing live sets)
// and checks the invariants after every collection — tombstone
// accounting, probe-chain reachability and table shrinking all get
// exercised.
func TestUniqueTableChurn(t *testing.T) {
	m := New()
	vs := newVars(m, 8)
	r := rand.New(rand.NewSource(31))
	var kept []Node
	var tts [][]bool
	for round := 0; round < 25; round++ {
		f := randomFunc(m, vs, r)
		m.Protect(f)
		kept = append(kept, f)
		tts = append(tts, evalAll(m, f, vs))
		// Garbage plus a GC every round.
		for i := 0; i < 5; i++ {
			randomFunc(m, vs, r)
		}
		if len(kept) > 3 { // rotate protections to force real deletions
			m.Unprotect(kept[0])
			kept = kept[1:]
			tts = tts[1:]
		}
		m.GC()
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, f := range kept {
			got := evalAll(m, f, vs)
			for k := range got {
				if got[k] != tts[i][k] {
					t.Fatalf("round %d: protected function %d changed at minterm %d", round, i, k)
				}
			}
		}
	}
	if m.GCs < 25 {
		t.Fatalf("expected at least 25 GCs, got %d", m.GCs)
	}
}

// TestAutoGCDuringSift forces the sifting auto-collection heuristic to
// fire (by lowering the arena threshold) and checks that cost roots
// passed via SiftOptions.Roots survive it even when unprotected.
func TestAutoGCDuringSift(t *testing.T) {
	m := New()
	m.autoGCMin = 32 // make the dead-ratio trigger reachable for a small test
	vs := newVars(m, 12)
	f := False
	for j := 0; j < 6; j++ {
		f = m.Or(f, m.And(m.VarNode(vs[j]), m.VarNode(vs[j+6])))
	}
	// f stays unprotected: only SiftOptions.Roots keeps it alive.
	tt := evalAll(m, f, vs)
	gcs := m.GCs
	m.Sift(SiftOptions{Passes: 2, Roots: []Node{f}})
	if m.GCs-gcs <= 2 {
		t.Fatalf("want auto-collections beyond Sift's entry/exit GCs, got %d", m.GCs-gcs)
	}
	tt2 := evalAll(m, f, vs)
	for i := range tt {
		if tt[i] != tt2[i] {
			t.Fatalf("sift with unprotected cost root changed the function at minterm %d", i)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkKernelApply measures the raw apply/cache layer: pairwise
// combinations of random functions, reporting peak live nodes and the
// lossy-cache hit rate.
func BenchmarkKernelApply(b *testing.B) {
	var m *Manager
	for i := 0; i < b.N; i++ {
		m = New()
		vs := newVars(m, 14)
		r := rand.New(rand.NewSource(7))
		fs := make([]Node, 12)
		for j := range fs {
			fs[j] = randomFunc(m, vs, r)
		}
		acc := False
		for j, f := range fs {
			switch j % 3 {
			case 0:
				acc = m.Or(acc, f)
			case 1:
				acc = m.Xor(acc, f)
			default:
				acc = m.And(acc, m.Or(f, acc))
			}
		}
	}
	b.ReportMetric(float64(m.PeakNodes), "peak-nodes")
	if tot := m.Hits + m.Misses; tot > 0 {
		b.ReportMetric(100*float64(m.Hits)/float64(tot), "cache-hit-%")
	}
}
