//go:build bdddebug

package bdd

import "testing"

// TestOwnerCheckPanics verifies that, under the bdddebug tag, using a
// Manager from a goroutine other than its owner panics, and that
// TransferOwnership re-binds the Manager to the new goroutine.
func TestOwnerCheckPanics(t *testing.T) {
	m := New()
	a := m.VarNode(m.NewVar("a"))
	b := m.VarNode(m.NewVar("b"))

	type outcome struct {
		panicked bool
		msg      interface{}
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{true, r}
				return
			}
			ch <- outcome{false, nil}
		}()
		m.And(a, b)
	}()
	if got := <-ch; !got.panicked {
		t.Fatal("cross-goroutine And did not panic under bdddebug")
	}

	// After an explicit handoff the new goroutine may use the manager.
	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- &ownerErr{}
				return
			}
			done <- nil
		}()
		m.TransferOwnership()
		m.And(a, b)
	}()
	if err := <-done; err != nil {
		t.Fatal("And panicked after TransferOwnership")
	}
}

type ownerErr struct{}

func (*ownerErr) Error() string { return "owner panic" }

// TestOwnerCheckCoversMutatingHelpers verifies that the mutating entry
// points that historically skipped the ownership assertion — Protect,
// Unprotect and the mk-reaching VarNode/NVarNode helpers — now panic
// from a foreign goroutine, so bdddebug actually catches cross-
// goroutine mutation of the roots map and the unique tables.
func TestOwnerCheckCoversMutatingHelpers(t *testing.T) {
	m := New()
	v := m.NewVar("a")
	a := m.VarNode(v)

	calls := map[string]func(){
		"Protect":   func() { m.Protect(a) },
		"Unprotect": func() { m.Unprotect(a) },
		"VarNode":   func() { m.VarNode(v) },
		"NVarNode":  func() { m.NVarNode(v) },
		"Xor":       func() { m.Xor(a, a) },
		"Not":       func() { m.Not(a) },
	}
	for name, call := range calls {
		ch := make(chan bool, 1)
		go func(f func()) {
			defer func() { ch <- recover() != nil }()
			f()
		}(call)
		if !<-ch {
			t.Errorf("%s from a foreign goroutine did not panic under bdddebug", name)
		}
	}
}
