package bdd

// Differential regression for the incremental sifter: referenceSift
// below is a line-for-line copy of the pre-incremental algorithm —
// full Size(roots...) re-traversal after every adjacent swap, no
// interaction-matrix fast path, no lower-bound pruning. The
// incremental sifter must land every randomized manager on exactly
// the same final variable order, because the s-graphs and code the
// synthesis flow derives from the order are pinned byte-for-byte
// (see the top-level sift golden test).

import (
	"math/rand"
	"reflect"
	"testing"
)

// referenceCostRoots mirrors the pre-change costRoots helper.
func referenceCostRoots(m *Manager, opts SiftOptions) []Node {
	if opts.Roots != nil {
		return opts.Roots
	}
	roots := make([]Node, 0, len(m.roots))
	for r := range m.roots {
		roots = append(roots, r)
	}
	return roots
}

// referenceSift is the pre-incremental Sift. It reuses swapBlockDown
// (whose underlying swapLevels takes the full path here: the
// interaction matrix only exists inside a Sift call) but measures
// cost with a full traversal per swap and explores both directions to
// their boundaries, exactly as the old implementation did.
func referenceSift(m *Manager, opts SiftOptions) {
	if opts.MaxGrowth == 0 {
		opts.MaxGrowth = 2.0
	}
	passes := opts.Passes
	if passes <= 0 {
		passes = 1
	}
	m.gc(opts.Roots)
	if opts.Precede != nil {
		m.enforcePrecedence(opts.Precede)
	}
	for p := 0; p < passes; p++ {
		referenceSiftPass(m, opts)
	}
	m.gc(opts.Roots)
}

func referenceSiftPass(m *Manager, opts SiftOptions) {
	contrib := make(map[int32]int)
	roots := referenceCostRoots(m, opts)
	// Classical counting: keyed by full handle, one count per distinct
	// subfunction, matching Size and the incremental sifter's cost.
	seen := make(map[Node]bool)
	var count func(n Node)
	count = func(n Node) {
		if n.IsConst() || seen[n] {
			return
		}
		seen[n] = true
		c := n & 1
		nd := &m.nodes[n>>1]
		contrib[m.group[nd.v]]++
		count(nd.lo ^ c)
		count(nd.hi ^ c)
	}
	for _, r := range roots {
		count(r)
	}
	order := make([]int32, 0, len(contrib))
	for g := range contrib {
		order = append(order, g)
	}
	sortGroups(order, contrib)
	for _, gid := range order {
		referenceSiftBlock(m, gid, roots, opts)
		if live := m.NumNodes(); live > m.autoGCMin && live > 2*m.liveAfterGC {
			m.gc(opts.Roots)
		}
	}
}

func sortGroups(order []int32, contrib map[int32]int) {
	// Insertion sort: descending contribution, ascending gid on ties
	// (identical to the sort.Slice the old siftPass used).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if contrib[a] > contrib[b] || (contrib[a] == contrib[b] && a < b) {
				break
			}
			order[j-1], order[j] = b, a
		}
	}
}

func referenceSiftBlock(m *Manager, gid int32, roots []Node, opts SiftOptions) {
	bs := m.blocks()
	pos := -1
	for i, b := range bs {
		if b.gid == gid {
			pos = i
			break
		}
	}
	if pos < 0 {
		return
	}
	lo, hi := 0, len(bs)-1
	if opts.Precede != nil {
		for j := 0; j < pos; j++ {
			if opts.Precede(bs[j].gid, gid) && j+1 > lo {
				lo = j + 1
			}
		}
		for j := pos + 1; j < len(bs); j++ {
			if opts.Precede(gid, bs[j].gid) && j-1 < hi {
				hi = j - 1
			}
		}
	}
	cost := func() int { return m.Size(roots...) }
	startSize := cost()
	limit := int(float64(startSize) * opts.MaxGrowth)
	bestSize := startSize
	bestPos := pos
	cur := pos

	down := func(stop int) {
		for cur < stop {
			m.swapBlockDown(bs, cur)
			cur++
			s := cost()
			if s < bestSize {
				bestSize, bestPos = s, cur
			}
			if s > limit {
				return
			}
		}
	}
	up := func(stop int) {
		for cur > stop {
			m.swapBlockDown(bs, cur-1)
			cur--
			s := cost()
			if s < bestSize {
				bestSize, bestPos = s, cur
			}
			if s > limit {
				return
			}
		}
	}
	if pos-lo < hi-pos {
		up(lo)
		down(hi)
	} else {
		down(hi)
		up(lo)
	}
	for cur < bestPos {
		m.swapBlockDown(bs, cur)
		cur++
	}
	for cur > bestPos {
		m.swapBlockDown(bs, cur-1)
		cur--
	}
}

// TestSiftMatchesReference builds identical randomized managers —
// grouped variables, several protected functions, optional cost-root
// subsets and precedence relations, mirroring how the synthesis flow
// drives Sift — and requires the incremental sifter to reproduce the
// reference sifter's final order exactly.
func TestSiftMatchesReference(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 12
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(7100 + trial)
		build := func() (*Manager, SiftOptions) {
			r := rand.New(rand.NewSource(seed))
			m := New()
			vs := newVars(m, 8+r.Intn(6))
			// Bind a few adjacent pairs into groups, as the
			// multi-valued encoding does.
			for i := 0; i+1 < len(vs) && i < 4; i += 2 {
				if r.Intn(2) == 0 {
					if err := m.Group(vs[i], vs[i+1]); err != nil {
						t.Fatal(err)
					}
				}
			}
			var funcs []Node
			for i := 0; i < 2+r.Intn(3); i++ {
				f := randomFunc(m, vs[:4+r.Intn(len(vs)-4)], r)
				m.Protect(f)
				funcs = append(funcs, f)
			}
			opts := SiftOptions{Passes: 1 + r.Intn(2)}
			// Half the trials measure a strict subset of the
			// protected functions, as the synthesis flow does with
			// the characteristic function.
			if r.Intn(2) == 0 && len(funcs) > 1 {
				opts.Roots = funcs[:1+r.Intn(len(funcs)-1)]
			}
			// A third of the trials add a random precedence relation
			// on group ids (kept acyclic by ordering on id).
			if r.Intn(3) == 0 {
				banned := r.Intn(3) + 1
				opts.Precede = func(a, b int32) bool {
					return a < b && int(b-a) <= banned
				}
			}
			return m, opts
		}
		m1, opts1 := build()
		m2, opts2 := build()
		m1.Sift(opts1)
		referenceSift(m2, opts2)
		if got, want := m1.Order(), m2.Order(); !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: incremental sifter order %v, reference order %v", seed, got, want)
		}
		if got, want := m1.Size(opts1.Roots...), m2.Size(opts2.Roots...); got != want && opts1.Roots != nil {
			t.Errorf("seed %d: incremental cost-root size %d, reference %d", seed, got, want)
		}
		if err := m1.CheckInvariants(); err != nil {
			t.Errorf("seed %d: incremental sifter broke invariants: %v", seed, err)
		}
		if err := m2.CheckInvariants(); err != nil {
			t.Errorf("seed %d: reference sifter broke invariants: %v", seed, err)
		}
	}
}
