//go:build !bdddebug

package bdd

// ownerChecks gates the single-goroutine ownership assertion. In the
// default build it is a compile-time false, so every checkOwner call
// is dead-code-eliminated and the hot paths carry no cost.
const ownerChecks = false

// siftCostChecks gates the per-swap incremental-cost audit; false in
// the default build, so the swap path carries no verification cost.
const siftCostChecks = false

// goid is never called when ownerChecks is false.
func goid() int64 { return 0 }
