package bdd

import (
	"math/rand"
	"testing"
)

// TestStressOpsGCSift interleaves random Boolean operations, garbage
// collections and sifting passes while tracking the exact truth table
// of a set of protected functions; every interleaving must preserve
// both the functions and the manager invariants.
func TestStressOpsGCSift(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))
		m := New()
		const nv = 7
		vars := newVars(m, nv)

		type tracked struct {
			n  Node
			tt []bool
		}
		var funcs []tracked
		protect := func(n Node) {
			m.Protect(n)
			funcs = append(funcs, tracked{n: n, tt: evalAll(m, n, vars)})
		}
		// Seed functions.
		for i := 0; i < 3; i++ {
			protect(randomFunc(m, vars, r))
		}
		verify := func(stage string) {
			for i, f := range funcs {
				got := evalAll(m, f.n, vars)
				for k := range got {
					if got[k] != f.tt[k] {
						t.Fatalf("trial %d %s: function %d changed at minterm %d",
							trial, stage, i, k)
					}
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, stage, err)
			}
		}

		for step := 0; step < 60; step++ {
			switch r.Intn(6) {
			case 0: // combine two tracked functions into a new one
				a := funcs[r.Intn(len(funcs))].n
				b := funcs[r.Intn(len(funcs))].n
				var n Node
				switch r.Intn(4) {
				case 0:
					n = m.And(a, b)
				case 1:
					n = m.Or(a, b)
				case 2:
					n = m.Xor(a, b)
				default:
					n = m.Ite(a, b, m.Not(b))
				}
				if len(funcs) < 10 {
					protect(n)
				}
			case 1: // quantify
				f := funcs[r.Intn(len(funcs))].n
				_ = m.Exists(f, vars[r.Intn(nv)])
			case 2: // cofactor and recombine
				f := funcs[r.Intn(len(funcs))].n
				v := vars[r.Intn(nv)]
				f0 := m.Cofactor(f, v, false)
				f1 := m.Cofactor(f, v, true)
				if m.Ite(m.VarNode(v), f1, f0) != f {
					t.Fatalf("trial %d step %d: Shannon identity broken", trial, step)
				}
			case 3:
				m.GC()
			case 4:
				m.Sift(SiftOptions{Passes: 1 + r.Intn(2)})
			default: // garbage churn
				randomFunc(m, vars, r)
			}
			if step%15 == 14 {
				verify("mid")
			}
		}
		verify("final")

		// Drop protections one by one; survivors must stay intact.
		for len(funcs) > 1 {
			m.Unprotect(funcs[len(funcs)-1].n)
			funcs = funcs[:len(funcs)-1]
			m.GC()
			verify("after-unprotect")
		}
	}
}

// TestSiftMultiPass ensures repeated passes never increase the final
// size (each pass only accepts improving positions).
func TestSiftMultiPass(t *testing.T) {
	m := New()
	vars := newVars(m, 10)
	f := False
	for j := 0; j < 5; j++ {
		f = m.Or(f, m.And(m.VarNode(vars[j]), m.VarNode(vars[j+5])))
	}
	m.Protect(f)
	m.Sift(SiftOptions{Passes: 1})
	one := m.Size(f)
	m.Sift(SiftOptions{Passes: 3})
	three := m.Size(f)
	if three > one {
		t.Errorf("more passes grew the BDD: %d -> %d", one, three)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStressComplementedHandles hammers the ops specifically through
// complemented root handles — the representation the complement-edge
// rewrite added. Every tracked function is deliberately stored as the
// complement of something built positively, each operation result is
// crosschecked against an exhaustively computed truth table, and the
// manager invariants are verified at every step, so a single
// mis-propagated complement bit anywhere in mk, the apply recursions,
// quantification or cofactoring trips the test immediately.
func TestStressComplementedHandles(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(3300 + trial)))
		m := New()
		const nv = 6
		vars := newVars(m, nv)

		type tracked struct {
			n  Node
			tt []bool
		}
		var funcs []tracked
		track := func(n Node) {
			m.Protect(n)
			funcs = append(funcs, tracked{n: n, tt: evalAll(m, n, vars)})
		}
		ttOf := func(n Node) []bool { return evalAll(m, n, vars) }
		expect := func(step int, what string, n Node, want func(i int) bool) {
			got := ttOf(n)
			for i := range got {
				if got[i] != want(i) {
					t.Fatalf("trial %d step %d: %s wrong at minterm %d", trial, step, what, i)
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("trial %d step %d after %s: %v", trial, step, what, err)
			}
		}

		// Seed with complemented handles: negations of positively built
		// functions, plus negated literals.
		for i := 0; i < 3; i++ {
			track(m.Not(randomFunc(m, vars, r)))
		}
		track(m.Not(m.VarNode(vars[r.Intn(nv)])))

		for step := 0; step < 80; step++ {
			a := funcs[r.Intn(len(funcs))]
			b := funcs[r.Intn(len(funcs))]
			switch r.Intn(8) {
			case 0: // double complement is the identity, handle-exact
				if nn := m.Not(m.Not(a.n)); nn != a.n {
					t.Fatalf("trial %d step %d: Not(Not(f)) != f", trial, step)
				}
				expect(step, "Not", m.Not(a.n), func(i int) bool { return !a.tt[i] })
			case 1:
				expect(step, "And", m.And(a.n, b.n), func(i int) bool { return a.tt[i] && b.tt[i] })
			case 2:
				expect(step, "Or", m.Or(a.n, b.n), func(i int) bool { return a.tt[i] || b.tt[i] })
			case 3:
				expect(step, "Xor", m.Xor(a.n, b.n), func(i int) bool { return a.tt[i] != b.tt[i] })
			case 4:
				c := funcs[r.Intn(len(funcs))]
				expect(step, "Ite", m.Ite(a.n, b.n, c.n), func(i int) bool {
					if a.tt[i] {
						return b.tt[i]
					}
					return c.tt[i]
				})
			case 5: // exists over a complemented handle
				v := r.Intn(nv)
				ex := m.Exists(a.n, vars[v])
				expect(step, "Exists", ex, func(i int) bool {
					return a.tt[i&^(1<<v)] || a.tt[i|1<<v]
				})
			case 6: // cofactor of a complemented handle
				v := r.Intn(nv)
				val := r.Intn(2) == 1
				cf := m.Cofactor(a.n, vars[v], val)
				expect(step, "Cofactor", cf, func(i int) bool {
					if val {
						return a.tt[i|1<<v]
					}
					return a.tt[i&^(1<<v)]
				})
			default: // keep the population complement-heavy
				if len(funcs) < 12 {
					track(m.Not(m.Or(a.n, m.Not(b.n))))
				} else {
					m.GC()
				}
			}
			if step%23 == 19 {
				m.Sift(SiftOptions{Passes: 1})
				for i, f := range funcs {
					got := ttOf(f.n)
					for k := range got {
						if got[k] != f.tt[k] {
							t.Fatalf("trial %d step %d: sift changed function %d at minterm %d",
								trial, step, i, k)
						}
					}
				}
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("trial %d final: %v", trial, err)
		}
	}
}
