// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs) in the style of Bryant, with the operations the POLIS
// software-synthesis flow needs: ITE, specialized AND/OR/XOR applies,
// cofactoring, existential quantification (smoothing), support
// computation, and dynamic variable reordering by sifting (Rudell)
// with precedence constraints and variable groups.
//
// Nodes are identified by small integer handles into an arena owned by
// a Manager. Handle 0 is the constant false, handle 1 the constant
// true. The diagrams are strongly canonical: two handles are equal if
// and only if the functions they denote are equal (under the current
// variable order). In-place adjacent-level swaps preserve the function
// denoted by every handle, so handles remain valid across reordering.
//
// # Storage layer
//
// The kernel follows mature BDD packages (CUDD): per-variable unique
// tables are flat open-addressing hash tables storing node handles
// (see uniqueTable), and all operations share one fixed-size,
// direct-mapped, lossy operation cache whose entries carry a
// generation stamp (see cacheEntry). Reordering swaps and garbage
// collection invalidate the cache by bumping the generation counter —
// no reallocation, no traffic for Go's GC — which matters because
// sifting performs thousands of adjacent swaps per pass. The Hits and
// Misses statistics therefore count a lossy cache: a collision evicts
// silently and a later miss may recompute a previously cached result.
//
// Garbage collection marks from the protected roots with an iterative
// stack (no recursion-depth limit), sweeps the arena, and rebuilds the
// unique tables tombstone-free and right-sized. Sifting triggers the
// same collection automatically when swap-orphaned nodes double the
// live arena (see siftPass).
//
// # Concurrency
//
// A Manager is NOT safe for concurrent use, and deliberately so: the
// unique tables, operation cache, traversal scratch buffers and
// in-place sifting all mutate shared arena state, and guarding them
// with locks would put a mutex on the hottest path of the whole
// synthesis flow. A Manager is owned by a single goroutine — by
// convention the one that created it — and every operation must be
// invoked from that goroutine. Concurrent synthesis (see
// internal/pipeline) gives each worker its own Manager instead of
// sharing one. Build with `-tags bdddebug` to enforce the invariant at
// run time: every mutating entry point (including Protect/Unprotect
// and the mk-reaching helpers VarNode/NVarNode) then panics when
// called from a goroutine other than the owner (see owner_debug.go);
// a deliberate handoff can re-bind ownership with TransferOwnership.
package refbdd

import (
	"fmt"
	"math/bits"
	"strings"
)

// Node is a handle to a BDD node within a Manager.
type Node int32

// Var identifies a BDD variable. Variables are created in sequence by
// NewVar; their position in the order is a separate notion (a level)
// that reordering may change.
type Var int32

// Terminal nodes.
const (
	False Node = 0
	True  Node = 1
)

// IsConst reports whether n is one of the two terminal nodes.
func (n Node) IsConst() bool { return n == False || n == True }

type node struct {
	v    Var // variable label; -1 for terminals
	lo   Node
	hi   Node
	mark bool // GC mark bit
	dead bool // on the free list
}

// Manager owns a collection of BDD nodes sharing one variable order.
type Manager struct {
	nodes  []node
	unique []uniqueTable // per-variable unique tables, indexed by Var
	free   []Node        // recycled arena slots

	perm    []int // Var -> level
	invperm []Var // level -> Var
	names   []string

	group []int32 // Var -> group id (contiguous block of levels)

	cache      []cacheEntry // lossy direct-mapped operation cache
	cacheGen   uint32       // current generation; stale entries miss
	cacheShift uint8        // 64 - log2(len(cache))

	roots map[Node]int // protected external references

	// Reused traversal scratch, so Size/GC/sifting allocate nothing
	// in steady state.
	markStack   []Node   // explicit DFS stack for mark and Size
	visited     []uint32 // per-handle visit stamps for read-only walks
	visitGen    uint32
	swapScratch []Node  // swapLevels' affected-node list
	varCount    []int32 // per-variable live counts during GC

	// sift holds the incremental reordering-cost state: per-variable
	// reachable-node counters maintained by swapLevels itself, the
	// variable interaction matrix, and the cost roots resolved for
	// the current Sift call (see siftcost.go).
	sift siftState

	liveAfterGC int // live nodes after the most recent collection
	autoGCMin   int // arena size below which sifting skips auto-GC

	owner int64 // owning goroutine id; only set under the bdddebug tag

	// Stats
	GCs    int
	Swaps  int
	Hits   int // operation-cache hits (lossy cache; see package doc)
	Misses int // operation-cache misses
	// CacheResets counts operation-cache reallocations (growth or
	// generation wraparound). Reordering and GC invalidate by bumping
	// the generation instead, so a full sift pass performs zero
	// resets.
	CacheResets int
	// Evictions counts live cache entries overwritten by a colliding
	// store (the cost of the lossy direct-mapped design).
	Evictions int
	// PeakNodes is the high-water mark of live arena nodes, the
	// paper's "peak BDD size" figure of merit for an ordering.
	PeakNodes int
	// SiftPasses counts completed sifting passes.
	SiftPasses int
	// SwapsSkipped counts adjacent swaps resolved by the
	// interaction-matrix fast path: the two variables share no
	// support, so the exchange is a pure order relabel with no table
	// scan, no node mutation and no cache invalidation. Such swaps
	// are not included in Swaps.
	SwapsSkipped int
	// LBPrunes counts sift directions abandoned by lower-bound
	// pruning: even if every interacting level the block had yet to
	// pass collapsed entirely, the size could not beat the best
	// position already found.
	LBPrunes int
	// CostEvals counts sift cost evaluations. Each is an O(1) read
	// of the incrementally maintained counters; before the
	// incremental scheme every evaluation was a full Size(roots...)
	// traversal of the shared DAG.
	CostEvals int
}

// New creates an empty manager with no variables.
func New() *Manager {
	m := &Manager{
		cache:      make([]cacheEntry, cacheMinSize),
		cacheShift: uint8(64 - bits.Len(uint(cacheMinSize-1))),
		cacheGen:   1,
		roots:      make(map[Node]int),
	}
	if ownerChecks {
		m.owner = goid()
	}
	// Terminals occupy slots 0 and 1.
	m.nodes = append(m.nodes, node{v: -1}, node{v: -1})
	m.liveAfterGC = 2
	m.autoGCMin = 4096
	return m
}

// checkOwner panics when the calling goroutine is not the Manager's
// owner. It compiles to nothing unless the bdddebug build tag is set.
func (m *Manager) checkOwner() {
	if ownerChecks {
		if g := goid(); g != m.owner {
			panic(fmt.Sprintf("bdd: Manager owned by goroutine %d used from goroutine %d; a Manager is single-goroutine (see package doc)", m.owner, g))
		}
	}
}

// TransferOwnership re-binds the Manager to the calling goroutine.
// Use it for a deliberate handoff (create on one goroutine, hand the
// whole manager to another); it is a no-op unless built with the
// bdddebug tag.
func (m *Manager) TransferOwnership() {
	if ownerChecks {
		m.owner = goid()
	}
}

// NumVars returns the number of variables created so far.
func (m *Manager) NumVars() int { return len(m.perm) }

// NumNodes returns the number of live nodes in the arena, including
// the two terminals.
func (m *Manager) NumNodes() int { return len(m.nodes) - len(m.free) }

// NewVar creates a fresh variable placed at the bottom of the current
// order. The name is only used for diagnostics.
func (m *Manager) NewVar(name string) Var {
	m.checkOwner()
	v := Var(len(m.perm))
	m.perm = append(m.perm, len(m.perm))
	m.invperm = append(m.invperm, v)
	m.unique = append(m.unique, uniqueTable{})
	m.names = append(m.names, name)
	m.group = append(m.group, int32(v)) // singleton group
	return v
}

// VarName returns the diagnostic name given to v at creation.
func (m *Manager) VarName(v Var) string { return m.names[v] }

// Level returns the current position of v in the variable order
// (0 is the top).
func (m *Manager) Level(v Var) int { return m.perm[v] }

// VarAt returns the variable currently at the given level.
func (m *Manager) VarAt(level int) Var { return m.invperm[level] }

// levelOf returns the order level of the labelling variable of n, or a
// value larger than any level for terminals.
func (m *Manager) levelOf(n Node) int {
	v := m.nodes[n].v
	if v < 0 {
		return int(^uint(0) >> 1) // max int
	}
	return m.perm[v]
}

// VarOf returns the labelling variable of a non-terminal node.
func (m *Manager) VarOf(n Node) Var {
	if n.IsConst() {
		panic("bdd: VarOf on terminal")
	}
	return m.nodes[n].v
}

// LowHigh returns the two cofactor children of a non-terminal node.
func (m *Manager) LowHigh(n Node) (lo, hi Node) {
	if n.IsConst() {
		panic("bdd: LowHigh on terminal")
	}
	nd := &m.nodes[n]
	return nd.lo, nd.hi
}

// mk returns the canonical node (v, lo, hi), creating it if necessary.
// The children must be labelled by variables strictly below v in the
// current order.
func (m *Manager) mk(v Var, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	if n := m.unique[v].lookup(m.nodes, lo, hi); n != 0 {
		return n
	}
	var n Node
	if len(m.free) > 0 {
		n = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
		m.nodes[n] = node{v: v, lo: lo, hi: hi}
	} else {
		n = Node(len(m.nodes))
		m.nodes = append(m.nodes, node{v: v, lo: lo, hi: hi})
	}
	if live := len(m.nodes) - len(m.free); live > m.PeakNodes {
		m.PeakNodes = live
	}
	m.unique[v].insert(m.nodes, lo, hi, n)
	return n
}

// VarNode returns the function that is true exactly when v is true.
func (m *Manager) VarNode(v Var) Node {
	m.checkOwner()
	return m.mk(v, False, True)
}

// NVarNode returns the function that is true exactly when v is false.
func (m *Manager) NVarNode(v Var) Node {
	m.checkOwner()
	return m.mk(v, True, False)
}

// Protect registers n as an external root so garbage collection and
// reordering keep it (and everything it reaches) alive. Calls nest.
func (m *Manager) Protect(n Node) Node {
	m.checkOwner()
	m.roots[n]++
	return n
}

// Unprotect removes one protection registration added by Protect.
func (m *Manager) Unprotect(n Node) {
	m.checkOwner()
	if c := m.roots[n]; c > 1 {
		m.roots[n] = c - 1
	} else {
		delete(m.roots, n)
	}
}

// GC reclaims nodes not reachable from protected roots. The operation
// cache is invalidated (by generation bump, not reallocation) and the
// unique tables are rebuilt tombstone-free and right-sized. Handles of
// collected nodes become invalid.
func (m *Manager) GC() {
	m.checkOwner()
	m.gc(nil)
}

// gc is the collection core; extra lists additional roots to keep
// alive (sifting passes its cost roots, which need not be protected).
func (m *Manager) gc(extra []Node) {
	m.GCs++
	for r := range m.roots {
		m.mark(r)
	}
	for _, r := range extra {
		m.mark(r)
	}
	m.bumpCacheGen()
	m.free = m.free[:0]
	// Per-variable live counts size the rebuilt tables.
	if cap(m.varCount) < len(m.unique) {
		m.varCount = make([]int32, len(m.unique))
	}
	cnt := m.varCount[:len(m.unique)]
	for i := range cnt {
		cnt[i] = 0
	}
	for i := 2; i < len(m.nodes); i++ {
		nd := &m.nodes[i]
		if !nd.dead && nd.mark {
			cnt[nd.v]++
		}
	}
	for v := range m.unique {
		m.unique[v].reset(int(cnt[v]))
	}
	live := 2
	for i := 2; i < len(m.nodes); i++ {
		nd := &m.nodes[i]
		if nd.dead {
			m.free = append(m.free, Node(i))
			continue
		}
		if nd.mark {
			nd.mark = false
			m.unique[nd.v].insert(m.nodes, nd.lo, nd.hi, Node(i))
			live++
			continue
		}
		nd.dead = true
		m.free = append(m.free, Node(i))
	}
	m.liveAfterGC = live
}

// mark sets the GC mark bit on every node reachable from r, using an
// explicit stack (reused across calls) so arbitrarily deep diagrams
// cannot overflow the goroutine stack.
func (m *Manager) mark(r Node) {
	if r.IsConst() || m.nodes[r].mark {
		return
	}
	m.nodes[r].mark = true
	stack := append(m.markStack[:0], r)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &m.nodes[n]
		if lo := nd.lo; !lo.IsConst() && !m.nodes[lo].mark {
			m.nodes[lo].mark = true
			stack = append(stack, lo)
		}
		if hi := nd.hi; !hi.IsConst() && !m.nodes[hi].mark {
			m.nodes[hi].mark = true
			stack = append(stack, hi)
		}
	}
	m.markStack = stack[:0]
}

// visitEpoch starts a read-only traversal epoch: it returns a stamp
// distinct from every stamp in m.visited, growing the stamp array to
// cover the arena. Stamped traversals replace per-call map[Node]bool
// scratch in the hot Size path (called once per candidate position
// during sifting).
func (m *Manager) visitEpoch() uint32 {
	if len(m.visited) < len(m.nodes) {
		grown := make([]uint32, len(m.nodes)+len(m.nodes)/2)
		copy(grown, m.visited)
		m.visited = grown
	}
	m.visitGen++
	if m.visitGen == 0 { // uint32 wraparound: restamp from scratch
		for i := range m.visited {
			m.visited[i] = 0
		}
		m.visitGen = 1
	}
	return m.visitGen
}

// Size returns the number of non-terminal nodes reachable from the
// given roots (shared nodes counted once).
func (m *Manager) Size(roots ...Node) int {
	gen := m.visitEpoch()
	stack := m.markStack[:0]
	count := 0
	for _, r := range roots {
		if r.IsConst() || m.visited[r] == gen {
			continue
		}
		m.visited[r] = gen
		stack = append(stack, r)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			count++
			nd := &m.nodes[n]
			if lo := nd.lo; !lo.IsConst() && m.visited[lo] != gen {
				m.visited[lo] = gen
				stack = append(stack, lo)
			}
			if hi := nd.hi; !hi.IsConst() && m.visited[hi] != gen {
				m.visited[hi] = gen
				stack = append(stack, hi)
			}
		}
	}
	m.markStack = stack[:0]
	return count
}

// Eval evaluates the function denoted by n under the given assignment.
func (m *Manager) Eval(n Node, assign func(Var) bool) bool {
	for !n.IsConst() {
		nd := &m.nodes[n]
		if assign(nd.v) {
			n = nd.hi
		} else {
			n = nd.lo
		}
	}
	return n == True
}

// Support returns the variables the function denoted by n essentially
// depends on, in increasing Var order.
func (m *Manager) Support(n Node) []Var {
	gen := m.visitEpoch()
	stack := m.markStack[:0]
	inSup := make([]bool, len(m.perm))
	if !n.IsConst() {
		m.visited[n] = gen
		stack = append(stack, n)
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &m.nodes[x]
		inSup[nd.v] = true
		if lo := nd.lo; !lo.IsConst() && m.visited[lo] != gen {
			m.visited[lo] = gen
			stack = append(stack, lo)
		}
		if hi := nd.hi; !hi.IsConst() && m.visited[hi] != gen {
			m.visited[hi] = gen
			stack = append(stack, hi)
		}
	}
	m.markStack = stack[:0]
	var out []Var
	for v, in := range inSup {
		if in {
			out = append(out, Var(v))
		}
	}
	return out
}

// String renders a small diagram as nested ITE expressions, for
// debugging and tests.
func (m *Manager) String(n Node) string {
	var b strings.Builder
	var rec func(n Node)
	rec = func(n Node) {
		switch n {
		case False:
			b.WriteString("0")
		case True:
			b.WriteString("1")
		default:
			nd := &m.nodes[n]
			fmt.Fprintf(&b, "ite(%s,", m.names[nd.v])
			rec(nd.hi)
			b.WriteString(",")
			rec(nd.lo)
			b.WriteString(")")
		}
	}
	rec(n)
	return b.String()
}

// CheckInvariants verifies structural invariants of the manager:
// reducedness (no node with lo==hi), ordering (children strictly below
// parents), unique-table consistency (every live node reachable along
// its probe chain, every table entry live and correctly labelled, no
// duplicates, load factor within the growth bound), and order
// permutation consistency. It is used by tests and returns a
// descriptive error on the first violation found.
func (m *Manager) CheckInvariants() error {
	for i := 2; i < len(m.nodes); i++ {
		nd := &m.nodes[i]
		if nd.dead {
			continue
		}
		if nd.lo == nd.hi {
			return fmt.Errorf("node %d: lo == hi (%d)", i, nd.lo)
		}
		if m.levelOf(nd.lo) <= m.perm[nd.v] || m.levelOf(nd.hi) <= m.perm[nd.v] {
			return fmt.Errorf("node %d (var %s level %d): child above or at own level", i, m.names[nd.v], m.perm[nd.v])
		}
		// Probe-chain reachability: the node must be found by lookup
		// from its hash slot.
		if got := m.unique[nd.v].lookup(m.nodes, nd.lo, nd.hi); got != Node(i) {
			return fmt.Errorf("node %d: unique table lookup missing or wrong (%d)", i, got)
		}
	}
	for v := range m.unique {
		t := &m.unique[v]
		live := 0
		for _, s := range t.slots {
			if s == emptySlot || s == tombSlot {
				continue
			}
			live++
			nd := &m.nodes[s]
			if nd.dead {
				return fmt.Errorf("unique[%d] holds dead node %d", v, s)
			}
			if nd.v != Var(v) {
				return fmt.Errorf("unique[%d] holds node %d labelled %d", v, s, nd.v)
			}
			if got := t.lookup(m.nodes, nd.lo, nd.hi); got != s {
				return fmt.Errorf("unique[%d]: node %d shadowed or unreachable (lookup found %d)", v, s, got)
			}
		}
		if live != int(t.count) {
			return fmt.Errorf("unique[%d]: count %d but %d live slots", v, t.count, live)
		}
		if len(t.slots) > 0 && (int(t.count)+int(t.tombs))*4 > len(t.slots)*3 {
			return fmt.Errorf("unique[%d]: load factor above 3/4 (%d live + %d tombs in %d slots)",
				v, t.count, t.tombs, len(t.slots))
		}
	}
	// Order permutation consistency.
	for v, lvl := range m.perm {
		if m.invperm[lvl] != Var(v) {
			return fmt.Errorf("perm/invperm inconsistent at var %d", v)
		}
	}
	return nil
}

// Dot renders the diagrams rooted at the given nodes in Graphviz
// format, one rank per variable level, for inspection and debugging.
func (m *Manager) Dot(roots ...Node) string {
	var b strings.Builder
	b.WriteString("digraph bdd {\n  rankdir=TB;\n")
	b.WriteString("  n0 [label=\"0\", shape=box];\n  n1 [label=\"1\", shape=box];\n")
	seen := map[Node]bool{False: true, True: true}
	var walk func(n Node)
	walk = func(n Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		nd := &m.nodes[n]
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n, m.names[nd.v])
		fmt.Fprintf(&b, "  n%d -> n%d [style=dashed];\n", n, nd.lo)
		fmt.Fprintf(&b, "  n%d -> n%d;\n", n, nd.hi)
		walk(nd.lo)
		walk(nd.hi)
	}
	for i, r := range roots {
		fmt.Fprintf(&b, "  root%d [label=\"f%d\", shape=plaintext];\n  root%d -> n%d;\n", i, i, i, r)
		walk(r)
	}
	b.WriteString("}\n")
	return b.String()
}

// sortVarsByLevelDesc is a small insertion sort used by cube builders;
// cubes are short, so this beats sort.Slice's indirection.
func (m *Manager) sortVarsByLevelDesc(vs []Var) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && m.perm[vs[j]] > m.perm[vs[j-1]]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}
