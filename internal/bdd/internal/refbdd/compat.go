package refbdd

// This package is a verbatim snapshot of internal/bdd as it stood
// before the complement-edge rewrite (one arena node per classical
// ROBDD node, two physical terminals, materialised NOT). It exists
// only as the reference side of the differential tests gating the
// rewrite: the live kernel must agree with this one on every
// function's truth table, on the classical node count Size reports,
// and on every final sift order. Do not fix or improve it — its value
// is that it does not change.
//
// The snapshot drops the build-tagged owner/debug machinery; the
// constants and the goid stub below replace owner_debug.go /
// owner_off.go so the package compiles identically under both builds.

// ownerChecks is permanently off in the reference kernel.
const ownerChecks = false

// siftCostChecks is permanently off in the reference kernel.
const siftCostChecks = false

// goid is never called when ownerChecks is false.
func goid() int64 { return 0 }
