package refbdd

// Ite computes if-then-else: f ? g : h. It is the universal binary
// operation from which all two-argument Boolean connectives derive;
// the common connectives (And/Or/Xor/Not) additionally have
// specialized recursions with their own terminal rules and cache op
// codes, so they never pay a Not materialisation or a three-operand
// walk.
func (m *Manager) Ite(f, g, h Node) Node {
	m.checkOwner()
	m.maybeGrowCache()
	return m.iteRec(f, g, h)
}

func (m *Manager) iteRec(f, g, h Node) Node {
	// Terminal cases, plus reductions to the cheaper specialized
	// operators (which also concentrate cache traffic on one key).
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return m.notRec(f)
	case g == True:
		return m.orRec(f, h)
	case h == False:
		return m.andRec(f, g)
	}
	if r, ok := m.cacheLookup(opIte, f, g, h); ok {
		return r
	}
	// Split on the top variable among f, g, h.
	lvl := m.levelOf(f)
	if l := m.levelOf(g); l < lvl {
		lvl = l
	}
	if l := m.levelOf(h); l < lvl {
		lvl = l
	}
	v := m.invperm[lvl]
	f0, f1 := m.cofactorsAt(f, v)
	g0, g1 := m.cofactorsAt(g, v)
	h0, h1 := m.cofactorsAt(h, v)
	lo := m.iteRec(f0, g0, h0)
	hi := m.iteRec(f1, g1, h1)
	r := m.mk(v, lo, hi)
	m.cacheStore(opIte, f, g, h, r)
	return r
}

// cofactorsAt returns the two cofactors of n with respect to v when v
// is at or above n's top level; if n does not test v the cofactors are
// n itself.
func (m *Manager) cofactorsAt(n Node, v Var) (lo, hi Node) {
	if n.IsConst() {
		return n, n
	}
	nd := &m.nodes[n]
	if nd.v == v {
		return nd.lo, nd.hi
	}
	return n, n
}

// topSplit returns the top variable among f and g (both non-terminal
// at most one may be terminal) and the four cofactors.
func (m *Manager) topSplit(f, g Node) (v Var, f0, f1, g0, g1 Node) {
	lvl := m.levelOf(f)
	if l := m.levelOf(g); l < lvl {
		lvl = l
	}
	v = m.invperm[lvl]
	f0, f1 = m.cofactorsAt(f, v)
	g0, g1 = m.cofactorsAt(g, v)
	return
}

// notRec is the specialized complement recursion (cache op opNot).
func (m *Manager) notRec(f Node) Node {
	if f == False {
		return True
	}
	if f == True {
		return False
	}
	if r, ok := m.cacheLookup(opNot, f, 0, 0); ok {
		return r
	}
	nd := m.nodes[f]
	r := m.mk(nd.v, m.notRec(nd.lo), m.notRec(nd.hi))
	m.cacheStore(opNot, f, 0, 0, r)
	return r
}

// andRec is the specialized conjunction recursion. Operands are
// normalised by handle order (AND commutes), doubling cache coverage.
func (m *Manager) andRec(f, g Node) Node {
	switch {
	case f == g:
		return f
	case f == False || g == False:
		return False
	case f == True:
		return g
	case g == True:
		return f
	}
	if f > g {
		f, g = g, f
	}
	if r, ok := m.cacheLookup(opAnd, f, g, 0); ok {
		return r
	}
	v, f0, f1, g0, g1 := m.topSplit(f, g)
	r := m.mk(v, m.andRec(f0, g0), m.andRec(f1, g1))
	m.cacheStore(opAnd, f, g, 0, r)
	return r
}

// orRec is the specialized disjunction recursion.
func (m *Manager) orRec(f, g Node) Node {
	switch {
	case f == g:
		return f
	case f == True || g == True:
		return True
	case f == False:
		return g
	case g == False:
		return f
	}
	if f > g {
		f, g = g, f
	}
	if r, ok := m.cacheLookup(opOr, f, g, 0); ok {
		return r
	}
	v, f0, f1, g0, g1 := m.topSplit(f, g)
	r := m.mk(v, m.orRec(f0, g0), m.orRec(f1, g1))
	m.cacheStore(opOr, f, g, 0, r)
	return r
}

// xorRec is the specialized exclusive-or recursion: unlike the ITE
// formulation Xor(f,g) = Ite(f, Not(g), g), it never materialises a
// complement of g.
func (m *Manager) xorRec(f, g Node) Node {
	switch {
	case f == g:
		return False
	case f == False:
		return g
	case g == False:
		return f
	case f == True:
		return m.notRec(g)
	case g == True:
		return m.notRec(f)
	}
	if f > g {
		f, g = g, f
	}
	if r, ok := m.cacheLookup(opXor, f, g, 0); ok {
		return r
	}
	v, f0, f1, g0, g1 := m.topSplit(f, g)
	r := m.mk(v, m.xorRec(f0, g0), m.xorRec(f1, g1))
	m.cacheStore(opXor, f, g, 0, r)
	return r
}

// Not returns the complement of f.
func (m *Manager) Not(f Node) Node {
	m.checkOwner()
	m.maybeGrowCache()
	return m.notRec(f)
}

// And returns the conjunction of its arguments (True for none).
func (m *Manager) And(fs ...Node) Node {
	m.checkOwner()
	m.maybeGrowCache()
	r := True
	for _, f := range fs {
		r = m.andRec(r, f)
		if r == False {
			break
		}
	}
	return r
}

// Or returns the disjunction of its arguments (False for none).
func (m *Manager) Or(fs ...Node) Node {
	m.checkOwner()
	m.maybeGrowCache()
	r := False
	for _, f := range fs {
		r = m.orRec(r, f)
		if r == True {
			break
		}
	}
	return r
}

// Intersects reports whether the conjunction of f and g is
// satisfiable, without materialising it: the recursion short-circuits
// on the first satisfying path and never calls mk, so no nodes are
// created (CUDD's Cudd_bddLeq idiom, f <= !g negated). Reduction's
// per-edge feasibility checks use it so that probing every outcome of
// every TEST vertex cannot blow up the context manager. Results are
// memoised in the shared operation cache with True/False as the
// stored value.
func (m *Manager) Intersects(f, g Node) bool {
	m.checkOwner()
	m.maybeGrowCache()
	return m.intersectsRec(f, g)
}

func (m *Manager) intersectsRec(f, g Node) bool {
	switch {
	case f == False || g == False:
		return false
	case f == g || f == True || g == True:
		// The other operand is known non-False here.
		return true
	}
	if f > g { // commutes; normalise like andRec
		f, g = g, f
	}
	if r, ok := m.cacheLookup(opIntersect, f, g, 0); ok {
		return r == True
	}
	_, f0, f1, g0, g1 := m.topSplit(f, g)
	sat := m.intersectsRec(f0, g0) || m.intersectsRec(f1, g1)
	res := False
	if sat {
		res = True
	}
	m.cacheStore(opIntersect, f, g, 0, res)
	return sat
}

// Xor returns the exclusive or of f and g.
func (m *Manager) Xor(f, g Node) Node {
	m.checkOwner()
	m.maybeGrowCache()
	return m.xorRec(f, g)
}

// Xnor returns the equivalence (biconditional) of f and g.
func (m *Manager) Xnor(f, g Node) Node {
	m.checkOwner()
	m.maybeGrowCache()
	return m.notRec(m.xorRec(f, g))
}

// Implies returns f -> g.
func (m *Manager) Implies(f, g Node) Node { return m.Ite(f, g, True) }

// Cofactor returns the restriction of f with v replaced by the given
// constant value (Shannon cofactor). Sub-results are memoised in the
// shared operation cache keyed on a packed variable/phase literal, so
// they persist across calls instead of living in per-call scratch
// maps.
func (m *Manager) Cofactor(f Node, v Var, val bool) Node {
	m.checkOwner()
	m.maybeGrowCache()
	lit := Node(int32(v) << 1)
	if val {
		lit++
	}
	return m.cofRec(f, v, m.perm[v], lit)
}

func (m *Manager) cofRec(f Node, v Var, lvl int, lit Node) Node {
	if f.IsConst() || m.levelOf(f) > lvl {
		return f
	}
	nd := m.nodes[f]
	if nd.v == v {
		if lit&1 != 0 {
			return nd.hi
		}
		return nd.lo
	}
	if r, ok := m.cacheLookup(opCofactor, f, lit, 0); ok {
		return r
	}
	r := m.mk(nd.v, m.cofRec(nd.lo, v, lvl, lit), m.cofRec(nd.hi, v, lvl, lit))
	m.cacheStore(opCofactor, f, lit, 0, r)
	return r
}

// Restrict applies a partial assignment given as parallel slices of
// variables and values, cofactoring f by each in turn.
func (m *Manager) Restrict(f Node, vars []Var, vals []bool) Node {
	for i, v := range vars {
		f = m.Cofactor(f, v, vals[i])
	}
	return f
}

// varsCube builds the positive-literal cube of the given variables in
// the current order — the canonical operation-cache key for
// quantification. Duplicate variables collapse.
func (m *Manager) varsCube(vars []Var) Node {
	vs := append(make([]Var, 0, len(vars)), vars...)
	m.sortVarsByLevelDesc(vs)
	c := True
	for i, v := range vs {
		if i > 0 && v == vs[i-1] {
			continue
		}
		c = m.mk(v, False, c)
	}
	return c
}

// Exists existentially quantifies (smooths) the given variables out of
// f: the result is true wherever some assignment to vars makes f true.
// The quantified set is represented as a positive-literal cube so that
// sub-results cache in the shared operation cache across calls.
func (m *Manager) Exists(f Node, vars ...Var) Node {
	m.checkOwner()
	if len(vars) == 0 {
		return f
	}
	m.maybeGrowCache()
	return m.existsRec(f, m.varsCube(vars))
}

func (m *Manager) existsRec(f, cube Node) Node {
	if f.IsConst() || cube == True {
		return f
	}
	// Skip cube variables above f's top level: f cannot depend on
	// them, so quantifying them is the identity.
	flvl := m.levelOf(f)
	for cube != True && m.perm[m.nodes[cube].v] < flvl {
		cube = m.nodes[cube].hi
	}
	if cube == True {
		return f
	}
	if r, ok := m.cacheLookup(opExists, f, cube, 0); ok {
		return r
	}
	nd := m.nodes[f]
	var r Node
	if nd.v == m.nodes[cube].v {
		rest := m.nodes[cube].hi
		lo := m.existsRec(nd.lo, rest)
		if lo == True { // OR short-circuit
			r = True
		} else {
			r = m.orRec(lo, m.existsRec(nd.hi, rest))
		}
	} else {
		r = m.mk(nd.v, m.existsRec(nd.lo, cube), m.existsRec(nd.hi, cube))
	}
	m.cacheStore(opExists, f, cube, 0, r)
	return r
}

// Forall universally quantifies the given variables out of f.
func (m *Manager) Forall(f Node, vars ...Var) Node {
	return m.Not(m.Exists(m.Not(f), vars...))
}

// Compose substitutes the function g for variable v inside f.
func (m *Manager) Compose(f Node, v Var, g Node) Node {
	f0 := m.Cofactor(f, v, false)
	f1 := m.Cofactor(f, v, true)
	return m.Ite(g, f1, f0)
}

// DependsOn reports whether f essentially depends on v.
func (m *Manager) DependsOn(f Node, v Var) bool {
	if f.IsConst() {
		return false
	}
	lvl := m.perm[v]
	gen := m.visitEpoch()
	stack := append(m.markStack[:0], f)
	m.visited[f] = gen
	found := false
	for len(stack) > 0 && !found {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &m.nodes[n]
		if nd.v == v {
			found = true
			break
		}
		if lo := nd.lo; !lo.IsConst() && m.levelOf(lo) <= lvl && m.visited[lo] != gen {
			m.visited[lo] = gen
			stack = append(stack, lo)
		}
		if hi := nd.hi; !hi.IsConst() && m.levelOf(hi) <= lvl && m.visited[hi] != gen {
			m.visited[hi] = gen
			stack = append(stack, hi)
		}
	}
	m.markStack = stack[:0]
	return found
}

// SatCount returns the number of satisfying assignments of f over the
// given number of variables (all variables of the manager typically).
// It uses float64 accumulation, which is exact up to 2^53.
func (m *Manager) SatCount(f Node, nvars int) float64 {
	cache := make(map[Node]float64)
	var rec func(n Node) float64 // fraction of the full space
	rec = func(n Node) float64 {
		switch n {
		case False:
			return 0
		case True:
			return 1
		}
		if r, ok := cache[n]; ok {
			return r
		}
		nd := &m.nodes[n]
		r := (rec(nd.lo) + rec(nd.hi)) / 2
		cache[n] = r
		return r
	}
	total := rec(f)
	for i := 0; i < nvars; i++ {
		total *= 2
	}
	return total
}

// SatisfyOne returns one satisfying assignment of f as a map from
// variable to value, or nil if f is unsatisfiable. Variables f does
// not constrain are omitted from the map.
func (m *Manager) SatisfyOne(f Node) map[Var]bool {
	if f == False {
		return nil
	}
	out := make(map[Var]bool)
	for !f.IsConst() {
		nd := &m.nodes[f]
		if nd.lo != False {
			out[nd.v] = false
			f = nd.lo
		} else {
			out[nd.v] = true
			f = nd.hi
		}
	}
	return out
}

// ForEachCube calls fn once per cube (path to True) of f. The cube is
// presented as parallel slices of variables and values, valid only for
// the duration of the call. fn returning false stops the enumeration.
func (m *Manager) ForEachCube(f Node, fn func(vars []Var, vals []bool) bool) {
	var vars []Var
	var vals []bool
	var rec func(n Node) bool
	rec = func(n Node) bool {
		if n == False {
			return true
		}
		if n == True {
			return fn(vars, vals)
		}
		nd := &m.nodes[n]
		vars = append(vars, nd.v)
		vals = append(vals, false)
		if !rec(nd.lo) {
			return false
		}
		vals[len(vals)-1] = true
		if !rec(nd.hi) {
			return false
		}
		vars = vars[:len(vars)-1]
		vals = vals[:len(vals)-1]
		return true
	}
	rec(f)
}

// Cube builds the conjunction of literals given by parallel slices of
// variables and phase values.
func (m *Manager) Cube(vars []Var, vals []bool) Node {
	m.checkOwner()
	r := True
	// Build bottom-up in order of decreasing level for linear cost.
	idx := make([]int, len(vars))
	for i := range idx {
		idx[i] = i
	}
	// Simple insertion by level; cubes are short.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && m.perm[vars[idx[j]]] > m.perm[vars[idx[j-1]]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	for _, i := range idx {
		if vals[i] {
			r = m.mk(vars[i], False, r)
		} else {
			r = m.mk(vars[i], r, False)
		}
	}
	return r
}
