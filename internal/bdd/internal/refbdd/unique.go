package refbdd

import "math/bits"

// uniqueTable is the per-variable unique table: an open-addressing
// (linear probing) hash table mapping a (lo,hi) child pair to the one
// canonical node labelled by the table's variable. Slots hold node
// handles directly; the key is recovered from the node arena, so the
// table costs one int32 per slot. Tables are power-of-two sized, grow
// by amortized doubling when the load factor (live entries plus
// tombstones) would exceed 3/4, and are rebuilt tombstone-free and
// right-sized by GC.
type uniqueTable struct {
	slots []Node // node handles; emptySlot / tombSlot are sentinels
	shift uint8  // 64 - log2(len(slots)); index = hash >> shift
	count int32  // live entries
	tombs int32  // tombstone slots left by delete
}

const (
	// emptySlot marks a never-used slot. The constant False (handle 0)
	// is a terminal and never enters a unique table, so 0 is free.
	emptySlot Node = 0
	// tombSlot marks a deleted slot: lookups probe past it, inserts
	// may reuse it.
	tombSlot Node = -1
)

// hashPair mixes a child pair into a 64-bit hash whose high bits index
// the table (Fibonacci hashing).
func hashPair(lo, hi Node) uint64 {
	return (uint64(uint32(lo))<<32 | uint64(uint32(hi))) * 0x9E3779B97F4A7C15
}

// lookup returns the node with children (lo,hi), or 0 when absent.
func (t *uniqueTable) lookup(nodes []node, lo, hi Node) Node {
	if len(t.slots) == 0 {
		return 0
	}
	mask := uint64(len(t.slots) - 1)
	i := hashPair(lo, hi) >> t.shift
	for {
		s := t.slots[i]
		if s == emptySlot {
			return 0
		}
		if s != tombSlot {
			nd := &nodes[s]
			if nd.lo == lo && nd.hi == hi {
				return s
			}
		}
		i = (i + 1) & mask
	}
}

// insert adds node n with children (lo,hi), which must not already be
// present. The table grows first when the insert would push the load
// factor over 3/4.
func (t *uniqueTable) insert(nodes []node, lo, hi Node, n Node) {
	if (int(t.count)+int(t.tombs)+1)*4 > len(t.slots)*3 {
		t.rehash(nodes, int(t.count)+1)
	}
	mask := uint64(len(t.slots) - 1)
	i := hashPair(lo, hi) >> t.shift
	for t.slots[i] != emptySlot && t.slots[i] != tombSlot {
		i = (i + 1) & mask
	}
	if t.slots[i] == tombSlot {
		t.tombs--
	}
	t.slots[i] = n
	t.count++
}

// delete removes the entry with children (lo,hi), leaving a tombstone
// so later probe chains stay intact. Rehash and GC purge tombstones.
func (t *uniqueTable) delete(nodes []node, lo, hi Node) {
	mask := uint64(len(t.slots) - 1)
	i := hashPair(lo, hi) >> t.shift
	for {
		s := t.slots[i]
		if s == emptySlot {
			return
		}
		if s != tombSlot {
			nd := &nodes[s]
			if nd.lo == lo && nd.hi == hi {
				t.slots[i] = tombSlot
				t.count--
				t.tombs++
				return
			}
		}
		i = (i + 1) & mask
	}
}

// tableSize returns the power-of-two capacity that keeps want live
// entries at or below half load.
func tableSize(want int) int {
	size := 16
	for size < want*2 {
		size *= 2
	}
	return size
}

// rehash rebuilds the table at a capacity sized for want live entries,
// dropping every tombstone.
func (t *uniqueTable) rehash(nodes []node, want int) {
	size := tableSize(want)
	old := t.slots
	t.slots = make([]Node, size)
	t.shift = uint8(64 - bits.Len(uint(size-1)))
	t.tombs = 0
	mask := uint64(size - 1)
	for _, s := range old {
		if s == emptySlot || s == tombSlot {
			continue
		}
		nd := &nodes[s]
		i := hashPair(nd.lo, nd.hi) >> t.shift
		for t.slots[i] != emptySlot {
			i = (i + 1) & mask
		}
		t.slots[i] = s
	}
}

// reset empties the table and sizes it for want live entries; GC uses
// it to rebuild tables right-sized (shrinking sparse ones, so sift's
// slot scans stay proportional to live nodes).
func (t *uniqueTable) reset(want int) {
	if want == 0 {
		t.slots, t.shift = nil, 0
		t.count, t.tombs = 0, 0
		return
	}
	size := tableSize(want)
	if size == len(t.slots) {
		for i := range t.slots {
			t.slots[i] = emptySlot
		}
	} else {
		t.slots = make([]Node, size)
		t.shift = uint8(64 - bits.Len(uint(size-1)))
	}
	t.count, t.tombs = 0, 0
}
