package refbdd

import "math/bits"

// The operation cache is a fixed-size, direct-mapped, lossy table: a
// colliding store simply overwrites the previous entry (counted in
// Evictions). Every entry carries a generation stamp, so swapLevels
// and GC invalidate the whole cache by bumping Manager.cacheGen — an
// O(1) operation with no allocation — instead of reallocating the
// table. Hits and Misses therefore count a lossy cache: a miss may
// recompute a result the cache once held.
//
// One cache serves every cached operation (ITE, the specialized
// AND/OR/XOR/NOT applies, existential quantification and cofactoring),
// keyed by an op code plus up to three operands. Quantification keys
// on the positive-literal cube of the quantified variables and
// cofactoring on a packed variable/phase literal, so their sub-results
// persist across calls instead of living in per-call scratch maps.

// Op codes for the operation cache. opNone marks an empty entry.
const (
	opNone int32 = iota
	opIte
	opAnd
	opOr
	opXor
	opNot
	opExists
	opCofactor
	opIntersect
)

// cacheEntry is one direct-mapped slot (24 bytes).
type cacheEntry struct {
	f, g, h Node
	op      int32
	res     Node
	gen     uint32
}

const (
	// cacheMinSize is the initial operation-cache capacity; small, so
	// short-lived managers stay cheap — maybeGrowCache scales it to
	// the arena.
	cacheMinSize = 1 << 8
	// cacheMaxSize caps growth (entries, 24 bytes each).
	cacheMaxSize = 1 << 19
)

// cacheIndex maps an operation key to its one slot.
func (m *Manager) cacheIndex(op int32, f, g, h Node) uint64 {
	x := uint64(uint32(f))*0x9E3779B97F4A7C15 +
		uint64(uint32(g))*0xBF58476D1CE4E5B9 +
		uint64(uint32(h))*0x94D049BB133111EB +
		uint64(uint32(op))*0xD6E8FEB86659FD93
	return x >> m.cacheShift
}

// cacheLookup consults the operation cache; only current-generation
// entries with a full key match count as hits.
func (m *Manager) cacheLookup(op int32, f, g, h Node) (Node, bool) {
	e := &m.cache[m.cacheIndex(op, f, g, h)]
	if e.gen == m.cacheGen && e.op == op && e.f == f && e.g == g && e.h == h {
		m.Hits++
		return e.res, true
	}
	m.Misses++
	return 0, false
}

// cacheStore records a result, unconditionally overwriting whatever
// occupied the slot (lossy). Overwriting a live entry with a different
// key counts as an eviction.
func (m *Manager) cacheStore(op int32, f, g, h, res Node) {
	e := &m.cache[m.cacheIndex(op, f, g, h)]
	if e.gen == m.cacheGen && e.op != opNone &&
		!(e.op == op && e.f == f && e.g == g && e.h == h) {
		m.Evictions++
	}
	*e = cacheEntry{f: f, g: g, h: h, op: op, res: res, gen: m.cacheGen}
}

// bumpCacheGen invalidates every cache entry in O(1) by advancing the
// generation stamp. On the (practically unreachable) uint32 wraparound
// the table is cleared in place so stale generations cannot alias.
func (m *Manager) bumpCacheGen() {
	m.cacheGen++
	if m.cacheGen == 0 {
		for i := range m.cache {
			m.cache[i] = cacheEntry{}
		}
		m.cacheGen = 1
		m.CacheResets++
	}
}

// maybeGrowCache doubles the cache once the node arena has outgrown it,
// up to cacheMaxSize. It is called only from public operation entry
// points — never from swapLevels or GC — so a full sift pass performs
// zero cache reallocations (see the CacheResets stat and its
// regression test).
func (m *Manager) maybeGrowCache() {
	if len(m.cache) >= cacheMaxSize || len(m.nodes) <= len(m.cache)*2 {
		return
	}
	size := len(m.cache) * 2
	for size*2 < len(m.nodes) && size < cacheMaxSize {
		size *= 2
	}
	m.cache = make([]cacheEntry, size)
	m.cacheShift = uint8(64 - bits.Len(uint(size-1)))
	m.cacheGen = 1
	m.CacheResets++
}
