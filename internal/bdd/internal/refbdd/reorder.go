package refbdd

import (
	"fmt"
	"sort"
)

// swapLevels exchanges the variables at levels x and x+1 in place.
// Every node handle continues to denote the same function afterwards
// (the classical adjacent-variable swap). It returns the exact change
// in the sift cost — the number of nodes reachable from the active
// cost roots — so siftBlock can track cost incrementally instead of
// re-traversing the shared DAG after every swap; outside a sift pass
// the return value is 0. The operation cache is invalidated by a
// generation bump — sifting performs thousands of swaps per pass, so
// this path must not allocate.
//
// When the interaction matrix proves the two variables share no
// support, the swap degenerates to a pure relabelling of the order:
// no node has u above v (or vice versa), so no table is scanned, no
// node is touched, the cache stays valid, and the cost delta is zero.
func (m *Manager) swapLevels(x int) int {
	u := m.invperm[x]
	v := m.invperm[x+1]
	if len(m.sift.interact) != 0 && !m.varsInteract(u, v) {
		m.SwapsSkipped++
		m.perm[u], m.perm[v] = x+1, x
		m.invperm[x], m.invperm[x+1] = v, u
		if siftCostChecks {
			m.verifySiftCost("fast swap")
		}
		return 0
	}
	m.Swaps++
	st := &m.sift
	sizeBefore := st.size

	// Nodes labelled u that reference a v-labelled child must be
	// re-expressed with v on top. Collect them first (into a reused
	// scratch buffer); the unique table is mutated below.
	tu := &m.unique[u]
	affected := m.swapScratch[:0]
	for _, n := range tu.slots {
		if n == emptySlot || n == tombSlot {
			continue
		}
		nd := &m.nodes[n]
		if m.nodes[nd.lo].v == v || m.nodes[nd.hi].v == v {
			affected = append(affected, n)
		}
	}
	for _, n := range affected {
		nd := &m.nodes[n]
		tu.delete(m.nodes, nd.lo, nd.hi)
	}
	for _, n := range affected {
		f0, f1 := m.nodes[n].lo, m.nodes[n].hi
		var f00, f01, f10, f11 Node
		if m.nodes[f0].v == v {
			f00, f01 = m.nodes[f0].lo, m.nodes[f0].hi
		} else {
			f00, f01 = f0, f0
		}
		if m.nodes[f1].v == v {
			f10, f11 = m.nodes[f1].lo, m.nodes[f1].hi
		} else {
			f10, f11 = f1, f1
		}
		// mk may grow the arena, so take no pointers across it.
		n0 := m.mk(u, f00, f10)
		n1 := m.mk(u, f01, f11)
		// Relabel n in place as a v-node. A collision with an
		// existing v-node is impossible for reduced diagrams.
		if old := m.unique[v].lookup(m.nodes, n0, n1); old != 0 && old != n {
			panic(fmt.Sprintf("bdd: swap collision at level %d (node %d vs %d)", x, old, n))
		}
		m.nodes[n].v = v
		m.nodes[n].lo = n0
		m.nodes[n].hi = n1
		m.unique[v].insert(m.nodes, n0, n1, n)
		// Cost bookkeeping: n keeps its handle and its parents, so
		// its own count just moves from u to v; its edges now lead to
		// (n0, n1) instead of (f0, f1). Add before delete so shared
		// structure never transits through a spurious death cascade.
		if st.on && int(n) < len(st.ref) && st.ref[n] > 0 {
			st.keys[u]--
			st.keys[v]++
			m.costRefAdd(n0)
			m.costRefAdd(n1)
			m.costRefDel(f0)
			m.costRefDel(f1)
		}
	}
	m.swapScratch = affected[:0]
	m.perm[u], m.perm[v] = x+1, x
	m.invperm[x], m.invperm[x+1] = v, u
	m.bumpCacheGen()
	if siftCostChecks {
		m.verifySiftCost("swap")
	}
	return st.size - sizeBefore
}

// Group binds the given variables into one reordering block. The
// variables must currently occupy contiguous levels; sifting then
// moves the block as a unit, preserving the internal order. Grouping
// is how multi-valued variables keep their encoding bits adjacent.
func (m *Manager) Group(vars ...Var) error {
	if len(vars) == 0 {
		return nil
	}
	levels := make([]int, len(vars))
	for i, v := range vars {
		levels[i] = m.perm[v]
	}
	sort.Ints(levels)
	for i := 1; i < len(levels); i++ {
		if levels[i] != levels[i-1]+1 {
			return fmt.Errorf("bdd: Group requires contiguous levels, got %v", levels)
		}
	}
	gid := m.group[vars[0]]
	for _, v := range vars {
		m.group[v] = gid
	}
	return nil
}

// GroupOf returns the reordering-group id of v. Variables start in
// singleton groups named by their own Var value.
func (m *Manager) GroupOf(v Var) int32 { return m.group[v] }

// block is a maximal run of levels whose variables share a group id.
type block struct {
	gid   int32
	start int // first level
	size  int // number of levels
}

func (m *Manager) blocks() []block {
	var out []block
	n := len(m.invperm)
	for lvl := 0; lvl < n; {
		g := m.group[m.invperm[lvl]]
		sz := 1
		for lvl+sz < n && m.group[m.invperm[lvl+sz]] == g {
			sz++
		}
		out = append(out, block{gid: g, start: lvl, size: sz})
		lvl += sz
	}
	return out
}

// moveVarUp moves the variable at the given level up by one level and
// returns the sift-cost delta.
func (m *Manager) moveVarUp(level int) int { return m.swapLevels(level - 1) }

// swapBlockDown exchanges blocks[i] with blocks[i+1] by bubbling each
// variable of the lower block up through the upper block. The slice is
// updated to reflect the new layout. It returns the summed sift-cost
// delta of the underlying adjacent swaps.
func (m *Manager) swapBlockDown(bs []block, i int) int {
	up, down := bs[i], bs[i+1]
	delta := 0
	for k := 0; k < down.size; k++ {
		// The k-th variable of the lower block sits at level
		// down.start+k and must rise up.size levels; the variables
		// of the lower block already moved sit above it.
		for lvl := down.start + k; lvl > up.start+k; lvl-- {
			delta += m.moveVarUp(lvl)
		}
	}
	bs[i] = block{gid: down.gid, start: up.start, size: down.size}
	bs[i+1] = block{gid: up.gid, start: up.start + down.size, size: up.size}
	return delta
}

// SiftOptions controls dynamic reordering.
type SiftOptions struct {
	// MaxGrowth aborts movement in one direction once the diagram
	// grows beyond this factor of its size at the start of the
	// variable's sift. Zero means 2.0.
	MaxGrowth float64
	// Precede, if non-nil, is a partial order on group ids: when
	// Precede(a, b) is true, every variable of group a must stay
	// above (before) every variable of group b. If the initial
	// order violates the relation, Sift first bubbles blocks into a
	// satisfying order. This implements the paper's constraint that
	// an output variable may not sift above the inputs in its
	// support.
	Precede func(a, b int32) bool
	// Passes is the number of sifting passes (default 1; the paper
	// uses single-pass dynamic reordering).
	Passes int
	// Roots, if non-nil, is the set of functions whose shared size
	// sifting minimises. All protected roots stay alive and valid
	// either way; Roots additionally survive the collections Sift
	// runs (they are marked as extra GC roots), so they need not be
	// protected themselves. POLIS uses this to optimise the
	// characteristic function alone.
	Roots []Node
}

// Sift performs Rudell-style sifting of the reordering blocks: each
// block in turn (largest node contribution first) is moved through all
// positions permitted by the precedence constraint and fixed at the
// position minimising the number of live nodes. Unreferenced nodes are
// garbage collected first so that dead nodes do not bias the costs.
func (m *Manager) Sift(opts SiftOptions) {
	m.checkOwner()
	if opts.MaxGrowth == 0 {
		opts.MaxGrowth = 2.0
	}
	passes := opts.Passes
	if passes <= 0 {
		passes = 1
	}
	m.gc(opts.Roots)
	// The interaction matrix must cover every function whose nodes
	// are live — protected roots as well as cost roots — or the
	// fast-path relabel could corrupt a protected-only diagram. It is
	// order-invariant, so one build serves precedence enforcement and
	// every pass.
	m.sift.roots = m.resolveCostRoots(opts)
	allRoots := m.sift.roots
	if opts.Roots != nil {
		allRoots = make([]Node, 0, len(m.roots)+len(opts.Roots))
		for r := range m.roots {
			allRoots = append(allRoots, r)
		}
		allRoots = append(allRoots, opts.Roots...)
	}
	m.buildInteract(allRoots)
	defer func() {
		m.clearInteract()
		m.sift.on = false
		m.sift.roots = nil
	}()
	if opts.Precede != nil {
		m.enforcePrecedence(opts.Precede)
	}
	for p := 0; p < passes; p++ {
		m.siftPass(opts)
	}
	m.sift.on = false
	m.gc(opts.Roots)
}

// enforcePrecedence bubbles blocks into an order satisfying the given
// partial order. Since the relation is acyclic, repeated adjacent
// exchanges terminate.
func (m *Manager) enforcePrecedence(precede func(a, b int32) bool) {
	bs := m.blocks()
	for changed := true; changed; {
		changed = false
		for i := 0; i+1 < len(bs); i++ {
			if precede(bs[i+1].gid, bs[i].gid) {
				m.swapBlockDown(bs, i)
				changed = true
			}
		}
	}
}

func (m *Manager) siftPass(opts SiftOptions) {
	m.SiftPasses++
	// Pass-start collection: drop the orphans earlier swaps left in
	// the tables, so table population equals reachable size and the
	// slot scans in swapLevels stay proportional to live nodes.
	m.gc(m.sift.roots)
	m.rebuildSiftCost()
	m.sift.on = true

	// Order blocks by descending cost contribution, read off the
	// per-variable counters the rebuild just produced (the previous
	// implementation re-traversed the DAG through a map[Node]bool —
	// the last allocating traversal on the sift path).
	contrib := make([]int, len(m.perm))
	for v, k := range m.sift.keys {
		if k > 0 {
			contrib[m.group[v]] += int(k)
		}
	}
	order := make([]int32, 0, len(contrib))
	for g, c := range contrib {
		if c > 0 {
			order = append(order, int32(g))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if contrib[order[i]] != contrib[order[j]] {
			return contrib[order[i]] > contrib[order[j]]
		}
		return order[i] < order[j]
	})
	for _, gid := range order {
		m.siftBlock(gid, opts)
		// Automatic collection: adjacent swaps orphan re-expressed
		// nodes, and dead nodes both waste memory and slow the swap
		// scans. Collect when the dead ratio is high — the arena has
		// doubled since the last GC — marking the cost roots as extra
		// roots so unprotected cost functions survive. The collection
		// recycles arena slots, so the cost counters are rebuilt.
		if live := m.NumNodes(); live > m.autoGCMin && live > 2*m.liveAfterGC {
			m.gc(m.sift.roots)
			m.rebuildSiftCost()
		}
	}
}

// siftBlock moves the block with the given group id through its
// permitted window and leaves it at the best position found. The cost
// after each adjacent swap is the incrementally maintained
// Size(roots...) — an O(1) read of m.sift.size via the deltas the
// swaps return — and Somenzi-style lower bounds abandon a direction
// as soon as no remaining position in it can beat the best size seen.
func (m *Manager) siftBlock(gid int32, opts SiftOptions) {
	bs := m.blocks()
	pos := -1
	for i, b := range bs {
		if b.gid == gid {
			pos = i
			break
		}
	}
	if pos < 0 {
		return // block's variables label no live nodes and never existed? defensive
	}
	lo, hi := 0, len(bs)-1
	if opts.Precede != nil {
		for j := 0; j < pos; j++ {
			if opts.Precede(bs[j].gid, gid) {
				if j+1 > lo {
					lo = j + 1
				}
			}
		}
		for j := pos + 1; j < len(bs); j++ {
			if opts.Precede(gid, bs[j].gid) {
				if j-1 < hi {
					hi = j - 1
				}
			}
		}
	}
	size := m.sift.size
	startSize := size
	limit := int(float64(startSize) * opts.MaxGrowth)
	bestSize := startSize
	bestPos := pos
	cur := pos

	// blockInteracts reports whether any variable of a interacts with
	// any variable of b; a false answer means exchanging the two
	// blocks is pure relabelling and changes no level's node count.
	blockInteracts := func(a, b block) bool {
		for i := a.start; i < a.start+a.size; i++ {
			for j := b.start; j < b.start+b.size; j++ {
				if m.varsInteract(m.invperm[i], m.invperm[j]) {
					return true
				}
			}
		}
		return false
	}
	// blockKeys sums the cost keys of the block's variables.
	blockKeys := func(b block) int {
		s := 0
		for l := b.start; l < b.start+b.size; l++ {
			s += int(m.sift.keys[m.invperm[l]])
		}
		return s
	}

	down := func(stop int) {
		for cur < stop {
			// Lower bound: moving the block past a level can shrink
			// the diagram by at most that level's current keys (its
			// nodes may all orphan; the created nodes only add), and
			// the keys of levels not yet passed cannot change until
			// the block reaches them. If even a total collapse of
			// every interacting block still below cannot beat the
			// best size, no position further down can win — stop.
			if m.sift.on {
				maxShrink := 0
				for j := cur + 1; j <= stop; j++ {
					if blockInteracts(bs[cur], bs[j]) {
						maxShrink += blockKeys(bs[j])
					}
				}
				if size-maxShrink >= bestSize {
					m.LBPrunes++
					return
				}
			}
			size += m.swapBlockDown(bs, cur)
			cur++
			m.CostEvals++
			if size < bestSize {
				bestSize, bestPos = size, cur
			}
			if size > limit {
				return
			}
		}
	}
	up := func(stop int) {
		for cur > stop {
			// Moving up, a swap's shrink is bounded by the moving
			// block's own current keys (nodes absorbed from passed
			// levels relabel one-for-one and survive), so the bound
			// additionally charges the block itself: everything
			// below it and every non-interacting level above are
			// fixed; the rest could at best vanish.
			if m.sift.on {
				maxShrink := blockKeys(bs[cur])
				for j := stop; j < cur; j++ {
					if blockInteracts(bs[cur], bs[j]) {
						maxShrink += blockKeys(bs[j])
					}
				}
				if size-maxShrink >= bestSize {
					m.LBPrunes++
					return
				}
			}
			size += m.swapBlockDown(bs, cur-1)
			cur--
			m.CostEvals++
			if size < bestSize {
				bestSize, bestPos = size, cur
			}
			if size > limit {
				return
			}
		}
	}
	// Visit the nearer boundary first (Rudell's heuristic).
	if pos-lo < hi-pos {
		up(lo)
		down(hi)
	} else {
		down(hi)
		up(lo)
	}
	// Return to the best position seen.
	for cur < bestPos {
		m.swapBlockDown(bs, cur)
		cur++
	}
	for cur > bestPos {
		m.swapBlockDown(bs, cur-1)
		cur--
	}
}

// Order returns the current variable order, top to bottom.
func (m *Manager) Order() []Var {
	out := make([]Var, len(m.invperm))
	copy(out, m.invperm)
	return out
}
