package refbdd

import "fmt"

// Incremental sifting cost. The classical sifter re-measured
// Size(roots...) — a full DAG traversal — after every adjacent swap,
// making one block-sift O(swaps × live-nodes). Following CUDD, the
// swap itself now maintains the cost: siftState tracks, for the
// duration of one Sift call, how many nodes are reachable from the
// cost roots in total (size) and per variable (keys), driven by a
// per-node reference counter over the cost-reachable subgraph.
//
// The reference counter is swap-local, not a kernel-wide refcount:
// it is rebuilt from the cost roots at each pass start (and after the
// automatic collections between blocks) and updated only by
// swapLevels. ref[n] counts the edges into n from cost-reachable
// parents plus the times n occurs in the root list, so ref[n] > 0
// exactly when n is reachable from the cost roots. This matters
// because adjacent swaps orphan re-expressed children: the orphans
// stay in the unique tables until the next collection, and a cost
// that merely summed table populations would count them and diverge
// from the Size(roots...) the classical sifter minimised. Tracking
// reachability keeps the incremental cost byte-identical to the old
// cost at every step (the bdddebug build asserts this after every
// swap), so final orderings — and everything synthesized from them —
// are unchanged.
//
// An adjacent swap only changes which nodes are cost-reachable at the
// two swapped levels: every grandchild cofactor is re-referenced by
// the re-expressed structure before the old child loses its last
// reference, so death never cascades past the swapped pair, and a
// node revived by mk sharing has children that never left the region.
// That locality is also what makes the lower bounds in siftBlock
// sound (see reorder.go).
type siftState struct {
	on    bool    // cost tracking active (inside a sift pass)
	roots []Node  // resolved cost roots, fixed for one Sift call
	ref   []int32 // per-node edge count from the cost-reachable region
	keys  []int32 // per-Var count of cost-reachable nodes
	size  int     // total cost-reachable nodes == Size(roots...)

	// interact is the variable interaction matrix: bit u*nv+v is set
	// when u and v occur together in the support of a live root
	// function. Two adjacent non-interacting variables can be swapped
	// by relabelling the order alone — no node has one above the
	// other — which swapLevels exploits as its O(1) fast path.
	// Supports are invariant under reordering, so one matrix stays
	// valid for the whole Sift call.
	interact []uint64
	nv       int // NumVars when the matrix was built

	stack []Node // scratch for costRefAdd/costRefDel cascades
}

// resolveCostRoots returns the roots the sift cost function measures,
// resolved once per Sift call (building the list from the protected
// root map on every siftBlock call used to allocate in the hottest
// loop of the synthesis flow).
func (m *Manager) resolveCostRoots(opts SiftOptions) []Node {
	if opts.Roots != nil {
		return opts.Roots
	}
	roots := make([]Node, 0, len(m.roots))
	for r := range m.roots {
		roots = append(roots, r)
	}
	return roots
}

// rebuildSiftCost recomputes ref, keys and size from the cost roots.
// Called at pass start and after each collection inside a pass (GC
// frees swap orphans and recycles their arena slots, so stale
// counters cannot be trusted across it).
func (m *Manager) rebuildSiftCost() {
	st := &m.sift
	if cap(st.ref) < len(m.nodes) {
		st.ref = make([]int32, len(m.nodes))
	} else {
		st.ref = st.ref[:len(m.nodes)]
		for i := range st.ref {
			st.ref[i] = 0
		}
	}
	if cap(st.keys) < len(m.perm) {
		st.keys = make([]int32, len(m.perm))
	} else {
		st.keys = st.keys[:len(m.perm)]
		for i := range st.keys {
			st.keys[i] = 0
		}
	}
	st.size = 0
	for _, r := range st.roots {
		m.costRefAdd(r)
	}
}

// costRefAdd records one new reference into the cost-reachable region:
// an edge from a counted parent, or one occurrence in the root list.
// A node entering the region (0 → 1) starts being counted and
// propagates one reference to each of its children; the cascade is
// iterative on a reused stack, so the hot swap path never recurses or
// allocates.
func (m *Manager) costRefAdd(n Node) {
	if n.IsConst() {
		return
	}
	st := &m.sift
	stack := append(st.stack[:0], n)
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// mk may have grown the arena past the rebuilt counter array;
		// fresh slots start unreferenced.
		for int(w) >= len(st.ref) {
			st.ref = append(st.ref, 0)
		}
		st.ref[w]++
		if st.ref[w] == 1 {
			nd := &m.nodes[w]
			st.keys[nd.v]++
			st.size++
			if !nd.lo.IsConst() {
				stack = append(stack, nd.lo)
			}
			if !nd.hi.IsConst() {
				stack = append(stack, nd.hi)
			}
		}
	}
	st.stack = stack[:0]
}

// costRefDel removes one reference; a node leaving the region
// (1 → 0) stops being counted and withdraws its references from its
// children. The node itself stays in its unique table as an orphan
// until the next collection — cost tracking is deliberately
// independent of table population.
func (m *Manager) costRefDel(n Node) {
	if n.IsConst() {
		return
	}
	st := &m.sift
	stack := append(st.stack[:0], n)
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.ref[w]--
		if st.ref[w] == 0 {
			nd := &m.nodes[w]
			st.keys[nd.v]--
			st.size--
			if !nd.lo.IsConst() {
				stack = append(stack, nd.lo)
			}
			if !nd.hi.IsConst() {
				stack = append(stack, nd.hi)
			}
		}
	}
	st.stack = stack[:0]
}

// buildInteract computes the interaction matrix from the supports of
// the given roots. The roots must cover every function whose nodes
// can appear in the unique tables during the Sift call — the
// protected roots as well as the cost roots — because the fast-path
// relabel in swapLevels is only sound when *no* live node has the
// upper variable above the lower one. (A variable pair missing from
// every cost support but present in a protected-only function would
// otherwise be corrupted.) Every table node denotes a cofactor of
// some root function, and cofactor supports are subsets of root
// supports, so pairwise support membership is a sound
// over-approximation for the whole call, including swap orphans.
func (m *Manager) buildInteract(roots []Node) {
	st := &m.sift
	nv := len(m.perm)
	st.nv = nv
	words := (nv*nv + 63) / 64
	if cap(st.interact) < words {
		st.interact = make([]uint64, words)
	} else {
		st.interact = st.interact[:words]
		for i := range st.interact {
			st.interact[i] = 0
		}
	}
	inSup := make([]bool, nv)
	sup := make([]Var, 0, nv)
	for _, r := range roots {
		if r.IsConst() {
			continue
		}
		sup = sup[:0]
		gen := m.visitEpoch()
		stack := append(m.markStack[:0], r)
		m.visited[r] = gen
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nd := &m.nodes[n]
			if !inSup[nd.v] {
				inSup[nd.v] = true
				sup = append(sup, nd.v)
			}
			if lo := nd.lo; !lo.IsConst() && m.visited[lo] != gen {
				m.visited[lo] = gen
				stack = append(stack, lo)
			}
			if hi := nd.hi; !hi.IsConst() && m.visited[hi] != gen {
				m.visited[hi] = gen
				stack = append(stack, hi)
			}
		}
		m.markStack = stack[:0]
		for i, u := range sup {
			for _, v := range sup[i+1:] {
				m.setInteract(u, v)
			}
			inSup[u] = false
		}
	}
}

// clearInteract drops the matrix when Sift returns: operations run
// after sifting can create functions with new variable pairings,
// which would invalidate the fast-path soundness argument.
func (m *Manager) clearInteract() {
	m.sift.interact = m.sift.interact[:0]
}

func (m *Manager) setInteract(u, v Var) {
	i := int(u)*m.sift.nv + int(v)
	j := int(v)*m.sift.nv + int(u)
	m.sift.interact[i>>6] |= 1 << (uint(i) & 63)
	m.sift.interact[j>>6] |= 1 << (uint(j) & 63)
}

// varsInteract reports whether u and v interact; with no matrix built
// it conservatively answers true (full swap).
func (m *Manager) varsInteract(u, v Var) bool {
	st := &m.sift
	if len(st.interact) == 0 {
		return true
	}
	i := int(u)*st.nv + int(v)
	return st.interact[i>>6]&(1<<(uint(i)&63)) != 0
}

// verifySiftCost recomputes the cost from scratch and panics on any
// divergence from the incrementally maintained counters. Compiled
// only under the bdddebug build tag (siftCostChecks), where it runs
// after every adjacent swap: the incremental cost must equal
// Size(roots...) at all times, or final orderings could silently
// drift from the reference sifter.
func (m *Manager) verifySiftCost(where string) {
	st := &m.sift
	if !st.on {
		return
	}
	keys := make([]int32, len(m.perm))
	size := 0
	seen := make(map[Node]bool)
	var walk func(n Node)
	walk = func(n Node) {
		if n.IsConst() || seen[n] {
			return
		}
		seen[n] = true
		nd := &m.nodes[n]
		keys[nd.v]++
		size++
		walk(nd.lo)
		walk(nd.hi)
	}
	for _, r := range st.roots {
		walk(r)
	}
	if size != st.size {
		panic(fmt.Sprintf("bdd: %s: incremental sift cost %d != Size(roots...) %d", where, st.size, size))
	}
	for v := range keys {
		if keys[v] != st.keys[v] {
			panic(fmt.Sprintf("bdd: %s: incremental keys[%s] = %d, reachable count %d",
				where, m.names[v], st.keys[v], keys[v]))
		}
	}
	// Reference-count audit: ref[n] must equal the number of edges
	// into n from counted nodes plus n's occurrences in the root
	// list, and must be zero outside the region.
	want := make(map[Node]int32)
	for n := range seen {
		nd := &m.nodes[n]
		if !nd.lo.IsConst() {
			want[nd.lo]++
		}
		if !nd.hi.IsConst() {
			want[nd.hi]++
		}
	}
	for _, r := range st.roots {
		if !r.IsConst() {
			want[r]++
		}
	}
	for i := range st.ref {
		if st.ref[i] != want[Node(i)] {
			panic(fmt.Sprintf("bdd: %s: ref[%d] = %d, want %d", where, i, st.ref[i], want[Node(i)]))
		}
	}
}
