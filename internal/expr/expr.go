// Package expr provides the side-effect-free arithmetic and relational
// expression language used in CFSM tests and actions. Expressions
// evaluate over bounded integers; relational and logical operators
// yield 0 or 1. Division is "safe" as the paper requires: the divisor
// is checked and a zero divisor yields 0 instead of trapping, so a
// correct CFSM may perform (but must not use) a division by zero.
package expr

import (
	"fmt"
	"strings"
)

// Op enumerates the operators of the expression language. Each binary
// operator corresponds to one of the predefined software library
// functions the cost-estimation package characterises (ADD, OR, EQ,
// ... in the paper's terminology).
type Op int

const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd // logical
	OpOr  // logical
	OpBitAnd
	OpBitOr
	OpBitXor
	OpShl
	OpShr
	OpMin
	OpMax
	numOps
)

var opNames = [...]string{
	OpAdd: "ADD", OpSub: "SUB", OpMul: "MUL", OpDiv: "DIV", OpMod: "MOD",
	OpEq: "EQ", OpNe: "NE", OpLt: "LT", OpLe: "LE", OpGt: "GT", OpGe: "GE",
	OpAnd: "AND", OpOr: "OR",
	OpBitAnd: "BAND", OpBitOr: "BOR", OpBitXor: "BXOR",
	OpShl: "SHL", OpShr: "SHR", OpMin: "MIN", OpMax: "MAX",
}

var opSyms = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&&", OpOr: "||",
	OpBitAnd: "&", OpBitOr: "|", OpBitXor: "^",
	OpShl: "<<", OpShr: ">>", OpMin: "/*min*/", OpMax: "/*max*/",
}

// Name returns the library-function name of the operator (ADD, EQ, ...).
func (o Op) Name() string { return opNames[o] }

// NumOps returns the number of operators, for cost tables.
func NumOps() int { return int(numOps) }

// Env resolves variable references during evaluation.
type Env interface {
	Lookup(name string) int64
}

// MapEnv is a map-backed Env. Missing names read as 0.
type MapEnv map[string]int64

// Lookup implements Env.
func (e MapEnv) Lookup(name string) int64 { return e[name] }

// Expr is a side-effect-free integer expression.
type Expr interface {
	// Eval evaluates the expression in the given environment.
	Eval(env Env) int64
	// C renders the expression in C syntax.
	C() string
	// Vars appends the names of referenced variables to dst.
	Vars(dst []string) []string
	// Ops appends the operators used, one entry per occurrence, for
	// cost estimation.
	Ops(dst []Op) []Op
}

// Const is an integer literal.
type Const int64

// Eval implements Expr.
func (c Const) Eval(Env) int64 { return int64(c) }

// C implements Expr.
func (c Const) C() string { return fmt.Sprintf("%d", int64(c)) }

// Vars implements Expr.
func (c Const) Vars(dst []string) []string { return dst }

// Ops implements Expr.
func (c Const) Ops(dst []Op) []Op { return dst }

// Ref references a variable by name. The name space is defined by the
// enclosing CFSM: state variables, input-event values (?c in Esterel
// notation becomes c_value), and constants bound by the environment.
type Ref string

// Eval implements Expr.
func (r Ref) Eval(env Env) int64 { return env.Lookup(string(r)) }

// C implements Expr.
func (r Ref) C() string { return string(r) }

// Vars implements Expr.
func (r Ref) Vars(dst []string) []string { return append(dst, string(r)) }

// Ops implements Expr.
func (r Ref) Ops(dst []Op) []Op { return dst }

// Bin applies a binary operator.
type Bin struct {
	Op   Op
	L, R Expr
}

// NewBin builds a binary expression.
func NewBin(op Op, l, r Expr) *Bin { return &Bin{Op: op, L: l, R: r} }

// Eval implements Expr; relational and logical results are 0/1 and
// division by zero yields 0 (safe division).
func (b *Bin) Eval(env Env) int64 {
	return EvalOp(b.Op, b.L.Eval(env), b.R.Eval(env))
}

// EvalOp applies a binary operator to evaluated operands with the
// language's semantics (0/1 relational results, safe division). It is
// the allocation-free primitive behind Bin.Eval, shared with the
// virtual CPU's ALU.
func EvalOp(op Op, l, r int64) int64 {
	switch op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	case OpDiv:
		if r == 0 {
			return 0
		}
		return l / r
	case OpMod:
		if r == 0 {
			return 0
		}
		return l % r
	case OpEq:
		return b2i(l == r)
	case OpNe:
		return b2i(l != r)
	case OpLt:
		return b2i(l < r)
	case OpLe:
		return b2i(l <= r)
	case OpGt:
		return b2i(l > r)
	case OpGe:
		return b2i(l >= r)
	case OpAnd:
		return b2i(l != 0 && r != 0)
	case OpOr:
		return b2i(l != 0 || r != 0)
	case OpBitAnd:
		return l & r
	case OpBitOr:
		return l | r
	case OpBitXor:
		return l ^ r
	case OpShl:
		return l << (uint(r) & 63)
	case OpShr:
		return l >> (uint(r) & 63)
	case OpMin:
		if l < r {
			return l
		}
		return r
	case OpMax:
		if l > r {
			return l
		}
		return r
	}
	panic("expr: unknown op")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// C implements Expr.
func (b *Bin) C() string {
	switch b.Op {
	case OpMin:
		return fmt.Sprintf("MIN(%s, %s)", b.L.C(), b.R.C())
	case OpMax:
		return fmt.Sprintf("MAX(%s, %s)", b.L.C(), b.R.C())
	case OpDiv, OpMod:
		// Safe division library call.
		return fmt.Sprintf("%s(%s, %s)", strings.ToUpper(b.Op.Name()), b.L.C(), b.R.C())
	}
	return fmt.Sprintf("(%s %s %s)", b.L.C(), opSyms[b.Op], b.R.C())
}

// Vars implements Expr.
func (b *Bin) Vars(dst []string) []string { return b.R.Vars(b.L.Vars(dst)) }

// Ops implements Expr.
func (b *Bin) Ops(dst []Op) []Op { return b.R.Ops(b.L.Ops(append(dst, b.Op))) }

// Un applies a unary operator.
type UnOp int

// Unary operators.
const (
	UnNeg UnOp = iota // arithmetic negation
	UnNot             // logical not (0/1)
	UnBitNot
)

// Un is a unary expression.
type Un struct {
	Op UnOp
	X  Expr
}

// NewNeg negates x.
func NewNeg(x Expr) *Un { return &Un{Op: UnNeg, X: x} }

// NewNot logically negates x.
func NewNot(x Expr) *Un { return &Un{Op: UnNot, X: x} }

// Eval implements Expr.
func (u *Un) Eval(env Env) int64 {
	x := u.X.Eval(env)
	switch u.Op {
	case UnNeg:
		return -x
	case UnNot:
		return b2i(x == 0)
	case UnBitNot:
		return ^x
	}
	panic("expr: unknown unary op")
}

// C implements Expr.
func (u *Un) C() string {
	switch u.Op {
	case UnNeg:
		return "(-" + u.X.C() + ")"
	case UnNot:
		return "(!" + u.X.C() + ")"
	default:
		return "(~" + u.X.C() + ")"
	}
}

// Vars implements Expr.
func (u *Un) Vars(dst []string) []string { return u.X.Vars(dst) }

// Ops implements Expr.
func (u *Un) Ops(dst []Op) []Op { return u.X.Ops(append(dst, OpSub)) }

// Convenience constructors keep CFSM definitions readable.

// Add returns l + r.
func Add(l, r Expr) Expr { return NewBin(OpAdd, l, r) }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return NewBin(OpSub, l, r) }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return NewBin(OpMul, l, r) }

// Div returns the safe quotient l / r (0 when r is 0).
func Div(l, r Expr) Expr { return NewBin(OpDiv, l, r) }

// Mod returns the safe remainder l % r (0 when r is 0).
func Mod(l, r Expr) Expr { return NewBin(OpMod, l, r) }

// Eq returns l == r as 0/1.
func Eq(l, r Expr) Expr { return NewBin(OpEq, l, r) }

// Ne returns l != r as 0/1.
func Ne(l, r Expr) Expr { return NewBin(OpNe, l, r) }

// Lt returns l < r as 0/1.
func Lt(l, r Expr) Expr { return NewBin(OpLt, l, r) }

// Le returns l <= r as 0/1.
func Le(l, r Expr) Expr { return NewBin(OpLe, l, r) }

// Gt returns l > r as 0/1.
func Gt(l, r Expr) Expr { return NewBin(OpGt, l, r) }

// Ge returns l >= r as 0/1.
func Ge(l, r Expr) Expr { return NewBin(OpGe, l, r) }

// And returns the logical conjunction as 0/1.
func And(l, r Expr) Expr { return NewBin(OpAnd, l, r) }

// Or returns the logical disjunction as 0/1.
func Or(l, r Expr) Expr { return NewBin(OpOr, l, r) }

// Min returns the smaller operand.
func Min(l, r Expr) Expr { return NewBin(OpMin, l, r) }

// Max returns the larger operand.
func Max(l, r Expr) Expr { return NewBin(OpMax, l, r) }

// C returns a constant literal.
func C(v int64) Expr { return Const(v) }

// V returns a variable reference.
func V(name string) Expr { return Ref(name) }

// Subst returns e with every variable reference rewritten through sub:
// references whose name maps to an expression are replaced by that
// expression, others are kept. The tree is rebuilt; e is not modified.
func Subst(e Expr, sub map[string]Expr) Expr {
	switch x := e.(type) {
	case Const:
		return x
	case Ref:
		if r, ok := sub[string(x)]; ok {
			return r
		}
		return x
	case *Un:
		return &Un{Op: x.Op, X: Subst(x.X, sub)}
	case *Bin:
		return &Bin{Op: x.Op, L: Subst(x.L, sub), R: Subst(x.R, sub)}
	}
	return e
}
