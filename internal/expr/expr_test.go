package expr

import (
	"testing"
	"testing/quick"
)

func TestConstAndRef(t *testing.T) {
	env := MapEnv{"a": 7}
	if got := C(42).Eval(env); got != 42 {
		t.Errorf("const: %d", got)
	}
	if got := V("a").Eval(env); got != 7 {
		t.Errorf("ref: %d", got)
	}
	if got := V("missing").Eval(env); got != 0 {
		t.Errorf("missing ref should read 0, got %d", got)
	}
}

func TestArithmetic(t *testing.T) {
	env := MapEnv{"x": 10, "y": 3}
	cases := []struct {
		e    Expr
		want int64
	}{
		{Add(V("x"), V("y")), 13},
		{Sub(V("x"), V("y")), 7},
		{Mul(V("x"), V("y")), 30},
		{Div(V("x"), V("y")), 3},
		{Mod(V("x"), V("y")), 1},
		{Min(V("x"), V("y")), 3},
		{Max(V("x"), V("y")), 10},
		{Expr(NewNeg(V("y"))), -3},
	}
	for i, c := range cases {
		if got := c.e.Eval(env); got != c.want {
			t.Errorf("case %d (%s): got %d want %d", i, c.e.C(), got, c.want)
		}
	}
}

func TestSafeDivision(t *testing.T) {
	env := MapEnv{"x": 5}
	if got := Div(V("x"), C(0)).Eval(env); got != 0 {
		t.Errorf("x/0 must be 0 (safe division), got %d", got)
	}
	if got := Mod(V("x"), C(0)).Eval(env); got != 0 {
		t.Errorf("x%%0 must be 0 (safe division), got %d", got)
	}
}

func TestRelational(t *testing.T) {
	env := MapEnv{"a": 2, "b": 5}
	cases := []struct {
		e    Expr
		want int64
	}{
		{Eq(V("a"), C(2)), 1},
		{Eq(V("a"), V("b")), 0},
		{Ne(V("a"), V("b")), 1},
		{Lt(V("a"), V("b")), 1},
		{Le(V("b"), V("b")), 1},
		{Gt(V("a"), V("b")), 0},
		{Ge(V("b"), V("a")), 1},
		{And(Lt(V("a"), V("b")), Eq(V("a"), C(2))), 1},
		{Or(Gt(V("a"), V("b")), Eq(V("a"), C(99))), 0},
		{Expr(NewNot(Eq(V("a"), C(2)))), 0},
	}
	for i, c := range cases {
		if got := c.e.Eval(env); got != c.want {
			t.Errorf("case %d (%s): got %d want %d", i, c.e.C(), got, c.want)
		}
	}
}

func TestCRendering(t *testing.T) {
	e := Add(Mul(V("a"), C(2)), Div(V("b"), V("c")))
	want := "((a * 2) + DIV(b, c))"
	if got := e.C(); got != want {
		t.Errorf("C(): got %q want %q", got, want)
	}
	if got := Min(V("a"), C(1)).C(); got != "MIN(a, 1)" {
		t.Errorf("MIN C(): %q", got)
	}
}

func TestVarsAndOps(t *testing.T) {
	e := Add(Mul(V("a"), C(2)), Eq(V("b"), V("a")))
	vars := e.Vars(nil)
	if len(vars) != 3 || vars[0] != "a" || vars[1] != "b" || vars[2] != "a" {
		t.Errorf("vars: %v", vars)
	}
	ops := e.Ops(nil)
	if len(ops) != 3 {
		t.Fatalf("ops count: %v", ops)
	}
	seen := map[Op]bool{}
	for _, o := range ops {
		seen[o] = true
	}
	if !seen[OpAdd] || !seen[OpMul] || !seen[OpEq] {
		t.Errorf("ops missing: %v", ops)
	}
}

func TestOpNamesComplete(t *testing.T) {
	for o := Op(0); o < Op(NumOps()); o++ {
		if o.Name() == "" {
			t.Errorf("operator %d has no name", o)
		}
	}
}

// Property: relational operators always return 0 or 1.
func TestQuickRelationalBoolean(t *testing.T) {
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr}
	prop := func(a, b int32, which uint8) bool {
		op := ops[int(which)%len(ops)]
		v := NewBin(op, C(int64(a)), C(int64(b))).Eval(nil)
		return v == 0 || v == 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Eval is deterministic and evaluation order of Vars does
// not matter (expressions have no side effects).
func TestQuickEvalDeterministic(t *testing.T) {
	prop := func(a, b, c int16) bool {
		env := MapEnv{"a": int64(a), "b": int64(b), "c": int64(c)}
		e := Add(Mul(V("a"), V("b")), Div(V("c"), Sub(V("a"), V("b"))))
		return e.Eval(env) == e.Eval(env)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestShifts(t *testing.T) {
	if got := NewBin(OpShl, C(1), C(4)).Eval(nil); got != 16 {
		t.Errorf("1<<4 = %d", got)
	}
	if got := NewBin(OpShr, C(16), C(2)).Eval(nil); got != 4 {
		t.Errorf("16>>2 = %d", got)
	}
	if got := NewBin(OpBitXor, C(6), C(3)).Eval(nil); got != 5 {
		t.Errorf("6^3 = %d", got)
	}
}

func TestSubst(t *testing.T) {
	e := Add(V("a"), Mul(V("?s"), C(2)))
	sub := map[string]Expr{"?s": Add(V("b"), C(1))}
	got := Subst(e, sub)
	env := MapEnv{"a": 10, "b": 4}
	if v := got.Eval(env); v != 10+(4+1)*2 {
		t.Errorf("subst eval: %d", v)
	}
	// Original untouched.
	if v := e.Eval(MapEnv{"a": 1, "?s": 3}); v != 7 {
		t.Errorf("original changed: %d", v)
	}
	// Unary nodes rebuild too.
	u := NewNot(V("?s"))
	gu := Subst(u, map[string]Expr{"?s": C(0)})
	if v := gu.Eval(nil); v != 1 {
		t.Errorf("unary subst: %d", v)
	}
	// Constants pass through.
	if Subst(C(5), sub).Eval(nil) != 5 {
		t.Error("const subst")
	}
}

func TestCRenderingMore(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Max(V("x"), C(3)), "MAX(x, 3)"},
		{Mod(V("x"), C(4)), "MOD(x, 4)"},
		{NewBin(OpShl, V("x"), C(2)), "(x << 2)"},
		{NewBin(OpBitXor, V("x"), V("y")), "(x ^ y)"},
		{Expr(NewNeg(V("x"))), "(-x)"},
		{Expr(&Un{Op: UnBitNot, X: V("x")}), "(~x)"},
		{And(Eq(V("a"), C(1)), Ne(V("b"), C(2))), "((a == 1) && (b != 2))"},
	}
	for _, c := range cases {
		if got := c.e.C(); got != c.want {
			t.Errorf("C() = %q, want %q", got, c.want)
		}
	}
}

func TestBitNotEval(t *testing.T) {
	u := &Un{Op: UnBitNot, X: C(5)}
	if got := u.Eval(nil); got != ^int64(5) {
		t.Errorf("bitnot: %d", got)
	}
	if got := u.Vars(nil); len(got) != 0 {
		t.Errorf("bitnot vars: %v", got)
	}
	if got := u.Ops(nil); len(got) != 1 {
		t.Errorf("bitnot ops: %v", got)
	}
}
