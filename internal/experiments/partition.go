package experiments

import (
	"fmt"
	"strings"

	"polis/internal/cfsm"
	"polis/internal/designs"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/sim"
	"polis/internal/vm"
)

// PartitionRow is one hardware/software partitioning of the
// shock-absorber front end. The CFSM model exists precisely so the
// same specification maps to either side (Section I-A, II-D); this
// experiment quantifies the co-design trade-off the paper's flow feeds
// with its estimates: moving the sample-rate filter into hardware
// frees CPU cycles and shortens the actuation latency at the price of
// a custom circuit.
type PartitionRow struct {
	Name        string
	HWModules   int
	MaxLatency  int64   // sensor -> solenoid, cycles
	Utilization float64 // CPU busy fraction
	SWCodeBytes int64
}

// PartitionSweep runs the shock absorber with 0, 1 and 2 of its
// front-end modules moved to hardware.
func PartitionSweep(prof *vm.Profile) ([]PartitionRow, error) {
	var rows []PartitionRow
	for _, hwCount := range []int{0, 1, 2} {
		s := designs.NewShockAbsorber()
		cfg := rtos.DefaultConfig()
		hwNames := []string{}
		switch hwCount {
		case 1:
			cfg.HW = map[*cfsm.CFSM]bool{s.Filter: true}
			hwNames = append(hwNames, s.Filter.Name)
		case 2:
			cfg.HW = map[*cfsm.CFSM]bool{s.Filter: true, s.Estimator: true}
			hwNames = append(hwNames, s.Filter.Name, s.Estimator.Name)
		}
		var stim []sim.Stimulus
		stim = append(stim, sim.PeriodicStimuli(s.AccelSample, 1000, 4000, 700_000,
			func(i int) int64 { return int64(75 + (i%6)*9) })...)
		stim = append(stim, sim.Stimulus{Time: 500, Signal: s.SpeedSample, Value: 120})
		res, err := sim.Run(s.Net, stim, 800_000, sim.Options{
			Cfg: cfg, Mode: sim.VMExact, Profile: prof,
			Ordering: sgraph.OrderSiftAfterSupport,
		})
		if err != nil {
			return nil, err
		}
		name := "all-software"
		if hwCount > 0 {
			name = "hw:" + strings.Join(hwNames, "+")
		}
		rows = append(rows, PartitionRow{
			Name:        name,
			HWModules:   hwCount,
			MaxLatency:  sim.MaxLatency(res.Trace, s.AccelSample, s.Solenoid),
			Utilization: res.System.Utilization(),
			SWCodeBytes: res.CodeBytes,
		})
	}
	return rows, nil
}

// FormatPartition renders the partitioning sweep.
func FormatPartition(prof *vm.Profile, rows []PartitionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hardware/software partitioning sweep (shock absorber), target %s\n", prof.Name)
	fmt.Fprintf(&b, "%-24s %10s %12s %10s\n", "partition", "latency", "CPU util", "sw code B")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %10d %11.1f%% %10d\n",
			r.Name, r.MaxLatency, 100*r.Utilization, r.SWCodeBytes)
	}
	return b.String()
}

// ChainRow compares the shock-absorber pipeline with and without task
// chaining (Section IV-A: "chain certain executions of CFSMs into a
// single task, thus reducing scheduling and communication overhead").
type ChainRow struct {
	Name          string
	MaxLatency    int64
	ScheduleCalls int64
	BusyCycles    int64
}

// AblationChaining measures the chained sensor-to-actuator pipeline.
func AblationChaining(prof *vm.Profile) ([]ChainRow, error) {
	var rows []ChainRow
	for _, chained := range []bool{false, true} {
		s := designs.NewShockAbsorber()
		cfg := rtos.DefaultConfig()
		name := "unchained"
		if chained {
			name = "chained"
			cfg.Chains = [][]*cfsm.CFSM{{s.Filter, s.Estimator, s.ModeLogic, s.Actuator}}
		}
		var stim []sim.Stimulus
		stim = append(stim, sim.PeriodicStimuli(s.AccelSample, 1000, 4000, 700_000,
			func(i int) int64 { return int64(75 + (i%6)*9) })...)
		stim = append(stim, sim.Stimulus{Time: 500, Signal: s.SpeedSample, Value: 120})
		res, err := sim.Run(s.Net, stim, 800_000, sim.Options{
			Cfg: cfg, Mode: sim.VMExact, Profile: prof,
			Ordering: sgraph.OrderSiftAfterSupport,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ChainRow{
			Name:          name,
			MaxLatency:    sim.MaxLatency(res.Trace, s.AccelSample, s.Solenoid),
			ScheduleCalls: res.System.ScheduleCalls,
			BusyCycles:    res.System.BusyCycles,
		})
	}
	return rows, nil
}

// FormatChaining renders the chaining ablation.
func FormatChaining(prof *vm.Profile, rows []ChainRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: task chaining (Section IV-A), target %s\n", prof.Name)
	fmt.Fprintf(&b, "%-12s %10s %15s %12s\n", "config", "latency", "scheduler calls", "busy cycles")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10d %15d %12d\n", r.Name, r.MaxLatency, r.ScheduleCalls, r.BusyCycles)
	}
	return b.String()
}
