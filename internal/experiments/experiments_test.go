package experiments

import (
	"sort"
	"strings"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/rtos"
	"polis/internal/vm"
)

// TestTable1Accuracy reproduces the paper's headline Table I claim:
// the s-graph estimator tracks exact object-code measurements closely
// on every dashboard module, on both targets.
func TestTable1Accuracy(t *testing.T) {
	for _, prof := range []*vm.Profile{vm.HC11(), vm.R3K()} {
		rows, err := Table1(prof)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 9 {
			t.Fatalf("%s: %d rows", prof.Name, len(rows))
		}
		for _, r := range rows {
			if r.SizeErrPct < -20 || r.SizeErrPct > 20 {
				t.Errorf("%s/%s: size error %.1f%% too large (est %d act %d)",
					prof.Name, r.Module, r.SizeErrPct, r.EstSize, r.ActSize)
			}
			if r.CycErrPct < -20 || r.CycErrPct > 20 {
				t.Errorf("%s/%s: cycle error %.1f%% too large (est %d act %d)",
					prof.Name, r.Module, r.CycErrPct, r.EstMaxCyc, r.ActMaxCyc)
			}
			if r.EstMinCyc > r.EstMaxCyc || r.ActMinCyc > r.ActMaxCyc {
				t.Errorf("%s/%s: min exceeds max", prof.Name, r.Module)
			}
		}
		out := FormatTable1(prof, rows)
		if !strings.Contains(out, "belt") || !strings.Contains(out, "err%") {
			t.Error("table rendering broken")
		}
	}
}

// TestTable2Shape reproduces the Table II ordering: naive is never
// better than the support-constrained sift in total, and the sifted
// decision graph beats the two-level jump overall.
func TestTable2Shape(t *testing.T) {
	prof := vm.HC11()
	rows, err := Table2(prof)
	if err != nil {
		t.Fatal(err)
	}
	var tn, ti, ts, tt int64
	for _, r := range rows {
		tn += r.Naive
		ti += r.SiftInputsFirst
		ts += r.SiftAfterSupport
		tt += r.TwoLevelJump
		if r.SiftAfterSupport > r.Naive {
			t.Errorf("%s: support-sift (%d) larger than naive (%d)",
				r.Module, r.SiftAfterSupport, r.Naive)
		}
	}
	if ts > tn {
		t.Errorf("total: support-sift %d > naive %d", ts, tn)
	}
	if ts > ti {
		t.Errorf("total: support-sift %d > inputs-first sift %d (relaxation must help)", ts, ti)
	}
	if ts >= tt {
		t.Errorf("total: support-sift %d should beat two-level jump %d", ts, tt)
	}
	_ = FormatTable2(prof, rows)
}

// TestTable3Shape reproduces the qualitative Table III result: the
// single-FSM Esterel strategy consumes the fewest CPU cycles over the
// workload (no communication or scheduling) but far more code than
// POLIS; the circuit-style ESTEREL_OPT code is bigger AND slower than
// POLIS's decision graphs.
func TestTable3Shape(t *testing.T) {
	prof := vm.R3K()
	rows, err := Table3(prof)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Approach] = r
	}
	polis, v3, opt := byName["POLIS"], byName["ESTEREL"], byName["ESTEREL_OPT"]
	if polis.Approach == "" || v3.Approach == "" || opt.Approach == "" {
		t.Fatalf("missing rows: %+v", rows)
	}
	if v3.CodeBytes <= polis.CodeBytes {
		t.Errorf("single FSM code (%d B) should exceed POLIS (%d B)",
			v3.CodeBytes, polis.CodeBytes)
	}
	if v3.SimCycles >= polis.SimCycles {
		t.Errorf("single FSM cycles (%d) should undercut POLIS (%d): no RTOS overhead",
			v3.SimCycles, polis.SimCycles)
	}
	if opt.CodeBytes <= polis.CodeBytes {
		t.Errorf("circuit code (%d B) should exceed POLIS (%d B)",
			opt.CodeBytes, polis.CodeBytes)
	}
	if opt.SimCycles <= v3.SimCycles {
		t.Errorf("circuit cycles (%d) should exceed the decision-graph product (%d)",
			opt.SimCycles, v3.SimCycles)
	}
	_ = FormatTable3(prof, rows)
}

// TestShockShape reproduces Section V-B: the synthesized ROM and RAM
// come in well under the hand design's 32K/8K, and the latency budget
// holds.
func TestShockShape(t *testing.T) {
	prof := vm.HC11()
	rep, err := ShockAbsorberExperiment(prof)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SynthROM <= 0 || rep.SynthROM >= rep.HandROM {
		t.Errorf("synth ROM %d vs hand %d", rep.SynthROM, rep.HandROM)
	}
	if rep.SynthRAM <= 0 || rep.SynthRAM >= rep.HandRAM {
		t.Errorf("synth RAM %d vs hand %d", rep.SynthRAM, rep.HandRAM)
	}
	if !rep.LatencyOK {
		t.Errorf("latency %d exceeds budget %d", rep.MaxLat, rep.Budget)
	}
	if rep.OptimizedROM > rep.SynthROM || rep.OptimizedRAM > rep.SynthRAM {
		t.Errorf("copy optimisation must not grow the footprint: %+v", rep)
	}
	_ = FormatShock(prof, rep)
}

// TestAblationCollapse reproduces the paper's negative result: no
// module improves in size or worst-case cycles.
func TestAblationCollapse(t *testing.T) {
	prof := vm.HC11()
	rows, err := AblationCollapse(prof)
	if err != nil {
		t.Fatal(err)
	}
	// Collapsing destroys lazy evaluation: every constituent test of
	// a merged node is computed on every path, so the worst-case time
	// must not improve — the structural reason the paper dropped the
	// optimisation. Size may wobble a few percent either way (jump
	// tables versus branch chains); assert it stays marginal.
	var pb, cb, pc, cc int64
	for _, r := range rows {
		pb += r.PlainBytes
		cb += r.CollapsedB
		pc += r.PlainMaxCyc
		cc += r.CollapsedCyc
	}
	if cc < pc {
		t.Errorf("collapsing improved total worst-case cycles %d -> %d", pc, cc)
	}
	if delta := 100 * float64(cb-pb) / float64(pb); delta < -5 || delta > 25 {
		t.Errorf("collapsing changed total size by %.1f%% (%d -> %d), outside the expected band",
			delta, pb, cb)
	}
	_ = FormatCollapse(prof, rows)
}

func TestAblationRTOS(t *testing.T) {
	prof := vm.HC11()
	rep, err := AblationRTOS(prof)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GeneratedROM >= rep.CommercialROM {
		t.Errorf("generated RTOS ROM %d should undercut commercial %d",
			rep.GeneratedROM, rep.CommercialROM)
	}
	if rep.PollingLat <= rep.InterruptLat {
		t.Errorf("polling latency %d should exceed interrupt latency %d",
			rep.PollingLat, rep.InterruptLat)
	}
	if rep.PollingLat > rep.InterruptLat+rep.PollPeriod+1000 {
		t.Errorf("polling latency %d exceeds one period beyond interrupt %d",
			rep.PollingLat, rep.InterruptLat)
	}
	_ = FormatRTOS(prof, rep)
}

func TestAblationCopies(t *testing.T) {
	prof := vm.HC11()
	rows, err := AblationCopies(prof)
	if err != nil {
		t.Fatal(err)
	}
	var saved int64
	for _, r := range rows {
		if r.OptROM > r.FullROM || r.OptRAM > r.FullRAM || r.OptWCET > r.FullWCET {
			t.Errorf("%s: optimisation made something worse: %+v", r.Module, r)
		}
		saved += (r.FullROM - r.OptROM) + (r.FullRAM - r.OptRAM)
	}
	if saved <= 0 {
		t.Error("write-before-read analysis saved nothing across the design")
	}
	_ = FormatCopies(prof, rows)
}

func TestAblationFalsePaths(t *testing.T) {
	prof := vm.HC11()
	rows, err := AblationFalsePaths(prof)
	if err != nil {
		t.Fatal(err)
	}
	tightened := false
	for _, r := range rows {
		if r.PrunedMax > r.PlainMax {
			t.Errorf("%s: pruning increased the bound", r.Module)
		}
		if r.PrunedMax < r.PlainMax {
			tightened = true
		}
	}
	if !tightened {
		t.Error("no module's WCET bound tightened; the timer's exclusive tests should")
	}
	_ = FormatFalsePaths(prof, rows)
}

// TestPartitionSweep checks the co-design trade-off: moving front-end
// modules to hardware reduces CPU utilisation and software footprint
// monotonically, without breaking the latency budget.
func TestPartitionSweep(t *testing.T) {
	prof := vm.HC11()
	rows, err := PartitionSweep(prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Utilization >= rows[i-1].Utilization {
			t.Errorf("utilization must fall as modules move to hw: %.3f -> %.3f",
				rows[i-1].Utilization, rows[i].Utilization)
		}
		if rows[i].SWCodeBytes >= rows[i-1].SWCodeBytes {
			t.Errorf("software footprint must fall: %d -> %d",
				rows[i-1].SWCodeBytes, rows[i].SWCodeBytes)
		}
	}
	for _, r := range rows {
		if r.MaxLatency < 0 || r.MaxLatency > 24000 {
			t.Errorf("%s: latency %d out of budget", r.Name, r.MaxLatency)
		}
	}
	_ = FormatPartition(prof, rows)
}

// TestAblationChaining: chaining the pipeline removes scheduler
// decisions and shortens the end-to-end latency.
func TestAblationChaining(t *testing.T) {
	prof := vm.HC11()
	rows, err := AblationChaining(prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	un, ch := rows[0], rows[1]
	if ch.ScheduleCalls >= un.ScheduleCalls {
		t.Errorf("chaining must cut scheduler calls: %d vs %d", ch.ScheduleCalls, un.ScheduleCalls)
	}
	if ch.MaxLatency >= un.MaxLatency {
		t.Errorf("chaining must cut latency: %d vs %d", ch.MaxLatency, un.MaxLatency)
	}
	if ch.BusyCycles >= un.BusyCycles {
		t.Errorf("chaining must cut busy cycles: %d vs %d", ch.BusyCycles, un.BusyCycles)
	}
	_ = FormatChaining(prof, rows)
}

// TestRTABoundsSimulatedResponses cross-checks the scheduling theory
// substrate against the executable RTOS model: for independent
// periodic tasks under preemptive rate-monotonic priorities, every
// simulated response time stays within the response-time-analysis
// bound (plus the delivery overheads RTA does not model).
func TestRTABoundsSimulatedResponses(t *testing.T) {
	n := cfsm.NewNetwork("rta")
	type job struct {
		in, out *cfsm.Signal
		m       *cfsm.CFSM
		period  int64
		cost    int64
	}
	mk := func(name string, period, cost int64) *job {
		in := n.NewSignal("in_"+name, true)
		out := n.NewSignal("out_"+name, true)
		m := cfsm.New(name)
		m.AttachInput(in)
		m.AttachOutput(out)
		p := m.Present(in)
		m.AddTransition([]cfsm.Cond{cfsm.On(p, 1)}, m.Emit(out))
		if err := n.Add(m); err != nil {
			t.Fatal(err)
		}
		return &job{in: in, out: out, m: m, period: period, cost: cost}
	}
	jobs := []*job{
		mk("fast", 4000, 600),
		mk("mid", 9000, 1500),
		mk("slow", 23000, 4000),
	}
	cfg := rtos.DefaultConfig()
	cfg.Policy = rtos.StaticPriority
	cfg.Preemptive = true
	// Rate-monotonic priorities: shorter period, higher priority.
	cfg.Priority = map[*cfsm.CFSM]int{jobs[0].m: 3, jobs[1].m: 2, jobs[2].m: 1}

	costs := map[*cfsm.CFSM]int64{}
	var specs []rtos.TaskSpec
	for _, j := range jobs {
		costs[j.m] = j.cost
		specs = append(specs, rtos.TaskSpec{
			Name: j.m.Name, WCET: j.cost, Period: j.period,
		})
	}
	// Charge each execution its scheduler decision and the interrupt
	// deliveries the analysis abstracts (its own arrival's ISR plus an
	// amortised share of the others that land in its window).
	rta := rtos.Schedulability(specs, cfg.ScheduleOverhead+2*cfg.ISROverhead)
	if !rta.Schedulable {
		t.Fatalf("task set should be schedulable: %+v", rta)
	}

	sys, err := rtos.NewSystem(n, cfg, func(m *cfsm.CFSM) (*rtos.Task, error) {
		mm := m
		return rtos.NewTask(mm, rtos.Infallible(mm.React), func(cfsm.Snapshot) int64 { return costs[mm] }), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	until := int64(400_000)
	type arrival struct {
		t int64
		j *job
	}
	var arrivals []arrival
	for _, j := range jobs {
		for ti := int64(1000); ti < until; ti += j.period {
			arrivals = append(arrivals, arrival{ti, j})
		}
	}
	sort.Slice(arrivals, func(i, k int) bool { return arrivals[i].t < arrivals[k].t })
	for _, a := range arrivals {
		if err := sys.Advance(a.t); err != nil {
			t.Fatal(err)
		}
		sys.EmitEnv(a.j.in, 0)
	}
	if err := sys.Advance(until); err != nil {
		t.Fatal(err)
	}
	// Per task: worst observed env->out latency vs RTA bound, with
	// slack for delivery jitter outside the periodic model.
	slack := 3 * cfg.ISROverhead
	for i, j := range jobs {
		var worst int64
		for k, e := range sys.Trace {
			if e.Signal != j.in || e.From != "env" {
				continue
			}
			for _, f := range sys.Trace[k:] {
				if f.Signal == j.out && f.From == j.m.Name {
					if d := f.Time - e.Time; d > worst {
						worst = d
					}
					break
				}
			}
		}
		bound := rta.ResponseTimes[i] + slack
		if worst == 0 {
			t.Fatalf("%s never responded", j.m.Name)
		}
		if worst > bound {
			t.Errorf("%s: simulated worst response %d exceeds RTA bound %d (+%d slack)",
				j.m.Name, worst, rta.ResponseTimes[i], slack)
		}
	}
}

// TestAblationReduce is the paper-style acceptance check for the
// reduction engine: on the example designs at least one module (the
// dashboard timer, whose at50/at150 predicates are declared exclusive)
// must come out strictly smaller, with no-worse estimated ROM and
// worst-case cycles; and no module may ever grow under reduction.
func TestAblationReduce(t *testing.T) {
	prof := vm.HC11()
	rows, err := AblationReduce(prof)
	if err != nil {
		t.Fatal(err)
	}
	improved := false
	for _, r := range rows {
		if r.ReducedVerts > r.PlainVerts {
			t.Errorf("%s: reduction grew the graph %d -> %d vertices",
				r.Module, r.PlainVerts, r.ReducedVerts)
		}
		if r.ReducedVerts < r.PlainVerts &&
			r.EstReducedR <= r.EstPlainROM && r.EstReducedM <= r.EstPlainMax {
			improved = true
		}
		if r.Stats.Changed() && r.ReducedBytes > r.PlainBytes {
			t.Errorf("%s: reduction grew the measured code %d -> %d bytes",
				r.Module, r.PlainBytes, r.ReducedBytes)
		}
	}
	if !improved {
		t.Errorf("no module improved strictly with no-worse estimates:\n%s",
			FormatReduce(prof, rows))
	}
	_ = FormatReduce(prof, rows)
}
