package experiments

import (
	"fmt"
	"os"
	"testing"

	"polis/internal/vm"
)

// TestPrintAllTables regenerates every table and writes the combined
// report; run with -v to inspect, and the file feeds EXPERIMENTS.md.
func TestPrintAllTables(t *testing.T) {
	if os.Getenv("POLIS_PRINT") == "" {
		t.Skip("set POLIS_PRINT=1 to emit the full report")
	}
	hc := vm.HC11()
	r3 := vm.R3K()
	t1, err := Table1(hc)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatTable1(hc, t1), "\n")
	t1r, err := Table1(r3)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatTable1(r3, t1r), "\n")
	t2, err := Table2(hc)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatTable2(hc, t2), "\n")
	t3, err := Table3(r3)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatTable3(r3, t3), "\n")
	sa, err := ShockAbsorberExperiment(hc)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatShock(hc, sa), "\n")
	cl, err := AblationCollapse(hc)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatCollapse(hc, cl), "\n")
	ro, err := AblationRTOS(hc)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatRTOS(hc, ro), "\n")
	cp, err := AblationCopies(hc)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatCopies(hc, cp), "\n")
	fp, err := AblationFalsePaths(hc)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatFalsePaths(hc, fp), "\n")
}

func TestPrintPartition(t *testing.T) {
	if os.Getenv("POLIS_PRINT") == "" {
		t.Skip("set POLIS_PRINT=1 to emit the report")
	}
	rows, err := PartitionSweep(vm.HC11())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatPartition(vm.HC11(), rows))
}
