// Package experiments regenerates the paper's experimental section:
// Table I (cost/performance estimation accuracy), Table II (effect of
// TEST-variable orderings on code size), Table III (comparison with
// the Esterel compilation strategies), and the Section V-B
// shock-absorber redesign, plus the ablations DESIGN.md calls out
// (TEST-node collapsing, generated versus commercial RTOS, polling
// versus interrupts, copy-on-entry optimisation, false-path pruning).
// Both the benchmark harness (bench_test.go) and the CLI tools drive
// these entry points.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"polis/internal/baseline"
	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/designs"
	"polis/internal/estimate"
	"polis/internal/logic"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/sim"
	"polis/internal/vm"
)

// synthesize runs the full per-CFSM flow and returns the s-graph and
// assembled program.
func synthesize(m *cfsm.CFSM, ord sgraph.Ordering, opts codegen.Options) (*sgraph.SGraph, *vm.Program, error) {
	r, err := cfsm.BuildReactive(m)
	if err != nil {
		return nil, nil, err
	}
	g, err := sgraph.Build(r, ord)
	if err != nil {
		return nil, nil, err
	}
	p, err := codegen.Assemble(g, codegen.NewSignalMap(m), opts)
	if err != nil {
		return nil, nil, err
	}
	return g, p, nil
}

// ---------------------------------------------------------------- T1

// Table1Row compares the estimator against exact object-code
// measurement for one CFSM.
type Table1Row struct {
	Module     string
	EstSize    int64
	ActSize    int64
	SizeErrPct float64
	EstMaxCyc  int64
	ActMaxCyc  int64
	CycErrPct  float64
	EstMinCyc  int64
	ActMinCyc  int64
}

// Table1 runs the cost/performance estimation experiment over the
// dashboard modules on the given target.
func Table1(prof *vm.Profile) ([]Table1Row, error) {
	d := designs.NewDashboard()
	params, err := estimate.Calibrate(prof)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, m := range d.Modules() {
		g, p, err := synthesize(m, sgraph.OrderSiftAfterSupport, codegen.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		est := estimate.EstimateSGraph(g, params, estimate.Options{})
		act, err := vm.AnalyzeCycles(prof, p, codegen.EntryLabel(m))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		actSize := int64(prof.CodeSize(p))
		rows = append(rows, Table1Row{
			Module:     m.Name,
			EstSize:    est.CodeBytes,
			ActSize:    actSize,
			SizeErrPct: pctErr(est.CodeBytes, actSize),
			EstMaxCyc:  est.MaxCycles,
			ActMaxCyc:  act.Max,
			CycErrPct:  pctErr(est.MaxCycles, act.Max),
			EstMinCyc:  est.MinCycles,
			ActMinCyc:  act.Min,
		})
	}
	return rows, nil
}

func pctErr(est, act int64) float64 {
	if act == 0 {
		return 0
	}
	return 100 * float64(est-act) / float64(act)
}

// FormatTable1 renders the rows like the paper's Table I.
func FormatTable1(prof *vm.Profile, rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I -- cost/performance estimation, target %s\n", prof.Name)
	fmt.Fprintf(&b, "%-14s %9s %9s %7s   %9s %9s %7s\n",
		"CFSM", "est size", "act size", "err%", "est max", "act max", "err%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9d %9d %6.1f%%   %9d %9d %6.1f%%\n",
			r.Module, r.EstSize, r.ActSize, r.SizeErrPct,
			r.EstMaxCyc, r.ActMaxCyc, r.CycErrPct)
	}
	return b.String()
}

// ---------------------------------------------------------------- T2

// Table2Row reports the code size of one CFSM under the four
// strategies of Table II.
type Table2Row struct {
	Module           string
	Naive            int64 // declaration order, no sifting
	SiftInputsFirst  int64 // all outputs after all inputs
	SiftAfterSupport int64 // each output after its support (default)
	TwoLevelJump     int64 // structured hand-coding reference
}

// Table2 measures the ordering effect on the dashboard modules.
func Table2(prof *vm.Profile) ([]Table2Row, error) {
	d := designs.NewDashboard()
	var rows []Table2Row
	for _, m := range d.Modules() {
		row := Table2Row{Module: m.Name}
		for _, ord := range []sgraph.Ordering{
			sgraph.OrderNaive, sgraph.OrderSiftInputsFirst, sgraph.OrderSiftAfterSupport,
		} {
			_, p, err := synthesize(m, ord, codegen.Options{})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", m.Name, ord, err)
			}
			sz := int64(prof.CodeSize(p))
			switch ord {
			case sgraph.OrderNaive:
				row.Naive = sz
			case sgraph.OrderSiftInputsFirst:
				row.SiftInputsFirst = sz
			default:
				row.SiftAfterSupport = sz
			}
		}
		two, err := baseline.TwoLevelJump(m, codegen.NewSignalMap(m), codegen.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s/twolevel: %w", m.Name, err)
		}
		row.TwoLevelJump = int64(prof.CodeSize(two))
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable2 renders Table II.
func FormatTable2(prof *vm.Profile, rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II -- TEST-variable orderings, code bytes, target %s\n", prof.Name)
	fmt.Fprintf(&b, "%-14s %8s %12s %13s %10s\n",
		"CFSM", "naive", "sift(in<out)", "sift(support)", "two-level")
	var tn, ti, ts, tt int64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %12d %13d %10d\n",
			r.Module, r.Naive, r.SiftInputsFirst, r.SiftAfterSupport, r.TwoLevelJump)
		tn += r.Naive
		ti += r.SiftInputsFirst
		ts += r.SiftAfterSupport
		tt += r.TwoLevelJump
	}
	fmt.Fprintf(&b, "%-14s %8d %12d %13d %10d\n", "TOTAL", tn, ti, ts, tt)
	return b.String()
}

// ---------------------------------------------------------------- T3

// Table3Row is one implementation strategy over the same workload.
type Table3Row struct {
	Approach  string
	CodeBytes int64
	DataBytes int64
	SimCycles int64 // total CPU cycles consumed over the stimulus file
	Synthesis time.Duration
}

// Table3 compares POLIS per-CFSM synthesis against the two Esterel
// strategies on the belt+timer sub-network over a long stimulus file:
// POLIS runs the GALS network under the generated RTOS; ESTEREL runs
// the explicit synchronous product as one machine (v3); ESTEREL_OPT
// runs the boolean-circuit implementation of the same product (v5's
// outputs-before-inputs code style).
func Table3(prof *vm.Profile) ([]Table3Row, error) {
	net, d := designs.BeltSubnet()
	stimuli := beltWorkload(d, 2_000_000)
	until := int64(2_200_000)
	var rows []Table3Row

	// --- POLIS: per-CFSM decision-graph code under the RTOS.
	start := time.Now()
	opts := sim.Options{
		Cfg:      rtos.DefaultConfig(),
		Mode:     sim.VMExact,
		Profile:  prof,
		Ordering: sgraph.OrderSiftAfterSupport,
	}
	res, err := sim.Run(net, stimuli, until, opts)
	if err != nil {
		return nil, err
	}
	rsize := rtos.SizeEstimate(prof, net, opts.Cfg)
	rows = append(rows, Table3Row{
		Approach:  "POLIS",
		CodeBytes: res.CodeBytes + rsize.CodeBytes,
		DataBytes: res.DataBytes + rsize.DataBytes,
		SimCycles: res.System.BusyCycles,
		Synthesis: time.Since(start),
	})

	// --- ESTEREL (v3): single product FSM, decision-graph code.
	start = time.Now()
	prod, err := baseline.SingleFSM(net)
	if err != nil {
		return nil, err
	}
	g, p, err := synthesize(prod, sgraph.OrderSiftAfterSupport, codegen.Options{})
	if err != nil {
		return nil, err
	}
	synthV3 := time.Since(start)
	cycles, err := runProductVM(prod, g, p, prof, stimuli)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table3Row{
		Approach:  "ESTEREL",
		CodeBytes: int64(prof.CodeSize(p)),
		DataBytes: int64(prof.DataSize(p)),
		SimCycles: cycles,
		Synthesis: synthV3,
	})

	// --- ESTEREL_OPT (v5): boolean-circuit code for the product.
	start = time.Now()
	r, err := cfsm.BuildReactive(prod)
	if err != nil {
		return nil, err
	}
	netw, err := logic.Build(r)
	if err != nil {
		return nil, err
	}
	cp, err := logic.Assemble(netw, codegen.NewSignalMap(prod), codegen.Options{})
	if err != nil {
		return nil, err
	}
	synthOpt := time.Since(start)
	cyclesOpt, err := runProductVM(prod, g, cp, prof, stimuli)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table3Row{
		Approach:  "ESTEREL_OPT",
		CodeBytes: int64(prof.CodeSize(cp)),
		DataBytes: int64(prof.DataSize(cp)),
		SimCycles: cyclesOpt,
		Synthesis: synthOpt,
	})
	return rows, nil
}

// beltWorkload builds the large simulation input file: periodic ticks,
// key cycles, occasional belt fastenings.
func beltWorkload(d *designs.Dashboard, until int64) []sim.Stimulus {
	var st []sim.Stimulus
	st = append(st, sim.PeriodicStimuli(d.Tick, 2000, 10_000, until, nil)...)
	for t := int64(5_000); t < until; t += 400_000 {
		st = append(st, sim.Stimulus{Time: t, Signal: d.KeyOn})
		st = append(st, sim.Stimulus{Time: t + 320_000, Signal: d.KeyOff})
	}
	for t := int64(950_000); t < until; t += 800_000 {
		st = append(st, sim.Stimulus{Time: t, Signal: d.BeltOn})
	}
	return st
}

// runProductVM executes the single product machine on the VM over the
// stimulus stream: one synchronous reaction per instant at which any
// input event is present (the product consumes the whole snapshot).
func runProductVM(prod *cfsm.CFSM, g *sgraph.SGraph, p *vm.Program,
	prof *vm.Profile, stimuli []sim.Stimulus) (int64, error) {
	host := &productHost{byID: map[int]*cfsm.Signal{}}
	sigs := codegen.NewSignalMap(prod)
	for s, id := range sigs {
		host.byID[id] = s
	}
	m := vm.NewMachine(prof, p.Words, host)
	for _, sv := range prod.States {
		m.Mem[p.Symbols["st_"+sv.Name]] = sv.Init
	}
	// Group stimuli into instants.
	var total int64
	i := 0
	for i < len(stimuli) {
		t := stimuli[i].Time
		host.present = map[*cfsm.Signal]bool{}
		host.values = map[*cfsm.Signal]int64{}
		for i < len(stimuli) && stimuli[i].Time == t {
			host.present[stimuli[i].Signal] = true
			host.values[stimuli[i].Signal] = stimuli[i].Value
			i++
		}
		cycles, err := m.Run(p, codegen.EntryLabel(prod))
		if err != nil {
			return 0, fmt.Errorf("product run: %w", err)
		}
		total += cycles
	}
	_ = g
	return total, nil
}

type productHost struct {
	byID    map[int]*cfsm.Signal
	present map[*cfsm.Signal]bool
	values  map[*cfsm.Signal]int64
	Emitted []cfsm.Emission
}

func (h *productHost) Present(sig int) bool { return h.present[h.byID[sig]] }
func (h *productHost) Value(sig int) int64  { return h.values[h.byID[sig]] }
func (h *productHost) Emit(sig int) {
	h.Emitted = append(h.Emitted, cfsm.Emission{Signal: h.byID[sig]})
}
func (h *productHost) EmitValue(sig int, v int64) {
	h.Emitted = append(h.Emitted, cfsm.Emission{Signal: h.byID[sig], Value: v})
}

// FormatTable3 renders Table III.
func FormatTable3(prof *vm.Profile, rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III -- comparison with Esterel strategies (belt chain), target %s\n", prof.Name)
	fmt.Fprintf(&b, "%-12s %10s %10s %12s %12s\n",
		"approach", "code B", "data B", "sim cycles", "synthesis")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10d %10d %12d %12s\n",
			r.Approach, r.CodeBytes, r.DataBytes, r.SimCycles, r.Synthesis.Round(time.Millisecond))
	}
	return b.String()
}
