package experiments

import (
	"fmt"
	"strings"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/designs"
	"polis/internal/estimate"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/sim"
	"polis/internal/vm"
)

// CollapseRow reports the TEST-node collapsing ablation for one CFSM
// (Section III-B3d: the paper never observed an improvement).
type CollapseRow struct {
	Module       string
	PlainBytes   int64
	CollapsedB   int64
	PlainMaxCyc  int64
	CollapsedCyc int64
	NodesMerged  int
}

// AblationCollapse measures TEST-node collapsing on the dashboard.
func AblationCollapse(prof *vm.Profile) ([]CollapseRow, error) {
	d := designs.NewDashboard()
	var rows []CollapseRow
	for _, m := range d.Modules() {
		g, p, err := synthesize(m, sgraph.OrderSiftAfterSupport, codegen.Options{})
		if err != nil {
			return nil, err
		}
		act, err := vm.AnalyzeCycles(prof, p, codegen.EntryLabel(m))
		if err != nil {
			return nil, err
		}
		row := CollapseRow{
			Module:      m.Name,
			PlainBytes:  int64(prof.CodeSize(p)),
			PlainMaxCyc: act.Max,
		}
		// Rebuild and collapse.
		r, err := cfsm.BuildReactive(m)
		if err != nil {
			return nil, err
		}
		g2, err := sgraph.Build(r, sgraph.OrderSiftAfterSupport)
		if err != nil {
			return nil, err
		}
		row.NodesMerged = g2.CollapseTests(32)
		p2, err := codegen.Assemble(g2, codegen.NewSignalMap(m), codegen.Options{})
		if err != nil {
			return nil, err
		}
		act2, err := vm.AnalyzeCycles(prof, p2, codegen.EntryLabel(m))
		if err != nil {
			return nil, err
		}
		row.CollapsedB = int64(prof.CodeSize(p2))
		row.CollapsedCyc = act2.Max
		rows = append(rows, row)
		_ = g
	}
	return rows, nil
}

// FormatCollapse renders the collapsing ablation.
func FormatCollapse(prof *vm.Profile, rows []CollapseRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: TEST-node collapsing (Section III-B3d), target %s\n", prof.Name)
	fmt.Fprintf(&b, "%-14s %8s %9s %9s %9s %7s\n",
		"CFSM", "plain B", "collap B", "plain cy", "collap cy", "merged")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %9d %9d %9d %7d\n",
			r.Module, r.PlainBytes, r.CollapsedB, r.PlainMaxCyc, r.CollapsedCyc, r.NodesMerged)
	}
	return b.String()
}

// RTOSReport is the Section IV-E ablation: generated versus
// commercial-style RTOS size, and polling versus interrupt delivery
// latency on the shock absorber's sensor chain.
type RTOSReport struct {
	GeneratedROM  int64
	GeneratedRAM  int64
	CommercialROM int64
	CommercialRAM int64
	InterruptLat  int64 // max sensor->solenoid latency, cycles
	PollingLat    int64 // same with the sample delivered by polling
	PollPeriod    int64
}

// AblationRTOS runs the RTOS comparison.
func AblationRTOS(prof *vm.Profile) (*RTOSReport, error) {
	s := designs.NewShockAbsorber()
	cfg := rtos.DefaultConfig()
	gen := rtos.SizeEstimate(prof, s.Net, cfg)
	com := rtos.CommercialSizeEstimate(prof, s.Net, cfg)
	rep := &RTOSReport{
		GeneratedROM:  gen.CodeBytes,
		GeneratedRAM:  gen.DataBytes,
		CommercialROM: com.CodeBytes,
		CommercialRAM: com.DataBytes,
		PollPeriod:    cfg.PollPeriod,
	}
	run := func(deliver rtos.Delivery) (int64, error) {
		c := rtos.DefaultConfig()
		c.Deliver = map[*cfsm.Signal]rtos.Delivery{s.AccelSample: deliver}
		var stim []sim.Stimulus
		stim = append(stim, sim.PeriodicStimuli(s.AccelSample, 1100, 9000, 300_000,
			func(i int) int64 { return int64(80 + (i%4)*6) })...)
		stim = append(stim, sim.Stimulus{Time: 500, Signal: s.SpeedSample, Value: 90})
		res, err := sim.Run(s.Net, stim, 400_000, sim.Options{
			Cfg: c, Mode: sim.VMExact, Profile: prof,
			Ordering: sgraph.OrderSiftAfterSupport,
		})
		if err != nil {
			return 0, err
		}
		return sim.MaxLatency(res.Trace, s.AccelSample, s.Solenoid), nil
	}
	var err error
	if rep.InterruptLat, err = run(rtos.Interrupt); err != nil {
		return nil, err
	}
	if rep.PollingLat, err = run(rtos.Polling); err != nil {
		return nil, err
	}
	return rep, nil
}

// FormatRTOS renders the RTOS ablation.
func FormatRTOS(prof *vm.Profile, r *RTOSReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: generated vs commercial RTOS (Section IV-E), target %s\n", prof.Name)
	fmt.Fprintf(&b, "  generated:  ROM %6d B  RAM %5d B\n", r.GeneratedROM, r.GeneratedRAM)
	fmt.Fprintf(&b, "  commercial: ROM %6d B  RAM %5d B\n", r.CommercialROM, r.CommercialRAM)
	fmt.Fprintf(&b, "  delivery latency: interrupt %d cycles, polling %d cycles (period %d)\n",
		r.InterruptLat, r.PollingLat, r.PollPeriod)
	return b.String()
}

// CopyRow reports the copy-on-entry optimisation per module.
type CopyRow struct {
	Module   string
	FullROM  int64
	FullRAM  int64
	OptROM   int64
	OptRAM   int64
	FullWCET int64
	OptWCET  int64
}

// AblationCopies quantifies the write-before-read data-flow analysis
// the paper lists as the pending ROM/RAM/CPU improvement (Section V-B)
// over the shock-absorber modules.
func AblationCopies(prof *vm.Profile) ([]CopyRow, error) {
	s := designs.NewShockAbsorber()
	var rows []CopyRow
	for _, m := range s.Modules() {
		row := CopyRow{Module: m.Name}
		for _, opt := range []bool{false, true} {
			_, p, err := synthesize(m, sgraph.OrderSiftAfterSupport,
				codegen.Options{OptimizeCopies: opt})
			if err != nil {
				return nil, err
			}
			act, err := vm.AnalyzeCycles(prof, p, codegen.EntryLabel(m))
			if err != nil {
				return nil, err
			}
			if opt {
				row.OptROM = int64(prof.CodeSize(p))
				row.OptRAM = int64(prof.DataSize(p))
				row.OptWCET = act.Max
			} else {
				row.FullROM = int64(prof.CodeSize(p))
				row.FullRAM = int64(prof.DataSize(p))
				row.FullWCET = act.Max
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatCopies renders the copy ablation.
func FormatCopies(prof *vm.Profile, rows []CopyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: copy-on-entry vs write-before-read analysis, target %s\n", prof.Name)
	fmt.Fprintf(&b, "%-16s %8s %8s %8s %8s %9s %9s\n",
		"CFSM", "ROM", "optROM", "RAM", "optRAM", "WCET", "optWCET")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %8d %8d %8d %8d %9d %9d\n",
			r.Module, r.FullROM, r.OptROM, r.FullRAM, r.OptRAM, r.FullWCET, r.OptWCET)
	}
	return b.String()
}

// FalsePathRow compares the plain and false-path-aware WCET bounds.
type FalsePathRow struct {
	Module    string
	PlainMax  int64
	PrunedMax int64
}

// AblationFalsePaths measures the effect of event-incompatibility
// pruning (Section III-C) on the estimator's worst-case bound.
func AblationFalsePaths(prof *vm.Profile) ([]FalsePathRow, error) {
	d := designs.NewDashboard()
	params, err := estimate.Calibrate(prof)
	if err != nil {
		return nil, err
	}
	var rows []FalsePathRow
	for _, m := range d.Modules() {
		r, err := cfsm.BuildReactive(m)
		if err != nil {
			return nil, err
		}
		g, err := sgraph.Build(r, sgraph.OrderSiftAfterSupport)
		if err != nil {
			return nil, err
		}
		plain := estimate.EstimateSGraph(g, params, estimate.Options{})
		pruned := estimate.EstimateSGraph(g, params, estimate.Options{UseFalsePaths: true})
		rows = append(rows, FalsePathRow{
			Module: m.Name, PlainMax: plain.MaxCycles, PrunedMax: pruned.MaxCycles,
		})
	}
	return rows, nil
}

// FormatFalsePaths renders the false-path ablation.
func FormatFalsePaths(prof *vm.Profile, rows []FalsePathRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: false-path pruning of the WCET bound, target %s\n", prof.Name)
	fmt.Fprintf(&b, "%-16s %10s %10s\n", "CFSM", "plain max", "pruned max")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %10d %10d\n", r.Module, r.PlainMax, r.PrunedMax)
	}
	return b.String()
}

// ReduceRow reports the s-graph reduction ablation for one CFSM:
// plain versus reduced vertex counts, measured code size and cycle
// bounds, and the estimator's ROM/WCET view of both graphs.
type ReduceRow struct {
	Module       string
	PlainVerts   int
	ReducedVerts int
	PlainBytes   int64
	ReducedBytes int64
	PlainMaxCyc  int64
	ReducedCyc   int64
	EstPlainROM  int64
	EstReducedR  int64
	EstPlainMax  int64
	EstReducedM  int64
	Stats        sgraph.ReduceStats
}

// AblationReduce measures the fixed-point s-graph reduction engine
// (sharing, don't-care TEST elimination, ASSIGN straightening) over
// the dashboard and shock-absorber modules. Graphs straight out of
// procedure build are already maximally shared, so the interesting
// rows are the modules with declared test exclusivities (the timer's
// at50/at150 predicates), where don't-care elimination removes TESTs
// the BDD construction cannot see are unreachable.
func AblationReduce(prof *vm.Profile) ([]ReduceRow, error) {
	params, err := estimate.Calibrate(prof)
	if err != nil {
		return nil, err
	}
	var modules []*cfsm.CFSM
	modules = append(modules, designs.NewDashboard().Modules()...)
	modules = append(modules, designs.NewShockAbsorber().Modules()...)
	var rows []ReduceRow
	for _, m := range modules {
		g, p, err := synthesize(m, sgraph.OrderSiftAfterSupport, codegen.Options{})
		if err != nil {
			return nil, err
		}
		act, err := vm.AnalyzeCycles(prof, p, codegen.EntryLabel(m))
		if err != nil {
			return nil, err
		}
		plainEst := estimate.EstimateSGraph(g, params, estimate.Options{})
		row := ReduceRow{
			Module:      m.Name,
			PlainVerts:  g.ComputeStats().Vertices,
			PlainBytes:  int64(prof.CodeSize(p)),
			PlainMaxCyc: act.Max,
			EstPlainROM: plainEst.CodeBytes,
			EstPlainMax: plainEst.MaxCycles,
		}
		// Rebuild and reduce.
		r, err := cfsm.BuildReactive(m)
		if err != nil {
			return nil, err
		}
		g2, err := sgraph.Build(r, sgraph.OrderSiftAfterSupport)
		if err != nil {
			return nil, err
		}
		row.Stats = g2.Reduce(sgraph.ReduceOptions{})
		p2, err := codegen.Assemble(g2, codegen.NewSignalMap(m), codegen.Options{})
		if err != nil {
			return nil, err
		}
		act2, err := vm.AnalyzeCycles(prof, p2, codegen.EntryLabel(m))
		if err != nil {
			return nil, err
		}
		redEst := estimate.EstimateSGraph(g2, params, estimate.Options{})
		row.ReducedVerts = g2.ComputeStats().Vertices
		row.ReducedBytes = int64(prof.CodeSize(p2))
		row.ReducedCyc = act2.Max
		row.EstReducedR = redEst.CodeBytes
		row.EstReducedM = redEst.MaxCycles
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatReduce renders the reduction ablation.
func FormatReduce(prof *vm.Profile, rows []ReduceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: s-graph reduction engine, target %s\n", prof.Name)
	fmt.Fprintf(&b, "%-14s %6s %6s %8s %8s %9s %9s %8s %8s %6s\n",
		"CFSM", "v", "v'", "bytes", "bytes'", "maxcyc", "maxcyc'", "estROM", "estROM'", "elim")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %6d %6d %8d %8d %9d %9d %8d %8d %6d\n",
			r.Module, r.PlainVerts, r.ReducedVerts,
			r.PlainBytes, r.ReducedBytes,
			r.PlainMaxCyc, r.ReducedCyc,
			r.EstPlainROM, r.EstReducedR,
			r.Stats.TestsEliminated)
	}
	return b.String()
}
