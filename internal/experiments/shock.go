package experiments

import (
	"fmt"
	"strings"

	"polis/internal/designs"
	"polis/internal/rtos"
	"polis/internal/sgraph"
	"polis/internal/sim"
	"polis/internal/vm"
)

// ShockReport is the Section V-B redesign experiment: synthesized
// ROM/RAM (modules + generated RTOS with round-robin scheduler and I/O
// drivers) against the hand-written implementation's footprint, and
// the sensor-to-actuator latency against the specification's budget.
type ShockReport struct {
	SynthROM  int64 // bytes, tasks + RTOS
	SynthRAM  int64
	RTOSROM   int64
	RTOSRAM   int64
	HandROM   int64 // the paper's manual implementation
	HandRAM   int64
	MaxLat    int64 // worst observed sensor->solenoid latency, cycles
	Budget    int64
	LatencyOK bool
	// OptimizedROM/RAM apply the write-before-read copy analysis the
	// paper names as the pending improvement.
	OptimizedROM int64
	OptimizedRAM int64
}

// Footprints the paper reports for the hand-designed shock absorber.
const (
	handROMBytes = 32 * 1024
	handRAMBytes = 8 * 1024
)

// ShockAbsorberExperiment synthesizes the controller, sizes it, and
// measures the I/O latency under a rough-road workload.
func ShockAbsorberExperiment(prof *vm.Profile) (*ShockReport, error) {
	s := designs.NewShockAbsorber()
	cfg := rtos.DefaultConfig() // round-robin, as in the paper
	rep := &ShockReport{
		HandROM: handROMBytes,
		HandRAM: handRAMBytes,
		Budget:  designs.LatencyBudgetCycles,
	}

	size := func(copyOpt bool) (int64, int64, error) {
		var rom, ram int64
		for _, m := range s.Modules() {
			opts := sim.Options{Profile: prof, Ordering: sgraph.OrderSiftAfterSupport}
			opts.Codegen.OptimizeCopies = copyOpt
			_, code, data, err := sim.BuildVMTask(m, opts)
			if err != nil {
				return 0, 0, fmt.Errorf("%s: %w", m.Name, err)
			}
			rom += code
			ram += data
		}
		return rom, ram, nil
	}
	rsize := rtos.SizeEstimate(prof, s.Net, cfg)
	rep.RTOSROM = rsize.CodeBytes
	rep.RTOSRAM = rsize.DataBytes

	rom, ram, err := size(false)
	if err != nil {
		return nil, err
	}
	rep.SynthROM = rom + rsize.CodeBytes
	rep.SynthRAM = ram + rsize.DataBytes

	optROM, optRAM, err := size(true)
	if err != nil {
		return nil, err
	}
	rep.OptimizedROM = optROM + rsize.CodeBytes
	rep.OptimizedRAM = optRAM + rsize.DataBytes

	// Latency under a rough-road workload.
	var stim []sim.Stimulus
	stim = append(stim, sim.PeriodicStimuli(s.AccelSample, 1000, 4000, 900_000,
		func(i int) int64 { return int64(70 + (i%7)*8) })...)
	stim = append(stim, sim.Stimulus{Time: 500, Signal: s.SpeedSample, Value: 120})
	stim = append(stim, sim.PeriodicStimuli(s.Tick, 3000, 20_000, 900_000, nil)...)
	stim = append(stim, sim.PeriodicStimuli(s.ActAck, 3500, 20_000, 900_000, nil)...)
	res, err := sim.Run(s.Net, stim, 1_000_000, sim.Options{
		Cfg: cfg, Mode: sim.VMExact, Profile: prof,
		Ordering: sgraph.OrderSiftAfterSupport,
	})
	if err != nil {
		return nil, err
	}
	rep.MaxLat = sim.MaxLatency(res.Trace, s.AccelSample, s.Solenoid)
	rep.LatencyOK = rep.MaxLat >= 0 && rep.MaxLat <= rep.Budget
	return rep, nil
}

// FormatShock renders the Section V-B comparison.
func FormatShock(prof *vm.Profile, r *ShockReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shock absorber redesign (Section V-B), target %s\n", prof.Name)
	fmt.Fprintf(&b, "  synthesized: ROM %6d B  RAM %5d B (incl. RTOS %d/%d B)\n",
		r.SynthROM, r.SynthRAM, r.RTOSROM, r.RTOSRAM)
	fmt.Fprintf(&b, "  with copy optimisation: ROM %6d B  RAM %5d B\n",
		r.OptimizedROM, r.OptimizedRAM)
	fmt.Fprintf(&b, "  hand-designed reference: ROM %6d B  RAM %5d B\n", r.HandROM, r.HandRAM)
	fmt.Fprintf(&b, "  sensor->actuator latency: %d cycles (budget %d) ok=%v\n",
		r.MaxLat, r.Budget, r.LatencyOK)
	return b.String()
}
