package pipeline

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"polis/internal/sgraph"
)

// Stage identifies one phase of the per-CFSM synthesis flow, in
// execution order. Stage wall times are reported through Trace events
// and aggregated by the Collector.
type Stage int

// Synthesis stages (Section III of the paper, one per major step).
const (
	// StageReactive extracts the reactive function and builds the
	// characteristic-function BDD (Section III-B1).
	StageReactive Stage = iota
	// StageSift runs dynamic variable reordering (Section III-B3).
	StageSift
	// StageSGraph constructs the s-graph from the ordered BDD
	// (procedure build, Theorem 1).
	StageSGraph
	// StageReduce runs the fixed-point s-graph reduction engine
	// (sharing, don't-care TEST elimination, ASSIGN straightening);
	// only present when Options.Reduce is set.
	StageReduce
	// StageSpecialize runs profile-guided hot-path specialization
	// (TEST outcome reordering gated by CheckEquivalent); only present
	// when Options.Profile covers the module.
	StageSpecialize
	// StageCodegen emits C, assembles object code and measures exact
	// cycle bounds on the virtual target.
	StageCodegen
	// StageEstimate runs the s-graph cost/performance estimator
	// (Section III-C).
	StageEstimate

	numStages
)

func (s Stage) String() string {
	switch s {
	case StageReactive:
		return "reactive"
	case StageSift:
		return "sift"
	case StageSGraph:
		return "s-graph"
	case StageReduce:
		return "reduce"
	case StageSpecialize:
		return "specialize"
	case StageCodegen:
		return "codegen"
	case StageEstimate:
		return "estimate"
	default:
		return fmt.Sprintf("stage%d", int(s))
	}
}

// EventKind classifies trace events.
type EventKind int

// Event kinds.
const (
	// EvRunStart opens a network run; Modules and Workers are set.
	EvRunStart EventKind = iota
	// EvRunEnd closes a network run; Duration is the wall time.
	EvRunEnd
	// EvStage reports one finished stage of one module.
	EvStage
	// EvBDD reports the module's BDD statistics after s-graph
	// construction: peak live nodes, sift swaps (plus swaps skipped by
	// the interaction-matrix fast path and block positions discarded
	// by lower-bound pruning), sift passes, and the kernel's lossy
	// operation-cache counters (hits, misses, resets, evictions).
	EvBDD
	// EvCacheHit and EvCacheMiss report artifact-cache lookups.
	EvCacheHit
	EvCacheMiss
	// EvDedup reports a singleflight join: the module's fingerprint was
	// already being synthesized by another worker (possibly of another
	// concurrent run sharing the Cache), so this worker waited for that
	// artifact instead of duplicating the synthesis.
	EvDedup
	// EvModuleError reports a failed module with its error.
	EvModuleError
	// EvReduce reports the module's s-graph reduction statistics.
	EvReduce
	// EvSpecialize reports the module's profile-guided specialization
	// statistics.
	EvSpecialize
)

// Event is one observation emitted by the pipeline. Only the fields
// relevant to the Kind are set.
type Event struct {
	Kind   EventKind
	Module string

	Stage    Stage
	Duration time.Duration

	Modules int // EvRunStart: modules in the run
	Workers int // EvRunStart: worker goroutines

	// Per-stage BDD snapshot, attached to the EvStage events of the
	// BDD-bearing stages (reactive, sift, s-graph): live and peak
	// physical node counts of the module's manager as the stage ends,
	// and the operation-cache traffic the stage itself generated
	// (deltas, so per-stage hit rates are meaningful).
	BDDLive        int // EvStage: live nodes at stage end
	BDDPeakNodes   int // EvStage: peak live nodes so far
	BDDCacheHits   int // EvStage: op-cache hits during the stage
	BDDCacheMisses int // EvStage: op-cache misses during the stage

	PeakNodes  int // EvBDD
	SiftSwaps  int // EvBDD
	SiftPasses int // EvBDD
	// Sifting pruning counters (EvBDD): adjacent swaps resolved by the
	// interaction-matrix permutation fast path without touching the
	// unique tables, and candidate block positions skipped because the
	// support-based lower bound proved they could not beat the best
	// size seen so far.
	SiftSwapsSkipped int
	SiftLBPrunes     int
	// Operation-cache counters of the module's BDD manager (EvBDD).
	// The cache is lossy and generation-stamped: resets count actual
	// reallocations (growth), evictions count colliding overwrites.
	CacheHits      int
	CacheMisses    int
	CacheResets    int
	CacheEvictions int

	FromDisk bool // EvCacheHit: served from the on-disk layer

	// Cache is a snapshot of the run cache's counters, attached to
	// EvRunEnd when the run had a cache: the per-lookup lock-wait
	// totals are the worker pool's shared-lock contention surface.
	Cache *CacheStats

	Reduce sgraph.ReduceStats // EvReduce

	Specialize sgraph.SpecializeStats // EvSpecialize

	Err error // EvModuleError
}

// Trace receives pipeline events. Implementations must be safe for
// concurrent use: worker goroutines emit events in parallel.
type Trace interface {
	Event(Event)
}

type nopTrace struct{}

func (nopTrace) Event(Event) {}

// Collector is the default Trace: it aggregates stage wall times, BDD
// statistics and cache counters under a mutex and renders them as a
// one-screen report.
type Collector struct {
	mu sync.Mutex

	modules int
	workers int
	runs    int
	wall    time.Duration

	stageTotal [numStages]time.Duration
	stageMax   [numStages]time.Duration
	stageCount [numStages]int

	// Per-stage BDD aggregates: worst-case footprint across modules,
	// summed op-cache traffic (see Event.BDDLive and friends).
	stageBDDLive   [numStages]int // max over modules
	stageBDDPeak   [numStages]int // max over modules
	stageBDDHits   [numStages]int
	stageBDDMisses [numStages]int

	peakNodes    int    // max over modules
	peakModule   string // module attaining peakNodes
	siftSwaps    int
	siftSkipped  int
	siftLBPrunes int
	siftPasses   int

	bddHits, bddMisses, bddResets, bddEvicts int

	reduceModules  int // modules that ran the reduction stage
	reduceBefore   int // vertices entering reduction
	reduceAfter    int // vertices leaving reduction
	reduceTests    int // TEST vertices eliminated
	reduceShares   int // vertices merged by hash-consing
	reduceAssigns  int // dead ASSIGN vertices dropped
	reduceRedirect int // infeasible edges redirected

	specModules   int   // modules that ran the specialization stage
	specSamples   int64 // profiled reactions consumed
	specTests     int   // TEST vertices with profile weight
	specReordered int   // TEST vertices given a hot order

	hits, diskHits, misses, dedups int

	cacheStats *CacheStats // last EvRunEnd snapshot (cumulative per cache)

	// lockWaitNs measures contention on the collector's own mutex —
	// the one lock every worker shares on every event.
	lockWaitNs int64

	errs []string
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// Event implements Trace.
func (c *Collector) Event(e Event) {
	t := time.Now()
	c.mu.Lock()
	c.lockWaitNs += time.Since(t).Nanoseconds()
	defer c.mu.Unlock()
	switch e.Kind {
	case EvRunStart:
		c.runs++
		c.modules += e.Modules
		c.workers = e.Workers
	case EvRunEnd:
		c.wall += e.Duration
		if e.Cache != nil {
			st := *e.Cache
			c.cacheStats = &st
		}
	case EvStage:
		if e.Stage >= 0 && e.Stage < numStages {
			c.stageTotal[e.Stage] += e.Duration
			c.stageCount[e.Stage]++
			if e.Duration > c.stageMax[e.Stage] {
				c.stageMax[e.Stage] = e.Duration
			}
			if e.BDDLive > c.stageBDDLive[e.Stage] {
				c.stageBDDLive[e.Stage] = e.BDDLive
			}
			if e.BDDPeakNodes > c.stageBDDPeak[e.Stage] {
				c.stageBDDPeak[e.Stage] = e.BDDPeakNodes
			}
			c.stageBDDHits[e.Stage] += e.BDDCacheHits
			c.stageBDDMisses[e.Stage] += e.BDDCacheMisses
		}
	case EvBDD:
		if e.PeakNodes > c.peakNodes {
			c.peakNodes = e.PeakNodes
			c.peakModule = e.Module
		}
		c.siftSwaps += e.SiftSwaps
		c.siftSkipped += e.SiftSwapsSkipped
		c.siftLBPrunes += e.SiftLBPrunes
		c.siftPasses += e.SiftPasses
		c.bddHits += e.CacheHits
		c.bddMisses += e.CacheMisses
		c.bddResets += e.CacheResets
		c.bddEvicts += e.CacheEvictions
	case EvReduce:
		c.reduceModules++
		c.reduceBefore += e.Reduce.VerticesBefore
		c.reduceAfter += e.Reduce.VerticesAfter
		c.reduceTests += e.Reduce.TestsEliminated
		c.reduceShares += e.Reduce.Shares
		c.reduceAssigns += e.Reduce.AssignsDropped
		c.reduceRedirect += e.Reduce.EdgesRedirected
	case EvSpecialize:
		c.specModules++
		c.specSamples += e.Specialize.Samples
		c.specTests += e.Specialize.Tests
		c.specReordered += e.Specialize.Reordered
	case EvCacheHit:
		c.hits++
		if e.FromDisk {
			c.diskHits++
		}
	case EvCacheMiss:
		c.misses++
	case EvDedup:
		c.dedups++
	case EvModuleError:
		c.errs = append(c.errs, fmt.Sprintf("%s: %v", e.Module, e.Err))
	}
}

// Merge folds other's aggregates into c: additive counters are
// summed, worst-case fields (stage maxima, BDD peaks) take the max,
// errors are appended, and the newer cache snapshot wins. The shard
// driver uses it to reduce per-shard Collectors into the single
// report a one-collector run would have produced. other must be
// quiescent (no concurrent Event calls) for the duration.
func (c *Collector) Merge(other *Collector) {
	if other == nil || other == c {
		return
	}
	// Lock order is caller-then-other; the quiescence contract rules
	// out a concurrent Merge in the opposite direction.
	c.mu.Lock()
	defer c.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
	o := other
	c.modules += o.modules
	if o.workers > c.workers {
		c.workers = o.workers
	}
	c.runs += o.runs
	c.wall += o.wall
	for s := Stage(0); s < numStages; s++ {
		c.stageTotal[s] += o.stageTotal[s]
		c.stageCount[s] += o.stageCount[s]
		if o.stageMax[s] > c.stageMax[s] {
			c.stageMax[s] = o.stageMax[s]
		}
		if o.stageBDDLive[s] > c.stageBDDLive[s] {
			c.stageBDDLive[s] = o.stageBDDLive[s]
		}
		if o.stageBDDPeak[s] > c.stageBDDPeak[s] {
			c.stageBDDPeak[s] = o.stageBDDPeak[s]
		}
		c.stageBDDHits[s] += o.stageBDDHits[s]
		c.stageBDDMisses[s] += o.stageBDDMisses[s]
	}
	if o.peakNodes > c.peakNodes {
		c.peakNodes = o.peakNodes
		c.peakModule = o.peakModule
	}
	c.siftSwaps += o.siftSwaps
	c.siftSkipped += o.siftSkipped
	c.siftLBPrunes += o.siftLBPrunes
	c.siftPasses += o.siftPasses
	c.bddHits += o.bddHits
	c.bddMisses += o.bddMisses
	c.bddResets += o.bddResets
	c.bddEvicts += o.bddEvicts
	c.reduceModules += o.reduceModules
	c.reduceBefore += o.reduceBefore
	c.reduceAfter += o.reduceAfter
	c.reduceTests += o.reduceTests
	c.reduceShares += o.reduceShares
	c.reduceAssigns += o.reduceAssigns
	c.reduceRedirect += o.reduceRedirect
	c.specModules += o.specModules
	c.specSamples += o.specSamples
	c.specTests += o.specTests
	c.specReordered += o.specReordered
	c.hits += o.hits
	c.diskHits += o.diskHits
	c.misses += o.misses
	c.dedups += o.dedups
	if o.cacheStats != nil {
		c.cacheStats = o.cacheStats
	}
	c.lockWaitNs += o.lockWaitNs
	c.errs = append(c.errs, o.errs...)
}

// CacheCounters returns the numbers of cache hits (total and from the
// on-disk layer) and misses observed so far.
func (c *Collector) CacheCounters() (hits, diskHits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.diskHits, c.misses
}

// Dedups returns the number of singleflight joins observed so far.
func (c *Collector) Dedups() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dedups
}

// Modules returns the total number of modules dispatched across runs.
func (c *Collector) Modules() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.modules
}

// StageTotal returns the accumulated wall time of one stage.
func (c *Collector) StageTotal(s Stage) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s < 0 || s >= numStages {
		return 0
	}
	return c.stageTotal[s]
}

// BDDStageStats summarises the BDD kernel's footprint in one pipeline
// stage, aggregated across every module the Collector observed: the
// worst per-module live and peak physical node counts at stage end,
// and the stage's aggregate operation-cache traffic and hit rate.
type BDDStageStats struct {
	Stage        string  `json:"stage"`
	MaxLiveNodes int     `json:"max_live_nodes"`
	MaxPeakNodes int     `json:"max_peak_nodes"`
	CacheHits    int     `json:"cache_hits"`
	CacheMisses  int     `json:"cache_misses"`
	CacheHitPct  float64 `json:"cache_hit_pct"`
}

// BDDStages returns the per-stage BDD statistics for the stages that
// touched a BDD manager, in execution order. polisd serves this on
// /stats.
func (c *Collector) BDDStages() []BDDStageStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bddStagesLocked()
}

func (c *Collector) bddStagesLocked() []BDDStageStats {
	var out []BDDStageStats
	for s := Stage(0); s < numStages; s++ {
		if c.stageBDDLive[s] == 0 && c.stageBDDHits[s]+c.stageBDDMisses[s] == 0 {
			continue
		}
		st := BDDStageStats{
			Stage:        s.String(),
			MaxLiveNodes: c.stageBDDLive[s],
			MaxPeakNodes: c.stageBDDPeak[s],
			CacheHits:    c.stageBDDHits[s],
			CacheMisses:  c.stageBDDMisses[s],
		}
		if tot := st.CacheHits + st.CacheMisses; tot > 0 {
			st.CacheHitPct = 100 * float64(st.CacheHits) / float64(tot)
		}
		out = append(out, st)
	}
	return out
}

// Report renders the one-screen statistics summary.
func (c *Collector) Report() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	var serial time.Duration
	for s := Stage(0); s < numStages; s++ {
		serial += c.stageTotal[s]
	}
	fmt.Fprintf(&b, "pipeline: %d module(s), %d worker(s), wall %s",
		c.modules, c.workers, round(c.wall))
	if c.wall > 0 && serial > 0 {
		fmt.Fprintf(&b, ", stage-sum %s (%.1fx)", round(serial),
			float64(serial)/float64(c.wall))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  %-9s %10s %10s %10s %6s\n", "stage", "total", "max", "mean", "runs")
	for s := Stage(0); s < numStages; s++ {
		mean := time.Duration(0)
		if c.stageCount[s] > 0 {
			mean = c.stageTotal[s] / time.Duration(c.stageCount[s])
		}
		fmt.Fprintf(&b, "  %-9s %10s %10s %10s %6d\n",
			s, round(c.stageTotal[s]), round(c.stageMax[s]), round(mean), c.stageCount[s])
	}
	if c.peakNodes > 0 {
		fmt.Fprintf(&b, "  bdd: peak %d live nodes (%s), %d sift swaps (%d skipped), %d passes, %d lb-prunes\n",
			c.peakNodes, c.peakModule, c.siftSwaps, c.siftSkipped, c.siftPasses, c.siftLBPrunes)
	}
	if tot := c.bddHits + c.bddMisses; tot > 0 {
		fmt.Fprintf(&b, "  bdd op-cache: %d hit(s), %d miss(es) (%.1f%% hit rate), %d reset(s), %d eviction(s)\n",
			c.bddHits, c.bddMisses, 100*float64(c.bddHits)/float64(tot), c.bddResets, c.bddEvicts)
	}
	if stages := c.bddStagesLocked(); len(stages) > 0 {
		b.WriteString("  bdd stages:")
		for i, st := range stages {
			if i > 0 {
				b.WriteString(" |")
			}
			fmt.Fprintf(&b, " %s live %d peak %d cache %.1f%%",
				st.Stage, st.MaxLiveNodes, st.MaxPeakNodes, st.CacheHitPct)
		}
		b.WriteString("\n")
	}
	if c.reduceModules > 0 {
		fmt.Fprintf(&b, "  reduce: %d module(s), vertices %d -> %d, %d test(s) eliminated, %d share(s), %d assign(s) dropped, %d edge(s) redirected\n",
			c.reduceModules, c.reduceBefore, c.reduceAfter,
			c.reduceTests, c.reduceShares, c.reduceAssigns, c.reduceRedirect)
	}
	if c.specModules > 0 {
		fmt.Fprintf(&b, "  specialize: %d module(s), %d reaction sample(s), %d/%d weighted TEST vertice(s) reordered\n",
			c.specModules, c.specSamples, c.specReordered, c.specTests)
	}
	fmt.Fprintf(&b, "  cache: %d hit(s) (%d from disk), %d miss(es), %d dedup join(s)\n",
		c.hits, c.diskHits, c.misses, c.dedups)
	if cs := c.cacheStats; cs != nil {
		fmt.Fprintf(&b, "  contention: cache get-wait %s, put-wait %s, trace lock-wait %s; %d corrupt disk entr%s\n",
			round(cs.GetWait), round(cs.PutWait), round(time.Duration(c.lockWaitNs)),
			cs.CorruptMisses, plural(cs.CorruptMisses, "y", "ies"))
	}
	if len(c.errs) == 0 {
		b.WriteString("  errors: none\n")
	} else {
		sorted := append([]string(nil), c.errs...)
		sort.Strings(sorted)
		fmt.Fprintf(&b, "  errors: %d\n", len(sorted))
		for _, e := range sorted {
			fmt.Fprintf(&b, "    %s\n", e)
		}
	}
	return b.String()
}

// plural picks the singular or plural suffix for n.
func plural(n int64, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// round trims durations to a readable precision.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}
