package pipeline

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"polis/internal/cfsm"
	"polis/internal/randcfsm"
)

// testNetwork generates a deterministic random network of n machines.
func testNetwork(t testing.TB, seed int64, n int) *cfsm.Network {
	t.Helper()
	net, _, err := randcfsm.NewNetwork(rand.New(rand.NewSource(seed)), n, randcfsm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestRunDeterministic requires byte-identical artifacts in identical
// order for any worker count.
func TestRunDeterministic(t *testing.T) {
	net := testNetwork(t, 7, 9)
	serial, err := Run(net, Options{}, Config{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 8} {
		parallel, err := Run(net, Options{}, Config{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if len(parallel) != len(serial) {
			t.Fatalf("j=%d: %d artifacts, want %d", jobs, len(parallel), len(serial))
		}
		for i := range serial {
			if parallel[i].Module != serial[i].Module {
				t.Errorf("j=%d: artifact %d is %s, want %s", jobs, i, parallel[i].Module, serial[i].Module)
			}
			if parallel[i].C != serial[i].C {
				t.Errorf("j=%d: module %s: C differs from serial run", jobs, serial[i].Module)
			}
			if parallel[i].Listing != serial[i].Listing {
				t.Errorf("j=%d: module %s: listing differs from serial run", jobs, serial[i].Module)
			}
			if parallel[i].CodeSize != serial[i].CodeSize {
				t.Errorf("j=%d: module %s: code size %d, want %d", jobs, serial[i].Module,
					parallel[i].CodeSize, serial[i].CodeSize)
			}
		}
	}
}

// TestRunMatchesSingleModule checks the pipeline produces exactly what
// the staged single-module entry point produces.
func TestRunMatchesSingleModule(t *testing.T) {
	net := testNetwork(t, 11, 4)
	arts, err := Run(net, Options{}, Config{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range net.Machines {
		one, err := SynthesizeModule(m, Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if arts[i].C != one.C || arts[i].CodeSize != one.CodeSize {
			t.Errorf("module %s: pipeline artifact differs from SynthesizeModule", m.Name)
		}
	}
}

// badMachine builds a CFSM that fails validation (its transition
// guards a test interned in a different machine).
func badMachine(name string) *cfsm.CFSM {
	other := cfsm.New("donor")
	sig := other.AddInput("x", true)
	foreign := other.Present(sig)
	bad := cfsm.New(name)
	in := bad.AddInput("y", true)
	out := bad.AddOutput("z", true)
	bad.AddTransition([]cfsm.Cond{cfsm.On(foreign, 1)}, bad.Emit(out))
	_ = in
	return bad
}

// goodMachine builds a minimal valid CFSM.
func goodMachine(name string) *cfsm.CFSM {
	c := cfsm.New(name)
	in := c.AddInput("a", true)
	out := c.AddOutput("b", true)
	c.AddTransition([]cfsm.Cond{cfsm.On(c.Present(in), 1)}, c.Emit(out))
	return c
}

// TestErrorAttribution checks that a failing module is reported by
// name and fails the whole run.
func TestErrorAttribution(t *testing.T) {
	machines := []*cfsm.CFSM{goodMachine("ok1"), badMachine("broken"), goodMachine("ok2")}
	col := NewCollector()
	arts, err := RunModules(machines, Options{}, Config{Jobs: 2, Trace: col})
	if err == nil {
		t.Fatal("expected error from broken module")
	}
	if arts != nil {
		t.Errorf("artifacts should be nil on failure, got %d", len(arts))
	}
	if !strings.Contains(err.Error(), "module broken:") {
		t.Errorf("error lacks module attribution: %v", err)
	}
	if !strings.Contains(col.Report(), "broken:") {
		t.Errorf("collector report lacks the failed module:\n%s", col.Report())
	}
}

// TestFailFast checks that once a failure is observed no further
// modules start: with 1 worker and the failing module first, the
// remaining modules must not be synthesized.
func TestFailFast(t *testing.T) {
	machines := []*cfsm.CFSM{badMachine("broken")}
	for i := 0; i < 10; i++ {
		machines = append(machines, goodMachine("ok"+string(rune('a'+i))))
	}
	col := NewCollector()
	_, err := RunModules(machines, Options{}, Config{Jobs: 1, Trace: col})
	if err == nil {
		t.Fatal("expected error")
	}
	// Only the broken module ran its reactive stage (and failed there);
	// the trailing ten modules were skipped by fail-fast.
	if got := col.StageTotal(StageCodegen); got != 0 {
		t.Errorf("codegen stage ran for %v despite fail-fast", got)
	}
}

// TestCollectorReport sanity-checks the one-screen report contents.
func TestCollectorReport(t *testing.T) {
	net := testNetwork(t, 3, 5)
	col := NewCollector()
	if _, err := Run(net, Options{Reduce: true}, Config{Jobs: 2, Trace: col}); err != nil {
		t.Fatal(err)
	}
	rep := col.Report()
	for _, want := range []string{
		"pipeline: 5 module(s), 2 worker(s)",
		"reactive", "sift", "s-graph", "reduce", "codegen", "estimate",
		"reduce: 5 module(s)",
		"bdd: peak", "sift swaps",
		"bdd stages:", "reactive live ",
		"cache: 0 hit(s) (0 from disk), 0 miss(es)",
		"errors: none",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	for s := StageReactive; s <= StageEstimate; s++ {
		if s == StageSpecialize {
			continue // profile-gated; no profile in this run
		}
		if col.StageTotal(s) <= 0 {
			t.Errorf("stage %s recorded no time", s)
		}
	}
}

// TestContextCancelledBeforeRun: an already-dead context schedules no
// module at all and reports the context's error.
func TestContextCancelledBeforeRun(t *testing.T) {
	net := testNetwork(t, 17, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	col := NewCollector()
	arts, err := RunContext(ctx, net, Options{}, Config{Jobs: 2, Trace: col})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if arts != nil {
		t.Errorf("cancelled run returned %d artifacts", len(arts))
	}
	if got := col.StageTotal(StageReactive); got != 0 {
		t.Errorf("reactive stage ran for %v despite pre-cancelled context", got)
	}
}

// cancelAfterTrace cancels a context once the first module finishes
// its reactive stage, so the run dies while modules remain unscheduled.
type cancelAfterTrace struct {
	cancel context.CancelFunc
	inner  Trace
	once   sync.Once
}

func (c *cancelAfterTrace) Event(e Event) {
	c.inner.Event(e)
	if e.Kind == EvStage && e.Stage == StageReactive {
		c.once.Do(c.cancel)
	}
}

// TestContextCancelMidRun: cancelling during the run stops scheduling
// the remaining modules (the fail-fast drain path) and surfaces
// context.Canceled.
func TestContextCancelMidRun(t *testing.T) {
	net := testNetwork(t, 19, 12)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	col := NewCollector()
	tr := &cancelAfterTrace{cancel: cancel, inner: col}
	_, err := RunContext(ctx, net, Options{}, Config{Jobs: 1, Trace: tr})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// With one worker and cancellation at the first reactive event, the
	// trailing modules must have been drained, not synthesized.
	if n := col.Modules(); n != 12 {
		t.Fatalf("run dispatched %d modules, want 12", n)
	}
	// Cancellation lands right after the first module's reactive stage,
	// so no module ever reaches codegen.
	if got := col.StageTotal(StageCodegen); got != 0 {
		t.Errorf("codegen ran for %v despite mid-run cancellation", got)
	}
}

// TestSingleflightFollowersShareOneRun pins the dedup path: while a
// leader holds the in-flight slot for a fingerprint, concurrent
// missers join the flight and receive the leader's artifact — the
// pipeline runs exactly once.
func TestSingleflightFollowersShareOneRun(t *testing.T) {
	m := goodMachine("sf")
	cache, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	key := Fingerprint(m, Options{})

	// Occupy the flight slot as the leader.
	f, leader := cache.startFlight(key)
	if !leader {
		t.Fatal("first startFlight must lead")
	}

	const followers = 8
	var wg sync.WaitGroup
	arts := make([]*Artifact, followers)
	errs := make([]error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arts[i], errs[i] = synthesizeCached(context.Background(), m, Options{}, cache, col)
		}(i)
	}
	// Wait until every follower has joined the flight.
	deadline := time.Now().Add(10 * time.Second)
	for cache.Stats().DedupJoins < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers joined", cache.Stats().DedupJoins, followers)
		}
		time.Sleep(time.Millisecond)
	}

	// Leader synthesizes once and publishes.
	art, err := SynthesizeModule(m, Options{}, col)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(key, art)
	cache.endFlight(key, f, art, nil)
	wg.Wait()

	for i := 0; i < followers; i++ {
		if errs[i] != nil {
			t.Fatalf("follower %d: %v", i, errs[i])
		}
		if arts[i] != art {
			t.Errorf("follower %d received a different artifact", i)
		}
	}
	if _, _, misses := col.CacheCounters(); misses != 0 {
		t.Errorf("followers recorded %d misses; the leader's run is the only synthesis", misses)
	}
	if col.Dedups() != followers {
		t.Errorf("collector saw %d dedups, want %d", col.Dedups(), followers)
	}
}

// TestSingleflightLeaderCancelledRetries: a leader that dies of its own
// cancellation must not poison followers whose requests are alive —
// they retry and one becomes the new leader.
func TestSingleflightLeaderCancelledRetries(t *testing.T) {
	m := goodMachine("sfretry")
	cache, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	key := Fingerprint(m, Options{})

	f, leader := cache.startFlight(key)
	if !leader {
		t.Fatal("first startFlight must lead")
	}
	done := make(chan struct{})
	var art *Artifact
	var ferr error
	go func() {
		defer close(done)
		art, ferr = synthesizeCached(context.Background(), m, Options{}, cache, col)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for cache.Stats().DedupJoins < 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never joined")
		}
		time.Sleep(time.Millisecond)
	}
	// The leader's request dies; the follower must take over.
	cache.endFlight(key, f, nil, context.Canceled)
	<-done
	if ferr != nil {
		t.Fatalf("follower inherited the dead leader's cancellation: %v", ferr)
	}
	if art == nil {
		t.Fatal("follower returned no artifact")
	}
	if _, _, misses := col.CacheCounters(); misses != 1 {
		t.Errorf("retrying follower should synthesize exactly once, saw %d misses", misses)
	}
}

// TestConcurrentRunsSynthesizeOnce: N concurrent whole-network runs
// sharing one cache perform each module's synthesis exactly once in
// total — every other lookup is a hit or a dedup join.
func TestConcurrentRunsSynthesizeOnce(t *testing.T) {
	net := testNetwork(t, 29, 6)
	cache, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	const runs = 8
	var wg sync.WaitGroup
	errs := make([]error, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Run(net, Options{}, Config{Jobs: 2, Cache: cache, Trace: col})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	hits, _, misses := col.CacheCounters()
	if misses != 6 {
		t.Errorf("%d misses across %d concurrent runs, want exactly 6 (one per module)", misses, runs)
	}
	if total := hits + col.Dedups() + misses; total != runs*6 {
		t.Errorf("hits %d + dedups %d + misses %d = %d, want %d lookups",
			hits, col.Dedups(), misses, total, runs*6)
	}
}

// TestArtifactReportZeroCodeSize guards the division in Report.
func TestArtifactReportZeroCodeSize(t *testing.T) {
	a, err := SynthesizeModule(goodMachine("tiny"), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.CodeSize = 0
	rep := a.Report(nil)
	if !strings.Contains(rep, "n/a error") {
		t.Errorf("zero code size should report n/a, got:\n%s", rep)
	}
	if strings.Contains(rep, "Inf") || strings.Contains(rep, "NaN") {
		t.Errorf("report leaks a division by zero:\n%s", rep)
	}
}
