package pipeline

import (
	"math/rand"
	"strings"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/randcfsm"
)

// testNetwork generates a deterministic random network of n machines.
func testNetwork(t testing.TB, seed int64, n int) *cfsm.Network {
	t.Helper()
	net, _, err := randcfsm.NewNetwork(rand.New(rand.NewSource(seed)), n, randcfsm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestRunDeterministic requires byte-identical artifacts in identical
// order for any worker count.
func TestRunDeterministic(t *testing.T) {
	net := testNetwork(t, 7, 9)
	serial, err := Run(net, Options{}, Config{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 8} {
		parallel, err := Run(net, Options{}, Config{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if len(parallel) != len(serial) {
			t.Fatalf("j=%d: %d artifacts, want %d", jobs, len(parallel), len(serial))
		}
		for i := range serial {
			if parallel[i].Module != serial[i].Module {
				t.Errorf("j=%d: artifact %d is %s, want %s", jobs, i, parallel[i].Module, serial[i].Module)
			}
			if parallel[i].C != serial[i].C {
				t.Errorf("j=%d: module %s: C differs from serial run", jobs, serial[i].Module)
			}
			if parallel[i].Listing != serial[i].Listing {
				t.Errorf("j=%d: module %s: listing differs from serial run", jobs, serial[i].Module)
			}
			if parallel[i].CodeSize != serial[i].CodeSize {
				t.Errorf("j=%d: module %s: code size %d, want %d", jobs, serial[i].Module,
					parallel[i].CodeSize, serial[i].CodeSize)
			}
		}
	}
}

// TestRunMatchesSingleModule checks the pipeline produces exactly what
// the staged single-module entry point produces.
func TestRunMatchesSingleModule(t *testing.T) {
	net := testNetwork(t, 11, 4)
	arts, err := Run(net, Options{}, Config{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range net.Machines {
		one, err := SynthesizeModule(m, Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if arts[i].C != one.C || arts[i].CodeSize != one.CodeSize {
			t.Errorf("module %s: pipeline artifact differs from SynthesizeModule", m.Name)
		}
	}
}

// badMachine builds a CFSM that fails validation (its transition
// guards a test interned in a different machine).
func badMachine(name string) *cfsm.CFSM {
	other := cfsm.New("donor")
	sig := other.AddInput("x", true)
	foreign := other.Present(sig)
	bad := cfsm.New(name)
	in := bad.AddInput("y", true)
	out := bad.AddOutput("z", true)
	bad.AddTransition([]cfsm.Cond{cfsm.On(foreign, 1)}, bad.Emit(out))
	_ = in
	return bad
}

// goodMachine builds a minimal valid CFSM.
func goodMachine(name string) *cfsm.CFSM {
	c := cfsm.New(name)
	in := c.AddInput("a", true)
	out := c.AddOutput("b", true)
	c.AddTransition([]cfsm.Cond{cfsm.On(c.Present(in), 1)}, c.Emit(out))
	return c
}

// TestErrorAttribution checks that a failing module is reported by
// name and fails the whole run.
func TestErrorAttribution(t *testing.T) {
	machines := []*cfsm.CFSM{goodMachine("ok1"), badMachine("broken"), goodMachine("ok2")}
	col := NewCollector()
	arts, err := RunModules(machines, Options{}, Config{Jobs: 2, Trace: col})
	if err == nil {
		t.Fatal("expected error from broken module")
	}
	if arts != nil {
		t.Errorf("artifacts should be nil on failure, got %d", len(arts))
	}
	if !strings.Contains(err.Error(), "module broken:") {
		t.Errorf("error lacks module attribution: %v", err)
	}
	if !strings.Contains(col.Report(), "broken:") {
		t.Errorf("collector report lacks the failed module:\n%s", col.Report())
	}
}

// TestFailFast checks that once a failure is observed no further
// modules start: with 1 worker and the failing module first, the
// remaining modules must not be synthesized.
func TestFailFast(t *testing.T) {
	machines := []*cfsm.CFSM{badMachine("broken")}
	for i := 0; i < 10; i++ {
		machines = append(machines, goodMachine("ok"+string(rune('a'+i))))
	}
	col := NewCollector()
	_, err := RunModules(machines, Options{}, Config{Jobs: 1, Trace: col})
	if err == nil {
		t.Fatal("expected error")
	}
	// Only the broken module ran its reactive stage (and failed there);
	// the trailing ten modules were skipped by fail-fast.
	if got := col.StageTotal(StageCodegen); got != 0 {
		t.Errorf("codegen stage ran for %v despite fail-fast", got)
	}
}

// TestCollectorReport sanity-checks the one-screen report contents.
func TestCollectorReport(t *testing.T) {
	net := testNetwork(t, 3, 5)
	col := NewCollector()
	if _, err := Run(net, Options{Reduce: true}, Config{Jobs: 2, Trace: col}); err != nil {
		t.Fatal(err)
	}
	rep := col.Report()
	for _, want := range []string{
		"pipeline: 5 module(s), 2 worker(s)",
		"reactive", "sift", "s-graph", "reduce", "codegen", "estimate",
		"reduce: 5 module(s)",
		"bdd: peak", "sift swaps",
		"cache: 0 hit(s) (0 from disk), 0 miss(es)",
		"errors: none",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	for s := StageReactive; s <= StageEstimate; s++ {
		if col.StageTotal(s) <= 0 {
			t.Errorf("stage %s recorded no time", s)
		}
	}
}

// TestArtifactReportZeroCodeSize guards the division in Report.
func TestArtifactReportZeroCodeSize(t *testing.T) {
	a, err := SynthesizeModule(goodMachine("tiny"), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.CodeSize = 0
	rep := a.Report(nil)
	if !strings.Contains(rep, "n/a error") {
		t.Errorf("zero code size should report n/a, got:\n%s", rep)
	}
	if strings.Contains(rep, "Inf") || strings.Contains(rep, "NaN") {
		t.Errorf("report leaks a division by zero:\n%s", rep)
	}
}
