// Package pipeline orchestrates whole-network software synthesis as a
// staged, concurrent pipeline. The paper compiles a network of CFSMs
// one machine at a time (Section III); the per-machine flows are
// independent, so this package runs them on a bounded worker pool,
// each worker owning its own single-goroutine BDD manager (see the
// internal/bdd package doc), with
//
//   - deterministic output ordering: results follow the network's
//     machine order regardless of completion order, so -j 1 and -j N
//     produce byte-identical artifacts;
//   - fail-fast error aggregation: the first failure stops dispatch of
//     further modules, in-flight modules finish, and every error is
//     reported with its module attribution;
//   - a content-addressed artifact cache (see Cache) keyed by the
//     module's reactive function and the synthesis options; and
//   - an observability sink (see Trace and Collector) recording
//     per-stage wall time, BDD peak node counts, sift passes, and
//     cache hit/miss counters.
//
// The root polis package exposes this as polis.SynthesizeNetwork.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/estimate"
	"polis/internal/profile"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

// Options mirrors the root package's synthesis options; the root
// package converts between the two (it cannot be imported from here
// without a cycle).
type Options struct {
	// Ordering is the s-graph variable-ordering strategy.
	Ordering sgraph.Ordering
	// Target selects the cost profile; nil means the HC11-class
	// micro-controller.
	Target *vm.Profile
	// Codegen tunes code generation.
	Codegen codegen.Options
	// UseFalsePaths tightens the worst-case estimate using declared
	// test exclusivities.
	UseFalsePaths bool
	// Reduce runs the fixed-point s-graph reduction engine (sharing,
	// don't-care TEST elimination, ASSIGN straightening) between
	// s-graph construction and code generation.
	Reduce bool
	// ReduceOpt tunes the reduction passes; the zero value runs all
	// passes with default limits.
	ReduceOpt sgraph.ReduceOptions
	// Profile, when non-nil, enables the profile-guided specialization
	// stage for every module the profile has evidence for: TEST
	// outcome edges are reordered hottest-first (equivalence-gated),
	// and the estimate stage reports the profile-weighted expected
	// cycles next to the worst-case bound.
	Profile *profile.Profile
}

func (o *Options) fill() {
	if o.Target == nil {
		o.Target = vm.HC11()
	}
}

// Config tunes one pipeline run.
type Config struct {
	// Jobs bounds the number of concurrently synthesized modules
	// (the -j N knob); <= 0 means GOMAXPROCS.
	Jobs int
	// Cache, if non-nil, is consulted before and updated after each
	// module's synthesis.
	Cache *Cache
	// Trace, if non-nil, receives pipeline events; use a Collector
	// for the default stats report.
	Trace Trace
}

// Artifact bundles everything synthesis produces for one CFSM, in a
// form the cache can round-trip. The live handles (CFSM, SGraph,
// Program) are nil when the artifact was restored from the on-disk
// cache; the serialisable payload is always present.
type Artifact struct {
	Module     string
	NumTests   int
	NumActions int
	NumTrans   int

	C        string // generated C routine
	Listing  string // assembly listing
	Estimate estimate.Result
	Measured vm.PathCycles // exact min/max cycles from the object code
	CodeSize int           // measured bytes
	Stats    sgraph.Stats  // s-graph structure statistics

	// Reduced records whether the reduction stage ran; Reduce holds
	// its statistics (zero value when the stage was off).
	Reduced bool
	Reduce  sgraph.ReduceStats

	// Specialized records whether the profile-guided specialization
	// stage ran; Specialize holds its statistics.
	Specialized bool
	Specialize  sgraph.SpecializeStats

	// Live handles; nil on a disk-cache hit.
	CFSM    *cfsm.CFSM
	SGraph  *sgraph.SGraph
	Program *vm.Program
}

// Report renders the one-screen per-module summary (the same layout
// as polis.Artifacts.Report) from the cached statistics, so it works
// for disk-restored artifacts too. A zero measured code size reports
// the estimation error as n/a rather than dividing by zero.
func (a *Artifact) Report(target *vm.Profile) string {
	errPct := "n/a"
	if a.CodeSize != 0 {
		errPct = fmt.Sprintf("%.1f%%",
			100*float64(a.Estimate.CodeBytes-int64(a.CodeSize))/float64(a.CodeSize))
	}
	s := fmt.Sprintf(
		`CFSM %s: %d tests, %d actions, %d transitions
s-graph: %d vertices (%d TEST, %d ASSIGN), depth %d, %d paths
code: %d bytes measured (%d estimated, %s error)
cycles per transition: measured [%d, %d], estimated [%d, %d]
`,
		a.Module, a.NumTests, a.NumActions, a.NumTrans,
		a.Stats.Vertices, a.Stats.Tests, a.Stats.Assigns, a.Stats.Depth, a.Stats.Paths,
		a.CodeSize, a.Estimate.CodeBytes, errPct,
		a.Measured.Min, a.Measured.Max, a.Estimate.MinCycles, a.Estimate.MaxCycles)
	if a.Reduced {
		s += fmt.Sprintf("reduce: %s\n", a.Reduce)
	}
	if a.Specialized {
		s += fmt.Sprintf("specialize: %s\n", a.Specialize)
		if a.Estimate.ExpectedCycles > 0 {
			s += fmt.Sprintf("expected cycles (profiled): %d\n", a.Estimate.ExpectedCycles)
		}
	}
	return s
}

// SynthesizeModule runs the complete per-CFSM flow of Section III —
// reactive-function extraction, BDD sifting, s-graph construction,
// C and object-code generation, and cost/performance estimation —
// emitting one EvStage event per stage and one EvBDD event with the
// module's BDD statistics. A nil Trace disables tracing. The BDD
// manager is created and used entirely within this call, so
// concurrent calls never share one.
func SynthesizeModule(m *cfsm.CFSM, opt Options, tr Trace) (*Artifact, error) {
	return SynthesizeModuleContext(context.Background(), m, opt, tr)
}

// SynthesizeModuleContext is SynthesizeModule under a context: the
// deadline or cancellation is checked between stages, so an abandoned
// request stops consuming its worker at the next stage boundary (the
// stages themselves are short; a module never runs more than one stage
// past its cancellation).
func SynthesizeModuleContext(ctx context.Context, m *cfsm.CFSM, opt Options, tr Trace) (*Artifact, error) {
	opt.fill()
	if tr == nil {
		tr = nopTrace{}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// bddStage emits an EvStage event carrying a snapshot of the
	// module's BDD manager: live/peak node counts at the stage
	// boundary plus the op-cache traffic the stage itself generated.
	var prevHits, prevMisses int
	bddStage := func(r *cfsm.Reactive, stage Stage, d time.Duration) {
		ev := Event{Kind: EvStage, Module: m.Name, Stage: stage, Duration: d}
		if r != nil {
			mgr := r.Space.M
			ev.BDDLive = mgr.NumNodes()
			ev.BDDPeakNodes = mgr.PeakNodes
			ev.BDDCacheHits = mgr.Hits - prevHits
			ev.BDDCacheMisses = mgr.Misses - prevMisses
			prevHits, prevMisses = mgr.Hits, mgr.Misses
		}
		tr.Event(ev)
	}

	t := time.Now()
	r, err := cfsm.BuildReactive(m)
	bddStage(r, StageReactive, time.Since(t))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	t = time.Now()
	err = sgraph.ApplyOrdering(r, opt.Ordering)
	bddStage(r, StageSift, time.Since(t))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	t = time.Now()
	g, err := sgraph.FromChi(r)
	bddStage(r, StageSGraph, time.Since(t))
	if err != nil {
		return nil, err
	}
	mgr := r.Space.M
	tr.Event(Event{Kind: EvBDD, Module: m.Name,
		PeakNodes: mgr.PeakNodes, SiftSwaps: mgr.Swaps, SiftPasses: mgr.SiftPasses,
		SiftSwapsSkipped: mgr.SwapsSkipped, SiftLBPrunes: mgr.LBPrunes,
		CacheHits: mgr.Hits, CacheMisses: mgr.Misses,
		CacheResets: mgr.CacheResets, CacheEvictions: mgr.Evictions})

	var reduceStats sgraph.ReduceStats
	if opt.Reduce {
		t = time.Now()
		reduceStats = g.Reduce(opt.ReduceOpt)
		tr.Event(Event{Kind: EvStage, Module: m.Name, Stage: StageReduce, Duration: time.Since(t)})
		tr.Event(Event{Kind: EvReduce, Module: m.Name, Reduce: reduceStats})
		if err := g.CheckWellFormed(); err != nil {
			return nil, fmt.Errorf("pipeline: reduced s-graph: %w", err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var specStats sgraph.SpecializeStats
	var specProf *sgraph.SpecializeProfile
	specialized := false
	if opt.Profile != nil {
		if sp := opt.Profile.Module(m.Name).Spec(); sp != nil {
			t = time.Now()
			specStats, err = g.SpecializeChecked(sp)
			tr.Event(Event{Kind: EvStage, Module: m.Name, Stage: StageSpecialize, Duration: time.Since(t)})
			if err != nil {
				return nil, fmt.Errorf("pipeline: specialize: %w", err)
			}
			tr.Event(Event{Kind: EvSpecialize, Module: m.Name, Specialize: specStats})
			specialized = true
			specProf = sp
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	t = time.Now()
	prog, err := codegen.Assemble(g, codegen.NewSignalMap(m), opt.Codegen)
	if err != nil {
		tr.Event(Event{Kind: EvStage, Module: m.Name, Stage: StageCodegen, Duration: time.Since(t)})
		return nil, err
	}
	cSrc := codegen.EmitC(g, opt.Codegen)
	meas, err := vm.AnalyzeCycles(opt.Target, prog, codegen.EntryLabel(m))
	tr.Event(Event{Kind: EvStage, Module: m.Name, Stage: StageCodegen, Duration: time.Since(t)})
	if err != nil {
		return nil, err
	}

	t = time.Now()
	params, err := estimate.CalibrateCached(opt.Target)
	if err != nil {
		return nil, err
	}
	est := estimate.EstimateSGraph(g, params, estimate.Options{
		Codegen:         opt.Codegen,
		UseFalsePaths:   opt.UseFalsePaths,
		ScenarioProfile: specProf,
	})
	tr.Event(Event{Kind: EvStage, Module: m.Name, Stage: StageEstimate, Duration: time.Since(t)})

	return &Artifact{
		Module:      m.Name,
		NumTests:    len(m.Tests),
		NumActions:  len(m.Actions),
		NumTrans:    len(m.Trans),
		C:           cSrc,
		Listing:     prog.Listing(),
		Estimate:    est,
		Measured:    meas,
		CodeSize:    opt.Target.CodeSize(prog),
		Stats:       g.ComputeStats(),
		Reduced:     opt.Reduce,
		Reduce:      reduceStats,
		Specialized: specialized,
		Specialize:  specStats,
		CFSM:        m,
		SGraph:      g,
		Program:     prog,
	}, nil
}

// Run synthesizes every machine of the network through the concurrent
// pipeline and returns the artifacts in the network's machine order.
func Run(n *cfsm.Network, opt Options, cfg Config) ([]*Artifact, error) {
	return RunContext(context.Background(), n, opt, cfg)
}

// RunContext is Run under a context; see RunModulesContext for the
// cancellation contract.
func RunContext(ctx context.Context, n *cfsm.Network, opt Options, cfg Config) ([]*Artifact, error) {
	return RunModulesContext(ctx, n.Machines, opt, cfg)
}

// RunModules is Run over an explicit machine list. Results are
// returned in input order regardless of completion order. On failure
// it returns an aggregate error naming every failed module; after the
// first failure no new modules are started (fail-fast), but modules
// already in flight run to completion so their errors are attributed
// too.
func RunModules(machines []*cfsm.CFSM, opt Options, cfg Config) ([]*Artifact, error) {
	return RunModulesContext(context.Background(), machines, opt, cfg)
}

// RunModulesContext is RunModules under a context: when the context is
// cancelled or its deadline expires, no further modules are scheduled
// (the same drain path fail-fast uses), in-flight modules stop at
// their next stage boundary, and the context's error is returned. A
// dead client therefore costs at most the work already dispatched.
func RunModulesContext(ctx context.Context, machines []*cfsm.CFSM, opt Options, cfg Config) ([]*Artifact, error) {
	opt.fill()
	tr := cfg.Trace
	if tr == nil {
		tr = nopTrace{}
	}
	workers := cfg.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(machines) {
		workers = len(machines)
	}
	if workers < 1 {
		workers = 1
	}
	tr.Event(Event{Kind: EvRunStart, Modules: len(machines), Workers: workers})
	start := time.Now()

	results := make([]*Artifact, len(machines))
	moduleErrs := make([]error, len(machines))
	var failed atomic.Bool
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() || ctx.Err() != nil {
					continue // fail-fast/cancelled: drain without synthesizing
				}
				a, err := synthesizeCached(ctx, machines[i], opt, cfg.Cache, tr)
				if err != nil {
					if ctx.Err() == nil {
						moduleErrs[i] = fmt.Errorf("module %s: %w", machines[i].Name, err)
						tr.Event(Event{Kind: EvModuleError, Module: machines[i].Name, Err: err})
					}
					failed.Store(true)
					continue
				}
				results[i] = a
			}
		}()
	}
dispatch:
	for i := range machines {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	ev := Event{Kind: EvRunEnd, Duration: time.Since(start)}
	if cfg.Cache != nil {
		st := cfg.Cache.Stats()
		ev.Cache = &st
	}
	tr.Event(ev)

	if err := ctx.Err(); err != nil {
		done := 0
		for _, a := range results {
			if a != nil {
				done++
			}
		}
		return nil, fmt.Errorf("pipeline: run cancelled after %d of %d module(s): %w",
			done, len(machines), err)
	}
	if failed.Load() {
		var agg []error
		for _, e := range moduleErrs {
			if e != nil {
				agg = append(agg, e)
			}
		}
		return nil, fmt.Errorf("pipeline: %d of %d module(s) failed: %w",
			len(agg), len(machines), errors.Join(agg...))
	}
	return results, nil
}

// synthesizeCached wraps SynthesizeModuleContext with the cache lookup
// and the cache's singleflight layer.
func synthesizeCached(ctx context.Context, m *cfsm.CFSM, opt Options, cache *Cache, tr Trace) (*Artifact, error) {
	if cache == nil {
		return SynthesizeModuleContext(ctx, m, opt, tr)
	}
	a, _, err := cache.SynthesizeCached(ctx, m, opt, tr)
	return a, err
}

// Outcome classifies how a cached synthesis was served.
type Outcome int

// Outcomes, from coldest to warmest.
const (
	// OutcomeMiss: this call ran the synthesis pipeline.
	OutcomeMiss Outcome = iota
	// OutcomeDedup: an identical synthesis was already in flight; this
	// call waited for its artifact (singleflight join).
	OutcomeDedup
	// OutcomeDiskHit: restored from the on-disk cache layer.
	OutcomeDiskHit
	// OutcomeMemHit: served from the in-memory cache layer.
	OutcomeMemHit
)

func (o Outcome) String() string {
	switch o {
	case OutcomeMiss:
		return "miss"
	case OutcomeDedup:
		return "dedup"
	case OutcomeDiskHit:
		return "disk"
	case OutcomeMemHit:
		return "mem"
	default:
		return fmt.Sprintf("outcome%d", int(o))
	}
}

// SynthesizeCached synthesizes one module through the cache with
// singleflight dedup: concurrent callers (workers of one run, or of
// different runs and service requests sharing this Cache) that miss
// on the same fingerprint elect one leader to synthesize while the
// rest wait for its artifact instead of duplicating the work. The
// returned Outcome reports which layer served the call. A nil tr
// disables tracing.
func (c *Cache) SynthesizeCached(ctx context.Context, m *cfsm.CFSM, opt Options, tr Trace) (*Artifact, Outcome, error) {
	if tr == nil {
		tr = nopTrace{}
	}
	opt.fill()
	key := Fingerprint(m, opt)
	for {
		if a, fromDisk, ok := c.Get(key); ok {
			tr.Event(Event{Kind: EvCacheHit, Module: m.Name, FromDisk: fromDisk})
			if fromDisk {
				return a, OutcomeDiskHit, nil
			}
			return a, OutcomeMemHit, nil
		}
		f, leader := c.startFlight(key)
		if leader {
			tr.Event(Event{Kind: EvCacheMiss, Module: m.Name})
			a, err := SynthesizeModuleContext(ctx, m, opt, tr)
			if err == nil {
				c.Put(key, a)
			}
			c.endFlight(key, f, a, err)
			return a, OutcomeMiss, err
		}
		tr.Event(Event{Kind: EvDedup, Module: m.Name})
		select {
		case <-f.done:
			if f.err != nil {
				// A leader that died of its own cancellation says nothing
				// about this caller's request: retry (possibly becoming
				// the new leader).
				if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
					continue
				}
				return nil, OutcomeDedup, f.err
			}
			return f.a, OutcomeDedup, nil
		case <-ctx.Done():
			return nil, OutcomeDedup, ctx.Err()
		}
	}
}
