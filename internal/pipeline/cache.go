package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"polis/internal/cfsm"
	"polis/internal/estimate"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

// Fingerprint returns the content-addressed cache key of one module
// under the given options: a stable hash over the CFSM's reactive
// function (signals, state variables, tests, actions, transition
// relation, exclusivity groups) and every option that influences the
// generated artifacts. Two modules with the same fingerprint produce
// byte-identical artifacts, so a fingerprint match is a cache hit.
//
// The target profile is identified by its Name; callers that mutate a
// built-in profile must rename it or bypass the cache.
func Fingerprint(m *cfsm.CFSM, opt Options) string {
	opt.fill()
	h := sha256.New()
	fmt.Fprintf(h, "v1\nmodule %s\n", m.Name)
	for _, s := range m.Inputs {
		fmt.Fprintf(h, "in %s pure=%v\n", s.Name, s.Pure)
	}
	for _, s := range m.Outputs {
		fmt.Fprintf(h, "out %s pure=%v\n", s.Name, s.Pure)
	}
	for _, sv := range m.States {
		fmt.Fprintf(h, "state %s dom=%d init=%d\n", sv.Name, sv.Domain, sv.Init)
	}
	for _, t := range m.Tests {
		fmt.Fprintf(h, "test %s arity=%d\n", t.Name(), t.Arity())
	}
	for _, a := range m.Actions {
		fmt.Fprintf(h, "action %s\n", a.Name())
	}
	for _, tr := range m.Trans {
		fmt.Fprintf(h, "trans")
		for _, c := range tr.Guard {
			fmt.Fprintf(h, " t%d=%d", m.TestID(c.Test), c.Val)
		}
		fmt.Fprintf(h, " ->")
		for _, a := range tr.Actions {
			fmt.Fprintf(h, " a%d", m.ActionID(a))
		}
		fmt.Fprintf(h, "\n")
	}
	for _, grp := range m.Exclusive {
		fmt.Fprintf(h, "excl")
		for _, t := range grp {
			fmt.Fprintf(h, " t%d", m.TestID(t))
		}
		fmt.Fprintf(h, "\n")
	}
	fmt.Fprintf(h, "opt ord=%s target=%s copies=%v ifthr=%d falsepaths=%v\n",
		opt.Ordering, opt.Target.Name,
		opt.Codegen.OptimizeCopies, opt.Codegen.IfThreshold,
		opt.UseFalsePaths)
	if opt.Reduce {
		fmt.Fprintf(h, "reduce iter=%d noshare=%v nodc=%v nostraighten=%v maxctx=%d\n",
			opt.ReduceOpt.MaxIter, opt.ReduceOpt.NoShare, opt.ReduceOpt.NoDontCare,
			opt.ReduceOpt.NoStraighten, opt.ReduceOpt.MaxContextNodes)
	}
	if opt.Profile != nil {
		// Specialization reshapes the generated code, so the profile
		// evidence for this module is part of the cache key. Modules
		// the profile has nothing on stay on their unspecialized key.
		if mp := opt.Profile.Module(m.Name); mp != nil && len(mp.Outcomes) > 0 {
			fmt.Fprintf(h, "specialize %s\n", mp.Fingerprint())
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cache is the content-addressed artifact cache: an always-on
// in-memory map, optionally backed by an on-disk directory so hits
// survive across processes. It is safe for concurrent use; lookups
// take a read lock so concurrent hits never serialize each other.
//
// Artifacts served from memory carry their live SGraph/Program/CFSM
// handles; artifacts restored from disk carry only the serialisable
// payload (C, listing, estimates, measurements, s-graph statistics)
// and have nil live handles. A truncated, corrupted or unreadable
// disk entry is treated as a miss — the module is recompiled and the
// bad entry overwritten by the following Put — and counted in
// Stats().CorruptMisses.
//
// The cache also carries the singleflight registry used by the
// pipeline (and by polisd across requests): at most one synthesis per
// fingerprint is in flight at a time, concurrent missers wait for the
// leader's artifact.
type Cache struct {
	mu  sync.RWMutex
	mem map[string]*Artifact
	dir string

	flightMu sync.Mutex
	flights  map[string]*flight

	// Counters are atomics so the hot read path never takes a write
	// lock; lock-wait times expose contention on mu itself.
	memHits, diskHits, misses, corrupt atomic.Int64
	dedupJoins                         atomic.Int64
	getWaitNs, putWaitNs               atomic.Int64
}

// flight is one in-progress synthesis; followers block on done, then
// read a/err (the close happens-after both writes).
type flight struct {
	done chan struct{}
	a    *Artifact
	err  error
}

// NewCache creates a cache. With dir == "" the cache is in-memory
// only; otherwise dir is created (if needed) and used as the on-disk
// layer, one JSON file per fingerprint.
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("pipeline: cache dir: %w", err)
		}
	}
	return &Cache{
		mem:     make(map[string]*Artifact),
		flights: make(map[string]*flight),
		dir:     dir,
	}, nil
}

// startFlight registers interest in synthesizing key. The first caller
// becomes the leader (leader == true) and must call endFlight exactly
// once; later callers receive the existing flight to wait on.
func (c *Cache) startFlight(key string) (f *flight, leader bool) {
	c.flightMu.Lock()
	defer c.flightMu.Unlock()
	if f, ok := c.flights[key]; ok {
		c.dedupJoins.Add(1)
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	c.flights[key] = f
	return f, true
}

// endFlight publishes the leader's result and wakes the followers.
func (c *Cache) endFlight(key string, f *flight, a *Artifact, err error) {
	c.flightMu.Lock()
	delete(c.flights, key)
	c.flightMu.Unlock()
	f.a, f.err = a, err
	close(f.done)
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries       int           // in-memory artifacts
	MemHits       int64         // hits served from memory
	DiskHits      int64         // hits restored from the on-disk layer
	Misses        int64         // lookups that found nothing usable
	CorruptMisses int64         // subset of Misses: unreadable/truncated disk entries
	DedupJoins    int64         // singleflight followers that joined an in-flight synthesis
	GetWait       time.Duration // cumulative time spent waiting for the read lock
	PutWait       time.Duration // cumulative time spent waiting for the write lock
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	entries := len(c.mem)
	c.mu.RUnlock()
	return CacheStats{
		Entries:       entries,
		MemHits:       c.memHits.Load(),
		DiskHits:      c.diskHits.Load(),
		Misses:        c.misses.Load(),
		CorruptMisses: c.corrupt.Load(),
		DedupJoins:    c.dedupJoins.Load(),
		GetWait:       time.Duration(c.getWaitNs.Load()),
		PutWait:       time.Duration(c.putWaitNs.Load()),
	}
}

// diskEntry is the serialised form of an Artifact. Live handles
// (SGraph, Program, CFSM) are intentionally absent: they are cheap to
// rebuild when needed and expensive to serialise faithfully.
type diskEntry struct {
	Schema      int
	Module      string
	NumTests    int
	NumActions  int
	NumTrans    int
	C           string
	Listing     string
	Estimate    estimate.Result
	Measured    vm.PathCycles
	CodeSize    int
	Stats       sgraph.Stats
	Reduced     bool
	Reduce      sgraph.ReduceStats
	Specialized bool
	Specialize  sgraph.SpecializeStats
}

const diskSchema = 3

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get looks the key up, memory first, then disk. fromDisk reports
// which layer served the hit.
func (c *Cache) Get(key string) (a *Artifact, fromDisk, ok bool) {
	t := time.Now()
	c.mu.RLock()
	c.getWaitNs.Add(time.Since(t).Nanoseconds())
	a, ok = c.mem[key]
	c.mu.RUnlock()
	if ok {
		c.memHits.Add(1)
		return a, false, true
	}
	if c.dir == "" {
		c.misses.Add(1)
		return nil, false, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false, false
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Schema != diskSchema || e.Module == "" {
		// Truncated, corrupted or stale entry: a miss, never an error.
		// The recompile's Put overwrites the bad file.
		c.corrupt.Add(1)
		c.misses.Add(1)
		return nil, false, false
	}
	a = &Artifact{
		Module:      e.Module,
		NumTests:    e.NumTests,
		NumActions:  e.NumActions,
		NumTrans:    e.NumTrans,
		C:           e.C,
		Listing:     e.Listing,
		Estimate:    e.Estimate,
		Measured:    e.Measured,
		CodeSize:    e.CodeSize,
		Stats:       e.Stats,
		Reduced:     e.Reduced,
		Reduce:      e.Reduce,
		Specialized: e.Specialized,
		Specialize:  e.Specialize,
	}
	t = time.Now()
	c.mu.Lock()
	c.putWaitNs.Add(time.Since(t).Nanoseconds())
	c.mem[key] = a
	c.mu.Unlock()
	c.diskHits.Add(1)
	return a, true, true
}

// Put stores the artifact in memory and, when a directory is
// configured, on disk. Disk writes are best-effort: an I/O failure
// degrades the cache, it never fails the synthesis. The JSON
// serialisation and the file write happen outside the lock, so slow
// disks never serialize the workers.
func (c *Cache) Put(key string, a *Artifact) {
	t := time.Now()
	c.mu.Lock()
	c.putWaitNs.Add(time.Since(t).Nanoseconds())
	c.mem[key] = a
	c.mu.Unlock()
	if c.dir == "" {
		return
	}
	data, err := json.Marshal(diskEntry{
		Schema:      diskSchema,
		Module:      a.Module,
		NumTests:    a.NumTests,
		NumActions:  a.NumActions,
		NumTrans:    a.NumTrans,
		C:           a.C,
		Listing:     a.Listing,
		Estimate:    a.Estimate,
		Measured:    a.Measured,
		CodeSize:    a.CodeSize,
		Stats:       a.Stats,
		Reduced:     a.Reduced,
		Reduce:      a.Reduce,
		Specialized: a.Specialized,
		Specialize:  a.Specialize,
	})
	if err != nil {
		return
	}
	// Publish through a uniquely-named temp file in the cache dir.
	// A fixed per-key temp path would let two same-key writers
	// (goroutines, or two processes sharing the directory as a
	// shard shuffle layer) interleave O_TRUNC opens and writes, so
	// one of them could rename a torn file into place. CreateTemp
	// gives every writer its own inode; whichever rename lands last
	// wins with a complete file either way.
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	_ = os.Chmod(tmp.Name(), 0o644) // CreateTemp defaults to 0600
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name()) // best-effort publish, never an error
	}
}

// Len returns the number of in-memory entries (for tests and stats).
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.mem)
}
