package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"polis/internal/cfsm"
	"polis/internal/estimate"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

// Fingerprint returns the content-addressed cache key of one module
// under the given options: a stable hash over the CFSM's reactive
// function (signals, state variables, tests, actions, transition
// relation, exclusivity groups) and every option that influences the
// generated artifacts. Two modules with the same fingerprint produce
// byte-identical artifacts, so a fingerprint match is a cache hit.
//
// The target profile is identified by its Name; callers that mutate a
// built-in profile must rename it or bypass the cache.
func Fingerprint(m *cfsm.CFSM, opt Options) string {
	opt.fill()
	h := sha256.New()
	fmt.Fprintf(h, "v1\nmodule %s\n", m.Name)
	for _, s := range m.Inputs {
		fmt.Fprintf(h, "in %s pure=%v\n", s.Name, s.Pure)
	}
	for _, s := range m.Outputs {
		fmt.Fprintf(h, "out %s pure=%v\n", s.Name, s.Pure)
	}
	for _, sv := range m.States {
		fmt.Fprintf(h, "state %s dom=%d init=%d\n", sv.Name, sv.Domain, sv.Init)
	}
	for _, t := range m.Tests {
		fmt.Fprintf(h, "test %s arity=%d\n", t.Name(), t.Arity())
	}
	for _, a := range m.Actions {
		fmt.Fprintf(h, "action %s\n", a.Name())
	}
	for _, tr := range m.Trans {
		fmt.Fprintf(h, "trans")
		for _, c := range tr.Guard {
			fmt.Fprintf(h, " t%d=%d", m.TestID(c.Test), c.Val)
		}
		fmt.Fprintf(h, " ->")
		for _, a := range tr.Actions {
			fmt.Fprintf(h, " a%d", m.ActionID(a))
		}
		fmt.Fprintf(h, "\n")
	}
	for _, grp := range m.Exclusive {
		fmt.Fprintf(h, "excl")
		for _, t := range grp {
			fmt.Fprintf(h, " t%d", m.TestID(t))
		}
		fmt.Fprintf(h, "\n")
	}
	fmt.Fprintf(h, "opt ord=%s target=%s copies=%v ifthr=%d falsepaths=%v\n",
		opt.Ordering, opt.Target.Name,
		opt.Codegen.OptimizeCopies, opt.Codegen.IfThreshold,
		opt.UseFalsePaths)
	if opt.Reduce {
		fmt.Fprintf(h, "reduce iter=%d noshare=%v nodc=%v nostraighten=%v maxctx=%d\n",
			opt.ReduceOpt.MaxIter, opt.ReduceOpt.NoShare, opt.ReduceOpt.NoDontCare,
			opt.ReduceOpt.NoStraighten, opt.ReduceOpt.MaxContextNodes)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cache is the content-addressed artifact cache: an always-on
// in-memory map, optionally backed by an on-disk directory so hits
// survive across processes. It is safe for concurrent use.
//
// Artifacts served from memory carry their live SGraph/Program/CFSM
// handles; artifacts restored from disk carry only the serialisable
// payload (C, listing, estimates, measurements, s-graph statistics)
// and have nil live handles. A corrupted or unreadable disk entry is
// treated as a miss — the module is simply recompiled.
type Cache struct {
	mu  sync.Mutex
	mem map[string]*Artifact
	dir string
}

// NewCache creates a cache. With dir == "" the cache is in-memory
// only; otherwise dir is created (if needed) and used as the on-disk
// layer, one JSON file per fingerprint.
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("pipeline: cache dir: %w", err)
		}
	}
	return &Cache{mem: make(map[string]*Artifact), dir: dir}, nil
}

// diskEntry is the serialised form of an Artifact. Live handles
// (SGraph, Program, CFSM) are intentionally absent: they are cheap to
// rebuild when needed and expensive to serialise faithfully.
type diskEntry struct {
	Schema     int
	Module     string
	NumTests   int
	NumActions int
	NumTrans   int
	C          string
	Listing    string
	Estimate   estimate.Result
	Measured   vm.PathCycles
	CodeSize   int
	Stats      sgraph.Stats
	Reduced    bool
	Reduce     sgraph.ReduceStats
}

const diskSchema = 2

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get looks the key up, memory first, then disk. fromDisk reports
// which layer served the hit.
func (c *Cache) Get(key string) (a *Artifact, fromDisk, ok bool) {
	c.mu.Lock()
	a, ok = c.mem[key]
	c.mu.Unlock()
	if ok {
		return a, false, true
	}
	if c.dir == "" {
		return nil, false, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false, false
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Schema != diskSchema || e.Module == "" {
		// Corrupted or stale entry: fall back to a recompile.
		return nil, false, false
	}
	a = &Artifact{
		Module:     e.Module,
		NumTests:   e.NumTests,
		NumActions: e.NumActions,
		NumTrans:   e.NumTrans,
		C:          e.C,
		Listing:    e.Listing,
		Estimate:   e.Estimate,
		Measured:   e.Measured,
		CodeSize:   e.CodeSize,
		Stats:      e.Stats,
		Reduced:    e.Reduced,
		Reduce:     e.Reduce,
	}
	c.mu.Lock()
	c.mem[key] = a
	c.mu.Unlock()
	return a, true, true
}

// Put stores the artifact in memory and, when a directory is
// configured, on disk. Disk writes are best-effort: an I/O failure
// degrades the cache, it never fails the synthesis.
func (c *Cache) Put(key string, a *Artifact) {
	c.mu.Lock()
	c.mem[key] = a
	c.mu.Unlock()
	if c.dir == "" {
		return
	}
	data, err := json.Marshal(diskEntry{
		Schema:     diskSchema,
		Module:     a.Module,
		NumTests:   a.NumTests,
		NumActions: a.NumActions,
		NumTrans:   a.NumTrans,
		C:          a.C,
		Listing:    a.Listing,
		Estimate:   a.Estimate,
		Measured:   a.Measured,
		CodeSize:   a.CodeSize,
		Stats:      a.Stats,
		Reduced:    a.Reduced,
		Reduce:     a.Reduce,
	})
	if err != nil {
		return
	}
	tmp := c.path(key) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, c.path(key)) // atomic publish; best-effort
}

// Len returns the number of in-memory entries (for tests and stats).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}
