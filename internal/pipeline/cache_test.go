package pipeline

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

// TestCacheMemHit: the second run over identical modules and options
// hits in memory for every module.
func TestCacheMemHit(t *testing.T) {
	net := testNetwork(t, 21, 6)
	cache, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	cold, err := Run(net, Options{}, Config{Jobs: 2, Cache: cache, Trace: col})
	if err != nil {
		t.Fatal(err)
	}
	if hits, _, misses := col.CacheCounters(); hits != 0 || misses != 6 {
		t.Fatalf("cold run: %d hits, %d misses; want 0/6", hits, misses)
	}
	warm, err := Run(net, Options{}, Config{Jobs: 2, Cache: cache, Trace: col})
	if err != nil {
		t.Fatal(err)
	}
	if hits, diskHits, misses := col.CacheCounters(); hits != 6 || diskHits != 0 || misses != 6 {
		t.Fatalf("warm run: %d hits (%d disk), %d misses; want 6 (0)/6", hits, diskHits, misses)
	}
	for i := range cold {
		if warm[i].C != cold[i].C || warm[i].CodeSize != cold[i].CodeSize {
			t.Errorf("module %s: cached artifact differs", cold[i].Module)
		}
		if warm[i].SGraph == nil {
			t.Errorf("module %s: memory hit should keep live handles", cold[i].Module)
		}
	}
}

// TestFingerprintSensitivity: the key must change whenever any
// artifact-influencing option changes, and must be stable otherwise.
func TestFingerprintSensitivity(t *testing.T) {
	m := goodMachine("fp")
	base := Fingerprint(m, Options{})
	if base != Fingerprint(m, Options{}) {
		t.Fatal("fingerprint not stable across calls")
	}
	if base != Fingerprint(m, Options{Target: vm.HC11()}) {
		t.Error("explicit default target should not change the fingerprint")
	}
	variants := map[string]Options{
		"ordering":    {Ordering: sgraph.OrderNaive},
		"target":      {Target: vm.R3K()},
		"copies":      {Codegen: codegen.Options{OptimizeCopies: true}},
		"ifthreshold": {Codegen: codegen.Options{IfThreshold: 4}},
		"falsepaths":  {UseFalsePaths: true},
	}
	for name, opt := range variants {
		if Fingerprint(m, opt) == base {
			t.Errorf("changing %s does not change the fingerprint", name)
		}
	}
	if Fingerprint(goodMachine("fp2"), Options{}) == base {
		t.Error("different module name does not change the fingerprint")
	}
}

// TestDiskCacheRoundTrip: a fresh process (fresh in-memory layer) is
// served from disk, with the serialisable payload intact.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	net := testNetwork(t, 33, 4)

	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(net, Options{}, Config{Jobs: 2, Cache: c1})
	if err != nil {
		t.Fatal(err)
	}

	c2, err := NewCache(dir) // fresh memory, same directory
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	warm, err := Run(net, Options{}, Config{Jobs: 2, Cache: c2, Trace: col})
	if err != nil {
		t.Fatal(err)
	}
	if hits, diskHits, _ := col.CacheCounters(); hits != 4 || diskHits != 4 {
		t.Fatalf("want 4 disk hits, got %d hits (%d disk)", hits, diskHits)
	}
	for i := range cold {
		a, b := cold[i], warm[i]
		if a.C != b.C || a.Listing != b.Listing || a.CodeSize != b.CodeSize ||
			a.Estimate != b.Estimate || a.Measured != b.Measured || a.Stats != b.Stats ||
			a.NumTests != b.NumTests || a.NumActions != b.NumActions || a.NumTrans != b.NumTrans {
			t.Errorf("module %s: disk round-trip altered the artifact", a.Module)
		}
		if b.SGraph != nil || b.Program != nil || b.CFSM != nil {
			t.Errorf("module %s: disk hit should have nil live handles", a.Module)
		}
	}
}

// TestDiskCacheCorruption: corrupted or wrong-schema entries fall back
// to a recompile instead of failing the run.
func TestDiskCacheCorruption(t *testing.T) {
	dir := t.TempDir()
	net := testNetwork(t, 55, 3)

	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(net, Options{}, Config{Jobs: 1, Cache: c1})
	if err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("want 3 cache files, got %d", len(entries))
	}
	// Corrupt one entry with garbage, one with valid JSON of the wrong
	// schema, and truncate the third.
	damage := [][]byte{
		[]byte("not json at all \x00\x01"),
		[]byte(`{"Schema": 999, "Module": "x"}`),
		nil,
	}
	for i, e := range entries {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), damage[i], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	warm, err := Run(net, Options{}, Config{Jobs: 1, Cache: c2, Trace: col})
	if err != nil {
		t.Fatalf("corrupted cache must recompile, not fail: %v", err)
	}
	if hits, _, misses := col.CacheCounters(); hits != 0 || misses != 3 {
		t.Errorf("corrupted entries should all miss: %d hits, %d misses", hits, misses)
	}
	for i := range cold {
		if warm[i].C != cold[i].C || warm[i].CodeSize != cold[i].CodeSize {
			t.Errorf("module %s: recompiled artifact differs", cold[i].Module)
		}
	}
	// The recompile repaired the damaged entries.
	c3, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	col3 := NewCollector()
	if _, err := Run(net, Options{}, Config{Jobs: 1, Cache: c3, Trace: col3}); err != nil {
		t.Fatal(err)
	}
	if hits, diskHits, _ := col3.CacheCounters(); hits != 3 || diskHits != 3 {
		t.Errorf("after repair want 3 disk hits, got %d (%d disk)", hits, diskHits)
	}
}

// TestDiskCacheTruncatedMidWrite: an artifact file cut off mid-write
// (a crash between the first byte and the last) is a miss, counted as
// corrupt, recompiled, and overwritten with a good entry.
func TestDiskCacheTruncatedMidWrite(t *testing.T) {
	dir := t.TempDir()
	m := goodMachine("trunc")
	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := RunModules([]*cfsm.CFSM{m}, Options{}, Config{Jobs: 1, Cache: c1})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("want 1 cache file, got %d", len(entries))
	}
	path := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-way: valid JSON prefix, no closing brace.
	if err := os.Truncate(path, int64(len(data)/2)); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c2.Get(Fingerprint(m, Options{})); ok {
		t.Fatal("truncated entry must be a miss, not a hit")
	}
	st := c2.Stats()
	if st.CorruptMisses != 1 || st.Misses != 1 {
		t.Errorf("want 1 corrupt miss, got %+v", st)
	}
	// The recompile overwrites the truncated file with a good entry.
	warm, err := RunModules([]*cfsm.CFSM{m}, Options{}, Config{Jobs: 1, Cache: c2})
	if err != nil {
		t.Fatalf("truncated cache must recompile, not fail: %v", err)
	}
	if warm[0].C != cold[0].C {
		t.Error("recompiled artifact differs")
	}
	c3, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, fromDisk, ok := c3.Get(Fingerprint(m, Options{})); !ok || !fromDisk {
		t.Errorf("repaired entry should hit from disk: ok=%v fromDisk=%v", ok, fromDisk)
	}
	if st := c3.Stats(); st.CorruptMisses != 0 {
		t.Errorf("repaired entry still counted corrupt: %+v", st)
	}
}

// TestCachePublishRace: several Cache instances sharing one directory
// (as shard-worker processes sharing the shuffle layer do) race Put
// on the same fingerprint while a reader polls the published path.
// Every state the published file is ever observed in must be one of
// the complete candidate serialisations — never a torn mix, never a
// truncated prefix. The fixed per-key ".tmp" publish path this pins
// against shares one temp inode between the writers, so a rename can
// publish a file another writer is still truncating or writing; the
// multi-megabyte payloads keep each write long enough to be preempted
// mid-syscall, which is when the reader catches the torn state.
func TestCachePublishRace(t *testing.T) {
	dir := t.TempDir()
	key := strings.Repeat("ab", 32) // fingerprint-shaped, path-safe
	const writers = 4
	const putsPerWriter = 40

	caches := make([]*Cache, writers)
	arts := make([]*Artifact, writers)
	goods := make([][]byte, writers)
	for i := range caches {
		c, err := NewCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		caches[i] = c
		arts[i] = &Artifact{Module: "race", C: strings.Repeat(string(rune('A'+i)), 4<<20)}
		// The only valid on-disk states are the exact serialisations Put
		// produces for the candidates; byte equality keeps the reader's
		// validation loop fast enough to sample mid-write states.
		goods[i], err = json.Marshal(diskEntry{Schema: diskSchema, Module: "race", C: arts[i].C})
		if err != nil {
			t.Fatal(err)
		}
	}
	valid := func(data []byte) bool {
		for _, g := range goods {
			if bytes.Equal(data, g) {
				return true
			}
		}
		return false
	}

	// The reader races the writers: with an atomic publish it can only
	// ever observe no file or a complete artifact.
	published := filepath.Join(dir, key+".json")
	stop := make(chan struct{})
	torn := make(chan int, 1)
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			data, err := os.ReadFile(published)
			if err == nil && !valid(data) {
				select {
				case torn <- len(data):
				default:
				}
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < putsPerWriter; n++ {
				caches[i].Put(key, arts[i])
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	select {
	case n := <-torn:
		t.Fatalf("reader observed a torn published artifact (%d bytes)", n)
	default:
	}
	data, err := os.ReadFile(published)
	if err != nil {
		t.Fatalf("published file unreadable: %v", err)
	}
	if !valid(data) {
		t.Fatalf("torn artifact at rest (%d bytes)", len(data))
	}

	// A fresh process round-trips whichever writer won, cleanly.
	c3, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, fromDisk, ok := c3.Get(key)
	if !ok || !fromDisk {
		t.Fatalf("published artifact must hit from disk: ok=%v fromDisk=%v", ok, fromDisk)
	}
	found := false
	for _, art := range arts {
		if a.C == art.C {
			found = true
		}
	}
	if !found {
		t.Error("published artifact matches no writer")
	}
	if st := c3.Stats(); st.CorruptMisses != 0 {
		t.Errorf("publish race left a corrupt entry: %+v", st)
	}
}
