package pipeline

import (
	"strconv"
	"strings"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/expr"
	"polis/internal/profile"
)

// specMachine builds a two-test machine (presence + predicate) whose
// layout specialization can visibly reorder.
func specMachine(name string) *cfsm.CFSM {
	c := cfsm.New(name)
	in := c.AddInput("c", false)
	y := c.AddOutput("y", true)
	a := c.AddState("a", 0, 0)
	pc := c.Present(in)
	eq := c.Pred(expr.Eq(expr.V("a"), expr.V("?c")))
	c.AddTransition([]cfsm.Cond{cfsm.On(pc, 1), cfsm.On(eq, 1)},
		c.Assign(a, expr.C(0)), c.Emit(y))
	c.AddTransition([]cfsm.Cond{cfsm.On(pc, 1), cfsm.On(eq, 0)},
		c.Assign(a, expr.Add(expr.V("a"), expr.C(1))))
	return c
}

// specProfileFor builds a profile heavily biased toward the
// (present=1, pred=0) outcome vector of m.
func specProfileFor(m *cfsm.CFSM) *profile.Profile {
	names := make([]string, len(m.Tests))
	for i, t := range m.Tests {
		names[i] = t.Name()
	}
	vec := func(pres, pred int) string {
		parts := make([]string, len(names))
		for i, n := range names {
			if strings.HasPrefix(n, "present_") {
				parts[i] = strconv.Itoa(pres)
			} else {
				parts[i] = strconv.Itoa(pred)
			}
		}
		return strings.Join(parts, ",")
	}
	counts := map[string]int64{}
	for _, pres := range []int{0, 1} {
		for _, pred := range []int{0, 1} {
			counts[vec(pres, pred)] = 1
		}
	}
	counts[vec(1, 0)] = 1000
	return &profile.Profile{Modules: map[string]*profile.ModuleProfile{
		m.Name: {Module: m.Name, TestNames: names, Outcomes: counts, Reactions: 1003},
	}}
}

// TestPipelineSpecialize runs the full per-module flow with a profile
// and checks the specialize stage fires, reshapes the artifact, and
// reports profile-weighted expected cycles.
func TestPipelineSpecialize(t *testing.T) {
	m := specMachine("hotmod")
	p := specProfileFor(m)
	col := NewCollector()
	art, err := SynthesizeModule(m, Options{Profile: p}, col)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Specialized || art.Specialize.Reordered == 0 {
		t.Fatalf("specialization did not reorder: specialized=%v stats=%v",
			art.Specialized, art.Specialize)
	}
	if art.Estimate.ExpectedCycles <= 0 {
		t.Fatalf("expected cycles not computed: %+v", art.Estimate)
	}
	if art.Estimate.ExpectedCycles > art.Estimate.MaxCycles {
		t.Errorf("expected cycles %d exceed the worst case %d",
			art.Estimate.ExpectedCycles, art.Estimate.MaxCycles)
	}
	if col.StageTotal(StageSpecialize) <= 0 {
		t.Error("specialize stage recorded no time")
	}
	if rep := col.Report(); !strings.Contains(rep, "specialize:") {
		t.Errorf("collector report lacks the specialize line:\n%s", rep)
	}

	// The same machine without a profile must generate different code
	// (the hot outcome moved onto the fall-through arc).
	plain, err := SynthesizeModule(specMachine("hotmod"), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.C == art.C {
		t.Error("specialized C is identical to the unspecialized output")
	}
	if plain.Specialized || plain.Estimate.ExpectedCycles != 0 {
		t.Errorf("profile-free run must not specialize: %+v", plain.Estimate)
	}
}

// TestFingerprintTracksProfile: profile evidence for a module must
// change its cache key; evidence about other modules must not.
func TestFingerprintTracksProfile(t *testing.T) {
	m := specMachine("hotmod")
	p := specProfileFor(m)
	base := Fingerprint(m, Options{})
	if got := Fingerprint(m, Options{Profile: p}); got == base {
		t.Error("profile evidence did not change the fingerprint")
	}
	foreign := &profile.Profile{Modules: map[string]*profile.ModuleProfile{
		"other": p.Modules["hotmod"],
	}}
	if got := Fingerprint(m, Options{Profile: foreign}); got != base {
		t.Error("evidence about an unrelated module changed the fingerprint")
	}
	// Different evidence, different key.
	p2 := specProfileFor(m)
	for k := range p2.Modules["hotmod"].Outcomes {
		p2.Modules["hotmod"].Outcomes[k] += 7
	}
	if Fingerprint(m, Options{Profile: p}) == Fingerprint(m, Options{Profile: p2}) {
		t.Error("changed outcome counts did not change the fingerprint")
	}
}
