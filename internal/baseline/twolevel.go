package baseline

import (
	"fmt"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/expr"
	"polis/internal/vm"
)

// TwoLevelJump generates the reference implementation the paper uses
// as the structured hand-coding baseline in Table II: a first multiway
// jump dispatches on the current state (the product of the control
// variables), a second on the concatenation of the state's decision
// variables packed into a single integer, and each table entry is the
// appropriate ASSIGN sequence. Within a state every relevant decision
// variable is evaluated on every reaction, and the decision table is
// exponential in their number — the structural reasons this scheme
// loses to the optimized decision graph.
//
// The decision table is exponential in the number of Boolean tests;
// machines with more than maxBoolTests of them are rejected.
func TwoLevelJump(c *cfsm.CFSM, sigs codegen.SignalMap, opts codegen.Options) (*vm.Program, error) {
	const maxBoolTests = 12
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var selectors []*cfsm.Test
	var bools []*cfsm.Test
	for _, t := range c.Tests {
		if t.Kind == cfsm.TestSelector {
			selectors = append(selectors, t)
		} else {
			bools = append(bools, t)
		}
	}
	if len(bools) > maxBoolTests {
		return nil, fmt.Errorf("baseline: %d boolean tests exceed the two-level limit of %d",
			len(bools), maxBoolTests)
	}
	states := 1
	for _, s := range selectors {
		states *= s.Arity()
	}

	b, err := codegen.NewBuilder(c, sigs, opts, nil)
	if err != nil {
		return nil, err
	}
	p := b.Prog()

	// Level 1: pack the control state into RegTmp and dispatch.
	p.Emit(vm.Instr{Op: vm.LDI, Rd: codegen.RegAcc, Imm: 0, Comment: "state index"})
	for _, t := range selectors {
		p.Emit(vm.Instr{Op: vm.LDI, Rd: codegen.RegAux, Imm: int64(t.Arity())})
		p.Emit(vm.Instr{Op: vm.ALU, AOp: expr.OpMul, Rd: codegen.RegAcc, Rs: codegen.RegAux})
		p.Emit(vm.Instr{Op: vm.LD, Rd: codegen.RegVal, Addr: b.StateReadAddr(t.Sel)})
		p.Emit(vm.Instr{Op: vm.ALU, AOp: expr.OpAdd, Rd: codegen.RegAcc, Rs: codegen.RegVal})
	}
	stateTable := make([]string, states)
	for s := range stateTable {
		stateTable[s] = fmt.Sprintf("state%d", s)
	}
	if states > 1 {
		p.Emit(vm.Instr{Op: vm.JTAB, Rs: codegen.RegAcc, Table: stateTable})
	}

	// Level 2, per state: pack the decision variables relevant to the
	// state's transitions (a hand-coder reads only what the state
	// needs) and dispatch on the packed word.
	for s := 0; s < states; s++ {
		bools := relevantBools(c, selectors, bools, s)
		decisions := 1 << len(bools)
		if states > 1 {
			if err := p.Mark(stateTable[s]); err != nil {
				return nil, err
			}
		}
		p.Emit(vm.Instr{Op: vm.LDI, Rd: codegen.RegAcc, Imm: 0, Comment: "decision word"})
		for _, t := range bools {
			// Shift left by one, add the outcome.
			p.Emit(vm.Instr{Op: vm.LDI, Rd: codegen.RegAux, Imm: 2})
			p.Emit(vm.Instr{Op: vm.ALU, AOp: expr.OpMul, Rd: codegen.RegAcc, Rs: codegen.RegAux})
			switch t.Kind {
			case cfsm.TestPresence:
				p.Emit(vm.Instr{Op: vm.SVC, Num: vm.SvcPresent, Imm: int64(b.SignalID(t.Signal)),
					Comment: t.Name()})
				p.Emit(vm.Instr{Op: vm.ALU, AOp: expr.OpAdd, Rd: codegen.RegAcc, Rs: 0})
			case cfsm.TestPredicate:
				if err := b.CompileExpr(t.Pred); err != nil {
					return nil, err
				}
				p.Emit(vm.Instr{Op: vm.NOT, Rd: codegen.RegVal})
				p.Emit(vm.Instr{Op: vm.NOT, Rd: codegen.RegVal})
				p.Emit(vm.Instr{Op: vm.ALU, AOp: expr.OpAdd, Rd: codegen.RegAcc, Rs: codegen.RegVal})
			}
		}
		dTable := make([]string, decisions)
		for d := range dTable {
			dTable[d] = fmt.Sprintf("s%dd%d", s, d)
		}
		p.Emit(vm.Instr{Op: vm.JTAB, Rs: codegen.RegAcc, Table: dTable})
		for d := 0; d < decisions; d++ {
			if err := p.Mark(dTable[d]); err != nil {
				return nil, err
			}
			tr := matchTransition(c, selectors, bools, s, d)
			if tr != nil {
				for _, a := range tr.Actions {
					if err := b.EmitAction(a); err != nil {
						return nil, err
					}
				}
			}
			p.Emit(vm.Instr{Op: vm.HALT})
		}
	}
	return b.Finish()
}

// decodeState unpacks the level-1 state index into selector outcomes.
func decodeState(selectors []*cfsm.Test, s int) map[*cfsm.Test]int {
	outcome := make(map[*cfsm.Test]int, len(selectors))
	for i := len(selectors) - 1; i >= 0; i-- {
		t := selectors[i]
		outcome[t] = s % t.Arity()
		s /= t.Arity()
	}
	return outcome
}

// stateCompatible reports whether a transition's selector conditions
// match the decoded state.
func stateCompatible(tr *cfsm.Transition, stateOutcome map[*cfsm.Test]int) bool {
	for _, cond := range tr.Guard {
		if cond.Test.Kind == cfsm.TestSelector && stateOutcome[cond.Test] != cond.Val {
			return false
		}
	}
	return true
}

// relevantBools returns the Boolean tests appearing in guards of
// transitions compatible with state s, preserving declaration order.
func relevantBools(c *cfsm.CFSM, selectors, bools []*cfsm.Test, s int) []*cfsm.Test {
	st := decodeState(selectors, s)
	used := make(map[*cfsm.Test]bool)
	for _, tr := range c.Trans {
		if !stateCompatible(tr, st) {
			continue
		}
		for _, cond := range tr.Guard {
			if cond.Test.Kind != cfsm.TestSelector {
				used[cond.Test] = true
			}
		}
	}
	var out []*cfsm.Test
	for _, t := range bools {
		if used[t] {
			out = append(out, t)
		}
	}
	return out
}

// matchTransition finds the transition enabled under the packed state
// index s and decision word d over the given per-state bools, or nil.
func matchTransition(c *cfsm.CFSM, selectors, bools []*cfsm.Test, s, d int) *cfsm.Transition {
	outcome := decodeState(selectors, s)
	for i := len(bools) - 1; i >= 0; i-- {
		outcome[bools[i]] = d & 1
		d >>= 1
	}
	known := make(map[*cfsm.Test]bool, len(outcome))
	for t := range outcome {
		known[t] = true
	}
	for _, tr := range c.Trans {
		match := true
		for _, cond := range tr.Guard {
			if !known[cond.Test] || outcome[cond.Test] != cond.Val {
				match = false
				break
			}
		}
		if match {
			return tr
		}
	}
	return nil
}
