package baseline

import "polis/internal/cfsm"

// NetState is the combined state of all machines in a network, used by
// the synchronous reference interpreter.
type NetState map[*cfsm.StateVar]int64

// InitialNetState returns every machine's state variables at their
// initial values.
func InitialNetState(n *cfsm.Network) NetState {
	st := make(NetState)
	for _, m := range n.Machines {
		for _, sv := range m.States {
			st[sv] = sv.Init
		}
	}
	return st
}

// SyncTick executes one synchronous tick of the network: machines
// react in topological order, internal events emitted in the tick are
// visible (with their values) to downstream readers within the same
// tick, and primary outputs are collected. This is the reference
// semantics of the single-FSM composition; the machines slice must be
// a topological order (see Network.TopoOrder).
func SyncTick(n *cfsm.Network, order []*cfsm.CFSM, st NetState,
	present map[*cfsm.Signal]bool, values map[*cfsm.Signal]int64) []cfsm.Emission {

	internal := make(map[*cfsm.Signal]bool)
	for _, s := range n.InternalSignals() {
		internal[s] = true
	}
	tickPresent := make(map[*cfsm.Signal]bool, len(present))
	tickValues := make(map[*cfsm.Signal]int64, len(values))
	for s, p := range present {
		tickPresent[s] = p
	}
	for s, v := range values {
		tickValues[s] = v
	}
	var outputs []cfsm.Emission
	for _, m := range order {
		snap := cfsm.Snapshot{
			Present: make(map[*cfsm.Signal]bool),
			Values:  make(map[*cfsm.Signal]int64),
			State:   make(map[*cfsm.StateVar]int64),
		}
		any := false
		for _, in := range m.Inputs {
			if tickPresent[in] {
				snap.Present[in] = true
				snap.Values[in] = tickValues[in]
				any = true
			}
		}
		for _, sv := range m.States {
			snap.State[sv] = st[sv]
		}
		if !any {
			continue
		}
		r := m.React(snap)
		for _, sv := range m.States {
			st[sv] = r.NextState[sv]
		}
		for _, em := range r.Emitted {
			if internal[em.Signal] {
				tickPresent[em.Signal] = true
				tickValues[em.Signal] = em.Value
			} else {
				outputs = append(outputs, em)
			}
		}
	}
	return outputs
}
