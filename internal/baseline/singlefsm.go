// Package baseline implements the code-generation schemes the paper
// compares POLIS against in Tables II and III:
//
//   - SingleFSM: explicit synchronous composition of the whole network
//     into one product machine, the Esterel-v3 strategy ("a very fast
//     implementation ... at the expense of code size").
//   - TwoLevelJump: the structured hand-coding style — a first multiway
//     jump on the current state and a second on the concatenation of
//     all decision variables packed into one integer, followed by the
//     appropriate ASSIGN sequence.
package baseline

import (
	"fmt"

	"polis/internal/cfsm"
	"polis/internal/expr"
)

// maxProductTransitions bounds the composition, which is exponential
// by design (that is the paper's point about the v3 strategy).
const maxProductTransitions = 200000

// SingleFSM composes a network of CFSMs into one CFSM under the
// synchronous hypothesis: in each tick every machine with a present
// input reacts, and internal events are produced and consumed within
// the same tick (zero-delay communication), so all internal signalling
// disappears from the product. Valued internal events are removed by
// substituting the emitter's value expression into the consumer's
// expressions. The number of product transitions is the product of the
// per-machine choices — the size blow-up the paper attributes to this
// strategy.
//
// Requirements: the network must be acyclic through internal signals,
// each internal signal must have one writer, state-variable names must
// be unique, and a signal written inside the network is treated as
// internal (not re-exported) when it also has internal readers.
func SingleFSM(n *cfsm.Network) (*cfsm.CFSM, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	internal := make(map[*cfsm.Signal]bool)
	for _, s := range n.InternalSignals() {
		if len(n.Writers(s)) > 1 {
			return nil, fmt.Errorf("baseline: internal signal %s has multiple writers", s.Name)
		}
		internal[s] = true
	}

	prod := cfsm.New(n.Name + "_product")
	for _, s := range n.PrimaryInputs() {
		prod.AttachInput(s)
	}
	for _, s := range n.PrimaryOutputs() {
		prod.AttachOutput(s)
	}
	stOf := make(map[*cfsm.StateVar]*cfsm.StateVar)
	for _, m := range n.Machines {
		for _, sv := range m.States {
			stOf[sv] = prod.AddState(sv.Name, sv.Domain, sv.Init)
		}
	}

	// combo accumulates one tick's product behaviour while machines
	// are assigned choices in topological order.
	type combo struct {
		conds    []cfsm.Cond                // product guard
		emits    map[*cfsm.Signal]bool      // internal events this tick
		emitVals map[*cfsm.Signal]expr.Expr // their translated values
		actions  []*cfsm.Action             // product actions
	}
	cloneCombo := func(cb *combo) *combo {
		return &combo{
			conds:    append([]cfsm.Cond(nil), cb.conds...),
			emits:    copySigSet(cb.emits),
			emitVals: copySigExpr(cb.emitVals),
			actions:  append([]*cfsm.Action(nil), cb.actions...),
		}
	}

	// translateExpr rewrites a machine expression into the product
	// name space: values of internal inputs become the writer's value
	// expression for this tick (Const 0 when the signal is absent,
	// matching the reference semantics of an unset event value).
	translateExpr := func(m *cfsm.CFSM, e expr.Expr, cb *combo) expr.Expr {
		sub := make(map[string]expr.Expr)
		for _, name := range e.Vars(nil) {
			if len(name) > 0 && name[0] == '?' {
				sig := findSignal(m.Inputs, name[1:])
				if sig != nil && internal[sig] {
					if v, ok := cb.emitVals[sig]; ok {
						sub[name] = v
					} else {
						sub[name] = expr.C(0)
					}
				}
			}
		}
		return expr.Subst(e, sub)
	}

	count := 0
	var expandMachine func(mi int, cb *combo) error

	// foldMachine enumerates the complete outcome space of machine m
	// within the context cb: first the presence of each input
	// (internal presences are forced by the writers' choices), then
	// the outcomes of its selector and predicate tests. At each leaf
	// the unique enabled transition (if any) contributes its actions.
	// Complete enumeration is what makes the product equivalent to
	// the network even where no transition matches — and what makes
	// it blow up, as the paper observes for the v3 strategy.
	foldMachine := func(m *cfsm.CFSM, cb0 *combo, next func(cb *combo) error) error {
		var presence map[*cfsm.Signal]bool
		var outcomes map[*cfsm.Test]int

		matchAndGo := func(cb *combo) error {
			any := false
			for _, in := range m.Inputs {
				if presence[in] {
					any = true
					break
				}
			}
			if any {
				// First-match semantics, like cfsm.React.
				for _, tr := range m.Trans {
					ok := true
					for _, cond := range tr.Guard {
						t := cond.Test
						var got int
						if t.Kind == cfsm.TestPresence {
							if presence[t.Signal] {
								got = 1
							}
						} else {
							got = outcomes[t]
						}
						if got != cond.Val {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					for _, a := range tr.Actions {
						switch a.Kind {
						case cfsm.ActEmit:
							var val expr.Expr
							if a.Value != nil {
								val = translateExpr(m, a.Value, cb)
							}
							if internal[a.Signal] {
								cb.emits[a.Signal] = true
								if val != nil {
									cb.emitVals[a.Signal] = val
								}
							} else if val != nil {
								cb.actions = append(cb.actions, prod.EmitV(a.Signal, val))
							} else {
								cb.actions = append(cb.actions, prod.Emit(a.Signal))
							}
						case cfsm.ActAssign:
							cb.actions = append(cb.actions,
								prod.Assign(stOf[a.Var], translateExpr(m, a.Expr, cb)))
						}
					}
					break
				}
			}
			return next(cb)
		}

		var tests []*cfsm.Test
		for _, t := range m.Tests {
			if t.Kind != cfsm.TestPresence {
				tests = append(tests, t)
			}
		}
		var enumTests func(ti int, cb *combo) error
		enumTests = func(ti int, cb *combo) error {
			if ti == len(tests) {
				return matchAndGo(cb)
			}
			t := tests[ti]
			for val := 0; val < t.Arity(); val++ {
				cb2 := cloneCombo(cb)
				var cond cfsm.Cond
				switch t.Kind {
				case cfsm.TestSelector:
					cond = cfsm.On(prod.Sel(stOf[t.Sel]), val)
				case cfsm.TestPredicate:
					cond = cfsm.On(prod.Pred(translateExpr(m, t.Pred, cb2)), val)
				}
				var clash bool
				cb2.conds, clash = addCond(cb2.conds, cond)
				if clash {
					continue
				}
				outcomes[t] = val
				if err := enumTests(ti+1, cb2); err != nil {
					return err
				}
			}
			return nil
		}

		var enumPresence func(ii int, cb *combo) error
		enumPresence = func(ii int, cb *combo) error {
			if ii == len(m.Inputs) {
				return enumTests(0, cb)
			}
			in := m.Inputs[ii]
			if internal[in] {
				presence[in] = cb.emits[in]
				return enumPresence(ii+1, cb)
			}
			for _, val := range []int{0, 1} {
				cb2 := cloneCombo(cb)
				var clash bool
				cb2.conds, clash = addCond(cb2.conds, cfsm.On(prod.Present(in), val))
				if clash {
					continue
				}
				presence[in] = val == 1
				if err := enumPresence(ii+1, cb2); err != nil {
					return err
				}
			}
			return nil
		}

		presence = make(map[*cfsm.Signal]bool)
		outcomes = make(map[*cfsm.Test]int)
		return enumPresence(0, cb0)
	}

	expandMachine = func(mi int, cb *combo) error {
		if mi == len(order) {
			if len(cb.actions) > 0 {
				if count++; count > maxProductTransitions {
					return fmt.Errorf("baseline: product exceeds %d transitions", maxProductTransitions)
				}
				prod.AddTransition(cb.conds, cb.actions...)
			}
			return nil
		}
		return foldMachine(order[mi], cb, func(cb2 *combo) error {
			return expandMachine(mi+1, cb2)
		})
	}

	seed := &combo{
		emits:    make(map[*cfsm.Signal]bool),
		emitVals: make(map[*cfsm.Signal]expr.Expr),
	}
	if err := expandMachine(0, seed); err != nil {
		return nil, err
	}
	return prod, nil
}

func findSignal(sigs []*cfsm.Signal, name string) *cfsm.Signal {
	for _, s := range sigs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func copySigSet(m map[*cfsm.Signal]bool) map[*cfsm.Signal]bool {
	out := make(map[*cfsm.Signal]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copySigExpr(m map[*cfsm.Signal]expr.Expr) map[*cfsm.Signal]expr.Expr {
	out := make(map[*cfsm.Signal]expr.Expr, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// addCond appends a condition, reporting a conflict with an existing
// condition on the same test.
func addCond(conds []cfsm.Cond, c cfsm.Cond) ([]cfsm.Cond, bool) {
	for _, old := range conds {
		if old.Test == c.Test {
			if old.Val != c.Val {
				return conds, true
			}
			return conds, false
		}
	}
	return append(conds, c), false
}
