package baseline

import (
	"math/rand"
	"sort"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/expr"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

// pipelineNet is a three-stage network: a filter scales an input
// sample, a threshold stage raises an internal alarm event, and an
// alarm manager latches it until reset.
func pipelineNet() (*cfsm.Network, *cfsm.Signal, *cfsm.Signal, *cfsm.Signal, *cfsm.Signal) {
	n := cfsm.NewNetwork("pipe")
	sample := n.NewSignal("sample", false) // primary in, valued
	reset := n.NewSignal("reset", true)    // primary in, pure
	level := n.NewSignal("level", false)   // internal, valued
	alarm := n.NewSignal("alarm", true)    // internal, pure
	out := n.NewSignal("out", false)       // primary out, valued
	buzz := n.NewSignal("buzz", true)      // primary out, pure

	filter := cfsm.New("filter")
	filter.AttachInput(sample)
	filter.AttachOutput(level)
	fp := filter.Present(sample)
	filter.AddTransition([]cfsm.Cond{cfsm.On(fp, 1)},
		filter.EmitV(level, expr.Mul(expr.V("?sample"), expr.C(2))))

	thresh := cfsm.New("thresh")
	thresh.AttachInput(level)
	thresh.AttachOutput(alarm)
	thresh.AttachOutput(out)
	tp := thresh.Present(level)
	hi := thresh.Pred(expr.Gt(expr.V("?level"), expr.C(6)))
	thresh.AddTransition([]cfsm.Cond{cfsm.On(tp, 1), cfsm.On(hi, 1)},
		thresh.Emit(alarm), thresh.EmitV(out, expr.V("?level")))
	thresh.AddTransition([]cfsm.Cond{cfsm.On(tp, 1), cfsm.On(hi, 0)},
		thresh.EmitV(out, expr.V("?level")))

	mgr := cfsm.New("mgr")
	mgr.AttachInput(alarm)
	mgr.AttachInput(reset)
	mgr.AttachOutput(buzz)
	latched := mgr.AddState("latched", 2, 0)
	ap := mgr.Present(alarm)
	rp := mgr.Present(reset)
	sel := mgr.Sel(latched)
	mgr.AddTransition([]cfsm.Cond{cfsm.On(rp, 1), cfsm.On(sel, 1)},
		mgr.Assign(latched, expr.C(0)))
	mgr.AddTransition([]cfsm.Cond{cfsm.On(rp, 0), cfsm.On(ap, 1), cfsm.On(sel, 0)},
		mgr.Assign(latched, expr.C(1)), mgr.Emit(buzz))

	if err := n.Add(filter); err != nil {
		panic(err)
	}
	if err := n.Add(thresh); err != nil {
		panic(err)
	}
	if err := n.Add(mgr); err != nil {
		panic(err)
	}
	return n, sample, reset, out, buzz
}

func sortedEmNames(ems []cfsm.Emission) []string {
	out := make([]string, len(ems))
	for i, e := range ems {
		out[i] = e.Signal.Name + ":" + string(rune('0'+e.Value%64))
	}
	sort.Strings(out)
	return out
}

func TestNetworkHelpers(t *testing.T) {
	n, sample, reset, out, buzz := pipelineNet()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	pin := n.PrimaryInputs()
	if len(pin) != 2 {
		t.Errorf("primary inputs: %v", pin)
	}
	pout := n.PrimaryOutputs()
	if len(pout) != 2 {
		t.Errorf("primary outputs: %v", pout)
	}
	if len(n.InternalSignals()) != 2 {
		t.Errorf("internal: %v", n.InternalSignals())
	}
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, m := range order {
		pos[m.Name] = i
	}
	if !(pos["filter"] < pos["thresh"] && pos["thresh"] < pos["mgr"]) {
		t.Errorf("topo order wrong: %v", pos)
	}
	_ = sample
	_ = reset
	_ = out
	_ = buzz
}

func TestTopoDetectsCycle(t *testing.T) {
	n := cfsm.NewNetwork("cyc")
	a := n.NewSignal("a", true)
	b := n.NewSignal("b", true)
	m1 := cfsm.New("m1")
	m1.AttachInput(a)
	m1.AttachOutput(b)
	p1 := m1.Present(a)
	m1.AddTransition([]cfsm.Cond{cfsm.On(p1, 1)}, m1.Emit(b))
	m2 := cfsm.New("m2")
	m2.AttachInput(b)
	m2.AttachOutput(a)
	p2 := m2.Present(b)
	m2.AddTransition([]cfsm.Cond{cfsm.On(p2, 1)}, m2.Emit(a))
	if err := n.Add(m1); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(m2); err != nil {
		t.Fatal(err)
	}
	if _, err := n.TopoOrder(); err == nil {
		t.Error("causality cycle must be detected")
	}
}

func TestSingleFSMEquivalentToSyncReference(t *testing.T) {
	n, sample, reset, _, _ := pipelineNet()
	prod, err := SingleFSM(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := prod.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}

	// Run both for many random ticks and compare primary outputs and
	// state evolution.
	rng := rand.New(rand.NewSource(41))
	refState := InitialNetState(n)
	prodSnap := prod.NewSnapshot()
	for tick := 0; tick < 500; tick++ {
		present := map[*cfsm.Signal]bool{}
		values := map[*cfsm.Signal]int64{}
		if rng.Intn(2) == 1 {
			present[sample] = true
			values[sample] = int64(rng.Intn(8))
		}
		if rng.Intn(4) == 0 {
			present[reset] = true
		}

		refOut := SyncTick(n, order, refState, present, values)

		prodSnap.Present = present
		prodSnap.Values = values
		r := prod.React(prodSnap)
		prodSnap.State = r.NextState

		a := sortedEmNames(refOut)
		b := sortedEmNames(r.Emitted)
		if len(a) != len(b) {
			t.Fatalf("tick %d: outputs %v vs %v", tick, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("tick %d: outputs %v vs %v", tick, a, b)
			}
		}
		// Product state mirrors the reference state by variable name.
		for sv, val := range refState {
			for _, psv := range prod.States {
				if psv.Name == sv.Name && prodSnap.State[psv] != val {
					t.Fatalf("tick %d: state %s: ref %d vs prod %d",
						tick, sv.Name, val, prodSnap.State[psv])
				}
			}
		}
	}
}

func TestSingleFSMBlowsUp(t *testing.T) {
	// The product has (roughly) the product of per-machine choices:
	// far more transitions than the sum of the parts.
	n, _, _, _, _ := pipelineNet()
	prod, err := SingleFSM(n)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, m := range n.Machines {
		sum += len(m.Trans)
	}
	if len(prod.Trans) <= sum {
		t.Errorf("product has %d transitions, parts sum to %d: expected blow-up",
			len(prod.Trans), sum)
	}
}

func TestSingleFSMCodegen(t *testing.T) {
	// The product must flow through the standard synthesis path.
	n, _, _, _, _ := pipelineNet()
	prod, err := SingleFSM(n)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cfsm.BuildReactive(prod)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sgraph.Build(r, sgraph.OrderSiftAfterSupport)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Assemble(g, codegen.NewSignalMap(prod), codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if vm.HC11().CodeSize(p) <= 0 {
		t.Error("empty product program")
	}
}

func twoLevelCFSM() *cfsm.CFSM {
	c := cfsm.New("belt")
	key := c.AddInput("key_on", true)
	belt := c.AddInput("belt_on", true)
	end := c.AddInput("end_t", true)
	alarm := c.AddOutput("alarm", true)
	st := c.AddState("bst", 3, 0)
	pk, pb, pe := c.Present(key), c.Present(belt), c.Present(end)
	sel := c.Sel(st)
	// 0=idle, 1=waiting, 2=alarming
	c.AddTransition([]cfsm.Cond{cfsm.On(sel, 0), cfsm.On(pk, 1), cfsm.On(pb, 0)},
		c.Assign(st, expr.C(1)))
	c.AddTransition([]cfsm.Cond{cfsm.On(sel, 1), cfsm.On(pb, 1)},
		c.Assign(st, expr.C(0)))
	c.AddTransition([]cfsm.Cond{cfsm.On(sel, 1), cfsm.On(pb, 0), cfsm.On(pe, 1)},
		c.Assign(st, expr.C(2)), c.Emit(alarm))
	c.AddTransition([]cfsm.Cond{cfsm.On(sel, 2), cfsm.On(pb, 1)},
		c.Assign(st, expr.C(0)))
	return c
}

func TestTwoLevelJumpEquiv(t *testing.T) {
	c := twoLevelCFSM()
	sigs := codegen.NewSignalMap(c)
	p, err := TwoLevelJump(c, sigs, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof := vm.HC11()
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 300; i++ {
		snap := c.NewSnapshot()
		for _, in := range c.Inputs {
			snap.Present[in] = rng.Intn(2) == 1
		}
		for _, sv := range c.States {
			snap.State[sv] = int64(rng.Intn(sv.Domain))
		}
		want := c.React(snap)

		h := newSnapHost(sigs, snap)
		m := vm.NewMachine(prof, p.Words, h)
		for _, sv := range c.States {
			m.Mem[p.Symbols["st_"+sv.Name]] = snap.State[sv]
		}
		if _, err := m.Run(p, codegen.EntryLabel(c)); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if len(h.emitted) != len(want.Emitted) {
			t.Fatalf("iter %d: emissions %v vs %v", i, h.emitted, want.Emitted)
		}
		for _, sv := range c.States {
			if m.Mem[p.Symbols["st_"+sv.Name]] != want.NextState[sv] {
				t.Fatalf("iter %d: state mismatch", i)
			}
		}
	}
}

func TestTwoLevelVsSGraphSizes(t *testing.T) {
	// Table II's qualitative ordering: two-level jump bigger than the
	// sifted decision graph.
	c := twoLevelCFSM()
	sigs := codegen.NewSignalMap(c)
	two, err := TwoLevelJump(c, sigs, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := cfsm.BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sgraph.Build(r, sgraph.OrderSiftAfterSupport)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := codegen.Assemble(g, sigs, codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof := vm.HC11()
	if prof.CodeSize(two) <= prof.CodeSize(tree) {
		t.Errorf("two-level (%d B) should exceed sifted decision graph (%d B)",
			prof.CodeSize(two), prof.CodeSize(tree))
	}
}

func TestTwoLevelRejectsTooManyTests(t *testing.T) {
	c := cfsm.New("wide")
	o := c.AddOutput("o", true)
	var conds []cfsm.Cond
	for i := 0; i < 14; i++ {
		in := c.AddInput(string(rune('a'+i)), true)
		conds = append(conds, cfsm.On(c.Present(in), 1))
	}
	c.AddTransition(conds, c.Emit(o))
	if _, err := TwoLevelJump(c, codegen.NewSignalMap(c), codegen.Options{}); err == nil {
		t.Error("14 boolean tests must be rejected")
	}
}

// snapHost mirrors the codegen test host.
type snapHost struct {
	byID    map[int]*cfsm.Signal
	snap    cfsm.Snapshot
	emitted []cfsm.Emission
}

func newSnapHost(sigs codegen.SignalMap, snap cfsm.Snapshot) *snapHost {
	h := &snapHost{byID: make(map[int]*cfsm.Signal), snap: snap}
	for s, id := range sigs {
		h.byID[id] = s
	}
	return h
}

func (h *snapHost) Present(sig int) bool { return h.snap.Present[h.byID[sig]] }
func (h *snapHost) Value(sig int) int64  { return h.snap.Values[h.byID[sig]] }
func (h *snapHost) Emit(sig int) {
	h.emitted = append(h.emitted, cfsm.Emission{Signal: h.byID[sig]})
}
func (h *snapHost) EmitValue(sig int, v int64) {
	h.emitted = append(h.emitted, cfsm.Emission{Signal: h.byID[sig], Value: v})
}
