package vm

import (
	"strings"
	"testing"

	"polis/internal/expr"
)

func TestStraightLine(t *testing.T) {
	p := NewProgram("t")
	x := p.Alloc("x")
	y := p.Alloc("y")
	p.Emit(Instr{Op: LDI, Rd: 1, Imm: 40})
	p.Emit(Instr{Op: LDI, Rd: 2, Imm: 2})
	p.Emit(Instr{Op: ALU, AOp: expr.OpAdd, Rd: 1, Rs: 2})
	p.Emit(Instr{Op: ST, Addr: x, Rs: 1})
	p.Emit(Instr{Op: LD, Rd: 3, Addr: x})
	p.Emit(Instr{Op: ST, Addr: y, Rs: 3})
	p.Emit(Instr{Op: HALT})
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(HC11(), p.Words, nil)
	cycles, err := m.Run(p, "")
	if err != nil {
		t.Fatal(err)
	}
	if m.Mem[y] != 42 {
		t.Errorf("y = %d, want 42", m.Mem[y])
	}
	// 2+2 (ldi) + 7 (add) + 4+4+4 (st/ld/st) + 2 (halt) = 25
	if cycles != 25 {
		t.Errorf("cycles = %d, want 25", cycles)
	}
}

func TestBranching(t *testing.T) {
	p := NewProgram("b")
	p.Emit(Instr{Op: LDI, Rd: 1, Imm: 5})
	p.Emit(Instr{Op: LDI, Rd: 2, Imm: 5})
	p.Emit(Instr{Op: BR, Cond: CondEQ, Rs: 1, Rt: 2, Label: "eq"})
	p.Emit(Instr{Op: LDI, Rd: 0, Imm: 0})
	p.Emit(Instr{Op: HALT})
	if err := p.Mark("eq"); err != nil {
		t.Fatal(err)
	}
	p.Emit(Instr{Op: LDI, Rd: 0, Imm: 1})
	p.Emit(Instr{Op: HALT})
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(R3K(), 0, nil)
	if _, err := m.Run(p, ""); err != nil {
		t.Fatal(err)
	}
	if m.Regs[0] != 1 {
		t.Errorf("taken branch not taken: r0=%d", m.Regs[0])
	}
}

func TestConds(t *testing.T) {
	cases := []struct {
		c       Cond
		a, b    int64
		expects bool
	}{
		{CondEQ, 3, 3, true}, {CondEQ, 3, 4, false},
		{CondNE, 3, 4, true}, {CondNE, 4, 4, false},
		{CondLT, 2, 3, true}, {CondLT, 3, 3, false},
		{CondLE, 3, 3, true}, {CondLE, 4, 3, false},
		{CondGT, 4, 3, true}, {CondGT, 3, 3, false},
		{CondGE, 3, 3, true}, {CondGE, 2, 3, false},
	}
	for _, c := range cases {
		if got := c.c.Holds(c.a, c.b); got != c.expects {
			t.Errorf("%v(%d,%d) = %v", c.c, c.a, c.b, got)
		}
	}
}

func TestJumpTable(t *testing.T) {
	p := NewProgram("jt")
	p.Emit(Instr{Op: JTAB, Rs: 1, Table: []string{"l0", "l1", "l2"}})
	for i := 0; i < 3; i++ {
		if err := p.Mark([]string{"l0", "l1", "l2"}[i]); err != nil {
			t.Fatal(err)
		}
		p.Emit(Instr{Op: LDI, Rd: 0, Imm: int64(10 + i)})
		p.Emit(Instr{Op: HALT})
	}
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	for idx := int64(0); idx < 3; idx++ {
		m := NewMachine(HC11(), 0, nil)
		m.Regs[1] = idx
		if _, err := m.Run(p, ""); err != nil {
			t.Fatal(err)
		}
		if m.Regs[0] != 10+idx {
			t.Errorf("jtab[%d]: r0=%d", idx, m.Regs[0])
		}
	}
	// Out of range must error.
	m := NewMachine(HC11(), 0, nil)
	m.Regs[1] = 9
	if _, err := m.Run(p, ""); err == nil {
		t.Error("out-of-range jump table index must fail")
	}
}

type recHost struct {
	present map[int]bool
	values  map[int]int64
	emitted []int
	emitsV  map[int]int64
}

func newRecHost() *recHost {
	return &recHost{
		present: map[int]bool{},
		values:  map[int]int64{},
		emitsV:  map[int]int64{},
	}
}
func (h *recHost) Present(s int) bool       { return h.present[s] }
func (h *recHost) Value(s int) int64        { return h.values[s] }
func (h *recHost) Emit(s int)               { h.emitted = append(h.emitted, s) }
func (h *recHost) EmitValue(s int, v int64) { h.emitted = append(h.emitted, s); h.emitsV[s] = v }

func TestSVC(t *testing.T) {
	p := NewProgram("svc")
	p.Emit(Instr{Op: SVC, Num: SvcPresent, Imm: 3})
	p.Emit(Instr{Op: BRZ, Rs: 0, Label: "out"})
	p.Emit(Instr{Op: SVC, Num: SvcValue, Imm: 3})
	p.Emit(Instr{Op: MOV, Rd: 1, Rs: 0})
	p.Emit(Instr{Op: SVC, Num: SvcEmitV, Imm: 7, Rs: 1})
	if err := p.Mark("out"); err != nil {
		t.Fatal(err)
	}
	p.Emit(Instr{Op: HALT})
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	h := newRecHost()
	h.present[3] = true
	h.values[3] = 99
	m := NewMachine(HC11(), 0, h)
	if _, err := m.Run(p, ""); err != nil {
		t.Fatal(err)
	}
	if len(h.emitted) != 1 || h.emitted[0] != 7 || h.emitsV[7] != 99 {
		t.Errorf("svc emission wrong: %+v", h)
	}
	// Absent event: skip.
	h2 := newRecHost()
	m2 := NewMachine(HC11(), 0, h2)
	if _, err := m2.Run(p, ""); err != nil {
		t.Fatal(err)
	}
	if len(h2.emitted) != 0 {
		t.Error("must not emit when absent")
	}
}

func TestSafeDivisionInALU(t *testing.T) {
	p := NewProgram("div")
	p.Emit(Instr{Op: LDI, Rd: 1, Imm: 10})
	p.Emit(Instr{Op: LDI, Rd: 2, Imm: 0})
	p.Emit(Instr{Op: ALU, AOp: expr.OpDiv, Rd: 1, Rs: 2})
	p.Emit(Instr{Op: HALT})
	m := NewMachine(R3K(), 0, nil)
	if _, err := m.Run(p, ""); err != nil {
		t.Fatal(err)
	}
	if m.Regs[1] != 0 {
		t.Errorf("10/0 must be 0 (safe), got %d", m.Regs[1])
	}
}

func TestAnalyzeCyclesMatchesExecution(t *testing.T) {
	// Two-path program: measure both paths by running, compare with
	// static analysis.
	p := NewProgram("two")
	p.Emit(Instr{Op: SVC, Num: SvcPresent, Imm: 0})
	p.Emit(Instr{Op: BRZ, Rs: 0, Label: "skip"})
	p.Emit(Instr{Op: LDI, Rd: 1, Imm: 1})
	p.Emit(Instr{Op: ALU, AOp: expr.OpMul, Rd: 1, Rs: 1})
	p.Emit(Instr{Op: SVC, Num: SvcEmit, Imm: 1})
	if err := p.Mark("skip"); err != nil {
		t.Fatal(err)
	}
	p.Emit(Instr{Op: HALT})
	if err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	prof := HC11()
	pc, err := AnalyzeCycles(prof, p, "")
	if err != nil {
		t.Fatal(err)
	}
	// Execute the short path.
	h := newRecHost()
	m := NewMachine(prof, 0, h)
	shortCycles, err := m.Run(p, "")
	if err != nil {
		t.Fatal(err)
	}
	// Execute the long path.
	h.present[0] = true
	m2 := NewMachine(prof, 0, h)
	longCycles, err := m2.Run(p, "")
	if err != nil {
		t.Fatal(err)
	}
	if pc.Min != shortCycles {
		t.Errorf("static min %d vs executed %d", pc.Min, shortCycles)
	}
	if pc.Max != longCycles {
		t.Errorf("static max %d vs executed %d", pc.Max, longCycles)
	}
}

func TestAnalyzeDetectsLoop(t *testing.T) {
	p := NewProgram("loop")
	if err := p.Mark("top"); err != nil {
		t.Fatal(err)
	}
	p.Emit(Instr{Op: JMP, Label: "top"})
	if _, err := AnalyzeCycles(HC11(), p, ""); err == nil {
		t.Error("loop must be detected")
	}
}

func TestLayoutShortBranches(t *testing.T) {
	prof := HC11()
	p := NewProgram("near")
	p.Emit(Instr{Op: BRZ, Rs: 0, Label: "end"})
	p.Emit(Instr{Op: NOP})
	if err := p.Mark("end"); err != nil {
		t.Fatal(err)
	}
	p.Emit(Instr{Op: HALT})
	size := prof.CodeSize(p)
	// short branch (2) + nop (1) + halt (1) = 4
	if size != 4 {
		t.Errorf("near-branch size = %d, want 4", size)
	}

	// Far branch: pad beyond the short range.
	p2 := NewProgram("far")
	p2.Emit(Instr{Op: BRZ, Rs: 0, Label: "end"})
	for i := 0; i < 200; i++ {
		p2.Emit(Instr{Op: NOP})
	}
	if err := p2.Mark("end"); err != nil {
		t.Fatal(err)
	}
	p2.Emit(Instr{Op: HALT})
	size2 := prof.CodeSize(p2)
	// long branch (3) + 200 nops + halt
	if size2 != 3+200+1 {
		t.Errorf("far-branch size = %d, want 204", size2)
	}
}

func TestR3KUniformSize(t *testing.T) {
	prof := R3K()
	p := NewProgram("u")
	p.Emit(Instr{Op: LDI, Rd: 0, Imm: 1})
	p.Emit(Instr{Op: BRZ, Rs: 0, Label: "x"})
	if err := p.Mark("x"); err != nil {
		t.Fatal(err)
	}
	p.Emit(Instr{Op: HALT})
	if got := prof.CodeSize(p); got != 12 {
		t.Errorf("R3K size = %d, want 12", got)
	}
}

func TestResolveCatchesUndefined(t *testing.T) {
	p := NewProgram("bad")
	p.Emit(Instr{Op: JMP, Label: "nowhere"})
	if err := p.Resolve(); err == nil {
		t.Error("undefined label must be reported")
	}
}

func TestAllocDedup(t *testing.T) {
	p := NewProgram("a")
	a1 := p.Alloc("x")
	a2 := p.Alloc("x")
	a3 := p.Alloc("y")
	if a1 != a2 || a1 == a3 || p.Words != 2 {
		t.Errorf("alloc: %d %d %d words=%d", a1, a2, a3, p.Words)
	}
}

func TestListing(t *testing.T) {
	p := NewProgram("l")
	p.Emit(Instr{Op: LDI, Rd: 1, Imm: 3, Comment: "init"})
	p.Emit(Instr{Op: HALT})
	lst := p.Listing()
	if !strings.Contains(lst, "ldi") || !strings.Contains(lst, "init") {
		t.Errorf("listing malformed:\n%s", lst)
	}
}

func TestStepLimit(t *testing.T) {
	p := NewProgram("inf")
	if err := p.Mark("top"); err != nil {
		t.Fatal(err)
	}
	p.Emit(Instr{Op: JMP, Label: "top"})
	m := NewMachine(R3K(), 0, nil)
	m.MaxSteps = 100
	if _, err := m.Run(p, ""); err == nil {
		t.Error("step limit must trigger")
	}
}
