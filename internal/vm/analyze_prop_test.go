package vm

import (
	"fmt"
	"math/rand"
	"testing"

	"polis/internal/expr"
)

// randHost answers presence/value queries pseudo-randomly but
// deterministically per seed.
type randHost struct{ r *rand.Rand }

func (h *randHost) Present(sig int) bool { return h.r.Intn(2) == 1 }
func (h *randHost) Value(sig int) int64  { return h.r.Int63n(8) }
func (h *randHost) Emit(int)             {}
func (h *randHost) EmitValue(int, int64) {}

// randomDAGProgram generates a random forward-branching (acyclic)
// program: branches and jump tables only ever target later labels.
func randomDAGProgram(r *rand.Rand) *Program {
	p := NewProgram("fuzz")
	for i := 0; i < 4; i++ {
		p.Alloc(fmt.Sprintf("w%d", i))
	}
	nBlocks := 3 + r.Intn(6)
	label := func(i int) string { return fmt.Sprintf("b%d", i) }
	for b := 0; b < nBlocks; b++ {
		_ = p.Mark(label(b))
		// A few straight-line instructions.
		for k := 0; k < r.Intn(4); k++ {
			switch r.Intn(6) {
			case 0:
				p.Emit(Instr{Op: LDI, Rd: 1 + r.Intn(3), Imm: r.Int63n(16)})
			case 1:
				p.Emit(Instr{Op: LD, Rd: 1 + r.Intn(3), Addr: r.Intn(4)})
			case 2:
				p.Emit(Instr{Op: ST, Addr: r.Intn(4), Rs: 1 + r.Intn(3)})
			case 3:
				ops := []expr.Op{expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv, expr.OpMin}
				p.Emit(Instr{Op: ALU, AOp: ops[r.Intn(len(ops))], Rd: 1 + r.Intn(3), Rs: 1 + r.Intn(3)})
			case 4:
				p.Emit(Instr{Op: SVC, Num: SvcPresent, Imm: int64(r.Intn(3))})
			default:
				p.Emit(Instr{Op: MOV, Rd: 1 + r.Intn(3), Rs: r.Intn(4)})
			}
		}
		// Terminator: fall through, forward branch, forward jump
		// table, or halt.
		if b == nBlocks-1 {
			p.Emit(Instr{Op: HALT})
			break
		}
		switch r.Intn(4) {
		case 0:
			// fall through
		case 1:
			tgt := b + 1 + r.Intn(nBlocks-b-1)
			p.Emit(Instr{Op: SVC, Num: SvcPresent, Imm: 0})
			p.Emit(Instr{Op: BRNZ, Rs: 0, Label: label(tgt)})
		case 2:
			tgt := b + 1 + r.Intn(nBlocks-b-1)
			p.Emit(Instr{Op: JMP, Label: label(tgt)})
		default:
			// Jump table over 2-3 forward targets, indexed by a
			// freshly bounded register.
			n := 2 + r.Intn(2)
			table := make([]string, n)
			for i := range table {
				table[i] = label(b + 1 + r.Intn(nBlocks-b-1))
			}
			p.Emit(Instr{Op: SVC, Num: SvcValue, Imm: 0}) // r0 in [0,8)
			p.Emit(Instr{Op: LDI, Rd: 1, Imm: int64(n - 1)})
			p.Emit(Instr{Op: ALU, AOp: expr.OpMin, Rd: 1, Rs: 0})
			// rd = min(n-1, r0) could leave r1 = r0 when small; either
			// way the index is within [0, n).
			p.Emit(Instr{Op: MOV, Rd: 2, Rs: 1})
			p.Emit(Instr{Op: JTAB, Rs: 2, Table: table})
		}
	}
	if err := p.Resolve(); err != nil {
		panic(err)
	}
	return p
}

// TestAnalyzeBoundsExecution: for random acyclic programs and random
// environments, every concrete execution's cycle count lies within the
// static [Min, Max] bounds.
func TestAnalyzeBoundsExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	programs := 80
	if testing.Short() {
		programs = 20
	}
	for pi := 0; pi < programs; pi++ {
		p := randomDAGProgram(rng)
		for _, prof := range []*Profile{HC11(), R3K()} {
			pc, err := AnalyzeCycles(prof, p, "")
			if err != nil {
				t.Fatalf("program %d: %v\n%s", pi, err, p.Listing())
			}
			if pc.Min > pc.Max {
				t.Fatalf("program %d: min %d > max %d", pi, pc.Min, pc.Max)
			}
			for run := 0; run < 10; run++ {
				m := NewMachine(prof, p.Words, &randHost{r: rand.New(rand.NewSource(int64(pi*100 + run)))})
				got, err := m.Run(p, "")
				if err != nil {
					t.Fatalf("program %d run %d: %v\n%s", pi, run, err, p.Listing())
				}
				if got < pc.Min || got > pc.Max {
					t.Fatalf("program %d run %d: %d cycles outside [%d, %d]\n%s",
						pi, run, got, pc.Min, pc.Max, p.Listing())
				}
			}
		}
	}
}

// TestLayoutMonotone: adding instructions never shrinks the code.
func TestLayoutMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		p := randomDAGProgram(rng)
		prof := HC11()
		before := prof.CodeSize(p)
		p.Instrs = append(p.Instrs, Instr{Op: NOP}, Instr{Op: HALT})
		after := prof.CodeSize(p)
		if after <= before {
			t.Fatalf("adding instructions shrank the program: %d -> %d", before, after)
		}
	}
}
