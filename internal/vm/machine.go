package vm

import (
	"fmt"

	"polis/internal/expr"
)

// NumRegs is the number of general-purpose registers.
const NumRegs = 8

// Host provides the RTOS services the SVC instruction traps into:
// event presence/value queries and event emission. The generated CFSM
// routines know signals by small integer ids assigned at code
// generation time.
type Host interface {
	Present(sig int) bool
	Value(sig int) int64
	Emit(sig int)
	EmitValue(sig int, v int64)
}

// NopHost ignores emissions and reports no events; useful for
// size/timing measurements that do not depend on the environment.
type NopHost struct{}

// Present implements Host.
func (NopHost) Present(int) bool { return false }

// Value implements Host.
func (NopHost) Value(int) int64 { return 0 }

// Emit implements Host.
func (NopHost) Emit(int) {}

// EmitValue implements Host.
func (NopHost) EmitValue(int, int64) {}

// Machine executes programs under a cost profile, counting exact
// cycles.
type Machine struct {
	Prof *Profile
	Regs [NumRegs]int64
	Mem  []int64
	Host Host

	// Cycles accumulates execution time across Run calls.
	Cycles int64
	// MaxSteps guards against runaway programs (default 1<<20).
	MaxSteps int
}

// NewMachine creates a machine with the given data memory size.
func NewMachine(prof *Profile, words int, host Host) *Machine {
	if host == nil {
		host = NopHost{}
	}
	return &Machine{
		Prof:     prof,
		Mem:      make([]int64, words),
		Host:     host,
		MaxSteps: 1 << 20,
	}
}

// Run executes prog from the instruction at the given label (or index
// 0 if label is empty) until HALT, returning the cycles consumed by
// this run.
func (m *Machine) Run(prog *Program, label string) (int64, error) {
	pc := 0
	if label != "" {
		idx, ok := prog.Labels[label]
		if !ok {
			return 0, fmt.Errorf("vm: unknown entry label %q", label)
		}
		pc = idx
	}
	start := m.Cycles
	steps := 0
	for {
		if steps++; steps > m.MaxSteps {
			return 0, fmt.Errorf("vm: step limit exceeded in %s", prog.Name)
		}
		if pc < 0 || pc >= len(prog.Instrs) {
			return 0, fmt.Errorf("vm: pc %d out of range in %s", pc, prog.Name)
		}
		in := &prog.Instrs[pc]
		m.Cycles += int64(m.Prof.Cyc[in.Op])
		switch in.Op {
		case NOP:
			pc++
		case LDI:
			m.Regs[in.Rd] = in.Imm
			pc++
		case LD:
			if in.Addr < 0 || in.Addr >= len(m.Mem) {
				return 0, fmt.Errorf("vm: load address %d out of range", in.Addr)
			}
			m.Regs[in.Rd] = m.Mem[in.Addr]
			pc++
		case ST:
			if in.Addr < 0 || in.Addr >= len(m.Mem) {
				return 0, fmt.Errorf("vm: store address %d out of range", in.Addr)
			}
			m.Mem[in.Addr] = m.Regs[in.Rs]
			pc++
		case MOV:
			m.Regs[in.Rd] = m.Regs[in.Rs]
			pc++
		case ALU:
			// Replace the base ALU cost with the operator cost.
			m.Cycles += int64(m.Prof.ALUCycles(in.AOp) - m.Prof.Cyc[ALU])
			m.Regs[in.Rd] = aluEval(in.AOp, m.Regs[in.Rd], m.Regs[in.Rs])
			pc++
		case NEG:
			m.Regs[in.Rd] = -m.Regs[in.Rd]
			pc++
		case NOT:
			if m.Regs[in.Rd] == 0 {
				m.Regs[in.Rd] = 1
			} else {
				m.Regs[in.Rd] = 0
			}
			pc++
		case BR:
			if in.Cond.Holds(m.Regs[in.Rs], m.Regs[in.Rt]) {
				m.Cycles += int64(m.Prof.TakenExtra)
				pc = prog.Labels[in.Label]
			} else {
				pc++
			}
		case BRZ:
			if m.Regs[in.Rs] == 0 {
				m.Cycles += int64(m.Prof.TakenExtra)
				pc = prog.Labels[in.Label]
			} else {
				pc++
			}
		case BRNZ:
			if m.Regs[in.Rs] != 0 {
				m.Cycles += int64(m.Prof.TakenExtra)
				pc = prog.Labels[in.Label]
			} else {
				pc++
			}
		case JMP:
			pc = prog.Labels[in.Label]
		case JTAB:
			idx := m.Regs[in.Rs]
			if idx < 0 || int(idx) >= len(in.Table) {
				return 0, fmt.Errorf("vm: jump table index %d out of range (%d entries)", idx, len(in.Table))
			}
			m.Cycles += int64(m.Prof.JTabEntryCyc) * idx
			pc = prog.Labels[in.Table[idx]]
		case SVC:
			switch in.Num {
			case SvcPresent:
				if m.Host.Present(int(in.Imm)) {
					m.Regs[0] = 1
				} else {
					m.Regs[0] = 0
				}
			case SvcValue:
				m.Regs[0] = m.Host.Value(int(in.Imm))
			case SvcEmit:
				m.Host.Emit(int(in.Imm))
			case SvcEmitV:
				m.Host.EmitValue(int(in.Imm), m.Regs[in.Rs])
			default:
				return 0, fmt.Errorf("vm: unknown service %d", in.Num)
			}
			pc++
		case HALT:
			return m.Cycles - start, nil
		default:
			return 0, fmt.Errorf("vm: bad opcode %d", in.Op)
		}
	}
}

// aluEval mirrors expr.Bin.Eval's semantics, including safe division.
func aluEval(op expr.Op, a, b int64) int64 {
	return expr.EvalOp(op, a, b)
}
