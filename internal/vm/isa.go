// Package vm implements the simulated embedded target processor the
// reproduction measures against. The paper compiled its generated C
// onto a Motorola 68HC11 (INTROL compiler), a MIPS R3000 and a DEC
// ALPHA; those targets are replaced here by a deterministic,
// cycle-accurate virtual CPU with two cost profiles — an 8-bit
// "HC11-class" micro-controller profile (expensive arithmetic library
// calls, short-branch encodings, slow RTOS traps) and a 32-bit
// "R3K-class" profile (uniform 4-byte instructions, fast ALU). The
// relationships the paper studies — estimated versus measured cost,
// and the relative cost of alternative code structures — only require
// such a fixed, measurable target; absolute byte and cycle values were
// target-specific in the paper as well.
package vm

import (
	"fmt"
	"sort"

	"polis/internal/expr"
)

// OpCode enumerates the virtual instruction set.
type OpCode int

// Instruction opcodes.
const (
	NOP  OpCode = iota
	LDI         // Rd <- Imm
	LD          // Rd <- Mem[Addr]
	ST          // Mem[Addr] <- Rs
	MOV         // Rd <- Rs
	ALU         // Rd <- Rd aop Rs (aop is an expr.Op)
	NEG         // Rd <- -Rd
	NOT         // Rd <- (Rd == 0)
	BR          // if Rs cond Rt then jump Label
	BRZ         // if Rs == 0 then jump Label
	BRNZ        // if Rs != 0 then jump Label
	JMP         // jump Label
	JTAB        // multiway jump: Table[Rs] (Rs must be in range)
	SVC         // RTOS service call (Num selects the service)
	HALT        // end of routine
	numOpcodes
)

var opcodeNames = [...]string{
	NOP: "nop", LDI: "ldi", LD: "ld", ST: "st", MOV: "mov", ALU: "alu",
	NEG: "neg", NOT: "not", BR: "br", BRZ: "brz", BRNZ: "brnz",
	JMP: "jmp", JTAB: "jtab", SVC: "svc", HALT: "halt",
}

func (o OpCode) String() string { return opcodeNames[o] }

// Cond is the comparison of a BR instruction.
type Cond int

// Branch conditions.
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
)

var condNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

func (c Cond) String() string { return condNames[c] }

// Holds reports whether the condition holds for the operand values.
func (c Cond) Holds(a, b int64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	case CondLE:
		return a <= b
	case CondGT:
		return a > b
	default:
		return a >= b
	}
}

// Service numbers for SVC.
const (
	SvcPresent = iota // r0 <- presence flag of signal Num arg (Imm)
	SvcValue          // r0 <- value of input signal Imm
	SvcEmit           // emit pure signal Imm
	SvcEmitV          // emit signal Imm with value in Rs
)

// Instr is one virtual instruction. Fields are used according to Op.
type Instr struct {
	Op    OpCode
	Rd    int
	Rs    int
	Rt    int
	Cond  Cond
	AOp   expr.Op
	Imm   int64
	Addr  int
	Num   int      // SVC service number
	Label string   // branch/jump target
	Table []string // JTAB targets
	// Comment annotates listings with the originating s-graph
	// vertex; it has no semantic effect.
	Comment string
}

// Program is an assembled routine: a label map plus the instruction
// stream. Addresses index the data memory of the machine; Words is
// the number of data words the routine uses.
type Program struct {
	Name    string
	Instrs  []Instr
	Labels  map[string]int // label -> instruction index
	Words   int            // data memory footprint in words
	Symbols map[string]int // variable name -> address, for listings
}

// NewProgram creates an empty program.
func NewProgram(name string) *Program {
	return &Program{
		Name:    name,
		Labels:  make(map[string]int),
		Symbols: make(map[string]int),
	}
}

// Emit appends an instruction and returns its index.
func (p *Program) Emit(i Instr) int {
	p.Instrs = append(p.Instrs, i)
	return len(p.Instrs) - 1
}

// Mark defines a label at the current position.
func (p *Program) Mark(label string) error {
	if _, dup := p.Labels[label]; dup {
		return fmt.Errorf("vm: duplicate label %q", label)
	}
	p.Labels[label] = len(p.Instrs)
	return nil
}

// Alloc reserves a data word for the named variable and returns its
// address. Repeated calls with one name return the same address.
func (p *Program) Alloc(name string) int {
	if a, ok := p.Symbols[name]; ok {
		return a
	}
	a := p.Words
	p.Symbols[name] = a
	p.Words++
	return a
}

// Resolve verifies every referenced label exists.
func (p *Program) Resolve() error {
	check := func(l string) error {
		if l == "" {
			return fmt.Errorf("vm: empty label")
		}
		if _, ok := p.Labels[l]; !ok {
			return fmt.Errorf("vm: undefined label %q", l)
		}
		return nil
	}
	for i, in := range p.Instrs {
		switch in.Op {
		case BR, BRZ, BRNZ, JMP:
			if err := check(in.Label); err != nil {
				return fmt.Errorf("instr %d: %w", i, err)
			}
		case JTAB:
			if len(in.Table) == 0 {
				return fmt.Errorf("instr %d: empty jump table", i)
			}
			for _, l := range in.Table {
				if err := check(l); err != nil {
					return fmt.Errorf("instr %d: %w", i, err)
				}
			}
		}
	}
	return nil
}

// Listing renders a human-readable assembly listing.
func (p *Program) Listing() string {
	byIndex := make(map[int][]string)
	for l, i := range p.Labels {
		byIndex[i] = append(byIndex[i], l)
	}
	for _, ls := range byIndex {
		sort.Strings(ls)
	}
	var b []byte
	appendf := func(format string, args ...interface{}) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	appendf("; routine %s (%d words of data)\n", p.Name, p.Words)
	for i, in := range p.Instrs {
		for _, l := range byIndex[i] {
			appendf("%s:\n", l)
		}
		appendf("  %-5s", in.Op)
		switch in.Op {
		case LDI:
			appendf(" r%d, #%d", in.Rd, in.Imm)
		case LD:
			appendf(" r%d, [%d]", in.Rd, in.Addr)
		case ST:
			appendf(" [%d], r%d", in.Addr, in.Rs)
		case MOV:
			appendf(" r%d, r%d", in.Rd, in.Rs)
		case ALU:
			appendf("."+in.AOp.Name()+" r%d, r%d", in.Rd, in.Rs)
		case NEG, NOT:
			appendf(" r%d", in.Rd)
		case BR:
			appendf(".%s r%d, r%d, %s", in.Cond, in.Rs, in.Rt, in.Label)
		case BRZ, BRNZ:
			appendf(" r%d, %s", in.Rs, in.Label)
		case JMP:
			appendf(" %s", in.Label)
		case JTAB:
			appendf(" r%d, %v", in.Rs, in.Table)
		case SVC:
			appendf(" #%d, sig=%d, r%d", in.Num, in.Imm, in.Rs)
		}
		if in.Comment != "" {
			appendf("  ; %s", in.Comment)
		}
		b = append(b, '\n')
	}
	for _, l := range byIndex[len(p.Instrs)] {
		appendf("%s:\n", l)
	}
	return string(b)
}
