package vm

import "polis/internal/expr"

// Profile is the cost model of one target system: per-instruction
// sizes in bytes and timings in clock cycles, arithmetic library
// costs, and the short-branch encoding the paper's Section II-A3
// mentions ("fewer bits of address for near jumps").
type Profile struct {
	Name string

	// System parameters (the paper's four system characterisation
	// parameters).
	IntBytes  int // size of an integer variable
	PtrBytes  int // size of a pointer
	WordBytes int // natural word size
	ClockKHz  int // CPU clock, for converting cycles to time

	// Size[op] is the encoded size in bytes of each opcode (branches:
	// long form).
	Size [numOpcodes]int
	// ShortBranchSize and ShortBranchRange describe the compact
	// branch encoding: a BR/BRZ/BRNZ/JMP whose byte displacement fits
	// within the range uses the short size. Range 0 disables it.
	ShortBranchSize  int
	ShortBranchRange int
	// JTabEntryBytes is the table cost per JTAB target.
	JTabEntryBytes int

	// Cyc[op] is the base cycle cost of each opcode.
	Cyc [numOpcodes]int
	// TakenExtra is added when a conditional branch is taken.
	TakenExtra int
	// JTabEntryCyc is added per table entry skipped during dispatch
	// (index-scaled dispatch on simple cores; 0 on cores with a
	// direct indexed jump).
	JTabEntryCyc int
	// ALUCyc gives the cycle cost of each arithmetic/relational
	// operator, replacing the base ALU cost (the paper's ~30
	// predefined library functions).
	ALUCyc map[expr.Op]int
}

// ALUCycles returns the cycle cost of an ALU instruction with the
// given operator.
func (p *Profile) ALUCycles(op expr.Op) int {
	if c, ok := p.ALUCyc[op]; ok {
		return c
	}
	return p.Cyc[ALU]
}

// HC11 returns the 8-bit micro-controller profile: multi-byte
// arithmetic through slow library routines, 2-byte short branches
// within ±127 bytes, expensive RTOS traps. Values are synthetic but
// sized like a 2 MHz 68HC11 with a 16-bit int.
func HC11() *Profile {
	p := &Profile{
		Name:      "hc11",
		IntBytes:  2,
		PtrBytes:  2,
		WordBytes: 1,
		ClockKHz:  2000,

		ShortBranchSize:  2,
		ShortBranchRange: 127,
		JTabEntryBytes:   2,
		TakenExtra:       2,
		JTabEntryCyc:     2,
	}
	p.Size = [numOpcodes]int{
		NOP: 1, LDI: 3, LD: 3, ST: 3, MOV: 2, ALU: 3,
		NEG: 2, NOT: 2, BR: 4, BRZ: 3, BRNZ: 3, JMP: 3,
		JTAB: 4, SVC: 3, HALT: 1,
	}
	p.Cyc = [numOpcodes]int{
		NOP: 2, LDI: 2, LD: 4, ST: 4, MOV: 2, ALU: 6,
		NEG: 3, NOT: 3, BR: 4, BRZ: 3, BRNZ: 3, JMP: 3,
		JTAB: 6, SVC: 21, HALT: 2,
	}
	p.ALUCyc = map[expr.Op]int{
		expr.OpAdd: 7, expr.OpSub: 7,
		expr.OpMul: 24, expr.OpDiv: 44, expr.OpMod: 48,
		expr.OpEq: 9, expr.OpNe: 9, expr.OpLt: 10, expr.OpLe: 10,
		expr.OpGt: 10, expr.OpGe: 10,
		expr.OpAnd: 6, expr.OpOr: 6,
		expr.OpBitAnd: 6, expr.OpBitOr: 6, expr.OpBitXor: 6,
		expr.OpShl: 8, expr.OpShr: 8,
		expr.OpMin: 12, expr.OpMax: 12,
	}
	return p
}

// R3K returns the 32-bit RISC profile: uniform 4-byte instructions,
// single-cycle ALU, hardware multiply/divide, no short branches.
// Sized like a 25 MHz R3000.
func R3K() *Profile {
	p := &Profile{
		Name:      "r3k",
		IntBytes:  4,
		PtrBytes:  4,
		WordBytes: 4,
		ClockKHz:  25000,

		ShortBranchSize:  0,
		ShortBranchRange: 0,
		JTabEntryBytes:   4,
		TakenExtra:       1,
		JTabEntryCyc:     0,
	}
	for op := OpCode(0); op < numOpcodes; op++ {
		p.Size[op] = 4
	}
	p.Cyc = [numOpcodes]int{
		NOP: 1, LDI: 1, LD: 2, ST: 1, MOV: 1, ALU: 1,
		NEG: 1, NOT: 1, BR: 1, BRZ: 1, BRNZ: 1, JMP: 1,
		JTAB: 4, SVC: 12, HALT: 1,
	}
	p.ALUCyc = map[expr.Op]int{
		expr.OpAdd: 1, expr.OpSub: 1,
		expr.OpMul: 12, expr.OpDiv: 35, expr.OpMod: 35,
		expr.OpEq: 1, expr.OpNe: 1, expr.OpLt: 1, expr.OpLe: 1,
		expr.OpGt: 1, expr.OpGe: 1,
		expr.OpAnd: 1, expr.OpOr: 1,
		expr.OpBitAnd: 1, expr.OpBitOr: 1, expr.OpBitXor: 1,
		expr.OpShl: 1, expr.OpShr: 1,
		expr.OpMin: 2, expr.OpMax: 2,
	}
	return p
}

// InstrSize returns the encoded size of instruction i when its branch
// displacement (in bytes) is disp; callers that do not know the
// displacement pass a large value to get the long form.
func (p *Profile) InstrSize(i *Instr, disp int) int {
	switch i.Op {
	case BR, BRZ, BRNZ, JMP:
		if p.ShortBranchRange > 0 && disp >= -p.ShortBranchRange && disp <= p.ShortBranchRange {
			return p.ShortBranchSize
		}
		return p.Size[i.Op]
	case JTAB:
		return p.Size[JTAB] + len(i.Table)*p.JTabEntryBytes
	default:
		return p.Size[i.Op]
	}
}

// Layout computes the byte offset of every instruction under the
// profile's encoding, relaxing branches to their short form where the
// displacement allows (iterating to a fixed point, like a linker's
// branch relaxation). The returned slice has one extra element: the
// total code size in bytes.
func (p *Profile) Layout(prog *Program) []int {
	n := len(prog.Instrs)
	off := make([]int, n+1)
	// Start with long forms everywhere, then shrink.
	sizes := make([]int, n)
	for i := range prog.Instrs {
		sizes[i] = p.InstrSize(&prog.Instrs[i], 1<<30)
	}
	for pass := 0; pass < 8; pass++ {
		off[0] = 0
		for i := 0; i < n; i++ {
			off[i+1] = off[i] + sizes[i]
		}
		changed := false
		for i := range prog.Instrs {
			in := &prog.Instrs[i]
			switch in.Op {
			case BR, BRZ, BRNZ, JMP:
				t := prog.Labels[in.Label]
				disp := off[t] - off[i+1]
				ns := p.InstrSize(in, disp)
				if ns != sizes[i] {
					sizes[i] = ns
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	off[0] = 0
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + sizes[i]
	}
	return off
}

// CodeSize returns the total encoded size of the program in bytes.
func (p *Profile) CodeSize(prog *Program) int {
	off := p.Layout(prog)
	return off[len(off)-1]
}

// DataSize returns the data footprint of the program in bytes.
func (p *Profile) DataSize(prog *Program) int {
	return prog.Words * p.IntBytes
}
