package vm

import "fmt"

// PathCycles is the result of static object-code timing analysis: the
// exact minimum and maximum cycles of any execution path. This is the
// "measurement by analysing the compiled object code" the paper uses
// for the timing column of Table I, applied to the virtual target.
type PathCycles struct {
	Min int64
	Max int64
}

// AnalyzeCycles computes the minimum and maximum cycle counts over all
// paths from the entry label to any HALT, by shortest/longest path
// over the instruction control-flow graph. The routine must be acyclic
// (s-graph generated code is); a cycle is reported as an error.
func AnalyzeCycles(prof *Profile, prog *Program, label string) (PathCycles, error) {
	entry := 0
	if label != "" {
		idx, ok := prog.Labels[label]
		if !ok {
			return PathCycles{}, fmt.Errorf("vm: unknown entry label %q", label)
		}
		entry = idx
	}
	type memoEnt struct {
		min, max int64
		done     bool
	}
	memo := make(map[int]*memoEnt)
	onStack := make(map[int]bool)

	var visit func(pc int) (int64, int64, error)
	visit = func(pc int) (int64, int64, error) {
		if pc < 0 || pc >= len(prog.Instrs) {
			return 0, 0, fmt.Errorf("vm: pc %d out of range", pc)
		}
		if e, ok := memo[pc]; ok && e.done {
			return e.min, e.max, nil
		}
		if onStack[pc] {
			return 0, 0, fmt.Errorf("vm: cycle in control flow at instruction %d", pc)
		}
		onStack[pc] = true
		defer delete(onStack, pc)

		in := &prog.Instrs[pc]
		base := int64(prof.Cyc[in.Op])
		var mn, mx int64
		switch in.Op {
		case HALT:
			mn, mx = base, base
		case JMP:
			m1, m2, err := visit(prog.Labels[in.Label])
			if err != nil {
				return 0, 0, err
			}
			mn, mx = base+m1, base+m2
		case BR, BRZ, BRNZ:
			tMin, tMax, err := visit(prog.Labels[in.Label])
			if err != nil {
				return 0, 0, err
			}
			fMin, fMax, err := visit(pc + 1)
			if err != nil {
				return 0, 0, err
			}
			taken := base + int64(prof.TakenExtra) + tMin
			fall := base + fMin
			mn = min64(taken, fall)
			mx = max64(base+int64(prof.TakenExtra)+tMax, base+fMax)
		case JTAB:
			first := true
			for idx, l := range in.Table {
				m1, m2, err := visit(prog.Labels[l])
				if err != nil {
					return 0, 0, err
				}
				disp := int64(prof.JTabEntryCyc) * int64(idx)
				if first {
					mn, mx = base+disp+m1, base+disp+m2
					first = false
					continue
				}
				mn = min64(mn, base+disp+m1)
				mx = max64(mx, base+disp+m2)
			}
			if first {
				return 0, 0, fmt.Errorf("vm: empty jump table at %d", pc)
			}
		case ALU:
			c := int64(prof.ALUCycles(in.AOp))
			m1, m2, err := visit(pc + 1)
			if err != nil {
				return 0, 0, err
			}
			mn, mx = c+m1, c+m2
		default:
			m1, m2, err := visit(pc + 1)
			if err != nil {
				return 0, 0, err
			}
			mn, mx = base+m1, base+m2
		}
		memo[pc] = &memoEnt{min: mn, max: mx, done: true}
		return mn, mx, nil
	}
	mn, mx, err := visit(entry)
	if err != nil {
		return PathCycles{}, err
	}
	return PathCycles{Min: mn, Max: mx}, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
