package sgraph

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/expr"
	"polis/internal/randcfsm"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// cloneGraph deep-copies the reachable part of a graph so the original
// can serve as the unreduced reference in differential checks.
func cloneGraph(g *SGraph) *SGraph {
	h := &SGraph{C: g.C}
	mp := make(map[*Vertex]*Vertex)
	reach := g.Reachable()
	for _, v := range reach {
		nv := h.newVertex(v.Kind)
		nv.Tests = append([]*cfsm.Test(nil), v.Tests...)
		nv.Action = v.Action
		mp[v] = nv
	}
	for _, v := range reach {
		nv := mp[v]
		for _, c := range v.Children {
			nv.Children = append(nv.Children, mp[c])
		}
		if v.Next != nil {
			nv.Next = mp[v.Next]
		}
	}
	h.Begin = mp[g.Begin]
	h.End = mp[g.End]
	return h
}

// timerLike reproduces the dashboard timer's shape: two predicates
// over one data variable that can never hold together, declared
// exclusive, with transitions that overlap exactly on the impossible
// combination. This is the paper-style example where don't-care TEST
// elimination has something real to remove.
func timerLike() *cfsm.CFSM {
	c := cfsm.New("timerlike")
	start := c.AddInput("start", true)
	tick := c.AddInput("tick", true)
	end5 := c.AddOutput("end5", true)
	end10 := c.AddOutput("end10", true)
	counting := c.AddState("on", 2, 0)
	cnt := c.AddState("cnt", 0, 0)
	sel := c.Sel(counting)
	pStart := c.Present(start)
	pTick := c.Present(tick)
	at50 := c.Pred(expr.Eq(expr.V("cnt"), expr.C(49)))
	at150 := c.Pred(expr.Eq(expr.V("cnt"), expr.C(149)))
	c.MarkExclusive(at50, at150)
	c.AddTransition([]cfsm.Cond{cfsm.On(pStart, 1)},
		c.Assign(cnt, expr.C(0)), c.Assign(counting, expr.C(1)))
	c.AddTransition(
		[]cfsm.Cond{cfsm.On(pStart, 0), cfsm.On(pTick, 1), cfsm.On(sel, 1), cfsm.On(at50, 1)},
		c.Emit(end5), c.Assign(cnt, expr.Add(expr.V("cnt"), expr.C(1))))
	c.AddTransition(
		[]cfsm.Cond{cfsm.On(pStart, 0), cfsm.On(pTick, 1), cfsm.On(sel, 1), cfsm.On(at150, 1)},
		c.Emit(end10), c.Assign(counting, expr.C(0)))
	c.AddTransition(
		[]cfsm.Cond{cfsm.On(pStart, 0), cfsm.On(pTick, 1), cfsm.On(sel, 1), cfsm.On(at50, 0), cfsm.On(at150, 0)},
		c.Assign(cnt, expr.Add(expr.V("cnt"), expr.C(1))))
	return c
}

// checkTimerEquiv compares React and Evaluate over snapshots that
// actually exercise the exclusive predicates. checkEquiv draws data
// variables from [0,6), so cnt==49 and cnt==149 never arise there;
// this sweep pins them explicitly.
func checkTimerEquiv(t *testing.T, c *cfsm.CFSM, g *SGraph) {
	t.Helper()
	var counting, cnt *cfsm.StateVar
	for _, sv := range c.States {
		if sv.Name == "on" {
			counting = sv
		} else {
			cnt = sv
		}
	}
	for _, cv := range []int64{0, 1, 48, 49, 50, 149, 150} {
		for on := int64(0); on < 2; on++ {
			for mask := 0; mask < 4; mask++ {
				snap := c.NewSnapshot()
				snap.Present[c.Inputs[0]] = mask&1 != 0
				snap.Present[c.Inputs[1]] = mask&2 != 0
				snap.State[counting] = on
				snap.State[cnt] = cv
				want := c.React(snap)
				got := g.Evaluate(snap)
				if want.Fired != got.Fired {
					t.Fatalf("cnt=%d on=%d mask=%d: fired %v vs %v", cv, on, mask, want.Fired, got.Fired)
				}
				if len(want.Emitted) != len(got.Emitted) {
					t.Fatalf("cnt=%d on=%d mask=%d: emissions %v vs %v", cv, on, mask, want.Emitted, got.Emitted)
				}
				for j := range want.Emitted {
					if want.Emitted[j] != got.Emitted[j] {
						t.Fatalf("cnt=%d on=%d mask=%d: emission %d differs", cv, on, mask, j)
					}
				}
				for _, sv := range c.States {
					if want.NextState[sv] != got.NextState[sv] {
						t.Fatalf("cnt=%d on=%d mask=%d: state %s: %d vs %d",
							cv, on, mask, sv.Name, want.NextState[sv], got.NextState[sv])
					}
				}
			}
		}
	}
}

// TestReducePristineFixedPoint: graphs straight out of procedure build
// are already maximally shared (construction memoises on canonical BDD
// nodes) and, absent exclusivity declarations, have no don't-care
// paths — Reduce must be a no-op on them, in one iteration.
func TestReducePristineFixedPoint(t *testing.T) {
	for _, mk := range []struct {
		name  string
		build func() *cfsm.CFSM
	}{{"simple", simple}, {"counter", counter}} {
		for _, ord := range []Ordering{OrderNaive, OrderSiftInputsFirst, OrderSiftAfterSupport} {
			t.Run(mk.name+"/"+ord.String(), func(t *testing.T) {
				c := mk.build()
				g := buildGraph(t, c, ord)
				st := g.Reduce(ReduceOptions{})
				if st.Changed() {
					t.Errorf("pristine graph changed: %s", st)
				}
				if st.Iterations != 1 {
					t.Errorf("expected 1 iteration on a fixed point, got %d", st.Iterations)
				}
				if err := g.CheckWellFormed(); err != nil {
					t.Fatal(err)
				}
				checkEquiv(t, c, g, 11)
			})
		}
	}
}

// TestReduceTimerExclusive is the acceptance-criterion test: on the
// paper-style timer machine the context/care analysis must bypass at
// least one TEST (the second exclusive predicate is forced once the
// first holds) and strictly shrink the graph, without changing the
// observable reaction.
func TestReduceTimerExclusive(t *testing.T) {
	for _, ord := range []Ordering{OrderNaive, OrderSiftAfterSupport} {
		t.Run(ord.String(), func(t *testing.T) {
			c := timerLike()
			r, err := cfsm.BuildReactive(c)
			if err != nil {
				t.Fatal(err)
			}
			g := buildGraph(t, c, ord)
			ref := cloneGraph(g)
			st := g.Reduce(ReduceOptions{})
			if st.TestsEliminated < 1 {
				t.Errorf("expected at least one TEST eliminated, got %s", st)
			}
			if st.VerticesAfter >= st.VerticesBefore {
				t.Errorf("expected a strictly smaller graph, got %s", st)
			}
			if err := g.CheckWellFormed(); err != nil {
				t.Fatal(err)
			}
			if err := g.CheckEquivalent(ref); err != nil {
				t.Fatal(err)
			}
			// The reduced graph must still realise the reactive
			// function exactly on the care set.
			if err := g.CheckFunctional(r); err != nil {
				t.Fatal(err)
			}
			checkEquiv(t, c, g, 13)
			checkTimerEquiv(t, c, g)
		})
	}
}

// TestReduceSharesHandBuilt: two separately allocated, isomorphic
// subgraphs must merge into one.
func TestReduceSharesHandBuilt(t *testing.T) {
	c := cfsm.New("share")
	a := c.AddInput("a", true)
	y := c.AddOutput("y", true)
	pa := c.Present(a)
	emit := c.Emit(y)

	g := &SGraph{C: c}
	g.Begin = g.newVertex(Begin)
	root := g.newVertex(Test)
	g.End = g.newVertex(End)
	mk := func() *Vertex {
		v := g.newVertex(Assign)
		v.Action = emit
		v.Next = g.End
		return v
	}
	root.Tests = []*cfsm.Test{pa}
	root.Children = []*Vertex{mk(), mk()} // isomorphic twins
	g.Begin.Next = root
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	ref := cloneGraph(g)
	st := g.Reduce(ReduceOptions{})
	if st.Shares < 1 {
		t.Errorf("expected a share, got %s", st)
	}
	// Once the twins merge the TEST decides nothing and is bypassed:
	// BEGIN -> emit -> END.
	if st.TestsEliminated < 1 {
		t.Errorf("expected uniform TEST bypass after sharing, got %s", st)
	}
	if got := len(g.Reachable()); got != 3 {
		t.Errorf("expected 3 vertices after reduction, got %d", got)
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckEquivalent(ref); err != nil {
		t.Fatal(err)
	}
}

// TestReduceRepeatedTestBypassed: a TEST repeated on one path is
// decided by its context — the inner occurrence must be bypassed.
func TestReduceRepeatedTestBypassed(t *testing.T) {
	c := cfsm.New("repeat")
	a := c.AddInput("a", true)
	y := c.AddOutput("y", true)
	pa := c.Present(a)
	emit := c.Emit(y)

	g := &SGraph{C: c}
	g.Begin = g.newVertex(Begin)
	outer := g.newVertex(Test)
	inner := g.newVertex(Test)
	g.End = g.newVertex(End)
	act := g.newVertex(Assign)
	act.Action = emit
	act.Next = g.End
	// outer: pa=0 -> END; pa=1 -> inner (same test again).
	// inner: pa=0 -> END (dead edge); pa=1 -> emit.
	outer.Tests = []*cfsm.Test{pa}
	outer.Children = []*Vertex{g.End, inner}
	inner.Tests = []*cfsm.Test{pa}
	inner.Children = []*Vertex{g.End, act}
	g.Begin.Next = outer
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	ref := cloneGraph(g)
	st := g.Reduce(ReduceOptions{})
	if st.TestsEliminated < 1 {
		t.Errorf("expected the repeated TEST to be bypassed, got %s", st)
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckEquivalent(ref); err != nil {
		t.Fatal(err)
	}
	// The reduced graph must test pa exactly once.
	seen := 0
	for _, v := range g.Reachable() {
		if v.Kind == Test {
			seen++
		}
	}
	if seen != 1 {
		t.Errorf("expected exactly one TEST after reduction, got %d", seen)
	}
}

// TestReduceDeadAssignDropped: an ASSIGN overwritten on every path
// before the post-reaction commit is dead under copy-on-entry
// semantics and must be straightened away.
func TestReduceDeadAssignDropped(t *testing.T) {
	c := cfsm.New("dead")
	a := c.AddInput("a", true)
	x := c.AddState("x", 0, 0)
	pa := c.Present(a)
	set1 := c.Assign(x, expr.C(1))
	set2 := c.Assign(x, expr.C(2))

	g := &SGraph{C: c}
	g.Begin = g.newVertex(Begin)
	dead := g.newVertex(Assign)
	branch := g.newVertex(Test)
	g.End = g.newVertex(End)
	mk := func() *Vertex {
		v := g.newVertex(Assign)
		v.Action = set2
		v.Next = g.End
		return v
	}
	dead.Action = set1
	dead.Next = branch
	branch.Tests = []*cfsm.Test{pa}
	branch.Children = []*Vertex{mk(), mk()}
	g.Begin.Next = dead
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	ref := cloneGraph(g)
	st := g.Reduce(ReduceOptions{})
	if st.AssignsDropped < 1 {
		t.Errorf("expected the dead ASSIGN to be dropped, got %s", st)
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckEquivalent(ref); err != nil {
		t.Fatal(err)
	}
	// Straightening exposes sharing exposes a uniform TEST: the fixed
	// point is BEGIN -> x:=2 -> END.
	if got := len(g.Reachable()); got != 3 {
		t.Errorf("expected 3 vertices at the fixed point, got %d", got)
	}
}

// TestReducePassToggles checks the ablation switches actually disable
// their passes.
func TestReducePassToggles(t *testing.T) {
	build := func() *SGraph {
		c := cfsm.New("toggle")
		a := c.AddInput("a", true)
		y := c.AddOutput("y", true)
		pa := c.Present(a)
		emit := c.Emit(y)
		g := &SGraph{C: c}
		g.Begin = g.newVertex(Begin)
		root := g.newVertex(Test)
		g.End = g.newVertex(End)
		mk := func() *Vertex {
			v := g.newVertex(Assign)
			v.Action = emit
			v.Next = g.End
			return v
		}
		root.Tests = []*cfsm.Test{pa}
		root.Children = []*Vertex{mk(), mk()}
		g.Begin.Next = root
		return g
	}
	g := build()
	st := g.Reduce(ReduceOptions{NoShare: true, NoDontCare: true, NoStraighten: true})
	if st.Changed() {
		t.Errorf("all passes disabled but graph changed: %s", st)
	}
	g = build()
	st = g.Reduce(ReduceOptions{NoDontCare: true})
	if st.Shares < 1 || st.TestsEliminated != 0 {
		t.Errorf("share-only reduction: got %s", st)
	}
}

// TestReduceRandomMachines is the property test: for random
// deterministic machines, the reduced graph is observably equivalent
// to the unreduced graph (exhaustively over the care-set outcome
// space), still realises the reactive function, and still matches the
// reference interpreter on random snapshots.
func TestReduceRandomMachines(t *testing.T) {
	cfg := randcfsm.DefaultConfig()
	for seed := int64(1); seed <= 12; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			m := randcfsm.New(rand.New(rand.NewSource(seed)), cfg)
			r, err := cfsm.BuildReactive(m.C)
			if err != nil {
				t.Fatal(err)
			}
			g := buildGraph(t, m.C, OrderSiftAfterSupport)
			ref := cloneGraph(g)
			st := g.Reduce(ReduceOptions{})
			if err := g.CheckWellFormed(); err != nil {
				t.Fatalf("%s: %v", st, err)
			}
			if err := g.CheckEquivalent(ref); err != nil {
				t.Fatalf("%s: %v", st, err)
			}
			// randcfsm machines are structurally deterministic, so
			// straightening has nothing to remove and the exact
			// action-set check remains valid after reduction.
			if err := g.CheckFunctional(r); err != nil {
				t.Fatalf("%s: %v", st, err)
			}
			checkEquiv(t, m.C, g, seed*31)
		})
	}
}

// TestReduceDeterministic: reducing two identical builds yields
// byte-identical graphs (no map-iteration order leaks into rewrites).
func TestReduceDeterministic(t *testing.T) {
	render := func() string {
		c := timerLike()
		g := buildGraph(t, c, OrderSiftAfterSupport)
		g.Reduce(ReduceOptions{})
		return g.Dot()
	}
	first := render()
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("reduction not deterministic (run %d)", i+1)
		}
	}
}

// reduceGoldenRecord pins the reduction statistics for a machine and
// ordering. Regenerate with: go test ./internal/sgraph -run Golden -update
type reduceGoldenRecord struct {
	Machine  string `json:"machine"`
	Ordering string `json:"ordering"`
	Stats    ReduceStats
}

func TestReduceGoldenStats(t *testing.T) {
	machines := []struct {
		name  string
		build func() *cfsm.CFSM
	}{
		{"simple", simple},
		{"counter", counter},
		{"timerlike", timerLike},
		{"rand7", func() *cfsm.CFSM {
			return randcfsm.New(rand.New(rand.NewSource(7)), randcfsm.DefaultConfig()).C
		}},
		{"rand23", func() *cfsm.CFSM {
			return randcfsm.New(rand.New(rand.NewSource(23)), randcfsm.DefaultConfig()).C
		}},
	}
	var got []reduceGoldenRecord
	for _, mk := range machines {
		for _, ord := range []Ordering{OrderNaive, OrderSiftAfterSupport} {
			g := buildGraph(t, mk.build(), ord)
			st := g.Reduce(ReduceOptions{})
			got = append(got, reduceGoldenRecord{Machine: mk.name, Ordering: ord.String(), Stats: st})
		}
	}
	path := filepath.Join("testdata", "reduce_golden.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d records", path, len(got))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	var want []reduceGoldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d records, produced %d (run with -update)", len(want), len(got))
	}
	bad := 0
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			if bad++; bad <= 5 {
				t.Errorf("record %d (%s/%s):\n got %+v\nwant %+v",
					i, got[i].Machine, got[i].Ordering, got[i].Stats, want[i].Stats)
			}
		}
	}
	if bad > 5 {
		t.Errorf("... and %d more mismatches", bad-5)
	}
}

// TestCollapseStructuralTests is the regression for the
// pointer-equality bug: equal tests allocated separately (bypassing
// the CFSM's interning) must still be recognised as a common test.
func TestCollapseStructuralTests(t *testing.T) {
	c := cfsm.New("dupcollapse")
	a := c.AddInput("a", true)
	y := c.AddOutput("y", true)
	pa := c.Present(a)
	emit := c.Emit(y)
	// Two distinct allocations of the same predicate.
	dup1 := &cfsm.Test{Kind: cfsm.TestPredicate, Pred: expr.Eq(expr.V("?a"), expr.C(3))}
	dup2 := &cfsm.Test{Kind: cfsm.TestPredicate, Pred: expr.Eq(expr.V("?a"), expr.C(3))}

	g := &SGraph{C: c}
	g.Begin = g.newVertex(Begin)
	root := g.newVertex(Test)
	g.End = g.newVertex(End)
	act := g.newVertex(Assign)
	act.Action = emit
	act.Next = g.End
	mk := func(dup *cfsm.Test, c0, c1 *Vertex) *Vertex {
		v := g.newVertex(Test)
		v.Tests = []*cfsm.Test{dup}
		v.Children = []*Vertex{c0, c1}
		return v
	}
	root.Tests = []*cfsm.Test{pa}
	root.Children = []*Vertex{mk(dup1, g.End, act), mk(dup2, act, g.End)}
	g.Begin.Next = root
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	ref := cloneGraph(g)
	if collapsed := g.CollapseTests(16); collapsed != 1 {
		t.Fatalf("expected 1 collapse of structurally equal tests, got %d", collapsed)
	}
	if len(root.Tests) != 2 || len(root.Children) != 4 {
		t.Fatalf("collapsed root has %d tests / %d children", len(root.Tests), len(root.Children))
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	// Semantics preserved over every snapshot shape that matters.
	for _, present := range []bool{false, true} {
		for _, av := range []int64{0, 3} {
			snap := c.NewSnapshot()
			snap.Present[a] = present
			snap.Values[a] = av
			want := ref.Evaluate(snap)
			got := g.Evaluate(snap)
			if want.Fired != got.Fired || len(want.Emitted) != len(got.Emitted) {
				t.Fatalf("present=%v a=%d: %+v vs %+v", present, av, want, got)
			}
		}
	}
}

// TestCollapseNested: the incremental parent-count loop must keep
// collapsing the same root as new layers are exposed, reaching the
// same fixed point as the old restart-from-scratch loop.
func TestCollapseNested(t *testing.T) {
	c := cfsm.New("nested")
	a := c.AddInput("a", true)
	b := c.AddInput("b", true)
	d := c.AddInput("d", true)
	y := c.AddOutput("y", false)
	pa, pb, pd := c.Present(a), c.Present(b), c.Present(d)

	g := &SGraph{C: c}
	g.Begin = g.newVertex(Begin)
	root := g.newVertex(Test)
	g.End = g.newVertex(End)
	leaf := func(k int64) *Vertex {
		v := g.newVertex(Assign)
		v.Action = c.EmitV(y, expr.C(k))
		v.Next = g.End
		return v
	}
	mkTest := func(t0 *cfsm.Test, c0, c1 *Vertex) *Vertex {
		v := g.newVertex(Test)
		v.Tests = []*cfsm.Test{t0}
		v.Children = []*Vertex{c0, c1}
		return v
	}
	// Two layers below the root, each closed: root(pa) -> pb -> pd.
	var mids []*Vertex
	for i := int64(0); i < 2; i++ {
		lo := mkTest(pd, leaf(4*i), leaf(4*i+1))
		hi := mkTest(pd, leaf(4*i+2), leaf(4*i+3))
		mids = append(mids, mkTest(pb, lo, hi))
	}
	root.Tests = []*cfsm.Test{pa}
	root.Children = []*Vertex{mids[0], mids[1]}
	g.Begin.Next = root
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	ref := cloneGraph(g)
	if collapsed := g.CollapseTests(16); collapsed != 2 {
		t.Fatalf("expected 2 nested collapses, got %d", collapsed)
	}
	if len(root.Tests) != 3 || len(root.Children) != 8 {
		t.Fatalf("collapsed root has %d tests / %d children", len(root.Tests), len(root.Children))
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 8; mask++ {
		snap := c.NewSnapshot()
		snap.Present[a] = mask&4 != 0
		snap.Present[b] = mask&2 != 0
		snap.Present[d] = mask&1 != 0
		want := ref.Evaluate(snap)
		got := g.Evaluate(snap)
		if len(want.Emitted) != 1 || len(got.Emitted) != 1 ||
			want.Emitted[0] != got.Emitted[0] {
			t.Fatalf("mask=%d: %+v vs %+v", mask, want, got)
		}
	}
}

// TestReachableDeepChain: the iterative traversals must survive a
// path length far beyond any recursion budget, and Reachable must
// return the documented order.
func TestReachableDeepChain(t *testing.T) {
	const depth = 200000
	c := cfsm.New("deep")
	y := c.AddOutput("y", true)
	emit := c.Emit(y)
	g := &SGraph{C: c}
	g.Begin = g.newVertex(Begin)
	g.End = g.newVertex(End)
	prev := g.Begin
	for i := 0; i < depth; i++ {
		v := g.newVertex(Assign)
		v.Action = emit
		prev.Next = v
		prev = v
	}
	prev.Next = g.End
	order := g.Reachable()
	if len(order) != depth+2 {
		t.Fatalf("reachable returned %d vertices, want %d", len(order), depth+2)
	}
	if order[0] != g.Begin || order[len(order)-1] != g.End {
		t.Fatal("reachable order does not start at BEGIN / end at END")
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	if n := g.Parents()[g.End]; n != 1 {
		t.Fatalf("END in-degree %d, want 1", n)
	}
}

// TestReachableMatchesRecursivePreorder pins the iterative traversal
// to the recursive DFS preorder it replaced — codegen's fall-through
// layout depends on this exact sequence.
func TestReachableMatchesRecursivePreorder(t *testing.T) {
	recursive := func(g *SGraph) []*Vertex {
		var order []*Vertex
		seen := make(map[*Vertex]bool)
		var walk func(v *Vertex)
		walk = func(v *Vertex) {
			if seen[v] {
				return
			}
			seen[v] = true
			order = append(order, v)
			switch v.Kind {
			case Test:
				for _, c := range v.Children {
					walk(c)
				}
			case Begin, Assign:
				walk(v.Next)
			}
		}
		walk(g.Begin)
		return order
	}
	machines := []struct {
		name  string
		build func() *cfsm.CFSM
	}{{"simple", simple}, {"counter", counter}, {"timerlike", timerLike}}
	for _, mk := range machines {
		for _, ord := range []Ordering{OrderNaive, OrderSiftAfterSupport} {
			g := buildGraph(t, mk.build(), ord)
			want := recursive(g)
			got := g.Reachable()
			if len(want) != len(got) {
				t.Fatalf("%s/%s: %d vs %d vertices", mk.name, ord, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s/%s: order diverges at position %d", mk.name, ord, i)
				}
			}
		}
	}
	// Also over random machines, where sharing produces real DAG shapes.
	for seed := int64(1); seed <= 8; seed++ {
		m := randcfsm.New(rand.New(rand.NewSource(seed)), randcfsm.DefaultConfig())
		g := buildGraph(t, m.C, OrderSiftAfterSupport)
		want := recursive(g)
		got := g.Reachable()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: iterative preorder diverges from recursive", seed)
		}
	}
}
