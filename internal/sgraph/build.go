package sgraph

import (
	"fmt"

	"polis/internal/bdd"
	"polis/internal/cfsm"
	"polis/internal/mvar"
)

// Ordering selects how the characteristic-function variables are
// ordered before procedure build runs (Section III-B3).
type Ordering int

// Ordering strategies, matching the rows of Table II. The zero value
// is the paper's default and best configuration, so zero-valued
// options do the right thing.
const (
	// OrderSiftAfterSupport sifts dynamically with each output
	// constrained only after its own support — the paper's default.
	OrderSiftAfterSupport Ordering = iota
	// OrderNaive keeps the declaration order (all tests first, then
	// all actions) with no dynamic reordering.
	OrderNaive
	// OrderSiftInputsFirst sifts dynamically with all outputs
	// constrained after all inputs.
	OrderSiftInputsFirst
)

func (o Ordering) String() string {
	switch o {
	case OrderNaive:
		return "naive"
	case OrderSiftInputsFirst:
		return "sift-inputs-first"
	default:
		return "sift-after-support"
	}
}

// Build runs the paper's procedure build (Section III-B2): it sifts
// the characteristic-function BDD according to the requested ordering
// and then recursively constructs the s-graph by Shannon cofactoring,
// memoising on the residual BDD node so that isomorphic subgraphs are
// shared exactly as the reduce step requires. The resulting s-graph
// computes the CFSM transition function (Theorem 1): each input test
// appears at most once per path and ASSIGN vertices carry only actions.
func Build(r *cfsm.Reactive, ord Ordering) (*SGraph, error) {
	if err := ApplyOrdering(r, ord); err != nil {
		return nil, err
	}
	return FromChi(r)
}

// ApplyOrdering runs the sifting step of procedure build alone: it
// reorders the characteristic-function BDD according to the requested
// strategy, leaving the s-graph construction to FromChi. Splitting the
// two lets callers (the synthesis pipeline) attribute wall time to the
// reordering and construction stages separately.
func ApplyOrdering(r *cfsm.Reactive, ord Ordering) error {
	switch ord {
	case OrderNaive:
		// Declaration order already places every output after all
		// inputs; nothing to do.
	case OrderSiftInputsFirst:
		r.SiftOutputsAfterAllInputs()
	case OrderSiftAfterSupport:
		r.SiftOutputsAfterSupport()
	default:
		return fmt.Errorf("sgraph: unknown ordering %d", ord)
	}
	return nil
}

// FromChi constructs the s-graph from the characteristic function
// under the BDD's current variable order, which must place each output
// variable below every input in its support. It returns an error if
// the order violates that requirement (the value of an output would
// still depend on untested inputs).
func FromChi(r *cfsm.Reactive) (*SGraph, error) {
	g := &SGraph{C: r.C}
	g.Begin = g.newVertex(Begin)
	g.End = g.newVertex(End)

	s := r.Space
	testOf := make(map[*mvar.MV]*cfsm.Test, len(r.TestVars))
	for i, v := range r.TestVars {
		testOf[v] = r.C.Tests[i]
	}
	actionOf := make(map[*mvar.MV]*cfsm.Action, len(r.ActVars))
	for i, v := range r.ActVars {
		actionOf[v] = r.C.Actions[i]
	}

	memo := make(map[bdd.Node]*Vertex)
	var build func(f bdd.Node) (*Vertex, error)
	build = func(f bdd.Node) (*Vertex, error) {
		if f == bdd.True {
			return g.End, nil
		}
		if f == bdd.False {
			return nil, fmt.Errorf("sgraph: characteristic function unsatisfiable on some path (CFSM %s)", r.C.Name)
		}
		if v, ok := memo[f]; ok {
			return v, nil
		}
		top := s.Top(f)
		if t, ok := testOf[top]; ok {
			// Input: a TEST vertex with one child per outcome.
			v := g.newVertex(Test)
			v.Tests = []*cfsm.Test{t}
			v.Children = make([]*Vertex, t.Arity())
			for val := 0; val < t.Arity(); val++ {
				child, err := build(s.CofactorValue(f, top, val))
				if err != nil {
					return nil, err
				}
				v.Children[val] = child
			}
			// Degenerate TEST (all children equal) can only arise
			// for selectors whose domain is not a power of two;
			// keep it, since the object code must still decode the
			// state value.
			memo[f] = v
			return v, nil
		}
		a, ok := actionOf[top]
		if !ok {
			return nil, fmt.Errorf("sgraph: BDD variable not owned by a test or action")
		}
		f0 := s.CofactorValue(f, top, 0)
		f1 := s.CofactorValue(f, top, 1)
		switch {
		case f0 == bdd.False && f1 != bdd.False:
			// Action fires: emit an ASSIGN vertex.
			v := g.newVertex(Assign)
			v.Action = a
			next, err := build(f1)
			if err != nil {
				return nil, err
			}
			v.Next = next
			memo[f] = v
			return v, nil
		case f1 == bdd.False && f0 != bdd.False:
			// Action does not fire: the cheapest implementation is
			// no code at all (the paper's "no assignment" option).
			v, err := build(f0)
			if err != nil {
				return nil, err
			}
			memo[f] = v
			return v, nil
		default:
			return nil, fmt.Errorf(
				"sgraph: output %s still depends on untested inputs; ordering violates outputs-after-support (CFSM %s)",
				a.Name(), r.C.Name)
		}
	}
	first, err := build(r.Chi)
	if err != nil {
		return nil, err
	}
	g.Begin.Next = first
	return g, nil
}
