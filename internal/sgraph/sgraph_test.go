package sgraph

import (
	"math/rand"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/expr"
)

// simple builds the paper's Fig. 1 module.
func simple() *cfsm.CFSM {
	c := cfsm.New("simple")
	in := c.AddInput("c", false)
	y := c.AddOutput("y", true)
	a := c.AddState("a", 0, 0)
	pc := c.Present(in)
	eq := c.Pred(expr.Eq(expr.V("a"), expr.V("?c")))
	c.AddTransition([]cfsm.Cond{cfsm.On(pc, 1), cfsm.On(eq, 1)},
		c.Assign(a, expr.C(0)), c.Emit(y))
	c.AddTransition([]cfsm.Cond{cfsm.On(pc, 1), cfsm.On(eq, 0)},
		c.Assign(a, expr.Add(expr.V("a"), expr.C(1))))
	return c
}

// counter builds a 5-state selector machine with a valued output.
func counter() *cfsm.CFSM {
	c := cfsm.New("counter")
	tick := c.AddInput("tick", true)
	rst := c.AddInput("rst", true)
	out := c.AddOutput("wrap", false)
	st := c.AddState("st", 5, 0)
	p := c.Present(tick)
	pr := c.Present(rst)
	sel := c.Sel(st)
	// Reset dominates.
	for k := 0; k < 5; k++ {
		c.AddTransition(
			[]cfsm.Cond{cfsm.On(pr, 1), cfsm.On(sel, k)},
			c.Assign(st, expr.C(0)))
	}
	for k := 0; k < 5; k++ {
		next := (k + 1) % 5
		acts := []*cfsm.Action{c.Assign(st, expr.C(int64(next)))}
		if next == 0 {
			acts = append(acts, c.EmitV(out, expr.C(int64(k))))
		}
		c.AddTransition(
			[]cfsm.Cond{cfsm.On(pr, 0), cfsm.On(p, 1), cfsm.On(sel, k)},
			acts...)
	}
	return c
}

func buildGraph(t *testing.T, c *cfsm.CFSM, ord Ordering) *SGraph {
	t.Helper()
	r, err := cfsm.BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(r, ord)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	return g
}

// checkEquiv verifies the s-graph computes the same reaction as the
// reference interpreter over many random snapshots.
func checkEquiv(t *testing.T, c *cfsm.CFSM, g *SGraph, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 400; i++ {
		snap := c.NewSnapshot()
		for _, in := range c.Inputs {
			snap.Present[in] = rng.Intn(2) == 1
			if !in.Pure {
				snap.Values[in] = int64(rng.Intn(6))
			}
		}
		for _, sv := range c.States {
			if sv.Domain > 0 {
				snap.State[sv] = int64(rng.Intn(sv.Domain))
			} else {
				snap.State[sv] = int64(rng.Intn(6))
			}
		}
		want := c.React(snap)
		got := g.Evaluate(snap)
		if want.Fired != got.Fired {
			t.Fatalf("iter %d: fired %v vs %v", i, want.Fired, got.Fired)
		}
		if len(want.Emitted) != len(got.Emitted) {
			t.Fatalf("iter %d: emissions %v vs %v", i, want.Emitted, got.Emitted)
		}
		for j := range want.Emitted {
			if want.Emitted[j].Signal != got.Emitted[j].Signal ||
				want.Emitted[j].Value != got.Emitted[j].Value {
				t.Fatalf("iter %d: emission %d differs", i, j)
			}
		}
		for _, sv := range c.States {
			if want.NextState[sv] != got.NextState[sv] {
				t.Fatalf("iter %d: state %s: %d vs %d",
					i, sv.Name, want.NextState[sv], got.NextState[sv])
			}
		}
	}
}

func TestBuildSimpleAllOrderings(t *testing.T) {
	for _, ord := range []Ordering{OrderNaive, OrderSiftInputsFirst, OrderSiftAfterSupport} {
		t.Run(ord.String(), func(t *testing.T) {
			c := simple()
			g := buildGraph(t, c, ord)
			checkEquiv(t, c, g, 7)
		})
	}
}

func TestBuildCounterAllOrderings(t *testing.T) {
	for _, ord := range []Ordering{OrderNaive, OrderSiftInputsFirst, OrderSiftAfterSupport} {
		t.Run(ord.String(), func(t *testing.T) {
			c := counter()
			g := buildGraph(t, c, ord)
			checkEquiv(t, c, g, 11)
		})
	}
}

func TestSimpleStructureMatchesFig1(t *testing.T) {
	// Fig. 1: BEGIN, TEST(present_c), TEST(a==?c), ASSIGNs for
	// a:=0 / emit y / a:=a+1, shared END.
	c := simple()
	g := buildGraph(t, c, OrderNaive)
	st := g.ComputeStats()
	if st.Tests != 2 {
		t.Errorf("expected 2 TEST vertices, got %d", st.Tests)
	}
	if st.Assigns != 3 {
		t.Errorf("expected 3 ASSIGN vertices, got %d", st.Assigns)
	}
	// The absent-c branch must reach END without assigning.
	snap := c.NewSnapshot()
	r := g.Evaluate(snap)
	if r.Fired {
		t.Error("no input event must mean no ASSIGN visited")
	}
}

func TestSelectorProducesMultiwayTest(t *testing.T) {
	c := counter()
	g := buildGraph(t, c, OrderSiftAfterSupport)
	found := false
	for _, v := range g.Reachable() {
		if v.Kind == Test && len(v.Tests) == 1 && v.Tests[0].Kind == cfsm.TestSelector {
			if v.Arity() != 5 {
				t.Errorf("selector TEST arity %d, want 5", v.Arity())
			}
			found = true
		}
	}
	if !found {
		t.Error("no multi-way selector TEST vertex in counter s-graph")
	}
}

func TestEachTestOncePerPath(t *testing.T) {
	// With outputs after support, each input variable is tested at
	// most once per path (paper Section III-B3b).
	c := counter()
	g := buildGraph(t, c, OrderSiftAfterSupport)
	var walk func(v *Vertex, seen map[*cfsm.Test]bool)
	walk = func(v *Vertex, seen map[*cfsm.Test]bool) {
		switch v.Kind {
		case Test:
			for _, tst := range v.Tests {
				if seen[tst] {
					t.Fatalf("test %s appears twice on one path", tst.Name())
				}
			}
			for _, child := range v.Children {
				s2 := make(map[*cfsm.Test]bool, len(seen)+1)
				for k := range seen {
					s2[k] = true
				}
				for _, tst := range v.Tests {
					s2[tst] = true
				}
				walk(child, s2)
			}
		case Begin, Assign:
			walk(v.Next, seen)
		}
	}
	walk(g.Begin, map[*cfsm.Test]bool{})
}

func TestStats(t *testing.T) {
	c := simple()
	g := buildGraph(t, c, OrderNaive)
	st := g.ComputeStats()
	if st.Vertices == 0 || st.Edges == 0 || st.Depth < 3 {
		t.Errorf("implausible stats: %+v", st)
	}
	if st.Paths < 3 {
		t.Errorf("simple has at least 3 paths, got %d", st.Paths)
	}
}

func TestCollapsePreservesSemantics(t *testing.T) {
	c := counter()
	g := buildGraph(t, c, OrderSiftAfterSupport)
	before := g.ComputeStats()
	n := g.CollapseTests(32)
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, c, g, 23)
	after := g.ComputeStats()
	if n > 0 && after.Tests >= before.Tests {
		t.Errorf("collapsing %d nodes did not reduce TEST count: %d -> %d",
			n, before.Tests, after.Tests)
	}
}

func TestCollapseOnSimple(t *testing.T) {
	c := simple()
	g := buildGraph(t, c, OrderNaive)
	g.CollapseTests(0)
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, c, g, 29)
}

func TestSharingReducesVertices(t *testing.T) {
	// Two transitions assigning the same action from different
	// guards must share the ASSIGN tail.
	c := cfsm.New("share")
	a := c.AddInput("a", true)
	b := c.AddInput("b", true)
	o := c.AddOutput("o", true)
	pa, pb := c.Present(a), c.Present(b)
	em := c.Emit(o)
	c.AddTransition([]cfsm.Cond{cfsm.On(pa, 1)}, em)
	c.AddTransition([]cfsm.Cond{cfsm.On(pa, 0), cfsm.On(pb, 1)}, em)
	r, err := cfsm.BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(r, OrderSiftAfterSupport)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, v := range g.Reachable() {
		if v.Kind == Assign {
			count++
		}
	}
	if count != 1 {
		t.Errorf("expected shared single ASSIGN vertex, got %d", count)
	}
}

func TestDotOutput(t *testing.T) {
	c := simple()
	g := buildGraph(t, c, OrderNaive)
	dot := g.Dot()
	if len(dot) == 0 || dot[0] != 'd' {
		t.Error("dot output malformed")
	}
	for _, needle := range []string{"BEGIN", "END", "present_c"} {
		if !contains(dot, needle) {
			t.Errorf("dot output missing %q", needle)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestOrderingAffectsSizeNotFunction(t *testing.T) {
	// Build a CFSM with enough structure that orderings differ.
	c := cfsm.New("wide")
	var tests []*cfsm.Test
	var outs []*cfsm.Signal
	for i := 0; i < 4; i++ {
		in := c.AddInput(string(rune('a'+i)), true)
		tests = append(tests, c.Present(in))
		outs = append(outs, c.AddOutput(string(rune('x'+i)), true))
	}
	// Output i depends on inputs i and (i+1)%4.
	for i := 0; i < 4; i++ {
		j := (i + 1) % 4
		c.AddTransition(
			[]cfsm.Cond{cfsm.On(tests[i], 1), cfsm.On(tests[j], 1)},
			c.Emit(outs[i]))
	}
	if err := c.CheckDeterministic(); err == nil {
		// Overlapping guards with different actions — this CFSM is
		// nondeterministic as written, which BuildReactive handles by
		// unioning action conditions; determinism of the *function*
		// still holds because chi is built from f_j directly.
		_ = err
	}
	sizes := map[Ordering]int{}
	for _, ord := range []Ordering{OrderNaive, OrderSiftAfterSupport} {
		cc := counter()
		g := buildGraph(t, cc, ord)
		sizes[ord] = g.ComputeStats().Vertices
		checkEquiv(t, cc, g, 31)
	}
	if sizes[OrderSiftAfterSupport] > sizes[OrderNaive] {
		t.Errorf("sifted build larger than naive: %v", sizes)
	}
}

// TestCheckFunctional verifies Theorem 1's conclusion exhaustively on
// the example machines: the built s-graph computes exactly the
// reactive function, with each test at most once per path.
func TestCheckFunctional(t *testing.T) {
	for _, mk := range []func() *cfsm.CFSM{simple, counter} {
		c := mk()
		for _, ord := range []Ordering{OrderNaive, OrderSiftAfterSupport} {
			r, err := cfsm.BuildReactive(c)
			if err != nil {
				t.Fatal(err)
			}
			g, err := Build(r, ord)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.CheckFunctional(r); err != nil {
				t.Errorf("%s/%s: %v", c.Name, ord, err)
			}
		}
	}
}

// TestCheckFunctionalCollapsed: collapsing preserves functionality but
// the each-test-once property also survives (merged tests are still
// visited once).
func TestCheckFunctionalCollapsed(t *testing.T) {
	c := counter()
	r, err := cfsm.BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(r, OrderSiftAfterSupport)
	if err != nil {
		t.Fatal(err)
	}
	g.CollapseTests(32)
	if err := g.CheckFunctional(r); err != nil {
		t.Error(err)
	}
}

func TestParentsCounts(t *testing.T) {
	c := simple()
	g := buildGraph(t, c, OrderNaive)
	parents := g.Parents()
	// BEGIN has no parents; END is shared by several paths.
	if parents[g.Begin] != 0 {
		t.Errorf("BEGIN in-degree %d", parents[g.Begin])
	}
	if parents[g.End] < 2 {
		t.Errorf("END in-degree %d, want >= 2", parents[g.End])
	}
	// Sum of in-degrees equals the edge count.
	total := 0
	for _, n := range parents {
		total += n
	}
	if st := g.ComputeStats(); total != st.Edges {
		t.Errorf("in-degree sum %d != edges %d", total, st.Edges)
	}
}
