package sgraph

import "polis/internal/cfsm"

// CollapseTests implements the TEST-node collapsing optimisation of
// Section III-B3d: a closed subgraph of TEST vertices — one in which
// every vertex except the root is reached only from within the
// subgraph — can be replaced by a single multi-test TEST vertex whose
// outcome index concatenates the outcomes of the constituent tests,
// thereby factoring the common test expression. The paper experimented
// with this transformation and never observed an improvement in the
// final code; the implementation is kept so that the ablation
// benchmark can reproduce that negative result.
//
// This implementation collapses the canonical closed shape: a TEST
// vertex whose children are all TEST vertices over one common test
// (compared structurally, so equal tests allocated separately still
// match), with no edges entering the children from outside. It applies
// the rewrite repeatedly to a fixed point, subject to a limit on the
// combined arity, and returns the number of collapses performed.
//
// Parent counts are maintained incrementally across rewrites: a
// collapse moves the grandchildren's in-edges from the absorbed
// children to the root without changing any surviving vertex's
// in-degree, and the absorbed children (whose only parent was the
// root, by the closure condition) leave the graph. No other vertex's
// collapsibility changes, so one scan with per-vertex re-examination
// reaches the same fixed point as restarting from scratch — without
// the full Parents() recomputation per rewrite that made the original
// loop quadratic.
func (g *SGraph) CollapseTests(maxArity int) int {
	if maxArity <= 0 {
		maxArity = 16
	}
	edgesFrom := func(v, c *Vertex) int {
		n := 0
		for _, ch := range v.Children {
			if ch == c {
				n++
			}
		}
		return n
	}
	collapsed := 0
	parents := g.Parents()
	absorbed := make(map[*Vertex]bool)
	for _, v := range g.Reachable() {
		if v.Kind != Test || absorbed[v] {
			continue
		}
		// Re-examine v until it no longer collapses: absorbing a layer
		// of children can expose another common-test layer beneath.
		for {
			var common *cfsm.Test
			ok := true
			for _, c := range v.Children {
				if c.Kind != Test || len(c.Tests) != 1 || c == v {
					ok = false
					break
				}
				if common == nil {
					common = c.Tests[0]
				} else if testKey(c.Tests[0]) != testKey(common) {
					ok = false
					break
				}
				if parents[c] != edgesFrom(v, c) {
					ok = false // reached from outside the subgraph
					break
				}
			}
			if !ok || common == nil {
				break
			}
			// v must not itself test the common test already.
			for _, t := range v.Tests {
				if testKey(t) == testKey(common) {
					ok = false
					break
				}
			}
			if !ok || v.Arity()*common.Arity() > maxArity {
				break
			}
			newChildren := make([]*Vertex, 0, v.Arity()*common.Arity())
			for _, c := range v.Children {
				newChildren = append(newChildren, c.Children...)
			}
			for _, c := range v.Children {
				absorbed[c] = true
				delete(parents, c)
			}
			v.Tests = append(v.Tests, common)
			v.Children = newChildren
			collapsed++
		}
	}
	if collapsed > 0 {
		g.Vertices = g.Reachable() // drop absorbed vertices
	}
	return collapsed
}
