package sgraph

import "polis/internal/cfsm"

// CollapseTests implements the TEST-node collapsing optimisation of
// Section III-B3d: a closed subgraph of TEST vertices — one in which
// every vertex except the root is reached only from within the
// subgraph — can be replaced by a single multi-test TEST vertex whose
// outcome index concatenates the outcomes of the constituent tests,
// thereby factoring the common test expression. The paper experimented
// with this transformation and never observed an improvement in the
// final code; the implementation is kept so that the ablation
// benchmark can reproduce that negative result.
//
// This implementation collapses the canonical closed shape: a TEST
// vertex whose children are all TEST vertices over one common test,
// with no edges entering the children from outside. It applies the
// rewrite repeatedly to a fixed point, subject to a limit on the
// combined arity, and returns the number of collapses performed.
func (g *SGraph) CollapseTests(maxArity int) int {
	if maxArity <= 0 {
		maxArity = 16
	}
	collapsed := 0
	for {
		changed := false
		edgesFrom := func(v, c *Vertex) int {
			n := 0
			for _, ch := range v.Children {
				if ch == c {
					n++
				}
			}
			return n
		}
		parents := g.Parents()
		for _, v := range g.Reachable() {
			if v.Kind != Test {
				continue
			}
			// All children must be TEST vertices over one common
			// single test, closed under v.
			var common *cfsm.Test
			ok := true
			for _, c := range v.Children {
				if c.Kind != Test || len(c.Tests) != 1 || c == v {
					ok = false
					break
				}
				if common == nil {
					common = c.Tests[0]
				} else if c.Tests[0] != common {
					ok = false
					break
				}
				if parents[c] != edgesFrom(v, c) {
					ok = false // reached from outside the subgraph
					break
				}
			}
			if !ok || common == nil {
				continue
			}
			// v must not itself test the common test already.
			for _, t := range v.Tests {
				if t == common {
					ok = false
					break
				}
			}
			if !ok || v.Arity()*common.Arity() > maxArity {
				continue
			}
			newChildren := make([]*Vertex, 0, v.Arity()*common.Arity())
			for _, c := range v.Children {
				newChildren = append(newChildren, c.Children...)
			}
			v.Tests = append(v.Tests, common)
			v.Children = newChildren
			collapsed++
			changed = true
			break // parent counts are stale; recompute
		}
		if !changed {
			if collapsed > 0 {
				g.Vertices = g.Reachable() // drop absorbed vertices
			}
			return collapsed
		}
	}
}
