package sgraph

import (
	"fmt"
	"strings"

	"polis/internal/bdd"
	"polis/internal/cfsm"
	"polis/internal/mvar"
)

// This file implements the fixed-point s-graph reduction engine: the
// graph-level optimisation layer between procedure build and code
// generation. Three passes run to a fixed point:
//
//  1. ASSIGN-chain straightening drops assignments that are
//     overwritten before any read along every path to END. Under
//     copy-on-entry semantics (Section III-B1) expression operands
//     read the pre-reaction snapshot, never the working state, so the
//     only reader of a state-variable write is the post-reaction
//     commit: an ASSIGN to x is dead iff every path from its
//     successor contains another ASSIGN to x. This is
//     codegen.AnalyzeCopies' write-before-read analysis lifted from
//     copy suppression to vertex removal.
//
//  2. Don't-care TEST elimination propagates a reachability-context
//     BDD per vertex — the disjunction over all BEGIN-to-v paths of
//     the conjunction of test outcomes along each path, conjoined
//     with the care set implied by cfsm.MarkExclusive declarations
//     (the same declarations estimate's false-path pruning trusts).
//     A TEST outcome whose edge constraint does not intersect the
//     context can never be taken: the edge is redirected to a feasible
//     sibling (making children uniform, which feeds sharing), and a
//     TEST with a single feasible outcome is bypassed entirely.
//
//  3. DAG sharing hash-conses reachable vertices bottom-up on
//     (kind, structural test/action identity, child identity), merging
//     isomorphic subgraphs into true DAG fanout. Graphs straight out
//     of FromChi are already maximally shared (construction memoises
//     on canonical BDD nodes), so this pass exists to re-canonicalise
//     after the other passes and after rewrites such as CollapseTests
//     or hand construction.
//
// Every pass preserves the observable reaction (emission sequence,
// last writer per state variable, the fired flag) on the care set;
// CheckEquivalent is the exhaustive differential gate and the netfuzz
// harness cross-checks reduced object code against the reference
// interpreter on every simulated reaction.

// ReduceOptions tunes the reduction engine. The zero value runs all
// passes with default limits.
type ReduceOptions struct {
	// MaxIter caps the fixed-point iterations; <= 0 means 8.
	MaxIter int
	// Pass toggles, for ablation.
	NoShare      bool
	NoDontCare   bool
	NoStraighten bool
	// MaxContextNodes aborts the don't-care pass (leaving the graph
	// untouched) if the context BDD manager grows past this many
	// nodes; <= 0 means 1<<18.
	MaxContextNodes int
}

// ReduceStats reports what Reduce did.
type ReduceStats struct {
	VerticesBefore, VerticesAfter int
	TestsBefore, TestsAfter       int
	AssignsBefore, AssignsAfter   int

	Shares          int // vertices merged by hash-consing
	TestsEliminated int // TEST vertices bypassed
	EdgesRedirected int // infeasible TEST edges redirected
	AssignsDropped  int // dead ASSIGN vertices removed
	Iterations      int
}

// Changed reports whether any pass rewrote the graph.
func (s ReduceStats) Changed() bool {
	return s.Shares+s.TestsEliminated+s.EdgesRedirected+s.AssignsDropped > 0
}

func (s ReduceStats) String() string {
	return fmt.Sprintf("vertices %d -> %d (%d TEST -> %d, %d ASSIGN -> %d): %d share(s), %d test(s) eliminated, %d edge(s) redirected, %d assign(s) dropped, %d iteration(s)",
		s.VerticesBefore, s.VerticesAfter, s.TestsBefore, s.TestsAfter,
		s.AssignsBefore, s.AssignsAfter,
		s.Shares, s.TestsEliminated, s.EdgesRedirected, s.AssignsDropped,
		s.Iterations)
}

// Reduce runs the reduction passes to a fixed point and compacts
// g.Vertices to the reachable set. The graph must be well-formed; it
// stays well-formed.
func (g *SGraph) Reduce(opt ReduceOptions) ReduceStats {
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 8
	}
	before := g.ComputeStats()
	st := ReduceStats{
		VerticesBefore: before.Vertices,
		TestsBefore:    before.Tests,
		AssignsBefore:  before.Assigns,
	}
	for st.Iterations < maxIter {
		st.Iterations++
		changed := 0
		if !opt.NoStraighten {
			changed += g.straightenAssigns(&st)
		}
		if !opt.NoDontCare {
			changed += g.eliminateDontCares(opt, &st)
		}
		if !opt.NoShare {
			changed += g.shareSubgraphs(&st)
		}
		if changed == 0 {
			break
		}
	}
	g.Vertices = g.Reachable()
	after := g.ComputeStats()
	st.VerticesAfter = after.Vertices
	st.TestsAfter = after.Tests
	st.AssignsAfter = after.Assigns
	return st
}

// testKey is the structural identity of a test, mirroring the cfsm
// package's interning keys so equal tests allocated separately (as in
// hand-built graphs) compare equal.
func testKey(t *cfsm.Test) string {
	switch t.Kind {
	case cfsm.TestPresence:
		return "p:" + t.Signal.Name
	case cfsm.TestPredicate:
		return "e:" + t.Pred.C()
	default:
		return "s:" + t.Sel.Name
	}
}

// actionKey is the structural identity of an action.
func actionKey(a *cfsm.Action) string {
	if a.Kind == cfsm.ActEmit {
		if a.Value != nil {
			return "e:" + a.Signal.Name + ":" + a.Value.C()
		}
		return "e:" + a.Signal.Name
	}
	return "a:" + a.Var.Name + ":" + a.Expr.C()
}

// outEdges returns v's outgoing edges (shared helper for the
// traversals below; duplicates are meaningful for TEST vertices).
func outEdges(v *Vertex) []*Vertex {
	switch v.Kind {
	case Test:
		return v.Children
	case Begin, Assign:
		return []*Vertex{v.Next}
	}
	return nil
}

// topoOrder returns the reachable vertices with every parent strictly
// before each of its children — a true topological order even for
// shared DAGs, which the DFS preorder of Reachable is not (a shared
// child may precede one of its parents there). Kahn's algorithm
// seeded from BEGIN with a FIFO ready queue makes the order
// deterministic: ties break on first discovery.
func (g *SGraph) topoOrder() []*Vertex {
	reach := g.Reachable()
	indeg := make(map[*Vertex]int, len(reach))
	for _, v := range reach {
		for _, c := range outEdges(v) {
			indeg[c]++
		}
	}
	order := make([]*Vertex, 0, len(reach))
	queue := []*Vertex{g.Begin}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, c := range outEdges(v) {
			if indeg[c]--; indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	return order
}

// resolve follows a forwarding chain to its representative, with path
// compression.
func resolve(forward map[*Vertex]*Vertex, v *Vertex) *Vertex {
	r, ok := forward[v]
	if !ok {
		return v
	}
	r = resolve(forward, r)
	forward[v] = r
	return r
}

// applyForward rewrites every reachable edge through the forwarding
// map. Forward targets are always vertices of the pre-rewrite graph,
// so rewriting the pre-rewrite reachable set covers every edge that
// can survive.
func (g *SGraph) applyForward(forward map[*Vertex]*Vertex) {
	if len(forward) == 0 {
		return
	}
	for _, v := range g.Reachable() {
		switch v.Kind {
		case Test:
			for i, c := range v.Children {
				v.Children[i] = resolve(forward, c)
			}
		case Begin, Assign:
			v.Next = resolve(forward, v.Next)
		}
	}
}

// ---------------------------------------------------------------- 1

// straightenAssigns removes ASSIGN vertices whose state-variable
// write is overwritten on every path to END before the post-reaction
// commit can read it. The kill set of a vertex — variables assigned
// on every path from it to END — is a reverse-topological bitmask DP:
// intersection over TEST children, union with the written variable
// through an ASSIGN. The fired flag is preserved because on each such
// path the overwriting ASSIGN still executes; emissions are untouched.
func (g *SGraph) straightenAssigns(st *ReduceStats) int {
	if len(g.C.States) == 0 || len(g.C.States) > 64 {
		return 0 // bitmask DP; wider state spaces do not occur
	}
	bit := make(map[*cfsm.StateVar]uint64, len(g.C.States))
	for i, sv := range g.C.States {
		bit[sv] = 1 << i
	}
	order := g.topoOrder()
	kill := make(map[*Vertex]uint64, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		switch v.Kind {
		case End:
			kill[v] = 0
		case Test:
			k := ^uint64(0)
			for _, c := range v.Children {
				k &= kill[c]
			}
			kill[v] = k
		case Begin:
			kill[v] = kill[v.Next]
		case Assign:
			k := kill[v.Next]
			if v.Action.Kind == cfsm.ActAssign {
				k |= bit[v.Action.Var]
			}
			kill[v] = k
		}
	}
	forward := make(map[*Vertex]*Vertex)
	dropped := 0
	for _, v := range order {
		if v.Kind == Assign && v.Action.Kind == cfsm.ActAssign &&
			kill[v.Next]&bit[v.Action.Var] != 0 {
			forward[v] = v.Next
			dropped++
		}
	}
	g.applyForward(forward)
	st.AssignsDropped += dropped
	return dropped
}

// ---------------------------------------------------------------- 2

// eliminateDontCares computes a reachability context per vertex in a
// fresh multi-valued space (one variable per primitive test) and
// rewrites TEST vertices whose context rules outcomes out. The
// context of v is the exact condition on the test-outcome space under
// which evaluation reaches v, intersected with the declared care set,
// so an outcome whose edge cube does not intersect it can never be
// taken at run time. Contexts are computed once on the pre-rewrite
// graph; that stays exact through the single rewrite sweep because a
// redirected edge only removes paths whose constraint conjunction was
// already False, and a bypassed TEST contributes the outcome its
// context implied. Second-order opportunities are caught by the next
// fixed-point iteration.
func (g *SGraph) eliminateDontCares(opt ReduceOptions, st *ReduceStats) int {
	maxNodes := opt.MaxContextNodes
	if maxNodes <= 0 {
		maxNodes = 1 << 18
	}
	tests := g.C.Tests
	if len(tests) == 0 {
		return 0
	}
	sp := mvar.NewSpace()
	m := sp.M
	mvOf := make(map[*cfsm.Test]*mvar.MV, len(tests))
	for _, t := range tests {
		mvOf[t] = sp.NewMV(t.Name(), t.Arity(), mvar.Input)
	}
	order := g.topoOrder()
	for _, v := range order {
		if v.Kind != Test {
			continue
		}
		for _, t := range v.Tests {
			if mvOf[t] == nil {
				return 0 // foreign test; nothing sound to conclude
			}
		}
	}

	// Care set: at most one test of each declared exclusivity group
	// is true in any snapshot (cfsm.MarkExclusive's contract, trusted
	// exactly as estimate's false-path pruning trusts it), and
	// selector values stay inside their domain (Snapshot.EvalTest
	// rejects out-of-domain state values).
	care := bdd.True
	for _, grp := range g.C.Exclusive {
		for i := 0; i < len(grp); i++ {
			for j := i + 1; j < len(grp); j++ {
				if mvOf[grp[i]] == nil || mvOf[grp[j]] == nil {
					continue
				}
				both := m.And(sp.Eq(mvOf[grp[i]], 1), sp.Eq(mvOf[grp[j]], 1))
				care = m.And(care, m.Not(both))
			}
		}
	}
	for _, t := range tests {
		if v := mvOf[t]; v.Size != 1<<uint(v.NumBits()) {
			care = m.And(care, sp.ValidEncoding(v))
		}
	}

	// Forward context propagation in topological order: every
	// in-edge of a vertex is seen before the vertex itself.
	ctx := make(map[*Vertex]bdd.Node, len(order))
	for _, v := range order {
		ctx[v] = bdd.False
	}
	ctx[g.Begin] = care
	for _, v := range order {
		c := ctx[v]
		switch v.Kind {
		case Test:
			for idx, child := range v.Children {
				cc := m.And(c, outcomeCube(sp, mvOf, v.Tests, idx))
				ctx[child] = m.Or(ctx[child], cc)
			}
		case Begin, Assign:
			ctx[v.Next] = m.Or(ctx[v.Next], c)
		}
		if m.NumNodes() > maxNodes {
			return 0 // context blow-up: skip the pass this iteration
		}
	}

	forward := make(map[*Vertex]*Vertex)
	changed := 0
	for _, v := range order {
		if v.Kind != Test || ctx[v] == bdd.False {
			continue // unreachable under the care set; dropped later
		}
		arity := len(v.Children)
		feasible := make([]int, 0, arity)
		for idx := 0; idx < arity; idx++ {
			if m.Intersects(ctx[v], outcomeCube(sp, mvOf, v.Tests, idx)) {
				feasible = append(feasible, idx)
			}
		}
		if len(feasible) == 1 {
			forward[v] = v.Children[feasible[0]]
			st.TestsEliminated++
			changed++
			continue
		}
		if len(feasible) < arity && len(feasible) > 0 {
			rep := v.Children[feasible[0]]
			fi := 0
			for idx := 0; idx < arity; idx++ {
				if fi < len(feasible) && feasible[fi] == idx {
					fi++
					continue
				}
				if v.Children[idx] != rep {
					v.Children[idx] = rep
					st.EdgesRedirected++
					changed++
				}
			}
		}
		// A TEST whose children all coincide decides nothing; bypass
		// it unless it decodes a selector (FromChi keeps degenerate
		// selector TESTs so the object code still reads the state
		// value — respect that choice here).
		if _, bypassed := forward[v]; !bypassed && uniformNonSelector(v) {
			forward[v] = v.Children[0]
			st.TestsEliminated++
			changed++
		}
	}
	g.applyForward(forward)
	return changed
}

// uniformNonSelector reports whether v's children are all identical
// and no constituent test is a selector.
func uniformNonSelector(v *Vertex) bool {
	for _, t := range v.Tests {
		if t.Kind == cfsm.TestSelector {
			return false
		}
	}
	for _, c := range v.Children[1:] {
		if c != v.Children[0] {
			return false
		}
	}
	return true
}

// outcomeCube returns the constraint cube of one combined outcome of
// a (possibly multi-test) TEST vertex, decoding the index in the same
// mixed-radix order Evaluate composes it (first test most
// significant).
func outcomeCube(sp *mvar.Space, mvOf map[*cfsm.Test]*mvar.MV, tests []*cfsm.Test, idx int) bdd.Node {
	cube := bdd.True
	for i := len(tests) - 1; i >= 0; i-- {
		a := tests[i].Arity()
		cube = sp.M.And(cube, sp.Eq(mvOf[tests[i]], idx%a))
		idx /= a
	}
	return cube
}

// ---------------------------------------------------------------- 3

// shareSubgraphs hash-conses the reachable vertices bottom-up: two
// vertices with the same kind, the same structural tests/action and
// identical (already-canonicalised) children merge into one. Children
// are processed before parents (reverse topological order), so each
// vertex's children are canonical when its own key is formed and
// forwarding chains never exceed one hop.
func (g *SGraph) shareSubgraphs(st *ReduceStats) int {
	order := g.topoOrder()
	id := make(map[*Vertex]int, len(order))
	for i, v := range order {
		id[v] = i
	}
	rep := make(map[*Vertex]*Vertex)
	canon := make(map[string]*Vertex, len(order))
	merged := 0
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		switch v.Kind {
		case Test:
			for j, c := range v.Children {
				if r, ok := rep[c]; ok {
					v.Children[j] = r
				}
			}
		case Begin, Assign:
			if r, ok := rep[v.Next]; ok {
				v.Next = r
			}
		}
		if v.Kind == Begin {
			continue
		}
		key := vertexKey(v, id)
		if w, ok := canon[key]; ok && w != v {
			rep[v] = w
			merged++
		} else if !ok {
			canon[key] = v
		}
	}
	st.Shares += merged
	return merged
}

// vertexKey renders the hash-consing identity of a vertex. Child
// identity uses the topological index of the (canonicalised) child.
func vertexKey(v *Vertex, id map[*Vertex]int) string {
	var b strings.Builder
	switch v.Kind {
	case End:
		b.WriteString("E")
	case Assign:
		fmt.Fprintf(&b, "A|%s|%d", actionKey(v.Action), id[v.Next])
	case Test:
		b.WriteString("T")
		for _, t := range v.Tests {
			b.WriteString("|")
			b.WriteString(testKey(t))
		}
		for _, c := range v.Children {
			fmt.Fprintf(&b, "|%d", id[c])
		}
	}
	return b.String()
}
