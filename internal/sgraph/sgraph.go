// Package sgraph implements the software graph (s-graph) of Section
// III of the paper: a directed acyclic control/data-flow graph with
// BEGIN, END, TEST and ASSIGN vertices that represents the software
// implementation of one CFSM transition function. The s-graph is built
// from the BDD of the CFSM's characteristic function (Theorem 1), is
// in one-to-one correspondence with the statements of the generated C
// code, and is the structure on which code size and execution time are
// estimated.
package sgraph

import (
	"fmt"
	"sort"
	"strings"

	"polis/internal/cfsm"
)

// Kind enumerates s-graph vertex types (Definition 1).
type Kind int

// Vertex kinds.
const (
	Begin Kind = iota
	End
	Test
	Assign
)

func (k Kind) String() string {
	switch k {
	case Begin:
		return "BEGIN"
	case End:
		return "END"
	case Test:
		return "TEST"
	default:
		return "ASSIGN"
	}
}

// Vertex is one s-graph node. A TEST vertex carries one or more
// primitive tests (more than one after TEST-node collapsing) and one
// child per combined outcome; the paper's footnote 3 allows more than
// two children, which multi-valued selector tests use directly. BEGIN
// and ASSIGN vertices have a single Next child.
type Vertex struct {
	ID   int
	Kind Kind

	// Test vertices.
	Tests    []*cfsm.Test
	Children []*Vertex // length = product of test arities

	// Hot, when non-nil, is a permutation of the outcome indices of a
	// TEST vertex ordered hottest-first, set by the profile-guided
	// Specialize pass. It is purely advisory layout/emission guidance:
	// Children stays indexed by the semantic combined outcome, so
	// evaluation and the equivalence checks never consult it. Code
	// generation places Hot[0] on the fall-through arc and tests the
	// remaining outcomes in Hot order; a nil Hot means the legacy
	// layout (outcome 0 falls through), which Specialize preserves by
	// normalising identity permutations back to nil.
	Hot []int

	// Assign vertices.
	Action *cfsm.Action
	Next   *Vertex
}

// Arity returns the number of outgoing edges of a TEST vertex.
func (v *Vertex) Arity() int {
	n := 1
	for _, t := range v.Tests {
		n *= t.Arity()
	}
	return n
}

// OutcomeAt maps an emission position to the semantic outcome index
// laid out there: Hot[pos] when a hot order is set, pos otherwise.
func (v *Vertex) OutcomeAt(pos int) int {
	if v.Hot != nil {
		return v.Hot[pos]
	}
	return pos
}

// HotPos is the inverse of OutcomeAt: the emission position of
// semantic outcome k. Position 0 is the fall-through arm; higher
// positions are tested (and so cost more) in order. Arities are tiny,
// so the linear scan beats keeping an inverse table coherent.
func (v *Vertex) HotPos(k int) int {
	if v.Hot == nil {
		return k
	}
	for pos, o := range v.Hot {
		if o == k {
			return pos
		}
	}
	return k // unreachable on well-formed graphs
}

// FallIdx returns the semantic outcome index code generation places on
// the fall-through arc: the hottest outcome when a hot order is set,
// outcome 0 otherwise.
func (v *Vertex) FallIdx() int {
	if len(v.Hot) > 0 {
		return v.Hot[0]
	}
	return 0
}

// SGraph is a complete software graph for one CFSM.
type SGraph struct {
	C        *cfsm.CFSM
	Begin    *Vertex
	End      *Vertex
	Vertices []*Vertex // all vertices, Begin first, in creation order
}

// newVertex appends a vertex to the graph.
func (g *SGraph) newVertex(k Kind) *Vertex {
	v := &Vertex{ID: len(g.Vertices), Kind: k}
	g.Vertices = append(g.Vertices, v)
	return v
}

// Stats summarises the structure of an s-graph.
type Stats struct {
	Vertices int
	Tests    int
	Assigns  int
	Edges    int
	// Depth is the maximum number of vertices on a BEGIN-to-END
	// path; with the outputs-after-support ordering each input is
	// tested at most once per path, so Depth bounds execution time.
	Depth int
	// Paths is the number of distinct BEGIN-to-END paths (capped at
	// 1<<62 to avoid overflow on pathological graphs).
	Paths int64
}

// ComputeStats traverses the graph once and returns its statistics.
func (g *SGraph) ComputeStats() Stats {
	var s Stats
	depth := make(map[*Vertex]int)
	paths := make(map[*Vertex]int64)
	var walk func(v *Vertex) (int, int64)
	walk = func(v *Vertex) (int, int64) {
		if d, ok := depth[v]; ok {
			return d, paths[v]
		}
		s.Vertices++
		var d int
		var p int64
		switch v.Kind {
		case End:
			d, p = 1, 1
		case Test:
			s.Tests++
			for _, c := range v.Children {
				s.Edges++
				cd, cp := walk(c)
				if cd+1 > d {
					d = cd + 1
				}
				p += cp
				if p < 0 || p > 1<<62 {
					p = 1 << 62
				}
			}
		default: // Begin, Assign
			if v.Kind == Assign {
				s.Assigns++
			}
			s.Edges++
			cd, cp := walk(v.Next)
			d, p = cd+1, cp
		}
		depth[v] = d
		paths[v] = p
		return d, p
	}
	d, p := walk(g.Begin)
	s.Depth = d
	s.Paths = p
	return s
}

// Evaluate executes the s-graph under a snapshot, implementing the
// paper's procedure evaluate: tests are evaluated as TEST vertices are
// reached, actions execute as soon as their ASSIGN vertex is visited.
// All expression reads see the pre-reaction state (copy-on-entry), so
// the result matches cfsm.CFSM.React for a functional s-graph. Fired
// reports whether any ASSIGN vertex was visited, which is what the
// RTOS uses to decide whether input events were consumed.
func (g *SGraph) Evaluate(snap cfsm.Snapshot) cfsm.Reaction {
	next := make(map[*cfsm.StateVar]int64, len(snap.State))
	for v, val := range snap.State {
		next[v] = val
	}
	r := cfsm.Reaction{NextState: next}
	env := snap.Env()
	v := g.Begin
	for v.Kind != End {
		switch v.Kind {
		case Begin:
			v = v.Next
		case Test:
			idx := 0
			for _, t := range v.Tests {
				idx = idx*t.Arity() + snap.EvalTest(t)
			}
			v = v.Children[idx]
		case Assign:
			r.Fired = true
			a := v.Action
			switch a.Kind {
			case cfsm.ActEmit:
				em := cfsm.Emission{Signal: a.Signal}
				if a.Value != nil {
					em.Value = a.Value.Eval(env)
				}
				r.Emitted = append(r.Emitted, em)
			case cfsm.ActAssign:
				next[a.Var] = a.Expr.Eval(env)
			}
			v = v.Next
		}
	}
	return r
}

// EvaluateFired walks the s-graph under a dense snapshot and reports
// whether any ASSIGN vertex would be visited — the event-consumption
// bit of Section IV-D — without building the full reaction. Tests read
// only the (pre-reaction) snapshot, so the walk can stop at the first
// ASSIGN; it allocates nothing, which the co-simulation hot loop relies
// on.
func (g *SGraph) EvaluateFired(snap *cfsm.DenseSnapshot) bool {
	v := g.Begin
	for {
		switch v.Kind {
		case End:
			return false
		case Assign:
			return true
		case Test:
			idx := 0
			for _, t := range v.Tests {
				idx = idx*t.Arity() + snap.EvalTest(t)
			}
			v = v.Children[idx]
		default: // Begin
			v = v.Next
		}
	}
}

// CheckWellFormed verifies Definition 1 invariants: a single BEGIN
// source, a single END sink, TEST vertices with the right number of
// children, acyclicity, and that all vertices are reachable.
func (g *SGraph) CheckWellFormed() error {
	if g.Begin == nil || g.Begin.Kind != Begin {
		return fmt.Errorf("sgraph: missing BEGIN")
	}
	if g.End == nil || g.End.Kind != End {
		return fmt.Errorf("sgraph: missing END")
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	// Iterative grey/black DFS with an explicit frame stack: deep
	// TEST chains from large random networks must not overflow the
	// goroutine stack (same precedent as the BDD kernel's iterative
	// walks). Structure checks run on first visit, preserving the
	// recursive version's error order.
	check := func(v *Vertex) error {
		switch v.Kind {
		case Test:
			if len(v.Tests) == 0 {
				return fmt.Errorf("sgraph: TEST vertex %d with no tests", v.ID)
			}
			if len(v.Children) != v.Arity() {
				return fmt.Errorf("sgraph: TEST vertex %d has %d children, want %d",
					v.ID, len(v.Children), v.Arity())
			}
			if v.Hot != nil {
				if len(v.Hot) != v.Arity() {
					return fmt.Errorf("sgraph: TEST vertex %d hot order has %d entries, want %d",
						v.ID, len(v.Hot), v.Arity())
				}
				hseen := make([]bool, v.Arity())
				for _, k := range v.Hot {
					if k < 0 || k >= v.Arity() || hseen[k] {
						return fmt.Errorf("sgraph: TEST vertex %d hot order is not a permutation of outcomes", v.ID)
					}
					hseen[k] = true
				}
			}
		case Begin, Assign:
			if v.Kind == Assign && v.Action == nil {
				return fmt.Errorf("sgraph: ASSIGN vertex %d with no action", v.ID)
			}
			if v.Next == nil {
				return fmt.Errorf("sgraph: vertex %d has no next", v.ID)
			}
		}
		return nil
	}
	childAt := func(v *Vertex, i int) *Vertex {
		switch v.Kind {
		case Test:
			if i < len(v.Children) {
				return v.Children[i]
			}
		case Begin, Assign:
			if i == 0 {
				return v.Next
			}
		}
		return nil
	}
	color := make(map[*Vertex]int)
	type frame struct {
		v    *Vertex
		next int
	}
	if err := check(g.Begin); err != nil {
		return err
	}
	color[g.Begin] = grey
	stack := []frame{{g.Begin, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		c := childAt(f.v, f.next)
		if c == nil {
			color[f.v] = black
			stack = stack[:len(stack)-1]
			continue
		}
		f.next++
		switch color[c] {
		case grey:
			return fmt.Errorf("sgraph: cycle through vertex %d", c.ID)
		case black:
			continue
		}
		if err := check(c); err != nil {
			return err
		}
		color[c] = grey
		stack = append(stack, frame{c, 0})
	}
	if color[g.End] != black {
		return fmt.Errorf("sgraph: END not reachable from BEGIN")
	}
	for _, v := range g.Vertices {
		if color[v] != black {
			return fmt.Errorf("sgraph: vertex %d unreachable", v.ID)
		}
	}
	return nil
}

// Reachable returns the vertices reachable from BEGIN in a stable
// DFS preorder (each vertex before anything first discovered through
// it). Code generation lays statements out in exactly this order, so
// the traversal below must stay byte-identical to the recursive
// preorder it replaced; the explicit stack (children pushed in
// reverse, seen-check on pop) visits the same sequence without
// growing the goroutine stack on deep TEST chains. TEST children are
// walked in emission order (OutcomeAt), so a specialized vertex lays
// its hot fall-through subgraph out first and Hot=nil graphs keep the
// historical layout exactly.
func (g *SGraph) Reachable() []*Vertex {
	var order []*Vertex
	seen := make(map[*Vertex]bool)
	stack := []*Vertex{g.Begin}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		order = append(order, v)
		switch v.Kind {
		case Test:
			for p := len(v.Children) - 1; p >= 0; p-- {
				if c := v.Children[v.OutcomeAt(p)]; !seen[c] {
					stack = append(stack, c)
				}
			}
		case Begin, Assign:
			if !seen[v.Next] {
				stack = append(stack, v.Next)
			}
		}
	}
	return order
}

// Clone returns a deep copy of the graph structure. Vertex structs are
// duplicated (so Hot orders and wiring can diverge) while the
// immutable leaves — tests, actions, and the owning CFSM — stay
// shared, which is what CheckEquivalent's pointer-based comparisons
// require.
func (g *SGraph) Clone() *SGraph {
	m := make(map[*Vertex]*Vertex, len(g.Vertices))
	ng := &SGraph{C: g.C, Vertices: make([]*Vertex, 0, len(g.Vertices))}
	for _, v := range g.Vertices {
		nv := &Vertex{ID: v.ID, Kind: v.Kind, Action: v.Action}
		if v.Tests != nil {
			nv.Tests = append([]*cfsm.Test(nil), v.Tests...)
		}
		if v.Hot != nil {
			nv.Hot = append([]int(nil), v.Hot...)
		}
		m[v] = nv
		ng.Vertices = append(ng.Vertices, nv)
	}
	for _, v := range g.Vertices {
		nv := m[v]
		if v.Next != nil {
			nv.Next = m[v.Next]
		}
		if v.Children != nil {
			nv.Children = make([]*Vertex, len(v.Children))
			for i, c := range v.Children {
				nv.Children[i] = m[c]
			}
		}
	}
	ng.Begin = m[g.Begin]
	ng.End = m[g.End]
	return ng
}

// Parents computes the in-degree of each reachable vertex.
func (g *SGraph) Parents() map[*Vertex]int {
	in := make(map[*Vertex]int)
	for _, v := range g.Reachable() {
		switch v.Kind {
		case Test:
			for _, c := range v.Children {
				in[c]++
			}
		case Begin, Assign:
			in[v.Next]++
		}
	}
	return in
}

// Dot renders the graph in Graphviz format for inspection.
func (g *SGraph) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", g.C.Name)
	vs := g.Reachable()
	sort.Slice(vs, func(i, j int) bool { return vs[i].ID < vs[j].ID })
	for _, v := range vs {
		label := v.Kind.String()
		switch v.Kind {
		case Test:
			names := make([]string, len(v.Tests))
			for i, t := range v.Tests {
				names[i] = t.Name()
			}
			label = strings.Join(names, ",")
		case Assign:
			label = v.Action.Name()
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v.ID, label)
		switch v.Kind {
		case Test:
			for i, c := range v.Children {
				fmt.Fprintf(&b, "  n%d -> n%d [label=\"%d\"];\n", v.ID, c.ID, i)
			}
		case Begin, Assign:
			fmt.Fprintf(&b, "  n%d -> n%d;\n", v.ID, v.Next.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
