package sgraph

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// SpecializeProfile is the execution-frequency evidence the
// profile-guided specialization pass consumes: how often each full
// test-outcome vector was observed for this module across a campaign.
// It deliberately lives in sgraph (rather than importing the collector
// package) so the pass has no dependency on how profiles are gathered;
// internal/profile converts its per-module aggregates into this shape.
type SpecializeProfile struct {
	// TestNames gives the column order of the outcome vectors, using
	// cfsm.Test.Name() strings (unique per CFSM). Tests the collector
	// saw that the graph no longer contains — or vice versa — are
	// simply ignored, so profiles survive re-synthesis drift.
	TestNames []string
	// Outcomes maps an observed outcome vector, encoded as the
	// comma-joined decimal outcomes in TestNames order (OutcomeKey),
	// to the number of reactions that exhibited it.
	Outcomes map[string]int64
}

// OutcomeKey encodes one outcome vector in the canonical form used by
// SpecializeProfile.Outcomes.
func OutcomeKey(outcome []int) string {
	parts := make([]string, len(outcome))
	for i, k := range outcome {
		parts[i] = strconv.Itoa(k)
	}
	return strings.Join(parts, ",")
}

// SpecializeStats summarises what a Specialize pass did.
type SpecializeStats struct {
	Samples   int64 // profiled reactions whose outcome vectors were applied
	Tests     int   // TEST vertices that received profile weight
	Reordered int   // TEST vertices given a non-identity hot order
}

func (s SpecializeStats) String() string {
	return fmt.Sprintf("specialize: reordered %d/%d weighted TEST vertices from %d samples",
		s.Reordered, s.Tests, s.Samples)
}

// Specialize reorders the outcome edges of TEST vertices hottest-first
// according to an execution profile: each observed outcome vector is
// replayed through the graph (so edge weights reflect the correlated
// path frequencies actually seen, not per-test marginals), and every
// weighted vertex gets a Hot permutation placing its most frequent
// combined outcome on the fall-through arc with colder outcomes tested
// behind it. The pass touches layout metadata only — Children keeps
// its semantic indexing and evaluation never consults Hot — so the
// observable reaction function is unchanged by construction;
// SpecializeChecked additionally discharges that claim through
// CheckEquivalent. Identity orders are normalised to nil so an
// unspecialized graph and a graph specialized under a uniform profile
// generate byte-identical code.
func (g *SGraph) Specialize(p *SpecializeProfile) (SpecializeStats, error) {
	var st SpecializeStats
	if p == nil || len(p.Outcomes) == 0 || len(p.TestNames) == 0 {
		return st, nil
	}
	col := make(map[string]int, len(p.TestNames))
	for i, n := range p.TestNames {
		col[n] = i
	}
	// Column index per graph test, -1 when the profile never saw it.
	colOf := make([]int, len(g.C.Tests))
	matched := false
	for i, t := range g.C.Tests {
		if c, ok := col[t.Name()]; ok {
			colOf[i] = c
			matched = true
		} else {
			colOf[i] = -1
		}
	}
	if !matched {
		return st, nil
	}
	idOf := make(map[string]int, len(g.C.Tests))
	for i, t := range g.C.Tests {
		idOf[t.Name()] = i
	}
	// Deterministic iteration: replay outcome vectors in sorted key
	// order so tie-breaks cannot depend on map ordering.
	keys := make([]string, 0, len(p.Outcomes))
	for k := range p.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	weight := make(map[*Vertex][]int64)
	vec := make([]int, len(g.C.Tests))
	for _, key := range keys {
		count := p.Outcomes[key]
		if count <= 0 {
			continue
		}
		parts := strings.Split(key, ",")
		if len(parts) != len(p.TestNames) {
			return st, fmt.Errorf("sgraph: specialize: outcome key %q has %d entries, profile declares %d tests",
				key, len(parts), len(p.TestNames))
		}
		// Project the profile vector onto this graph's test list;
		// uncovered tests are marked unknown.
		for i := range vec {
			vec[i] = -1
		}
		ok := true
		for i, c := range colOf {
			if c < 0 {
				continue
			}
			v, err := strconv.Atoi(parts[c])
			if err != nil || v < 0 || v >= g.C.Tests[i].Arity() {
				ok = false
				break
			}
			vec[i] = v
		}
		if !ok {
			return st, fmt.Errorf("sgraph: specialize: malformed outcome key %q", key)
		}
		st.Samples += count
		// Replay the vector from BEGIN, crediting each TEST vertex's
		// taken outcome. A test the profile does not cover ends the
		// replay: the remainder of the path is undetermined.
		v := g.Begin
		steps := 0
		for v.Kind != End {
			if steps++; steps > len(g.Vertices)+1 {
				return st, fmt.Errorf("sgraph: specialize: evaluation does not terminate")
			}
			if v.Kind != Test {
				v = v.Next
				continue
			}
			idx := 0
			known := true
			for _, t := range v.Tests {
				o := vec[idOf[t.Name()]]
				if o < 0 {
					known = false
					break
				}
				idx = idx*t.Arity() + o
			}
			if !known {
				break
			}
			w := weight[v]
			if w == nil {
				w = make([]int64, v.Arity())
				weight[v] = w
			}
			w[idx] += count
			v = v.Children[idx]
		}
	}
	for v, w := range weight {
		st.Tests++
		order := make([]int, len(w))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return w[order[a]] > w[order[b]]
		})
		identity := true
		for i, k := range order {
			if i != k {
				identity = false
				break
			}
		}
		if identity {
			v.Hot = nil
			continue
		}
		v.Hot = order
		st.Reordered++
	}
	return st, nil
}

// SpecializeChecked runs Specialize and equivalence-gates the result:
// the pre-pass graph is cloned, the specialized graph is re-validated
// for well-formedness (which checks every Hot permutation) and then
// differentially compared with CheckEquivalent over the care-set
// outcome space. On any gate failure the hot orders are reverted and
// the error returned, so a caller never ships an unchecked layout. An
// outcome space too large to enumerate exhaustively counts as a pass —
// the pass only writes advisory layout metadata, and the per-reaction
// netfuzz differential covers the generated code.
func (g *SGraph) SpecializeChecked(p *SpecializeProfile) (SpecializeStats, error) {
	orig := g.Clone()
	revert := func() {
		for i, v := range g.Vertices {
			v.Hot = orig.Vertices[i].Hot
		}
	}
	st, err := g.Specialize(p)
	if err != nil {
		revert()
		return st, err
	}
	if err := g.CheckWellFormed(); err != nil {
		revert()
		return st, fmt.Errorf("sgraph: specialize produced ill-formed graph: %w", err)
	}
	if err := g.CheckEquivalent(orig); err != nil && !errors.Is(err, ErrOutcomeSpaceTooLarge) {
		revert()
		return st, fmt.Errorf("sgraph: specialize equivalence gate: %w", err)
	}
	return st, nil
}
