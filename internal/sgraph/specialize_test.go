package sgraph

import (
	"strings"
	"testing"
)

// profileFor builds a SpecializeProfile over all of c's tests with the
// given outcome-vector counts.
func profileFor(g *SGraph, counts map[string]int64) *SpecializeProfile {
	names := make([]string, len(g.C.Tests))
	for i, t := range g.C.Tests {
		names[i] = t.Name()
	}
	return &SpecializeProfile{TestNames: names, Outcomes: counts}
}

// hotVertices counts TEST vertices carrying a non-nil hot order.
func hotVertices(g *SGraph) int {
	n := 0
	for _, v := range g.Reachable() {
		if v.Kind == Test && v.Hot != nil {
			n++
		}
	}
	return n
}

// TestSpecializeHotPath drives the pass with a profile heavily biased
// toward one outcome vector and verifies: at least one vertex gets a
// hot order, the hot outcome lands on the fall-through arc, the graph
// stays well-formed and equivalent to the reference interpreter, and
// the layout (Reachable) actually changed.
func TestSpecializeHotPath(t *testing.T) {
	c := simple()
	g := buildGraph(t, c, OrderSiftAfterSupport)
	before := g.Reachable()

	// simple's tests are present_c and the predicate; bias hard toward
	// (present=1, pred=0) — the "count up" transition.
	counts := map[string]int64{}
	for _, k := range []string{"0,0", "0,1", "1,0", "1,1"} {
		counts[k] = 1
	}
	// Order-insensitive: find the present test's column.
	presCol := 0
	for i, name := range profileFor(g, nil).TestNames {
		if strings.HasPrefix(name, "present_") {
			presCol = i
		}
	}
	hotKey := []string{"0", "0"}
	hotKey[presCol] = "1"
	counts[strings.Join(hotKey, ",")] = 1000
	st, err := g.SpecializeChecked(profileFor(g, counts))
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 1003 {
		t.Fatalf("samples = %d, want 1003", st.Samples)
	}
	if st.Reordered == 0 || hotVertices(g) == 0 {
		t.Fatalf("expected at least one reordered vertex, stats %v", st)
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, c, g, 11)
	// The hot outcome 1 of some reordered binary vertex must be the
	// fall-through arm.
	for _, v := range g.Reachable() {
		if v.Kind == Test && v.Hot != nil {
			if v.FallIdx() != v.Hot[0] {
				t.Fatalf("FallIdx %d disagrees with Hot[0] %d", v.FallIdx(), v.Hot[0])
			}
		}
	}
	after := g.Reachable()
	same := len(before) == len(after)
	if same {
		for i := range before {
			if before[i] != after[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("specialization reordered vertices but the layout did not change")
	}
}

// TestSpecializeIdentityNormalizes: a profile matching the default
// layout (outcome 0 hottest everywhere) must leave every Hot nil, so
// unspecialized and trivially-specialized graphs generate identical
// code.
func TestSpecializeIdentityNormalizes(t *testing.T) {
	g := buildGraph(t, simple(), OrderSiftAfterSupport)
	counts := map[string]int64{"0,0": 1000, "0,1": 10, "1,0": 5, "1,1": 1}
	// Outcome 0,0 dominating keeps outcome 0 first at the root test;
	// deeper vertices see monotonically decreasing weights in index
	// order too, so everything normalises to identity.
	st, err := g.SpecializeChecked(profileFor(g, counts))
	if err != nil {
		t.Fatal(err)
	}
	if hotVertices(g) != 0 {
		t.Fatalf("identity hot orders must normalise to nil, got %d hot vertices (stats %v)",
			hotVertices(g), st)
	}
}

// TestSpecializeMalformedProfile: a corrupt outcome key errors out and
// reverts any partial hot orders.
func TestSpecializeMalformedProfile(t *testing.T) {
	g := buildGraph(t, simple(), OrderSiftAfterSupport)
	p := profileFor(g, map[string]int64{"1,0": 50, "banana": 3})
	if _, err := g.SpecializeChecked(p); err == nil {
		t.Fatal("malformed outcome key must fail")
	}
	if hotVertices(g) != 0 {
		t.Fatal("failed specialization must leave no hot orders behind")
	}
	// Wrong column count likewise.
	p = profileFor(g, map[string]int64{"1": 50})
	if _, err := g.SpecializeChecked(p); err == nil {
		t.Fatal("short outcome key must fail")
	}
}

// TestSpecializeUnknownTestsIgnored: a profile from a different module
// (no matching test names) is a no-op, not an error.
func TestSpecializeUnknownTestsIgnored(t *testing.T) {
	g := buildGraph(t, simple(), OrderSiftAfterSupport)
	p := &SpecializeProfile{TestNames: []string{"present_zzz"}, Outcomes: map[string]int64{"1": 7}}
	st, err := g.SpecializeChecked(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 0 || hotVertices(g) != 0 {
		t.Fatalf("foreign profile must be ignored, stats %v", st)
	}
}

// TestSpecializeSelector exercises a multi-way (selector) vertex: bias
// toward a non-zero state and verify the graph survives the gate with
// a reordered multi-way vertex.
func TestSpecializeSelector(t *testing.T) {
	c := counter()
	g := buildGraph(t, c, OrderSiftAfterSupport)
	names := make([]string, len(g.C.Tests))
	selCol := -1
	for i, tt := range g.C.Tests {
		names[i] = tt.Name()
		if strings.HasPrefix(tt.Name(), "sel_") {
			selCol = i
		}
	}
	if selCol < 0 {
		t.Fatal("counter has no selector test")
	}
	counts := map[string]int64{}
	// tick present, rst absent, state 3 dominates; a smattering of
	// everything else. Column order follows g.C.Tests.
	vec := func(pr, p, sel int) string {
		parts := make([]string, len(names))
		for i, n := range names {
			switch {
			case strings.HasPrefix(n, "present_rst"):
				parts[i] = itoa(pr)
			case strings.HasPrefix(n, "present_tick"):
				parts[i] = itoa(p)
			default:
				parts[i] = itoa(sel)
			}
		}
		return strings.Join(parts, ",")
	}
	counts[vec(0, 1, 3)] = 500
	for s := 0; s < 5; s++ {
		counts[vec(0, 1, s)] += 2
		counts[vec(1, 0, s)] = 1
	}
	st, err := g.SpecializeChecked(&SpecializeProfile{TestNames: names, Outcomes: counts})
	if err != nil {
		t.Fatal(err)
	}
	if st.Reordered == 0 {
		t.Fatalf("selector bias should reorder at least one vertex, stats %v", st)
	}
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, c, g, 23)
}

func itoa(v int) string {
	return string(rune('0' + v))
}

// TestCloneIsolation: mutating a clone's wiring and hot orders must
// not leak into the original, and the clone starts equivalent.
func TestCloneIsolation(t *testing.T) {
	g := buildGraph(t, counter(), OrderSiftAfterSupport)
	cl := g.Clone()
	if err := cl.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
	if err := g.CheckEquivalent(cl); err != nil {
		t.Fatal(err)
	}
	for _, v := range cl.Vertices {
		if v.Kind == Test {
			hot := make([]int, v.Arity())
			for i := range hot {
				hot[i] = v.Arity() - 1 - i
			}
			v.Hot = hot
		}
	}
	for _, v := range g.Vertices {
		if v.Hot != nil {
			t.Fatal("clone mutation leaked into the original")
		}
	}
}

// TestCheckWellFormedRejectsBadHot: non-permutation hot orders are a
// structural error.
func TestCheckWellFormedRejectsBadHot(t *testing.T) {
	g := buildGraph(t, simple(), OrderSiftAfterSupport)
	var tv *Vertex
	for _, v := range g.Reachable() {
		if v.Kind == Test {
			tv = v
			break
		}
	}
	if tv == nil {
		t.Fatal("no TEST vertex")
	}
	tv.Hot = []int{0, 0}
	if err := g.CheckWellFormed(); err == nil {
		t.Fatal("duplicate hot entries must be rejected")
	}
	tv.Hot = []int{0}
	if err := g.CheckWellFormed(); err == nil {
		t.Fatal("short hot order must be rejected")
	}
	tv.Hot = []int{0, 2}
	if err := g.CheckWellFormed(); err == nil {
		t.Fatal("out-of-range hot entry must be rejected")
	}
	tv.Hot = nil
	if err := g.CheckWellFormed(); err != nil {
		t.Fatal(err)
	}
}
