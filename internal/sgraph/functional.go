package sgraph

import (
	"errors"
	"fmt"

	"polis/internal/cfsm"
)

// ErrOutcomeSpaceTooLarge is returned by the exhaustive checks when
// the product of test arities exceeds the enumeration bound. Callers
// that use the checks as an optional gate (SpecializeChecked) detect
// it with errors.Is and degrade gracefully instead of failing.
var ErrOutcomeSpaceTooLarge = errors.New("sgraph: outcome space too large for exhaustive check")

// CheckFunctional verifies Definition 2 of the paper over the whole
// test-outcome space: for every combination of test outcomes the
// s-graph's evaluation must terminate at END, visit each primitive
// test at most once (the property the outputs-after-support ordering
// guarantees), and produce exactly the action set of the reactive
// function r. The outcome space is the product of the test arities;
// the check refuses spaces larger than maxCombos.
func (g *SGraph) CheckFunctional(r *cfsm.Reactive) error {
	const maxCombos = 1 << 22
	combos := 1
	for _, t := range g.C.Tests {
		combos *= t.Arity()
		if combos > maxCombos {
			return ErrOutcomeSpaceTooLarge
		}
	}
	outcome := make([]int, len(g.C.Tests))
	idOf := make(map[*cfsm.Test]int, len(g.C.Tests))
	for i, t := range g.C.Tests {
		idOf[t] = i
	}
	for k := 0; k < combos; k++ {
		// Decode the combination.
		rem := k
		for i := len(g.C.Tests) - 1; i >= 0; i-- {
			a := g.C.Tests[i].Arity()
			outcome[i] = rem % a
			rem /= a
		}
		// Definition 2 need only hold on the care set: a combination
		// that sets two tests of a declared exclusivity group cannot
		// arise from any snapshot (cfsm.MarkExclusive's contract, the
		// same declaration the estimator's false-path pruning and the
		// reduction engine's don't-care elimination trust), so the
		// graph may resolve it arbitrarily.
		if violatesExclusive(g.C, outcome, idOf) {
			continue
		}
		// Walk the graph under these outcomes.
		fired := make([]bool, len(g.C.Actions))
		seen := make(map[*cfsm.Test]bool)
		v := g.Begin
		steps := 0
		for v.Kind != End {
			if steps++; steps > len(g.Vertices)+1 {
				return fmt.Errorf("sgraph: combination %d: evaluation does not terminate", k)
			}
			switch v.Kind {
			case Begin:
				v = v.Next
			case Assign:
				fired[g.C.ActionID(v.Action)] = true
				v = v.Next
			case Test:
				idx := 0
				for _, t := range v.Tests {
					if seen[t] {
						return fmt.Errorf("sgraph: combination %d: test %s visited twice on one path",
							k, t.Name())
					}
					seen[t] = true
					idx = idx*t.Arity() + outcome[idOf[t]]
				}
				v = v.Children[idx]
			}
		}
		// Compare against the reactive function.
		want, err := r.ActionSetFor(outcome)
		if err != nil {
			return fmt.Errorf("sgraph: combination %d: %w", k, err)
		}
		for j := range want {
			if fired[j] != want[j] {
				return fmt.Errorf(
					"sgraph: combination %d: action %s fired=%v, reactive function says %v",
					k, g.C.Actions[j].Name(), fired[j], want[j])
			}
		}
	}
	return nil
}

// violatesExclusive reports whether the outcome combination sets two
// or more tests of one declared exclusivity group.
func violatesExclusive(c *cfsm.CFSM, outcome []int, idOf map[*cfsm.Test]int) bool {
	for _, grp := range c.Exclusive {
		n := 0
		for _, t := range grp {
			if i, ok := idOf[t]; ok && outcome[i] == 1 {
				if n++; n > 1 {
					return true
				}
			}
		}
	}
	return false
}

// walkOutcome is one exhaustive-check evaluation of g under a fixed
// outcome vector: it returns the emission sequence (as structural
// action keys, in path order), the last assign per state variable,
// and the fired flag. Unlike CheckFunctional's walk it tolerates a
// test appearing more than once on a path (the outcome vector keeps
// repeated evaluations consistent), so it can compare graphs the
// reduction engine has not cleaned up yet; termination is still
// enforced, since any path of a well-formed DAG visits each vertex at
// most once.
func (g *SGraph) walkOutcome(outcome []int, idOf map[*cfsm.Test]int) (emits []string, last map[*cfsm.StateVar]string, fired bool, err error) {
	last = make(map[*cfsm.StateVar]string)
	v := g.Begin
	steps := 0
	for v.Kind != End {
		if steps++; steps > len(g.Vertices)+1 {
			return nil, nil, false, fmt.Errorf("evaluation does not terminate")
		}
		switch v.Kind {
		case Begin:
			v = v.Next
		case Assign:
			fired = true
			if v.Action.Kind == cfsm.ActEmit {
				emits = append(emits, actionKey(v.Action))
			} else {
				last[v.Action.Var] = actionKey(v.Action)
			}
			v = v.Next
		case Test:
			idx := 0
			for _, t := range v.Tests {
				i, ok := idOf[t]
				if !ok {
					return nil, nil, false, fmt.Errorf("test %s not declared by the CFSM", t.Name())
				}
				idx = idx*t.Arity() + outcome[i]
			}
			v = v.Children[idx]
		}
	}
	return emits, last, fired, nil
}

// CheckEquivalent verifies that g and h implement the same observable
// reaction for every care-set combination of test outcomes: the same
// emission sequence, the same last writer per state variable (under
// copy-on-entry the last ASSIGN on a path determines the committed
// value), and the same fired flag. This is the differential gate for
// reductions — ASSIGN straightening legitimately removes dead writes
// from the fired action set, which the exact set comparison of
// CheckFunctional would reject, but the observable reaction must
// survive every rewrite. Both graphs must belong to the same CFSM.
func (g *SGraph) CheckEquivalent(h *SGraph) error {
	if g.C != h.C {
		return fmt.Errorf("sgraph: CheckEquivalent across different CFSMs")
	}
	const maxCombos = 1 << 22
	combos := 1
	for _, t := range g.C.Tests {
		combos *= t.Arity()
		if combos > maxCombos {
			return ErrOutcomeSpaceTooLarge
		}
	}
	outcome := make([]int, len(g.C.Tests))
	idOf := make(map[*cfsm.Test]int, len(g.C.Tests))
	for i, t := range g.C.Tests {
		idOf[t] = i
	}
	for k := 0; k < combos; k++ {
		rem := k
		for i := len(g.C.Tests) - 1; i >= 0; i-- {
			a := g.C.Tests[i].Arity()
			outcome[i] = rem % a
			rem /= a
		}
		if violatesExclusive(g.C, outcome, idOf) {
			continue
		}
		ge, gl, gf, err := g.walkOutcome(outcome, idOf)
		if err != nil {
			return fmt.Errorf("sgraph: combination %d: %v", k, err)
		}
		he, hl, hf, err := h.walkOutcome(outcome, idOf)
		if err != nil {
			return fmt.Errorf("sgraph: combination %d (other graph): %v", k, err)
		}
		if gf != hf {
			return fmt.Errorf("sgraph: combination %d: fired %v vs %v", k, gf, hf)
		}
		if len(ge) != len(he) {
			return fmt.Errorf("sgraph: combination %d: %d emission(s) vs %d", k, len(ge), len(he))
		}
		for i := range ge {
			if ge[i] != he[i] {
				return fmt.Errorf("sgraph: combination %d: emission %d is %s vs %s", k, i, ge[i], he[i])
			}
		}
		if len(gl) != len(hl) {
			return fmt.Errorf("sgraph: combination %d: %d state write(s) vs %d", k, len(gl), len(hl))
		}
		for sv, a := range gl {
			if hl[sv] != a {
				return fmt.Errorf("sgraph: combination %d: last write to %s is %s vs %s", k, sv.Name, a, hl[sv])
			}
		}
	}
	return nil
}
