package sgraph

import (
	"fmt"

	"polis/internal/cfsm"
)

// CheckFunctional verifies Definition 2 of the paper over the whole
// test-outcome space: for every combination of test outcomes the
// s-graph's evaluation must terminate at END, visit each primitive
// test at most once (the property the outputs-after-support ordering
// guarantees), and produce exactly the action set of the reactive
// function r. The outcome space is the product of the test arities;
// the check refuses spaces larger than maxCombos.
func (g *SGraph) CheckFunctional(r *cfsm.Reactive) error {
	const maxCombos = 1 << 22
	combos := 1
	for _, t := range g.C.Tests {
		combos *= t.Arity()
		if combos > maxCombos {
			return fmt.Errorf("sgraph: outcome space too large for exhaustive check")
		}
	}
	outcome := make([]int, len(g.C.Tests))
	idOf := make(map[*cfsm.Test]int, len(g.C.Tests))
	for i, t := range g.C.Tests {
		idOf[t] = i
	}
	for k := 0; k < combos; k++ {
		// Decode the combination.
		rem := k
		for i := len(g.C.Tests) - 1; i >= 0; i-- {
			a := g.C.Tests[i].Arity()
			outcome[i] = rem % a
			rem /= a
		}
		// Walk the graph under these outcomes.
		fired := make([]bool, len(g.C.Actions))
		seen := make(map[*cfsm.Test]bool)
		v := g.Begin
		steps := 0
		for v.Kind != End {
			if steps++; steps > len(g.Vertices)+1 {
				return fmt.Errorf("sgraph: combination %d: evaluation does not terminate", k)
			}
			switch v.Kind {
			case Begin:
				v = v.Next
			case Assign:
				fired[g.C.ActionID(v.Action)] = true
				v = v.Next
			case Test:
				idx := 0
				for _, t := range v.Tests {
					if seen[t] {
						return fmt.Errorf("sgraph: combination %d: test %s visited twice on one path",
							k, t.Name())
					}
					seen[t] = true
					idx = idx*t.Arity() + outcome[idOf[t]]
				}
				v = v.Children[idx]
			}
		}
		// Compare against the reactive function.
		want, err := r.ActionSetFor(outcome)
		if err != nil {
			return fmt.Errorf("sgraph: combination %d: %w", k, err)
		}
		for j := range want {
			if fired[j] != want[j] {
				return fmt.Errorf(
					"sgraph: combination %d: action %s fired=%v, reactive function says %v",
					k, g.C.Actions[j].Name(), fired[j], want[j])
			}
		}
	}
	return nil
}
