package verify

import (
	"fmt"

	"polis/internal/bdd"
	"polis/internal/cfsm"
	"polis/internal/expr"
	"polis/internal/mvar"
)

// SymbolicResult is the outcome of BDD-based reachability.
type SymbolicResult struct {
	// Reached is the characteristic function of the reachable state
	// set over the current-state variables.
	Reached bdd.Node
	// States is the number of reachable control states.
	States int
	// Iterations is the number of image computations to the fixed
	// point.
	Iterations int
}

// SymbolicReachable computes the reachable control-state set of a
// CFSM with breadth-first symbolic image computation over the BDD of
// its transition relation — the classical FSM traversal the paper's
// Section I-G alludes to ("abundant theoretical and practical results
// concerning their manipulation ... formal verification of
// properties"). It applies to the *control skeleton*: machines whose
// state variables are all control variables (Domain > 0) and whose
// transitions assign them constants. Data predicates are abstracted
// nondeterministically (both outcomes possible), so the result
// over-approximates the concrete reachable set — sound for safety.
func SymbolicReachable(m *cfsm.CFSM) (*SymbolicResult, error) {
	for _, sv := range m.States {
		if sv.Domain <= 0 {
			return nil, fmt.Errorf("verify: %s has data variable %s; symbolic traversal handles control skeletons",
				m.Name, sv.Name)
		}
	}
	s := mvar.NewSpace()
	cur := make(map[*cfsm.StateVar]*mvar.MV, len(m.States))
	next := make(map[*cfsm.StateVar]*mvar.MV, len(m.States))
	var curVars, nextVars []*mvar.MV
	for _, sv := range m.States {
		c := s.NewMV(sv.Name, sv.Domain, mvar.Input)
		n := s.NewMV(sv.Name+"'", sv.Domain, mvar.Output)
		cur[sv] = c
		next[sv] = n
		curVars = append(curVars, c)
		nextVars = append(nextVars, n)
	}
	// Boolean inputs for presence tests and (abstracted) predicates.
	inVar := make(map[*cfsm.Test]*mvar.MV)
	var inVars []*mvar.MV
	for _, t := range m.Tests {
		if t.Kind != cfsm.TestSelector {
			v := s.NewMV(t.Name(), 2, mvar.Input)
			inVar[t] = v
			inVars = append(inVars, v)
		}
	}
	mgr := s.M

	// Transition relation: OR over transitions of
	//   guard(cur, inputs) AND next-state constraints,
	// plus the stutter transition (no transition fires -> state holds).
	rel := bdd.False
	fired := bdd.False
	for ti, tr := range m.Trans {
		g := bdd.True
		for _, cond := range tr.Guard {
			t := cond.Test
			if t.Kind == cfsm.TestSelector {
				g = mgr.And(g, s.Eq(cur[t.Sel], cond.Val))
			} else {
				g = mgr.And(g, s.Eq(inVar[t], cond.Val))
			}
		}
		// Next-state constraints: assigned control vars take their
		// constant; others hold.
		assigned := make(map[*cfsm.StateVar]int)
		for _, a := range tr.Actions {
			if a.Kind != cfsm.ActAssign {
				continue
			}
			c, isConst := constValue(a.Expr)
			if !isConst {
				return nil, fmt.Errorf("verify: transition %d assigns non-constant to control var %s",
					ti, a.Var.Name)
			}
			assigned[a.Var] = int(c)
		}
		t := g
		for _, sv := range m.States {
			if val, ok := assigned[sv]; ok {
				t = mgr.And(t, s.Eq(next[sv], val))
			} else {
				t = mgr.And(t, eqVars(s, cur[sv], next[sv]))
			}
		}
		rel = mgr.Or(rel, t)
		fired = mgr.Or(fired, g)
	}
	// Stutter: where no guard fires, the state holds.
	hold := bdd.True
	for _, sv := range m.States {
		hold = mgr.And(hold, eqVars(s, cur[sv], next[sv]))
	}
	rel = mgr.Or(rel, mgr.And(mgr.Not(fired), hold))
	mgr.Protect(rel)

	// Initial state.
	reached := bdd.True
	for _, sv := range m.States {
		reached = mgr.And(reached, s.Eq(cur[sv], int(sv.Init)))
	}
	mgr.Protect(reached)

	// Fixed point: reached' = reached OR rename(Exists inputs,cur .
	// reached AND rel).
	iters := 0
	for {
		iters++
		img := mgr.And(reached, rel)
		img = s.Exists(img, inVars...)
		img = s.Exists(img, curVars...)
		// Rename next -> cur (bit by bit; the encodings are
		// identical).
		img = renameVars(s, img, nextVars, curVars)
		nr := mgr.Or(reached, img)
		if nr == reached {
			break
		}
		mgr.Unprotect(reached)
		reached = mgr.Protect(nr)
		if iters > 1<<16 {
			return nil, fmt.Errorf("verify: fixed point did not converge")
		}
	}

	// Count the states (valid encodings only).
	count := 0
	enumerateStates(s, curVars, reached, func() { count++ })
	return &SymbolicResult{Reached: reached, States: count, Iterations: iters}, nil
}

// constValue extracts a constant expression's value.
func constValue(e expr.Expr) (int64, bool) {
	if len(e.Vars(nil)) != 0 {
		return 0, false
	}
	return e.Eval(nil), true
}

// eqVars builds the equality constraint between two equally sized
// multi-valued variables.
func eqVars(s *mvar.Space, a, b *mvar.MV) bdd.Node {
	f := bdd.False
	for v := 0; v < a.Size; v++ {
		f = s.M.Or(f, s.M.And(s.Eq(a, v), s.Eq(b, v)))
	}
	return f
}

// renameVars substitutes the bits of from-variables with the bits of
// to-variables in f (the encodings must match in width).
func renameVars(s *mvar.Space, f bdd.Node, from, to []*mvar.MV) bdd.Node {
	for i, fv := range from {
		tv := to[i]
		for k := range fv.Bits {
			f = s.M.Compose(f, fv.Bits[k], s.M.VarNode(tv.Bits[k]))
		}
	}
	return f
}

// enumerateStates calls fn once per satisfying state assignment of f
// over the given variables.
func enumerateStates(s *mvar.Space, vars []*mvar.MV, f bdd.Node, fn func()) {
	var rec func(i int, g bdd.Node)
	rec = func(i int, g bdd.Node) {
		if g == bdd.False {
			return
		}
		if i == len(vars) {
			fn()
			return
		}
		for v := 0; v < vars[i].Size; v++ {
			rec(i+1, s.CofactorValue(g, vars[i], v))
		}
	}
	rec(0, f)
}
