package verify

import (
	"strings"
	"testing"

	"polis/internal/baseline"
	"polis/internal/cfsm"
	"polis/internal/designs"
	"polis/internal/expr"
)

func TestReachableCounter(t *testing.T) {
	c := cfsm.New("ctr")
	tick := c.AddInput("tick", true)
	st := c.AddState("s", 4, 0)
	p := c.Present(tick)
	sel := c.Sel(st)
	for k := 0; k < 4; k++ {
		c.AddTransition([]cfsm.Cond{cfsm.On(p, 1), cfsm.On(sel, k)},
			c.Assign(st, expr.C(int64((k+1)%4))))
	}
	sp, err := DefaultSpace(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reachable(c, sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.States) != 4 {
		t.Errorf("reachable states %d, want 4", len(res.States))
	}
	if res.Truncated {
		t.Error("must not truncate")
	}
}

func TestInvariantHoldsOnTimer(t *testing.T) {
	// The dashboard timer's counter stays within [0, 150].
	d := designs.NewDashboard()
	m := d.Timer
	var cnt *cfsm.StateVar
	for _, sv := range m.States {
		if sv.Name == "tmr_cnt" {
			cnt = sv
		}
	}
	if cnt == nil {
		t.Fatal("tmr_cnt missing")
	}
	sp, err := DefaultSpace(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reachable(m, sp, Options{
		MaxStates: 2000,
		Invariant: func(st State) bool { return st[cnt] >= 0 && st[cnt] <= 150 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("timer counter escaped its bound:\n%s", FormatTrace(res.Violation))
	}
	if res.Truncated {
		t.Error("timer state space must be finite under the bound")
	}
	// 151 counter values x 2 counting states is the upper bound; the
	// reachable set must stay within it.
	if len(res.States) > 302 {
		t.Errorf("reachable states %d exceed the semantic bound", len(res.States))
	}
}

func TestInvariantViolationTrace(t *testing.T) {
	// A counter with a deliberate off-by-one: the guard allows cnt to
	// reach 3 although the invariant demands < 3.
	c := cfsm.New("bad")
	tick := c.AddInput("t", true)
	cnt := c.AddState("n", 0, 0)
	p := c.Present(tick)
	lt := c.Pred(expr.Le(expr.V("n"), expr.C(2))) // allows n=2 -> n=3
	on := cfsm.On
	c.AddTransition([]cfsm.Cond{on(p, 1), on(lt, 1)},
		c.Assign(cnt, expr.Add(expr.V("n"), expr.C(1))))
	sp, err := DefaultSpace(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reachable(c, sp, Options{
		Invariant: func(st State) bool { return st[cnt] < 3 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("violation must be found")
	}
	if len(res.Violation) != 3 {
		t.Errorf("shortest counterexample has 3 steps, got %d", len(res.Violation))
	}
	tr := FormatTrace(res.Violation)
	if !strings.Contains(tr, "n=3") {
		t.Errorf("trace must end in n=3:\n%s", tr)
	}
}

func TestBeltAlarmProperty(t *testing.T) {
	// Safety property of the belt controller: the machine is in the
	// alarm state (2) only after end_5 occurred without key_off or
	// belt_on cancelling — over the enumerated environment, state 2
	// is reachable, and from state 2 a belt_on always leaves it.
	d := designs.NewDashboard()
	m := d.Belt
	var st *cfsm.StateVar
	for _, sv := range m.States {
		if sv.Name == "belt_st" {
			st = sv
		}
	}
	sp, err := DefaultSpace(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reachable(m, sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	foundAlarm := false
	for _, s := range res.States {
		if s[st] == 2 {
			foundAlarm = true
			// belt_on in the alarm state must return to 0.
			snap := cfsm.Snapshot{
				Present: map[*cfsm.Signal]bool{d.BeltOn: true},
				Values:  map[*cfsm.Signal]int64{},
				State:   s,
			}
			r := m.React(snap)
			if !r.Fired || r.NextState[st] != 0 {
				t.Errorf("belt_on in alarm state must silence: %+v", r)
			}
		}
	}
	if !foundAlarm {
		t.Error("alarm state must be reachable")
	}
}

func TestCheckDeterministicReachable(t *testing.T) {
	d := designs.NewDashboard()
	vals := map[*cfsm.Signal][]int64{d.WheelPulse: {45, 120}}
	for _, m := range []*cfsm.CFSM{d.Belt, d.Timer, d.Odometer} {
		sp, err := DefaultSpace(m, vals)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckDeterministicReachable(m, sp, Options{MaxStates: 2000}); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	// A genuinely nondeterministic machine must be caught.
	c := cfsm.New("nd")
	x := c.AddInput("x", true)
	o1 := c.AddOutput("o1", true)
	o2 := c.AddOutput("o2", true)
	p := c.Present(x)
	c.AddTransition([]cfsm.Cond{cfsm.On(p, 1)}, c.Emit(o1))
	c.AddTransition([]cfsm.Cond{cfsm.On(p, 1)}, c.Emit(o2))
	sp, err := DefaultSpace(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckDeterministicReachable(c, sp, Options{}); err == nil {
		t.Error("nondeterminism must be detected")
	}
}

func TestValuedSpace(t *testing.T) {
	c := cfsm.New("v")
	in := c.AddInput("v", false)
	st := c.AddState("max", 0, 0)
	p := c.Present(in)
	gt := c.Pred(expr.Gt(expr.V("?v"), expr.V("max")))
	on := cfsm.On
	c.AddTransition([]cfsm.Cond{on(p, 1), on(gt, 1)}, c.Assign(st, expr.V("?v")))
	sp, err := DefaultSpace(c, map[*cfsm.Signal][]int64{in: {1, 5, 3}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reachable(c, sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// max takes values {0,1,3,5}: 4 states.
	if len(res.States) != 4 {
		t.Errorf("states %d, want 4: %v", len(res.States), res.StateNames())
	}
	// Missing values for a valued input is an error.
	if _, err := DefaultSpace(c, nil); err == nil {
		t.Error("valued input without candidates must be rejected")
	}
}

// TestNetworkProductVerification lifts verification to the network
// level through the synchronous composition: the belt+timer+buzzer
// product must never beep while the belt controller is out of the
// alarm state.
func TestNetworkProductVerification(t *testing.T) {
	n, d := designs.BeltSubnet()
	prod, err := baseline.SingleFSM(n)
	if err != nil {
		t.Fatal(err)
	}
	var beltSt, bzOn *cfsm.StateVar
	for _, sv := range prod.States {
		switch sv.Name {
		case "belt_st":
			beltSt = sv
		case "bz_on":
			bzOn = sv
		}
	}
	if beltSt == nil || bzOn == nil {
		t.Fatal("product state variables missing")
	}
	sp, err := DefaultSpace(prod, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reachable(prod, sp, Options{
		MaxStates: 20000,
		// Safety: the buzzer latch is set only while the belt
		// controller is alarming or has just left the state in the
		// same tick; the invariant checked is the weaker stable
		// property that a beeping buzzer implies the belt controller
		// passed through the alarm state (bz_on=1 -> belt_st != 1 is
		// NOT an invariant; what must hold is bz_on=1 -> belt was in
		// state 2 when alarm_on fired, which manifests as: bz_on can
		// only be 1 together with belt_st in {0, 2} — never while
		// still waiting).
		Invariant: func(st State) bool {
			return !(st[bzOn] == 1 && st[beltSt] == 1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("buzzer latched while belt still waiting:\n%s", FormatTrace(res.Violation))
	}
	if res.Truncated {
		t.Error("product state space should be explored exhaustively")
	}
	_ = d
	t.Logf("product: %d reachable states, %d (state,stimulus) pairs explored",
		len(res.States), res.Explored)
}

// TestSymbolicMatchesExplicit compares the BDD-based traversal with
// the explicit-state exploration on control skeletons.
func TestSymbolicMatchesExplicit(t *testing.T) {
	// Modulo-4 counter with a reset: 4 states reachable.
	c := cfsm.New("ctr4")
	tick := c.AddInput("tick", true)
	rst := c.AddInput("rst", true)
	st := c.AddState("s", 5, 0) // value 4 is unreachable
	p := c.Present(tick)
	pr := c.Present(rst)
	sel := c.Sel(st)
	for k := 0; k < 4; k++ {
		c.AddTransition([]cfsm.Cond{cfsm.On(pr, 1), cfsm.On(sel, k)},
			c.Assign(st, expr.C(0)))
		c.AddTransition([]cfsm.Cond{cfsm.On(pr, 0), cfsm.On(p, 1), cfsm.On(sel, k)},
			c.Assign(st, expr.C(int64((k+1)%4))))
	}
	sym, err := SymbolicReachable(c)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := DefaultSpace(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Reachable(c, sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sym.States != len(exp.States) {
		t.Errorf("symbolic %d states vs explicit %d", sym.States, len(exp.States))
	}
	if sym.States != 4 {
		t.Errorf("reachable states %d, want 4 (value 4 unreachable)", sym.States)
	}
	if sym.Iterations < 2 {
		t.Errorf("iterations %d implausible", sym.Iterations)
	}
}

// TestSymbolicBeltSkeleton runs the symbolic traversal on the belt
// controller (pure control skeleton) and cross-checks the explicit
// count.
func TestSymbolicBeltSkeleton(t *testing.T) {
	d := designs.NewDashboard()
	sym, err := SymbolicReachable(d.Belt)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := DefaultSpace(d.Belt, nil)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Reachable(d.Belt, sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sym.States != len(exp.States) {
		t.Errorf("symbolic %d vs explicit %d", sym.States, len(exp.States))
	}
	if sym.States != 3 {
		t.Errorf("belt has 3 control states, got %d", sym.States)
	}
}

// TestSymbolicRejectsDataVars: machines with data variables are out of
// scope for the control traversal.
func TestSymbolicRejectsDataVars(t *testing.T) {
	d := designs.NewDashboard()
	if _, err := SymbolicReachable(d.Timer); err == nil {
		t.Error("timer has a data counter; must be rejected")
	}
}

func TestTerminalStates(t *testing.T) {
	// A one-shot machine halts after firing once.
	c := cfsm.New("oneshot")
	go_ := c.AddInput("go", true)
	st := c.AddState("done", 2, 0)
	p := c.Present(go_)
	sel := c.Sel(st)
	c.AddTransition([]cfsm.Cond{cfsm.On(p, 1), cfsm.On(sel, 0)},
		c.Assign(st, expr.C(1)))
	sp, err := DefaultSpace(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	term, err := TerminalStates(c, sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(term) != 1 || term[0][st] != 1 {
		t.Errorf("terminal states: %v", term)
	}

	// A free-running counter never halts.
	d := cfsm.New("free")
	tick := d.AddInput("t", true)
	q := d.AddState("q", 2, 0)
	pt := d.Present(tick)
	sq := d.Sel(q)
	d.AddTransition([]cfsm.Cond{cfsm.On(pt, 1), cfsm.On(sq, 0)}, d.Assign(q, expr.C(1)))
	d.AddTransition([]cfsm.Cond{cfsm.On(pt, 1), cfsm.On(sq, 1)}, d.Assign(q, expr.C(0)))
	sp2, err := DefaultSpace(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	term2, err := TerminalStates(d, sp2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(term2) != 0 {
		t.Errorf("free-running machine must have no terminal states: %v", term2)
	}
}
