// Package verify provides the formal-verification capability the
// CFSM model is chosen for (Section I-G: "there are abundant
// theoretical and practical results concerning their manipulation
// (minimization, encoding, formal verification of properties)"):
// explicit-state reachability analysis of one CFSM under an enumerated
// input space, invariant checking with counterexample traces, and
// determinism auditing over the reachable states only (tighter than
// the syntactic cfsm.CheckDeterministic).
package verify

import (
	"fmt"
	"sort"
	"strings"

	"polis/internal/cfsm"
)

// InputSpace enumerates the environment behaviours explored: every
// subset of signals can be present in a step, and each present valued
// signal takes one of its candidate values.
type InputSpace struct {
	// Signals are the inputs driven by the exploration, in a fixed
	// order. Pure signals toggle presence only; valued signals range
	// over Values[sig].
	Signals []*cfsm.Signal
	Values  map[*cfsm.Signal][]int64
}

// DefaultSpace drives all inputs of m; valued inputs get the provided
// candidate values (required for each valued input).
func DefaultSpace(m *cfsm.CFSM, values map[*cfsm.Signal][]int64) (*InputSpace, error) {
	sp := &InputSpace{Values: values}
	for _, in := range m.Inputs {
		sp.Signals = append(sp.Signals, in)
		if !in.Pure && len(values[in]) == 0 {
			return nil, fmt.Errorf("verify: valued input %s needs candidate values", in.Name)
		}
	}
	return sp, nil
}

// stimulus is one concrete input assignment.
type stimulus struct {
	present map[*cfsm.Signal]bool
	values  map[*cfsm.Signal]int64
}

// enumerate lists every stimulus of the space (exponential; spaces are
// small by construction).
func (sp *InputSpace) enumerate() []stimulus {
	out := []stimulus{{present: map[*cfsm.Signal]bool{}, values: map[*cfsm.Signal]int64{}}}
	for _, sig := range sp.Signals {
		var next []stimulus
		for _, st := range out {
			// Absent.
			next = append(next, st)
			// Present, with each candidate value (one entry for pure).
			vals := []int64{0}
			if !sig.Pure {
				vals = sp.Values[sig]
			}
			for _, v := range vals {
				p := map[*cfsm.Signal]bool{sig: true}
				vs := map[*cfsm.Signal]int64{}
				for k, b := range st.present {
					p[k] = b
				}
				for k, b := range st.values {
					vs[k] = b
				}
				if !sig.Pure {
					vs[sig] = v
				}
				next = append(next, stimulus{present: p, values: vs})
			}
		}
		out = next
	}
	return out
}

// State is one reachable valuation of the machine's state variables.
type State map[*cfsm.StateVar]int64

// key gives a canonical string for a state.
func key(m *cfsm.CFSM, st State) string {
	var b strings.Builder
	for _, sv := range m.States {
		fmt.Fprintf(&b, "%s=%d;", sv.Name, st[sv])
	}
	return b.String()
}

// Step is one transition of a counterexample trace.
type Step struct {
	Present map[*cfsm.Signal]bool
	Values  map[*cfsm.Signal]int64
	After   State
}

// Result carries the exploration outcome.
type Result struct {
	// States maps canonical keys to reachable states.
	States map[string]State
	// Explored is the number of (state, stimulus) pairs examined.
	Explored int
	// Truncated reports that the state cap stopped the search.
	Truncated bool
	// Violation is the first invariant counterexample found, as a
	// trace from the initial state; nil when the invariant holds on
	// everything explored.
	Violation []Step
}

// Options bounds the exploration.
type Options struct {
	// MaxStates caps the reachable set (default 100000).
	MaxStates int
	// Invariant, if non-nil, is checked on every reachable state.
	Invariant func(State) bool
}

// Reachable explores the machine's state space breadth-first under the
// input space, checking the invariant if one is given. The search is
// exhaustive up to MaxStates, so an empty Violation with Truncated ==
// false is a proof over the enumerated environment.
func Reachable(m *cfsm.CFSM, sp *InputSpace, opt Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if opt.MaxStates <= 0 {
		opt.MaxStates = 100000
	}
	stimuli := sp.enumerate()

	init := State{}
	for _, sv := range m.States {
		init[sv] = sv.Init
	}
	res := &Result{States: map[string]State{key(m, init): init}}
	type qent struct {
		st    State
		trace []Step
	}
	queue := []qent{{st: init}}
	if opt.Invariant != nil && !opt.Invariant(init) {
		res.Violation = []Step{}
		return res, nil
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, stim := range stimuli {
			res.Explored++
			snap := cfsm.Snapshot{
				Present: stim.present,
				Values:  stim.values,
				State:   cur.st,
			}
			r := m.React(snap)
			if !r.Fired {
				continue
			}
			nst := State{}
			for _, sv := range m.States {
				nst[sv] = r.NextState[sv]
			}
			k := key(m, nst)
			if _, seen := res.States[k]; seen {
				continue
			}
			res.States[k] = nst
			step := Step{Present: stim.present, Values: stim.values, After: nst}
			trace := append(append([]Step(nil), cur.trace...), step)
			if opt.Invariant != nil && !opt.Invariant(nst) {
				res.Violation = trace
				return res, nil
			}
			if len(res.States) >= opt.MaxStates {
				res.Truncated = true
				return res, nil
			}
			queue = append(queue, qent{st: nst, trace: trace})
		}
	}
	return res, nil
}

// CheckDeterministicReachable verifies that over the reachable states
// and enumerated stimuli, at most one transition of m matches each
// snapshot — a semantic refinement of the syntactic check.
func CheckDeterministicReachable(m *cfsm.CFSM, sp *InputSpace, opt Options) error {
	res, err := Reachable(m, sp, Options{MaxStates: opt.MaxStates})
	if err != nil {
		return err
	}
	stimuli := sp.enumerate()
	for _, st := range res.States {
		for _, stim := range stimuli {
			snap := cfsm.Snapshot{Present: stim.present, Values: stim.values, State: st}
			matches := 0
			var first, second int
			for ti, tr := range m.Trans {
				ok := true
				for _, cond := range tr.Guard {
					if snap.EvalTest(cond.Test) != cond.Val {
						ok = false
						break
					}
				}
				if ok {
					matches++
					if matches == 1 {
						first = ti
					} else if matches == 2 {
						second = ti
					}
				}
			}
			if matches > 1 && !sameActionSets(m.Trans[first], m.Trans[second]) {
				return fmt.Errorf(
					"verify: %s: transitions %d and %d both match in state %s",
					m.Name, first, second, key(m, st))
			}
		}
	}
	return nil
}

func sameActionSets(a, b *cfsm.Transition) bool {
	if len(a.Actions) != len(b.Actions) {
		return false
	}
	for i := range a.Actions {
		if a.Actions[i] != b.Actions[i] {
			return false
		}
	}
	return true
}

// StateNames renders the reachable set compactly for reports.
func (r *Result) StateNames() []string {
	out := make([]string, 0, len(r.States))
	for k := range r.States {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FormatTrace renders a counterexample trace.
func FormatTrace(trace []Step) string {
	var b strings.Builder
	for i, s := range trace {
		fmt.Fprintf(&b, "step %d: inputs {", i+1)
		first := true
		for sig, p := range s.Present {
			if !p {
				continue
			}
			if !first {
				b.WriteString(", ")
			}
			first = false
			if sig.Pure {
				b.WriteString(sig.Name)
			} else {
				fmt.Fprintf(&b, "%s=%d", sig.Name, s.Values[sig])
			}
		}
		b.WriteString("} -> state {")
		first = true
		var svs []*cfsm.StateVar
		for sv := range s.After {
			svs = append(svs, sv)
		}
		sort.Slice(svs, func(i, j int) bool { return svs[i].Name < svs[j].Name })
		for _, sv := range svs {
			if !first {
				b.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&b, "%s=%d", sv.Name, s.After[sv])
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// TerminalStates returns the reachable states from which no stimulus
// in the space can ever fire a transition again — the "halt" states a
// designer may or may not intend (the esterel frontend generates one
// for non-looping modules; an unintended one is a deadlock).
func TerminalStates(m *cfsm.CFSM, sp *InputSpace, opt Options) ([]State, error) {
	res, err := Reachable(m, sp, Options{MaxStates: opt.MaxStates})
	if err != nil {
		return nil, err
	}
	stimuli := sp.enumerate()
	var out []State
	for _, st := range res.States {
		live := false
		for _, stim := range stimuli {
			snap := cfsm.Snapshot{Present: stim.present, Values: stim.values, State: st}
			if m.React(snap).Fired {
				live = true
				break
			}
		}
		if !live {
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return key(m, out[i]) < key(m, out[j]) })
	return out, nil
}
