package cfsm

import (
	"math/rand"
	"testing"

	"polis/internal/bdd"
	"polis/internal/expr"
)

// simpleCFSM builds the paper's Fig. 1 example:
//
//	module simple:
//	  input c : integer; output y;
//	  var a : integer in
//	  loop await c;
//	    if a = ?c then a := 0; emit y; else a := a + 1; end if
//	  end loop end var
//	end module
func simpleCFSM() (*CFSM, *Signal, *Signal, *StateVar) {
	c := New("simple")
	in := c.AddInput("c", false)
	y := c.AddOutput("y", true)
	a := c.AddState("a", 0, 0)

	pc := c.Present(in)
	eq := c.Pred(expr.Eq(expr.V("a"), expr.V("?c")))

	azero := c.Assign(a, expr.C(0))
	ainc := c.Assign(a, expr.Add(expr.V("a"), expr.C(1)))
	emitY := c.Emit(y)

	c.AddTransition([]Cond{On(pc, 1), On(eq, 1)}, azero, emitY)
	c.AddTransition([]Cond{On(pc, 1), On(eq, 0)}, ainc)
	return c, in, y, a
}

func TestSimpleReact(t *testing.T) {
	c, in, y, a := simpleCFSM()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckDeterministic(); err != nil {
		t.Fatal(err)
	}
	snap := c.NewSnapshot()

	// c absent: no reaction.
	r := c.React(snap)
	if r.Fired {
		t.Error("reaction without input event")
	}

	// c present with value 3, a=0: mismatch, a increments.
	snap.Present[in] = true
	snap.Values[in] = 3
	r = c.React(snap)
	if !r.Fired || len(r.Emitted) != 0 || r.NextState[a] != 1 {
		t.Errorf("mismatch reaction wrong: %+v", r)
	}

	// Drive a to 3 then match: emit y, reset a.
	snap.State[a] = 3
	r = c.React(snap)
	if !r.Fired || len(r.Emitted) != 1 || r.Emitted[0].Signal != y || r.NextState[a] != 0 {
		t.Errorf("match reaction wrong: %+v", r)
	}
}

func TestInternDedup(t *testing.T) {
	c, in, _, a := simpleCFSM()
	if c.Present(in) != c.Present(in) {
		t.Error("Present not interned")
	}
	if c.Pred(expr.Eq(expr.V("a"), expr.V("?c"))) != c.Pred(expr.Eq(expr.V("a"), expr.V("?c"))) {
		t.Error("Pred not interned")
	}
	if c.Assign(a, expr.C(0)) != c.Assign(a, expr.C(0)) {
		t.Error("Assign not interned")
	}
	if len(c.Tests) != 2 || len(c.Actions) != 3 {
		t.Errorf("test/action counts: %d %d", len(c.Tests), len(c.Actions))
	}
}

func TestValidateRejectsDoubleAssign(t *testing.T) {
	c := New("bad")
	a := c.AddState("a", 0, 0)
	in := c.AddInput("x", true)
	p := c.Present(in)
	c.AddTransition([]Cond{On(p, 1)},
		c.Assign(a, expr.C(0)),
		c.Assign(a, expr.C(1)))
	if err := c.Validate(); err == nil {
		t.Error("double assignment must be rejected")
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	c := New("bad")
	s := c.AddState("s", 3, 0)
	sel := c.Sel(s)
	c.AddTransition([]Cond{On(sel, 5)})
	if err := c.Validate(); err == nil {
		t.Error("selector value out of range must be rejected")
	}
}

func TestSelectorReact(t *testing.T) {
	c := New("fsm")
	in := c.AddInput("go", true)
	out := c.AddOutput("done", true)
	st := c.AddState("st", 3, 0)
	p := c.Present(in)
	sel := c.Sel(st)
	for k := 0; k < 3; k++ {
		next := (k + 1) % 3
		acts := []*Action{c.Assign(st, expr.C(int64(next)))}
		if next == 0 {
			acts = append(acts, c.Emit(out))
		}
		c.AddTransition([]Cond{On(p, 1), On(sel, k)}, acts...)
	}
	if err := c.CheckDeterministic(); err != nil {
		t.Fatal(err)
	}
	snap := c.NewSnapshot()
	snap.Present[in] = true
	emitted := 0
	for i := 0; i < 6; i++ {
		r := c.React(snap)
		if !r.Fired {
			t.Fatal("must fire")
		}
		emitted += len(r.Emitted)
		snap.State = r.NextState
	}
	if emitted != 2 {
		t.Errorf("3-counter over 6 steps should emit twice, got %d", emitted)
	}
}

func TestDeterminismWithExclusive(t *testing.T) {
	c := New("ex")
	in := c.AddInput("v", false)
	o := c.AddOutput("o", true)
	p := c.Present(in)
	lo := c.Pred(expr.Lt(expr.V("?v"), expr.C(10)))
	hi := c.Pred(expr.Ge(expr.V("?v"), expr.C(20)))
	c.AddTransition([]Cond{On(p, 1), On(lo, 1)}, c.Emit(o))
	c.AddTransition([]Cond{On(p, 1), On(hi, 1)})
	if err := c.CheckDeterministic(); err == nil {
		t.Error("without exclusivity info, overlap must be reported")
	}
	c.MarkExclusive(lo, hi)
	if err := c.CheckDeterministic(); err != nil {
		t.Errorf("exclusive marking should resolve the overlap: %v", err)
	}
}

func TestReactiveSimple(t *testing.T) {
	c, _, _, _ := simpleCFSM()
	r, err := BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	// Tests: present_c (id 0), eq (id 1). Actions: a:=0, emit... check
	// the action set over all 4 test combinations.
	type want struct{ azero, ainc, emit bool }
	wants := map[[2]int]want{
		{0, 0}: {false, false, false},
		{0, 1}: {false, false, false},
		{1, 0}: {false, true, false},
		{1, 1}: {true, false, true},
	}
	// Identify action ids.
	var idZero, idInc, idEmit int
	for i, a := range c.Actions {
		switch a.Name() {
		case "a:=0":
			idZero = i
		case "a:=(a + 1)":
			idInc = i
		case "emit_y":
			idEmit = i
		}
	}
	for tv, w := range wants {
		got, err := r.ActionSetFor([]int{tv[0], tv[1]})
		if err != nil {
			t.Fatal(err)
		}
		if got[idZero] != w.azero || got[idInc] != w.ainc || got[idEmit] != w.emit {
			t.Errorf("tests %v: actions %v, want %+v", tv, got, w)
		}
	}
}

func TestReactiveChiCharacteristic(t *testing.T) {
	c, _, _, _ := simpleCFSM()
	r, err := BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	// chi(x, z) is true exactly when z equals the action set for x.
	for t0 := 0; t0 < 2; t0++ {
		for t1 := 0; t1 < 2; t1++ {
			wantZ, err := r.ActionSetFor([]int{t0, t1})
			if err != nil {
				t.Fatal(err)
			}
			for mask := 0; mask < 8; mask++ {
				z := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
				got := r.EvalChi([]int{t0, t1}, z)
				want := z[0] == wantZ[0] && z[1] == wantZ[1] && z[2] == wantZ[2]
				if got != want {
					t.Errorf("chi(%d,%d,%v) = %v, want %v", t0, t1, z, got, want)
				}
			}
		}
	}
}

// Property: for random snapshots, React agrees with the reactive
// function composed with action execution.
func TestReactiveMatchesReact(t *testing.T) {
	c, in, y, a := simpleCFSM()
	r, err := BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		snap := c.NewSnapshot()
		snap.Present[in] = rng.Intn(2) == 1
		snap.Values[in] = int64(rng.Intn(5))
		snap.State[a] = int64(rng.Intn(5))

		direct := c.React(snap)

		flags, err := r.ActionSetFor(r.SnapshotTestVals(snap))
		if err != nil {
			t.Fatal(err)
		}
		// Apply selected actions.
		env := snap.Env()
		nextA := snap.State[a]
		emitY := false
		for j, on := range flags {
			if !on {
				continue
			}
			act := c.Actions[j]
			switch {
			case act.Kind == ActAssign && act.Var == a:
				nextA = act.Expr.Eval(env)
			case act.Kind == ActEmit && act.Signal == y:
				emitY = true
			}
		}
		directEmit := len(direct.Emitted) > 0
		if directEmit != emitY || direct.NextState[a] != nextA {
			t.Fatalf("iter %d: direct (emit=%v a'=%d) vs reactive (emit=%v a'=%d)",
				i, directEmit, direct.NextState[a], emitY, nextA)
		}
	}
}

func TestSiftingKeepsChiMeaning(t *testing.T) {
	c, _, _, _ := simpleCFSM()
	r, err := BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[[2]int][]bool)
	for t0 := 0; t0 < 2; t0++ {
		for t1 := 0; t1 < 2; t1++ {
			z, _ := r.ActionSetFor([]int{t0, t1})
			before[[2]int{t0, t1}] = z
		}
	}
	r.SiftOutputsAfterSupport()
	for k, want := range before {
		got, err := r.ActionSetFor([]int{k[0], k[1]})
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("after sift, tests %v action %d changed", k, j)
			}
		}
	}
}

func TestSupports(t *testing.T) {
	c, _, _, _ := simpleCFSM()
	r, err := BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	sup := r.Supports()
	// Every action depends on both tests in this example.
	for j, av := range r.ActVars {
		if len(sup[av]) != 2 {
			t.Errorf("action %s support: %d vars, want 2", c.Actions[j].Name(), len(sup[av]))
		}
	}
}

func TestCareSet(t *testing.T) {
	c := New("ex")
	in := c.AddInput("v", false)
	o := c.AddOutput("o", true)
	p := c.Present(in)
	lo := c.Pred(expr.Lt(expr.V("?v"), expr.C(10)))
	hi := c.Pred(expr.Ge(expr.V("?v"), expr.C(20)))
	c.MarkExclusive(lo, hi)
	c.AddTransition([]Cond{On(p, 1), On(lo, 1)}, c.Emit(o))
	r, err := BuildReactive(c)
	if err != nil {
		t.Fatal(err)
	}
	// Care must exclude lo=1 & hi=1.
	bad := r.Space.M.And(r.Space.Eq(r.TestVars[lo.id], 1), r.Space.Eq(r.TestVars[hi.id], 1))
	if r.Space.M.And(r.Care, bad) != bdd.False {
		t.Error("care set must exclude mutually exclusive tests both true")
	}
}

// TestActionlessTransitionDoesNotFire pins the Fired semantics shared
// with the synthesized forms: the reactive function, s-graph and
// object code encode a reaction purely as action flags, so a matched
// transition with no actions must not count as fired in the reference
// either — otherwise behavioral and VM co-simulation diverge on event
// consumption (found by the netfuzz harness).
func TestActionlessTransitionDoesNotFire(t *testing.T) {
	c := New("idle")
	in := c.AddInput("x", true)
	y := c.AddOutput("y", true)
	s := c.AddState("s", 2, 0)

	px := c.Present(in)
	sel := c.Sel(s)
	// In state 0 the event is silently ignored: matched, no actions.
	c.AddTransition([]Cond{On(px, 1), On(sel, 0)})
	c.AddTransition([]Cond{On(px, 1), On(sel, 1)}, c.Emit(y))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	snap := c.NewSnapshot()
	snap.Present[in] = true
	r := c.React(snap)
	if r.Fired {
		t.Errorf("action-less transition reported fired; the compiled forms cannot express that")
	}
	snap.State[s] = 1
	r = c.React(snap)
	if !r.Fired || len(r.Emitted) != 1 {
		t.Errorf("acting transition must fire: %+v", r)
	}
}
