package cfsm

import (
	"strings"
	"testing"

	"polis/internal/expr"
)

// relay builds a machine forwarding signal in to signal out.
func relay(name string, in, out *Signal) *CFSM {
	m := New(name)
	m.AttachInput(in)
	m.AttachOutput(out)
	p := m.Present(in)
	m.AddTransition([]Cond{On(p, 1)}, m.Emit(out))
	return m
}

func TestNetworkClassification(t *testing.T) {
	n := NewNetwork("net")
	a := n.NewSignal("a", true)
	b := n.NewSignal("b", true)
	c := n.NewSignal("c", true)
	m1 := relay("m1", a, b)
	m2 := relay("m2", b, c)
	if err := n.Add(m1); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(m2); err != nil {
		t.Fatal(err)
	}
	if got := n.PrimaryInputs(); len(got) != 1 || got[0] != a {
		t.Errorf("primary inputs: %v", got)
	}
	if got := n.PrimaryOutputs(); len(got) != 1 || got[0] != c {
		t.Errorf("primary outputs: %v", got)
	}
	if got := n.InternalSignals(); len(got) != 1 || got[0] != b {
		t.Errorf("internal: %v", got)
	}
	if w := n.Writers(b); len(w) != 1 || w[0] != m1 {
		t.Errorf("writers(b): %v", w)
	}
	if r := n.Readers(b); len(r) != 1 || r[0] != m2 {
		t.Errorf("readers(b): %v", r)
	}
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != m1 || order[1] != m2 {
		t.Errorf("topo order: %v", order)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkRejectsForeignSignal(t *testing.T) {
	n := NewNetwork("net")
	a := n.NewSignal("a", true)
	foreign := &Signal{Name: "x", Pure: true}
	m := relay("m", a, foreign)
	if err := n.Add(m); err == nil {
		t.Error("foreign signal must be rejected")
	}
}

func TestNetworkRejectsDuplicateStateNames(t *testing.T) {
	n := NewNetwork("net")
	a := n.NewSignal("a", true)
	b := n.NewSignal("b", true)
	m1 := relay("m1", a, b)
	m1.AddState("shared", 0, 0)
	m2 := New("m2")
	m2.AttachInput(b)
	m2.AddState("shared", 0, 0)
	p := m2.Present(b)
	sv := m2.States[0]
	m2.AddTransition([]Cond{On(p, 1)}, m2.Assign(sv, expr.C(1)))
	if err := n.Add(m1); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(m2); err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err == nil {
		t.Error("duplicate state names must be rejected")
	}
}

func TestSnapshotEnvLookup(t *testing.T) {
	c := New("m")
	in := c.AddInput("v", false)
	sv := c.AddState("s", 0, 7)
	snap := c.NewSnapshot()
	snap.Present[in] = true
	snap.Values[in] = 42
	env := snap.Env()
	if got := env.Lookup("s"); got != 7 {
		t.Errorf("state lookup: %d", got)
	}
	if got := env.Lookup("?v"); got != 42 {
		t.Errorf("value lookup: %d", got)
	}
	if got := env.Lookup("?missing"); got != 0 {
		t.Errorf("missing value lookup: %d", got)
	}
	if got := env.Lookup("missing"); got != 0 {
		t.Errorf("missing state lookup: %d", got)
	}
	_ = sv
}

func TestSelOnDataVarPanics(t *testing.T) {
	c := New("m")
	sv := c.AddState("d", 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("Sel on a data variable must panic")
		}
	}()
	c.Sel(sv)
}

func TestValidateForeignTestAndAction(t *testing.T) {
	c1 := New("c1")
	in1 := c1.AddInput("x", true)
	p1 := c1.Present(in1)
	c2 := New("c2")
	in2 := c2.AddInput("x", true)
	o2 := c2.AddOutput("o", true)
	_ = in2
	// A transition in c2 using c1's test.
	c2.AddTransition([]Cond{On(p1, 1)}, c2.Emit(o2))
	if err := c2.Validate(); err == nil {
		t.Error("foreign test must be rejected")
	}
}

func TestEvalTestSelectorOutOfDomain(t *testing.T) {
	c := New("m")
	sv := c.AddState("q", 2, 0)
	sel := c.Sel(sv)
	snap := c.NewSnapshot()
	snap.State[sv] = 5
	defer func() {
		if recover() == nil {
			t.Error("out-of-domain selector read must panic")
		}
	}()
	snap.EvalTest(sel)
}

func TestNetworkDot(t *testing.T) {
	n := NewNetwork("net")
	a := n.NewSignal("a", true)
	b := n.NewSignal("b", true)
	c := n.NewSignal("c", true)
	m1 := relay("m1", a, b)
	m2 := relay("m2", b, c)
	if err := n.Add(m1); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(m2); err != nil {
		t.Fatal(err)
	}
	dot := n.Dot()
	for _, needle := range []string{
		`env_in -> "m1" [label="a"]`,
		`"m1" -> "m2" [label="b"]`,
		`"m2" -> env_out [label="c"]`,
	} {
		if !strings.Contains(dot, needle) {
			t.Errorf("network dot missing %q:\n%s", needle, dot)
		}
	}
}
