package cfsm

import (
	"fmt"

	"polis/internal/expr"
)

// This file is the dense (index-addressed) execution layer of the CFSM
// model, added for the high-throughput simulation engine. The map-based
// Snapshot/React API remains the reference semantics; the dense layer
// is an allocation-free equivalent: signal and state-variable slots are
// resolved to integer indices once, at Layout construction, and every
// reaction then runs over flat arrays that the caller reuses. The two
// implementations are kept in lock-step by the differential tests in
// internal/sim (refsim) and internal/crosstest.

// Layout resolves one machine's signals, state variables, tests and
// actions to dense slot indices. Build it once per runtime task with
// NewLayout; it is immutable afterwards and may be shared by snapshots
// of the same machine.
type Layout struct {
	C      *CFSM
	Ins    []*Signal   // input slots, in declaration order
	States []*StateVar // state slots, in declaration order

	inIdx map[*Signal]int
	stIdx map[*StateVar]int

	tests []denseTest // indexed by Test id
	acts  []int       // ActAssign state slot per Action id (-1 for emits)
}

type denseTest struct {
	kind TestKind
	slot int // input slot (presence) or state slot (selector)
	pred expr.Expr
	sel  *StateVar // selector variable, for diagnostics
}

// NewLayout builds the dense layout of a machine.
func NewLayout(c *CFSM) *Layout {
	l := &Layout{
		C:      c,
		Ins:    c.Inputs,
		States: c.States,
		inIdx:  make(map[*Signal]int, len(c.Inputs)),
		stIdx:  make(map[*StateVar]int, len(c.States)),
	}
	for i, s := range c.Inputs {
		if _, dup := l.inIdx[s]; !dup {
			l.inIdx[s] = i
		}
	}
	for i, v := range c.States {
		l.stIdx[v] = i
	}
	l.tests = make([]denseTest, len(c.Tests))
	for id, t := range c.Tests {
		dt := denseTest{kind: t.Kind}
		switch t.Kind {
		case TestPresence:
			dt.slot = l.inIdx[t.Signal]
		case TestPredicate:
			dt.pred = t.Pred
		case TestSelector:
			dt.slot = l.stIdx[t.Sel]
			dt.sel = t.Sel
		}
		l.tests[id] = dt
	}
	l.acts = make([]int, len(c.Actions))
	for id, a := range c.Actions {
		l.acts[id] = -1
		if a.Kind == ActAssign {
			l.acts[id] = l.stIdx[a.Var]
		}
	}
	return l
}

// InSlot returns the dense slot of an input signal, or -1 when the
// signal is not an input of the machine.
func (l *Layout) InSlot(s *Signal) int {
	if i, ok := l.inIdx[s]; ok {
		return i
	}
	return -1
}

// StateSlot returns the dense slot of a state variable, or -1.
func (l *Layout) StateSlot(v *StateVar) int {
	if i, ok := l.stIdx[v]; ok {
		return i
	}
	return -1
}

// DenseSnapshot is the flat-array form of Snapshot: Present/Values are
// indexed by input slot, State by state slot. Values of absent signals
// are zero, matching the map form where absent signals have no Values
// entry and read as 0.
type DenseSnapshot struct {
	Lay     *Layout
	Present []bool
	Values  []int64
	State   []int64

	env expr.Env // prebuilt interface value: no per-Eval conversion alloc
}

// NewDense returns an empty dense snapshot with state at initial
// values.
func (l *Layout) NewDense() *DenseSnapshot {
	d := &DenseSnapshot{
		Lay:     l,
		Present: make([]bool, len(l.Ins)),
		Values:  make([]int64, len(l.Ins)),
		State:   make([]int64, len(l.States)),
	}
	for i, v := range l.States {
		d.State[i] = v.Init
	}
	d.env = denseEnv{d}
	return d
}

// Env adapts the snapshot to expression evaluation without allocating:
// the interface value is built once at NewDense.
func (d *DenseSnapshot) Env() expr.Env { return d.env }

type denseEnv struct{ d *DenseSnapshot }

// Lookup resolves state variables by name and input event values as
// "?name", like the map-based snapEnv. The linear scans mirror the map
// iterations of the reference implementation; machine interfaces are
// small, so they beat hashing and stay allocation-free.
func (e denseEnv) Lookup(name string) int64 {
	d := e.d
	if len(name) > 0 && name[0] == '?' {
		want := name[1:]
		for i, s := range d.Lay.Ins {
			if s.Name == want {
				return d.Values[i]
			}
		}
		return 0
	}
	for i, v := range d.Lay.States {
		if v.Name == name {
			return d.State[i]
		}
	}
	return 0
}

// EvalTest returns the outcome of a test under the dense snapshot,
// equivalent to Snapshot.EvalTest.
func (d *DenseSnapshot) EvalTest(t *Test) int {
	dt := &d.Lay.tests[t.id]
	switch dt.kind {
	case TestPresence:
		if d.Present[dt.slot] {
			return 1
		}
		return 0
	case TestPredicate:
		if dt.pred.Eval(d.env) != 0 {
			return 1
		}
		return 0
	default:
		v := d.State[dt.slot]
		if v < 0 || v >= int64(dt.sel.Domain) {
			panic(fmt.Sprintf("cfsm: state %s=%d out of domain %d", dt.sel.Name, v, dt.sel.Domain))
		}
		return int(v)
	}
}

// Snapshot materialises the map form, for probes and differential
// checks. Present/Values carry entries only for present signals,
// exactly as rtos.Task.begin builds them.
func (d *DenseSnapshot) Snapshot() Snapshot {
	snap := Snapshot{
		Present: make(map[*Signal]bool, len(d.Present)),
		Values:  make(map[*Signal]int64, len(d.Present)),
		State:   make(map[*StateVar]int64, len(d.State)),
	}
	for i, p := range d.Present {
		if p {
			snap.Present[d.Lay.Ins[i]] = true
			snap.Values[d.Lay.Ins[i]] = d.Values[i]
		}
	}
	for i, v := range d.Lay.States {
		snap.State[v] = d.State[i]
	}
	return snap
}

// DenseReaction is the reusable result buffer of a dense reaction.
// Emitted and NextState keep their capacity across reactions.
type DenseReaction struct {
	Fired     bool
	Emitted   []Emission
	NextState []int64 // indexed by state slot
}

// Reaction materialises the map form, for probes and differential
// checks.
func (r *DenseReaction) Reaction(l *Layout) Reaction {
	out := Reaction{Fired: r.Fired, NextState: make(map[*StateVar]int64, len(r.NextState))}
	if len(r.Emitted) > 0 {
		out.Emitted = append([]Emission(nil), r.Emitted...)
	}
	for i, v := range l.States {
		out.NextState[v] = r.NextState[i]
	}
	return out
}

// ReactInto executes one reaction under the dense snapshot, writing the
// result into out without allocating (beyond out's amortised buffer
// growth). The semantics are exactly CFSM.React: the first matching
// transition fires, all expression reads see the pre-reaction state
// (copy-on-entry), and Fired reports whether any action executed.
func (l *Layout) ReactInto(d *DenseSnapshot, out *DenseReaction) {
	out.Fired = false
	out.Emitted = out.Emitted[:0]
	out.NextState = append(out.NextState[:0], d.State...)
	for _, tr := range l.C.Trans {
		match := true
		for _, cond := range tr.Guard {
			if d.EvalTest(cond.Test) != cond.Val {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		out.Fired = len(tr.Actions) > 0
		for _, a := range tr.Actions {
			switch a.Kind {
			case ActEmit:
				em := Emission{Signal: a.Signal}
				if a.Value != nil {
					em.Value = a.Value.Eval(d.env)
				}
				out.Emitted = append(out.Emitted, em)
			case ActAssign:
				out.NextState[l.acts[a.id]] = a.Expr.Eval(d.env)
			}
		}
		return
	}
}
