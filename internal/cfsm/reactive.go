package cfsm

import (
	"fmt"

	"polis/internal/bdd"
	"polis/internal/mvar"
)

// Reactive is the Boolean reactive function of a CFSM (Section III-B1
// of the paper): the multi-output function from test outcomes x to
// action-selection flags z, represented by the BDD of its
// characteristic function
//
//	chi(x, z) = AND_j ( z_j <-> f_j(x) )
//
// where f_j(x) is the disjunction of the guards of the transitions
// containing action j. Each test is one (possibly multi-valued) Input
// variable; each action is one Boolean Output variable.
type Reactive struct {
	C        *CFSM
	Space    *mvar.Space
	TestVars []*mvar.MV // parallel to C.Tests
	ActVars  []*mvar.MV // parallel to C.Actions
	Chi      bdd.Node
	// ActFuncs[j] = f_j(x), the firing condition of action j.
	ActFuncs []bdd.Node
	// Care is the conjunction of mutual-exclusion constraints from
	// C.Exclusive; snapshots outside Care cannot occur. It is used
	// by false-path analysis in estimation.
	Care bdd.Node
}

// BuildReactive extracts the reactive function of c into a fresh
// multi-valued BDD space. Variables are created in declaration order:
// first all tests, then all actions — the "initial arbitrary ordering"
// of the paper's procedure build; call one of the Sift methods to
// optimise it.
func BuildReactive(c *CFSM) (*Reactive, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s := mvar.NewSpace()
	r := &Reactive{C: c, Space: s}
	for _, t := range c.Tests {
		r.TestVars = append(r.TestVars, s.NewMV(t.Name(), t.Arity(), mvar.Input))
	}
	for _, a := range c.Actions {
		r.ActVars = append(r.ActVars, s.NewMV(a.Name(), 2, mvar.Output))
	}
	m := s.M

	// f_j(x): disjunction of guards of transitions using action j.
	r.ActFuncs = make([]bdd.Node, len(c.Actions))
	for j := range r.ActFuncs {
		r.ActFuncs[j] = bdd.False
	}
	for _, tr := range c.Trans {
		g := bdd.True
		for _, cond := range tr.Guard {
			g = m.And(g, s.Eq(r.TestVars[cond.Test.id], cond.Val))
		}
		for _, a := range tr.Actions {
			r.ActFuncs[a.id] = m.Or(r.ActFuncs[a.id], g)
		}
	}

	chi := bdd.True
	for j, f := range r.ActFuncs {
		z := s.Eq(r.ActVars[j], 1)
		chi = m.And(chi, m.Xnor(z, f))
	}
	r.Chi = chi
	m.Protect(chi)
	for _, f := range r.ActFuncs {
		m.Protect(f)
	}

	care := bdd.True
	for _, grp := range c.Exclusive {
		for i := 0; i < len(grp); i++ {
			for j := i + 1; j < len(grp); j++ {
				care = m.And(care, m.Not(m.And(
					s.Eq(r.TestVars[grp[i].id], 1),
					s.Eq(r.TestVars[grp[j].id], 1))))
			}
		}
	}
	r.Care = care
	m.Protect(care)
	return r, nil
}

// Supports returns, for each action variable, the input variables its
// firing function depends on. This feeds the sifting constraint
// "no output can sift before any input in its support".
func (r *Reactive) Supports() map[*mvar.MV][]*mvar.MV {
	out := make(map[*mvar.MV][]*mvar.MV, len(r.ActVars))
	for j, f := range r.ActFuncs {
		out[r.ActVars[j]] = r.Space.Support(f)
	}
	return out
}

// SiftOutputsAfterSupport optimises the variable order by dynamic
// sifting under the paper's default constraint (each output after its
// own support). This is the configuration the paper reports best
// results with (Table II, second row).
func (r *Reactive) SiftOutputsAfterSupport() {
	r.Space.SiftOutputsAfterSupport(r.Supports(), r.Chi)
}

// SiftOutputsAfterAllInputs optimises with the stronger restriction
// that all outputs appear after all inputs (Table II, first row).
func (r *Reactive) SiftOutputsAfterAllInputs() {
	r.Space.SiftOutputsAfterAllInputs(r.Chi)
}

// EvalChi evaluates the characteristic function on explicit test
// outcomes and action flags; used by tests and the equivalence
// checker.
func (r *Reactive) EvalChi(testVals []int, actVals []bool) bool {
	assign := make(map[*mvar.MV]int, len(testVals)+len(actVals))
	for i, v := range testVals {
		assign[r.TestVars[i]] = v
	}
	for j, b := range actVals {
		bit := 0
		if b {
			bit = 1
		}
		assign[r.ActVars[j]] = bit
	}
	return r.Space.EvalAssign(r.Chi, assign)
}

// ActionSetFor computes the unique action flags satisfying chi for the
// given test outcomes. The characteristic function of a deterministic
// complete CFSM determines them uniquely.
func (r *Reactive) ActionSetFor(testVals []int) ([]bool, error) {
	f := r.Chi
	for i, v := range testVals {
		f = r.Space.CofactorValue(f, r.TestVars[i], v)
	}
	out := make([]bool, len(r.ActVars))
	for j := range r.ActVars {
		f0 := r.Space.CofactorValue(f, r.ActVars[j], 0)
		f1 := r.Space.CofactorValue(f, r.ActVars[j], 1)
		switch {
		case f0 == bdd.False && f1 != bdd.False:
			out[j] = true
			f = f1
		case f1 == bdd.False && f0 != bdd.False:
			out[j] = false
			f = f0
		case f0 == bdd.False && f1 == bdd.False:
			return nil, fmt.Errorf("cfsm: chi unsatisfiable for %v", testVals)
		default:
			// Don't care: the paper picks the cheapest option,
			// no assignment.
			out[j] = false
			f = f0
		}
	}
	return out, nil
}

// SnapshotTestVals evaluates all tests of the CFSM under a snapshot,
// producing the test-outcome vector the reactive function consumes.
func (r *Reactive) SnapshotTestVals(snap Snapshot) []int {
	out := make([]int, len(r.C.Tests))
	for i, t := range r.C.Tests {
		out[i] = snap.EvalTest(t)
	}
	return out
}
