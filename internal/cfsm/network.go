package cfsm

import (
	"fmt"
	"strings"
)

// Network is a globally asynchronous, locally synchronous (GALS)
// collection of CFSMs communicating through events. Signals connect
// machines by object identity: a signal created at network level and
// registered as one machine's output and another's input forms an
// internal one-place-buffered channel; signals only read are primary
// inputs, signals only written are primary outputs.
type Network struct {
	Name     string
	Machines []*CFSM
	Signals  []*Signal

	owner map[*Signal]bool
}

// NewNetwork creates an empty network.
func NewNetwork(name string) *Network {
	return &Network{Name: name, owner: make(map[*Signal]bool)}
}

// NewSignal creates a network-level signal.
func (n *Network) NewSignal(name string, pure bool) *Signal {
	s := &Signal{Name: name, Pure: pure}
	n.Signals = append(n.Signals, s)
	n.owner[s] = true
	return s
}

// Add registers a machine. Its input and output signals must be
// network signals (created with NewSignal and attached with
// AttachInput/AttachOutput).
func (n *Network) Add(c *CFSM) error {
	for _, s := range append(append([]*Signal{}, c.Inputs...), c.Outputs...) {
		if !n.owner[s] {
			return fmt.Errorf("network %s: machine %s uses foreign signal %s",
				n.Name, c.Name, s.Name)
		}
	}
	n.Machines = append(n.Machines, c)
	return nil
}

// AttachInput registers an existing network signal as an input of c.
func (c *CFSM) AttachInput(s *Signal) *Signal {
	c.Inputs = append(c.Inputs, s)
	return s
}

// AttachOutput registers an existing network signal as an output of c.
func (c *CFSM) AttachOutput(s *Signal) *Signal {
	c.Outputs = append(c.Outputs, s)
	return s
}

// Subnet returns a network over a subset of n's machines, preserving
// signal identity (the same *Signal pointers) and network order for
// both machines and signals. Signals attached to no member machine are
// dropped. The GALS partition runner uses it to give each
// clock-independent island its own runtime.
func (n *Network) Subnet(name string, machines []*CFSM) *Network {
	sub := &Network{Name: name, owner: make(map[*Signal]bool)}
	keep := make(map[*Signal]bool)
	for _, m := range machines {
		for _, s := range m.Inputs {
			keep[s] = true
		}
		for _, s := range m.Outputs {
			keep[s] = true
		}
	}
	for _, s := range n.Signals {
		if keep[s] {
			sub.Signals = append(sub.Signals, s)
			sub.owner[s] = true
		}
	}
	sub.Machines = append([]*CFSM(nil), machines...)
	return sub
}

// Writers returns the machines emitting s.
func (n *Network) Writers(s *Signal) []*CFSM {
	var out []*CFSM
	for _, m := range n.Machines {
		for _, o := range m.Outputs {
			if o == s {
				out = append(out, m)
				break
			}
		}
	}
	return out
}

// Readers returns the machines sensitive to s.
func (n *Network) Readers(s *Signal) []*CFSM {
	var out []*CFSM
	for _, m := range n.Machines {
		for _, i := range m.Inputs {
			if i == s {
				out = append(out, m)
				break
			}
		}
	}
	return out
}

// PrimaryInputs returns the signals written by the environment only.
func (n *Network) PrimaryInputs() []*Signal {
	var out []*Signal
	for _, s := range n.Signals {
		if len(n.Writers(s)) == 0 && len(n.Readers(s)) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// PrimaryOutputs returns the signals read by the environment only.
func (n *Network) PrimaryOutputs() []*Signal {
	var out []*Signal
	for _, s := range n.Signals {
		if len(n.Readers(s)) == 0 && len(n.Writers(s)) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// InternalSignals returns the signals both written and read inside the
// network.
func (n *Network) InternalSignals() []*Signal {
	var out []*Signal
	for _, s := range n.Signals {
		if len(n.Readers(s)) > 0 && len(n.Writers(s)) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// TopoOrder returns the machines ordered so that every writer of an
// internal signal precedes its readers, or an error on a causality
// cycle (needed by the synchronous single-FSM composition).
func (n *Network) TopoOrder() ([]*CFSM, error) {
	const (
		white = iota
		grey
		black
	)
	color := make(map[*CFSM]int)
	var order []*CFSM
	var visit func(m *CFSM) error
	visit = func(m *CFSM) error {
		switch color[m] {
		case grey:
			return fmt.Errorf("network %s: causality cycle through %s", n.Name, m.Name)
		case black:
			return nil
		}
		color[m] = grey
		for _, in := range m.Inputs {
			for _, w := range n.Writers(in) {
				if w != m {
					if err := visit(w); err != nil {
						return err
					}
				}
			}
		}
		color[m] = black
		order = append(order, m)
		return nil
	}
	for _, m := range n.Machines {
		if err := visit(m); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Validate checks the network: machine validity, unique state-variable
// names (the composition and the RTOS rely on them), and at most one
// writer per internal signal.
func (n *Network) Validate() error {
	names := make(map[string]string)
	for _, m := range n.Machines {
		if err := m.Validate(); err != nil {
			return err
		}
		for _, sv := range m.States {
			if prev, dup := names[sv.Name]; dup {
				return fmt.Errorf("network %s: state variable %s defined in both %s and %s",
					n.Name, sv.Name, prev, m.Name)
			}
			names[sv.Name] = m.Name
		}
	}
	return nil
}

// Dot renders the network topology in Graphviz format: machines as
// boxes, signals as edges (environment connections drawn to/from
// point nodes).
func (n *Network) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box];\n", n.Name)
	fmt.Fprintf(&b, "  env_in [label=\"environment\", shape=plaintext];\n")
	fmt.Fprintf(&b, "  env_out [label=\"environment\", shape=plaintext];\n")
	for _, m := range n.Machines {
		fmt.Fprintf(&b, "  %q;\n", m.Name)
	}
	for _, s := range n.Signals {
		writers := n.Writers(s)
		readers := n.Readers(s)
		if len(writers) == 0 {
			for _, r := range readers {
				fmt.Fprintf(&b, "  env_in -> %q [label=%q];\n", r.Name, s.Name)
			}
			continue
		}
		for _, w := range writers {
			if len(readers) == 0 {
				fmt.Fprintf(&b, "  %q -> env_out [label=%q];\n", w.Name, s.Name)
				continue
			}
			for _, r := range readers {
				fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", w.Name, r.Name, s.Name)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
