// Package cfsm implements the Codesign Finite State Machine model of
// Chiodo et al. used by the POLIS co-design flow: extended FSMs that
// receive an atomic snapshot of input events (locally synchronous),
// react by emitting output events and updating state, and communicate
// through one-place event buffers in a globally asynchronous network.
//
// Following Section III-B1 of the paper, a CFSM transition function is
// represented as a composition of
//
//   - a set of *tests* on input and state variables,
//   - a set of *actions* (output emissions and state assignments), and
//   - the *reactive function* mapping test outcomes to action subsets,
//     represented by its characteristic function (see reactive.go).
package cfsm

import (
	"fmt"

	"polis/internal/expr"
)

// Signal is an event channel between CFSMs or between a CFSM and its
// environment. A pure signal carries no value; a valued signal carries
// one bounded integer updated by the emitter.
type Signal struct {
	Name string
	Pure bool
}

// StateVar is an internal variable of a CFSM, persisting across
// reactions. A control variable has a small finite Domain (> 0) and
// can be tested with a multi-way selector; a data variable
// (Domain == 0) holds a bounded integer tested through predicates.
type StateVar struct {
	Name   string
	Domain int // number of values for control vars; 0 for data vars
	Init   int64
}

// TestKind classifies the primitive tests of a CFSM.
type TestKind int

// Test kinds.
const (
	TestPresence  TestKind = iota // is event present in the snapshot?
	TestPredicate                 // relational/arithmetic predicate, 0/1
	TestSelector                  // multi-way branch on a control state var
)

// Test is a primitive decision of the reactive function. Each test
// becomes one (possibly multi-valued) input variable of the
// characteristic function and one TEST vertex flavour in the s-graph.
type Test struct {
	Kind   TestKind
	Signal *Signal   // TestPresence
	Pred   expr.Expr // TestPredicate
	Sel    *StateVar // TestSelector
	id     int
}

// Arity returns the number of outcomes of the test.
func (t *Test) Arity() int {
	if t.Kind == TestSelector {
		return t.Sel.Domain
	}
	return 2
}

// Name returns a diagnostic name for the test.
func (t *Test) Name() string {
	switch t.Kind {
	case TestPresence:
		return "present_" + t.Signal.Name
	case TestPredicate:
		return "pred{" + t.Pred.C() + "}"
	default:
		return "sel_" + t.Sel.Name
	}
}

// ActionKind classifies the primitive actions.
type ActionKind int

// Action kinds.
const (
	ActEmit   ActionKind = iota // emit an output event (with optional value)
	ActAssign                   // assign an expression to a state variable
)

// Action is a primitive effect selected by the reactive function. Each
// action becomes one Boolean output variable of the characteristic
// function and one ASSIGN vertex flavour in the s-graph.
type Action struct {
	Kind   ActionKind
	Signal *Signal   // ActEmit
	Value  expr.Expr // ActEmit value (nil for pure signals)
	Var    *StateVar // ActAssign
	Expr   expr.Expr // ActAssign right-hand side
	id     int
}

// Name returns a diagnostic name for the action.
func (a *Action) Name() string {
	if a.Kind == ActEmit {
		if a.Value != nil {
			return fmt.Sprintf("emit_%s(%s)", a.Signal.Name, a.Value.C())
		}
		return "emit_" + a.Signal.Name
	}
	return fmt.Sprintf("%s:=%s", a.Var.Name, a.Expr.C())
}

// Cond requires a test to have a particular outcome: 0/1 for Boolean
// tests, a domain value for selectors.
type Cond struct {
	Test *Test
	Val  int
}

// Transition fires when all its conditions hold, executing its actions
// in order. The emission order within a transition is the static order
// chosen at specification time, as the paper's synthesis fixes it.
type Transition struct {
	Guard   []Cond
	Actions []*Action
}

// CFSM is one codesign finite state machine.
type CFSM struct {
	Name    string
	Inputs  []*Signal
	Outputs []*Signal
	States  []*StateVar
	Tests   []*Test
	Actions []*Action
	Trans   []*Transition

	// Exclusive lists groups of Boolean tests of which at most one
	// can be true in any snapshot (e.g. the predicates x==0, x==1,
	// x==2 over one variable). The information refines determinism
	// checking and drives the paper's false-path analysis ("event
	// incompatibility relations", Section III-C).
	Exclusive [][]*Test

	testDedup map[string]*Test
	actDedup  map[string]*Action
}

// New creates an empty CFSM.
func New(name string) *CFSM {
	return &CFSM{
		Name:      name,
		testDedup: make(map[string]*Test),
		actDedup:  make(map[string]*Action),
	}
}

// AddInput declares an input signal.
func (c *CFSM) AddInput(name string, pure bool) *Signal {
	s := &Signal{Name: name, Pure: pure}
	c.Inputs = append(c.Inputs, s)
	return s
}

// AddOutput declares an output signal.
func (c *CFSM) AddOutput(name string, pure bool) *Signal {
	s := &Signal{Name: name, Pure: pure}
	c.Outputs = append(c.Outputs, s)
	return s
}

// AddState declares a state variable; domain > 0 makes it a control
// variable usable in selector tests.
func (c *CFSM) AddState(name string, domain int, init int64) *StateVar {
	v := &StateVar{Name: name, Domain: domain, Init: init}
	c.States = append(c.States, v)
	return v
}

func (c *CFSM) internTest(key string, t *Test) *Test {
	if old, ok := c.testDedup[key]; ok {
		return old
	}
	t.id = len(c.Tests)
	c.Tests = append(c.Tests, t)
	c.testDedup[key] = t
	return t
}

func (c *CFSM) internAction(key string, a *Action) *Action {
	if old, ok := c.actDedup[key]; ok {
		return old
	}
	a.id = len(c.Actions)
	c.Actions = append(c.Actions, a)
	c.actDedup[key] = a
	return a
}

// Present returns the presence test for an input signal.
func (c *CFSM) Present(s *Signal) *Test {
	return c.internTest("p:"+s.Name, &Test{Kind: TestPresence, Signal: s})
}

// Pred returns the predicate test for a Boolean expression over state
// variables and input values (reference an input value as "?name").
func (c *CFSM) Pred(e expr.Expr) *Test {
	return c.internTest("e:"+e.C(), &Test{Kind: TestPredicate, Pred: e})
}

// Sel returns the multi-way selector test on a control state variable.
func (c *CFSM) Sel(v *StateVar) *Test {
	if v.Domain < 2 {
		panic("cfsm: selector requires a control variable with domain >= 2")
	}
	return c.internTest("s:"+v.Name, &Test{Kind: TestSelector, Sel: v})
}

// Emit returns the action emitting a pure output signal.
func (c *CFSM) Emit(s *Signal) *Action {
	return c.internAction("e:"+s.Name, &Action{Kind: ActEmit, Signal: s})
}

// EmitV returns the action emitting a valued output signal.
func (c *CFSM) EmitV(s *Signal, v expr.Expr) *Action {
	return c.internAction("e:"+s.Name+":"+v.C(), &Action{Kind: ActEmit, Signal: s, Value: v})
}

// Assign returns the action assigning e to state variable v.
func (c *CFSM) Assign(v *StateVar, e expr.Expr) *Action {
	return c.internAction("a:"+v.Name+":"+e.C(), &Action{Kind: ActAssign, Var: v, Expr: e})
}

// AddTransition appends a transition with the given guard and actions.
func (c *CFSM) AddTransition(guard []Cond, actions ...*Action) *Transition {
	t := &Transition{Guard: guard, Actions: actions}
	c.Trans = append(c.Trans, t)
	return t
}

// On is a convenience constructor for guard conditions.
func On(t *Test, val int) Cond { return Cond{Test: t, Val: val} }

// TestID returns the index of t within the CFSM's test list.
func (c *CFSM) TestID(t *Test) int { return t.id }

// ActionID returns the index of a within the CFSM's action list.
func (c *CFSM) ActionID(a *Action) int { return a.id }

// Validate checks structural sanity: guards reference interned tests,
// selector values lie in range, and no transition assigns the same
// state variable twice.
func (c *CFSM) Validate() error {
	for ti, tr := range c.Trans {
		assigned := make(map[*StateVar]bool)
		for _, cond := range tr.Guard {
			if cond.Test == nil {
				return fmt.Errorf("%s: transition %d: nil test", c.Name, ti)
			}
			if cond.Val < 0 || cond.Val >= cond.Test.Arity() {
				return fmt.Errorf("%s: transition %d: outcome %d out of range for %s",
					c.Name, ti, cond.Val, cond.Test.Name())
			}
			if cond.Test.id >= len(c.Tests) || c.Tests[cond.Test.id] != cond.Test {
				return fmt.Errorf("%s: transition %d: foreign test %s", c.Name, ti, cond.Test.Name())
			}
		}
		for _, a := range tr.Actions {
			if a.id >= len(c.Actions) || c.Actions[a.id] != a {
				return fmt.Errorf("%s: transition %d: foreign action %s", c.Name, ti, a.Name())
			}
			if a.Kind == ActAssign {
				if assigned[a.Var] {
					return fmt.Errorf("%s: transition %d assigns %s twice", c.Name, ti, a.Var.Name)
				}
				assigned[a.Var] = true
			}
		}
	}
	return nil
}

// Snapshot is one atomic input view of a CFSM: the set of present
// events, their values, and the current state.
type Snapshot struct {
	Present map[*Signal]bool
	Values  map[*Signal]int64
	State   map[*StateVar]int64
}

// NewSnapshot returns an empty snapshot with all state variables at
// their initial values.
func (c *CFSM) NewSnapshot() Snapshot {
	st := make(map[*StateVar]int64, len(c.States))
	for _, v := range c.States {
		st[v] = v.Init
	}
	return Snapshot{
		Present: make(map[*Signal]bool),
		Values:  make(map[*Signal]int64),
		State:   st,
	}
}

// Env adapts a snapshot to expression evaluation: state variables by
// name, input event values as "?name".
func (s Snapshot) Env() expr.Env { return snapEnv{s} }

type snapEnv struct{ s Snapshot }

func (e snapEnv) Lookup(name string) int64 {
	if len(name) > 0 && name[0] == '?' {
		for sig, v := range e.s.Values {
			if sig.Name == name[1:] {
				return v
			}
		}
		return 0
	}
	for v, val := range e.s.State {
		if v.Name == name {
			return val
		}
	}
	return 0
}

// EvalTest returns the outcome of a test under the snapshot.
func (s Snapshot) EvalTest(t *Test) int {
	switch t.Kind {
	case TestPresence:
		if s.Present[t.Signal] {
			return 1
		}
		return 0
	case TestPredicate:
		if t.Pred.Eval(s.Env()) != 0 {
			return 1
		}
		return 0
	default:
		v := s.State[t.Sel]
		if v < 0 || v >= int64(t.Sel.Domain) {
			panic(fmt.Sprintf("cfsm: state %s=%d out of domain %d", t.Sel.Name, v, t.Sel.Domain))
		}
		return int(v)
	}
}

// Emission records one emitted output event.
type Emission struct {
	Signal *Signal
	Value  int64 // meaningful only for valued signals
}

// Reaction is the result of one CFSM execution.
type Reaction struct {
	// Fired reports whether any action executed. The synthesized forms
	// of the machine (reactive function, s-graph, object code) encode a
	// reaction purely as action flags, so a matched transition with an
	// empty action list is indistinguishable from no match there; the
	// reference interpreter uses the same definition so that all
	// implementations agree on event consumption (Section IV-D).
	Fired     bool
	Emitted   []Emission
	NextState map[*StateVar]int64
}

// React executes one reaction under the given snapshot: the unique
// matching transition fires. All expression reads see the pre-reaction
// state (the paper's copy-on-entry semantics), so assignment order
// within a transition is immaterial. If no transition matches — or the
// matching transition performs no actions, which the synthesized forms
// cannot distinguish — Fired is false, no events are emitted and the
// state is unchanged (the RTOS then preserves the input events for the
// next execution).
func (c *CFSM) React(snap Snapshot) Reaction {
	next := make(map[*StateVar]int64, len(snap.State))
	for v, val := range snap.State {
		next[v] = val
	}
	r := Reaction{NextState: next}
	env := snap.Env()
	for _, tr := range c.Trans {
		match := true
		for _, cond := range tr.Guard {
			if snap.EvalTest(cond.Test) != cond.Val {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		r.Fired = len(tr.Actions) > 0
		for _, a := range tr.Actions {
			switch a.Kind {
			case ActEmit:
				em := Emission{Signal: a.Signal}
				if a.Value != nil {
					em.Value = a.Value.Eval(env)
				}
				r.Emitted = append(r.Emitted, em)
			case ActAssign:
				next[a.Var] = a.Expr.Eval(env)
			}
		}
		return r
	}
	return r
}

// MarkExclusive declares that at most one of the given Boolean tests
// can be true in any snapshot.
func (c *CFSM) MarkExclusive(tests ...*Test) {
	c.Exclusive = append(c.Exclusive, tests)
}

// CheckDeterministic verifies that no two transitions with different
// action sets can match the same snapshot, by checking that their
// guards conflict on some shared test or on a pair of mutually
// exclusive tests. Guards over disjoint, non-exclusive test sets
// always overlap.
func (c *CFSM) CheckDeterministic() error {
	for i := 0; i < len(c.Trans); i++ {
		for j := i + 1; j < len(c.Trans); j++ {
			if sameActions(c.Trans[i].Actions, c.Trans[j].Actions) {
				continue
			}
			if !c.guardsConflict(c.Trans[i].Guard, c.Trans[j].Guard) {
				return fmt.Errorf("%s: transitions %d and %d overlap with different actions",
					c.Name, i, j)
			}
		}
	}
	return nil
}

func sameActions(a, b []*Action) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (c *CFSM) guardsConflict(a, b []Cond) bool {
	for _, ca := range a {
		for _, cb := range b {
			if ca.Test == cb.Test && ca.Val != cb.Val {
				return true
			}
			if ca.Test != cb.Test && ca.Val == 1 && cb.Val == 1 && c.exclusive(ca.Test, cb.Test) {
				return true
			}
		}
	}
	return false
}

func (c *CFSM) exclusive(s, t *Test) bool {
	for _, grp := range c.Exclusive {
		hasS, hasT := false, false
		for _, g := range grp {
			if g == s {
				hasS = true
			}
			if g == t {
				hasT = true
			}
		}
		if hasS && hasT {
			return true
		}
	}
	return false
}
