package polisd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"polis/internal/pipeline"
	"polis/internal/randcfsm"
)

// TestWireRoundTrip: Decode(Encode(net)) over the JSON wire yields a
// valid network whose machines fingerprint identically to the
// originals, for every option set and many generated networks.
func TestWireRoundTrip(t *testing.T) {
	opts := []WireOptions{
		{},
		{Target: "r3k", Ordering: "naive", OptimizeCopies: true, IfThreshold: 3},
		{Ordering: "inputs-first", UseFalsePaths: true, Reduce: true},
	}
	for seed := int64(1); seed <= 10; seed++ {
		net, machines, err := randcfsm.NewNetwork(rand.New(rand.NewSource(seed)), 5, randcfsm.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(EncodeNetwork(net))
		if err != nil {
			t.Fatal(err)
		}
		var w WireNetwork
		if err := json.Unmarshal(blob, &w); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeNetwork(&w)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if len(got.Machines) != len(machines) {
			t.Fatalf("seed %d: %d machines decoded, want %d", seed, len(got.Machines), len(machines))
		}
		for _, wo := range opts {
			opt, err := wo.Options()
			if err != nil {
				t.Fatal(err)
			}
			for i, m := range machines {
				want := pipeline.Fingerprint(m.C, opt)
				have := pipeline.Fingerprint(got.Machines[i], opt)
				if want != have {
					t.Errorf("seed %d machine %d opts %+v: fingerprint drifted across the wire", seed, i, wo)
				}
			}
		}
	}
}

// TestWireOptionsErrors: unknown names are rejected.
func TestWireOptionsErrors(t *testing.T) {
	if _, err := (WireOptions{Target: "z80"}).Options(); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := (WireOptions{Ordering: "sorted"}).Options(); err == nil {
		t.Error("unknown ordering accepted")
	}
}

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, hs
}

func postSynth(t *testing.T, url string, req SynthRequest) (*SynthResponse, int) {
	t.Helper()
	req.Aggregate = true
	body, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(url+"/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp SynthResponse
	if hr.StatusCode == http.StatusOK || hr.StatusCode == http.StatusGatewayTimeout ||
		hr.StatusCode == http.StatusMultiStatus {
		if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
			t.Fatalf("status %d: bad body: %v", hr.StatusCode, err)
		}
	}
	return &resp, hr.StatusCode
}

func testNetwork(t *testing.T, seed int64, n int) (*WireNetwork, []*randcfsm.Machine) {
	t.Helper()
	net, machines, err := randcfsm.NewNetwork(rand.New(rand.NewSource(seed)), n, randcfsm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return EncodeNetwork(net), machines
}

// TestServerIncremental: resubmitting a network after editing one
// machine re-synthesizes exactly that machine; everything else is
// served from the warm cache.
func TestServerIncremental(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 2})
	wire, machines := testNetwork(t, 42, 4)

	resp, code := postSynth(t, hs.URL, SynthRequest{Network: wire})
	if code != http.StatusOK {
		t.Fatalf("cold request: status %d", code)
	}
	if resp.Misses != 4 || resp.Errors != 0 {
		t.Fatalf("cold request: %d misses (want 4), %d errors", resp.Misses, resp.Errors)
	}

	resp, code = postSynth(t, hs.URL, SynthRequest{Network: wire})
	if code != http.StatusOK {
		t.Fatalf("warm request: status %d", code)
	}
	if resp.MemHits != 4 || resp.Misses != 0 {
		t.Fatalf("warm request: %d mem hits, %d misses, want 4 and 0", resp.MemHits, resp.Misses)
	}

	victim := 2
	randcfsm.Mutate(rand.New(rand.NewSource(7)), machines[victim])
	wire.Machines[victim] = *encodeMachine(machines[victim].C)
	resp, code = postSynth(t, hs.URL, SynthRequest{Network: wire})
	if code != http.StatusOK {
		t.Fatalf("edited request: status %d", code)
	}
	if resp.Misses != 1 || resp.MemHits != 3 || resp.Errors != 0 {
		t.Fatalf("edited request: %d misses, %d mem hits (want 1 and 3): %+v", resp.Misses, resp.MemHits, resp.Results)
	}
	for _, r := range resp.Results {
		want := "mem"
		if r.Module == machines[victim].C.Name {
			want = "miss"
		}
		if r.Cache != want {
			t.Errorf("module %s served from %q, want %q", r.Module, r.Cache, want)
		}
	}
}

// TestServerSingleflight: N identical concurrent requests run the
// synthesis pipeline exactly once per distinct module; every other
// module result is a dedup join or a cache hit.
func TestServerSingleflight(t *testing.T) {
	const N, modules = 16, 4
	s, hs := testServer(t, Config{Workers: 2, QueueDepth: N * modules})
	wire, _ := testNetwork(t, 99, modules)

	var wg sync.WaitGroup
	responses := make([]*SynthResponse, N)
	codes := make([]int, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], codes[i] = postSynth(t, hs.URL, SynthRequest{Network: wire})
		}(i)
	}
	wg.Wait()

	var misses, served int
	for i, resp := range responses {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if resp.Errors != 0 {
			t.Fatalf("request %d: %d module errors (%s)", i, resp.Errors, resp.Error)
		}
		misses += resp.Misses
		served += resp.Misses + resp.MemHits + resp.DiskHit + resp.Dedups
	}
	if misses != modules {
		t.Errorf("pipeline ran %d times across %d identical requests, want exactly %d", misses, N, modules)
	}
	if served != N*modules {
		t.Errorf("%d module results, want %d", served, N*modules)
	}
	// The process-lifetime collector agrees: one miss per module.
	if _, _, colMisses := s.Collector().CacheCounters(); colMisses != modules {
		t.Errorf("collector saw %d misses, want %d", colMisses, modules)
	}
}

// TestServerTypedRejections: 429 when the admission queue cannot hold
// the request's modules, 504 when the deadline expires (aggregate
// mode), 400 for malformed input, 413 for oversized batches.
func TestServerTypedRejections(t *testing.T) {
	t.Run("429", func(t *testing.T) {
		_, hs := testServer(t, Config{Workers: 1, QueueDepth: 1})
		wire, _ := testNetwork(t, 5, 3)
		_, code := postSynth(t, hs.URL, SynthRequest{Network: wire})
		if code != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", code)
		}
	})
	t.Run("504", func(t *testing.T) {
		// One worker serializes eight cold modules; a 1ms deadline
		// cannot cover them.
		_, hs := testServer(t, Config{Workers: 1})
		wire, _ := testNetwork(t, 6, 8)
		resp, code := postSynth(t, hs.URL, SynthRequest{Network: wire, DeadlineMS: 1})
		if code != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want 504 (summary %+v)", code, resp.SynthSummary)
		}
		if resp.Error == "" || resp.Errors == 0 {
			t.Errorf("504 body carries no error: %+v", resp.SynthSummary)
		}
	})
	t.Run("400", func(t *testing.T) {
		_, hs := testServer(t, Config{})
		hr, err := http.Post(hs.URL+"/synthesize", "application/json", bytes.NewReader([]byte("{")))
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", hr.StatusCode)
		}
	})
	t.Run("413", func(t *testing.T) {
		_, hs := testServer(t, Config{MaxBatch: 2})
		wire, _ := testNetwork(t, 7, 3)
		_, code := postSynth(t, hs.URL, SynthRequest{Network: wire})
		if code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", code)
		}
	})
}

// TestServerDrain: Shutdown rejects new work with 503 while letting
// in-flight requests finish, and flips /healthz to 503.
func TestServerDrain(t *testing.T) {
	s, err := New(Config{Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	wire, _ := testNetwork(t, 11, 2)

	if _, code := postSynth(t, hs.URL, SynthRequest{Network: wire}); code != http.StatusOK {
		t.Fatalf("pre-drain request: status %d", code)
	}
	hr, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", hr.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second drain not idempotent: %v", err)
	}

	if _, code := postSynth(t, hs.URL, SynthRequest{Network: wire}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", code)
	}
	hr, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: %d, want 503", hr.StatusCode)
	}
}

// TestServerStats: the stats endpoint reflects served work.
func TestServerStats(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 2})
	wire, _ := testNetwork(t, 13, 3)
	postSynth(t, hs.URL, SynthRequest{Network: wire})
	postSynth(t, hs.URL, SynthRequest{Network: wire})

	hr, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var st Stats
	if err := json.NewDecoder(hr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.OK != 2 {
		t.Errorf("stats: %d requests, %d ok, want 2 and 2", st.Requests, st.OK)
	}
	if st.Modules["miss"] != 3 || st.Modules["mem"] != 3 {
		t.Errorf("stats: modules %v, want 3 miss and 3 mem", st.Modules)
	}
	// Misses counts failed lookups, and a cold module is probed twice
	// (handler fast path, then the worker), so assert the layer
	// contents rather than an exact miss count.
	if st.Cache.Entries != 3 || st.Cache.MemHits != 3 || st.Cache.Misses < 3 {
		t.Errorf("stats: cache %+v, want 3 entries, 3 mem hits", st.Cache)
	}
	if st.Report == "" {
		t.Error("stats: empty collector report")
	}
	// Per-stage BDD footprint: the three BDD-bearing stages must have
	// reported live/peak node counts for the synthesized modules.
	if len(st.BDDStages) == 0 {
		t.Fatal("stats: no per-stage BDD statistics")
	}
	stages := make(map[string]pipeline.BDDStageStats)
	for _, s := range st.BDDStages {
		stages[s.Stage] = s
	}
	for _, want := range []string{"reactive", "sift", "s-graph"} {
		s, ok := stages[want]
		if !ok {
			t.Errorf("stats: missing BDD stage %q in %+v", want, st.BDDStages)
			continue
		}
		if s.MaxLiveNodes <= 0 || s.MaxPeakNodes < s.MaxLiveNodes {
			t.Errorf("stats: stage %s node counts implausible: %+v", want, s)
		}
	}
	if stages["reactive"].CacheMisses == 0 {
		t.Error("stats: reactive stage recorded no op-cache traffic")
	}
}

// TestServerDiskCacheAcrossRestarts: a second server instance over
// the same cache directory serves the first instance's work from the
// disk layer.
func TestServerDiskCacheAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	wire, _ := testNetwork(t, 21, 3)

	_, hs1 := testServer(t, Config{Workers: 2, CacheDir: dir})
	if resp, code := postSynth(t, hs1.URL, SynthRequest{Network: wire}); code != http.StatusOK || resp.Misses != 3 {
		t.Fatalf("first instance: status %d, %d misses", code, resp.Misses)
	}

	_, hs2 := testServer(t, Config{Workers: 2, CacheDir: dir})
	resp, code := postSynth(t, hs2.URL, SynthRequest{Network: wire})
	if code != http.StatusOK {
		t.Fatalf("second instance: status %d", code)
	}
	if resp.DiskHit != 3 || resp.Misses != 0 {
		t.Fatalf("second instance: %d disk hits, %d misses, want 3 and 0", resp.DiskHit, resp.Misses)
	}
}

// TestServerStreamNDJSON: the default (non-aggregate) response is one
// NDJSON line per module plus a summary trailer.
func TestServerStreamNDJSON(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 2})
	wire, _ := testNetwork(t, 31, 3)
	body, _ := json.Marshal(&SynthRequest{Network: wire, IncludeC: true})
	hr, err := http.Post(hs.URL+"/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if ct := hr.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	dec := json.NewDecoder(hr.Body)
	var lines int
	var sum SynthSummary
	for dec.More() {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			t.Fatal(err)
		}
		lines++
		var probe SynthSummary
		if json.Unmarshal(raw, &probe); probe.Done {
			sum = probe
			continue
		}
		var res ModuleResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		if res.Module == "" || res.Fingerprint == "" || res.C == "" {
			t.Errorf("incomplete result line: %+v", res)
		}
	}
	if lines != 4 {
		t.Fatalf("%d NDJSON lines, want 3 results + 1 summary", lines)
	}
	if !sum.Done || sum.Modules != 3 || sum.Errors != 0 {
		t.Fatalf("bad summary: %+v", sum)
	}
}

// TestLoad1000Concurrent: a thousand concurrent requests against one
// server, every one served without transport errors, non-200s or
// module errors, while the pipeline runs at most once per distinct
// module fingerprint.
func TestLoad1000Concurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-connection load run")
	}
	const requests = 1000
	gen := randcfsm.Config{MaxInputs: 2, MaxOutputs: 2, MaxControlVars: 1, MaxDataVars: 1, MaxTransitions: 4, ValueRange: 4}
	s, hs := testServer(t, Config{Workers: 4, QueueDepth: 4096, DefaultDeadline: time.Minute})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	rep, err := RunLoad(ctx, LoadConfig{
		URL:         hs.URL,
		Requests:    requests,
		Concurrency: requests, // every request in flight at once
		Networks:    8,
		Modules:     2,
		EditRate:    0.05,
		Gen:         gen,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if rep.Requests != requests {
		t.Errorf("%d requests completed, want %d", rep.Requests, requests)
	}
	if rep.Errors != 0 {
		t.Errorf("%d transport errors", rep.Errors)
	}
	if rep.Status[http.StatusOK] != requests {
		t.Errorf("status counts %v, want all %d OK", rep.Status, requests)
	}
	if rep.ModErrors != 0 {
		t.Errorf("%d module errors", rep.ModErrors)
	}
	// Eight base networks of two modules, plus at most one changed
	// module per edit: the pipeline must not run more often than that.
	maxMisses := int64(8*2) + int64(rep.Edits)
	if rep.Misses > maxMisses {
		t.Errorf("%d pipeline runs, want <= %d (16 base modules + %d edits)", rep.Misses, maxMisses, rep.Edits)
	}
	if got := rep.Misses + rep.MemHits + rep.DiskHits + rep.Dedups; got != rep.Modules {
		t.Errorf("outcome sum %d != %d module results", got, rep.Modules)
	}
	// One cache entry per pipeline run (Misses counts lookups, which
	// probe twice per cold module — assert the store instead).
	if st := s.Cache().Stats(); int64(st.Entries) > maxMisses {
		t.Errorf("cache holds %d entries, want <= %d", st.Entries, maxMisses)
	}
}

// TestLoadReportString formats without panicking on the zero value.
func TestLoadReportString(t *testing.T) {
	r := &LoadReport{Status: map[int]int{200: 1}}
	if s := r.String(); s == "" {
		t.Error("empty report")
	}
	if (&LoadReport{Status: map[int]int{}}).String() == "" {
		t.Error("empty zero report")
	}
}

// badWireNetwork is a two-module network whose second module decodes
// and validates but fails deterministically in codegen: its assign
// references a variable no symbol table defines.
func badWireNetwork() *WireNetwork {
	return &WireNetwork{
		Name: "partial",
		Signals: []WireSignal{
			{Name: "a", Pure: true},
			{Name: "b", Pure: true},
			{Name: "c", Pure: true},
		},
		Machines: []WireMachine{
			{
				Name:    "good",
				Inputs:  []string{"a"},
				Outputs: []string{"b"},
				Tests:   []WireTest{{Kind: "present", Signal: "a"}},
				Actions: []WireAction{{Kind: "emit", Signal: "b"}},
				Trans:   []WireTrans{{Guard: []WireCond{{Test: 0, Val: 1}}, Actions: []int{0}}},
			},
			{
				Name:    "bad",
				Inputs:  []string{"c"},
				States:  []WireState{{Name: "s0"}},
				Tests:   []WireTest{{Kind: "present", Signal: "c"}},
				Actions: []WireAction{{Kind: "assign", Var: "s0", Expr: &WireExpr{Ref: "no_such_var"}}},
				Trans:   []WireTrans{{Guard: []WireCond{{Test: 0, Val: 1}}, Actions: []int{0}}},
			},
		},
	}
}

// TestAggregatePartialSuccess pins the aggregate path's partial-success
// contract: module errors with no deadline involved return 207
// Multi-Status (not 200), with the healthy module's result intact and
// the failure attributed in the summary.
func TestAggregatePartialSuccess(t *testing.T) {
	_, hs := testServer(t, Config{Workers: 2})
	resp, code := postSynth(t, hs.URL, SynthRequest{Network: badWireNetwork()})
	if code != http.StatusMultiStatus {
		t.Fatalf("status %d, want %d (partial success must not read as full success)", code, http.StatusMultiStatus)
	}
	if resp.Errors != 1 || !strings.Contains(resp.Error, "bad") {
		t.Fatalf("summary %+v does not attribute the failing module", resp.SynthSummary)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("%d results, want 2", len(resp.Results))
	}
	for _, res := range resp.Results {
		switch res.Module {
		case "good":
			if res.Error != "" || res.CodeSize == 0 {
				t.Errorf("healthy module damaged by the failing one: %+v", res)
			}
		case "bad":
			if !strings.Contains(res.Error, "unknown variable") {
				t.Errorf("bad module error %q, want the codegen unknown-variable failure", res.Error)
			}
		}
	}
}

// failAfterWriter is an http.ResponseWriter whose connection "drops"
// after limit successful writes: every later write fails the way a
// hung-up streaming client's socket does.
type failAfterWriter struct {
	hdr    http.Header
	writes int
	limit  int
}

func (w *failAfterWriter) Header() http.Header  { return w.hdr }
func (w *failAfterWriter) WriteHeader(code int) {}
func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.limit {
		return 0, errors.New("write tcp: broken pipe")
	}
	return len(p), nil
}

// TestStreamClientGone: a streaming client that hangs up mid-response
// is detected on the next result write; the server stops writing
// (no further results, no trailer), cancels the request's remaining
// module work, counts the event in /stats, and does not count the
// request as served OK or the induced cancellations as module errors.
// The broken connection is simulated with a deterministic failing
// writer: a real socket close races against synthesis speed.
func TestStreamClientGone(t *testing.T) {
	s, hs := testServer(t, Config{Workers: 1, DefaultDeadline: time.Minute})
	wire, _ := testNetwork(t, 77, 8)
	body, _ := json.Marshal(&SynthRequest{Network: wire})

	req := httptest.NewRequest(http.MethodPost, "/synthesize", bytes.NewReader(body))
	w := &failAfterWriter{hdr: make(http.Header), limit: 3}
	s.Handler().ServeHTTP(w, req)

	if w.writes != w.limit+1 {
		t.Errorf("%d writes; want exactly %d (3 results, 1 failed attempt, then silence)", w.writes, w.limit+1)
	}
	if got := s.clientGone.Load(); got != 1 {
		t.Errorf("clientGone = %d, want 1", got)
	}
	if got := s.ok.Load(); got != 0 {
		t.Errorf("request counted as served OK (%d) though nobody read it", got)
	}
	if got := s.modErrs.Load(); got != 0 {
		t.Errorf("%d module errors counted for cancellations the server itself induced", got)
	}

	// The counter is exported through /stats.
	sr, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var st Stats
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ClientGone != 1 {
		t.Errorf("stats client_gone = %d, want 1", st.ClientGone)
	}
}
