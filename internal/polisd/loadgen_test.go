package polisd

import (
	"testing"
	"time"
)

// TestPercentileNearestRank pins the loadgen quantile estimator on
// known latency vectors. The regression of interest is small samples:
// nearest-rank P99 of fewer than 100 samples must clamp toward the
// maximum, never collapse into P90's bucket (the old floor-based
// index gave P99 == P90 for n == 10) or index out of range.
func TestPercentileNearestRank(t *testing.T) {
	ms := func(vals ...int) []time.Duration {
		out := make([]time.Duration, len(vals))
		for i, v := range vals {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	seq := func(n int) []time.Duration { // 1ms..n ms, sorted
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i + 1
		}
		return ms(vals...)
	}
	cases := []struct {
		name   string
		sorted []time.Duration
		p      float64
		want   time.Duration
	}{
		{"empty", nil, 0.99, 0},
		{"single/p50", ms(7), 0.50, 7 * time.Millisecond},
		{"single/p99", ms(7), 0.99, 7 * time.Millisecond},
		{"two/p50", ms(1, 2), 0.50, 1 * time.Millisecond},
		{"two/p90", ms(1, 2), 0.90, 2 * time.Millisecond},
		{"two/p99", ms(1, 2), 0.99, 2 * time.Millisecond},
		// n=10: P50 = 5th sample, P90 = 9th, P99 must clamp to the
		// max (10th) — the old code returned the 9th, P90's bucket.
		{"ten/p50", seq(10), 0.50, 5 * time.Millisecond},
		{"ten/p90", seq(10), 0.90, 9 * time.Millisecond},
		{"ten/p99", seq(10), 0.99, 10 * time.Millisecond},
		// n=100: exact ranks.
		{"hundred/p50", seq(100), 0.50, 50 * time.Millisecond},
		{"hundred/p90", seq(100), 0.90, 90 * time.Millisecond},
		{"hundred/p99", seq(100), 0.99, 99 * time.Millisecond},
		// n=101: ceil(0.99*101)=100 -> 100th sample.
		{"hundred-one/p99", seq(101), 0.99, 100 * time.Millisecond},
		// p=1 must not index past the end.
		{"ten/p100", seq(10), 1.0, 10 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: percentile(n=%d, p=%.2f) = %v, want %v",
				tc.name, len(tc.sorted), tc.p, got, tc.want)
		}
	}
	// The headline regression, stated directly: on a 10-sample run
	// P99 must sit strictly above P90 when the max is distinct.
	s := seq(10)
	if p90, p99 := percentile(s, 0.90), percentile(s, 0.99); p99 <= p90 {
		t.Errorf("P99 (%v) collapsed into P90's bucket (%v) on 10 samples", p99, p90)
	}
}
