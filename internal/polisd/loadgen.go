package polisd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"polis/internal/randcfsm"
)

// LoadConfig tunes the load generator.
type LoadConfig struct {
	// URL is the service base, e.g. http://127.0.0.1:7315.
	URL string
	// Requests is the total request count; <= 0 means 100.
	Requests int
	// Concurrency is the number of concurrent clients; <= 0 means 8.
	Concurrency int
	// Networks is the number of distinct base networks shared by the
	// clients (client i works on network i mod Networks, so smaller
	// values raise the cross-client cache-hit and dedup rate);
	// <= 0 means Concurrency.
	Networks int
	// Modules is the machine count per network; <= 0 means 4.
	Modules int
	// EditRate is the probability that a client mutates one machine
	// of its network before a request, forcing an incremental
	// re-synthesis of exactly that module.
	EditRate float64
	// Seed makes the generated networks and edit schedule
	// reproducible; 0 means 1.
	Seed int64
	// DeadlineMS is the per-request deadline sent to the server;
	// <= 0 omits it (server default applies).
	DeadlineMS int
	// Gen bounds the generated machines; the zero value means
	// randcfsm.DefaultConfig().
	Gen randcfsm.Config
	// Client overrides the HTTP client (nil builds one sized for
	// Concurrency).
	Client *http.Client
}

func (c *LoadConfig) fill() {
	if c.Requests <= 0 {
		c.Requests = 100
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Networks <= 0 {
		c.Networks = c.Concurrency
	}
	if c.Modules <= 0 {
		c.Modules = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Gen == (randcfsm.Config{}) {
		c.Gen = randcfsm.DefaultConfig()
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        c.Concurrency,
				MaxIdleConnsPerHost: c.Concurrency,
			},
		}
	}
}

// LoadReport aggregates a load run.
type LoadReport struct {
	Requests int           // completed requests (any status)
	Errors   int           // transport-level failures
	Status   map[int]int   // responses by HTTP status
	Edits    int           // requests preceded by a network mutation
	Wall     time.Duration // whole-run wall time
	Reqs     float64       // requests per second

	Modules   int64 // module results received
	Misses    int64
	MemHits   int64
	DiskHits  int64
	Dedups    int64
	ModErrors int64

	P50, P90, P99, Max time.Duration
}

// HitRatio is the fraction of module results served without running
// the synthesis pipeline (memory, disk or dedup).
func (r *LoadReport) HitRatio() float64 {
	if r.Modules == 0 {
		return 0
	}
	return float64(r.MemHits+r.DiskHits+r.Dedups) / float64(r.Modules)
}

// String renders the human-readable report.
func (r *LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests: %d in %s (%.1f req/s), %d transport error(s), %d edit(s)\n",
		r.Requests, r.Wall.Round(time.Millisecond), r.Reqs, r.Errors, r.Edits)
	codes := make([]int, 0, len(r.Status))
	for c := range r.Status {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	fmt.Fprintf(&b, "status:  ")
	for _, c := range codes {
		fmt.Fprintf(&b, " %d=%d", c, r.Status[c])
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "modules:  %d (%d miss, %d mem, %d disk, %d dedup, %d error(s)), hit ratio %.1f%%\n",
		r.Modules, r.Misses, r.MemHits, r.DiskHits, r.Dedups, r.ModErrors, 100*r.HitRatio())
	fmt.Fprintf(&b, "latency:  p50 %s  p90 %s  p99 %s  max %s\n",
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	return b.String()
}

// loadClient is one generator goroutine's state: its own copy of a
// base network (clients with the same base seed own fingerprint-
// identical machines, so their requests dedup server-side) and its
// own rng for the edit schedule.
type loadClient struct {
	rng      *rand.Rand
	machines []*randcfsm.Machine
	body     []byte
	req      SynthRequest
}

func newLoadClient(cfg *LoadConfig, id int) (*loadClient, error) {
	baseSeed := cfg.Seed + int64(id%cfg.Networks)
	net, machines, err := randcfsm.NewNetwork(rand.New(rand.NewSource(baseSeed)), cfg.Modules, cfg.Gen)
	if err != nil {
		return nil, fmt.Errorf("loadgen: client %d: %w", id, err)
	}
	c := &loadClient{
		rng:      rand.New(rand.NewSource(cfg.Seed + 7919*int64(id) + 104729)),
		machines: machines,
		req: SynthRequest{
			Network:    EncodeNetwork(net),
			DeadlineMS: cfg.DeadlineMS,
			Aggregate:  true,
		},
	}
	return c, c.encode()
}

func (c *loadClient) encode() error {
	b, err := json.Marshal(&c.req)
	if err != nil {
		return err
	}
	c.body = b
	return nil
}

// mutate edits one machine of the client's network in place and
// re-encodes the request body.
func (c *loadClient) mutate() error {
	victim := c.machines[c.rng.Intn(len(c.machines))]
	randcfsm.Mutate(c.rng, victim)
	// Re-encode just the edited machine; the rest of the wire
	// network is unchanged.
	for i, m := range c.machines {
		if m == victim {
			c.req.Network.Machines[i] = *encodeMachine(victim.C)
		}
	}
	return c.encode()
}

// RunLoad drives the service at cfg.URL with cfg.Concurrency clients
// until cfg.Requests requests have completed, mutating networks at
// cfg.EditRate, and reports throughput, latency percentiles and the
// cache-hit ratio.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg.fill()
	clients := make([]*loadClient, cfg.Concurrency)
	for i := range clients {
		c, err := newLoadClient(&cfg, i)
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}

	rep := &LoadReport{Status: make(map[int]int)}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		next      atomic.Int64
		wg        sync.WaitGroup
	)
	record := func(status int, lat time.Duration, edited bool, resp *SynthResponse, transportErr error) {
		mu.Lock()
		defer mu.Unlock()
		rep.Requests++
		if edited {
			rep.Edits++
		}
		if transportErr != nil {
			rep.Errors++
			return
		}
		rep.Status[status]++
		latencies = append(latencies, lat)
		if resp != nil {
			rep.Modules += int64(len(resp.Results))
			rep.Misses += int64(resp.Misses)
			rep.MemHits += int64(resp.MemHits)
			rep.DiskHits += int64(resp.DiskHit)
			rep.Dedups += int64(resp.Dedups)
			rep.ModErrors += int64(resp.Errors)
		}
	}

	t0 := time.Now()
	for _, c := range clients {
		wg.Add(1)
		go func(c *loadClient) {
			defer wg.Done()
			first := true
			for ctx.Err() == nil && next.Add(1) <= int64(cfg.Requests) {
				edited := false
				if !first && c.rng.Float64() < cfg.EditRate {
					if err := c.mutate(); err == nil {
						edited = true
					}
				}
				first = false
				rt0 := time.Now()
				resp, status, err := c.post(ctx, cfg.Client, cfg.URL)
				record(status, time.Since(rt0), edited, resp, err)
			}
		}(c)
	}
	wg.Wait()
	rep.Wall = time.Since(t0)
	if rep.Wall > 0 {
		rep.Reqs = float64(rep.Requests) / rep.Wall.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50 = percentile(latencies, 0.50)
	rep.P90 = percentile(latencies, 0.90)
	rep.P99 = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.Max = latencies[n-1]
	}
	return rep, nil
}

// percentile returns the nearest-rank p-quantile of a sorted latency
// vector: the smallest sample with at least a p fraction of the data
// at or below it, index ceil(p*n)-1 clamped to the vector. The old
// floor-based index int(p*(n-1)) rounded small samples down — P99 of
// 10 samples landed on index 8, collapsing into P90's bucket instead
// of clamping toward the max — which understated tail latency on
// every short loadgen run.
func percentile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}

func (c *loadClient) post(ctx context.Context, client *http.Client, url string) (*SynthResponse, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/synthesize", bytes.NewReader(c.body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	hr, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK && hr.StatusCode != http.StatusGatewayTimeout {
		io.Copy(io.Discard, hr.Body)
		return nil, hr.StatusCode, nil
	}
	var resp SynthResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return nil, hr.StatusCode, err
	}
	return &resp, hr.StatusCode, nil
}
