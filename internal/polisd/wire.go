// Package polisd is the synthesis service core behind cmd/polisd: a
// long-running HTTP server that accepts batches of CFSM networks over
// a JSON wire format, synthesizes them through the shared pipeline
// with a process-lifetime warm cache, and streams per-module results.
// Identical modules across concurrent requests are deduplicated
// (singleflight), and resubmitting an edited network re-synthesizes
// only the changed modules — everything else is served from cache.
package polisd

import (
	"fmt"

	"polis/internal/cfsm"
	"polis/internal/expr"
	"polis/internal/pipeline"
	"polis/internal/sgraph"
	"polis/internal/vm"
)

// The wire format mirrors the cfsm model structurally: signals and
// state variables are referenced by name, tests and actions by their
// index in the machine's interned lists, so Decode(Encode(n))
// reproduces each machine with identical content fingerprints.

// WireExpr is the JSON encoding of an expr.Expr. Exactly one shape is
// populated: Const alone; Ref alone; Op+L+R for a binary node; Un+X
// for a unary node.
type WireExpr struct {
	Const *int64    `json:"const,omitempty"`
	Ref   string    `json:"ref,omitempty"`
	Op    string    `json:"op,omitempty"` // binary operator name (add, eq, ...)
	L     *WireExpr `json:"l,omitempty"`
	R     *WireExpr `json:"r,omitempty"`
	Un    string    `json:"un,omitempty"` // unary operator: neg, not, bnot
	X     *WireExpr `json:"x,omitempty"`
}

// WireSignal declares a network-level event channel.
type WireSignal struct {
	Name string `json:"name"`
	Pure bool   `json:"pure,omitempty"`
}

// WireState declares a machine state variable.
type WireState struct {
	Name   string `json:"name"`
	Domain int    `json:"domain,omitempty"` // >0: control variable
	Init   int64  `json:"init,omitempty"`
}

// WireTest is one primitive test; Kind selects which field applies.
type WireTest struct {
	Kind   string    `json:"kind"`             // "present" | "pred" | "sel"
	Signal string    `json:"signal,omitempty"` // present: input signal name
	Pred   *WireExpr `json:"pred,omitempty"`   // pred: predicate expression
	Sel    string    `json:"sel,omitempty"`    // sel: control state variable name
}

// WireAction is one primitive action; Kind selects which fields apply.
type WireAction struct {
	Kind   string    `json:"kind"`             // "emit" | "assign"
	Signal string    `json:"signal,omitempty"` // emit: output signal name
	Value  *WireExpr `json:"value,omitempty"`  // emit: optional value
	Var    string    `json:"var,omitempty"`    // assign: state variable name
	Expr   *WireExpr `json:"expr,omitempty"`   // assign: right-hand side
}

// WireCond requires test Test (index into the machine's test list) to
// have outcome Val.
type WireCond struct {
	Test int `json:"test"`
	Val  int `json:"val"`
}

// WireTrans is one transition: fire the actions (indices into the
// machine's action list) when every guard condition holds.
type WireTrans struct {
	Guard   []WireCond `json:"guard"`
	Actions []int      `json:"actions,omitempty"`
}

// WireMachine is one CFSM. Inputs and Outputs name network signals.
type WireMachine struct {
	Name      string       `json:"name"`
	Inputs    []string     `json:"inputs,omitempty"`
	Outputs   []string     `json:"outputs,omitempty"`
	States    []WireState  `json:"states,omitempty"`
	Tests     []WireTest   `json:"tests,omitempty"`
	Actions   []WireAction `json:"actions,omitempty"`
	Trans     []WireTrans  `json:"trans,omitempty"`
	Exclusive [][]int      `json:"exclusive,omitempty"` // groups of test indices
}

// WireNetwork is a complete CFSM network.
type WireNetwork struct {
	Name     string        `json:"name"`
	Signals  []WireSignal  `json:"signals"`
	Machines []WireMachine `json:"machines"`
}

// WireOptions selects the synthesis configuration by name; zero
// values are the paper's defaults (HC11 target, sift-after-support).
type WireOptions struct {
	Target         string `json:"target,omitempty"`   // "hc11" (default) | "r3k"
	Ordering       string `json:"ordering,omitempty"` // "default" | "naive" | "inputs-first"
	OptimizeCopies bool   `json:"optimize_copies,omitempty"`
	IfThreshold    int    `json:"if_threshold,omitempty"`
	UseFalsePaths  bool   `json:"false_paths,omitempty"`
	Reduce         bool   `json:"reduce,omitempty"`
}

// Target profiles are process-lifetime singletons so that every
// request shares one calibration memo entry and one fingerprint
// stream per target name (estimate.CalibrateCached and the pipeline
// cache both key on the profile by identity/name).
var (
	profHC11 = vm.HC11()
	profR3K  = vm.R3K()
)

// Options resolves the wire options to pipeline options.
func (w WireOptions) Options() (pipeline.Options, error) {
	var o pipeline.Options
	switch w.Target {
	case "", "hc11":
		o.Target = profHC11
	case "r3k":
		o.Target = profR3K
	default:
		return o, fmt.Errorf("unknown target %q (want hc11 or r3k)", w.Target)
	}
	switch w.Ordering {
	case "", "default", "sift":
		o.Ordering = sgraph.OrderSiftAfterSupport
	case "naive":
		o.Ordering = sgraph.OrderNaive
	case "inputs-first":
		o.Ordering = sgraph.OrderSiftInputsFirst
	default:
		return o, fmt.Errorf("unknown ordering %q (want default, naive or inputs-first)", w.Ordering)
	}
	o.Codegen.OptimizeCopies = w.OptimizeCopies
	o.Codegen.IfThreshold = w.IfThreshold
	o.UseFalsePaths = w.UseFalsePaths
	o.Reduce = w.Reduce
	return o, nil
}

// binOps maps wire operator names to expr binary operators, built
// from the expr package's own name table so the two cannot drift.
var binOps = func() map[string]expr.Op {
	m := make(map[string]expr.Op, expr.NumOps())
	for i := 0; i < expr.NumOps(); i++ {
		m[expr.Op(i).Name()] = expr.Op(i)
	}
	return m
}()

var unNames = map[expr.UnOp]string{
	expr.UnNeg:    "neg",
	expr.UnNot:    "not",
	expr.UnBitNot: "bnot",
}

var unOps = map[string]expr.UnOp{
	"neg":  expr.UnNeg,
	"not":  expr.UnNot,
	"bnot": expr.UnBitNot,
}

func encodeExpr(e expr.Expr) *WireExpr {
	switch v := e.(type) {
	case expr.Const:
		n := int64(v)
		return &WireExpr{Const: &n}
	case expr.Ref:
		return &WireExpr{Ref: string(v)}
	case *expr.Bin:
		return &WireExpr{Op: v.Op.Name(), L: encodeExpr(v.L), R: encodeExpr(v.R)}
	case *expr.Un:
		return &WireExpr{Un: unNames[v.Op], X: encodeExpr(v.X)}
	default:
		panic(fmt.Sprintf("polisd: unknown expr node %T", e))
	}
}

func decodeExpr(w *WireExpr) (expr.Expr, error) {
	switch {
	case w == nil:
		return nil, fmt.Errorf("missing expression")
	case w.Const != nil:
		return expr.Const(*w.Const), nil
	case w.Ref != "":
		return expr.Ref(w.Ref), nil
	case w.Op != "":
		op, ok := binOps[w.Op]
		if !ok {
			return nil, fmt.Errorf("unknown operator %q", w.Op)
		}
		l, err := decodeExpr(w.L)
		if err != nil {
			return nil, fmt.Errorf("%s: left: %w", w.Op, err)
		}
		r, err := decodeExpr(w.R)
		if err != nil {
			return nil, fmt.Errorf("%s: right: %w", w.Op, err)
		}
		return expr.NewBin(op, l, r), nil
	case w.Un != "":
		op, ok := unOps[w.Un]
		if !ok {
			return nil, fmt.Errorf("unknown unary operator %q", w.Un)
		}
		x, err := decodeExpr(w.X)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Un, err)
		}
		return &expr.Un{Op: op, X: x}, nil
	default:
		return nil, fmt.Errorf("expression node has no shape (want const, ref, op or un)")
	}
}

// EncodeNetwork renders a network in the wire format.
func EncodeNetwork(n *cfsm.Network) *WireNetwork {
	w := &WireNetwork{Name: n.Name}
	for _, s := range n.Signals {
		w.Signals = append(w.Signals, WireSignal{Name: s.Name, Pure: s.Pure})
	}
	for _, c := range n.Machines {
		w.Machines = append(w.Machines, *encodeMachine(c))
	}
	return w
}

func encodeMachine(c *cfsm.CFSM) *WireMachine {
	w := &WireMachine{Name: c.Name}
	for _, s := range c.Inputs {
		w.Inputs = append(w.Inputs, s.Name)
	}
	for _, s := range c.Outputs {
		w.Outputs = append(w.Outputs, s.Name)
	}
	for _, v := range c.States {
		w.States = append(w.States, WireState{Name: v.Name, Domain: v.Domain, Init: v.Init})
	}
	for _, t := range c.Tests {
		var wt WireTest
		switch t.Kind {
		case cfsm.TestPresence:
			wt = WireTest{Kind: "present", Signal: t.Signal.Name}
		case cfsm.TestPredicate:
			wt = WireTest{Kind: "pred", Pred: encodeExpr(t.Pred)}
		case cfsm.TestSelector:
			wt = WireTest{Kind: "sel", Sel: t.Sel.Name}
		}
		w.Tests = append(w.Tests, wt)
	}
	for _, a := range c.Actions {
		var wa WireAction
		switch a.Kind {
		case cfsm.ActEmit:
			wa = WireAction{Kind: "emit", Signal: a.Signal.Name}
			if a.Value != nil {
				wa.Value = encodeExpr(a.Value)
			}
		case cfsm.ActAssign:
			wa = WireAction{Kind: "assign", Var: a.Var.Name, Expr: encodeExpr(a.Expr)}
		}
		w.Actions = append(w.Actions, wa)
	}
	for _, tr := range c.Trans {
		wt := WireTrans{Guard: []WireCond{}}
		for _, g := range tr.Guard {
			wt.Guard = append(wt.Guard, WireCond{Test: c.TestID(g.Test), Val: g.Val})
		}
		for _, a := range tr.Actions {
			wt.Actions = append(wt.Actions, c.ActionID(a))
		}
		w.Trans = append(w.Trans, wt)
	}
	for _, grp := range c.Exclusive {
		ids := make([]int, len(grp))
		for i, t := range grp {
			ids[i] = c.TestID(t)
		}
		w.Exclusive = append(w.Exclusive, ids)
	}
	return w
}

// DecodeNetwork reconstructs a validated cfsm.Network from the wire
// format. Tests and actions are re-interned in wire order, so indices
// in transitions refer to the same objects on both sides and the
// decoded machines fingerprint identically to the encoded originals.
func DecodeNetwork(w *WireNetwork) (*cfsm.Network, error) {
	if w == nil {
		return nil, fmt.Errorf("missing network")
	}
	net := cfsm.NewNetwork(w.Name)
	sigs := make(map[string]*cfsm.Signal, len(w.Signals))
	for _, ws := range w.Signals {
		if ws.Name == "" {
			return nil, fmt.Errorf("network %s: signal with empty name", w.Name)
		}
		if _, dup := sigs[ws.Name]; dup {
			return nil, fmt.Errorf("network %s: duplicate signal %s", w.Name, ws.Name)
		}
		sigs[ws.Name] = net.NewSignal(ws.Name, ws.Pure)
	}
	for i := range w.Machines {
		c, err := decodeMachine(&w.Machines[i], sigs)
		if err != nil {
			return nil, fmt.Errorf("network %s: machine %s: %w", w.Name, w.Machines[i].Name, err)
		}
		if err := net.Add(c); err != nil {
			return nil, err
		}
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

func decodeMachine(w *WireMachine, sigs map[string]*cfsm.Signal) (*cfsm.CFSM, error) {
	if w.Name == "" {
		return nil, fmt.Errorf("machine with empty name")
	}
	c := cfsm.New(w.Name)
	for _, name := range w.Inputs {
		s, ok := sigs[name]
		if !ok {
			return nil, fmt.Errorf("unknown input signal %q", name)
		}
		c.AttachInput(s)
	}
	for _, name := range w.Outputs {
		s, ok := sigs[name]
		if !ok {
			return nil, fmt.Errorf("unknown output signal %q", name)
		}
		c.AttachOutput(s)
	}
	states := make(map[string]*cfsm.StateVar, len(w.States))
	for _, ws := range w.States {
		if _, dup := states[ws.Name]; dup {
			return nil, fmt.Errorf("duplicate state variable %q", ws.Name)
		}
		states[ws.Name] = c.AddState(ws.Name, ws.Domain, ws.Init)
	}
	tests := make([]*cfsm.Test, len(w.Tests))
	for i, wt := range w.Tests {
		switch wt.Kind {
		case "present":
			s, ok := sigs[wt.Signal]
			if !ok {
				return nil, fmt.Errorf("test %d: unknown signal %q", i, wt.Signal)
			}
			tests[i] = c.Present(s)
		case "pred":
			e, err := decodeExpr(wt.Pred)
			if err != nil {
				return nil, fmt.Errorf("test %d: %w", i, err)
			}
			tests[i] = c.Pred(e)
		case "sel":
			v, ok := states[wt.Sel]
			if !ok {
				return nil, fmt.Errorf("test %d: unknown state variable %q", i, wt.Sel)
			}
			tests[i] = c.Sel(v)
		default:
			return nil, fmt.Errorf("test %d: unknown kind %q", i, wt.Kind)
		}
		if c.TestID(tests[i]) != i {
			return nil, fmt.Errorf("test %d duplicates test %d", i, c.TestID(tests[i]))
		}
	}
	actions := make([]*cfsm.Action, len(w.Actions))
	for i, wa := range w.Actions {
		switch wa.Kind {
		case "emit":
			s, ok := sigs[wa.Signal]
			if !ok {
				return nil, fmt.Errorf("action %d: unknown signal %q", i, wa.Signal)
			}
			if wa.Value != nil {
				e, err := decodeExpr(wa.Value)
				if err != nil {
					return nil, fmt.Errorf("action %d: %w", i, err)
				}
				actions[i] = c.EmitV(s, e)
			} else {
				actions[i] = c.Emit(s)
			}
		case "assign":
			v, ok := states[wa.Var]
			if !ok {
				return nil, fmt.Errorf("action %d: unknown state variable %q", i, wa.Var)
			}
			e, err := decodeExpr(wa.Expr)
			if err != nil {
				return nil, fmt.Errorf("action %d: %w", i, err)
			}
			actions[i] = c.Assign(v, e)
		default:
			return nil, fmt.Errorf("action %d: unknown kind %q", i, wa.Kind)
		}
		if c.ActionID(actions[i]) != i {
			return nil, fmt.Errorf("action %d duplicates action %d", i, c.ActionID(actions[i]))
		}
	}
	for ti, wt := range w.Trans {
		guard := make([]cfsm.Cond, len(wt.Guard))
		for gi, g := range wt.Guard {
			if g.Test < 0 || g.Test >= len(tests) {
				return nil, fmt.Errorf("transition %d: test index %d out of range", ti, g.Test)
			}
			guard[gi] = cfsm.On(tests[g.Test], g.Val)
		}
		acts := make([]*cfsm.Action, len(wt.Actions))
		for ai, id := range wt.Actions {
			if id < 0 || id >= len(actions) {
				return nil, fmt.Errorf("transition %d: action index %d out of range", ti, id)
			}
			acts[ai] = actions[id]
		}
		c.AddTransition(guard, acts...)
	}
	for gi, grp := range w.Exclusive {
		ts := make([]*cfsm.Test, len(grp))
		for i, id := range grp {
			if id < 0 || id >= len(tests) {
				return nil, fmt.Errorf("exclusive group %d: test index %d out of range", gi, id)
			}
			ts[i] = tests[id]
		}
		c.MarkExclusive(ts...)
	}
	return c, nil
}
