package polisd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"polis/internal/cfsm"
	"polis/internal/pipeline"
)

// Config tunes the service.
type Config struct {
	// Workers bounds the number of concurrently synthesizing modules
	// across all requests; <= 0 means 4.
	Workers int
	// QueueDepth bounds the number of admitted in-flight modules
	// across all requests (admission control); a request whose
	// modules do not fit is rejected with 429. <= 0 means 256.
	QueueDepth int
	// MaxBatch bounds the machines of one request; <= 0 means 256.
	MaxBatch int
	// DefaultDeadline applies when a request names none; zero means
	// 30s. MaxDeadline caps request-supplied deadlines; zero means
	// DefaultDeadline*4.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// CacheDir, if non-empty, adds the persistent on-disk cache
	// layer below the in-memory one.
	CacheDir string
	// Logf receives one structured line per request and lifecycle
	// event; nil disables logging.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 4 * c.DefaultDeadline
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// SynthRequest is the body of POST /synthesize.
type SynthRequest struct {
	Network *WireNetwork `json:"network"`
	Options WireOptions  `json:"options"`
	// DeadlineMS bounds the request's wall time (capped by the
	// server's MaxDeadline); 0 uses the server default.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// IncludeC returns the generated C routine per module.
	IncludeC bool `json:"include_c,omitempty"`
	// Aggregate returns one JSON object instead of streaming NDJSON,
	// and maps a deadline expiry to status 504.
	Aggregate bool `json:"aggregate,omitempty"`
}

// ModuleResult is one per-module result line.
type ModuleResult struct {
	Module      string  `json:"module"`
	Fingerprint string  `json:"fingerprint"`
	Cache       string  `json:"cache"` // miss | mem | disk | dedup
	Ms          float64 `json:"ms"`
	CodeSize    int     `json:"code_size,omitempty"`
	MinCycles   int64   `json:"min_cycles,omitempty"`
	MaxCycles   int64   `json:"max_cycles,omitempty"`
	EstBytes    int64   `json:"est_bytes,omitempty"`
	C           string  `json:"c,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// SynthSummary is the trailer of a response: totals over the request.
type SynthSummary struct {
	Done    bool    `json:"done"`
	Network string  `json:"network"`
	Modules int     `json:"modules"`
	Misses  int     `json:"misses"`
	MemHits int     `json:"mem_hits"`
	DiskHit int     `json:"disk_hits"`
	Dedups  int     `json:"dedups"`
	Errors  int     `json:"errors"`
	Ms      float64 `json:"ms"`
	Error   string  `json:"error,omitempty"`
}

// SynthResponse is the aggregate (non-streaming) response body.
type SynthResponse struct {
	SynthSummary
	Results []ModuleResult `json:"results"`
}

// Stats is the body of GET /stats.
type Stats struct {
	UptimeS     float64             `json:"uptime_s"`
	Draining    bool                `json:"draining"`
	Requests    int64               `json:"requests"`
	OK          int64               `json:"ok"`
	BadRequest  int64               `json:"bad_request"`
	Rejected429 int64               `json:"rejected_429"`
	Rejected503 int64               `json:"rejected_503"`
	Deadline504 int64               `json:"deadline_504"`
	// ClientGone counts streaming requests whose client hung up
	// mid-stream: the server cancels the request's outstanding module
	// work and stops writing instead of synthesizing for nobody.
	ClientGone int64 `json:"client_gone"`
	Modules     map[string]int64    `json:"modules"` // by cache outcome
	ModuleErrs  int64               `json:"module_errors"`
	Pending     int64               `json:"pending"` // admitted in-flight modules
	QueueDepth  int                 `json:"queue_cap"`
	Workers     int                 `json:"workers"`
	Cache       pipeline.CacheStats `json:"cache"`
	// BDDStages is the per-stage BDD kernel footprint across every
	// module synthesized so far: worst live/peak node counts and
	// per-stage op-cache hit rates (reactive build, sifting, s-graph).
	BDDStages []pipeline.BDDStageStats `json:"bdd_stages"`
	Report    string                   `json:"report"` // Collector text report
}

// errQueueFull is returned by admission control; mapped to 429.
var errQueueFull = errors.New("polisd: admission queue full")

// flight is a server-level singleflight entry: the first request to
// need a fingerprint becomes the leader and occupies one worker; the
// rest wait on done without consuming queue slots or workers.
type srvFlight struct {
	done    chan struct{}
	a       *pipeline.Artifact
	outcome pipeline.Outcome
	err     error
}

type job struct {
	ctx context.Context
	key string
	m   *cfsm.CFSM
	opt pipeline.Options
	fl  *srvFlight
}

// Server is the synthesis service core. Create with New, mount
// Handler on an http.Server, and call Shutdown to drain.
type Server struct {
	cfg   Config
	cache *pipeline.Cache
	col   *pipeline.Collector
	queue chan job
	stop  chan struct{}
	wg    sync.WaitGroup // workers
	reqWG sync.WaitGroup // in-flight /synthesize requests

	flMu    sync.Mutex
	flights map[string]*srvFlight

	start    time.Time
	draining atomic.Bool
	pending  atomic.Int64 // admitted in-flight modules

	requests, ok, badReq, rej429, rej503, ddl504 atomic.Int64
	outMiss, outMem, outDisk, outDedup, modErrs  atomic.Int64
	clientGone                                   atomic.Int64
}

// New builds a Server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	cache, err := pipeline.NewCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		cache:   cache,
		col:     &pipeline.Collector{},
		queue:   make(chan job, cfg.QueueDepth),
		stop:    make(chan struct{}),
		flights: make(map[string]*srvFlight),
		start:   time.Now(),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Cache exposes the warm cache (for tests and stats).
func (s *Server) Cache() *pipeline.Cache { return s.cache }

// Collector exposes the process-lifetime trace collector.
func (s *Server) Collector() *pipeline.Collector { return s.col }

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			if err := j.ctx.Err(); err != nil {
				s.finishFlight(j, nil, pipeline.OutcomeMiss, err)
				continue
			}
			a, out, err := s.cache.SynthesizeCached(j.ctx, j.m, j.opt, s.col)
			s.finishFlight(j, a, out, err)
		case <-s.stop:
			return
		}
	}
}

func (s *Server) finishFlight(j job, a *pipeline.Artifact, out pipeline.Outcome, err error) {
	s.flMu.Lock()
	delete(s.flights, j.key)
	s.flMu.Unlock()
	j.fl.a, j.fl.outcome, j.fl.err = a, out, err
	close(j.fl.done)
}

// synthesizeModule serves one module: warm-cache fast path, then the
// server-level singleflight (join an in-flight identical synthesis
// without occupying a worker), then the admission-gated worker queue.
func (s *Server) synthesizeModule(ctx context.Context, m *cfsm.CFSM, opt pipeline.Options) (*pipeline.Artifact, pipeline.Outcome, error) {
	key := pipeline.Fingerprint(m, opt)
	for {
		if a, fromDisk, ok := s.cache.Get(key); ok {
			s.col.Event(pipeline.Event{Kind: pipeline.EvCacheHit, Module: m.Name, FromDisk: fromDisk})
			if fromDisk {
				return a, pipeline.OutcomeDiskHit, nil
			}
			return a, pipeline.OutcomeMemHit, nil
		}
		s.flMu.Lock()
		fl, joined := s.flights[key]
		if !joined {
			fl = &srvFlight{done: make(chan struct{})}
			s.flights[key] = fl
		}
		s.flMu.Unlock()
		if !joined {
			// Leader: hand the work to the pool. The queue cannot
			// overflow — admission bounds in-flight modules to its
			// capacity — but guard anyway rather than block.
			select {
			case s.queue <- job{ctx: ctx, key: key, m: m, opt: opt, fl: fl}:
			default:
				s.flMu.Lock()
				delete(s.flights, key)
				s.flMu.Unlock()
				fl.err = errQueueFull
				close(fl.done)
				return nil, pipeline.OutcomeMiss, errQueueFull
			}
		} else {
			s.col.Event(pipeline.Event{Kind: pipeline.EvDedup, Module: m.Name})
		}
		select {
		case <-fl.done:
			if fl.err != nil {
				// A leader cancelled by its own request's deadline says
				// nothing about this request: retry (and possibly lead).
				if !joined || !(errors.Is(fl.err, context.Canceled) || errors.Is(fl.err, context.DeadlineExceeded)) {
					return nil, fl.outcome, fl.err
				}
				continue
			}
			if joined {
				return fl.a, pipeline.OutcomeDedup, nil
			}
			return fl.a, fl.outcome, nil
		case <-ctx.Done():
			return nil, pipeline.OutcomeDedup, ctx.Err()
		}
	}
}

// admit reserves n module slots, failing when the admission queue is
// full; release returns them.
func (s *Server) admit(n int) bool {
	for {
		cur := s.pending.Load()
		if cur+int64(n) > int64(s.cfg.QueueDepth) {
			return false
		}
		if s.pending.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}

func (s *Server) release(n int) { s.pending.Add(int64(-n)) }

func (s *Server) countOutcome(out pipeline.Outcome) {
	switch out {
	case pipeline.OutcomeMiss:
		s.outMiss.Add(1)
	case pipeline.OutcomeMemHit:
		s.outMem.Add(1)
	case pipeline.OutcomeDiskHit:
		s.outDisk.Add(1)
	case pipeline.OutcomeDedup:
		s.outDedup.Add(1)
	}
}

// Handler returns the service mux:
//
//	POST /synthesize  — synthesize a network (NDJSON stream or aggregate)
//	GET  /stats       — counters, cache and pipeline statistics
//	GET  /healthz     — 200 while serving, 503 while draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/synthesize", s.handleSynthesize)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.badReq.Add(1)
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		s.rej503.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.reqWG.Add(1)
	defer s.reqWG.Done()

	var req SynthRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.badReq.Add(1)
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	net, err := DecodeNetwork(req.Network)
	if err != nil {
		s.badReq.Add(1)
		httpError(w, http.StatusBadRequest, "bad network: %v", err)
		return
	}
	if len(net.Machines) == 0 {
		s.badReq.Add(1)
		httpError(w, http.StatusBadRequest, "network has no machines")
		return
	}
	if len(net.Machines) > s.cfg.MaxBatch {
		s.badReq.Add(1)
		httpError(w, http.StatusRequestEntityTooLarge, "%d machines exceeds batch limit %d", len(net.Machines), s.cfg.MaxBatch)
		return
	}
	opt, err := req.Options.Options()
	if err != nil {
		s.badReq.Add(1)
		httpError(w, http.StatusBadRequest, "bad options: %v", err)
		return
	}

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
		if deadline > s.cfg.MaxDeadline {
			deadline = s.cfg.MaxDeadline
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	n := len(net.Machines)
	if !s.admit(n) {
		s.rej429.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "admission queue full (%d in flight, capacity %d)", s.pending.Load(), s.cfg.QueueDepth)
		return
	}
	defer s.release(n)

	t0 := time.Now()
	s.col.Event(pipeline.Event{Kind: pipeline.EvRunStart, Modules: n, Workers: s.cfg.Workers})

	results := make(chan ModuleResult, n)
	for _, m := range net.Machines {
		go func(m *cfsm.CFSM) {
			mt0 := time.Now()
			a, out, err := s.synthesizeModule(ctx, m, opt)
			res := ModuleResult{
				Module:      m.Name,
				Fingerprint: pipeline.Fingerprint(m, opt),
				Cache:       out.String(),
				Ms:          float64(time.Since(mt0).Microseconds()) / 1000,
			}
			if err != nil {
				res.Error = err.Error()
			} else {
				res.CodeSize = a.CodeSize
				res.MinCycles = a.Measured.Min
				res.MaxCycles = a.Measured.Max
				res.EstBytes = a.Estimate.CodeBytes
				if req.IncludeC {
					res.C = a.C
				}
			}
			results <- res
		}(m)
	}

	sum := SynthSummary{Done: true, Network: net.Name, Modules: n}
	var all []ModuleResult
	var enc *json.Encoder
	flusher, _ := w.(http.Flusher)
	if !req.Aggregate {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc = json.NewEncoder(w)
	}
	clientGone := false
	written := 0
	for i := 0; i < n; i++ {
		res := <-results
		if clientGone {
			// Keep draining so the per-module goroutines exit, but the
			// results are moot: nobody is listening, and the errors the
			// cancellation induced are not module failures.
			continue
		}
		switch res.Error {
		case "":
			switch res.Cache {
			case "miss":
				sum.Misses++
			case "mem":
				sum.MemHits++
			case "disk":
				sum.DiskHit++
			case "dedup":
				sum.Dedups++
			}
		default:
			sum.Errors++
			s.modErrs.Add(1)
			if sum.Error == "" {
				sum.Error = fmt.Sprintf("%s: %s", res.Module, res.Error)
			}
		}
		if res.Error == "" {
			s.countOutcome(outcomeFromString(res.Cache))
		}
		if enc != nil {
			if err := enc.Encode(res); err != nil {
				// The write failed: the client hung up mid-stream.
				// Cancel this request's outstanding module work (warm
				// cache entries and other requests' flights are
				// unaffected) and stop flushing.
				clientGone = true
				s.clientGone.Add(1)
				cancel()
				continue
			}
			written++
			if flusher != nil {
				flusher.Flush()
			}
		} else {
			all = append(all, res)
		}
	}
	sum.Ms = float64(time.Since(t0).Microseconds()) / 1000
	cst := s.cache.Stats()
	s.col.Event(pipeline.Event{Kind: pipeline.EvRunEnd, Duration: time.Since(t0), Cache: &cst})

	status := http.StatusOK
	if sum.Errors > 0 && ctx.Err() != nil {
		status = http.StatusGatewayTimeout
		s.ddl504.Add(1)
		if sum.Error == "" {
			sum.Error = "deadline exceeded"
		}
	} else if sum.Errors > 0 {
		// Partial success: some modules failed on their own, with no
		// deadline involved. The aggregate response says so with 207
		// Multi-Status — per-module errors are in Results and the
		// summary's Errors/Error fields — so callers checking only the
		// status line cannot mistake it for full success. (The
		// streaming path has already committed its status with the
		// first result line; its trailer carries the same fields
		// in-band.)
		status = http.StatusMultiStatus
	}
	if clientGone {
		// Nothing more to write, and the "errors" are our own
		// cancellation: don't send a trailer, don't count the request
		// as served.
		s.cfg.Logf("synthesize net=%s modules=%d client_gone after %d result(s)", net.Name, n, written)
		return
	}
	if enc != nil {
		// Streaming: the status line went out with the first result;
		// the summary trailer carries any deadline error in-band.
		enc.Encode(sum)
	} else {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(SynthResponse{SynthSummary: sum, Results: all})
	}
	if status == http.StatusOK {
		s.ok.Add(1)
	}
	s.cfg.Logf("synthesize net=%s modules=%d miss=%d mem=%d disk=%d dedup=%d errs=%d status=%d ms=%.1f",
		net.Name, n, sum.Misses, sum.MemHits, sum.DiskHit, sum.Dedups, sum.Errors, status, sum.Ms)
}

func outcomeFromString(s string) pipeline.Outcome {
	switch s {
	case "mem":
		return pipeline.OutcomeMemHit
	case "disk":
		return pipeline.OutcomeDiskHit
	case "dedup":
		return pipeline.OutcomeDedup
	default:
		return pipeline.OutcomeMiss
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := Stats{
		UptimeS:     time.Since(s.start).Seconds(),
		Draining:    s.draining.Load(),
		Requests:    s.requests.Load(),
		OK:          s.ok.Load(),
		BadRequest:  s.badReq.Load(),
		Rejected429: s.rej429.Load(),
		Rejected503: s.rej503.Load(),
		Deadline504: s.ddl504.Load(),
		ClientGone:  s.clientGone.Load(),
		Modules: map[string]int64{
			"miss":  s.outMiss.Load(),
			"mem":   s.outMem.Load(),
			"disk":  s.outDisk.Load(),
			"dedup": s.outDedup.Load(),
		},
		ModuleErrs: s.modErrs.Load(),
		Pending:    s.pending.Load(),
		QueueDepth: s.cfg.QueueDepth,
		Workers:    s.cfg.Workers,
		Cache:      s.cache.Stats(),
		BDDStages:  s.col.BDDStages(),
		Report:     s.col.Report(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Write([]byte("ok\n"))
}

// Shutdown drains the server: new requests are rejected with 503,
// in-flight requests run to completion (their own deadlines bound the
// wait), then the worker pool stops. The context caps the drain wait.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.Swap(true) {
		return nil
	}
	s.cfg.Logf("draining: waiting for in-flight requests")
	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("polisd: drain aborted: %w", ctx.Err())
	}
	close(s.stop)
	s.wg.Wait()
	s.cfg.Logf("drained: %d requests served (%d ok), %d modules synthesized",
		s.requests.Load(), s.ok.Load(), s.outMiss.Load())
	return err
}
