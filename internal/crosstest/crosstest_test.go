// Package crosstest differentially tests every implementation path of
// the synthesis flow against the reference CFSM interpreter on
// hundreds of randomly generated machines: the s-graph interpreter
// under each ordering, the assembled object code on both targets, the
// boolean-circuit implementation, the two-level-jump baseline, and the
// estimator's bound consistency.
package crosstest

import (
	"math/rand"
	"sort"
	"testing"

	"polis/internal/cfsm"
	"polis/internal/codegen"
	"polis/internal/estimate"
	"polis/internal/logic"
	"polis/internal/randcfsm"
	"polis/internal/sgraph"
	"polis/internal/vm"

	"polis/internal/baseline"
)

// mustCalibrate calibrates a built-in profile, failing the test on a
// calibration error.
func mustCalibrate(t *testing.T, prof *vm.Profile) *estimate.Params {
	t.Helper()
	p, err := estimate.Calibrate(prof)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// reactionKey canonicalises a reaction for comparison: emissions as a
// sorted multiset plus the next state.
func reactionKey(m *cfsm.CFSM, r cfsm.Reaction) string {
	ems := make([]string, len(r.Emitted))
	for i, e := range r.Emitted {
		ems[i] = e.Signal.Name + ":" + itoa(e.Value)
	}
	sort.Strings(ems)
	out := ""
	for _, e := range ems {
		out += e + "|"
	}
	out += "//"
	for _, sv := range m.States {
		out += sv.Name + "=" + itoa(r.NextState[sv]) + ";"
	}
	return out
}

func itoa(v int64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// snapHost exposes a snapshot to the VM.
type snapHost struct {
	byID    map[int]*cfsm.Signal
	snap    cfsm.Snapshot
	emitted []cfsm.Emission
}

func newSnapHost(sigs codegen.SignalMap, snap cfsm.Snapshot) *snapHost {
	h := &snapHost{byID: make(map[int]*cfsm.Signal), snap: snap}
	for s, id := range sigs {
		h.byID[id] = s
	}
	return h
}

func (h *snapHost) Present(sig int) bool { return h.snap.Present[h.byID[sig]] }
func (h *snapHost) Value(sig int) int64  { return h.snap.Values[h.byID[sig]] }
func (h *snapHost) Emit(sig int) {
	h.emitted = append(h.emitted, cfsm.Emission{Signal: h.byID[sig]})
}
func (h *snapHost) EmitValue(sig int, v int64) {
	h.emitted = append(h.emitted, cfsm.Emission{Signal: h.byID[sig], Value: v})
}

// runProgram executes one reaction of an assembled routine.
func runProgram(t *testing.T, m *cfsm.CFSM, p *vm.Program, prof *vm.Profile,
	sigs codegen.SignalMap, snap cfsm.Snapshot) cfsm.Reaction {
	t.Helper()
	h := newSnapHost(sigs, snap)
	mach := vm.NewMachine(prof, p.Words, h)
	for _, sv := range m.States {
		mach.Mem[p.Symbols["st_"+sv.Name]] = snap.State[sv]
	}
	if _, err := mach.Run(p, codegen.EntryLabel(m)); err != nil {
		t.Fatalf("%s: vm: %v", m.Name, err)
	}
	r := cfsm.Reaction{NextState: map[*cfsm.StateVar]int64{}, Emitted: h.emitted}
	for _, sv := range m.States {
		r.NextState[sv] = mach.Mem[p.Symbols["st_"+sv.Name]]
	}
	return r
}

// TestCrossImplementations is the main differential fuzz: 60 random
// machines x 40 snapshots x 8 implementations.
func TestCrossImplementations(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	machines := 60
	if testing.Short() {
		machines = 12
	}
	for mi := 0; mi < machines; mi++ {
		gen := randcfsm.New(rng, randcfsm.DefaultConfig())
		m := gen.C
		if err := m.Validate(); err != nil {
			t.Fatalf("machine %d invalid: %v", mi, err)
		}
		if err := m.CheckDeterministic(); err != nil {
			t.Fatalf("machine %d: generator produced nondeterminism: %v", mi, err)
		}

		// Implementations under test.
		type impl struct {
			name string
			run  func(snap cfsm.Snapshot) cfsm.Reaction
		}
		var impls []impl
		sigs := codegen.NewSignalMap(m)

		for _, ord := range []sgraph.Ordering{
			sgraph.OrderNaive, sgraph.OrderSiftInputsFirst, sgraph.OrderSiftAfterSupport,
		} {
			r, err := cfsm.BuildReactive(m)
			if err != nil {
				t.Fatalf("machine %d: %v", mi, err)
			}
			g, err := sgraph.Build(r, ord)
			if err != nil {
				t.Fatalf("machine %d/%v: %v", mi, ord, err)
			}
			if err := g.CheckWellFormed(); err != nil {
				t.Fatalf("machine %d/%v: %v", mi, ord, err)
			}
			gg := g
			impls = append(impls, impl{"sgraph-" + ord.String(), gg.Evaluate})

			if ord == sgraph.OrderSiftAfterSupport {
				for _, prof := range []*vm.Profile{vm.HC11(), vm.R3K()} {
					p, err := codegen.Assemble(gg, sigs, codegen.Options{})
					if err != nil {
						t.Fatalf("machine %d: %v", mi, err)
					}
					pp, prf := p, prof
					impls = append(impls, impl{"vm-" + prf.Name, func(snap cfsm.Snapshot) cfsm.Reaction {
						return runProgram(t, m, pp, prf, sigs, snap)
					}})
				}
				// Copy-optimised codegen.
				pOpt, err := codegen.Assemble(gg, sigs, codegen.Options{OptimizeCopies: true})
				if err != nil {
					t.Fatalf("machine %d: %v", mi, err)
				}
				impls = append(impls, impl{"vm-optcopies", func(snap cfsm.Snapshot) cfsm.Reaction {
					return runProgram(t, m, pOpt, vm.HC11(), sigs, snap)
				}})
				// Collapsed s-graph.
				rc, err := cfsm.BuildReactive(m)
				if err != nil {
					t.Fatal(err)
				}
				gc, err := sgraph.Build(rc, ord)
				if err != nil {
					t.Fatal(err)
				}
				gc.CollapseTests(32)
				impls = append(impls, impl{"sgraph-collapsed", gc.Evaluate})

				// Estimator sanity: bounds must bracket the measured
				// object code cycles (checked separately below).
			}
		}
		// Boolean circuit.
		{
			r, err := cfsm.BuildReactive(m)
			if err != nil {
				t.Fatal(err)
			}
			n, err := logic.Build(r)
			if err != nil {
				t.Fatalf("machine %d: circuit: %v", mi, err)
			}
			impls = append(impls, impl{"circuit", n.Evaluate})
			cp, err := logic.Assemble(n, sigs, codegen.Options{})
			if err != nil {
				t.Fatalf("machine %d: circuit asm: %v", mi, err)
			}
			impls = append(impls, impl{"circuit-vm", func(snap cfsm.Snapshot) cfsm.Reaction {
				return runProgram(t, m, cp, vm.HC11(), sigs, snap)
			}})
		}
		// Two-level jump.
		if p2, err := baseline.TwoLevelJump(m, sigs, codegen.Options{}); err == nil {
			impls = append(impls, impl{"two-level", func(snap cfsm.Snapshot) cfsm.Reaction {
				return runProgram(t, m, p2, vm.HC11(), sigs, snap)
			}})
		}

		for si := 0; si < 40; si++ {
			snap := gen.RandomSnapshot()
			want := reactionKey(m, m.React(snap))
			for _, im := range impls {
				got := reactionKey(m, im.run(snap))
				if got != want {
					t.Fatalf("machine %d snapshot %d: %s diverges\nreference: %s\n%s: %s",
						mi, si, im.name, want, im.name, got)
				}
			}
		}
	}
}

// TestEstimatorBracketsMeasurement checks on random machines that the
// estimator's [min,max] cycle bounds track the object-code analyzer
// within tolerance and that size errors stay small.
func TestEstimatorBracketsMeasurement(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	machines := 40
	if testing.Short() {
		machines = 8
	}
	for _, prof := range []*vm.Profile{vm.HC11(), vm.R3K()} {
		params := mustCalibrate(t, prof)
		for mi := 0; mi < machines; mi++ {
			gen := randcfsm.New(rng, randcfsm.DefaultConfig())
			m := gen.C
			r, err := cfsm.BuildReactive(m)
			if err != nil {
				t.Fatal(err)
			}
			g, err := sgraph.Build(r, sgraph.OrderSiftAfterSupport)
			if err != nil {
				t.Fatal(err)
			}
			p, err := codegen.Assemble(g, codegen.NewSignalMap(m), codegen.Options{})
			if err != nil {
				t.Fatal(err)
			}
			est := estimate.EstimateSGraph(g, params, estimate.Options{})
			act, err := vm.AnalyzeCycles(prof, p, codegen.EntryLabel(m))
			if err != nil {
				t.Fatal(err)
			}
			checkPct(t, prof.Name, mi, "size", est.CodeBytes, int64(prof.CodeSize(p)), 20)
			checkPct(t, prof.Name, mi, "max", est.MaxCycles, act.Max, 20)
			checkPct(t, prof.Name, mi, "min", est.MinCycles, act.Min, 20)
		}
	}
}

func checkPct(t *testing.T, prof string, mi int, what string, est, act int64, tol float64) {
	t.Helper()
	if act == 0 {
		return
	}
	err := 100 * float64(est-act) / float64(act)
	if err < -tol || err > tol {
		t.Errorf("%s machine %d: %s estimate %d vs measured %d (%.1f%%)",
			prof, mi, what, est, act, err)
	}
}
