package rtos

import "polis/internal/cfsm"

// emitRec is one emission awaiting delivery: a completed reaction's
// output event, copied out of the task's reused reaction buffer before
// any routing runs, so an ISR-context re-execution of the emitter
// cannot clobber events still in flight.
type emitRec struct {
	from *Task
	sig  *cfsm.Signal
	val  int64
	// hw marks emissions of the hardware partition, which route like
	// environment events (interrupt/polling) rather than directly into
	// task buffers.
	hw bool
}

// emitQueue is a growable power-of-two ring buffer of pending
// emissions. The system pushes every emission of a completed reaction
// and then drains FIFO; steady state performs no allocation (the ring
// keeps its capacity).
type emitQueue struct {
	buf  []emitRec
	head int // next pop
	tail int // next push
}

func (q *emitQueue) empty() bool { return q.head == q.tail }

func (q *emitQueue) push(r emitRec) {
	if len(q.buf) == 0 {
		q.buf = make([]emitRec, 16)
	}
	next := (q.tail + 1) & (len(q.buf) - 1)
	if next == q.head {
		q.grow()
		next = (q.tail + 1) & (len(q.buf) - 1)
	}
	q.buf[q.tail] = r
	q.tail = next
}

func (q *emitQueue) pop() emitRec {
	r := q.buf[q.head]
	// Clear the whole vacated record, not just the pointers: a stale
	// val/hw pair left in the ring could silently resurface through a
	// future drain bug, and the pointers must drop for GC anyway.
	q.buf[q.head] = emitRec{}
	q.head = (q.head + 1) & (len(q.buf) - 1)
	return r
}

// grow doubles the ring, unrolling the wrapped contents.
func (q *emitQueue) grow() {
	old := q.buf
	n := len(old)
	q.buf = make([]emitRec, 2*n)
	m := 0
	for i := q.head; i != q.tail; i = (i + 1) & (n - 1) {
		q.buf[m] = old[i]
		m++
	}
	q.head = 0
	q.tail = m
}
